(* Two reporting-layer contracts on top of the engine:

   - Evalue_stream threshold monotonicity: raising [min_score] must be
     exactly a filter. The stream at a strict threshold equals the
     stream at a looser one with the sub-threshold hits dropped — same
     hits, same adjusted E-values, same order. A violation means the
     threshold leaks into the ordering or the buffering, not just into
     membership.

   - Long_query vs the Smith-Waterman oracle: the segmented
     filter-and-refine search is exact for every chunking, so for
     segments 1..4 its (seq_index, score) list must equal the oracle's
     — in particular a sequence whose alignment straddles a chunk
     boundary must still be found via the overlap/threshold-split
     argument in long_query.mli. *)

(* ---------- Evalue_stream: threshold is exactly a filter ---------- *)

let prot_alpha = Bioseq.Alphabet.protein
let prot_matrix = Scoring.Matrices.pam30

let prot_params =
  Scoring.Karlin.estimate ~matrix:prot_matrix
    ~freqs:Scoring.Background.robinson_robinson ()

let prot_db strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:prot_alpha ~id:(Printf.sprintf "s%d" i)
           s)
       strings)

let drain stream =
  let rec go acc =
    match Oasis.Evalue_stream.Mem.next stream with
    | None -> List.rev acc
    | Some entry -> go (entry :: acc)
  in
  go []

let evalue_stream db q min_score =
  let tree = Suffix_tree.Ukkonen.build db in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:prot_matrix ~gap:(Scoring.Gap.linear 10)
         ~min_score ())
  in
  Oasis.Evalue_stream.Mem.create ~driver:engine ~db ~params:prot_params
    ~query_length:(Bioseq.Sequence.length q)

let monotonicity_prop (strings, qtext, s_loose, delta) =
  let s_strict = s_loose + delta in
  let db = prot_db strings in
  let q = Bioseq.Sequence.make ~alphabet:prot_alpha ~id:"q" qtext in
  let loose = drain (evalue_stream db q s_loose) in
  let strict = drain (evalue_stream db q s_strict) in
  let filtered =
    List.filter (fun (h, _) -> h.Oasis.Hit.score >= s_strict) loose
  in
  if List.length strict <> List.length filtered then
    QCheck.Test.fail_reportf
      "strict stream has %d hits, filtered loose stream %d"
      (List.length strict) (List.length filtered);
  (* Order must agree wherever adjusted E distinguishes hits; within a
     run of equal E (identical score and sequence length) the release
     order is unspecified, so compare positional E-values plus the
     overall multiset rather than hit-by-hit order. *)
  List.iter2
    (fun (_, se) (_, fe) ->
      if abs_float (se -. fe) > 1e-9 *. (1. +. abs_float fe) then
        QCheck.Test.fail_reportf
          "positional adjusted E differs: the threshold reordered hits \
           across distinct E values")
    strict filtered;
  if
    List.sort compare (List.map fst strict)
    <> List.sort compare (List.map fst filtered)
  then
    QCheck.Test.fail_reportf
      "strict stream is not the loose stream filtered to score >= %d"
      s_strict;
  true

let protein_gen =
  QCheck.Gen.(
    let residues = "ARNDCQEGHILKMFPSTWYV" in
    let residue =
      map (String.get residues) (int_range 0 (String.length residues - 1))
    in
    let protein n m = string_size ~gen:residue (int_range n m) in
    let* strings = list_size (int_range 1 8) (protein 2 40) in
    let* q = protein 2 8 in
    let* s_loose = int_range 1 20 in
    let* delta = int_range 1 15 in
    return (strings, q, s_loose, delta))

let qcheck_threshold_monotonicity =
  QCheck.Test.make ~count:150
    ~name:"evalue stream: raising min_score is exactly a filter"
    (QCheck.make protein_gen ~print:(fun (ss, q, s, d) ->
         Printf.sprintf "db=%s q=%s loose=%d strict=%d" (String.concat "/" ss)
           q s (s + d)))
    monotonicity_prop

let test_threshold_fixed () =
  (* Hand-sized instance: the strict stream drops exactly the weak hit
     and keeps the strong ones in their loose-stream order. *)
  let db = prot_db [ "MKVLATLLVLLC"; "MKVLGT"; "AAAAAA" ] in
  let q = Bioseq.Sequence.make ~alphabet:prot_alpha ~id:"q" "MKVLAT" in
  let loose = drain (evalue_stream db q 10) in
  Alcotest.(check bool) "loose stream sees several hits" true
    (List.length loose >= 2);
  let strict_at s =
    List.map (fun (h, _) -> h.Oasis.Hit.seq_index) (drain (evalue_stream db q s))
  in
  let filtered_at s =
    List.filter_map
      (fun (h, _) ->
        if h.Oasis.Hit.score >= s then Some h.Oasis.Hit.seq_index else None)
      loose
  in
  List.iter
    (fun s ->
      Alcotest.(check (list int))
        (Printf.sprintf "threshold %d is a filter" s)
        (filtered_at s) (strict_at s))
    [ 15; 25; 35; 45 ]

(* ---------- Long_query vs the Smith-Waterman oracle ---------- *)

let dna_alpha = Bioseq.Alphabet.dna
let unit_matrix = Scoring.Matrices.dna_unit

let dna_db strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:dna_alpha ~id:(Printf.sprintf "s%d" i)
           s)
       strings)

let sw_pairs ~matrix ~gap ~min_score db q =
  List.map
    (fun h -> (h.Align.Smith_waterman.seq_index, h.Align.Smith_waterman.score))
    (fst (Align.Smith_waterman.search ~matrix ~gap ~query:q ~db ~min_score))

let hit_pairs hits =
  List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits

let oracle_prop ~gap (strings, qtext, min_score) =
  let db = dna_db strings in
  let q = Bioseq.Sequence.make ~alphabet:dna_alpha ~id:"q" qtext in
  let oracle = sw_pairs ~matrix:unit_matrix ~gap ~min_score db q in
  let tree = Suffix_tree.Ukkonen.build db in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap ~min_score () in
  List.for_all
    (fun segments ->
      let hits, stats =
        Oasis.Long_query.Mem.search ~source:tree ~db ~query:q ~segments cfg
      in
      if hit_pairs hits <> oracle then
        QCheck.Test.fail_reportf "segments=%d diverges from the SW oracle"
          segments;
      if stats.Oasis.Long_query.candidates < List.length oracle then
        QCheck.Test.fail_reportf
          "segments=%d: %d candidates < %d oracle hits (filter unsound)"
          segments stats.Oasis.Long_query.candidates (List.length oracle);
      true)
    [ 1; 2; 3; 4 ]

let long_gen =
  QCheck.Gen.(
    let dna n m =
      string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m)
    in
    let* strings = list_size (int_range 1 5) (dna 5 35) in
    (* Long enough that 4 segments are all non-trivial. *)
    let* q = dna 12 28 in
    let* min_score = int_range 1 10 in
    return (strings, q, min_score))

let qcheck_long_query_oracle_linear =
  QCheck.Test.make ~count:120
    ~name:"long query, segments 1-4 = SW oracle (linear gaps)"
    (QCheck.make long_gen ~print:(fun (ss, q, ms) ->
         Printf.sprintf "db=%s q=%s min=%d" (String.concat "/" ss) q ms))
    (oracle_prop ~gap:(Scoring.Gap.linear 1))

let qcheck_long_query_oracle_affine =
  QCheck.Test.make ~count:80
    ~name:"long query, segments 1-4 = SW oracle (affine gaps)"
    (QCheck.make long_gen ~print:(fun (ss, q, ms) ->
         Printf.sprintf "db=%s q=%s min=%d" (String.concat "/" ss) q ms))
    (oracle_prop ~gap:(Scoring.Gap.affine ~open_cost:2 ~extend_cost:1))

let test_chunk_boundary_straddle () =
  (* The alignment lives exactly across the segment boundary: with
     segments=2 the query "ACGTACGTTTTT..." splits so that neither half
     alone scores min_score against the target, but the overlap
     argument must still surface the sequence as a candidate. *)
  let target = "GGACGTACGTGG" in
  let db = dna_db [ target; "CCCCCCCC" ] in
  let qtext = "AAAAACGTACGTAAAA" in
  let q = Bioseq.Sequence.make ~alphabet:dna_alpha ~id:"q" qtext in
  let min_score = 7 in
  let gap = Scoring.Gap.linear 1 in
  let oracle = sw_pairs ~matrix:unit_matrix ~gap ~min_score db q in
  Alcotest.(check (list (pair int int))) "oracle finds the straddler"
    [ (0, 8) ] oracle;
  let tree = Suffix_tree.Ukkonen.build db in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap ~min_score () in
  List.iter
    (fun segments ->
      let hits, _ =
        Oasis.Long_query.Mem.search ~source:tree ~db ~query:q ~segments cfg
      in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "segments=%d finds the straddler" segments)
        oracle (hit_pairs hits))
    [ 1; 2; 3; 4 ]

let test_long_query_disk () =
  (* The Disk instantiation goes through the same functor; one fixed
     case guards the wiring. *)
  let db = dna_db [ "ACGTACGTACGT"; "TTTTGGGG"; "ACGT" ] in
  let q = Bioseq.Sequence.make ~alphabet:dna_alpha ~id:"q" "ACGTACGTACGTACGT" in
  let gap = Scoring.Gap.linear 1 in
  let min_score = 4 in
  let oracle = sw_pairs ~matrix:unit_matrix ~gap ~min_score db q in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:32 ~capacity:8 tree in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap ~min_score () in
  List.iter
    (fun segments ->
      let hits, _ =
        Oasis.Long_query.Disk.search ~source:dt ~db ~query:q ~segments cfg
      in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "disk segments=%d = oracle" segments)
        oracle (hit_pairs hits))
    [ 1; 3 ]

let () =
  Alcotest.run "evalue_long"
    [
      ( "evalue_stream",
        [
          QCheck_alcotest.to_alcotest qcheck_threshold_monotonicity;
          Alcotest.test_case "fixed thresholds" `Quick test_threshold_fixed;
        ] );
      ( "long_query",
        [
          QCheck_alcotest.to_alcotest qcheck_long_query_oracle_linear;
          QCheck_alcotest.to_alcotest qcheck_long_query_oracle_affine;
          Alcotest.test_case "chunk-boundary straddle" `Quick
            test_chunk_boundary_straddle;
          Alcotest.test_case "disk instantiation" `Quick test_long_query_disk;
        ] );
    ]
