(* Stress and robustness: degenerate inputs that break naive
   implementations — runs of one symbol (maximum tree depth), thousands
   of tiny sequences, ambiguity codes, extreme thresholds, queries
   longer than the database. *)

let dna = Bioseq.Alphabet.dna
let protein = Bioseq.Alphabet.protein
let unit_matrix = Scoring.Matrices.dna_unit
let gap1 = Scoring.Gap.linear 1

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s -> Bioseq.Sequence.make ~alphabet:dna ~id:(Printf.sprintf "s%d" i) s)
       strings)

let test_degenerate_run () =
  (* 60k of one symbol: the suffix tree is a 60k-deep chain; every
     traversal must survive without native stack overflow. *)
  let n = 60_000 in
  let db = db_of_strings [ String.make n 'A' ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let stats = Suffix_tree.Tree.stats tree in
  Alcotest.(check int) "occurrences" (n + 1) stats.Suffix_tree.Tree.occurrences;
  Alcotest.(check int) "depth equals run" (n + 1) stats.Suffix_tree.Tree.max_depth;
  (* Exact search and full subtree enumeration on the chain. *)
  let hits =
    Suffix_tree.Tree.find_exact tree (Bioseq.Alphabet.encode dna "AAAAAAAAAA")
  in
  Alcotest.(check int) "all starts found" (n - 9) (List.length hits);
  (* OASIS over the chain with a tight threshold. *)
  let q = Bioseq.Sequence.make ~alphabet:dna ~id:"q" (String.make 20 'A') in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:20 ())
  in
  match Oasis.Engine.Mem.run engine with
  | [ hit ] -> Alcotest.(check int) "score" 20 hit.Oasis.Hit.score
  | hits -> Alcotest.failf "expected 1 hit, got %d" (List.length hits)

let test_degenerate_disk_tree () =
  let n = 30_000 in
  let db = db_of_strings [ String.make n 'C' ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _ = Storage.Disk_tree.of_tree ~block_size:2048 ~capacity:64 tree in
  let count = ref 0 in
  Storage.Disk_tree.iter_positions dt (Storage.Disk_tree.root dt) (fun _ ->
      incr count);
  Alcotest.(check int) "all positions" (n + 1) !count

let test_many_tiny_sequences () =
  let count = 8_000 in
  let strings = List.init count (fun i ->
      match i mod 4 with 0 -> "ACG" | 1 -> "TT" | 2 -> "GATTACA" | _ -> "C")
  in
  let db = db_of_strings strings in
  let tree = Suffix_tree.Ukkonen.build db in
  let q = Bioseq.Sequence.make ~alphabet:dna ~id:"q" "GATTACA" in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:7 ())
  in
  let hits = Oasis.Engine.Mem.run engine in
  Alcotest.(check int) "every GATTACA copy reported" (count / 4)
    (List.length hits);
  (* The S-W oracle agrees even at this sequence count. *)
  let sw, _ =
    Align.Smith_waterman.search ~matrix:unit_matrix ~gap:gap1 ~query:q ~db
      ~min_score:7
  in
  Alcotest.(check int) "S-W agrees" (List.length sw) (List.length hits)

let test_ambiguity_codes () =
  (* B/Z/X in database and query: PAM30 defines their scores; the whole
     stack must accept them. *)
  let db =
    Bioseq.Database.make
      [
        Bioseq.Sequence.make ~alphabet:protein ~id:"amb" "MKXBZTAYIAKQRQISXFVKSH";
        Bioseq.Sequence.make ~alphabet:protein ~id:"plain" "MKTAYIAKQRQISFVKSH";
      ]
  in
  let tree = Suffix_tree.Ukkonen.build db in
  let q = Bioseq.Sequence.make ~alphabet:protein ~id:"q" "TAYIAKXRQIS" in
  let matrix = Scoring.Matrices.pam30 and gap = Scoring.Gap.linear 10 in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix ~gap ~min_score:10 ())
  in
  let hits = Oasis.Engine.Mem.run engine in
  let sw, _ =
    Align.Smith_waterman.search ~matrix ~gap ~query:q ~db ~min_score:10
  in
  Alcotest.(check int) "hit counts agree" (List.length sw) (List.length hits)

let test_query_longer_than_database () =
  let db = db_of_strings [ "ACGT"; "TT" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let q =
    Bioseq.Sequence.make ~alphabet:dna ~id:"q"
      (String.concat "" (List.init 20 (fun _ -> "ACGT")))
  in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:3 ())
  in
  let hits = Oasis.Engine.Mem.run engine in
  Alcotest.(check (list (pair int int))) "only the 4-symbol match"
    [ (0, 4) ]
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)

let test_min_score_unreachable () =
  let db = db_of_strings [ "ACGTACGT" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let q = Bioseq.Sequence.make ~alphabet:dna ~id:"q" "ACGT" in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:1000 ())
  in
  Alcotest.(check (list unit)) "no hits" []
    (List.map ignore (Oasis.Engine.Mem.run engine));
  let c = Oasis.Engine.Mem.counters engine in
  (* The root is pruned outright: no expansion should happen. *)
  Alcotest.(check int) "no columns" 0 c.Oasis.Engine.columns

let test_single_symbol_query () =
  let db = db_of_strings [ "GGAGG"; "TTTT" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let q = Bioseq.Sequence.make ~alphabet:dna ~id:"q" "A" in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:1 ())
  in
  let hits = Oasis.Engine.Mem.run engine in
  Alcotest.(check (list (pair int int))) "single A found" [ (0, 1) ]
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)

let test_run_limit_prefix () =
  (* run ~limit:k must be the prefix of the full online stream. *)
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "TACC"; "GGGG"; "TAGG"; "ATAT" ] in
  let q = Bioseq.Sequence.make ~alphabet:dna ~id:"q" "TACG" in
  let tree = Suffix_tree.Ukkonen.build db in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:1 () in
  let full =
    Oasis.Engine.Mem.run (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg)
  in
  for k = 0 to List.length full do
    let prefix =
      Oasis.Engine.Mem.run ~limit:k
        (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg)
    in
    Alcotest.(check int) (Printf.sprintf "limit %d" k) k (List.length prefix);
    List.iteri
      (fun i h ->
        let f = List.nth full i in
        Alcotest.(check (pair int int))
          (Printf.sprintf "prefix element %d" i)
          (f.Oasis.Hit.seq_index, f.Oasis.Hit.score)
          (h.Oasis.Hit.seq_index, h.Oasis.Hit.score))
      prefix
  done

let test_peek_bound_monotone () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA" ] in
  let q = Bioseq.Sequence.make ~alphabet:dna ~id:"q" "TACG" in
  let tree = Suffix_tree.Ukkonen.build db in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:1 ())
  in
  let rec drain last =
    match Oasis.Engine.Mem.peek_bound engine with
    | None -> ()
    | Some bound ->
      Alcotest.(check bool) "bound non-increasing" true (bound <= last);
      (match Oasis.Engine.Mem.next engine with
      | None -> ()
      | Some hit ->
        Alcotest.(check bool) "hit within bound" true (hit.Oasis.Hit.score <= bound);
        drain bound)
  in
  drain max_int

let () =
  Alcotest.run "stress"
    [
      ( "degenerate",
        [
          Alcotest.test_case "60k single-symbol run" `Slow test_degenerate_run;
          Alcotest.test_case "30k run through disk tree" `Slow
            test_degenerate_disk_tree;
          Alcotest.test_case "8k tiny sequences" `Slow test_many_tiny_sequences;
        ] );
      ( "edges",
        [
          Alcotest.test_case "ambiguity codes" `Quick test_ambiguity_codes;
          Alcotest.test_case "query longer than database" `Quick
            test_query_longer_than_database;
          Alcotest.test_case "unreachable min_score" `Quick
            test_min_score_unreachable;
          Alcotest.test_case "single-symbol query" `Quick test_single_symbol_query;
          Alcotest.test_case "run limit is a prefix" `Quick test_run_limit_prefix;
          Alcotest.test_case "peek_bound monotone" `Quick test_peek_bound_monotone;
        ] );
    ]
