(* Workload substrate: RNG determinism, synthetic database shapes,
   motif sampling. *)

let test_rng_deterministic () =
  let a = Workload.Rng.create ~seed:42 and b = Workload.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Workload.Rng.next a) (Workload.Rng.next b)
  done;
  let c = Workload.Rng.create ~seed:43 in
  Alcotest.(check bool) "different seed, different stream" true
    (Workload.Rng.next c <> Workload.Rng.next (Workload.Rng.create ~seed:42))

let test_rng_int_range () =
  let rng = Workload.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Workload.Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_float_and_bool () =
  let rng = Workload.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Workload.Rng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (v >= 0. && v < 2.5)
  done;
  let rng = Workload.Rng.create ~seed:8 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Workload.Rng.bool rng ~p:0.3 then incr trues
  done;
  Alcotest.(check bool) "bool frequency ~ p" true
    (!trues > 2600 && !trues < 3400)

let test_rng_weighted () =
  let rng = Workload.Rng.create ~seed:9 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Workload.Rng.choose_weighted rng [| 1.0; 2.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "middle drawn about twice as often" true
    (counts.(1) > counts.(0) + counts.(2) - 3000
    && counts.(1) < counts.(0) + counts.(2) + 3000);
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Rng.choose_weighted: zero total weight") (fun () ->
      ignore (Workload.Rng.choose_weighted rng [| 0.; 0. |]))

let test_rng_gaussian_moments () =
  let rng = Workload.Rng.create ~seed:10 in
  let n = 20_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let v = Workload.Rng.gaussian rng in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "variance ~ 1" true (abs_float (var -. 1.) < 0.1)

(* --- Generators --- *)

let test_swissprot_lengths () =
  let rng = Workload.Rng.create ~seed:1 in
  let n = 5000 in
  let total = ref 0 in
  for _ = 1 to n do
    let len = Workload.Generate.swissprot_length rng in
    Alcotest.(check bool) "in SWISS-PROT range" true (len >= 7 && len <= 2048);
    total := !total + len
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* SWISS-PROT's mean is ~370; accept a generous window. *)
  Alcotest.(check bool) (Printf.sprintf "mean %.0f plausible" mean) true
    (mean > 250. && mean < 500.)

let test_protein_database_shape () =
  let rng = Workload.Rng.create ~seed:2 in
  let db = Workload.Generate.protein_database rng ~target_symbols:20_000 () in
  Alcotest.(check bool) "enough symbols" true
    (Bioseq.Database.total_symbols db >= 20_000);
  Alcotest.(check string) "protein alphabet" "protein"
    (Bioseq.Alphabet.name (Bioseq.Database.alphabet db));
  (* Residue composition should track Robinson-Robinson: leucine (code
     10) is the most common residue. *)
  let freqs = Scoring.Background.of_database db in
  let argmax = ref 0 in
  Array.iteri (fun i f -> if f > freqs.(!argmax) then argmax := i) freqs;
  Alcotest.(check int) "modal residue is L" 10 !argmax

let test_dna_database_gc () =
  let rng = Workload.Rng.create ~seed:3 in
  let db =
    Workload.Generate.dna_database rng ~gc:0.7 ~num_sequences:4
      ~target_symbols:40_000 ()
  in
  Alcotest.(check int) "sequences" 4 (Bioseq.Database.num_sequences db);
  Alcotest.(check int) "symbols" 40_000 (Bioseq.Database.total_symbols db);
  let f = Scoring.Background.of_database db in
  let gc = f.(1) +. f.(2) in
  Alcotest.(check bool) (Printf.sprintf "gc %.3f ~ 0.7" gc) true
    (abs_float (gc -. 0.7) < 0.02)

let test_plant_creates_matches () =
  let rng = Workload.Rng.create ~seed:4 in
  let db = Workload.Generate.protein_database rng ~target_symbols:5_000 () in
  let motif =
    Bioseq.Sequence.make ~alphabet:Bioseq.Alphabet.protein ~id:"motif"
      "DKDGDGCITTKEL"
  in
  let planted = Workload.Generate.plant rng ~db ~motif ~copies:5 ~mutation_rate:0. in
  Alcotest.(check int) "same sequence count"
    (Bioseq.Database.num_sequences db)
    (Bioseq.Database.num_sequences planted);
  (* With zero mutations the motif must appear verbatim somewhere. *)
  let tree = Suffix_tree.Ukkonen.build planted in
  let occurrences =
    Suffix_tree.Tree.find_exact tree
      (Bioseq.Alphabet.encode Bioseq.Alphabet.protein "DKDGDGCITTKEL")
  in
  Alcotest.(check bool) "motif present" true (occurrences <> [])

(* --- Motif sampling --- *)

let test_proclass_lengths () =
  let rng = Workload.Rng.create ~seed:5 in
  let n = 5000 in
  let total = ref 0 in
  for _ = 1 to n do
    let len = Workload.Motif.proclass_length rng in
    Alcotest.(check bool) "in ProClass range" true (len >= 6 && len <= 56);
    total := !total + len
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean %.1f ~ 16" mean) true
    (mean > 12. && mean < 20.)

let test_motif_sample_has_strong_match () =
  let rng = Workload.Rng.create ~seed:6 in
  let db = Workload.Generate.protein_database rng ~target_symbols:3_000 () in
  let q = Workload.Motif.sample rng ~db ~len:12 ~mutation_rate:0. ~id:"q" () in
  Alcotest.(check int) "requested length" 12 (Bioseq.Sequence.length q);
  (* Unmutated: the motif matches its origin with the full self-score. *)
  let matrix = Scoring.Matrices.pam30 in
  let self = ref 0 in
  for i = 0 to Bioseq.Sequence.length q - 1 do
    self := !self + Scoring.Submat.score matrix (Bioseq.Sequence.get q i) (Bioseq.Sequence.get q i)
  done;
  let hits, _ =
    Align.Smith_waterman.search ~matrix ~gap:(Scoring.Gap.linear 10) ~query:q
      ~db ~min_score:!self
  in
  Alcotest.(check bool) "origin found at full self-score" true (hits <> [])

let test_workload_count_and_mutation () =
  let rng = Workload.Rng.create ~seed:7 in
  let db = Workload.Generate.protein_database rng ~target_symbols:3_000 () in
  let queries = Workload.Motif.workload rng ~db ~count:25 () in
  Alcotest.(check int) "count" 25 (List.length queries);
  List.iter
    (fun q ->
      let len = Bioseq.Sequence.length q in
      Alcotest.(check bool) "length range" true (len >= 6 && len <= 56))
    queries

let test_mutate_rate () =
  let rng = Workload.Rng.create ~seed:8 in
  let s =
    Bioseq.Sequence.make ~alphabet:Bioseq.Alphabet.protein ~id:"s"
      (String.concat "" (List.init 50 (fun _ -> "ARNDCQEGHILKMFPSTWYV")))
  in
  let m = Workload.Motif.mutate rng ~rate:0.2 s in
  let diffs = ref 0 in
  for i = 0 to Bioseq.Sequence.length s - 1 do
    if Bioseq.Sequence.get s i <> Bioseq.Sequence.get m i then incr diffs
  done;
  let rate = float_of_int !diffs /. float_of_int (Bioseq.Sequence.length s) in
  (* Replacement can redraw the original symbol, so the observed rate is
     a bit below 0.2. *)
  Alcotest.(check bool) (Printf.sprintf "rate %.3f ~ 0.19" rate) true
    (rate > 0.13 && rate < 0.25)

(* --- Empirical Karlin calibration --- *)

let test_calibrate_converges_to_ungapped () =
  (* A prohibitive gap penalty makes gapped S-W effectively ungapped, so
     the fitted Gumbel parameters should approach the analytic ones. *)
  let rng = Workload.Rng.create ~seed:11 in
  let matrix = Scoring.Matrices.blosum62 in
  let freqs = Scoring.Background.robinson_robinson in
  let analytic = Scoring.Karlin.estimate ~matrix ~freqs () in
  let fitted =
    Workload.Calibrate.gapped_params rng ~matrix ~gap:(Scoring.Gap.linear 1000)
      ~freqs ~length:120 ~samples:600 ()
  in
  let rel a b = abs_float (a -. b) /. a in
  Alcotest.(check bool)
    (Printf.sprintf "lambda %.3f ~ %.3f" fitted.Scoring.Karlin.lambda
       analytic.Scoring.Karlin.lambda)
    true
    (rel analytic.Scoring.Karlin.lambda fitted.Scoring.Karlin.lambda < 0.25)

let test_calibrate_gapped_lambda_lower () =
  (* Cheap gaps admit more high-scoring chance alignments: lambda must
     drop relative to the ungapped value. *)
  let rng = Workload.Rng.create ~seed:12 in
  let matrix = Scoring.Matrices.blosum62 in
  let freqs = Scoring.Background.robinson_robinson in
  let analytic = Scoring.Karlin.estimate ~matrix ~freqs () in
  let fitted =
    (* Cheap gaps (open 5, extend 1) push lambda well below the ungapped
       value even at moderate simulation sizes. *)
    Workload.Calibrate.gapped_params rng ~matrix
      ~gap:(Scoring.Gap.affine ~open_cost:5 ~extend_cost:1)
      ~freqs ~length:150 ~samples:400 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "gapped lambda %.3f < ungapped %.3f"
       fitted.Scoring.Karlin.lambda analytic.Scoring.Karlin.lambda)
    true
    (fitted.Scoring.Karlin.lambda < analytic.Scoring.Karlin.lambda)

let test_fit_gumbel_recovers_known_law () =
  (* Draw synthetic Gumbel variates with known lambda/K and check the
     moment fit recovers them. *)
  let rng = Workload.Rng.create ~seed:13 in
  let lambda = 0.3 and kparam = 0.1 in
  let m = 100 and n = 100 in
  let mu = log (kparam *. float_of_int m *. float_of_int n) /. lambda in
  let scores =
    List.init 4000 (fun _ ->
        let u = max 1e-12 (Workload.Rng.float rng 1.0) in
        (* Inverse CDF of the Gumbel law. *)
        int_of_float (Float.round (mu -. (log (-.log u) /. lambda))))
  in
  let fitted = Scoring.Karlin.fit_gumbel ~m ~n scores in
  Alcotest.(check bool)
    (Printf.sprintf "lambda %.3f ~ 0.3" fitted.Scoring.Karlin.lambda)
    true
    (abs_float (fitted.Scoring.Karlin.lambda -. lambda) < 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "K %.3f ~ 0.1" fitted.Scoring.Karlin.k)
    true
    (fitted.Scoring.Karlin.k > 0.05 && fitted.Scoring.Karlin.k < 0.2)

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float and bool" `Quick test_rng_float_and_bool;
          Alcotest.test_case "weighted choice" `Quick test_rng_weighted;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        ] );
      ( "generators",
        [
          Alcotest.test_case "swissprot lengths" `Quick test_swissprot_lengths;
          Alcotest.test_case "protein database" `Quick test_protein_database_shape;
          Alcotest.test_case "dna gc bias" `Quick test_dna_database_gc;
          Alcotest.test_case "plant" `Quick test_plant_creates_matches;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "converges to ungapped" `Slow
            test_calibrate_converges_to_ungapped;
          Alcotest.test_case "gapped lambda lower" `Slow
            test_calibrate_gapped_lambda_lower;
          Alcotest.test_case "recovers known Gumbel" `Quick
            test_fit_gumbel_recovers_known_law;
        ] );
      ( "motifs",
        [
          Alcotest.test_case "proclass lengths" `Quick test_proclass_lengths;
          Alcotest.test_case "sample has strong match" `Quick
            test_motif_sample_has_strong_match;
          Alcotest.test_case "workload" `Quick test_workload_count_and_mutation;
          Alcotest.test_case "mutation rate" `Quick test_mutate_rate;
        ] );
    ]
