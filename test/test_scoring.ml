(* Scoring substrate: substitution matrices, gap models, Karlin-Altschul
   statistics. *)

let protein = Bioseq.Alphabet.protein
let dna = Bioseq.Alphabet.dna

let code a c = Bioseq.Alphabet.of_char_exn a c

(* --- Substitution matrices --- *)

let test_unit_matrix () =
  let m = Scoring.Submat.unit_edit dna in
  Alcotest.(check int) "match" 1 (Scoring.Submat.score m 0 0);
  Alcotest.(check int) "mismatch" (-1) (Scoring.Submat.score m 0 1);
  Alcotest.(check bool) "terminator row is -inf" true
    (Scoring.Submat.score m 0 (Bioseq.Alphabet.terminator dna)
    = Scoring.Submat.neg_inf);
  Alcotest.(check bool) "symmetric" true (Scoring.Submat.is_symmetric m)

let test_blosum62_spot_values () =
  let m = Scoring.Matrices.blosum62 in
  let s a b = Scoring.Submat.score m (code protein a) (code protein b) in
  (* Well-known cells of the published matrix. *)
  Alcotest.(check int) "W-W" 11 (s 'W' 'W');
  Alcotest.(check int) "C-C" 9 (s 'C' 'C');
  Alcotest.(check int) "A-A" 4 (s 'A' 'A');
  Alcotest.(check int) "A-R" (-1) (s 'A' 'R');
  Alcotest.(check int) "I-L" 2 (s 'I' 'L');
  Alcotest.(check int) "E-Z" 4 (s 'E' 'Z');
  Alcotest.(check bool) "symmetric" true (Scoring.Submat.is_symmetric m)

let test_pam30_spot_values () =
  let m = Scoring.Matrices.pam30 in
  let s a b = Scoring.Submat.score m (code protein a) (code protein b) in
  Alcotest.(check int) "W-W" 13 (s 'W' 'W');
  Alcotest.(check int) "M-M" 11 (s 'M' 'M');
  Alcotest.(check int) "A-A" 6 (s 'A' 'A');
  Alcotest.(check int) "R-K" 0 (s 'R' 'K');
  Alcotest.(check bool) "symmetric" true (Scoring.Submat.is_symmetric m);
  (* Every standard residue's diagonal must be its row maximum and
     positive (this is what makes the paper's heuristic admissible). *)
  for a = 0 to 19 do
    Alcotest.(check bool)
      (Printf.sprintf "diagonal max for %c" (Bioseq.Alphabet.to_char protein a))
      true
      (Scoring.Submat.best_against m a = Scoring.Submat.score m a a
      && Scoring.Submat.score m a a > 0)
  done

let test_matrix_lookup () =
  Alcotest.(check bool) "pam30 by name" true
    (Option.is_some (Scoring.Matrices.by_name "PAM30"));
  Alcotest.(check bool) "unknown" true
    (Option.is_none (Scoring.Matrices.by_name "blosum999"))

let test_of_function_and_entries () =
  let m = Scoring.Submat.of_function ~alphabet:dna ~name:"f" (fun a b -> a - b) in
  Alcotest.(check int) "max entry" 4 (Scoring.Submat.max_entry m);
  Alcotest.(check int) "min entry" (-4) (Scoring.Submat.min_entry m);
  Alcotest.(check int) "best_against 1" 1 (Scoring.Submat.best_against m 1)

(* --- Gap models --- *)

let test_gap_linear () =
  let g = Scoring.Gap.linear 2 in
  Alcotest.(check bool) "is_linear" true (Scoring.Gap.is_linear g);
  Alcotest.(check int) "open" (-2) (Scoring.Gap.open_score g);
  Alcotest.(check int) "extend" (-2) (Scoring.Gap.extend_score g);
  Alcotest.(check int) "run of 3" (-6) (Scoring.Gap.run_score g 3)

let test_gap_affine () =
  let g = Scoring.Gap.affine ~open_cost:5 ~extend_cost:1 in
  Alcotest.(check bool) "not linear" false (Scoring.Gap.is_linear g);
  Alcotest.(check int) "open" (-6) (Scoring.Gap.open_score g);
  Alcotest.(check int) "extend" (-1) (Scoring.Gap.extend_score g);
  Alcotest.(check int) "run of 4" (-9) (Scoring.Gap.run_score g 4)

let test_gap_rejects () =
  Alcotest.check_raises "zero penalty"
    (Invalid_argument "Gap.linear: penalty must be positive") (fun () ->
      ignore (Scoring.Gap.linear 0));
  Alcotest.check_raises "bad run"
    (Invalid_argument "Gap.run_score: run length must be >= 1") (fun () ->
      ignore (Scoring.Gap.run_score (Scoring.Gap.linear 1) 0))

(* --- Karlin-Altschul --- *)

let close ?(tol = 0.02) name expected got =
  if abs_float (expected -. got) > tol *. max 1.0 (abs_float expected) then
    Alcotest.failf "%s: expected %.4f within %.0f%%, got %.4f" name expected
      (100. *. tol) got

let test_karlin_unit_dna () =
  (* Uniform ACGT with +1/-1: lambda solves e^l/4 + 3 e^-l/4 = 1,
     i.e. lambda = ln 3. *)
  let p =
    Scoring.Karlin.estimate ~matrix:Scoring.Matrices.dna_unit
      ~freqs:Scoring.Background.dna_uniform ()
  in
  close "lambda" (log 3.) p.Scoring.Karlin.lambda;
  Alcotest.(check bool) "K in (0,1)" true
    (p.Scoring.Karlin.k > 0. && p.Scoring.Karlin.k < 1.);
  Alcotest.(check bool) "H > 0" true (p.Scoring.Karlin.h > 0.)

let test_karlin_blosum62 () =
  (* Published ungapped parameters: lambda = 0.3176, K = 0.134,
     H = 0.40. *)
  let p =
    Scoring.Karlin.estimate ~matrix:Scoring.Matrices.blosum62
      ~freqs:Scoring.Background.robinson_robinson ()
  in
  close "lambda" 0.3176 p.Scoring.Karlin.lambda;
  close ~tol:0.05 "K" 0.134 p.Scoring.Karlin.k;
  close ~tol:0.05 "H" 0.40 p.Scoring.Karlin.h

let test_karlin_pam30 () =
  (* Published ungapped parameters: lambda = 0.340, K = 0.283. *)
  let p =
    Scoring.Karlin.estimate ~matrix:Scoring.Matrices.pam30
      ~freqs:Scoring.Background.robinson_robinson ()
  in
  close "lambda" 0.340 p.Scoring.Karlin.lambda;
  close ~tol:0.05 "K" 0.283 p.Scoring.Karlin.k

let test_evalue_roundtrip () =
  let p =
    Scoring.Karlin.estimate ~matrix:Scoring.Matrices.pam30
      ~freqs:Scoring.Background.robinson_robinson ()
  in
  let m = 16 and n = 1_000_000 in
  (* Equation 3 then Equation 2: the threshold score's E-value must not
     exceed the requested cutoff, and one score lower must exceed it. *)
  List.iter
    (fun evalue ->
      let s = Scoring.Karlin.score_for_evalue p ~m ~n ~evalue in
      Alcotest.(check bool)
        (Printf.sprintf "E(%g): score %d tight" evalue s)
        true
        (Scoring.Karlin.evalue p ~m ~n ~score:s <= evalue
        && (s = 1 || Scoring.Karlin.evalue p ~m ~n ~score:(s - 1) > evalue)))
    [ 0.001; 1.; 100.; 20000. ]

let test_evalue_monotone () =
  let p =
    Scoring.Karlin.estimate ~matrix:Scoring.Matrices.blosum62
      ~freqs:Scoring.Background.robinson_robinson ()
  in
  let e s = Scoring.Karlin.evalue p ~m:20 ~n:100000 ~score:s in
  Alcotest.(check bool) "decreasing in score" true (e 10 > e 20 && e 20 > e 40);
  Alcotest.(check bool) "bit score increasing" true
    (Scoring.Karlin.bit_score p 40 > Scoring.Karlin.bit_score p 20)

let test_effective_lengths () =
  let p =
    Scoring.Karlin.estimate ~matrix:Scoring.Matrices.blosum62
      ~freqs:Scoring.Background.robinson_robinson ()
  in
  let m', n' =
    Scoring.Karlin.effective_lengths p ~m:20 ~n:1_000_000 ~num_sequences:1000
  in
  Alcotest.(check bool) "query shortened" true (m' < 20 && m' >= 1);
  Alcotest.(check bool) "database shortened" true (n' < 1_000_000 && n' >= 1000);
  (* Tiny search spaces floor out instead of going negative. *)
  let m'', n'' = Scoring.Karlin.effective_lengths p ~m:3 ~n:50 ~num_sequences:10 in
  Alcotest.(check bool) "floors" true (m'' >= 1 && n'' >= 10)

let test_karlin_rejects_positive_expectation () =
  (* An all-positive matrix has no positive lambda. *)
  let m = Scoring.Submat.of_function ~alphabet:dna ~name:"bad" (fun _ _ -> 1) in
  (try
     ignore (Scoring.Karlin.estimate ~matrix:m ~freqs:Scoring.Background.dna_uniform ());
     Alcotest.fail "accepted a positive-expectation matrix"
   with Scoring.Karlin.Unsupported_matrix _ -> ())

(* --- Position-specific scoring matrices --- *)

let test_pssm_of_query () =
  let q = Bioseq.Sequence.make ~alphabet:protein ~id:"q" "MKT" in
  let p = Scoring.Pssm.of_query ~matrix:Scoring.Matrices.pam30 q in
  Alcotest.(check int) "length" 3 (Scoring.Pssm.length p);
  for i = 0 to 2 do
    for b = 0 to 19 do
      Alcotest.(check int)
        (Printf.sprintf "col %d sym %d" i b)
        (Scoring.Submat.score Scoring.Matrices.pam30 (Bioseq.Sequence.get q i) b)
        (Scoring.Pssm.score p i b)
    done
  done;
  (* The terminator column is -inf. *)
  Alcotest.(check bool) "terminator" true
    (Scoring.Pssm.score p 0 (Bioseq.Alphabet.terminator protein)
    = Scoring.Submat.neg_inf)

let test_pssm_of_sequences () =
  (* A perfectly conserved column scores high; a column where the
     consensus symbol never appears scores low for it. *)
  let mk text = Bioseq.Sequence.make ~alphabet:protein ~id:"m" text in
  let members = [ mk "WAD"; mk "WCD"; mk "WGD"; mk "WTD" ] in
  let p =
    Scoring.Pssm.of_sequences ~freqs:Scoring.Background.robinson_robinson
      ~scale:2.0 members
  in
  let w = Bioseq.Alphabet.of_char_exn protein 'W' in
  let d = Bioseq.Alphabet.of_char_exn protein 'D' in
  let l = Bioseq.Alphabet.of_char_exn protein 'L' in
  Alcotest.(check bool) "conserved W scores high" true
    (Scoring.Pssm.score p 0 w > 0);
  Alcotest.(check bool) "conserved D scores high" true
    (Scoring.Pssm.score p 2 d > 0);
  Alcotest.(check bool) "absent L scores low at column 0" true
    (Scoring.Pssm.score p 0 l < 0);
  Alcotest.(check bool) "best at conserved column is W" true
    (Scoring.Pssm.best_at p 0 = Scoring.Pssm.score p 0 w)

let test_pssm_rejects () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Pssm.make: row 0 has wrong length") (fun () ->
      ignore (Scoring.Pssm.make ~alphabet:dna [| [| 1; 2 |] |]));
  let mk text = Bioseq.Sequence.make ~alphabet:protein ~id:"m" text in
  (try
     ignore
       (Scoring.Pssm.of_sequences ~freqs:Scoring.Background.robinson_robinson
          ~scale:2.0
          [ mk "AA"; mk "AAA" ]);
     Alcotest.fail "unequal lengths accepted"
   with Invalid_argument _ -> ())

let qcheck_pssm_search_degenerates =
  (* Profile-from-query searches must equal plain matrix searches. *)
  let gen =
    QCheck.Gen.(
      let residue = map (String.get "ARNDCQEGHILKMFPSTWYV") (int_range 0 19) in
      let protein_str n m = string_size ~gen:residue (int_range n m) in
      let* strings = list_size (int_range 1 4) (protein_str 2 25) in
      let* q = protein_str 2 8 in
      return (strings, q))
  in
  QCheck.Test.make ~count:200 ~name:"profile search degenerates to matrix search"
    (QCheck.make gen ~print:(fun (ss, q) -> String.concat "/" ss ^ " ? " ^ q))
    (fun (strings, qtext) ->
      let db =
        Bioseq.Database.make
          (List.mapi
             (fun i s ->
               Bioseq.Sequence.make ~alphabet:protein ~id:(Printf.sprintf "s%d" i) s)
             strings)
      in
      let q = Bioseq.Sequence.make ~alphabet:protein ~id:"q" qtext in
      let matrix = Scoring.Matrices.pam30 and gap = Scoring.Gap.linear 10 in
      let plain, _ = Align.Smith_waterman.search ~matrix ~gap ~query:q ~db ~min_score:5 in
      let prof, _ =
        Align.Smith_waterman.search_profile
          ~profile:(Scoring.Pssm.of_query ~matrix q)
          ~gap ~db ~min_score:5
      in
      List.map (fun h -> Align.Smith_waterman.(h.seq_index, h.score)) plain
      = List.map (fun h -> Align.Smith_waterman.(h.seq_index, h.score)) prof)

(* --- Background frequencies --- *)

let test_backgrounds_sum_to_one () =
  let check name freqs =
    let total = Array.fold_left ( +. ) 0. freqs in
    if abs_float (total -. 1.0) > 1e-9 then
      Alcotest.failf "%s sums to %.12f" name total
  in
  check "robinson_robinson" Scoring.Background.robinson_robinson;
  check "dna_uniform" Scoring.Background.dna_uniform;
  check "dna_gc" (Scoring.Background.dna_gc ~gc:0.6);
  check "uniform protein" (Scoring.Background.uniform protein)

let test_background_of_database () =
  let db =
    Bioseq.Database.make
      [ Bioseq.Sequence.make ~alphabet:dna ~id:"s" "AACG" ]
  in
  let f = Scoring.Background.of_database db in
  Alcotest.(check (float 1e-9)) "A" 0.5 f.(0);
  Alcotest.(check (float 1e-9)) "C" 0.25 f.(1);
  Alcotest.(check (float 1e-9)) "T" 0. f.(3)

(* --- Properties --- *)

let qcheck_lambda_root =
  (* lambda really is a root of sum p_i p_j e^{lambda s_ij} = 1 for
     random mismatch penalties. *)
  QCheck.Test.make ~count:50 ~name:"lambda satisfies its defining equation"
    QCheck.(make Gen.(int_range 2 8) ~print:string_of_int)
    (fun penalty ->
      let m =
        Scoring.Submat.of_function ~alphabet:dna ~name:"t" (fun a b ->
            if a = b then 2 else -penalty)
      in
      let freqs = Scoring.Background.dna_uniform in
      let p = Scoring.Karlin.estimate ~matrix:m ~freqs () in
      let total = ref 0. in
      for a = 0 to 3 do
        for b = 0 to 3 do
          total :=
            !total
            +. (0.25 *. 0.25
               *. exp (p.Scoring.Karlin.lambda *. float_of_int (Scoring.Submat.score m a b)))
        done
      done;
      abs_float (!total -. 1.0) < 1e-6)

let () =
  Alcotest.run "scoring"
    [
      ( "matrices",
        [
          Alcotest.test_case "unit" `Quick test_unit_matrix;
          Alcotest.test_case "blosum62 spot values" `Quick test_blosum62_spot_values;
          Alcotest.test_case "pam30 spot values" `Quick test_pam30_spot_values;
          Alcotest.test_case "lookup by name" `Quick test_matrix_lookup;
          Alcotest.test_case "of_function" `Quick test_of_function_and_entries;
        ] );
      ( "gaps",
        [
          Alcotest.test_case "linear" `Quick test_gap_linear;
          Alcotest.test_case "affine" `Quick test_gap_affine;
          Alcotest.test_case "rejects" `Quick test_gap_rejects;
        ] );
      ( "karlin",
        [
          Alcotest.test_case "unit dna closed form" `Quick test_karlin_unit_dna;
          Alcotest.test_case "blosum62 published values" `Quick test_karlin_blosum62;
          Alcotest.test_case "pam30 published values" `Quick test_karlin_pam30;
          Alcotest.test_case "evalue/score roundtrip" `Quick test_evalue_roundtrip;
          Alcotest.test_case "monotonicity" `Quick test_evalue_monotone;
          Alcotest.test_case "effective lengths" `Quick test_effective_lengths;
          Alcotest.test_case "rejects bad matrix" `Quick
            test_karlin_rejects_positive_expectation;
        ] );
      ( "pssm",
        [
          Alcotest.test_case "of_query" `Quick test_pssm_of_query;
          Alcotest.test_case "of_sequences" `Quick test_pssm_of_sequences;
          Alcotest.test_case "rejects" `Quick test_pssm_rejects;
        ] );
      ( "background",
        [
          Alcotest.test_case "sums" `Quick test_backgrounds_sum_to_one;
          Alcotest.test_case "of_database" `Quick test_background_of_database;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_lambda_root; qcheck_pssm_search_degenerates ] );
    ]
