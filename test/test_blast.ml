(* BLAST baseline: word index, extensions, full pipeline. The pipeline
   is a heuristic; its contract is "finds strong matches, never scores
   above Smith-Waterman", not completeness. *)

let dna = Bioseq.Alphabet.dna
let protein = Bioseq.Alphabet.protein
let dna_matrix = Scoring.Matrices.dna_unit
let gap1 = Scoring.Gap.linear 1

let dna_params =
  Scoring.Karlin.estimate ~matrix:dna_matrix ~freqs:Scoring.Background.dna_uniform ()

let pam30_params =
  Scoring.Karlin.estimate ~matrix:Scoring.Matrices.pam30
    ~freqs:Scoring.Background.robinson_robinson ()

let dseq id text = Bioseq.Sequence.make ~alphabet:dna ~id text
let pseq id text = Bioseq.Sequence.make ~alphabet:protein ~id text

let dna_db strings =
  Bioseq.Database.make (List.mapi (fun i s -> dseq (Printf.sprintf "s%d" i) s) strings)

let protein_db strings =
  Bioseq.Database.make (List.mapi (fun i s -> pseq (Printf.sprintf "p%d" i) s) strings)

(* --- Word index --- *)

let test_exact_word_index () =
  let q = dseq "q" "ACGTACG" in
  let idx =
    Blast.Word_index.build ~matrix:dna_matrix ~word_size:4 ~threshold:max_int
      ~query:q
  in
  Alcotest.(check int) "entries" 4 (Blast.Word_index.entries idx);
  (* ACGT occurs at query offset 0, CGTA at 1, GTAC at 2, TACG at 3. *)
  let db = dna_db [ "ACGT" ] in
  let w = Blast.Word_index.encode_at idx (Bioseq.Database.data db) 0 in
  Alcotest.(check (list int)) "lookup ACGT" [ 0 ] (Blast.Word_index.lookup idx w)

let test_neighborhood_index () =
  let q = pseq "q" "WWW" in
  (* With threshold equal to the self-score only words scoring >= 3*11
     qualify; W-W scores 13 under PAM30 so the neighborhood around WWW
     at threshold 39 has exactly one word. *)
  let idx =
    Blast.Word_index.build ~matrix:Scoring.Matrices.pam30 ~word_size:3
      ~threshold:39 ~query:q
  in
  Alcotest.(check int) "tight neighborhood" 1 (Blast.Word_index.neighborhood_size idx);
  (* Lower thresholds expand the neighborhood. *)
  let idx13 =
    Blast.Word_index.build ~matrix:Scoring.Matrices.pam30 ~word_size:3
      ~threshold:13 ~query:q
  in
  Alcotest.(check bool) "larger neighborhood" true
    (Blast.Word_index.neighborhood_size idx13 > 1)

let test_short_query_empty_index () =
  let q = dseq "q" "AC" in
  let idx =
    Blast.Word_index.build ~matrix:dna_matrix ~word_size:4 ~threshold:max_int
      ~query:q
  in
  Alcotest.(check int) "no entries" 0 (Blast.Word_index.entries idx)

(* --- Ungapped extension --- *)

let test_ungapped_extension () =
  let q = dseq "q" "TACGT" in
  let db = dna_db [ "GGTACGTGG" ] in
  let data = Bioseq.Database.data db in
  (* Word hit of length 3 at query offset 1 (ACG), target position 3. *)
  let e =
    Blast.Extend.ungapped ~matrix:dna_matrix ~x_drop:5 ~query:q ~data ~seq_lo:0
      ~seq_hi:9 ~qpos:1 ~tpos:3 ~word:3
  in
  (* Extends to the full TACGT occurrence, score 5. *)
  Alcotest.(check int) "score" 5 e.Blast.Extend.score;
  Alcotest.(check int) "query start" 0 e.Blast.Extend.query_start;
  Alcotest.(check int) "query stop" 5 e.Blast.Extend.query_stop;
  Alcotest.(check int) "target start" 2 e.Blast.Extend.target_start;
  Alcotest.(check int) "target stop" 7 e.Blast.Extend.target_stop

let test_xdrop_stops () =
  let q = dseq "q" "AAAATTTTTTTTAAAA" in
  let db = dna_db [ "AAAACCCCCCCCAAAA" ] in
  let data = Bioseq.Database.data db in
  let e =
    Blast.Extend.ungapped ~matrix:dna_matrix ~x_drop:2 ~query:q ~data ~seq_lo:0
      ~seq_hi:16 ~qpos:0 ~tpos:0 ~word:4
  in
  (* The T-vs-C mismatch wall stops the extension at the seed. *)
  Alcotest.(check int) "score" 4 e.Blast.Extend.score;
  Alcotest.(check int) "stops at wall" 4 e.Blast.Extend.query_stop

let test_gapped_extension_recovers_gap () =
  let q = dseq "q" "AAAATTTT" in
  let db = dna_db [ "GGAAAACTTTTGG" ] in
  let data = Bioseq.Database.data db in
  let seed =
    Blast.Extend.ungapped ~matrix:dna_matrix ~x_drop:3 ~query:q ~data ~seq_lo:0
      ~seq_hi:13 ~qpos:0 ~tpos:2 ~word:4
  in
  let g =
    Blast.Extend.gapped ~matrix:dna_matrix ~gap:gap1 ~band:8 ~query:q ~data
      ~seq_lo:0 ~seq_hi:13 ~seed
  in
  (* 8 matches minus one deletion = 7. *)
  Alcotest.(check int) "gapped score" 7 g.Blast.Extend.score;
  Alcotest.(check bool) "columns counted" true (g.Blast.Extend.columns > 0)

(* --- Pipeline --- *)

let test_finds_planted_match () =
  let db = dna_db [ "GGGGGGGGGGGGGGGGGGGGGGGGGGGG"; "GGGGGGGGGGTACGTACGTAGGGGGGGG" ] in
  let q = dseq "q" "TACGTACGTA" in
  let cfg =
    Blast.Search.default_dna ~word_size:6 ~matrix:dna_matrix ~gap:gap1
      ~params:dna_params ()
  in
  let hits, stats = Blast.Search.search cfg ~query:q ~db in
  (match hits with
  | [ h ] ->
    Alcotest.(check int) "sequence" 1 h.Blast.Search.seq_index;
    Alcotest.(check int) "score" 10 h.Blast.Search.score;
    Alcotest.(check bool) "evalue small" true (h.Blast.Search.evalue < 1.)
  | hs -> Alcotest.failf "expected 1 hit, got %d" (List.length hs));
  Alcotest.(check bool) "did some work" true (stats.Blast.Search.word_hits > 0)

let test_misses_without_seed () =
  (* A match whose longest exact word is below word_size generates no
     seed: the heuristic misses it while S-W (and OASIS) would not.
     ACGACGACG... vs ACTACTACT... shares only 2-symbol exact words but
     aligns at 2 matches per 3 symbols (score 4 over 12 symbols). *)
  let db = dna_db [ "ACTACTACTACT" ] in
  let q = dseq "q" "ACGACGACGACG" in
  let cfg =
    Blast.Search.default_dna ~word_size:4 ~matrix:dna_matrix ~gap:gap1
      ~params:dna_params ()
  in
  let hits, _ = Blast.Search.search cfg ~query:q ~db in
  Alcotest.(check int) "blast misses" 0 (List.length hits);
  let sw_hits, _ =
    Align.Smith_waterman.search ~matrix:dna_matrix ~gap:gap1 ~query:q ~db
      ~min_score:4
  in
  Alcotest.(check bool) "s-w does not" true (sw_hits <> [])

let test_protein_pipeline () =
  let family = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ" in
  let db =
    protein_db
      [
        family;
        "GGGGGGGGGGGGGGGGGGGG";
        "MKTAYIAKQRQISFVKSHFSRQ" (* prefix of the family *);
      ]
  in
  let q = pseq "q" "TAYIAKQRQISFVKSH" in
  let cfg =
    Blast.Search.default_protein ~matrix:Scoring.Matrices.pam30 ~gap:(Scoring.Gap.linear 10)
      ~params:pam30_params ()
  in
  let hits, _ = Blast.Search.search cfg ~query:q ~db in
  let seqs = List.map (fun h -> h.Blast.Search.seq_index) hits in
  Alcotest.(check bool) "family member found" true (List.mem 0 seqs);
  Alcotest.(check bool) "prefix found" true (List.mem 2 seqs);
  Alcotest.(check bool) "junk not found" true (not (List.mem 1 seqs))

let test_evalue_filter () =
  let db = dna_db [ "GGGGGGGGTACGGGGGGGGG" ] in
  let q = dseq "q" "TACG" in
  let strict =
    {
      (Blast.Search.default_dna ~word_size:4 ~matrix:dna_matrix ~gap:gap1
         ~params:dna_params ())
      with
      Blast.Search.evalue = 1e-6;
    }
  in
  let hits, _ = Blast.Search.search strict ~query:q ~db in
  Alcotest.(check int) "weak hit filtered" 0 (List.length hits)

(* --- Properties --- *)

let dna_string n m =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m))

let qcheck_blast_never_beats_sw =
  QCheck.Test.make ~count:200 ~name:"BLAST score <= S-W score per sequence"
    QCheck.(
      make
        Gen.(pair (list_size (int_range 1 4) (dna_string 10 40)) (dna_string 6 12))
        ~print:(fun (ss, q) -> String.concat "/" ss ^ " ? " ^ q))
    (fun (strings, qtext) ->
      let db = dna_db strings in
      let q = dseq "q" qtext in
      let cfg =
        Blast.Search.default_dna ~word_size:5 ~matrix:dna_matrix ~gap:gap1
          ~params:dna_params ()
      in
      let hits, _ = Blast.Search.search cfg ~query:q ~db in
      let sw_hits, _ =
        Align.Smith_waterman.search ~matrix:dna_matrix ~gap:gap1 ~query:q ~db
          ~min_score:1
      in
      List.for_all
        (fun h ->
          match
            List.find_opt
              (fun s -> s.Align.Smith_waterman.seq_index = h.Blast.Search.seq_index)
              sw_hits
          with
          | None -> false (* BLAST found something S-W scored 0?! *)
          | Some s -> h.Blast.Search.score <= s.Align.Smith_waterman.score)
        hits)

let qcheck_planted_exact_found =
  QCheck.Test.make ~count:200 ~name:"long exact plants are always found"
    QCheck.(
      make
        Gen.(pair (dna_string 12 20) (pair (dna_string 20 40) (dna_string 20 40)))
        ~print:(fun (q, (a, b)) -> q ^ " in " ^ a ^ "|" ^ b))
    (fun (qtext, (prefix, suffix)) ->
      let db = dna_db [ prefix ^ qtext ^ suffix ] in
      let q = dseq "q" qtext in
      let cfg =
        Blast.Search.default_dna ~word_size:8 ~matrix:dna_matrix ~gap:gap1
          ~params:dna_params ()
      in
      let hits, _ = Blast.Search.search cfg ~query:q ~db in
      match hits with
      | h :: _ -> h.Blast.Search.score >= String.length qtext
      | [] -> false)

let () =
  Alcotest.run "blast"
    [
      ( "word_index",
        [
          Alcotest.test_case "exact words" `Quick test_exact_word_index;
          Alcotest.test_case "neighborhood" `Quick test_neighborhood_index;
          Alcotest.test_case "short query" `Quick test_short_query_empty_index;
        ] );
      ( "extension",
        [
          Alcotest.test_case "ungapped" `Quick test_ungapped_extension;
          Alcotest.test_case "x-drop stops" `Quick test_xdrop_stops;
          Alcotest.test_case "gapped recovers gap" `Quick
            test_gapped_extension_recovers_gap;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "finds planted match" `Quick test_finds_planted_match;
          Alcotest.test_case "misses without seed" `Quick test_misses_without_seed;
          Alcotest.test_case "protein pipeline" `Quick test_protein_pipeline;
          Alcotest.test_case "evalue filter" `Quick test_evalue_filter;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_blast_never_beats_sw; qcheck_planted_exact_found ] );
    ]
