(* The serving layer: wire-protocol round-trips and damage handling,
   the engine Session reentrancy contract, and an in-process daemon
   exercised over a real Unix-domain socket — concurrent clients,
   overload rejects, mid-stream disconnects, shutdown. *)

let alpha = Bioseq.Alphabet.dna
let unit_matrix = Scoring.Matrices.dna_unit

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let seq s = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" s

(* ---------- protocol: round-trips ---------- *)

let gen_gap =
  QCheck.Gen.(
    oneof
      [
        map (fun p -> Serve.Protocol.Linear { penalty = p }) (int_bound 50);
        map2
          (fun o e -> Serve.Protocol.Affine { open_cost = o; extend_cost = e })
          (int_bound 50) (int_bound 50);
      ])

let gen_search =
  QCheck.Gen.(
    let opt_int = opt (int_bound 1_000_000) in
    let* query = string_size ~gen:printable (int_range 0 200) in
    let* matrix = string_size ~gen:printable (int_range 0 20) in
    let* gap = gen_gap in
    let* min_score = int_bound 1000 in
    let* max_hits = opt_int in
    let* max_columns = opt_int in
    let* max_expanded = opt_int in
    let* time_limit = opt (map (fun i -> float_of_int i /. 7.) (int_bound 1000)) in
    let* seed_cutoff = bool in
    return
      {
        Serve.Protocol.query;
        matrix;
        gap;
        min_score;
        max_hits;
        max_columns;
        max_expanded;
        time_limit;
        seed_cutoff;
      })

let gen_request =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun s -> Serve.Protocol.Search s) gen_search);
        (1, return Serve.Protocol.Stats);
        (1, return Serve.Protocol.Ping);
        (1, map (fun ms -> Serve.Protocol.Sleep ms) (int_bound 10_000));
        (1, return Serve.Protocol.Shutdown);
      ])

let gen_response =
  QCheck.Gen.(
    let str = string_size ~gen:printable (int_range 0 60) in
    frequency
      [
        ( 4,
          let* seq_index = int_bound 1_000_000 in
          let* score = int_range (-100) 10_000 in
          let* query_stop = int_bound 10_000 in
          let* target_stop = int_bound 10_000 in
          let* seq_id = str in
          return
            (Serve.Protocol.Hit
               { seq_index; score; query_stop; target_stop; seq_id }) );
        ( 2,
          let* outcome =
            oneof
              [
                return Serve.Protocol.Complete;
                map
                  (fun b -> Serve.Protocol.Exhausted { remaining_bound = b })
                  (int_range (-10) 10_000);
              ]
          in
          let* hits = int_bound 100_000 in
          let* wall_us = int_bound 100_000_000 in
          return (Serve.Protocol.Done { outcome; hits; wall_us }) );
        ( 2,
          let* r =
            oneof
              [
                map2
                  (fun i c ->
                    Serve.Protocol.Overloaded { in_flight = i; capacity = c })
                  (int_bound 100) (int_bound 100);
                map (fun m -> Serve.Protocol.Bad_request m) str;
                return Serve.Protocol.Shutting_down;
                map (fun m -> Serve.Protocol.Server_error m) str;
              ]
          in
          return (Serve.Protocol.Reject r) );
        ( 1,
          map
            (fun kvs -> Serve.Protocol.Stats_reply kvs)
            (list_size (int_bound 20) (pair str (int_bound 1_000_000))) );
        (1, return Serve.Protocol.Pong);
      ])

(* Feed the decoder one byte per read call: frame reading must not
   assume a frame arrives in whole reads (sockets fragment). *)
let dribble_reader s : Serve.Protocol.reader =
  let inner = Serve.Protocol.reader_of_string s in
  fun buf off len -> inner buf off (min 1 len)

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request frames round-trip (byte dribble)"
    (QCheck.make gen_request) (fun req ->
      let s = Serve.Protocol.encode_request req in
      match Serve.Protocol.read_request (dribble_reader s) with
      | Ok req' -> req' = req
      | Error e ->
        QCheck.Test.fail_reportf "decode failed: %s"
          (Serve.Protocol.error_to_string e))

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response frames round-trip"
    (QCheck.make gen_response) (fun resp ->
      let s = Serve.Protocol.encode_response resp in
      match Serve.Protocol.read_response (Serve.Protocol.reader_of_string s) with
      | Ok resp' -> resp' = resp
      | Error e ->
        QCheck.Test.fail_reportf "decode failed: %s"
          (Serve.Protocol.error_to_string e))

(* ---------- protocol: torn and damaged frames ---------- *)

let sample_search =
  {
    Serve.Protocol.query = "ACGTACGTAC";
    matrix = "dna-unit";
    gap = Serve.Protocol.Linear { penalty = 3 };
    min_score = 5;
    max_hits = Some 10;
    max_columns = None;
    max_expanded = Some 4096;
    time_limit = Some 1.5;
    seed_cutoff = true;
  }

(* A Search frame from a writer predating the seed_cutoff trailing
   byte must still decode (as [seed_cutoff = false]): strip the last
   payload byte and re-seal the header. *)
let test_wire_search_v1_compat () =
  let frame =
    Serve.Protocol.encode_request (Serve.Protocol.Search sample_search)
  in
  let n = String.length frame in
  let payload = String.sub frame 10 (n - 10 - 1) in
  let b = Buffer.create n in
  Buffer.add_string b (String.sub frame 0 2);
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_int32_be b (Int32.of_int (Storage.Crc32.string payload));
  Buffer.add_string b payload;
  match
    Serve.Protocol.read_request
      (Serve.Protocol.reader_of_string (Buffer.contents b))
  with
  | Ok (Serve.Protocol.Search s) ->
    Alcotest.(check bool) "seed_cutoff defaults to false" false s.seed_cutoff;
    Alcotest.(check bool) "other fields survive" true
      (s = { sample_search with seed_cutoff = false })
  | Ok _ -> Alcotest.fail "decoded as a different request"
  | Error e -> Alcotest.failf "v1 frame rejected: %s" (Serve.Protocol.error_to_string e)

let test_truncation_every_boundary () =
  let frame = Serve.Protocol.encode_request (Serve.Protocol.Search sample_search) in
  let n = String.length frame in
  for cut = 0 to n - 1 do
    let r =
      Serve.Protocol.read_request
        (Serve.Protocol.reader_of_string (String.sub frame 0 cut))
    in
    let expected = if cut = 0 then Serve.Protocol.Closed else Serve.Protocol.Truncated in
    match r with
    | Error e when e = expected -> ()
    | Error e ->
      Alcotest.failf "cut at %d/%d: got %s" cut n
        (Serve.Protocol.error_to_string e)
    | Ok _ -> Alcotest.failf "cut at %d/%d decoded successfully" cut n
  done;
  (* And the uncut frame still parses. *)
  match Serve.Protocol.read_request (Serve.Protocol.reader_of_string frame) with
  | Ok (Serve.Protocol.Search s) ->
    Alcotest.(check bool) "intact frame" true (s = sample_search)
  | _ -> Alcotest.fail "intact frame failed to parse"

(* Read a frame through a byte stream stored on a fault-injected
   device: whatever the faults do, decoding must return a typed error
   (or, when nothing fired, the original value) — never raise, never
   misparse. *)
let device_reader dev : Serve.Protocol.reader =
  let pos = ref 0 in
  let len = Storage.Device.length dev in
  fun buf off want ->
    let n = min want (len - !pos) in
    if n <= 0 then 0
    else begin
      let chunk = Bytes.create n in
      Storage.Device.pread dev ~off:!pos ~buf:chunk;
      Bytes.blit chunk 0 buf off n;
      pos := !pos + n;
      n
    end

let test_bit_flipped_frames () =
  let frame = Serve.Protocol.encode_request (Serve.Protocol.Search sample_search) in
  for fseed = 1 to 60 do
    let dev = Storage.Device.in_memory () in
    Storage.Device.append dev (Bytes.of_string frame);
    let plan = Storage.Faulty.plan ~seed:fseed ~bit_flip_prob:1.0 () in
    let faulty, handle = Storage.Faulty.wrap plan dev in
    (match Serve.Protocol.read_request (device_reader faulty) with
    | Error _ -> ()
    | Ok req ->
      (* A flip in each read of a non-empty-payload frame cannot leave
         both the payload and its stored CRC consistent. *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: flipped frame misparsed" fseed)
        true
        (req = Serve.Protocol.Search sample_search));
    let stats = Storage.Faulty.stats handle in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: faults actually fired" fseed)
      true
      (stats.Storage.Faulty.bit_flips > 0)
  done

let test_torn_append_frames () =
  (* A frame whose tail a crash tore off reads back as Truncated. *)
  let frame = Serve.Protocol.encode_request (Serve.Protocol.Search sample_search) in
  let torn = ref 0 in
  for fseed = 1 to 40 do
    let dev = Storage.Device.in_memory () in
    let plan = Storage.Faulty.plan ~seed:fseed ~torn_append_prob:1.0 () in
    let faulty, handle = Storage.Faulty.wrap plan dev in
    Storage.Faulty.(ignore (stats handle));
    Storage.Device.append faulty (Bytes.of_string frame);
    if (Storage.Faulty.stats handle).Storage.Faulty.torn_appends > 0 then begin
      incr torn;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: device shorter" fseed)
        true
        (Storage.Device.length dev < String.length frame);
      match Serve.Protocol.read_request (device_reader dev) with
      | Error (Serve.Protocol.Truncated | Serve.Protocol.Closed) -> ()
      | Error e ->
        Alcotest.failf "seed %d: torn frame gave %s" fseed
          (Serve.Protocol.error_to_string e)
      | Ok _ -> Alcotest.failf "seed %d: torn frame decoded" fseed
    end
  done;
  Alcotest.(check bool) "some appends tore" true (!torn > 0)

(* ---------- engine sessions: reentrancy ---------- *)

let strings_for_sessions =
  [
    "ACGTACGTACGTTTAGCCGATT";
    "TTTTACGTACGAACCGGTTACG";
    "GGGCCCAAATTTACGTAGCATC";
    "ACACACACGTGTGTGTACGTAA";
    "CGATCGATCGTACGTACGATCG";
    "TTAGGACCATTACGGATACGTT";
  ]

let stream_of_engine next engine =
  let rec go acc =
    match next engine with
    | Some h ->
      go
        ((h.Oasis.Hit.seq_index, h.Oasis.Hit.score, h.Oasis.Hit.query_stop,
          h.Oasis.Hit.target_stop)
        :: acc)
    | None -> List.rev acc
  in
  go []

let hit_stream = Alcotest.(list (pair (pair int int) (pair int int)))

let pack = List.map (fun (a, b, c, d) -> ((a, b), (c, d)))

let cfg ?(affine = false) min_score =
  let gap =
    if affine then Scoring.Gap.affine ~open_cost:4 ~extend_cost:1
    else Scoring.Gap.linear 2
  in
  Oasis.Engine.config ~matrix:unit_matrix ~gap ~min_score ()

let test_session_reuse_mem () =
  let db = db_of_strings strings_for_sessions in
  let tree = Suffix_tree.Ukkonen.build db in
  let q1 = seq "ACGTACGT" and q2 = seq "TTTACGGATAC" in
  (* Reference streams from fresh engines; affine config changes the
     column width, so reuse also exercises Col_pool.reset's re-slot. *)
  let fresh query c =
    pack
      (stream_of_engine Oasis.Engine.Mem.next
         (Oasis.Engine.Mem.create ~source:tree ~db ~query c))
  in
  let session = Oasis.Engine.Mem.Session.create () in
  let with_session query c =
    pack
      (stream_of_engine Oasis.Engine.Mem.next
         (Oasis.Engine.Mem.create ~session ~source:tree ~db ~query c))
  in
  let plan =
    [ (q1, cfg 4); (q2, cfg ~affine:true 4); (q1, cfg 4); (q2, cfg 2) ]
  in
  List.iteri
    (fun i (q, c) ->
      Alcotest.check hit_stream
        (Printf.sprintf "reused session run %d = fresh engine" i)
        (fresh q c) (with_session q c))
    plan

let test_session_reuse_disk () =
  let db = db_of_strings strings_for_sessions in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:64 ~capacity:16 tree in
  let q = seq "ACGTACGTTT" in
  let fresh c =
    pack
      (stream_of_engine Oasis.Engine.Disk.next
         (Oasis.Engine.Disk.create ~source:dt ~db ~query:q c))
  in
  let session = Oasis.Engine.Disk.Session.create () in
  List.iteri
    (fun i c ->
      let got =
        pack
          (stream_of_engine Oasis.Engine.Disk.next
             (Oasis.Engine.Disk.create ~session ~source:dt ~db ~query:q c))
      in
      Alcotest.check hit_stream
        (Printf.sprintf "disk session run %d = fresh" i)
        (fresh c) got)
    [ cfg 4; cfg ~affine:true 4; cfg 2 ]

(* Two sessions over ONE tree image, their searches interleaved call by
   call, must each produce the stream a solo run produces — the
   daemon's concurrency model in miniature. *)
let interleave_property db_strings qa qb pattern =
  let db = db_of_strings db_strings in
  let tree = Suffix_tree.Ukkonen.build db in
  let qa = seq qa and qb = seq qb in
  let c = cfg 3 in
  let solo query =
    pack
      (stream_of_engine Oasis.Engine.Mem.next
         (Oasis.Engine.Mem.create ~source:tree ~db ~query c))
  in
  let sa = Oasis.Engine.Mem.Session.create ()
  and sb = Oasis.Engine.Mem.Session.create () in
  let ea = Oasis.Engine.Mem.create ~session:sa ~source:tree ~db ~query:qa c
  and eb = Oasis.Engine.Mem.create ~session:sb ~source:tree ~db ~query:qb c in
  let ha = ref [] and hb = ref [] in
  let da = ref false and db' = ref false in
  let step engine acc done_ =
    if not !done_ then
      match Oasis.Engine.Mem.next engine with
      | Some h ->
        acc :=
          (h.Oasis.Hit.seq_index, h.Oasis.Hit.score, h.Oasis.Hit.query_stop,
           h.Oasis.Hit.target_stop)
          :: !acc
      | None -> done_ := true
  in
  let i = ref 0 in
  while not (!da && !db') do
    let pick_a =
      if !da then false
      else if !db' then true
      else List.nth pattern (!i mod List.length pattern)
    in
    if pick_a then step ea ha da else step eb hb db';
    incr i
  done;
  pack (List.rev !ha) = solo qa && pack (List.rev !hb) = solo qb

let test_interleaved_sessions () =
  Alcotest.(check bool)
    "alternating interleave matches solo runs" true
    (interleave_property strings_for_sessions "ACGTACGT" "TTTACGGATAC"
       [ true; false ])

let qcheck_interleaved_sessions =
  let gen =
    QCheck.Gen.(
      let dna n = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) n in
      let* strings = list_size (int_range 2 8) (dna (int_range 8 40)) in
      let* qa = dna (int_range 3 12) in
      let* qb = dna (int_range 3 12) in
      let* pattern = list_size (int_range 1 6) bool in
      return (strings, qa, qb, pattern))
  in
  QCheck.Test.make ~count:60
    ~name:"interleaved sessions on one tree = sequential streams"
    (QCheck.make gen) (fun (strings, qa, qb, pattern) ->
      let pattern = if List.for_all not pattern then [ true ] else pattern in
      interleave_property strings qa qb pattern)

(* ---------- the daemon, in process ---------- *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "oasis-test-%d-%s.sock" (Unix.getpid ()) name)

let daemon_db_strings =
  List.init 24 (fun i ->
      (* Deterministic, repetitive enough to align against. *)
      let pat = [| "ACGTAC"; "GTTAGC"; "CGATTA"; "TTACGG" |] in
      String.concat ""
        (List.init 6 (fun j -> pat.((i + (3 * j)) mod 4)))
      ^ "ACGTACGT")

let daemon_query = "ACGTACGTTAGC"

let wire_search ?max_hits ?max_columns ?(seed_cutoff = false)
    ?(min_score = 6) () =
  {
    Serve.Protocol.query = daemon_query;
    matrix = Scoring.Submat.name unit_matrix;
    gap = Serve.Protocol.Linear { penalty = 2 };
    min_score;
    max_hits;
    max_columns;
    max_expanded = None;
    time_limit = None;
    seed_cutoff;
  }

(* Reference stream straight from the engine, in wire shape. *)
let reference_stream db tree ~min_score =
  let query = seq daemon_query in
  let config =
    Oasis.Engine.config ~matrix:unit_matrix ~gap:(Scoring.Gap.linear 2)
      ~min_score ()
  in
  let engine = Oasis.Engine.Mem.create ~source:tree ~db ~query config in
  List.map
    (fun (i, s, qs, ts) ->
      (i, s, qs, ts, Bioseq.Sequence.id (Bioseq.Database.seq db i)))
    (stream_of_engine Oasis.Engine.Mem.next engine)

let collect_search ?stop_after ~path req =
  let hits = ref [] in
  let result =
    Serve.Client.search ?stop_after ~path
      ~on_hit:(fun _ (h : Serve.Protocol.hit) ->
        hits :=
          (h.seq_index, h.score, h.query_stop, h.target_stop, h.seq_id)
          :: !hits)
      req
  in
  (List.rev !hits, result)

let wait_for_daemon path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    match Serve.Client.request ~path Serve.Protocol.Ping with
    | Ok Serve.Protocol.Pong -> ()
    | _ | (exception Unix.Unix_error _) ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "daemon did not come up within 10s"
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

let with_daemon ~name ~workers ~queue_depth ?(allow_sleep = false) f =
  let db = db_of_strings daemon_db_strings in
  let tree = Suffix_tree.Ukkonen.build db in
  let path = sock_path name in
  let cfg =
    Serve.Server.config ~workers ~queue_depth ~allow_sleep ~alphabet:alpha
      ~socket_path:path ()
  in
  let server =
    Serve.Server.create cfg ~make_worker:(fun _ ->
        Serve.Backend.mem ~tree ~db ())
  in
  let d = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join d;
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path))
    (fun () ->
      wait_for_daemon path;
      f ~path ~db ~tree)

let wire_hits = Alcotest.(list (pair (pair int int) (pair int string)))
let pack_wire = List.map (fun (a, b, c, _d, e) -> ((a, b), (c, e)))

let test_daemon_streams_and_budget () =
  with_daemon ~name:"basic" ~workers:2 ~queue_depth:4
    (fun ~path ~db ~tree ->
      let reference = reference_stream db tree ~min_score:6 in
      (* Sequential client: bit-identical to the engine. *)
      let hits, result = collect_search ~path (wire_search ()) in
      (match result with
      | Serve.Client.Finished { outcome = Serve.Protocol.Complete; hits = n; _ }
        ->
        Alcotest.(check int) "hit count" (List.length reference) n
      | _ -> Alcotest.fail "expected a Complete finish");
      Alcotest.check wire_hits "daemon stream = engine stream"
        (pack_wire reference) (pack_wire hits);
      (* Budget-capped: stream is a prefix; exhaustion is typed. *)
      let bhits, bresult =
        collect_search ~path (wire_search ~max_columns:16 ())
      in
      let is_prefix =
        List.length bhits <= List.length reference
        && List.for_all2
             (fun a b -> a = b)
             bhits
             (List.filteri (fun i _ -> i < List.length bhits) reference)
      in
      Alcotest.(check bool) "budget stream is a prefix" true is_prefix;
      (match bresult with
      | Serve.Client.Finished { outcome; hits = n; _ } ->
        Alcotest.(check int) "budget hit count" (List.length bhits) n;
        if List.length bhits < List.length reference then
          Alcotest.(check bool)
            "short stream must be Exhausted" true
            (match outcome with
            | Serve.Protocol.Exhausted _ -> true
            | Serve.Protocol.Complete -> false)
      | _ -> Alcotest.fail "expected a finish");
      (* max_hits cap truncates the stream without an engine budget. *)
      let chits, cresult = collect_search ~path (wire_search ~max_hits:2 ()) in
      Alcotest.(check int) "max_hits cap" (min 2 (List.length reference))
        (List.length chits);
      match cresult with
      | Serve.Client.Finished _ -> ()
      | _ -> Alcotest.fail "expected a finish under max_hits")

(* --seed-cutoff over the wire: a capped seeded stream must equal the
   capped unseeded one (seeding is monotone-safe), and an uncapped
   seeded request is a typed Bad_request, not a wrong stream. *)
let test_daemon_seed_cutoff () =
  with_daemon ~name:"seed" ~workers:1 ~queue_depth:2
    (fun ~path ~db:_ ~tree:_ ->
      let plain, _ = collect_search ~path (wire_search ~max_hits:3 ()) in
      let seeded, result =
        collect_search ~path (wire_search ~max_hits:3 ~seed_cutoff:true ())
      in
      (match result with
      | Serve.Client.Finished _ -> ()
      | _ -> Alcotest.fail "seeded search did not finish");
      Alcotest.check wire_hits "seeded stream = unseeded stream"
        (pack_wire plain) (pack_wire seeded);
      match
        collect_search ~path (wire_search ~seed_cutoff:true ())
      with
      | _, Serve.Client.Rejected (Serve.Protocol.Bad_request _) -> ()
      | _ -> Alcotest.fail "uncapped seed_cutoff must be a Bad_request")

let test_daemon_concurrent_clients () =
  with_daemon ~name:"conc" ~workers:2 ~queue_depth:8 (fun ~path ~db ~tree ->
      let reference = pack_wire (reference_stream db tree ~min_score:6) in
      let clients =
        List.init 4 (fun _ ->
            Domain.spawn (fun () -> collect_search ~path (wire_search ())))
      in
      List.iteri
        (fun i d ->
          let hits, result = Domain.join d in
          (match result with
          | Serve.Client.Finished { outcome = Serve.Protocol.Complete; _ } -> ()
          | _ -> Alcotest.failf "client %d did not finish Complete" i);
          Alcotest.check wire_hits
            (Printf.sprintf "client %d stream = engine stream" i)
            reference (pack_wire hits))
        clients)

let test_daemon_disconnect_and_stats () =
  with_daemon ~name:"disc" ~workers:2 ~queue_depth:4 (fun ~path ~db ~tree ->
      let reference = reference_stream db tree ~min_score:6 in
      Alcotest.(check bool) "reference has >= 2 hits" true
        (List.length reference >= 2);
      (* Cut the stream after one hit; the daemon must survive. *)
      let hits, result =
        collect_search ~stop_after:1 ~path (wire_search ())
      in
      (match result with
      | Serve.Client.Cut 1 -> ()
      | _ -> Alcotest.fail "expected Cut 1");
      Alcotest.check wire_hits "the one hit is the best one"
        (pack_wire [ List.hd reference ])
        (pack_wire hits);
      (* Daemon still serves complete streams afterwards. *)
      let hits2, _ = collect_search ~path (wire_search ()) in
      Alcotest.check wire_hits "post-disconnect stream intact"
        (pack_wire reference) (pack_wire hits2);
      (* Bad request: typed reject, not a dead daemon. *)
      (match
         collect_search ~path
           { (wire_search ()) with Serve.Protocol.matrix = "no-such-matrix" }
       with
      | _, Serve.Client.Rejected (Serve.Protocol.Bad_request _) -> ()
      | _ -> Alcotest.fail "expected Bad_request reject");
      (* The deterministic disconnect: hang up before sending any
         request, so the server's request read sees the close. (A
         mid-stream hang-up races with writes the socket buffer already
         absorbed, so it may look like a completion on tiny streams.) *)
      Serve.Client.close (Serve.Client.connect path);
      (* SLO stats: the verb answers with the counters we just drove;
         the hung-up connection's task runs asynchronously, so poll. *)
      let get_stats () =
        match Serve.Client.request ~path Serve.Protocol.Stats with
        | Ok (Serve.Protocol.Stats_reply items) ->
          fun k ->
            (try List.assoc k items
             with Not_found -> Alcotest.failf "stats key %s missing" k)
        | _ -> Alcotest.fail "stats verb failed"
      in
      let deadline = Unix.gettimeofday () +. 5. in
      let rec settled () =
        let get = get_stats () in
        if get "serve.disconnects" >= 1 then get
        else if Unix.gettimeofday () > deadline then get
        else begin
          Unix.sleepf 0.05;
          settled ()
        end
      in
      let get = settled () in
      Alcotest.(check bool) "disconnects counted" true
        (get "serve.disconnects" >= 1);
      Alcotest.(check bool) "bad request counted" true
        (get "serve.bad_request" >= 1);
      Alcotest.(check bool) "completions counted" true
        (get "serve.completed" >= 2);
      Alcotest.(check bool) "hits streamed" true
        (get "serve.hits_streamed" >= List.length reference);
      Alcotest.(check bool) "p50 <= p99" true
        (get "serve.latency_us_p50" <= get "serve.latency_us_p99"))

let test_daemon_overload_reject () =
  with_daemon ~name:"over" ~workers:1 ~queue_depth:0 ~allow_sleep:true
    (fun ~path ~db:_ ~tree:_ ->
      (* Saturate the single worker, then demand an immediate typed
         refusal — not a hang — for the next connection. *)
      let sleeper =
        Domain.spawn (fun () ->
            Serve.Client.request ~path (Serve.Protocol.Sleep 2000))
      in
      let deadline = Unix.gettimeofday () +. 8. in
      let rec poke () =
        match Serve.Client.request ~path Serve.Protocol.Ping with
        | Ok (Serve.Protocol.Reject (Serve.Protocol.Overloaded { in_flight; capacity }))
          ->
          Alcotest.(check int) "capacity" 1 capacity;
          Alcotest.(check bool) "in_flight at capacity" true (in_flight >= 1)
        | _ when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.05;
          poke ()
        | _ -> Alcotest.fail "never saw a typed Overloaded reject"
      in
      poke ();
      (match Domain.join sleeper with
      | Ok Serve.Protocol.Pong -> ()
      | _ -> Alcotest.fail "sleeper did not complete");
      (* Capacity freed: requests are admitted again. *)
      match Serve.Client.request ~path Serve.Protocol.Ping with
      | Ok Serve.Protocol.Pong -> ()
      | _ -> Alcotest.fail "daemon did not recover after overload")

let test_daemon_shutdown_verb () =
  let db = db_of_strings daemon_db_strings in
  let tree = Suffix_tree.Ukkonen.build db in
  let path = sock_path "shut" in
  let cfg =
    Serve.Server.config ~workers:1 ~queue_depth:2 ~alphabet:alpha
      ~socket_path:path ()
  in
  let server =
    Serve.Server.create cfg ~make_worker:(fun _ ->
        Serve.Backend.mem ~tree ~db ())
  in
  let d = Domain.spawn (fun () -> Serve.Server.run server) in
  wait_for_daemon path;
  (match Serve.Client.request ~path Serve.Protocol.Shutdown with
  | Ok Serve.Protocol.Pong -> ()
  | _ -> Alcotest.fail "shutdown verb failed");
  Domain.join d;
  Alcotest.(check bool) "socket unlinked after shutdown" false
    (Sys.file_exists path)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
          Alcotest.test_case "truncation at every byte boundary" `Quick
            test_truncation_every_boundary;
          Alcotest.test_case "pre-seed_cutoff Search frames decode" `Quick
            test_wire_search_v1_compat;
          Alcotest.test_case "bit-flipped frames fail typed" `Quick
            test_bit_flipped_frames;
          Alcotest.test_case "torn-append frames read as truncated" `Quick
            test_torn_append_frames;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "session reuse (mem) = fresh engines" `Quick
            test_session_reuse_mem;
          Alcotest.test_case "session reuse (disk) = fresh engines" `Quick
            test_session_reuse_disk;
          Alcotest.test_case "interleaved sessions = solo streams" `Quick
            test_interleaved_sessions;
          QCheck_alcotest.to_alcotest qcheck_interleaved_sessions;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "streams, budgets, hit caps" `Quick
            test_daemon_streams_and_budget;
          Alcotest.test_case "seed-cutoff: same stream, typed reject" `Quick
            test_daemon_seed_cutoff;
          Alcotest.test_case "4 concurrent clients, identical streams" `Quick
            test_daemon_concurrent_clients;
          Alcotest.test_case "mid-stream disconnect + SLO stats" `Quick
            test_daemon_disconnect_and_stats;
          Alcotest.test_case "typed overload reject" `Quick
            test_daemon_overload_reject;
          Alcotest.test_case "shutdown verb unlinks the socket" `Quick
            test_daemon_shutdown_verb;
        ] );
    ]
