(* The observability layer: metric cells, the registry, the telescoping
   phase timer, the trace sink's two output formats, and the
   instrumented engines end to end — including the two promises the
   CLI's --stats/--trace surface makes: phase times sum to (within 10%
   of) the wall time spent in the search, and the trace's "expand"
   events agree exactly with the nodes_expanded counter. *)

(* ---------- Metric ---------- *)

let test_counter () =
  let c = Obs.Metric.counter () in
  Alcotest.(check int) "fresh counter" 0 (Obs.Metric.count c);
  Obs.Metric.incr c;
  Obs.Metric.incr c;
  Obs.Metric.add c 40;
  Alcotest.(check int) "incr + add" 42 (Obs.Metric.count c)

let test_gauge () =
  let g = Obs.Metric.gauge () in
  Obs.Metric.set g 5;
  Obs.Metric.set g 17;
  Obs.Metric.set g 3;
  Alcotest.(check int) "value is last set" 3 (Obs.Metric.value g);
  Alcotest.(check int) "peak is max ever set" 17 (Obs.Metric.peak g)

let test_histogram () =
  let h = Obs.Metric.histogram () in
  Alcotest.(check int) "empty count" 0 (Obs.Metric.hist_count h);
  List.iter (Obs.Metric.observe h) [ 1; 2; 3; 100; 0; -7 ];
  Alcotest.(check int) "count" 6 (Obs.Metric.hist_count h);
  Alcotest.(check int) "sum (negatives contribute 0)" 106
    (Obs.Metric.hist_sum h);
  Alcotest.(check int) "min" (-7) (Obs.Metric.hist_min h);
  Alcotest.(check int) "max" 100 (Obs.Metric.hist_max h);
  Alcotest.(check (float 1e-6)) "mean" (106. /. 6.) (Obs.Metric.mean h);
  (* The log2 bucket invariant: an upper quantile bound is never below
     a lower one, p0 reaches the smallest bucket's bound and p100 covers
     the max. *)
  Alcotest.(check bool) "quantiles monotone" true
    (Obs.Metric.quantile h 0.25 <= Obs.Metric.quantile h 0.75);
  Alcotest.(check bool) "p100 covers max" true
    (Obs.Metric.quantile h 1.0 >= 100);
  let total = ref 0 in
  Obs.Metric.iter_buckets h (fun ~lo:_ ~hi:_ ~count -> total := !total + count);
  Alcotest.(check int) "buckets sum to count" 6 !total

let test_histogram_buckets () =
  (* 2^(k-1) <= v < 2^k lands in bucket k; check the boundaries via
     iter_buckets ranges. *)
  let h = Obs.Metric.histogram () in
  List.iter (Obs.Metric.observe h) [ 1; 2; 4; 8; 1024 ];
  Obs.Metric.iter_buckets h (fun ~lo ~hi ~count ->
      if count > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "bucket [%d, %d) holds only its range" lo hi)
          true
          (List.exists (fun v -> v >= lo && v < hi) [ 1; 2; 4; 8; 1024 ]))

(* ---------- Registry ---------- *)

let test_registry () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "a.count" in
  let _g = Obs.Registry.gauge r "a.gauge" in
  let _h = Obs.Registry.histogram r "a.hist" in
  Alcotest.(check bool) "same name returns the same cell" true
    (c == Obs.Registry.counter r "a.count");
  Alcotest.(check int) "items in registration order" 3
    (List.length (Obs.Registry.items r));
  Alcotest.(check (list string)) "names"
    [ "a.count"; "a.gauge"; "a.hist" ]
    (List.map fst (Obs.Registry.items r));
  Alcotest.(check bool) "find" true (Obs.Registry.find r "a.gauge" <> None);
  Alcotest.(check bool) "find miss" true (Obs.Registry.find r "nope" = None);
  match Obs.Registry.gauge r "a.count" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ()

(* ---------- Timer ---------- *)

let spin_for seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ignore (Sys.opaque_identity (sqrt 2.))
  done

let test_timer_telescopes () =
  let t = Obs.Timer.create ~phases:[| "a"; "b"; "c" |] in
  Alcotest.(check (float 0.)) "fresh total" 0. (Obs.Timer.total t);
  let w0 = Unix.gettimeofday () in
  Obs.Timer.switch t 0;
  spin_for 0.01;
  Obs.Timer.switch t 1;
  spin_for 0.02;
  Obs.Timer.switch t 0;
  spin_for 0.01;
  Obs.Timer.pause t;
  let wall = Unix.gettimeofday () -. w0 in
  let sum =
    List.fold_left (fun acc (_, s) -> acc +. s) 0. (Obs.Timer.phases t)
  in
  (* switch/pause read the clock once each, so phase times sum to the
     switch-to-pause wall span exactly (modulo the clock reads
     themselves, far below a millisecond). *)
  Alcotest.(check bool) "phases sum to the covered wall span" true
    (abs_float (sum -. wall) < 2e-3);
  Alcotest.(check (float 1e-9)) "total = sum of phases" sum
    (Obs.Timer.total t);
  Alcotest.(check bool) "a accrued both spans" true
    (Obs.Timer.elapsed t 0 >= 0.015);
  Alcotest.(check bool) "b accrued its span" true
    (Obs.Timer.elapsed t 1 >= 0.015);
  Alcotest.(check (float 0.)) "c never ran" 0. (Obs.Timer.elapsed t 2);
  Obs.Timer.pause t;
  Alcotest.(check (float 1e-9)) "pause when stopped is a no-op" sum
    (Obs.Timer.total t);
  Obs.Timer.reset t;
  Alcotest.(check (float 0.)) "reset clears" 0. (Obs.Timer.total t)

(* ---------- Trace ---------- *)

let with_trace_file format f =
  let path = Filename.temp_file "oasis_trace" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Obs.Trace.create ~format oc in
      f sink;
      Obs.Trace.close sink;
      close_out oc;
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      text)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_trace_jsonl () =
  let text =
    with_trace_file Obs.Trace.Jsonl (fun sink ->
        Obs.Trace.instant sink ~args:[ ("x", Obs.Trace.Int 3) ] "ev";
        Obs.Trace.counter sink "ctr" [ ("v", Obs.Trace.Float 1.5) ];
        Obs.Trace.complete sink ~start_us:0 ~dur_us:10 "span";
        Alcotest.(check int) "events counted" 3 (Obs.Trace.events sink))
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "one line per event" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  Alcotest.(check bool) "instant has scope" true
    (contains ~needle:"\"ph\":\"i\",\"ts\":" text
    && contains ~needle:"\"s\":\"t\"" text);
  Alcotest.(check bool) "counter event" true
    (contains ~needle:"\"ph\":\"C\"" text);
  Alcotest.(check bool) "complete has dur" true
    (contains ~needle:"\"ph\":\"X\"" text && contains ~needle:"\"dur\":10" text);
  Alcotest.(check bool) "args serialized" true
    (contains ~needle:"\"args\":{\"x\":3}" text)

let test_trace_chrome_array () =
  let text =
    with_trace_file Obs.Trace.Chrome (fun sink ->
        Obs.Trace.instant sink "a";
        Obs.Trace.instant sink "b")
  in
  let trimmed = String.trim text in
  Alcotest.(check bool) "bracketed array" true
    (trimmed.[0] = '[' && trimmed.[String.length trimmed - 1] = ']');
  Alcotest.(check bool) "comma-separated" true (contains ~needle:"},\n{" text)

let test_trace_string_escaping () =
  let text =
    with_trace_file Obs.Trace.Jsonl (fun sink ->
        Obs.Trace.instant sink
          ~args:[ ("s", Obs.Trace.String "a\"b\\c\nd") ]
          "quote\"name")
  in
  Alcotest.(check bool) "name escaped" true
    (contains ~needle:"\"quote\\\"name\"" text);
  Alcotest.(check bool) "arg escaped" true
    (contains ~needle:"\"a\\\"b\\\\c\\nd\"" text)

let test_trace_timestamps_monotonic () =
  let text =
    with_trace_file Obs.Trace.Jsonl (fun sink ->
        for i = 0 to 49 do
          Obs.Trace.instant sink (Printf.sprintf "e%d" i)
        done)
  in
  let ts_of line =
    (* every event line carries ,"ts":N, *)
    let marker = "\"ts\":" in
    let rec find i =
      if String.sub line i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    let start = find 0 in
    let stop = ref start in
    while !stop < String.length line && line.[!stop] <> ',' do incr stop done;
    int_of_string (String.sub line start (!stop - start))
  in
  let stamps =
    List.map ts_of
      (List.filter (fun l -> l <> "") (String.split_on_char '\n' text))
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps non-decreasing" true (monotone stamps)

(* ---------- Instrumented engine, end to end ---------- *)

let build_db seed symbols =
  let st = Random.State.make [| seed |] in
  let letters = [| 'A'; 'C'; 'G'; 'T' |] in
  let seqs = ref [] and left = ref symbols and i = ref 0 in
  while !left > 0 do
    let len = min !left (20 + Random.State.int st 180) in
    let s = String.init len (fun _ -> letters.(Random.State.int st 4)) in
    seqs := Bioseq.Sequence.make ~alphabet:Bioseq.Alphabet.dna
        ~id:(Printf.sprintf "s%d" !i) s
      :: !seqs;
    left := !left - len;
    incr i
  done;
  Bioseq.Database.make (List.rev !seqs)

let dna_query text =
  Bioseq.Sequence.make ~alphabet:Bioseq.Alphabet.dna ~id:"q" text

let search_cfg =
  Oasis.Engine.config ~matrix:Scoring.Matrices.dna_unit
    ~gap:(Scoring.Gap.linear 1) ~min_score:8 ()

(* The --stats promise: the phase timer runs for exactly the span of
   every [next] call, so its total matches the wall time of the drain
   loop within 10% (the slack is the loop glue between calls). One
   retry absorbs a scheduler hiccup on a loaded runner. *)
let test_phase_sum_within_10pct_of_wall () =
  let db = build_db 42 30000 in
  let tree = Suffix_tree.Ukkonen.build db in
  let attempt () =
    let inst = Oasis.Instrument.create () in
    let engine =
      Oasis.Engine.Mem.create ~source:tree ~db ~query:(dna_query "ACGTAGGCTA")
        search_cfg
    in
    Oasis.Engine.Mem.set_instrument engine (Some inst);
    let w0 = Unix.gettimeofday () in
    let hits = Oasis.Engine.Mem.run engine in
    let wall = Unix.gettimeofday () -. w0 in
    let sum = Obs.Timer.total inst.Oasis.Instrument.timer in
    ignore hits;
    (sum, wall)
  in
  let ok (sum, wall) = abs_float (sum -. wall) <= 0.10 *. wall in
  let first = attempt () in
  let sum, wall = if ok first then first else attempt () in
  Alcotest.(check bool)
    (Printf.sprintf "phase sum %.4fs within 10%% of wall %.4fs" sum wall)
    true
    (abs_float (sum -. wall) <= 0.10 *. wall);
  Alcotest.(check bool) "phases cover a nonzero search" true (sum > 0.)

let test_trace_expand_count_matches_counter () =
  let db = build_db 7 8000 in
  let tree = Suffix_tree.Ukkonen.build db in
  let path = Filename.temp_file "oasis_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Obs.Trace.create ~format:Obs.Trace.Jsonl oc in
      let inst = Oasis.Instrument.create ~trace:sink () in
      let engine =
        Oasis.Engine.Mem.create ~source:tree ~db
          ~query:(dna_query "GATTACAGATT") search_cfg
      in
      Oasis.Engine.Mem.set_instrument engine (Some inst);
      let hits = Oasis.Engine.Mem.run engine in
      let counters = Oasis.Engine.Mem.counters engine in
      Oasis.Instrument.emit_counters sink counters;
      Obs.Trace.close sink;
      close_out oc;
      let expands = ref 0 and hit_events = ref 0 in
      let ic = open_in path in
      (try
         while true do
           let line = input_line ic in
           if contains ~needle:"\"name\":\"expand\"" line then incr expands;
           if contains ~needle:"\"name\":\"hit\"" line then incr hit_events
         done
       with End_of_file -> close_in ic);
      Alcotest.(check bool) "search did real work" true
        (counters.Oasis.Counters.nodes_expanded > 0);
      Alcotest.(check int) "expand events = nodes_expanded counter"
        counters.Oasis.Counters.nodes_expanded !expands;
      Alcotest.(check int) "hit events = reported hits" (List.length hits)
        !hit_events;
      (* The histograms saw the same traffic. *)
      Alcotest.(check int) "expansion_depth observations"
        counters.Oasis.Counters.nodes_expanded
        (Obs.Metric.hist_count inst.Oasis.Instrument.expansion_depth))

let test_pool_obs () =
  let db = build_db 11 4000 in
  let tree = Suffix_tree.Ukkonen.build db in
  (* Two frames force steady eviction. *)
  let dt, pool = Storage.Disk_tree.of_tree ~block_size:64 ~capacity:2 tree in
  let registry = Obs.Registry.create () in
  Storage.Buffer_pool.set_obs pool
    (Some (Storage.Buffer_pool.obs ~registry ()));
  let engine =
    Oasis.Engine.Disk.create ~source:dt ~db ~query:(dna_query "GATTACAGATT")
      search_cfg
  in
  ignore (Oasis.Engine.Disk.run engine);
  let count name =
    match Obs.Registry.find registry name with
    | Some (Obs.Registry.Counter c) -> Obs.Metric.count c
    | Some (Obs.Registry.Histogram h) -> Obs.Metric.hist_count h
    | _ -> Alcotest.failf "metric %s not registered" name
  in
  Alcotest.(check bool) "probe lengths observed" true
    (count "pool.probe_length" > 0);
  Alcotest.(check bool) "evictions counted" true (count "pool.evictions" > 0);
  Alcotest.(check bool) "pins counted" true (count "pool.pin_events" > 0)

let test_merge_obs () =
  let db = build_db 5 6000 in
  let obs = Oasis.Instrument.merge_obs () in
  Oasis.Domain_pool.with_pool ~domains:2 (fun pool ->
      let t =
        Oasis.Parallel.Mem.create_sharded ~pool ~obs ~shards:2 ~db
          ~query:(dna_query "ACGTAGGCTA") search_cfg
      in
      let hits = Oasis.Parallel.Mem.run t in
      Alcotest.(check bool) "workload produces hits" true (hits <> []);
      Alcotest.(check int) "one release latency per hit" (List.length hits)
        (Obs.Metric.hist_count obs.Oasis.Instrument.release_latency_us);
      Alcotest.(check int) "one occupancy sample per hit" (List.length hits)
        (Obs.Metric.hist_count obs.Oasis.Instrument.merge_occupancy))

let () =
  Alcotest.run "obs"
    [
      ( "metric",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge tracks peak" `Quick test_gauge;
          Alcotest.test_case "histogram moments" `Quick test_histogram;
          Alcotest.test_case "log2 buckets" `Quick test_histogram_buckets;
        ] );
      ( "registry",
        [ Alcotest.test_case "register, reuse, clash" `Quick test_registry ] );
      ( "timer",
        [ Alcotest.test_case "telescoping phases" `Quick test_timer_telescopes ]
      );
      ( "trace",
        [
          Alcotest.test_case "jsonl schema" `Quick test_trace_jsonl;
          Alcotest.test_case "chrome array format" `Quick
            test_trace_chrome_array;
          Alcotest.test_case "string escaping" `Quick
            test_trace_string_escaping;
          Alcotest.test_case "timestamps monotone" `Quick
            test_trace_timestamps_monotonic;
        ] );
      ( "engine",
        [
          Alcotest.test_case "phase sum within 10% of wall" `Quick
            test_phase_sum_within_10pct_of_wall;
          Alcotest.test_case "trace expand events = counter" `Quick
            test_trace_expand_count_matches_counter;
        ] );
      ( "layers",
        [
          Alcotest.test_case "buffer pool obs" `Quick test_pool_obs;
          Alcotest.test_case "sharded merge obs" `Quick test_merge_obs;
        ] );
    ]
