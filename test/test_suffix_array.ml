(* Suffix arrays: construction, pattern lookup vs the suffix tree and a
   naive scan, LCP array correctness. *)

let alpha = Bioseq.Alphabet.dna

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s -> Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let test_sorted_order () =
  let db = db_of_strings [ "AGTACGCCTAG" ] in
  let sa = Suffix_tree.Suffix_array.build db in
  let data = Bioseq.Database.data db in
  let n = Bytes.length data in
  Alcotest.(check int) "length" n (Suffix_tree.Suffix_array.length sa);
  let suffix r =
    let pos = Suffix_tree.Suffix_array.suffix_at sa r in
    Bytes.sub_string data pos (n - pos)
  in
  for r = 1 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "rank %d < rank %d" (r - 1) r)
      true
      (String.compare (suffix (r - 1)) (suffix r) < 0)
  done

let test_rank_inverse () =
  let db = db_of_strings [ "ACGTACGT"; "GATTACA" ] in
  let sa = Suffix_tree.Suffix_array.build db in
  for r = 0 to Suffix_tree.Suffix_array.length sa - 1 do
    Alcotest.(check int) "rank_of inverts suffix_at" r
      (Suffix_tree.Suffix_array.rank_of sa (Suffix_tree.Suffix_array.suffix_at sa r))
  done

let test_find_matches_tree () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "GATTACA" ] in
  let sa = Suffix_tree.Suffix_array.build db in
  let tree = Suffix_tree.Ukkonen.build db in
  List.iter
    (fun pattern ->
      let p = Bioseq.Alphabet.encode alpha pattern in
      Alcotest.(check (list int))
        (Printf.sprintf "find %S" pattern)
        (Suffix_tree.Tree.find_exact tree p)
        (Suffix_tree.Suffix_array.find sa p))
    [ "TACG"; "A"; "GG"; "GATTACA"; "CCC"; "TAG" ]

let test_interval_absent () =
  let db = db_of_strings [ "AAAA" ] in
  let sa = Suffix_tree.Suffix_array.build db in
  Alcotest.(check bool) "absent pattern" true
    (Suffix_tree.Suffix_array.interval sa (Bioseq.Alphabet.encode alpha "C") = None)

let test_lcp_kasai () =
  let db = db_of_strings [ "AGTACGCCTAG" ] in
  let sa = Suffix_tree.Suffix_array.build db in
  let data = Bioseq.Database.data db in
  let n = Bytes.length data in
  let lcp = Suffix_tree.Suffix_array.lcp_array sa in
  let common_prefix a b =
    let rec go i =
      if a + i < n && b + i < n && Bytes.get data (a + i) = Bytes.get data (b + i)
      then go (i + 1)
      else i
    in
    go 0
  in
  Alcotest.(check int) "lcp.(0)" 0 lcp.(0);
  for r = 1 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "lcp rank %d" r)
      (common_prefix
         (Suffix_tree.Suffix_array.suffix_at sa (r - 1))
         (Suffix_tree.Suffix_array.suffix_at sa r))
      lcp.(r)
  done

let random_db_gen =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 30)))

let qcheck_find_equals_tree =
  QCheck.Test.make ~count:200 ~name:"suffix array find = suffix tree find"
    (QCheck.make
       QCheck.Gen.(
         pair random_db_gen
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 6)))
       ~print:(fun (ss, p) -> String.concat "/" ss ^ " ? " ^ p))
    (fun (strings, pattern) ->
      let db = db_of_strings strings in
      let sa = Suffix_tree.Suffix_array.build db in
      let tree = Suffix_tree.Ukkonen.build db in
      let p = Bioseq.Alphabet.encode alpha pattern in
      Suffix_tree.Suffix_array.find sa p = Suffix_tree.Tree.find_exact tree p)

let qcheck_order_and_lcp =
  QCheck.Test.make ~count:150 ~name:"suffix order and LCP on random databases"
    (QCheck.make random_db_gen ~print:(String.concat "/"))
    (fun strings ->
      let db = db_of_strings strings in
      let sa = Suffix_tree.Suffix_array.build db in
      let data = Bioseq.Database.data db in
      let n = Bytes.length data in
      let suffix r =
        let pos = Suffix_tree.Suffix_array.suffix_at sa r in
        Bytes.sub_string data pos (n - pos)
      in
      let lcp = Suffix_tree.Suffix_array.lcp_array sa in
      let ok = ref true in
      for r = 1 to n - 1 do
        let a = suffix (r - 1) and b = suffix r in
        if String.compare a b >= 0 then ok := false;
        let rec common i =
          if i < String.length a && i < String.length b && a.[i] = b.[i] then
            common (i + 1)
          else i
        in
        if lcp.(r) <> common 0 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "suffix_array"
    [
      ( "basics",
        [
          Alcotest.test_case "sorted order" `Quick test_sorted_order;
          Alcotest.test_case "rank inverse" `Quick test_rank_inverse;
          Alcotest.test_case "find matches tree" `Quick test_find_matches_tree;
          Alcotest.test_case "absent interval" `Quick test_interval_absent;
          Alcotest.test_case "kasai lcp" `Quick test_lcp_kasai;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_find_equals_tree; qcheck_order_and_lcp ] );
    ]
