(* Suffix-tree applications: visualization export, repeat analysis,
   maximal unique matches — the §5 related-work applications built on
   the same substrate. *)

let alpha = Bioseq.Alphabet.dna

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s -> Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

(* --- Export --- *)

let test_ascii_figure2 () =
  (* The paper's Figure 2 tree over AGTACGCCTAG. *)
  let tree = Suffix_tree.Ukkonen.build (db_of_strings [ "AGTACGCCTAG" ]) in
  let art = Suffix_tree.Export.to_ascii tree in
  Alcotest.(check bool) "root" true (contains art "0N\n");
  (* The paper's path examples: path(5N) = AG, and TAG$ ends at leaf 8. *)
  Alcotest.(check bool) "AG arc" true (contains art "AG");
  Alcotest.(check bool) "leaf 8 via TAG$" true (contains art "G$ -> 8L");
  (* All 12 leaves appear. *)
  for p = 0 to 11 do
    Alcotest.(check bool)
      (Printf.sprintf "leaf %d" p)
      true
      (contains art (Printf.sprintf "%dL" p))
  done

let test_dot_well_formed () =
  let tree = Suffix_tree.Ukkonen.build (db_of_strings [ "AGTACG"; "TACG" ]) in
  let dot = Suffix_tree.Export.to_dot ~name:"fig2" tree in
  Alcotest.(check bool) "digraph" true (contains dot "digraph fig2 {");
  Alcotest.(check bool) "closed" true (contains dot "}\n");
  Alcotest.(check bool) "edges" true (contains dot "->");
  Alcotest.(check bool) "terminator rendered" true (contains dot "$")

(* --- Repeats --- *)

let test_repeats_simple () =
  (* ABAB over DNA letters: ACAC contains repeat AC (positions 0, 2). *)
  let tree = Suffix_tree.Ukkonen.build (db_of_strings [ "ACAC" ]) in
  let repeats = Suffix_tree.Repeats.all ~min_length:2 tree in
  match
    List.find_opt (fun r -> r.Suffix_tree.Repeats.text = "AC") repeats
  with
  | Some r ->
    Alcotest.(check (list int)) "positions" [ 0; 2 ] r.Suffix_tree.Repeats.positions
  | None -> Alcotest.fail "repeat AC not found"

let test_repeats_maximal () =
  (* In GTACGTACC, GTAC repeats (maximal); TAC also repeats but every
     occurrence is preceded by G, so it is not left-maximal. *)
  let tree = Suffix_tree.Ukkonen.build (db_of_strings [ "GTACGTACC" ]) in
  let all = Suffix_tree.Repeats.all ~min_length:3 tree in
  let maximal = Suffix_tree.Repeats.maximal ~min_length:3 tree in
  let texts rs = List.map (fun r -> r.Suffix_tree.Repeats.text) rs in
  Alcotest.(check bool) "TAC is a repeat" true (List.mem "TAC" (texts all));
  Alcotest.(check bool) "GTAC is maximal" true (List.mem "GTAC" (texts maximal));
  Alcotest.(check bool) "TAC is not left-maximal" false
    (List.mem "TAC" (texts maximal))

let qcheck_repeats_sound =
  let gen =
    QCheck.Gen.(string_size ~gen:(oneofl [ 'A'; 'C'; 'G' ]) (int_range 4 40))
  in
  QCheck.Test.make ~count:200 ~name:"every reported repeat really repeats"
    (QCheck.make gen ~print:Fun.id)
    (fun text ->
      let tree = Suffix_tree.Ukkonen.build (db_of_strings [ text ]) in
      let repeats = Suffix_tree.Repeats.all ~min_length:2 tree in
      List.for_all
        (fun r ->
          List.length r.Suffix_tree.Repeats.positions >= 2
          && List.for_all
               (fun p ->
                 p + r.Suffix_tree.Repeats.length <= String.length text
                 && String.sub text p r.Suffix_tree.Repeats.length
                    = r.Suffix_tree.Repeats.text)
               r.Suffix_tree.Repeats.positions)
        repeats)

let qcheck_repeats_complete =
  (* Brute force: every substring occurring >= 2 times must appear as a
     prefix of some reported right-maximal repeat occurrence set. *)
  let gen =
    QCheck.Gen.(string_size ~gen:(oneofl [ 'A'; 'C' ]) (int_range 4 20))
  in
  QCheck.Test.make ~count:100 ~name:"repeated substrings are covered"
    (QCheck.make gen ~print:Fun.id)
    (fun text ->
      let n = String.length text in
      let tree = Suffix_tree.Ukkonen.build (db_of_strings [ text ]) in
      let repeats = Suffix_tree.Repeats.all ~min_length:2 tree in
      let ok = ref true in
      for len = 2 to n - 1 do
        for pos = 0 to n - len do
          let sub = String.sub text pos len in
          let occurrences = ref [] in
          for p = 0 to n - len do
            if String.sub text p len = sub then occurrences := p :: !occurrences
          done;
          if List.length !occurrences >= 2 then begin
            (* Some repeat of length >= len must cover this substring's
               occurrence set as prefixes. *)
            let covered =
              List.exists
                (fun r ->
                  r.Suffix_tree.Repeats.length >= len
                  && String.sub r.Suffix_tree.Repeats.text 0 len = sub)
                repeats
            in
            if not covered then ok := false
          end
        done
      done;
      !ok)

(* --- MUMs --- *)

let seq id text = Bioseq.Sequence.make ~alphabet:alpha ~id text

(* Brute-force MUM oracle. *)
let brute_mums ?(min_length = 3) a b =
  let la = String.length a and lb = String.length b in
  let occurrences s sub =
    let n = String.length s and m = String.length sub in
    let out = ref [] in
    for p = 0 to n - m do
      if String.sub s p m = sub then out := p :: !out
    done;
    List.rev !out
  in
  let mums = ref [] in
  for pa = 0 to la - 1 do
    for len = min_length to la - pa do
      let sub = String.sub a pa len in
      match (occurrences a sub, occurrences b sub) with
      | [ pa' ], [ pb ] when pa' = pa ->
        (* Maximality: no extension left or right keeps unique-in-both. *)
        let left_ext =
          pa > 0 && pb > 0 && a.[pa - 1] = b.[pb - 1]
        in
        let right_ext =
          pa + len < la && pb + len < lb && a.[pa + len] = b.[pb + len]
        in
        if (not left_ext) && not right_ext then
          mums := (len, pa, pb) :: !mums
      | _ -> ()
    done
  done;
  List.sort compare !mums

let test_mums_basic () =
  let a = seq "a" "TTTGATTACAGGG" and b = seq "b" "CCGATTACATT" in
  let mums = Suffix_tree.Mums.find ~min_length:4 a b in
  match
    List.find_opt (fun m -> m.Suffix_tree.Mums.text = "GATTACA") mums
  with
  | Some m ->
    Alcotest.(check int) "pos_a" 3 m.Suffix_tree.Mums.pos_a;
    Alcotest.(check int) "pos_b" 2 m.Suffix_tree.Mums.pos_b
  | None -> Alcotest.fail "GATTACA anchor not found"

let test_mums_shared_suffix () =
  (* Identical sequences: the whole string is the single MUM. *)
  let a = seq "a" "ACGTAC" and b = seq "b" "ACGTAC" in
  match Suffix_tree.Mums.find ~min_length:3 a b with
  | [ m ] ->
    Alcotest.(check string) "text" "ACGTAC" m.Suffix_tree.Mums.text;
    Alcotest.(check int) "pos_a" 0 m.Suffix_tree.Mums.pos_a
  | ms -> Alcotest.failf "expected 1 MUM, got %d" (List.length ms)

let qcheck_mums_match_brute =
  let gen =
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 4 25))
        (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 4 25)))
  in
  QCheck.Test.make ~count:300 ~name:"MUMs equal the brute-force oracle"
    (QCheck.make gen ~print:(fun (a, b) -> a ^ " / " ^ b))
    (fun (atext, btext) ->
      let got =
        Suffix_tree.Mums.find ~min_length:3 (seq "a" atext) (seq "b" btext)
        |> List.map (fun m ->
               Suffix_tree.Mums.(m.length, m.pos_a, m.pos_b))
        |> List.sort compare
      in
      let expected = brute_mums ~min_length:3 atext btext in
      if got <> expected then
        QCheck.Test.fail_reportf "got [%s] expected [%s]"
          (String.concat ";"
             (List.map (fun (l, a, b) -> Printf.sprintf "%d@%d,%d" l a b) got))
          (String.concat ";"
             (List.map (fun (l, a, b) -> Printf.sprintf "%d@%d,%d" l a b) expected))
      else true)

let () =
  Alcotest.run "tree_apps"
    [
      ( "export",
        [
          Alcotest.test_case "figure 2 ascii" `Quick test_ascii_figure2;
          Alcotest.test_case "dot output" `Quick test_dot_well_formed;
        ] );
      ( "repeats",
        [
          Alcotest.test_case "simple repeat" `Quick test_repeats_simple;
          Alcotest.test_case "maximality" `Quick test_repeats_maximal;
        ] );
      ( "mums",
        [
          Alcotest.test_case "anchor" `Quick test_mums_basic;
          Alcotest.test_case "shared suffix" `Quick test_mums_shared_suffix;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_repeats_sound; qcheck_repeats_complete; qcheck_mums_match_brute ] );
    ]
