(* The log-structured incremental index: append/search/compact
   roundtrips, journal recovery, snapshot pinning across compactions,
   and the {segments ∪ tail} merged search against both the in-memory
   oracle engine and Smith-Waterman. *)

let alpha = Bioseq.Alphabet.dna
let matrix = Scoring.Matrices.dna_unit
let gap = Scoring.Gap.linear 1

let seqs_of_strings ?(base = 0) strings =
  List.mapi
    (fun i s ->
      Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" (base + i)) s)
    strings

let query s = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" s

let cfg min_score = Oasis.Engine.config ~matrix ~gap ~min_score ()

let hit_pairs hits =
  List.sort compare
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)

let rec non_increasing = function
  | a :: (b :: _ as rest) ->
    a.Oasis.Hit.score >= b.Oasis.Hit.score && non_increasing rest
  | _ -> true

(* The oracle: a single in-memory engine over a monolithic database of
   the same sequences. *)
let oracle_hits seqs q min_score =
  match seqs with
  | [] -> []
  | _ ->
    let db = Bioseq.Database.make seqs in
    let tree = Suffix_tree.Ukkonen.build db in
    Oasis.Engine.Mem.run
      (Oasis.Engine.Mem.create ~source:tree ~db ~query:q (cfg min_score))

let search_index t q min_score =
  let snap = Storage.Live_index.snapshot t in
  Fun.protect
    ~finally:(fun () -> Storage.Live_index.release t snap)
    (fun () ->
      match Oasis.Multi.parts_of_snapshot snap with
      | [||] -> []
      | parts -> Oasis.Multi.run (Oasis.Multi.create ~parts ~query:q (cfg min_score)))

let check_equals_oracle ~name t q min_score =
  let got = search_index t q min_score in
  Alcotest.(check bool) (name ^ ": ordered") true (non_increasing got);
  Alcotest.(check (list (pair int int)))
    (name ^ ": equals oracle")
    (hit_pairs (oracle_hits (Storage.Live_index.sequences t) q min_score))
    (hit_pairs got)

let batch1 = [ "AGTACGCCTAG"; "TACG" ]
let batch2 = [ "CCCCTACGCCCC"; "GATTACA"; "ACGTACGTAC" ]
let batch3 = [ "TTACGTTACG"; "GGGG" ]
let q_tacg = query "TACG"

let test_append_compact_roundtrip () =
  let store = Storage.Vfs.store () in
  let fs = Storage.Vfs.of_store store in
  let t = Storage.Live_index.create ~alphabet:alpha fs in
  Alcotest.(check int) "empty" 0 (Storage.Live_index.num_sequences t);
  Alcotest.(check (list (pair int int))) "empty search" []
    (hit_pairs (search_index t q_tacg 2));
  Storage.Live_index.append t (seqs_of_strings batch1);
  check_equals_oracle ~name:"tail only" t q_tacg 2;
  Storage.Live_index.compact t;
  Alcotest.(check int) "v1 after compact" 1
    (Storage.Live_index.catalog_version t);
  Alcotest.(check int) "tail drained" 0 (Storage.Live_index.tail_sequences t);
  check_equals_oracle ~name:"one segment" t q_tacg 2;
  Storage.Live_index.append t (seqs_of_strings ~base:2 batch2);
  check_equals_oracle ~name:"segment + tail" t q_tacg 2;
  Storage.Live_index.compact t;
  Storage.Live_index.append t (seqs_of_strings ~base:5 batch3);
  check_equals_oracle ~name:"two segments + tail" t q_tacg 2;
  Alcotest.(check int) "segments" 2
    (List.length (Storage.Live_index.segments t));
  Storage.Live_index.compact ~full:true t;
  Alcotest.(check int) "full compaction folds to one" 1
    (List.length (Storage.Live_index.segments t));
  check_equals_oracle ~name:"after full compaction" t q_tacg 2;
  Alcotest.(check int) "all sequences present" 7
    (Storage.Live_index.num_sequences t);
  Storage.Live_index.close t

let test_reopen_preserves_index () =
  let store = Storage.Vfs.store () in
  let fs = Storage.Vfs.of_store store in
  let t = Storage.Live_index.create ~alphabet:alpha fs in
  Storage.Live_index.append t (seqs_of_strings batch1);
  Storage.Live_index.compact t;
  Storage.Live_index.append t (seqs_of_strings ~base:2 batch2);
  let expect = hit_pairs (search_index t q_tacg 2) in
  Storage.Live_index.close t;
  let t, recovery = Storage.Live_index.open_ ~alphabet:alpha fs in
  Alcotest.(check int) "journal replayed" 3 recovery.Storage.Live_index.replayed;
  Alcotest.(check bool) "journal clean" true
    (recovery.Storage.Live_index.truncated = Storage.Segment_log.Sealed);
  Alcotest.(check int) "sequences back" 5 (Storage.Live_index.num_sequences t);
  Alcotest.(check (list (pair int int)))
    "search identical after reopen" expect
    (hit_pairs (search_index t q_tacg 2));
  check_equals_oracle ~name:"reopened" t q_tacg 2;
  Storage.Live_index.close t

let test_torn_journal_recovery () =
  let store = Storage.Vfs.store () in
  let fs = Storage.Vfs.of_store store in
  let t = Storage.Live_index.create ~alphabet:alpha fs in
  Storage.Live_index.append t (seqs_of_strings batch1);
  Storage.Live_index.append t (seqs_of_strings ~base:2 [ "GATTACA" ]) ;
  Storage.Live_index.close t;
  (* Tear the journal: copy all but the last byte over it, as a crash
     mid-append would leave it. *)
  let journal = "journal.000000" in
  let d = Storage.Vfs.open_ro fs journal in
  let len = Storage.Device.length d in
  let all = Bytes.create len in
  Storage.Device.pread d ~off:0 ~buf:all;
  Storage.Device.close d;
  let torn = Storage.Vfs.create fs journal in
  Storage.Device.append torn (Bytes.sub all 0 (len - 1));
  Storage.Device.close torn;
  let t, recovery = Storage.Live_index.open_ ~alphabet:alpha fs in
  Alcotest.(check bool) "truncation reported" true
    (recovery.Storage.Live_index.truncated = Storage.Segment_log.Torn);
  Alcotest.(check int) "last record cut, first two replayed" 2
    recovery.Storage.Live_index.replayed;
  check_equals_oracle ~name:"recovered prefix searches" t q_tacg 2;
  Storage.Live_index.close t;
  (* The truncation was persisted: reopening again is clean. *)
  let t, recovery = Storage.Live_index.open_ ~alphabet:alpha fs in
  Alcotest.(check bool) "second open clean" true
    (recovery.Storage.Live_index.truncated = Storage.Segment_log.Sealed);
  Storage.Live_index.close t

let test_snapshot_pins_version () =
  (* Satellite: a reader holding catalog version v keeps searching v's
     files while compaction installs v+1; v's files are deleted only
     once the reader releases. *)
  let store = Storage.Vfs.store () in
  let fs = Storage.Vfs.of_store store in
  let t = Storage.Live_index.create ~alphabet:alpha fs in
  Storage.Live_index.append t (seqs_of_strings batch1);
  Storage.Live_index.compact t;
  Storage.Live_index.append t (seqs_of_strings ~base:2 batch2);
  let old_journal = "journal.000001" in
  let old_seg_file = "seg000001.symbols" in
  Alcotest.(check bool) "old journal live" true (Storage.Vfs.exists fs old_journal);
  let snap = Storage.Live_index.snapshot t in
  let before =
    match Oasis.Multi.parts_of_snapshot snap with
    | [||] -> []
    | parts ->
      Oasis.Multi.run (Oasis.Multi.create ~parts ~query:q_tacg (cfg 2))
  in
  (* Install v+1 while the reader is live: fold everything into one new
     segment, replacing both the old segment and the old journal. *)
  Storage.Live_index.compact ~full:true t;
  Alcotest.(check (list int)) "old version pinned" [ 1 ]
    (Storage.Live_index.pinned_versions t);
  Alcotest.(check bool) "pinned journal not GC'd" true
    (Storage.Vfs.exists fs old_journal);
  Alcotest.(check bool) "pinned segment not GC'd" true
    (Storage.Vfs.exists fs old_seg_file);
  (* The reader still searches its snapshot, and appends to the new
     version do not disturb it. *)
  Storage.Live_index.append t (seqs_of_strings ~base:5 batch3);
  let after =
    match Oasis.Multi.parts_of_snapshot snap with
    | [||] -> []
    | parts ->
      Oasis.Multi.run (Oasis.Multi.create ~parts ~query:q_tacg (cfg 2))
  in
  Alcotest.(check (list (pair int int)))
    "pinned reader unaffected by compaction + append" (hit_pairs before)
    (hit_pairs after);
  Storage.Live_index.release t snap;
  Alcotest.(check (list int)) "no pins left" []
    (Storage.Live_index.pinned_versions t);
  Alcotest.(check bool) "released journal deleted" false
    (Storage.Vfs.exists fs old_journal);
  Alcotest.(check bool) "released segment deleted" false
    (Storage.Vfs.exists fs old_seg_file);
  (* The new version sees everything, including the post-snapshot
     batch. *)
  check_equals_oracle ~name:"current version" t q_tacg 2;
  Alcotest.check_raises "double release"
    (Invalid_argument "Live_index.release: snapshot already released")
    (fun () -> Storage.Live_index.release t snap);
  Storage.Live_index.close t

let test_gc_on_open () =
  let store = Storage.Vfs.store () in
  let fs = Storage.Vfs.of_store store in
  let t = Storage.Live_index.create ~alphabet:alpha fs in
  Storage.Live_index.append t (seqs_of_strings batch1);
  Storage.Live_index.compact t;
  Storage.Live_index.close t;
  (* Plant garbage a crashed compaction could leave behind. *)
  List.iter
    (fun name -> Storage.Device.close (Storage.Vfs.create fs name))
    [ "catalog.tmp"; "seg000099.symbols"; "journal.000099"; "catalog.000000" ];
  let t, _ = Storage.Live_index.open_ ~alphabet:alpha fs in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " collected") false
        (Storage.Vfs.exists fs name))
    [ "catalog.tmp"; "seg000099.symbols"; "journal.000099"; "catalog.000000" ];
  check_equals_oracle ~name:"after gc" t q_tacg 2;
  Storage.Live_index.close t

let test_inspect_health () =
  let store = Storage.Vfs.store () in
  let fs = Storage.Vfs.of_store store in
  (match Storage.Live_index.inspect ~alphabet:alpha fs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inspect of an empty directory succeeded");
  let t = Storage.Live_index.create ~alphabet:alpha fs in
  Storage.Live_index.append t (seqs_of_strings batch1);
  Storage.Live_index.compact t;
  Storage.Live_index.append t (seqs_of_strings ~base:2 batch2);
  Storage.Live_index.close t;
  (match Storage.Live_index.inspect ~alphabet:alpha fs with
  | Error msg -> Alcotest.failf "healthy index unreadable: %s" msg
  | Ok h ->
    Alcotest.(check bool) "recoverable" true h.Storage.Live_index.recoverable;
    Alcotest.(check int) "sequences" 5 h.Storage.Live_index.health_sequences;
    Alcotest.(check int) "journal records" 3
      h.Storage.Live_index.health_journal.Storage.Live_index.journal_records;
    Alcotest.(check bool) "segment sealed" true
      (List.for_all
         (fun s -> s.Storage.Live_index.segment_ok)
         h.Storage.Live_index.health_segments));
  (* Bit-flip a segment component: inspect must flag it and call the
     index non-recoverable. *)
  let file = "seg000001.internal" in
  let d = Storage.Vfs.open_rw fs file in
  let buf = Bytes.create 1 in
  Storage.Device.pread d ~off:40 ~buf;
  Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) lxor 0xFF));
  Storage.Device.pwrite d ~off:40 buf;
  Storage.Device.close d;
  match Storage.Live_index.inspect ~alphabet:alpha fs with
  | Error msg -> Alcotest.failf "inspect refused damaged index: %s" msg
  | Ok h ->
    Alcotest.(check bool) "damage detected" false
      h.Storage.Live_index.recoverable;
    Alcotest.(check bool) "journal still fine" true
      h.Storage.Live_index.health_journal.Storage.Live_index.journal_readable

(* Multi with a single part must be bit-identical to the plain engine
   (same stream, not just the same set). *)
let qcheck_multi_single_part_identical =
  let gen =
    QCheck.Gen.(
      let dna n = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) n in
      triple
        (list_size (int_range 1 5) (dna (int_range 1 25)))
        (dna (int_range 1 8))
        (int_range 1 6))
  in
  let print (ss, q, ms) =
    Printf.sprintf "db=%s q=%s min_score=%d" (String.concat "/" ss) q ms
  in
  let stream_of hits =
    List.map
      (fun h -> Oasis.Hit.(h.seq_index, h.score, h.query_stop, h.target_stop))
      hits
  in
  QCheck.Test.make ~count:150 ~name:"Multi over one part = plain engine"
    (QCheck.make gen ~print)
    (fun (strings, qs, min_score) ->
      QCheck.assume (qs <> "");
      let seqs = seqs_of_strings strings in
      let db = Bioseq.Database.make seqs in
      let tree = Suffix_tree.Ukkonen.build db in
      let q = query qs in
      let plain =
        Oasis.Engine.Mem.run
          (Oasis.Engine.Mem.create ~source:tree ~db ~query:q (cfg min_score))
      in
      let merged =
        Oasis.Multi.run
          (Oasis.Multi.create
             ~parts:[| Oasis.Multi.Mem { tree; db; first_seq = 0 } |]
             ~query:q (cfg min_score))
      in
      stream_of merged = stream_of plain)

(* Randomized end-to-end: arbitrary append/compact interleavings must
   equal the monolithic oracle (as score multisets, stream ordered). *)
let qcheck_live_index_equals_oracle =
  let gen =
    QCheck.Gen.(
      let dna n = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) n in
      triple
        (list_size (int_range 1 4)
           (pair (list_size (int_range 1 3) (dna (int_range 1 20))) bool))
        (dna (int_range 1 6))
        (int_range 1 5))
  in
  let print (batches, q, ms) =
    Printf.sprintf "%s q=%s ms=%d"
      (String.concat ";"
         (List.map
            (fun (b, c) ->
              String.concat "," b ^ if c then "+compact" else "")
            batches))
      q ms
  in
  QCheck.Test.make ~count:60 ~name:"live index equals monolithic oracle"
    (QCheck.make gen ~print)
    (fun (batches, qs, min_score) ->
      QCheck.assume (qs <> "");
      let fs = Storage.Vfs.of_store (Storage.Vfs.store ()) in
      let t = Storage.Live_index.create ~alphabet:alpha fs in
      let count = ref 0 in
      List.iter
        (fun (strings, compact_after) ->
          Storage.Live_index.append t (seqs_of_strings ~base:!count strings);
          count := !count + List.length strings;
          if compact_after then Storage.Live_index.compact t)
        batches;
      let q = query qs in
      let got = search_index t q min_score in
      let oracle =
        oracle_hits (Storage.Live_index.sequences t) q min_score
      in
      let ok = non_increasing got && hit_pairs got = hit_pairs oracle in
      Storage.Live_index.close t;
      ok)

let () =
  Alcotest.run "live_index"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "append/compact/search roundtrip" `Quick
            test_append_compact_roundtrip;
          Alcotest.test_case "reopen preserves the index" `Quick
            test_reopen_preserves_index;
          Alcotest.test_case "torn journal recovers a prefix" `Quick
            test_torn_journal_recovery;
          Alcotest.test_case "gc on open" `Quick test_gc_on_open;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "reader pins its catalog version" `Quick
            test_snapshot_pins_version;
        ] );
      ("health", [ Alcotest.test_case "inspect" `Quick test_inspect_health ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_multi_single_part_identical;
          QCheck_alcotest.to_alcotest qcheck_live_index_equals_oracle;
        ] );
    ]
