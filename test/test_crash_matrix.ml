(* The crash matrix: run an append/compact workload against an
   in-memory filesystem, killing the simulated machine at EVERY write
   boundary in turn (and at every rename in turn), and after each crash
   reopen the directory and assert the crash-safety contract:

   - recovery succeeds (a torn journal tail is truncated, never fatal);
   - the recovered sequence stream is a prefix of the intended one and
     contains at least every batch whose append was acknowledged;
   - the merged {segments ∪ tail} search over the recovered index
     equals the in-memory oracle on exactly that prefix;
   - no stale catalogs or temp files survive the reopen;
   - the recovered index remains fully usable (append + search). *)

let alpha = Bioseq.Alphabet.dna
let matrix = Scoring.Matrices.dna_unit
let gap = Scoring.Gap.linear 1
let min_score = 2
let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" "TACG"
let cfg = Oasis.Engine.config ~matrix ~gap ~min_score ()

let batches =
  [
    [ "AGTACGCCTAG"; "TACG" ];
    [ "CCCCTACGCCCC"; "GATTACA" ];
    [ "ACGTACGTAC" ];
    [ "TTACGTTACG"; "GGGG"; "TACGTACG" ];
  ]

let intended =
  List.concat batches
  |> List.mapi (fun i s ->
         Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)

let seqs_slice ~from n =
  List.filteri (fun i _ -> i >= from && i < from + n) intended

(* The workload under test: interleaved appends, tail-sealing
   compactions and one full compaction. [acked] counts sequences whose
   append call returned. *)
let workload fs acked =
  let t = Storage.Live_index.create ~alphabet:alpha fs in
  let app n =
    Storage.Live_index.append t (seqs_slice ~from:!acked n);
    acked := !acked + n
  in
  app 2;
  Storage.Live_index.compact t;
  app 2;
  app 1;
  Storage.Live_index.compact t;
  Storage.Live_index.compact ~full:true t;
  app 3;
  Storage.Live_index.compact t;
  Storage.Live_index.close t

let hit_pairs hits =
  List.sort compare
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)

let rec non_increasing = function
  | a :: (b :: _ as rest) ->
    a.Oasis.Hit.score >= b.Oasis.Hit.score && non_increasing rest
  | _ -> true

let oracle_hits seqs =
  match seqs with
  | [] -> []
  | _ ->
    let db = Bioseq.Database.make seqs in
    let tree = Suffix_tree.Ukkonen.build db in
    Oasis.Engine.Mem.run
      (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg)

let search_index t =
  let snap = Storage.Live_index.snapshot t in
  Fun.protect
    ~finally:(fun () -> Storage.Live_index.release t snap)
    (fun () ->
      match Oasis.Multi.parts_of_snapshot snap with
      | [||] -> []
      | parts -> Oasis.Multi.run (Oasis.Multi.create ~parts ~query:q cfg))

(* Count the workload's boundaries with a crash that never fires. *)
let boundaries () =
  let crash = Storage.Faulty.no_crash () in
  let fs =
    Storage.Vfs.with_crash crash (Storage.Vfs.of_store (Storage.Vfs.store ()))
  in
  let acked = ref 0 in
  workload fs acked;
  Alcotest.(check int) "workload appends everything" (List.length intended)
    !acked;
  (Storage.Faulty.crash_write_count crash,
   Storage.Faulty.crash_rename_count crash)

let check_prefix ~ctx ~acked recovered =
  let n = List.length recovered in
  if n > List.length intended then
    Alcotest.failf "%s: recovered %d sequences, only %d were ever appended"
      ctx n (List.length intended);
  if n < acked then
    Alcotest.failf
      "%s: recovered %d sequences but %d were acknowledged before the crash"
      ctx n acked;
  List.iteri
    (fun i s ->
      if not (Bioseq.Sequence.equal s (List.nth intended i)) then
        Alcotest.failf "%s: recovered sequence %d differs from the appended one"
          ctx i)
    recovered

let check_no_stale_files ~ctx fs version =
  List.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        Alcotest.failf "%s: stale temp file %s survived recovery" ctx f;
      match Storage.Catalog.of_filename f with
      | Some v when v <> version ->
        Alcotest.failf "%s: stale catalog %s survived recovery" ctx f
      | _ -> ())
    (Storage.Vfs.files fs)

let check_recovered ~ctx ~acked store =
  let fs = Storage.Vfs.of_store store in
  if not (Storage.Live_index.exists fs) then begin
    (* Crashed before the very first catalog install: there is no index,
       which is only acceptable if nothing was ever acknowledged. *)
    if acked > 0 then
      Alcotest.failf "%s: %d acknowledged sequences but no catalog" ctx acked
  end
  else begin
    let t, _recovery = Storage.Live_index.open_ ~alphabet:alpha fs in
    let recovered = Storage.Live_index.sequences t in
    check_prefix ~ctx ~acked recovered;
    check_no_stale_files ~ctx fs (Storage.Live_index.catalog_version t);
    (* Search over {segments ∪ tail} equals the oracle on the prefix. *)
    let got = search_index t in
    if not (non_increasing got) then
      Alcotest.failf "%s: merged stream not non-increasing" ctx;
    let want = hit_pairs (oracle_hits recovered) in
    if hit_pairs got <> want then
      Alcotest.failf "%s: search over recovered index diverges from oracle"
        ctx;
    (* The recovered index must remain fully usable. *)
    let extra =
      [ Bioseq.Sequence.make ~alphabet:alpha ~id:"post-crash" "GTACGT" ]
    in
    Storage.Live_index.append t extra;
    let got' = hit_pairs (search_index t) in
    let want' = hit_pairs (oracle_hits (recovered @ extra)) in
    if got' <> want' then
      Alcotest.failf "%s: index unusable after recovery (append+search)" ctx;
    Storage.Live_index.close t
  end

let test_write_boundary_matrix () =
  let writes, _ = boundaries () in
  Alcotest.(check bool)
    (Printf.sprintf "matrix is wide enough (%d boundaries)" writes)
    true (writes > 50);
  for n = 0 to writes - 1 do
    let ctx = Printf.sprintf "crash at write %d/%d" n writes in
    let store = Storage.Vfs.store () in
    let crash = Storage.Faulty.crash_after ~writes:n in
    let fs = Storage.Vfs.with_crash crash (Storage.Vfs.of_store store) in
    let acked = ref 0 in
    (match workload fs acked with
    | () -> Alcotest.failf "%s: workload survived its crash budget" ctx
    | exception Storage.Io_error _ -> ());
    if not (Storage.Faulty.crashed crash) then
      Alcotest.failf "%s: Io_error without a crash" ctx;
    check_recovered ~ctx ~acked:!acked store
  done

let test_rename_boundary_matrix () =
  let _, renames = boundaries () in
  Alcotest.(check bool)
    (Printf.sprintf "workload has renames (%d)" renames)
    true
    (renames >= 4);
  for r = 0 to renames - 1 do
    let ctx = Printf.sprintf "crash at rename %d/%d" r renames in
    let store = Storage.Vfs.store () in
    let crash = Storage.Faulty.crash_during_rename ~renames:r in
    let fs = Storage.Vfs.with_crash crash (Storage.Vfs.of_store store) in
    let acked = ref 0 in
    (match workload fs acked with
    | () -> Alcotest.failf "%s: workload survived its crash budget" ctx
    | exception Storage.Io_error _ -> ());
    check_recovered ~ctx ~acked:!acked store
  done

let () =
  Alcotest.run "crash_matrix"
    [
      ( "matrix",
        [
          Alcotest.test_case "every write boundary" `Quick
            test_write_boundary_matrix;
          Alcotest.test_case "every rename boundary" `Quick
            test_rename_boundary_matrix;
        ] );
    ]
