(* Alignment substrate: Smith-Waterman (paper Table 2), Gotoh affine
   gaps, Needleman-Wunsch, alignment bookkeeping. *)

let dna = Bioseq.Alphabet.dna
let unit_matrix = Scoring.Matrices.dna_unit
let gap1 = Scoring.Gap.linear 1
let seq id text = Bioseq.Sequence.make ~alphabet:dna ~id text

let db_of_strings strings =
  Bioseq.Database.make (List.mapi (fun i s -> seq (Printf.sprintf "s%d" i) s) strings)

(* --- Paper Table 2 --- *)

let test_table2_matrix () =
  let query = seq "q" "TACG" and target = seq "t" "AGTACGCCTAG" in
  let h =
    Align.Smith_waterman.dp_matrix ~matrix:unit_matrix ~gap:gap1 ~query ~target
  in
  (* Row for T (paper Table 2, first row). *)
  Alcotest.(check (list int)) "row T"
    [ 0; 0; 1; 0; 0; 0; 0; 0; 1; 0; 0 ]
    (List.tl (Array.to_list h.(1)));
  (* Row for A. *)
  Alcotest.(check (list int)) "row A"
    [ 1; 0; 0; 2; 1; 0; 0; 0; 0; 2; 1 ]
    (List.tl (Array.to_list h.(2)));
  (* Row for C. *)
  Alcotest.(check (list int)) "row C"
    [ 0; 0; 0; 1; 3; 2; 1; 1; 0; 1; 1 ]
    (List.tl (Array.to_list h.(3)));
  (* Row for G with the winning score 4 at TACG/TACG. *)
  Alcotest.(check (list int)) "row G"
    [ 0; 1; 0; 0; 2; 4; 3; 2; 1; 0; 2 ]
    (List.tl (Array.to_list h.(4)))

let test_table2_alignment () =
  let query = seq "q" "TACG" and target = seq "t" "AGTACGCCTAG" in
  let a = Align.Smith_waterman.align ~matrix:unit_matrix ~gap:gap1 ~query ~target in
  Alcotest.(check int) "score" 4 a.Align.Alignment.score;
  Alcotest.(check int) "target start" 2 a.Align.Alignment.target_start;
  Alcotest.(check int) "target stop" 6 a.Align.Alignment.target_stop;
  Alcotest.(check string) "cigar" "4R" (Align.Alignment.cigar a);
  Alcotest.(check int) "rescore agrees" 4
    (Align.Alignment.rescore ~matrix:unit_matrix ~gap:gap1 ~query ~target a);
  Alcotest.(check (float 1e-9)) "identity" 1.0
    (Align.Alignment.identity ~query ~target a)

let test_align_with_gap () =
  (* TACG vs TAG: best is TACG / TA-G with one deletion... seen from the
     query side it is an Insert (skip query C): score 3 - 1 = 2. *)
  let query = seq "q" "TACG" and target = seq "t" "TAG" in
  let a = Align.Smith_waterman.align ~matrix:unit_matrix ~gap:gap1 ~query ~target in
  Alcotest.(check int) "score" 2 a.Align.Alignment.score;
  Alcotest.(check int) "rescore agrees" 2
    (Align.Alignment.rescore ~matrix:unit_matrix ~gap:gap1 ~query ~target a)

let test_empty_alignment () =
  let query = seq "q" "AAAA" and target = seq "t" "GGGG" in
  let a = Align.Smith_waterman.align ~matrix:unit_matrix ~gap:gap1 ~query ~target in
  Alcotest.(check int) "no positive alignment" 0 a.Align.Alignment.score;
  Alcotest.(check (list unit)) "no ops" []
    (List.map ignore a.Align.Alignment.ops)

let test_score_only_matches_align () =
  let query = seq "q" "GATTACA" and target = seq "t" "AGATCTACAGG" in
  let a = Align.Smith_waterman.align ~matrix:unit_matrix ~gap:gap1 ~query ~target in
  Alcotest.(check int) "score_only"
    a.Align.Alignment.score
    (Align.Smith_waterman.score_only ~matrix:unit_matrix ~gap:gap1 ~query ~target)

(* --- Affine gaps (Gotoh) --- *)

let test_affine_prefers_one_long_gap () =
  (* Query AAAATTTT vs target AAAACCCCCTTTT: affine gaps make one long
     gap cheaper than the sum of per-symbol penalties. *)
  let query = seq "q" "AAAATTTT" and target = seq "t" "AAAACCCCCTTTT" in
  let match3 =
    Scoring.Submat.of_function ~alphabet:dna ~name:"m3" (fun a b ->
        if a = b then 3 else -3)
  in
  let affine = Scoring.Gap.affine ~open_cost:4 ~extend_cost:1 in
  let a = Align.Smith_waterman.align ~matrix:match3 ~gap:affine ~query ~target in
  (* 8 matches (24) minus one 5-gap (4 + 5*1 = 9) = 15. *)
  Alcotest.(check int) "score" 15 a.Align.Alignment.score;
  Alcotest.(check string) "cigar" "4R5D4R" (Align.Alignment.cigar a);
  Alcotest.(check int) "rescore agrees" 15
    (Align.Alignment.rescore ~matrix:match3 ~gap:affine ~query ~target a)

(* --- Database search --- *)

let test_search_reports_per_sequence () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TTTT"; "TACG" ] in
  let query = seq "q" "TACG" in
  let hits, stats =
    Align.Smith_waterman.search ~matrix:unit_matrix ~gap:gap1 ~query ~db
      ~min_score:2
  in
  Alcotest.(check (list (pair int int)))
    "hits (seq, score) by decreasing score"
    [ (0, 4); (2, 4) ]
    (List.map (fun h -> (h.Align.Smith_waterman.seq_index, h.Align.Smith_waterman.score)) hits);
  Alcotest.(check int) "columns = total symbols" 19 stats.Align.Smith_waterman.columns

let test_hit_alignment () =
  let db = db_of_strings [ "AGTACGCCTAG" ] in
  let query = seq "q" "TACG" in
  let hits, _ =
    Align.Smith_waterman.search ~matrix:unit_matrix ~gap:gap1 ~query ~db
      ~min_score:1
  in
  match hits with
  | [ hit ] ->
    let a =
      Align.Smith_waterman.hit_alignment ~matrix:unit_matrix ~gap:gap1 ~query
        ~db hit
    in
    Alcotest.(check int) "alignment score" hit.Align.Smith_waterman.score
      a.Align.Alignment.score
  | _ -> Alcotest.fail "expected one hit"

(* --- Needleman-Wunsch --- *)

let test_nw_identical () =
  let s = seq "s" "ACGTACGT" in
  let a = Align.Needleman_wunsch.align ~matrix:unit_matrix ~gap:gap1 ~query:s ~target:s in
  Alcotest.(check int) "score" 8 a.Align.Alignment.score;
  Alcotest.(check string) "cigar" "8R" (Align.Alignment.cigar a)

let test_nw_with_gaps () =
  let query = seq "q" "ACGT" and target = seq "t" "AGT" in
  let a =
    Align.Needleman_wunsch.align ~matrix:unit_matrix ~gap:gap1 ~query ~target
  in
  (* A-C-G-T vs A-(-)-G-T: 3 matches - 1 gap = 2. *)
  Alcotest.(check int) "score" 2 a.Align.Alignment.score;
  Alcotest.(check int) "score_only agrees" 2
    (Align.Needleman_wunsch.score_only ~matrix:unit_matrix ~gap:gap1 ~query ~target);
  Alcotest.(check int) "rescore agrees" 2
    (Align.Alignment.rescore ~matrix:unit_matrix ~gap:gap1 ~query ~target a);
  Alcotest.(check int) "global spans query" 4 (Align.Alignment.query_span a);
  Alcotest.(check int) "global spans target" 3 (Align.Alignment.target_span a)

(* --- Properties --- *)

let dna_string n m = QCheck.Gen.(string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m))

let qcheck_traceback_consistent =
  QCheck.Test.make ~count:300 ~name:"S-W traceback rescores to the DP score"
    QCheck.(make Gen.(pair (dna_string 1 12) (dna_string 1 25))
              ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (q, t) ->
      let query = seq "q" q and target = seq "t" t in
      let a = Align.Smith_waterman.align ~matrix:unit_matrix ~gap:gap1 ~query ~target in
      a.Align.Alignment.score = 0
      || Align.Alignment.rescore ~matrix:unit_matrix ~gap:gap1 ~query ~target a
         = a.Align.Alignment.score)

let qcheck_affine_traceback =
  QCheck.Test.make ~count:300 ~name:"affine traceback rescores to the DP score"
    QCheck.(make Gen.(pair (dna_string 1 10) (dna_string 1 20))
              ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (q, t) ->
      let query = seq "q" q and target = seq "t" t in
      let gap = Scoring.Gap.affine ~open_cost:3 ~extend_cost:1 in
      let a = Align.Smith_waterman.align ~matrix:unit_matrix ~gap ~query ~target in
      a.Align.Alignment.score = 0
      || Align.Alignment.rescore ~matrix:unit_matrix ~gap ~query ~target a
         = a.Align.Alignment.score)

let qcheck_symmetry =
  QCheck.Test.make ~count:200 ~name:"S-W score is symmetric for symmetric matrices"
    QCheck.(make Gen.(pair (dna_string 1 12) (dna_string 1 12))
              ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (a, b) ->
      let sa = seq "a" a and sb = seq "b" b in
      Align.Smith_waterman.score_only ~matrix:unit_matrix ~gap:gap1 ~query:sa ~target:sb
      = Align.Smith_waterman.score_only ~matrix:unit_matrix ~gap:gap1 ~query:sb ~target:sa)

let qcheck_substring_scores_full =
  QCheck.Test.make ~count:200 ~name:"a planted substring scores its own length"
    QCheck.(make Gen.(pair (dna_string 4 10) (dna_string 5 20))
              ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (q, t) ->
      let target = seq "t" (t ^ q ^ t) in
      let query = seq "q" q in
      Align.Smith_waterman.score_only ~matrix:unit_matrix ~gap:gap1 ~query ~target
      >= String.length q)

let qcheck_banded_bounded_and_converges =
  QCheck.Test.make ~count:300
    ~name:"banded score <= full S-W, equal with a covering band"
    QCheck.(make Gen.(triple (dna_string 1 12) (dna_string 1 20) (int_range 0 6))
              ~print:(fun (q, t, b) -> Printf.sprintf "%s / %s band=%d" q t b))
    (fun (q, t, band) ->
      let query = seq "q" q and target = seq "t" t in
      let full =
        Align.Smith_waterman.score_only ~matrix:unit_matrix ~gap:gap1 ~query ~target
      in
      let banded =
        Align.Banded.score_only ~matrix:unit_matrix ~gap:gap1 ~band ~diagonal:0
          ~query ~target
      in
      let covering =
        Align.Banded.score_only ~matrix:unit_matrix ~gap:gap1
          ~band:(Align.Banded.covering_band ~query ~target)
          ~diagonal:0 ~query ~target
      in
      banded <= full && covering = full)

let qcheck_banded_monotone =
  QCheck.Test.make ~count:200 ~name:"banded score grows with the band"
    QCheck.(make Gen.(pair (dna_string 1 12) (dna_string 1 20))
              ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (q, t) ->
      let query = seq "q" q and target = seq "t" t in
      let score band =
        Align.Banded.score_only ~matrix:unit_matrix ~gap:gap1 ~band ~diagonal:0
          ~query ~target
      in
      let rec check prev band =
        if band > 8 then true
        else
          let v = score band in
          v >= prev && check v (band + 1)
      in
      check (score 0) 1)

let qcheck_linear_space_matches_sw =
  QCheck.Test.make ~count:400
    ~name:"linear-space local alignment matches Smith-Waterman"
    QCheck.(make Gen.(pair (dna_string 1 30) (dna_string 1 60))
              ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (q, t) ->
      let query = seq "q" q and target = seq "t" t in
      let full = Align.Smith_waterman.align ~matrix:unit_matrix ~gap:gap1 ~query ~target in
      let hs = Align.Linear_space.align ~matrix:unit_matrix ~gap:gap1 ~query ~target in
      hs.Align.Alignment.score = full.Align.Alignment.score
      && (hs.Align.Alignment.score = 0
         || Align.Alignment.rescore ~matrix:unit_matrix ~gap:gap1 ~query ~target hs
            = hs.Align.Alignment.score))

let qcheck_linear_space_pam30 =
  QCheck.Test.make ~count:200
    ~name:"linear-space alignment matches S-W under PAM30"
    (QCheck.make
       QCheck.Gen.(
         let residue = map (String.get "ARNDCQEGHILKMFPSTWYV") (int_range 0 19) in
         pair
           (string_size ~gen:residue (int_range 1 20))
           (string_size ~gen:residue (int_range 1 40)))
       ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (q, t) ->
      let palpha = Bioseq.Alphabet.protein in
      let query = Bioseq.Sequence.make ~alphabet:palpha ~id:"q" q in
      let target = Bioseq.Sequence.make ~alphabet:palpha ~id:"t" t in
      let matrix = Scoring.Matrices.pam30 and gap = Scoring.Gap.linear 10 in
      let full = Align.Smith_waterman.align ~matrix ~gap ~query ~target in
      let hs = Align.Linear_space.align ~matrix ~gap ~query ~target in
      hs.Align.Alignment.score = full.Align.Alignment.score
      && (hs.Align.Alignment.score = 0
         || Align.Alignment.rescore ~matrix ~gap ~query ~target hs
            = hs.Align.Alignment.score))

let qcheck_nw_le_sw =
  QCheck.Test.make ~count:200 ~name:"global score never exceeds local score"
    QCheck.(make Gen.(pair (dna_string 1 12) (dna_string 1 12))
              ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (q, t) ->
      let query = seq "q" q and target = seq "t" t in
      Align.Needleman_wunsch.score_only ~matrix:unit_matrix ~gap:gap1 ~query ~target
      <= Align.Smith_waterman.score_only ~matrix:unit_matrix ~gap:gap1 ~query ~target)

let () =
  Alcotest.run "align"
    [
      ( "smith_waterman",
        [
          Alcotest.test_case "paper table 2 matrix" `Quick test_table2_matrix;
          Alcotest.test_case "paper table 2 alignment" `Quick test_table2_alignment;
          Alcotest.test_case "gapped alignment" `Quick test_align_with_gap;
          Alcotest.test_case "empty alignment" `Quick test_empty_alignment;
          Alcotest.test_case "score_only" `Quick test_score_only_matches_align;
          Alcotest.test_case "affine gaps" `Quick test_affine_prefers_one_long_gap;
          Alcotest.test_case "database search" `Quick test_search_reports_per_sequence;
          Alcotest.test_case "hit alignment" `Quick test_hit_alignment;
        ] );
      ( "needleman_wunsch",
        [
          Alcotest.test_case "identical" `Quick test_nw_identical;
          Alcotest.test_case "with gaps" `Quick test_nw_with_gaps;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_traceback_consistent;
            qcheck_affine_traceback;
            qcheck_symmetry;
            qcheck_banded_bounded_and_converges;
            qcheck_banded_monotone;
            qcheck_linear_space_matches_sw;
            qcheck_linear_space_pam30;
            qcheck_substring_scores_full;
            qcheck_nw_le_sw;
          ] );
    ]
