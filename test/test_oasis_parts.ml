(* OASIS internals: the priority queue and the heuristic vector. *)

(* --- Priority queue --- *)

let test_pq_basic () =
  let q = Oasis.Pqueue.create () in
  Alcotest.(check bool) "empty" true (Oasis.Pqueue.is_empty q);
  Oasis.Pqueue.push q ~priority:3 "c";
  Oasis.Pqueue.push q ~priority:9 "a";
  Oasis.Pqueue.push q ~priority:5 "b";
  Alcotest.(check int) "length" 3 (Oasis.Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 9) (Oasis.Pqueue.peek_priority q);
  Alcotest.(check (option (pair int string))) "pop 1" (Some (9, "a"))
    (Oasis.Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "pop 2" (Some (5, "b"))
    (Oasis.Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "pop 3" (Some (3, "c"))
    (Oasis.Pqueue.pop q);
  Alcotest.(check (option reject)) "drained" None
    (Option.map ignore (Oasis.Pqueue.pop q))

let test_pq_tie_break () =
  let q = Oasis.Pqueue.create () in
  Oasis.Pqueue.push q ~priority:5 ~tie:1 "viable-first";
  Oasis.Pqueue.push q ~priority:5 ~tie:0 "accepted";
  Oasis.Pqueue.push q ~priority:5 ~tie:1 "viable-second";
  (* Accepted (tie 0) wins at equal priority; FIFO within equal ties. *)
  let order = List.init 3 (fun _ -> snd (Option.get (Oasis.Pqueue.pop q))) in
  Alcotest.(check (list string)) "tie order"
    [ "accepted"; "viable-first"; "viable-second" ]
    order

let test_pq_growth_from_empty () =
  (* The SoA heap starts with zero capacity; the first push allocates
     and repeated doubling must keep all three arrays in step. *)
  let q = Oasis.Pqueue.create () in
  for i = 0 to 999 do
    Oasis.Pqueue.push_tie q ~priority:(i * 7 mod 101) ~tie:(i mod 2) i
  done;
  Alcotest.(check int) "length" 1000 (Oasis.Pqueue.length q);
  let rec drain n last =
    match Oasis.Pqueue.pop q with
    | None -> n
    | Some (p, _) ->
      Alcotest.(check bool) "non-increasing priorities" true (p <= last);
      drain (n + 1) p
  in
  Alcotest.(check int) "drained all" 1000 (drain 0 max_int)

let test_pq_tie_out_of_range () =
  let q = Oasis.Pqueue.create () in
  List.iter
    (fun tie ->
      try
        Oasis.Pqueue.push_tie q ~priority:0 ~tie ();
        Alcotest.fail "out-of-range tie accepted"
      with Invalid_argument _ -> ())
    [ -1; 256; 1000 ]

(* Model-based fuzz of the full ordering contract: priority descending,
   then tie ascending (accepted before viable), then insertion order
   (FIFO) — the engine's determinism rests on all three. *)
let qcheck_pq_model =
  QCheck.Test.make ~count:300 ~name:"pqueue matches sorted model (tie + FIFO)"
    QCheck.(list (option (pair (int_range 0 15) (int_range 0 3))))
    (fun ops ->
      let q = Oasis.Pqueue.create () in
      let model = ref [] and seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some (p, tie) ->
            Oasis.Pqueue.push_tie q ~priority:p ~tie !seq;
            model := (p, tie, !seq) :: !model;
            incr seq;
            true
          | None -> (
            let expected =
              List.sort
                (fun (p1, t1, s1) (p2, t2, s2) ->
                  if p1 <> p2 then Int.compare p2 p1
                  else if t1 <> t2 then Int.compare t1 t2
                  else Int.compare s1 s2)
                !model
            in
            match (Oasis.Pqueue.pop q, expected) with
            | None, [] -> true
            | Some (p, v), (ep, _, es) :: rest ->
              model := rest;
              p = ep && v = es
            | None, _ :: _ | Some _, [] -> false))
        ops)

let qcheck_pq_sorts =
  QCheck.Test.make ~count:300 ~name:"pqueue pops a non-increasing sequence"
    QCheck.(list (int_range (-1000) 1000))
    (fun priorities ->
      let q = Oasis.Pqueue.create () in
      List.iter (fun p -> Oasis.Pqueue.push q ~priority:p p) priorities;
      let rec drain acc =
        match Oasis.Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, v) ->
          if p <> v then QCheck.Test.fail_report "priority/value mismatch";
          drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort (fun a b -> compare b a) priorities)

let qcheck_pq_interleaved =
  (* Pushes interleaved with pops still respect the heap order. *)
  QCheck.Test.make ~count:200 ~name:"pqueue handles interleaved push/pop"
    QCheck.(list (option (int_range 0 100)))
    (fun ops ->
      let q = Oasis.Pqueue.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some p ->
            Oasis.Pqueue.push q ~priority:p p;
            model := p :: !model;
            true
          | None -> (
            match (Oasis.Pqueue.pop q, !model) with
            | None, [] -> true
            | Some (p, _), (_ :: _ as m) ->
              let best = List.fold_left max min_int m in
              if p <> best then false
              else begin
                (* Remove one occurrence of best. *)
                let removed = ref false in
                model :=
                  List.filter
                    (fun x ->
                      if x = best && not !removed then begin
                        removed := true;
                        false
                      end
                      else true)
                    m;
                true
              end
            | None, _ :: _ | Some _, [] -> false))
        ops)

(* --- Heuristic vector --- *)

let protein = Bioseq.Alphabet.protein
let pam30 = Scoring.Matrices.pam30
let gap10 = Scoring.Gap.linear 10

let mk_query text = Bioseq.Sequence.make ~alphabet:protein ~id:"q" text

let test_heuristic_last_entry_zero () =
  let q = mk_query "ACDEF" in
  List.iter
    (fun style ->
      let h = Oasis.Heuristic.vector ~style ~matrix:pam30 ~gap:gap10 ~query:q in
      Alcotest.(check int) "length" 6 (Array.length h);
      Alcotest.(check int) "H(m) = 0" 0 h.(5))
    [ Oasis.Heuristic.Safe; Oasis.Heuristic.Paper ]

let test_heuristic_monotone_decreasing () =
  (* With a positive-diagonal matrix, each entry adds a positive best
     replacement, so H is strictly decreasing along the query. *)
  let q = mk_query "WDKDGDGTITW" in
  let h =
    Oasis.Heuristic.vector ~style:Oasis.Heuristic.Safe ~matrix:pam30 ~gap:gap10
      ~query:q
  in
  for i = 0 to Array.length h - 2 do
    Alcotest.(check bool) (Printf.sprintf "H(%d) > H(%d)" i (i + 1)) true
      (h.(i) > h.(i + 1))
  done

let test_heuristic_styles_agree_on_pam30 () =
  (* For matrices with positive diagonals (hence positive best
     replacements) and no clamping in play, Safe = Paper + gap term, and
     the gap term never wins, so the vectors coincide. *)
  let q = mk_query "MKTAYIAKQR" in
  let safe =
    Oasis.Heuristic.vector ~style:Oasis.Heuristic.Safe ~matrix:pam30 ~gap:gap10
      ~query:q
  in
  let paper =
    Oasis.Heuristic.vector ~style:Oasis.Heuristic.Paper ~matrix:pam30
      ~gap:gap10 ~query:q
  in
  Alcotest.(check (array int)) "identical vectors" paper safe

let test_paper_style_rejected_when_inadmissible () =
  (* A matrix with an all-negative row makes the paper vector
     inadmissible. *)
  let dna = Bioseq.Alphabet.dna in
  let bad =
    Scoring.Submat.of_function ~alphabet:dna ~name:"bad" (fun a b ->
        if a = 0 then -2 (* every alignment of symbol A loses *)
        else if a = b then 1
        else -1)
  in
  let q = Bioseq.Sequence.make ~alphabet:dna ~id:"q" "ACGT" in
  Alcotest.(check bool) "detected" false
    (Oasis.Heuristic.is_admissible_paper ~matrix:bad ~query:q);
  (try
     ignore
       (Oasis.Heuristic.vector ~style:Oasis.Heuristic.Paper ~matrix:bad
          ~gap:(Scoring.Gap.linear 1) ~query:q);
     Alcotest.fail "inadmissible paper vector accepted"
   with Invalid_argument _ -> ());
  (* The safe vector handles it (and stays non-negative). *)
  let h =
    Oasis.Heuristic.vector ~style:Oasis.Heuristic.Safe ~matrix:bad
      ~gap:(Scoring.Gap.linear 1) ~query:q
  in
  Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0)) h

(* Admissibility is the property the engine's optimality rests on:
   H.(i) must bound the score gain of aligning any query suffix piece
   q[i..k) against ANY target. Check against brute-force S-W of every
   query suffix vs random targets. *)
let qcheck_heuristic_admissible =
  let gen =
    QCheck.Gen.(
      let residue = map (String.get "ARNDCQEGHILKMFPSTWYV") (int_range 0 19) in
      pair
        (string_size ~gen:residue (int_range 1 8))
        (string_size ~gen:residue (int_range 1 20)))
  in
  QCheck.Test.make ~count:300 ~name:"heuristic bounds any suffix alignment"
    (QCheck.make gen ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (qtext, ttext) ->
      let q = mk_query qtext in
      let target = Bioseq.Sequence.make ~alphabet:protein ~id:"t" ttext in
      let h =
        Oasis.Heuristic.vector ~style:Oasis.Heuristic.Safe ~matrix:pam30
          ~gap:gap10 ~query:q
      in
      let m = Bioseq.Sequence.length q in
      let ok = ref true in
      for i = 0 to m - 1 do
        let suffix = Bioseq.Sequence.sub q ~pos:i ~len:(m - i) in
        let best =
          Align.Smith_waterman.score_only ~matrix:pam30 ~gap:gap10 ~query:suffix
            ~target
        in
        if best > h.(i) then ok := false
      done;
      !ok)

(* --- Trace events --- *)

let test_tracer_narrates_search () =
  let alpha = Bioseq.Alphabet.dna in
  let db =
    Bioseq.Database.make
      [
        Bioseq.Sequence.make ~alphabet:alpha ~id:"s0" "AGTACGCCTAG";
        Bioseq.Sequence.make ~alphabet:alpha ~id:"s1" "TACG";
      ]
  in
  let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" "TACG" in
  let tree = Suffix_tree.Ukkonen.build db in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:Scoring.Matrices.dna_unit
         ~gap:(Scoring.Gap.linear 1) ~min_score:2 ())
  in
  let pops = ref 0 and reports = ref [] in
  Oasis.Engine.Mem.set_tracer engine (fun event ->
      match event with
      | Oasis.Engine.Popped p ->
        incr pops;
        Alcotest.(check bool) "priority sane" true (p.priority >= 2)
      | Oasis.Engine.Reported r -> reports := (r.seq_index, r.score) :: !reports);
  let hits = Oasis.Engine.Mem.run engine in
  Alcotest.(check bool) "pops happened" true (!pops > 0);
  Alcotest.(check (list (pair int int)))
    "reported events equal returned hits"
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)
    (List.rev !reports)

(* --- E-value-ordered online stream (§4.3) --- *)

let ev_alpha = Bioseq.Alphabet.dna

let ev_db strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:ev_alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let ev_params =
  Scoring.Karlin.estimate ~matrix:Scoring.Matrices.dna_unit
    ~freqs:Scoring.Background.dna_uniform ()

let ev_stream db q min_score =
  let tree = Suffix_tree.Ukkonen.build db in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query:q
      (Oasis.Engine.config ~matrix:Scoring.Matrices.dna_unit
         ~gap:(Scoring.Gap.linear 1) ~min_score ())
  in
  Oasis.Evalue_stream.Mem.create ~driver:engine ~db ~params:ev_params
    ~query_length:(Bioseq.Sequence.length q)

let drain_stream stream =
  let rec go acc =
    match Oasis.Evalue_stream.Mem.next stream with
    | None -> List.rev acc
    | Some entry -> go (entry :: acc)
  in
  go []

let test_stream_same_hits_new_order () =
  (* A long sequence and a short one with the same best score: the
     short one's adjusted E-value is better, so the stream must emit it
     first even though the engine order (by score, ties by discovery) is
     unspecified between them. *)
  let db =
    ev_db
      [
        "TACG" ^ String.make 200 'G' (* long: worse adjusted E *);
        "TTACGT" (* short: better adjusted E *);
        "CCCCCC" (* no hit at min_score 3 *);
      ]
  in
  let q = Bioseq.Sequence.make ~alphabet:ev_alpha ~id:"q" "TACG" in
  let out = drain_stream (ev_stream db q 3) in
  Alcotest.(check (list int)) "short sequence first"
    [ 1; 0 ]
    (List.map (fun (h, _) -> h.Oasis.Hit.seq_index) out);
  let es = List.map snd out in
  Alcotest.(check bool) "ascending adjusted E" true
    (List.sort compare es = es)

let qcheck_stream_is_sorted_and_complete =
  let gen =
    QCheck.Gen.(
      let dna n m =
        string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m)
      in
      let* strings = list_size (int_range 1 6) (dna 2 40) in
      let* q = dna 2 8 in
      let* min_score = int_range 1 5 in
      return (strings, q, min_score))
  in
  QCheck.Test.make ~count:200
    ~name:"evalue stream = engine hits, sorted by adjusted E"
    (QCheck.make gen ~print:(fun (ss, q, ms) ->
         Printf.sprintf "%s ? %s min=%d" (String.concat "/" ss) q ms))
    (fun (strings, qtext, min_score) ->
      let db = ev_db strings in
      let q = Bioseq.Sequence.make ~alphabet:ev_alpha ~id:"q" qtext in
      let out = drain_stream (ev_stream db q min_score) in
      (* Reference: drain a second engine and sort by the same adjusted
         formula. *)
      let tree = Suffix_tree.Ukkonen.build db in
      let engine =
        Oasis.Engine.Mem.create ~source:tree ~db ~query:q
          (Oasis.Engine.config ~matrix:Scoring.Matrices.dna_unit
             ~gap:(Scoring.Gap.linear 1) ~min_score ())
      in
      let reference = Oasis.Engine.Mem.run engine in
      (* Adjusted E-values must be non-decreasing (ties may emit in any
         order) and the hit set must match the engine's exactly. *)
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone out
      && List.sort compare
           (List.map (fun (h, _) -> h.Oasis.Hit.seq_index) out)
         = List.sort compare
             (List.map (fun h -> h.Oasis.Hit.seq_index) reference))

(* --- Edit-distance search (§5 comparison) --- *)

(* Oracle: minimum unit edit distance between the query and any
   substring of the target (standard DP with a free start). *)
let brute_best_edits qtext ttext =
  let m = String.length qtext and n = String.length ttext in
  let prev = Array.make (m + 1) 0 and cur = Array.make (m + 1) 0 in
  for j = 0 to m do
    prev.(j) <- j
  done;
  let best = ref prev.(m) in
  for t = 1 to n do
    cur.(0) <- 0;
    for j = 1 to m do
      let cost = if qtext.[j - 1] = ttext.[t - 1] then 0 else 1 in
      cur.(j) <- min (prev.(j - 1) + cost) (min (cur.(j - 1) + 1) (prev.(j) + 1))
    done;
    if cur.(m) < !best then best := cur.(m);
    Array.blit cur 0 prev 0 (m + 1)
  done;
  !best

let edit_db strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:ev_alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let test_edit_search_exact () =
  let db = edit_db [ "GGGGTACGGGGG"; "TTTT"; "GGGTAAGGG" ] in
  let q = Bioseq.Sequence.make ~alphabet:ev_alpha ~id:"q" "TACG" in
  let tree = Suffix_tree.Ukkonen.build db in
  let hits, stats =
    Oasis.Edit_search.Mem.search ~source:tree ~db ~query:q ~max_diffs:1
  in
  Alcotest.(check (list (pair int int)))
    "seq 0 exact, seq 2 one edit"
    [ (0, 0); (2, 1) ]
    (List.map (fun h -> (h.Oasis.Edit_search.seq_index, h.Oasis.Edit_search.edits)) hits);
  Alcotest.(check bool) "did bounded work" true
    (stats.Oasis.Edit_search.rows_computed > 0)

let qcheck_edit_search_matches_brute =
  let gen =
    QCheck.Gen.(
      let dna n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
      let* strings = list_size (int_range 1 5) (dna 1 30) in
      let* q = dna 1 8 in
      let* k = int_range 0 3 in
      return (strings, q, k))
  in
  QCheck.Test.make ~count:300 ~name:"edit search = brute-force k-difference scan"
    (QCheck.make gen ~print:(fun (ss, q, k) ->
         Printf.sprintf "%s ? %s k=%d" (String.concat "/" ss) q k))
    (fun (strings, qtext, k) ->
      let db = edit_db strings in
      let q = Bioseq.Sequence.make ~alphabet:ev_alpha ~id:"q" qtext in
      let tree = Suffix_tree.Ukkonen.build db in
      let hits, _ =
        Oasis.Edit_search.Mem.search ~source:tree ~db ~query:q ~max_diffs:k
      in
      let got =
        List.sort compare
          (List.map
             (fun h -> (h.Oasis.Edit_search.seq_index, h.Oasis.Edit_search.edits))
             hits)
      in
      let expected =
        List.filteri (fun _ _ -> true) strings
        |> List.mapi (fun i s -> (i, brute_best_edits qtext s))
        |> List.filter (fun (_, e) -> e <= k)
        |> List.sort compare
      in
      if got <> expected then
        QCheck.Test.fail_reportf "got [%s] expected [%s]"
          (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) got))
          (String.concat ";"
             (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) expected))
      else true)

let () =
  Alcotest.run "oasis_parts"
    [
      ( "pqueue",
        [
          Alcotest.test_case "basics" `Quick test_pq_basic;
          Alcotest.test_case "tie breaking" `Quick test_pq_tie_break;
          Alcotest.test_case "growth from empty" `Quick
            test_pq_growth_from_empty;
          Alcotest.test_case "tie out of range" `Quick test_pq_tie_out_of_range;
        ] );
      ( "heuristic",
        [
          Alcotest.test_case "terminal entry" `Quick test_heuristic_last_entry_zero;
          Alcotest.test_case "monotone on PAM30" `Quick
            test_heuristic_monotone_decreasing;
          Alcotest.test_case "styles agree on PAM30" `Quick
            test_heuristic_styles_agree_on_pam30;
          Alcotest.test_case "inadmissible paper style rejected" `Quick
            test_paper_style_rejected_when_inadmissible;
        ] );
      ( "tracer",
        [ Alcotest.test_case "narrates the search" `Quick test_tracer_narrates_search ] );
      ( "edit_search",
        [ Alcotest.test_case "exact and near matches" `Quick test_edit_search_exact ] );
      ( "evalue_stream",
        [
          Alcotest.test_case "reorders by sequence length" `Quick
            test_stream_same_hits_new_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_pq_sorts;
            qcheck_pq_interleaved;
            qcheck_pq_model;
            qcheck_heuristic_admissible;
            qcheck_stream_is_sorted_and_complete;
            qcheck_edit_search_matches_brute;
          ] );
    ]
