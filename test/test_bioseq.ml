(* Bio-sequence substrate: alphabets, sequences, FASTA, databases. *)

let dna = Bioseq.Alphabet.dna
let protein = Bioseq.Alphabet.protein

(* --- Alphabet --- *)

let test_alphabet_basics () =
  Alcotest.(check int) "dna size" 5 (Bioseq.Alphabet.size dna);
  Alcotest.(check int) "protein size" 24 (Bioseq.Alphabet.size protein);
  Alcotest.(check int) "terminator" 5 (Bioseq.Alphabet.terminator dna);
  Alcotest.(check char) "code 0" 'A' (Bioseq.Alphabet.to_char dna 0);
  Alcotest.(check char) "terminator char" '$'
    (Bioseq.Alphabet.to_char dna (Bioseq.Alphabet.terminator dna));
  Alcotest.(check (option int)) "of_char" (Some 2) (Bioseq.Alphabet.of_char dna 'G');
  Alcotest.(check (option int)) "case-insensitive" (Some 2)
    (Bioseq.Alphabet.of_char dna 'g');
  Alcotest.(check (option int)) "unknown" None (Bioseq.Alphabet.of_char dna 'Z');
  Alcotest.(check bool) "mem" true (Bioseq.Alphabet.mem protein 'W')

let test_alphabet_roundtrip () =
  let text = "ACGTNACGT" in
  let encoded = Bioseq.Alphabet.encode dna text in
  Alcotest.(check string) "roundtrip" text (Bioseq.Alphabet.decode dna encoded)

let test_alphabet_rejects () =
  Alcotest.check_raises "duplicate symbols"
    (Invalid_argument "Alphabet.make: duplicate symbol 'a'") (fun () ->
      ignore (Bioseq.Alphabet.make ~name:"bad" ~symbols:"Aa"));
  Alcotest.check_raises "empty" (Invalid_argument "Alphabet.make: empty symbols")
    (fun () -> ignore (Bioseq.Alphabet.make ~name:"bad" ~symbols:""))

let test_custom_alphabet () =
  (* Non-biological alphabets work too (the melody example relies on
     this). *)
  let notes = Bioseq.Alphabet.make ~name:"notes" ~symbols:"CDEFGAB" in
  Alcotest.(check int) "size" 7 (Bioseq.Alphabet.size notes);
  let s = Bioseq.Sequence.make ~alphabet:notes ~id:"tune" "CDEC" in
  Alcotest.(check string) "roundtrip" "CDEC" (Bioseq.Sequence.to_string s)

(* --- Sequence --- *)

let test_sequence_basics () =
  let s =
    Bioseq.Sequence.make ~alphabet:dna ~id:"s1" ~description:"a test" "ACGT"
  in
  Alcotest.(check string) "id" "s1" (Bioseq.Sequence.id s);
  Alcotest.(check string) "description" "a test" (Bioseq.Sequence.description s);
  Alcotest.(check int) "length" 4 (Bioseq.Sequence.length s);
  Alcotest.(check int) "get" 1 (Bioseq.Sequence.get s 1);
  Alcotest.(check char) "char_at" 'T' (Bioseq.Sequence.char_at s 3);
  Alcotest.(check string) "to_string" "ACGT" (Bioseq.Sequence.to_string s)

let test_sequence_sub () =
  let s = Bioseq.Sequence.make ~alphabet:dna ~id:"s" "ACGTACGT" in
  let sub = Bioseq.Sequence.sub s ~pos:2 ~len:4 in
  Alcotest.(check string) "sub text" "GTAC" (Bioseq.Sequence.to_string sub);
  Alcotest.(check string) "sub id" "s[2,6)" (Bioseq.Sequence.id sub)

let test_sequence_of_codes_rejects () =
  Alcotest.check_raises "invalid code"
    (Invalid_argument "Sequence.of_codes: invalid code 5") (fun () ->
      ignore
        (Bioseq.Sequence.of_codes ~alphabet:dna ~id:"x" (Bytes.make 1 '\005')))

(* --- FASTA --- *)

let fasta_text =
  ">seq1 first sequence\nACGTAC\nGTAC\n\n; a comment line\n>seq2\nTTTT\n"

let test_fasta_parse () =
  match Bioseq.Fasta.parse_string ~alphabet:dna fasta_text with
  | [ a; b ] ->
    Alcotest.(check string) "id 1" "seq1" (Bioseq.Sequence.id a);
    Alcotest.(check string) "description 1" "first sequence"
      (Bioseq.Sequence.description a);
    Alcotest.(check string) "payload 1 (wrapped lines joined)" "ACGTACGTAC"
      (Bioseq.Sequence.to_string a);
    Alcotest.(check string) "id 2" "seq2" (Bioseq.Sequence.id b);
    Alcotest.(check string) "payload 2" "TTTT" (Bioseq.Sequence.to_string b)
  | other -> Alcotest.failf "expected 2 sequences, got %d" (List.length other)

let test_fasta_errors () =
  (try
     ignore (Bioseq.Fasta.parse_string ~alphabet:dna "ACGT\n");
     Alcotest.fail "data before header accepted"
   with Bioseq.Fasta.Parse_error { line = 1; _ } -> ());
  (try
     ignore (Bioseq.Fasta.parse_string ~alphabet:dna ">s\nACGJ\n");
     Alcotest.fail "bad character accepted"
   with Bioseq.Fasta.Parse_error { line = 2; _ } -> ());
  try
    ignore (Bioseq.Fasta.parse_string ~alphabet:dna ">s1\n>s2\nAC\n");
    Alcotest.fail "empty sequence accepted"
  with Bioseq.Fasta.Parse_error { line = 2; _ } -> ()

let test_fasta_roundtrip_file () =
  let seqs =
    [
      Bioseq.Sequence.make ~alphabet:dna ~id:"a" ~description:"desc" "ACGTACGTACGT";
      Bioseq.Sequence.make ~alphabet:dna ~id:"b" "TTTTT";
    ]
  in
  let path = Filename.temp_file "oasis_fasta" ".fa" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bioseq.Fasta.write_file ~width:5 path seqs;
      let back = Bioseq.Fasta.read_file ~alphabet:dna path in
      Alcotest.(check int) "count" 2 (List.length back);
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s equal" (Bioseq.Sequence.id a))
            true (Bioseq.Sequence.equal a b))
        seqs back)

(* --- Database --- *)

let mk_db () =
  Bioseq.Database.make
    [
      Bioseq.Sequence.make ~alphabet:dna ~id:"a" "ACGT";
      Bioseq.Sequence.make ~alphabet:dna ~id:"b" "GG";
      Bioseq.Sequence.make ~alphabet:dna ~id:"c" "TTTAA";
    ]

let test_database_layout () =
  let db = mk_db () in
  Alcotest.(check int) "sequences" 3 (Bioseq.Database.num_sequences db);
  Alcotest.(check int) "symbols" 11 (Bioseq.Database.total_symbols db);
  Alcotest.(check int) "data length" 14 (Bioseq.Database.data_length db);
  Alcotest.(check int) "start 0" 0 (Bioseq.Database.seq_start db 0);
  Alcotest.(check int) "start 1" 5 (Bioseq.Database.seq_start db 1);
  Alcotest.(check int) "start 2" 8 (Bioseq.Database.seq_start db 2);
  let term = Bioseq.Alphabet.terminator dna in
  Alcotest.(check int) "terminator after a" term (Bioseq.Database.code db 4);
  Alcotest.(check int) "terminator after b" term (Bioseq.Database.code db 7);
  Alcotest.(check int) "first symbol of b" 2 (Bioseq.Database.code db 5)

let test_database_mapping () =
  let db = mk_db () in
  Alcotest.(check int) "pos 0" 0 (Bioseq.Database.seq_of_pos db 0);
  Alcotest.(check int) "pos 4 (terminator of a)" 0 (Bioseq.Database.seq_of_pos db 4);
  Alcotest.(check int) "pos 5" 1 (Bioseq.Database.seq_of_pos db 5);
  Alcotest.(check int) "pos 13" 2 (Bioseq.Database.seq_of_pos db 13);
  Alcotest.(check (pair int int)) "to_local" (2, 3) (Bioseq.Database.to_local db 11)

let test_database_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Database.make: empty sequence list")
    (fun () -> ignore (Bioseq.Database.make []));
  Alcotest.check_raises "mixed alphabets"
    (Invalid_argument "Database.make: sequences use different alphabets")
    (fun () ->
      ignore
        (Bioseq.Database.make
           [
             Bioseq.Sequence.make ~alphabet:dna ~id:"a" "ACGT";
             Bioseq.Sequence.make ~alphabet:protein ~id:"b" "MK";
           ]))

(* --- Properties --- *)

let qcheck_seq_of_pos =
  QCheck.Test.make ~count:200 ~name:"seq_of_pos inverts the layout"
    QCheck.(
      make
        Gen.(list_size (int_range 1 8) (int_range 1 20))
        ~print:(fun ls -> String.concat "," (List.map string_of_int ls)))
    (fun lens ->
      let db =
        Bioseq.Database.make
          (List.mapi
             (fun i len ->
               Bioseq.Sequence.make ~alphabet:dna ~id:(string_of_int i)
                 (String.make len 'A'))
             lens)
      in
      let ok = ref true in
      for i = 0 to Bioseq.Database.num_sequences db - 1 do
        let start = Bioseq.Database.seq_start db i in
        let len = Bioseq.Sequence.length (Bioseq.Database.seq db i) in
        for off = 0 to len do
          (* includes the terminator *)
          if Bioseq.Database.seq_of_pos db (start + off) <> i then ok := false
        done
      done;
      !ok)

let qcheck_append_rebuild =
  (* Batches of sequences appended one batch at a time must produce the
     same database as a single [make] over the concatenation — and the
     fast in-place path must not disturb older views (we keep every
     intermediate database and re-check it at the end). *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 5)
        (list_size (int_range 1 4)
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 12))))
  in
  let print batches =
    String.concat ";" (List.map (String.concat ",") batches)
  in
  QCheck.Test.make ~count:200 ~name:"append equals rebuild"
    (QCheck.make gen ~print)
    (fun batches ->
      let mk_seqs base payloads =
        List.mapi
          (fun i p ->
            Bioseq.Sequence.make ~alphabet:dna ~id:(Printf.sprintf "s%d" (base + i)) p)
          payloads
      in
      let same a b =
        Bioseq.Database.num_sequences a = Bioseq.Database.num_sequences b
        && Bioseq.Database.data_length a = Bioseq.Database.data_length b
        && Bytes.equal
             (Bytes.sub (Bioseq.Database.data a) 0 (Bioseq.Database.data_length a))
             (Bytes.sub (Bioseq.Database.data b) 0 (Bioseq.Database.data_length b))
        &&
        let ok = ref true in
        for i = 0 to Bioseq.Database.num_sequences a - 1 do
          if
            Bioseq.Database.seq_start a i <> Bioseq.Database.seq_start b i
            || not
                 (Bioseq.Sequence.equal (Bioseq.Database.seq a i)
                    (Bioseq.Database.seq b i))
          then ok := false
        done;
        !ok
      in
      match batches with
      | [] -> true
      | first :: rest ->
        let count = ref 0 in
        let next payloads =
          let seqs = mk_seqs !count payloads in
          count := !count + List.length payloads;
          seqs
        in
        let db0 = Bioseq.Database.make (next first) in
        let snapshots, final =
          List.fold_left
            (fun (snaps, db) payloads ->
              let db' = Bioseq.Database.append db (next payloads) in
              (db :: snaps, db'))
            ([ db0 ], db0) rest
        in
        (* Every snapshot must equal a fresh rebuild of its own prefix:
           later in-place appends may not have corrupted it. *)
        let prefix_ok =
          List.for_all
            (fun snap ->
              let n = Bioseq.Database.num_sequences snap in
              let seqs = List.init n (Bioseq.Database.seq snap) in
              same snap (Bioseq.Database.make seqs))
            snapshots
        in
        let rebuilt =
          Bioseq.Database.make
            (List.init
               (Bioseq.Database.num_sequences final)
               (Bioseq.Database.seq final))
        in
        prefix_ok && same final rebuilt)

let qcheck_fasta_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 6)
        (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T'; 'N' ]) (int_range 1 40)))
  in
  QCheck.Test.make ~count:200 ~name:"fasta parse inverts print"
    (QCheck.make gen ~print:(String.concat "/"))
    (fun payloads ->
      let seqs =
        List.mapi
          (fun i p -> Bioseq.Sequence.make ~alphabet:dna ~id:(Printf.sprintf "s%d" i) p)
          payloads
      in
      let text = Bioseq.Fasta.to_string ~width:7 seqs in
      let back = Bioseq.Fasta.parse_string ~alphabet:dna text in
      List.length back = List.length seqs
      && List.for_all2 Bioseq.Sequence.equal seqs back)

let () =
  Alcotest.run "bioseq"
    [
      ( "alphabet",
        [
          Alcotest.test_case "basics" `Quick test_alphabet_basics;
          Alcotest.test_case "roundtrip" `Quick test_alphabet_roundtrip;
          Alcotest.test_case "rejects" `Quick test_alphabet_rejects;
          Alcotest.test_case "custom alphabet" `Quick test_custom_alphabet;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "basics" `Quick test_sequence_basics;
          Alcotest.test_case "sub" `Quick test_sequence_sub;
          Alcotest.test_case "of_codes rejects" `Quick test_sequence_of_codes_rejects;
        ] );
      ( "fasta",
        [
          Alcotest.test_case "parse" `Quick test_fasta_parse;
          Alcotest.test_case "errors" `Quick test_fasta_errors;
          Alcotest.test_case "file roundtrip" `Quick test_fasta_roundtrip_file;
        ] );
      ( "database",
        [
          Alcotest.test_case "layout" `Quick test_database_layout;
          Alcotest.test_case "mapping" `Quick test_database_mapping;
          Alcotest.test_case "rejects" `Quick test_database_rejects;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_seq_of_pos; qcheck_append_rebuild; qcheck_fasta_roundtrip ] );
    ]
