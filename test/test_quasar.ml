(* QUASAR q-gram filter: lossless within the q-gram lemma regime,
   bounded by Smith-Waterman, and actually filtering. *)

let alpha = Bioseq.Alphabet.dna
let matrix = Scoring.Matrices.dna_unit
let gap1 = Scoring.Gap.linear 1

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s -> Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let query text = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" text

let run ?diffs ?threshold db q min_score =
  let sa = Suffix_tree.Suffix_array.build db in
  let cfg =
    Quasar.Filter.config ?diffs ~matrix ~gap:gap1 ~min_score
      ~query_length:(Bioseq.Sequence.length q) ()
  in
  let cfg =
    match threshold with None -> cfg | Some t -> { cfg with Quasar.Filter.threshold = t }
  in
  Quasar.Filter.search cfg ~sa ~query:q

let test_finds_exact_occurrence () =
  let filler = String.concat "" (List.init 150 (fun _ -> "GG")) in
  let db = db_of_strings [ filler ^ "TACGTACGTACG" ^ filler; "GGGGGGGG" ] in
  let q = query "TACGTACGTACG" in
  let hits, stats = run db q 10 in
  (match hits with
  | [ h ] ->
    Alcotest.(check int) "sequence" 0 h.Quasar.Filter.seq_index;
    Alcotest.(check int) "score" 12 h.Quasar.Filter.score
  | hs -> Alcotest.failf "expected 1 hit, got %d" (List.length hs));
  Alcotest.(check bool) "skipped part of the database" true
    (stats.Quasar.Filter.verified_symbols
    < Bioseq.Database.total_symbols db)

let test_finds_mutated_occurrence () =
  (* Two substitutions: within the diffs=2 lemma regime, so the filter
     must keep the block. *)
  let db = db_of_strings [ "CCCCCCCCCCCCTAGGTACGTAAGCCCCCCCCCCCC" ] in
  let q = query "TAGGTCCGTAAG" (* original TAGGTACGTAAG with 1 sub *) in
  let hits, _ = run ~diffs:2 db q 8 in
  Alcotest.(check bool) "found" true (hits <> [])

let test_respects_min_score () =
  let db = db_of_strings [ "TTTTTTTTTTTT" ] in
  let q = query "ACGTACGT" in
  let hits, _ = run db q 3 in
  Alcotest.(check (list unit)) "no spurious hits" [] (List.map ignore hits)

let test_stats_shape () =
  let db = db_of_strings [ String.concat "" (List.init 50 (fun _ -> "ACGT")) ] in
  let q = query "ACGTACGT" in
  let _, stats = run ~threshold:1 db q 4 in
  Alcotest.(check bool) "qgram occurrences counted" true
    (stats.Quasar.Filter.qgram_occurrences > 0);
  Alcotest.(check bool) "blocks partition the data" true
    (stats.Quasar.Filter.total_blocks > 0);
  Alcotest.(check bool) "candidates bounded by total" true
    (stats.Quasar.Filter.candidate_blocks <= stats.Quasar.Filter.total_blocks)

let test_threshold_clamp () =
  (* The query carries m - q + 1 grams: whatever the diffs knob says,
     the configured threshold must land in [1, m - q + 1] — above it
     the filter is vacuously unsatisfiable, below 1 it is meaningless.
     These pin the clamp at its edges: q capped at a short query, q
     exactly the query length (one gram), diffs large enough to drive
     the lemma value negative, and diffs = 0 sitting exactly on the
     ceiling. *)
  let cfg ?q ?diffs m =
    Quasar.Filter.config ?q ?diffs ~matrix ~gap:gap1 ~min_score:1
      ~query_length:m ()
  in
  let check name c m =
    let grams = m - c.Quasar.Filter.q + 1 in
    Alcotest.(check bool)
      (name ^ ": threshold within [1, m - q + 1]")
      true
      (c.Quasar.Filter.threshold >= 1 && c.Quasar.Filter.threshold <= grams)
  in
  check "q capped at a 2-symbol query" (cfg 2) 2;
  let one_gram = cfg ~q:4 4 in
  check "q = m leaves one gram" one_gram 4;
  Alcotest.(check int) "q = m: threshold is that one gram" 1
    one_gram.Quasar.Filter.threshold;
  check "huge diffs floor at 1" (cfg ~q:3 ~diffs:1000 12) 12;
  Alcotest.(check int) "huge diffs: threshold 1" 1
    (cfg ~q:3 ~diffs:1000 12).Quasar.Filter.threshold;
  let exact = cfg ~q:3 ~diffs:0 12 in
  check "diffs = 0 sits on the ceiling" exact 12;
  Alcotest.(check int) "diffs = 0: threshold = m - q + 1" 10
    exact.Quasar.Filter.threshold;
  (* diffs = 2 on a short query: the lemma value m - q + 1 - 2q is
     negative, so only the clamp keeps the filter satisfiable. *)
  check "default diffs on a short query" (cfg ~q:3 5) 5

let qcheck_never_beats_sw =
  let gen =
    QCheck.Gen.(
      let dna n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
      pair (list_size (int_range 1 4) (dna 10 60)) (dna 6 12))
  in
  QCheck.Test.make ~count:200 ~name:"QUASAR hit scores <= S-W per sequence"
    (QCheck.make gen ~print:(fun (ss, q) -> String.concat "/" ss ^ " ? " ^ q))
    (fun (strings, qtext) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let hits, _ = run ~threshold:1 db q 1 in
      let sw, _ =
        Align.Smith_waterman.search ~matrix ~gap:gap1 ~query:q ~db ~min_score:1
      in
      List.for_all
        (fun (h : Quasar.Filter.hit) ->
          match
            List.find_opt
              (fun s -> s.Align.Smith_waterman.seq_index = h.seq_index)
              sw
          with
          | None -> false
          | Some s -> h.score <= s.Align.Smith_waterman.score)
        hits)

let qcheck_threshold1_is_complete_for_planted =
  (* At threshold 1, any sequence containing the query verbatim shares a
     q-gram, so a planted exact occurrence is always found with the full
     score. *)
  let gen =
    QCheck.Gen.(
      let dna n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
      pair (dna 8 16) (pair (dna 10 40) (dna 10 40)))
  in
  QCheck.Test.make ~count:200 ~name:"threshold-1 filter finds exact plants"
    (QCheck.make gen ~print:(fun (q, (a, b)) -> q ^ " in " ^ a ^ "|" ^ b))
    (fun (qtext, (prefix, suffix)) ->
      let db = db_of_strings [ prefix ^ qtext ^ suffix; "T" ] in
      let q = query qtext in
      let hits, _ = run ~threshold:1 db q (String.length qtext) in
      List.exists
        (fun (h : Quasar.Filter.hit) ->
          h.seq_index = 0 && h.score >= String.length qtext)
        hits)

let () =
  Alcotest.run "quasar"
    [
      ( "filter",
        [
          Alcotest.test_case "finds exact occurrence" `Quick test_finds_exact_occurrence;
          Alcotest.test_case "finds mutated occurrence" `Quick
            test_finds_mutated_occurrence;
          Alcotest.test_case "respects min_score" `Quick test_respects_min_score;
          Alcotest.test_case "stats shape" `Quick test_stats_shape;
          Alcotest.test_case "threshold clamp" `Quick test_threshold_clamp;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_never_beats_sw; qcheck_threshold1_is_complete_for_planted ] );
    ]
