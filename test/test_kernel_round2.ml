(* Kernel round 2 identity suite.

   The blocked expansion path (sibling gather, shared pre-DP bound
   reuse, packed tree source) and the bit-parallel edit kernel are pure
   speedups: every observable — hit streams, outcomes, column and
   expansion counters — must stay bit-identical to the executable
   specifications ([Oasis.Reference] for the engine,
   [Edit_search.search_dp] for the edit path). These properties drain
   the optimized and specification implementations on random workloads
   and compare full records in stream order, across gap models,
   matrices, budgets, and all three tree sources (mem, packed, disk),
   plus the fused batch kernel. Run them twice: plain and under
   [OASIS_CHECKED_KERNEL=1] (CI does). *)

module Reference_disk = Oasis.Reference.Make (Oasis.Source.Disk)

let alpha = Bioseq.Alphabet.dna
let unit_matrix = Scoring.Matrices.dna_unit

let db_of_strings ?(alphabet = alpha) strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet ~id:(Printf.sprintf "s%d" i) s)
       strings)

let query ?(alphabet = alpha) text =
  Bioseq.Sequence.make ~alphabet ~id:"q" text

let show_hits hits =
  String.concat ";"
    (List.map
       (fun h ->
         Printf.sprintf "%d:%d@%d,%d" h.Oasis.Hit.seq_index h.Oasis.Hit.score
           h.Oasis.Hit.query_stop h.Oasis.Hit.target_stop)
       hits)

let show_outcome = function
  | Oasis.Engine.Searching -> "searching"
  | Oasis.Engine.Complete -> "complete"
  | Oasis.Engine.Exhausted { remaining_bound } ->
    Printf.sprintf "exhausted(%d)" remaining_bound

(* One workload through every engine backend, each held to the
   reference specification over the {e same} source (disk arc labels
   can split differently from in-memory ones, so the disk engine gets a
   disk-source reference). Mem and Packed additionally must agree with
   each other on the full counter record — the packing is the same
   algorithm over a different memory layout. *)
let check_engine_backends ~db ~q cfg =
  let tree = Suffix_tree.Ukkonen.build db in
  let fail tag exp_h exp_o got_h got_o =
    if got_h <> exp_h then
      QCheck.Test.fail_reportf "%s hits: got [%s] expected [%s]" tag
        (show_hits got_h) (show_hits exp_h)
    else
      QCheck.Test.fail_reportf "%s outcome: got %s expected %s" tag
        (show_outcome got_o) (show_outcome exp_o)
  in
  let reference = Oasis.Reference.Mem.create ~source:tree ~db ~query:q cfg in
  let ref_hits = Oasis.Reference.Mem.run reference in
  let ref_outcome = Oasis.Reference.Mem.outcome reference in
  let ref_columns = Oasis.Reference.Mem.columns reference in
  let ref_expanded = Oasis.Reference.Mem.nodes_expanded reference in
  (* Mem. *)
  let em = Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg in
  let mh = Oasis.Engine.Mem.run em in
  let mo = Oasis.Engine.Mem.outcome em in
  if mh <> ref_hits || mo <> ref_outcome then
    fail "mem" ref_hits ref_outcome mh mo;
  let mc = Oasis.Engine.Mem.counters em in
  if mc.Oasis.Engine.columns <> ref_columns then
    QCheck.Test.fail_reportf "mem columns: got %d expected %d"
      mc.Oasis.Engine.columns ref_columns;
  if mc.Oasis.Engine.nodes_expanded <> ref_expanded then
    QCheck.Test.fail_reportf "mem nodes_expanded: got %d expected %d"
      mc.Oasis.Engine.nodes_expanded ref_expanded;
  (* Packed: same hits, same outcome, same work counters as Mem. *)
  let packed = Suffix_tree.Packed.of_tree tree in
  let ep = Oasis.Engine.Packed.create ~source:packed ~db ~query:q cfg in
  let ph = Oasis.Engine.Packed.run ep in
  let po = Oasis.Engine.Packed.outcome ep in
  if ph <> ref_hits || po <> ref_outcome then
    fail "packed" ref_hits ref_outcome ph po;
  let pc = Oasis.Engine.Packed.counters ep in
  if
    pc.Oasis.Engine.columns <> mc.Oasis.Engine.columns
    || pc.Oasis.Engine.nodes_expanded <> mc.Oasis.Engine.nodes_expanded
    || pc.Oasis.Engine.nodes_enqueued <> mc.Oasis.Engine.nodes_enqueued
    || pc.Oasis.Engine.nodes_pruned <> mc.Oasis.Engine.nodes_pruned
    || pc.Oasis.Engine.max_queue <> mc.Oasis.Engine.max_queue
  then
    QCheck.Test.fail_reportf
      "packed counters diverge from mem: cols %d/%d exp %d/%d enq %d/%d \
       pruned %d/%d maxq %d/%d"
      pc.Oasis.Engine.columns mc.Oasis.Engine.columns
      pc.Oasis.Engine.nodes_expanded mc.Oasis.Engine.nodes_expanded
      pc.Oasis.Engine.nodes_enqueued mc.Oasis.Engine.nodes_enqueued
      pc.Oasis.Engine.nodes_pruned mc.Oasis.Engine.nodes_pruned
      pc.Oasis.Engine.max_queue mc.Oasis.Engine.max_queue;
  (* The pre-DP bound split is informational but must account for every
     expanded non-terminator arc consistently on both layouts. *)
  let mr, mrc = Oasis.Engine.Mem.bound_stats em in
  let pr, prc = Oasis.Engine.Packed.bound_stats ep in
  if mr + mrc <> pr + prc then
    QCheck.Test.fail_reportf "bound_stats totals: mem %d+%d packed %d+%d" mr
      mrc pr prc;
  (* Disk, against a disk-source reference. *)
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:16 ~capacity:4 tree in
  let dref = Reference_disk.create ~source:dt ~db ~query:q cfg in
  let dref_hits = Reference_disk.run dref in
  let dref_outcome = Reference_disk.outcome dref in
  let ed = Oasis.Engine.Disk.create ~source:dt ~db ~query:q cfg in
  let dh = Oasis.Engine.Disk.run ed in
  let dout = Oasis.Engine.Disk.outcome ed in
  if dh <> dref_hits || dout <> dref_outcome then
    fail "disk" dref_hits dref_outcome dh dout;
  let dc = Oasis.Engine.Disk.counters ed in
  if dc.Oasis.Engine.columns <> Reference_disk.columns dref then
    QCheck.Test.fail_reportf "disk columns: got %d expected %d"
      dc.Oasis.Engine.columns
      (Reference_disk.columns dref);
  (* Fused batch (k = 1 lane) keeps the same per-backend stream. *)
  let batch =
    Oasis.Batch_kernel.Mem.create ~source:tree ~db ~queries:[| q |] cfg
  in
  Oasis.Batch_kernel.Mem.run batch;
  let bh = Oasis.Batch_kernel.Mem.hits batch 0 in
  let bo = Oasis.Batch_kernel.Mem.outcome batch 0 in
  if bh <> ref_hits || bo <> ref_outcome then
    fail "batch" ref_hits ref_outcome bh bo;
  true

let engine_case_gen =
  QCheck.Gen.(
    let dna n m =
      string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m)
    in
    let* strings = list_size (int_range 1 5) (dna 1 28) in
    let* qtext = dna 1 10 in
    let* min_score = int_range 1 8 in
    let* max_columns = opt (int_range 1 60) in
    let* max_expanded = opt (int_range 1 20) in
    return (strings, qtext, min_score, max_columns, max_expanded))

let print_engine_case (strings, qtext, min_score, max_columns, max_expanded) =
  let lim tag = function None -> "" | Some v -> Printf.sprintf " %s=%d" tag v in
  Printf.sprintf "db=%s q=%s min=%d%s%s"
    (String.concat "/" strings)
    qtext min_score
    (lim "cols" max_columns)
    (lim "exp" max_expanded)

let budget_of max_columns max_expanded =
  Oasis.Engine.budget ?max_columns ?max_expanded ()

let qcheck_backends_linear =
  QCheck.Test.make ~count:200
    ~name:"mem/packed/disk/batch streams = reference (linear, budgets)"
    (QCheck.make engine_case_gen ~print:print_engine_case)
    (fun (strings, qtext, min_score, max_columns, max_expanded) ->
      check_engine_backends ~db:(db_of_strings strings) ~q:(query qtext)
        (Oasis.Engine.config
           ~budget:(budget_of max_columns max_expanded)
           ~matrix:unit_matrix ~gap:(Scoring.Gap.linear 1) ~min_score ()))

let qcheck_backends_affine =
  QCheck.Test.make ~count:150
    ~name:"mem/packed/disk/batch streams = reference (affine, budgets)"
    (QCheck.make engine_case_gen ~print:print_engine_case)
    (fun (strings, qtext, min_score, max_columns, max_expanded) ->
      check_engine_backends ~db:(db_of_strings strings) ~q:(query qtext)
        (Oasis.Engine.config
           ~budget:(budget_of max_columns max_expanded)
           ~matrix:unit_matrix
           ~gap:(Scoring.Gap.affine ~open_cost:2 ~extend_cost:1)
           ~min_score ()))

let qcheck_backends_pam30 =
  let gen =
    QCheck.Gen.(
      let residues = "ARNDCQEGHILKMFPSTWYVBZX" in
      let residue =
        map (String.get residues) (int_range 0 (String.length residues - 1))
      in
      let protein n m = string_size ~gen:residue (int_range n m) in
      let* strings = list_size (int_range 1 4) (protein 1 24) in
      let* qtext = protein 1 8 in
      let* min_score = int_range 1 25 in
      let* max_columns = opt (int_range 1 60) in
      return (strings, qtext, min_score, max_columns, None))
  in
  QCheck.Test.make ~count:150
    ~name:"mem/packed/disk/batch streams = reference (PAM30, budgets)"
    (QCheck.make gen ~print:print_engine_case)
    (fun (strings, qtext, min_score, max_columns, max_expanded) ->
      let alphabet = Bioseq.Alphabet.protein in
      check_engine_backends
        ~db:(db_of_strings ~alphabet strings)
        ~q:(query ~alphabet qtext)
        (Oasis.Engine.config
           ~budget:(budget_of max_columns max_expanded)
           ~matrix:Scoring.Matrices.pam30 ~gap:(Scoring.Gap.linear 10)
           ~min_score ()))

(* The packed image must mirror the tree structurally: same children in
   the same canonical order, same label ranges, same first symbols,
   same leaf positions under every node. Walk both in lockstep through
   the gather interface the engines actually use. *)
let qcheck_packed_mirrors_tree =
  let gen =
    QCheck.Gen.(
      let dna n m =
        string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m)
      in
      list_size (int_range 1 6) (dna 1 30))
  in
  QCheck.Test.make ~count:200 ~name:"packed image mirrors tree structure"
    (QCheck.make gen ~print:(String.concat "/"))
    (fun strings ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let packed = Suffix_tree.Packed.of_tree tree in
      let gather_t node =
        let acc = ref [] in
        Oasis.Source.Mem.gather tree node (fun c ~start ~stop ~sym ->
            acc := (c, start, stop, sym) :: !acc);
        List.rev !acc
      and gather_p node =
        let acc = ref [] in
        Suffix_tree.Packed.gather_children packed node
          (fun c ~start ~stop ~sym -> acc := (c, start, stop, sym) :: !acc);
        List.rev !acc
      and positions iter node =
        let acc = ref [] in
        iter node (fun p -> acc := p :: !acc);
        List.sort Int.compare !acc
      in
      let rec walk tn pn =
        if
          positions (Oasis.Source.Mem.iter_positions tree) tn
          <> positions (Suffix_tree.Packed.iter_positions packed) pn
        then QCheck.Test.fail_report "leaf position sets diverge";
        let tc = gather_t tn and pc = gather_p pn in
        if List.length tc <> List.length pc then
          QCheck.Test.fail_reportf "child count %d <> %d" (List.length tc)
            (List.length pc);
        List.iter2
          (fun (tchild, ts, tstop, tsym) (pchild, ps, pstop, psym) ->
            if ts <> ps || tstop <> pstop || tsym <> psym then
              QCheck.Test.fail_reportf "child arc (%d,%d,%d) <> (%d,%d,%d)" ts
                tstop tsym ps pstop psym;
            if
              Oasis.Source.Mem.is_leaf tree tchild
              <> Suffix_tree.Packed.is_leaf pchild
            then QCheck.Test.fail_report "leafness diverges";
            if not (Suffix_tree.Packed.is_leaf pchild) then walk tchild pchild)
          tc pc
      in
      walk
        (Oasis.Source.Mem.root tree)
        (Suffix_tree.Packed.root packed);
      true)

(* --- Bit-parallel edit kernel vs the scalar DP oracle. --- *)

let edit_equal ~db ~q ~max_diffs =
  let tree = Suffix_tree.Ukkonen.build db in
  let bp_hits, bp_stats =
    Oasis.Edit_search.Mem.search ~source:tree ~db ~query:q ~max_diffs
  and dp_hits, dp_stats =
    Oasis.Edit_search.Mem.search_dp ~source:tree ~db ~query:q ~max_diffs
  in
  let show hits =
    String.concat ";"
      (List.map
         (fun h ->
           Printf.sprintf "%d:%d@%d" h.Oasis.Edit_search.seq_index
             h.Oasis.Edit_search.edits h.Oasis.Edit_search.target_stop)
         hits)
  in
  if bp_hits <> dp_hits then
    QCheck.Test.fail_reportf "hits: bp=[%s] dp=[%s]" (show bp_hits)
      (show dp_hits);
  if bp_stats <> dp_stats then
    QCheck.Test.fail_reportf "stats: bp=(%d,%d) dp=(%d,%d)"
      bp_stats.Oasis.Edit_search.nodes_visited
      bp_stats.Oasis.Edit_search.rows_computed
      dp_stats.Oasis.Edit_search.nodes_visited
      dp_stats.Oasis.Edit_search.rows_computed;
  true

let qcheck_edit_bp_equals_dp =
  (* Query lengths cross the 62-bit word boundary, so multi-word carry
     propagation is exercised, not just the single-word fast path. *)
  let gen =
    QCheck.Gen.(
      let dna n m =
        string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m)
      in
      let* strings = list_size (int_range 1 5) (dna 1 40) in
      let* qtext = dna 1 80 in
      let* k = int_range 0 4 in
      return (strings, qtext, k))
  in
  QCheck.Test.make ~count:400 ~name:"bit-parallel edit search = DP oracle"
    (QCheck.make gen ~print:(fun (strings, qtext, k) ->
         Printf.sprintf "db=%s q=%s k=%d" (String.concat "/" strings) qtext k))
    (fun (strings, qtext, k) ->
      edit_equal ~db:(db_of_strings strings) ~q:(query qtext) ~max_diffs:k)

let test_edit_word_boundaries () =
  (* m = 61, 62, 63, 124, 125: one bit below, at, and above each packed
     word's capacity. The database embeds the query with one
     substitution so reports fire at every length. *)
  let base = String.init 128 (fun i -> "ACGT".[i mod 4]) in
  List.iter
    (fun m ->
      let qtext = String.sub base 0 m in
      let mutated = Bytes.of_string qtext in
      Bytes.set mutated (m / 2) (if qtext.[m / 2] = 'A' then 'C' else 'A');
      let db =
        db_of_strings [ "GG" ^ Bytes.to_string mutated ^ "TT"; "ACAC" ]
      in
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "m=%d k=%d" m k)
            true
            (edit_equal ~db ~q:(query qtext) ~max_diffs:k))
        [ 0; 1; 2 ])
    [ 61; 62; 63; 124; 125 ]

let test_edit_k_at_least_m () =
  (* k >= m: the empty-path root report fires and everything matches. *)
  let db = db_of_strings [ "ACGT"; "TTTT" ] in
  Alcotest.(check bool)
    "k = m" true
    (edit_equal ~db ~q:(query "ACG") ~max_diffs:3);
  Alcotest.(check bool)
    "k > m" true
    (edit_equal ~db ~q:(query "AC") ~max_diffs:4)

let test_edit_validation () =
  let db = db_of_strings [ "ACGT" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let empty = query "" in
  List.iter
    (fun (tag, search) ->
      Alcotest.check_raises
        (tag ^ " rejects empty query")
        (Invalid_argument "Edit_search.search: empty query")
        (fun () -> ignore (search ~source:tree ~db ~query:empty ~max_diffs:1));
      Alcotest.check_raises
        (tag ^ " rejects negative k")
        (Invalid_argument "Edit_search.search: max_diffs < 0")
        (fun () ->
          ignore (search ~source:tree ~db ~query:(query "AC") ~max_diffs:(-1))))
    [
      ("bit-parallel", Oasis.Edit_search.Mem.search);
      ("dp", Oasis.Edit_search.Mem.search_dp);
    ]

(* ---- bucket frontier = binary heap ------------------------------- *)

(* The engine's bucket frontier must reproduce Pqueue's pop order
   exactly: priority descending, then tie ascending, then FIFO. Drive
   both with the same random op sequence — including non-monotone
   pushes, which the engine never issues but the frontier still orders
   correctly — and compare full pop streams plus the popped-field
   registers. *)
let qcheck_frontier_matches_heap =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 200)
        (frequency
           [
             (3, map2 (fun p tie -> `Push (p, tie)) (int_range 0 50) (int_bound 1));
             (2, return `Pop);
           ]))
  in
  let print ops =
    String.concat ";"
      (List.map
         (function
           | `Push (p, tie) -> Printf.sprintf "push(%d,%d)" p tie
           | `Pop -> "pop")
         ops)
  in
  QCheck.Test.make ~count:300 ~name:"bucket frontier = binary heap"
    (QCheck.make gen ~print)
    (fun ops ->
      let fr = Oasis.Frontier.create () in
      let pq = Oasis.Pqueue.create () in
      let id = ref 0 in
      let pops_equal () =
        let h = Oasis.Pqueue.pop pq in
        let f = Oasis.Frontier.pop fr in
        match (h, f) with
        | None, None -> true
        | Some (hp, (hnode, hslot, hdepth, hms, hmq, hmo, hacc)), Some fnode
          ->
          hp = Oasis.Frontier.popped_priority fr
          && hnode = fnode
          && hslot = Oasis.Frontier.popped_slot fr
          && hdepth = Oasis.Frontier.popped_depth fr
          && hms = Oasis.Frontier.popped_max_score fr
          && hmq = Oasis.Frontier.popped_max_q fr
          && hmo = Oasis.Frontier.popped_max_off fr
          && hacc = Oasis.Frontier.popped_accepted fr
        | _ -> false
      in
      List.for_all
        (function
          | `Push (p, tie) ->
            incr id;
            let n = !id in
            Oasis.Frontier.push fr ~priority:p ~tie ~node:n ~slot:(n + 1)
              ~depth:(n + 2) ~max_score:(n + 3) ~max_q:(n + 4)
              ~max_off:(n + 5) ~accepted:(tie = 0);
            Oasis.Pqueue.push_tie pq ~priority:p ~tie
              (n, n + 1, n + 2, n + 3, n + 4, n + 5, tie = 0);
            Oasis.Frontier.length fr = Oasis.Pqueue.length pq
            && Oasis.Frontier.peek_priority fr = Oasis.Pqueue.peek_priority pq
          | `Pop -> pops_equal ())
        ops
      &&
      (* drain both to the end *)
      let rec drain () =
        if Oasis.Frontier.is_empty fr then Oasis.Pqueue.is_empty pq
        else pops_equal () && drain ()
      in
      drain ())

let () =
  Alcotest.run "kernel_round2"
    [
      ( "engine identity",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_backends_linear;
            qcheck_backends_affine;
            qcheck_backends_pam30;
            qcheck_packed_mirrors_tree;
            qcheck_frontier_matches_heap;
          ] );
      ( "edit identity",
        List.map QCheck_alcotest.to_alcotest [ qcheck_edit_bp_equals_dp ]
        @ [
            Alcotest.test_case "word boundaries" `Quick
              test_edit_word_boundaries;
            Alcotest.test_case "k >= m" `Quick test_edit_k_at_least_m;
            Alcotest.test_case "argument validation" `Quick
              test_edit_validation;
          ] );
    ]
