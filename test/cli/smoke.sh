#!/usr/bin/env bash
# End-to-end CLI smoke test: every subcommand over a real temp workspace.
set -euo pipefail
OASIS=$(realpath "$1")
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cd "$work"

fail() { echo "SMOKE FAIL: $1" >&2; exit 1; }

$OASIS generate --kind protein --symbols 20000 --seed 5 -o db.fa >/dev/null
grep -q '^>' db.fa || fail "generate produced no FASTA headers"

$OASIS generate --kind dna --symbols 5000 --seed 6 -o dna.fa >/dev/null

# Index in all three construction/layout modes and verify each.
$OASIS index --db db.fa -o idx_plain >/dev/null
$OASIS index --db db.fa -o idx_clustered --clustered >/dev/null
$OASIS index --db db.fa -o idx_external --external --clustered >/dev/null
for d in idx_plain idx_clustered idx_external; do
  $OASIS verify-index --db db.fa --index "$d" > "verify_$d.out"
  grep -q '^OK:' "verify_$d.out" || fail "verify-index rejected $d"
done

# Search: in-memory and disk must agree on the top hit line.
mem=$($OASIS search --db db.fa -q DKDGDGTITTKE --min-score 20 --top 1 --format tabular)
for d in idx_plain idx_clustered idx_external; do
  disk=$($OASIS search --db db.fa --index "$d" -q DKDGDGTITTKE --min-score 20 \
           --top 1 --format tabular | head -1)
  [ "$mem" = "$disk" ] || fail "disk search over $d disagrees with memory"
done

# Output formats (capture to files: grep -q on a pipe can SIGPIPE the
# writer under pipefail).
$OASIS search --db db.fa -q DKDGDGTITTKE --min-score 20 --top 2 \
  --format pairwise > pairwise.out
grep -q 'Score =' pairwise.out || fail "pairwise format missing score line"
$OASIS search --db db.fa -q DKDGDGTITTKE --evalue 1000 --evalue-order \
  --top 3 > order.out
grep -q 'E=' order.out || fail "evalue-order output missing E values"

# Batch (two domains exercises the parallel path even on one core).
$OASIS generate --kind protein --symbols 2000 --seed 7 -o queries.fa >/dev/null
$OASIS batch --db db.fa --queries queries.fa --min-score 30 --domains 2 \
  --format tabular > batch.out
test -s batch.out || fail "batch produced no output"
awk -F'\t' '/^#/ { next } NF && NF != 12 { exit 1 }' batch.out \
  || fail "batch rows not 12 columns"

$OASIS compare --db db.fa -q DKDGDGTITTKE --min-score 22 > compare.out
grep -q '(= oasis)' compare.out || fail "compare: smith-waterman disagreed"

$OASIS stats --db db.fa > stats.out
grep -q 'suffix tree:' stats.out || fail "stats output missing"

echo "cli smoke: all subcommands OK"
