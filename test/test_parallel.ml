(* Sharded search: the partition planner, the counter algebra the
   coordinator aggregates with, the on-disk shard manifest, the domain
   pool, and — the heart of it — determinism of the K-shard merged hit
   stream against the single-engine reference under the documented tie
   rule. *)

let alpha = Bioseq.Alphabet.dna
let unit_matrix = Scoring.Matrices.dna_unit

let db_of_strings ?(alphabet = alpha) strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet ~id:(Printf.sprintf "s%d" i) s)
       strings)

(* One pool for the whole suite: two workers exercise real domain
   parallelism where the runner has cores and plain interleaving where
   it does not, without respawning domains per test case. *)
let pool = lazy (Oasis.Domain_pool.create ~domains:2)

(* ---------- Shard.plan ---------- *)

let check_partition db pieces =
  if Array.length pieces = 0 then Alcotest.fail "empty partition";
  let next = ref 0 in
  Array.iter
    (fun (p : Oasis.Shard.piece) ->
      Alcotest.(check int) "contiguous first_seq" !next p.first_seq;
      let n = Bioseq.Database.num_sequences p.db in
      Alcotest.(check bool) "piece non-empty" true (n > 0);
      for i = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "sequence %d preserved" (p.first_seq + i))
          true
          (Bioseq.Sequence.equal
             (Bioseq.Database.seq p.db i)
             (Bioseq.Database.seq db (p.first_seq + i)))
      done;
      next := !next + n)
    pieces;
  Alcotest.(check int) "all sequences covered"
    (Bioseq.Database.num_sequences db)
    !next

let test_plan_basic () =
  let db = db_of_strings [ "ACGT"; "GG"; "TTTTTT"; "A"; "CCGG" ] in
  List.iter
    (fun shards ->
      let pieces = Oasis.Shard.plan ~shards db in
      Alcotest.(check bool)
        (Printf.sprintf "at most %d pieces" shards)
        true
        (Array.length pieces <= shards);
      check_partition db pieces)
    [ 1; 2; 3; 4; 5 ];
  (* More shards than sequences clamps to one piece per sequence. *)
  let pieces = Oasis.Shard.plan ~shards:40 db in
  Alcotest.(check int) "clamped to num_sequences" 5 (Array.length pieces);
  check_partition db pieces;
  Alcotest.check_raises "shards = 0 rejected"
    (Invalid_argument "Shard.plan: shards < 1") (fun () ->
      ignore (Oasis.Shard.plan ~shards:0 db))

let qcheck_plan_partitions =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 12)
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 20)))
        (int_range 1 8))
  in
  let print (ss, k) = Printf.sprintf "db=%s k=%d" (String.concat "/" ss) k in
  QCheck.Test.make ~count:300
    ~name:"Shard.plan is a deterministic exact partition"
    (QCheck.make gen ~print)
    (fun (strings, shards) ->
      let db = db_of_strings strings in
      let pieces = Oasis.Shard.plan ~shards db in
      check_partition db pieces;
      (* Build and search must agree on the split: pure function. *)
      let again = Oasis.Shard.plan ~shards db in
      Array.length pieces = Array.length again
      && Array.for_all2
           (fun (a : Oasis.Shard.piece) (b : Oasis.Shard.piece) ->
             a.first_seq = b.first_seq
             && Bioseq.Database.num_sequences a.db
                = Bioseq.Database.num_sequences b.db)
           pieces again)

(* ---------- Counters.merge ---------- *)

let counters_a =
  {
    Oasis.Counters.columns = 10;
    nodes_expanded = 3;
    nodes_enqueued = 7;
    nodes_pruned = 2;
    max_queue = 5;
    pool_reused = 4;
    pool_live = 1;
    pool_peak_live = 6;
    pool_peak_bytes = 1000;
    minor_words = 12.5;
    io_hits = 9;
    io_misses = 2;
  }

let counters_b =
  {
    Oasis.Counters.columns = 100;
    nodes_expanded = 30;
    nodes_enqueued = 70;
    nodes_pruned = 20;
    max_queue = 2;
    pool_reused = 40;
    pool_live = 3;
    pool_peak_live = 4;
    pool_peak_bytes = 800;
    minor_words = 0.5;
    io_hits = 1;
    io_misses = 3;
  }

let test_counters_merge () =
  let m = Oasis.Counters.merge counters_a counters_b in
  Alcotest.(check int) "columns add" 110 m.Oasis.Counters.columns;
  Alcotest.(check int) "nodes_expanded add" 33 m.Oasis.Counters.nodes_expanded;
  Alcotest.(check int) "nodes_enqueued add" 77 m.Oasis.Counters.nodes_enqueued;
  Alcotest.(check int) "nodes_pruned add" 22 m.Oasis.Counters.nodes_pruned;
  Alcotest.(check int) "pool_reused add" 44 m.Oasis.Counters.pool_reused;
  Alcotest.(check (float 1e-9)) "minor_words add" 13.0
    m.Oasis.Counters.minor_words;
  Alcotest.(check int) "io_hits add" 10 m.Oasis.Counters.io_hits;
  Alcotest.(check int) "io_misses add" 5 m.Oasis.Counters.io_misses;
  Alcotest.(check int) "max_queue maxes" 5 m.Oasis.Counters.max_queue;
  Alcotest.(check int) "pool_live maxes" 3 m.Oasis.Counters.pool_live;
  Alcotest.(check int) "pool_peak_live maxes" 6 m.Oasis.Counters.pool_peak_live;
  Alcotest.(check int) "pool_peak_bytes maxes" 1000
    m.Oasis.Counters.pool_peak_bytes

let test_counters_no_double_count () =
  (* The regression this module exists for: merging an engine's
     snapshot with itself (or summing K shards that share a peak) must
     not inflate the arena high-water mark. *)
  let m = Oasis.Counters.merge counters_a counters_a in
  Alcotest.(check int) "pool_peak_bytes not doubled"
    counters_a.Oasis.Counters.pool_peak_bytes m.Oasis.Counters.pool_peak_bytes;
  Alcotest.(check int) "pool_peak_live not doubled"
    counters_a.Oasis.Counters.pool_peak_live m.Oasis.Counters.pool_peak_live;
  Alcotest.(check int) "columns doubled (work is additive)"
    (2 * counters_a.Oasis.Counters.columns)
    m.Oasis.Counters.columns

let test_counters_algebra () =
  let ( = ) = Stdlib.( = ) in
  Alcotest.(check bool) "zero is left identity" true
    (Oasis.Counters.merge Oasis.Counters.zero counters_a = counters_a);
  Alcotest.(check bool) "zero is right identity" true
    (Oasis.Counters.merge counters_a Oasis.Counters.zero = counters_a);
  Alcotest.(check bool) "commutative" true
    (Oasis.Counters.merge counters_a counters_b
    = Oasis.Counters.merge counters_b counters_a);
  Alcotest.(check bool) "associative" true
    (Oasis.Counters.(merge (merge counters_a counters_b) counters_a)
    = Oasis.Counters.(merge counters_a (merge counters_b counters_a)));
  Alcotest.(check bool) "sum folds merge" true
    (Oasis.Counters.sum [ counters_a; counters_b ]
    = Oasis.Counters.merge counters_a counters_b)

(* ---------- K-shard determinism vs the single engine ---------- *)

let single_engine_hits ~matrix ~gap ~min_score db q =
  let tree = Suffix_tree.Ukkonen.build db in
  Oasis.Engine.Mem.run
    (Oasis.Engine.Mem.create ~source:tree ~db ~query:q
       (Oasis.Engine.config ~matrix ~gap ~min_score ()))

let sharded_hits ~matrix ~gap ~min_score ~shards db q =
  let t =
    Oasis.Parallel.Mem.create_sharded ~pool:(Lazy.force pool) ~shards ~db
      ~query:q
      (Oasis.Engine.config ~matrix ~gap ~min_score ())
  in
  let hits = Oasis.Parallel.Mem.run t in
  (match Oasis.Parallel.Mem.outcome t with
  | Oasis.Engine.Complete -> ()
  | _ -> Alcotest.fail "unbudgeted sharded search did not complete");
  hits

let shard_of_seq pieces seq =
  let found = ref (-1) in
  Array.iteri
    (fun i (p : Oasis.Shard.piece) ->
      if
        seq >= p.first_seq
        && seq < p.first_seq + Bioseq.Database.num_sequences p.db
      then found := i)
    pieces;
  !found

let nonincreasing hits =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Oasis.Hit.score >= b.Oasis.Hit.score && go rest
    | _ -> true
  in
  go hits

(* Within each maximal run of equal scores, the merge releases shards
   in increasing index order (and a shard it has moved past can never
   reach that score again) — so shard indices are non-decreasing. *)
let tie_rule_respected pieces hits =
  let rec go = function
    | a :: (b :: _ as rest) ->
      (a.Oasis.Hit.score <> b.Oasis.Hit.score
      || shard_of_seq pieces a.Oasis.Hit.seq_index
         <= shard_of_seq pieces b.Oasis.Hit.seq_index)
      && go rest
    | _ -> true
  in
  go hits

let seq_score hits =
  List.sort compare
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)

(* The determinism property, for one scoring workload: K = 1 is
   bit-identical to the plain engine; K > 1 yields the same
   (seq_index, score) multiset in non-increasing score order under the
   documented cross-shard tie rule, and is reproducible run to run. *)
let determinism_prop ~matrix ~gap (strings, qtext, min_score, alphabet) =
  let db = db_of_strings ~alphabet strings in
  let q = Bioseq.Sequence.make ~alphabet ~id:"q" qtext in
  let reference = single_engine_hits ~matrix ~gap ~min_score db q in
  let sharded = sharded_hits ~matrix ~gap ~min_score db q in
  let one = sharded ~shards:1 in
  if one <> reference then
    QCheck.Test.fail_reportf "K=1 stream differs from the plain engine";
  List.for_all
    (fun k ->
      let pieces = Oasis.Shard.plan ~shards:k db in
      let hits = sharded ~shards:k in
      if not (nonincreasing hits) then
        QCheck.Test.fail_reportf "K=%d stream not non-increasing" k;
      if seq_score hits <> seq_score reference then
        QCheck.Test.fail_reportf "K=%d (seq, score) multiset differs" k;
      if not (tie_rule_respected pieces hits) then
        QCheck.Test.fail_reportf "K=%d violates the shard-order tie rule" k;
      if sharded ~shards:k <> hits then
        QCheck.Test.fail_reportf "K=%d stream not reproducible" k;
      true)
    [ 2; 4 ]

let dna_case_gen =
  QCheck.Gen.(
    let dna n = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) n in
    let* strings = list_size (int_range 1 10) (dna (int_range 1 25)) in
    let* q = dna (int_range 1 8) in
    let* min_score = int_range 1 6 in
    return (strings, q, min_score, Bioseq.Alphabet.dna))

let protein_case_gen =
  QCheck.Gen.(
    let residues = "ARNDCQEGHILKMFPSTWYVBZX" in
    let residue =
      map (String.get residues) (int_range 0 (String.length residues - 1))
    in
    let protein n m = string_size ~gen:residue (int_range n m) in
    let* strings = list_size (int_range 1 8) (protein 1 30) in
    let* q = protein 1 8 in
    let* min_score = int_range 1 25 in
    return (strings, q, min_score, Bioseq.Alphabet.protein))

let print_case (ss, q, ms, _) =
  Printf.sprintf "db=%s q=%s min_score=%d" (String.concat "/" ss) q ms

let qcheck_determinism_linear =
  QCheck.Test.make ~count:100
    ~name:"K-shard stream deterministic vs engine (DNA, linear gaps)"
    (QCheck.make dna_case_gen ~print:print_case)
    (determinism_prop ~matrix:unit_matrix ~gap:(Scoring.Gap.linear 1))

let qcheck_determinism_affine =
  QCheck.Test.make ~count:100
    ~name:"K-shard stream deterministic vs engine (DNA, affine gaps)"
    (QCheck.make dna_case_gen ~print:print_case)
    (determinism_prop ~matrix:unit_matrix
       ~gap:(Scoring.Gap.affine ~open_cost:2 ~extend_cost:1))

let qcheck_determinism_pam30 =
  QCheck.Test.make ~count:60
    ~name:"K-shard stream deterministic vs engine (protein, PAM30)"
    (QCheck.make protein_case_gen ~print:print_case)
    (determinism_prop ~matrix:Scoring.Matrices.pam30
       ~gap:(Scoring.Gap.linear 10))

let test_empty_shards_rejected () =
  let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" "AC" in
  Alcotest.check_raises "empty shard array"
    (Invalid_argument "Parallel.create: no shards") (fun () ->
      ignore
        (Oasis.Parallel.Mem.create ~pool:(Lazy.force pool) ~shards:[||]
           ~query:q
           (Oasis.Engine.config ~matrix:unit_matrix
              ~gap:(Scoring.Gap.linear 1) ~min_score:1 ())))

(* ---------- Shard_manifest ---------- *)

let entries_testable =
  Alcotest.testable
    (fun ppf (e : Storage.Shard_manifest.entry) ->
      Format.fprintf ppf "{first=%d; n=%d; sym=%d; grams=%d}" e.first_seq
        e.num_seqs e.symbols (Bytes.length e.grams))
    ( = )

(* Mixed gram payloads: present with different lengths, and absent —
   the variable-size tail must round-trip all three. *)
let sample_entries =
  [|
    {
      Storage.Shard_manifest.first_seq = 0;
      num_seqs = 3;
      symbols = 120;
      grams = Bytes.of_string "\x01\x00\xfe\x40";
    };
    {
      Storage.Shard_manifest.first_seq = 3;
      num_seqs = 1;
      symbols = 7;
      grams = Bytes.empty;
    };
    {
      Storage.Shard_manifest.first_seq = 4;
      num_seqs = 5;
      symbols = 64;
      grams = Bytes.of_string "\x80";
    };
  |]

let test_manifest_roundtrip () =
  let d = Storage.Device.in_memory () in
  Storage.Shard_manifest.write d sample_entries;
  Alcotest.(check (array entries_testable))
    "entries survive the round trip" sample_entries
    (Storage.Shard_manifest.read d)

let flip_bit d off =
  let buf = Bytes.create 1 in
  Storage.Device.pread d ~off ~buf;
  Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) lxor 0x04));
  Storage.Device.pwrite d ~off buf

let expect_manifest_corrupt what f =
  match f () with
  | (_ : Storage.Shard_manifest.entry array) ->
    Alcotest.failf "%s accepted" what
  | exception Storage.Shard_manifest.Corrupt _ -> ()

let test_manifest_corruption () =
  (* Flip one bit anywhere — payload or footer — and the read must
     refuse with Corrupt rather than return altered shard geometry. *)
  let len =
    let d = Storage.Device.in_memory () in
    Storage.Shard_manifest.write d sample_entries;
    Storage.Device.length d
  in
  for off = 0 to len - 1 do
    let d = Storage.Device.in_memory () in
    Storage.Shard_manifest.write d sample_entries;
    flip_bit d off;
    expect_manifest_corrupt
      (Printf.sprintf "bit flip at offset %d" off)
      (fun () -> Storage.Shard_manifest.read d)
  done;
  expect_manifest_corrupt "empty device" (fun () ->
      Storage.Shard_manifest.read (Storage.Device.in_memory ()))

let test_manifest_rejects_bad_entries () =
  let reject name entries =
    match Storage.Shard_manifest.write (Storage.Device.in_memory ()) entries with
    | () -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  let entry first_seq num_seqs symbols =
    { Storage.Shard_manifest.first_seq; num_seqs; symbols; grams = Bytes.empty }
  in
  reject "empty entry array" [||];
  reject "gap in sequence coverage" [| entry 0 2 10; entry 3 1 5 |];
  reject "not starting at sequence 0" [| entry 1 2 10 |];
  reject "empty shard" [| entry 0 0 0 |]

(* A version-1 manifest (magic "OASH", fixed 12-byte entries, no gram
   bitsets) must still read, surfacing empty [grams]. *)
let test_manifest_v1_compat () =
  let buf = Buffer.create 64 in
  let u32 v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))
  in
  u32 0x4853414F;
  u32 2;
  List.iter u32 [ 0; 3; 120; 3; 1; 7 ];
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Buffer.to_bytes buf);
  Storage.Footer.append d;
  let expect =
    Array.map
      (fun e -> { e with Storage.Shard_manifest.grams = Bytes.empty })
      (Array.sub sample_entries 0 2)
  in
  Alcotest.(check (array entries_testable))
    "v1 manifest reads with empty grams" expect
    (Storage.Shard_manifest.read d)

let test_manifest_save_load () =
  let dir = Filename.temp_file "oasis_manifest" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let f = Filename.concat dir Storage.Shard_manifest.filename in
      if Sys.file_exists f then Sys.remove f;
      Sys.rmdir dir)
    (fun () ->
      Alcotest.(check bool) "absent before save" false
        (Storage.Shard_manifest.exists ~dir);
      Storage.Shard_manifest.save ~dir sample_entries;
      Alcotest.(check bool) "present after save" true
        (Storage.Shard_manifest.exists ~dir);
      Alcotest.(check (array entries_testable))
        "load returns saved entries" sample_entries
        (Storage.Shard_manifest.load ~dir))

let test_shard_dir_layout () =
  Alcotest.(check string)
    "shard_dir" "idx/shard3"
    (Storage.Shard_manifest.shard_dir "idx" 3)

(* ---------- Domain_pool ---------- *)

let test_pool_runs_tasks () =
  Oasis.Domain_pool.with_pool ~domains:2 (fun p ->
      let hits = Atomic.make 0 in
      for _ = 1 to 50 do
        Oasis.Domain_pool.submit p (fun () -> Atomic.incr hits)
      done;
      Oasis.Domain_pool.wait p;
      Alcotest.(check int) "all tasks ran" 50 (Atomic.get hits);
      (* The pool stays usable after a wait. *)
      Oasis.Domain_pool.submit p (fun () -> Atomic.incr hits);
      Oasis.Domain_pool.wait p;
      Alcotest.(check int) "pool reusable after wait" 51 (Atomic.get hits))

let test_pool_propagates_exceptions () =
  Oasis.Domain_pool.with_pool ~domains:2 (fun p ->
      Oasis.Domain_pool.submit p (fun () -> failwith "boom");
      (match Oasis.Domain_pool.wait p with
      | () -> Alcotest.fail "task exception swallowed"
      | exception Failure msg -> Alcotest.(check string) "boom" "boom" msg);
      (* The exception is cleared and the worker survived. *)
      let ok = Atomic.make false in
      Oasis.Domain_pool.submit p (fun () -> Atomic.set ok true);
      Oasis.Domain_pool.wait p;
      Alcotest.(check bool) "pool alive after task failure" true
        (Atomic.get ok))

let () =
  let suite =
    [
      ( "plan",
        [
          Alcotest.test_case "partitions, clamps, rejects" `Quick
            test_plan_basic;
          QCheck_alcotest.to_alcotest qcheck_plan_partitions;
        ] );
      ( "counters",
        [
          Alcotest.test_case "merge sums work, maxes gauges" `Quick
            test_counters_merge;
          Alcotest.test_case "no pool-peak double count" `Quick
            test_counters_no_double_count;
          Alcotest.test_case "monoid laws" `Quick test_counters_algebra;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest qcheck_determinism_linear;
          QCheck_alcotest.to_alcotest qcheck_determinism_affine;
          QCheck_alcotest.to_alcotest qcheck_determinism_pam30;
          Alcotest.test_case "empty shard array rejected" `Quick
            test_empty_shards_rejected;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "round trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "every bit flip surfaces as Corrupt" `Quick
            test_manifest_corruption;
          Alcotest.test_case "bad entry arrays rejected" `Quick
            test_manifest_rejects_bad_entries;
          Alcotest.test_case "version-1 manifests still read" `Quick
            test_manifest_v1_compat;
          Alcotest.test_case "save / load / exists" `Quick
            test_manifest_save_load;
          Alcotest.test_case "shard_dir layout" `Quick test_shard_dir_layout;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs every task" `Quick test_pool_runs_tasks;
          Alcotest.test_case "propagates task exceptions" `Quick
            test_pool_propagates_exceptions;
        ] );
    ]
  in
  let failed =
    Fun.protect
      ~finally:(fun () ->
        if Lazy.is_val pool then Oasis.Domain_pool.shutdown (Lazy.force pool))
      (fun () ->
        match Alcotest.run ~and_exit:false "parallel" suite with
        | () -> false
        | exception Alcotest.Test_error -> true)
  in
  if failed then exit 1
