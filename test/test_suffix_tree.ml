(* Suffix tree construction and queries: paper example, randomized
   validation, Ukkonen vs partitioned equivalence. *)

let alpha = Bioseq.Alphabet.dna

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s -> Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let naive_occurrences db pattern =
  (* All global positions where [pattern] occurs inside one sequence. *)
  let out = ref [] in
  for i = 0 to Bioseq.Database.num_sequences db - 1 do
    let s = Bioseq.Database.seq db i in
    let text = Bioseq.Sequence.to_string s in
    let base = Bioseq.Database.seq_start db i in
    let plen = String.length pattern and tlen = String.length text in
    for pos = 0 to tlen - plen do
      if String.sub text pos plen = pattern then out := (base + pos) :: !out
    done
  done;
  List.sort compare !out

let check_tree_matches_naive db tree =
  (match Suffix_tree.Tree.validate tree with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "validate: %s" msg);
  (* Exact-match equivalence on a sample of substrings. *)
  for i = 0 to Bioseq.Database.num_sequences db - 1 do
    let s = Bioseq.Database.seq db i in
    let text = Bioseq.Sequence.to_string s in
    let n = String.length text in
    for start = 0 to min 3 (n - 1) do
      for len = 1 to min 5 (n - start) do
        let pattern = String.sub text start len in
        let expected = naive_occurrences db pattern in
        let got =
          Suffix_tree.Tree.find_exact tree (Bioseq.Alphabet.encode alpha pattern)
        in
        Alcotest.(check (list int))
          (Printf.sprintf "occurrences of %S" pattern)
          expected got
      done
    done
  done

(* --- Paper example: Figure 2, sequence AGTACGCCTAG --- *)

let paper_db () = db_of_strings [ "AGTACGCCTAG" ]

let test_paper_figure2 () =
  let db = paper_db () in
  let tree = Suffix_tree.Ukkonen.build db in
  (match Suffix_tree.Tree.validate tree with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "validate: %s" msg);
  let stats = Suffix_tree.Tree.stats tree in
  (* 12 suffixes: AGTACGCCTAG$ ... $ *)
  Alcotest.(check int) "occurrences" 12 stats.Suffix_tree.Tree.occurrences;
  (* TACG occurs at position 2 (§2.3.1). *)
  let positions =
    Suffix_tree.Tree.find_exact tree (Bioseq.Alphabet.encode alpha "TACG")
  in
  Alcotest.(check (list int)) "TACG" [ 2 ] positions;
  (* AG occurs at 0 and 9. *)
  let positions =
    Suffix_tree.Tree.find_exact tree (Bioseq.Alphabet.encode alpha "AG")
  in
  Alcotest.(check (list int)) "AG" [ 0; 9 ] positions;
  (* Absent pattern. *)
  let positions =
    Suffix_tree.Tree.find_exact tree (Bioseq.Alphabet.encode alpha "GGG")
  in
  Alcotest.(check (list int)) "GGG" [] positions

let test_multi_sequence () =
  let db = db_of_strings [ "ACGTACGT"; "CGTA"; "TTTT" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  check_tree_matches_naive db tree;
  let occurrences =
    Suffix_tree.Tree.find_exact tree (Bioseq.Alphabet.encode alpha "CGTA")
  in
  (* In s0 at global 1, and s1 is entirely CGTA at global 9. *)
  Alcotest.(check (list int)) "CGTA" [ 1; 9 ] occurrences

let test_duplicate_sequences () =
  (* Identical sequences exercise the implicit-suffix patch path. *)
  let db = db_of_strings [ "ACGT"; "ACGT"; "GT" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  check_tree_matches_naive db tree;
  let occurrences =
    Suffix_tree.Tree.find_exact tree (Bioseq.Alphabet.encode alpha "GT")
  in
  Alcotest.(check (list int)) "GT" [ 2; 7; 10 ] occurrences

let test_repetitive () =
  let db = db_of_strings [ "AAAAAAAAAA"; "AAAA" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  check_tree_matches_naive db tree

let test_mccreight_basics () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "ACGT"; "ACGT" ] in
  let tree = Suffix_tree.Mccreight.build db in
  check_tree_matches_naive db tree;
  Alcotest.(check bool) "same stats as ukkonen" true
    (Suffix_tree.Tree.stats tree
    = Suffix_tree.Tree.stats (Suffix_tree.Ukkonen.build db))

let test_path_helpers () =
  let db = paper_db () in
  let tree = Suffix_tree.Ukkonen.build db in
  let strings =
    Suffix_tree.Tree.fold tree ~init:[] ~f:(fun acc ~depth:_ node ->
        Suffix_tree.Tree.path_string tree node :: acc)
  in
  (* Every leaf path is a suffix followed by '$'. *)
  List.iter
    (fun s ->
      if String.length s > 0 && s.[String.length s - 1] = '$' then begin
        let body = String.sub s 0 (String.length s - 1) in
        let text = "AGTACGCCTAG" in
        let is_suffix =
          String.length body <= String.length text
          && String.sub text (String.length text - String.length body)
               (String.length body)
             = body
        in
        Alcotest.(check bool) (Printf.sprintf "%S is a suffix" body) true is_suffix
      end)
    strings

(* --- Incremental updates (Ukkonen.extend) --- *)

let test_extend_matches_batch () =
  let db0 = db_of_strings [ "ACGTACGT"; "CGTA" ] in
  let tree0 = Suffix_tree.Ukkonen.build db0 in
  let extra =
    [
      Bioseq.Sequence.make ~alphabet:alpha ~id:"s2" "TTACGTT";
      Bioseq.Sequence.make ~alphabet:alpha ~id:"s3" "CGTA" (* duplicate *);
    ]
  in
  let db1 = Bioseq.Database.append db0 extra in
  let tree1 = Suffix_tree.Ukkonen.extend tree0 db1 in
  check_tree_matches_naive db1 tree1;
  let batch = Suffix_tree.Ukkonen.build db1 in
  Alcotest.(check bool) "stats equal batch build" true
    (Suffix_tree.Tree.stats tree1 = Suffix_tree.Tree.stats batch)

let test_extend_rejects_non_extension () =
  let tree = Suffix_tree.Ukkonen.build (db_of_strings [ "ACGT" ]) in
  let other = db_of_strings [ "TTTT" ] in
  (try
     ignore (Suffix_tree.Ukkonen.extend tree other);
     Alcotest.fail "accepted a non-extension"
   with Invalid_argument _ -> ())

let qcheck_extend_equals_batch =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 4)
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 20)))
        (list_size (int_range 1 4)
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 20))))
  in
  QCheck.Test.make ~count:200 ~name:"incremental build equals batch build"
    (QCheck.make gen ~print:(fun (a, b) ->
         String.concat "/" a ^ " + " ^ String.concat "/" b))
    (fun (first, second) ->
      let db0 = db_of_strings first in
      let tree0 = Suffix_tree.Ukkonen.build db0 in
      let extra =
        List.mapi
          (fun i s ->
            Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "x%d" i) s)
          second
      in
      let db1 = Bioseq.Database.append db0 extra in
      let tree1 = Suffix_tree.Ukkonen.extend tree0 db1 in
      match Suffix_tree.Tree.validate tree1 with
      | Error msg -> QCheck.Test.fail_reportf "invalid: %s" msg
      | Ok () ->
        let batch = Suffix_tree.Ukkonen.build db1 in
        Suffix_tree.Tree.stats tree1 = Suffix_tree.Tree.stats batch)

(* --- Randomized construction checks --- *)

let random_db_gen =
  let open QCheck.Gen in
  let seq_gen =
    let* len = int_range 1 30 in
    string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (return len)
  in
  let* n = int_range 1 6 in
  list_size (return n) seq_gen

let qcheck_ukkonen_valid =
  QCheck.Test.make ~count:300 ~name:"ukkonen validates on random databases"
    (QCheck.make random_db_gen ~print:(String.concat "/"))
    (fun strings ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Ukkonen.build db in
      match Suffix_tree.Tree.validate tree with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "invalid tree: %s" msg)

let qcheck_mccreight_valid =
  QCheck.Test.make ~count:300 ~name:"mccreight validates on random databases"
    (QCheck.make random_db_gen ~print:(String.concat "/"))
    (fun strings ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Mccreight.build db in
      match Suffix_tree.Tree.validate tree with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "invalid tree: %s" msg)

let qcheck_mccreight_vs_ukkonen =
  QCheck.Test.make ~count:200 ~name:"mccreight and ukkonen agree structurally"
    (QCheck.make random_db_gen ~print:(String.concat "/"))
    (fun strings ->
      let db = db_of_strings strings in
      let a = Suffix_tree.Mccreight.build db in
      let b = Suffix_tree.Ukkonen.build db in
      Suffix_tree.Tree.stats a = Suffix_tree.Tree.stats b)

let qcheck_ukkonen_vs_partitioned =
  QCheck.Test.make ~count:150
    ~name:"ukkonen and partitioned builds agree structurally"
    (QCheck.make random_db_gen ~print:(String.concat "/"))
    (fun strings ->
      let db = db_of_strings strings in
      let a = Suffix_tree.Ukkonen.build db in
      let b = Suffix_tree.Partitioned.build ~prefix_len:2 db in
      let sa = Suffix_tree.Tree.stats a and sb = Suffix_tree.Tree.stats b in
      if sa <> sb then
        QCheck.Test.fail_reportf
          "stats differ: ukkonen (int=%d leaves=%d occ=%d depth=%d) vs \
           partitioned (int=%d leaves=%d occ=%d depth=%d)"
          sa.Suffix_tree.Tree.internal_nodes sa.leaves sa.occurrences
          sa.max_depth sb.Suffix_tree.Tree.internal_nodes sb.leaves
          sb.occurrences sb.max_depth
      else true)

let qcheck_find_exact =
  QCheck.Test.make ~count:200 ~name:"find_exact matches naive scan"
    (QCheck.make
       QCheck.Gen.(
         pair random_db_gen
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 6)))
       ~print:(fun (ss, p) -> String.concat "/" ss ^ " ? " ^ p))
    (fun (strings, pattern) ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let got =
        Suffix_tree.Tree.find_exact tree (Bioseq.Alphabet.encode alpha pattern)
      in
      let expected = naive_occurrences db pattern in
      if got <> expected then
        QCheck.Test.fail_reportf "got [%s], expected [%s]"
          (String.concat ";" (List.map string_of_int got))
          (String.concat ";" (List.map string_of_int expected))
      else true)

let qcheck_partition_cover =
  QCheck.Test.make ~count:100 ~name:"partitions cover every suffix exactly once"
    (QCheck.make random_db_gen ~print:(String.concat "/"))
    (fun strings ->
      let db = db_of_strings strings in
      let buckets, short = Suffix_tree.Partitioned.partitions ~prefix_len:2 db in
      let all =
        short @ Array.fold_left (fun acc b -> acc @ b) [] buckets
        |> List.sort compare
      in
      all = List.init (Bioseq.Database.data_length db) Fun.id)

let () =
  Alcotest.run "suffix_tree"
    [
      ( "examples",
        [
          Alcotest.test_case "paper figure 2" `Quick test_paper_figure2;
          Alcotest.test_case "multi-sequence" `Quick test_multi_sequence;
          Alcotest.test_case "duplicate sequences" `Quick test_duplicate_sequences;
          Alcotest.test_case "repetitive" `Quick test_repetitive;
          Alcotest.test_case "mccreight" `Quick test_mccreight_basics;
          Alcotest.test_case "path helpers" `Quick test_path_helpers;
          Alcotest.test_case "incremental extend" `Quick test_extend_matches_batch;
          Alcotest.test_case "extend rejects non-extension" `Quick
            test_extend_rejects_non_extension;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_ukkonen_valid;
            qcheck_ukkonen_vs_partitioned;
            qcheck_find_exact;
            qcheck_partition_cover;
            qcheck_extend_equals_batch;
            qcheck_mccreight_valid;
            qcheck_mccreight_vs_ukkonen;
          ] );
    ]
