(* The core correctness property: OASIS reports exactly the
   Smith-Waterman per-sequence maxima, online, in non-increasing score
   order — on the paper's worked example and on randomized inputs, with
   both tree sources and every pruning-option combination. *)

let alpha = Bioseq.Alphabet.dna
let unit_matrix = Scoring.Matrices.dna_unit
let gap1 = Scoring.Gap.linear 1

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s -> Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let query text = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" text

let mem_engine ?options ~matrix ~gap ~min_score db q =
  let tree = Suffix_tree.Ukkonen.build db in
  Oasis.Engine.Mem.create ~source:tree ~db ~query:q
    (Oasis.Engine.config ?options ~matrix ~gap ~min_score ())

let sw_hits ~matrix ~gap ~min_score db q =
  fst (Align.Smith_waterman.search ~matrix ~gap ~query:q ~db ~min_score)

let hit_pairs hits =
  List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits
  |> List.sort compare

let sw_pairs hits =
  List.map
    (fun h -> (h.Align.Smith_waterman.seq_index, h.Align.Smith_waterman.score))
    hits
  |> List.sort compare

(* --- Paper worked example (§3.3) --- *)

let test_paper_example () =
  let db = db_of_strings [ "AGTACGCCTAG" ] in
  let q = query "TACG" in
  let engine = mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score:1 db q in
  match Oasis.Engine.Mem.next engine with
  | None -> Alcotest.fail "no result"
  | Some hit ->
    Alcotest.(check int) "score" 4 hit.Oasis.Hit.score;
    Alcotest.(check int) "sequence" 0 hit.Oasis.Hit.seq_index;
    Alcotest.(check int) "query stop" 4 hit.Oasis.Hit.query_stop;
    (* TACG matches target positions [2,6). *)
    Alcotest.(check int) "target stop" 6 hit.Oasis.Hit.target_stop;
    Alcotest.(check (option reject)) "single sequence -> done" None
      (Option.map ignore (Oasis.Engine.Mem.next engine))

let test_paper_example_counters () =
  let db = db_of_strings [ "AGTACGCCTAG" ] in
  let q = query "TACG" in
  let engine = mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score:1 db q in
  ignore (Oasis.Engine.Mem.run engine);
  let c = Oasis.Engine.Mem.counters engine in
  Alcotest.(check bool) "expanded some nodes" true (c.Oasis.Engine.nodes_expanded > 0);
  Alcotest.(check bool) "filled some columns" true (c.Oasis.Engine.columns > 0);
  (* Far fewer columns than full S-W (which needs 11). Pruning should
     keep OASIS under the S-W column count times the node fan-out. *)
  Alcotest.(check bool) "column count sane" true (c.Oasis.Engine.columns < 64)

let test_min_score_filters () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TTTT" ] in
  let q = query "TACG" in
  let engine = mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score:3 db q in
  let hits = Oasis.Engine.Mem.run engine in
  (* Sequence 1 (TTTT) can reach at most score 1 against TACG. *)
  Alcotest.(check (list (pair int int))) "only strong hit" [ (0, 4) ]
    (hit_pairs hits)

let test_online_order () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "TACC"; "GGGG"; "TAGG" ] in
  let q = query "TACG" in
  let engine = mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score:1 db q in
  let hits = Oasis.Engine.Mem.run engine in
  let scores = List.map (fun h -> h.Oasis.Hit.score) hits in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "scores non-increasing" true (non_increasing scores);
  let seqs = List.map (fun h -> h.Oasis.Hit.seq_index) hits in
  Alcotest.(check int) "no duplicate sequences"
    (List.length seqs)
    (List.length (List.sort_uniq compare seqs))

let test_matches_sw_exactly () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA" ] in
  let q = query "TACG" in
  let oasis_hits =
    Oasis.Engine.Mem.run (mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score:2 db q)
  in
  let sw = sw_hits ~matrix:unit_matrix ~gap:gap1 ~min_score:2 db q in
  Alcotest.(check (list (pair int int))) "same hits" (sw_pairs sw)
    (hit_pairs oasis_hits)

let test_disk_engine_agrees () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA" ] in
  let q = query "TACG" in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:16 ~capacity:4 tree in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:1 () in
  let mem = Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg in
  let disk = Oasis.Engine.Disk.create ~source:dt ~db ~query:q cfg in
  let mh = Oasis.Engine.Mem.run mem and dh = Oasis.Engine.Disk.run disk in
  Alcotest.(check (list (pair int int))) "same hits" (hit_pairs mh) (hit_pairs dh)

let test_affine_matches_gotoh () =
  (* Affine gaps (our extension of the paper's future work) must agree
     with Gotoh-style Smith-Waterman. The affine model rewards one long
     gap over scattered ones, so pick sequences where that matters. *)
  let db = db_of_strings [ "AAAACCCCCTTTT"; "AAAATTTT"; "GGGGGGGG"; "AATT" ] in
  let q = query "AAAATTTT" in
  let match3 =
    Scoring.Submat.of_function ~alphabet:alpha ~name:"m3" (fun a b ->
        if a = b then 3 else -3)
  in
  let gap = Scoring.Gap.affine ~open_cost:4 ~extend_cost:1 in
  let sw = sw_hits ~matrix:match3 ~gap ~min_score:3 db q in
  let oasis_hits =
    Oasis.Engine.Mem.run (mem_engine ~matrix:match3 ~gap ~min_score:3 db q)
  in
  Alcotest.(check (list (pair int int))) "affine hits" (sw_pairs sw)
    (hit_pairs oasis_hits);
  (* The planted 5-gap case really scores 8*3 - (4 + 5) = 15. *)
  (match List.find_opt (fun h -> h.Oasis.Hit.seq_index = 0) oasis_hits with
  | Some h -> Alcotest.(check int) "long-gap score" 15 h.Oasis.Hit.score
  | None -> Alcotest.fail "long-gap sequence not reported")

let test_coordinates_consistent () =
  (* The (query_stop, target_stop) cell of the S-W matrix for the hit's
     sequence must hold exactly the reported score. *)
  let db = db_of_strings [ "AGTACGCCTAG"; "CCGTACCA" ] in
  let q = query "GTAC" in
  let hits =
    Oasis.Engine.Mem.run (mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score:1 db q)
  in
  Alcotest.(check bool) "has hits" true (hits <> []);
  List.iter
    (fun h ->
      let target = Bioseq.Database.seq db h.Oasis.Hit.seq_index in
      let dp =
        Align.Smith_waterman.dp_matrix ~matrix:unit_matrix ~gap:gap1 ~query:q
          ~target
      in
      Alcotest.(check int)
        (Printf.sprintf "cell for seq %d" h.Oasis.Hit.seq_index)
        h.Oasis.Hit.score
        dp.(h.Oasis.Hit.query_stop).(h.Oasis.Hit.target_stop))
    hits

(* --- Randomized equivalence with S-W --- *)

let random_case_gen =
  QCheck.Gen.(
    let dna n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
    let* strings = list_size (int_range 1 6) (dna 1 25) in
    let* q = dna 1 10 in
    let* min_score = int_range 1 6 in
    return (strings, q, min_score))

let print_case (strings, q, min_score) =
  Printf.sprintf "db=%s query=%s min=%d" (String.concat "/" strings) q min_score

let all_option_combos =
  [
    Oasis.Engine.default_options;
    { Oasis.Engine.default_options with prune_nonpositive = false };
    { Oasis.Engine.default_options with prune_dominated = false };
    {
      Oasis.Engine.prune_nonpositive = false;
      prune_dominated = false;
      heuristic = Oasis.Heuristic.Safe;
    };
    { Oasis.Engine.default_options with heuristic = Oasis.Heuristic.Paper };
  ]

let qcheck_matches_sw =
  QCheck.Test.make ~count:400 ~name:"OASIS hits = S-W per-sequence maxima"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let sw = sw_pairs (sw_hits ~matrix:unit_matrix ~gap:gap1 ~min_score db q) in
      let oasis_hits =
        Oasis.Engine.Mem.run
          (mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score db q)
      in
      let got = hit_pairs oasis_hits in
      if got <> sw then
        QCheck.Test.fail_reportf "oasis=[%s] sw=[%s]"
          (String.concat ";"
             (List.map (fun (s, v) -> Printf.sprintf "%d:%d" s v) got))
          (String.concat ";"
             (List.map (fun (s, v) -> Printf.sprintf "%d:%d" s v) sw))
      else true)

let qcheck_options_equivalent =
  QCheck.Test.make ~count:150
    ~name:"pruning options do not change results"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let reference =
        hit_pairs
          (Oasis.Engine.Mem.run
             (mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score db q))
      in
      List.for_all
        (fun options ->
          hit_pairs
            (Oasis.Engine.Mem.run
               (mem_engine ~options ~matrix:unit_matrix ~gap:gap1 ~min_score db q))
          = reference)
        all_option_combos)

let qcheck_online_order =
  QCheck.Test.make ~count:200 ~name:"results stream in non-increasing score order"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let hits =
        Oasis.Engine.Mem.run (mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score db q)
      in
      let rec check_order = function
        | a :: (b :: _ as rest) ->
          a.Oasis.Hit.score >= b.Oasis.Hit.score && check_order rest
        | _ -> true
      in
      check_order hits)

let qcheck_disk_matches_mem =
  QCheck.Test.make ~count:100 ~name:"disk engine = memory engine"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let tree = Suffix_tree.Ukkonen.build db in
      let cfg =
        Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score ()
      in
      let dt, _ = Storage.Disk_tree.of_tree ~block_size:16 ~capacity:3 tree in
      let mh =
        Oasis.Engine.Mem.run (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg)
      in
      let dh =
        Oasis.Engine.Disk.run (Oasis.Engine.Disk.create ~source:dt ~db ~query:q cfg)
      in
      hit_pairs mh = hit_pairs dh)

let qcheck_coordinates =
  QCheck.Test.make ~count:150 ~name:"reported coordinates hold the reported score"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let hits =
        Oasis.Engine.Mem.run (mem_engine ~matrix:unit_matrix ~gap:gap1 ~min_score db q)
      in
      List.for_all
        (fun h ->
          let target = Bioseq.Database.seq db h.Oasis.Hit.seq_index in
          let dp =
            Align.Smith_waterman.dp_matrix ~matrix:unit_matrix ~gap:gap1
              ~query:q ~target
          in
          dp.(h.Oasis.Hit.query_stop).(h.Oasis.Hit.target_stop) = h.Oasis.Hit.score)
        hits)

let qcheck_protein_pam30 =
  (* Same equivalence on the protein alphabet with PAM30 + gap 10, the
     paper's evaluation setting — ambiguity codes included. *)
  let gen =
    QCheck.Gen.(
      let residues = "ARNDCQEGHILKMFPSTWYVBZX" in
      let residue =
        map (String.get residues) (int_range 0 (String.length residues - 1))
      in
      let protein n m = string_size ~gen:residue (int_range n m) in
      let* strings = list_size (int_range 1 4) (protein 1 30) in
      let* q = protein 1 8 in
      let* min_score = int_range 1 25 in
      return (strings, q, min_score))
  in
  QCheck.Test.make ~count:200 ~name:"OASIS = S-W under PAM30"
    (QCheck.make gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let palpha = Bioseq.Alphabet.protein in
      let db =
        Bioseq.Database.make
          (List.mapi
             (fun i s ->
               Bioseq.Sequence.make ~alphabet:palpha ~id:(Printf.sprintf "p%d" i) s)
             strings)
      in
      let q = Bioseq.Sequence.make ~alphabet:palpha ~id:"q" qtext in
      let matrix = Scoring.Matrices.pam30 and gap = Scoring.Gap.linear 10 in
      let sw = sw_pairs (sw_hits ~matrix ~gap ~min_score db q) in
      let tree = Suffix_tree.Ukkonen.build db in
      let oasis_hits =
        Oasis.Engine.Mem.run
          (Oasis.Engine.Mem.create ~source:tree ~db ~query:q
             (Oasis.Engine.config ~matrix ~gap ~min_score ()))
      in
      hit_pairs oasis_hits = sw)

let qcheck_affine_matches_sw =
  QCheck.Test.make ~count:300 ~name:"OASIS = S-W under affine gaps"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let gap = Scoring.Gap.affine ~open_cost:2 ~extend_cost:1 in
      let sw = sw_pairs (sw_hits ~matrix:unit_matrix ~gap ~min_score db q) in
      let got =
        hit_pairs
          (Oasis.Engine.Mem.run (mem_engine ~matrix:unit_matrix ~gap ~min_score db q))
      in
      if got <> sw then
        QCheck.Test.fail_reportf "oasis=[%s] sw=[%s]"
          (String.concat ";"
             (List.map (fun (s, v) -> Printf.sprintf "%d:%d" s v) got))
          (String.concat ";"
             (List.map (fun (s, v) -> Printf.sprintf "%d:%d" s v) sw))
      else true)

let qcheck_affine_protein =
  let gen =
    QCheck.Gen.(
      let residues = "ARNDCQEGHILKMFPSTWYV" in
      let residue = map (String.get residues) (int_range 0 19) in
      let protein n m = string_size ~gen:residue (int_range n m) in
      let* strings = list_size (int_range 1 4) (protein 1 30) in
      let* q = protein 1 8 in
      let* min_score = int_range 1 25 in
      return (strings, q, min_score))
  in
  QCheck.Test.make ~count:150 ~name:"OASIS = S-W under PAM30 + affine gaps"
    (QCheck.make gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let palpha = Bioseq.Alphabet.protein in
      let db =
        Bioseq.Database.make
          (List.mapi
             (fun i s ->
               Bioseq.Sequence.make ~alphabet:palpha ~id:(Printf.sprintf "p%d" i) s)
             strings)
      in
      let q = Bioseq.Sequence.make ~alphabet:palpha ~id:"q" qtext in
      let matrix = Scoring.Matrices.pam30 in
      let gap = Scoring.Gap.affine ~open_cost:9 ~extend_cost:2 in
      let sw = sw_pairs (sw_hits ~matrix ~gap ~min_score db q) in
      let tree = Suffix_tree.Ukkonen.build db in
      let oasis_hits =
        Oasis.Engine.Mem.run
          (Oasis.Engine.Mem.create ~source:tree ~db ~query:q
             (Oasis.Engine.config ~matrix ~gap ~min_score ()))
      in
      hit_pairs oasis_hits = sw)

(* --- Long-query filter-and-refine (exactness) --- *)

let qcheck_profile_engine_equals_sw =
  (* The profile engine must equal profile Smith-Waterman — including
     for genuinely position-specific profiles (not just of_query). *)
  let gen =
    QCheck.Gen.(
      let* m = int_range 2 8 in
      let* rows =
        list_size (return m)
          (list_size (return 5) (int_range (-6) 6))
      in
      let* strings =
        list_size (int_range 1 5)
          (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 2 25))
      in
      let* min_score = int_range 1 8 in
      return (rows, strings, min_score))
  in
  QCheck.Test.make ~count:300 ~name:"profile engine = profile S-W"
    (QCheck.make gen ~print:(fun (_, ss, ms) ->
         Printf.sprintf "%s min=%d" (String.concat "/" ss) ms))
    (fun (rows, strings, min_score) ->
      let db = db_of_strings strings in
      let profile =
        Scoring.Pssm.make ~alphabet:alpha
          (Array.of_list (List.map Array.of_list rows))
      in
      let gap = Scoring.Gap.linear 2 in
      let tree = Suffix_tree.Ukkonen.build db in
      let engine_hits =
        Oasis.Engine.Mem.run
          (Oasis.Engine.Mem.create_profile ~source:tree ~db ~profile ~gap
             ~min_score ())
      in
      let sw, _ =
        Align.Smith_waterman.search_profile ~profile ~gap ~db ~min_score
      in
      hit_pairs engine_hits = sw_pairs sw)

let qcheck_disk_affine =
  QCheck.Test.make ~count:100 ~name:"disk engine = S-W under affine gaps"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let gap = Scoring.Gap.affine ~open_cost:2 ~extend_cost:1 in
      let tree = Suffix_tree.Ukkonen.build db in
      let dt, _ =
        Storage.Disk_tree.of_tree ~layout:Storage.Disk_tree.Clustered
          ~block_size:16 ~capacity:3 tree
      in
      let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap ~min_score () in
      let dh =
        Oasis.Engine.Disk.run (Oasis.Engine.Disk.create ~source:dt ~db ~query:q cfg)
      in
      hit_pairs dh = sw_pairs (sw_hits ~matrix:unit_matrix ~gap ~min_score db q))

let qcheck_long_query_exact =
  let gen =
    QCheck.Gen.(
      let dna n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
      let* strings = list_size (int_range 1 5) (dna 5 40) in
      let* q = dna 6 24 in
      let* min_score = int_range 1 8 in
      let* segments = int_range 1 4 in
      return (strings, q, min_score, segments))
  in
  QCheck.Test.make ~count:300 ~name:"segmented long-query search is exact"
    (QCheck.make gen ~print:(fun (ss, q, ms, k) ->
         Printf.sprintf "%s ? %s min=%d k=%d" (String.concat "/" ss) q ms k))
    (fun (strings, qtext, min_score, segments) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let tree = Suffix_tree.Ukkonen.build db in
      let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score () in
      let direct =
        hit_pairs
          (Oasis.Engine.Mem.run
             (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg))
      in
      let segmented, _ =
        Oasis.Long_query.Mem.search ~source:tree ~db ~query:q ~segments cfg
      in
      hit_pairs segmented = direct)

let qcheck_long_query_affine =
  let gen =
    QCheck.Gen.(
      let dna n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
      let* strings = list_size (int_range 1 4) (dna 5 30) in
      let* q = dna 8 20 in
      let* min_score = int_range 1 8 in
      return (strings, q, min_score, 3))
  in
  QCheck.Test.make ~count:150
    ~name:"segmented search stays exact under affine gaps"
    (QCheck.make gen ~print:(fun (ss, q, ms, k) ->
         Printf.sprintf "%s ? %s min=%d k=%d" (String.concat "/" ss) q ms k))
    (fun (strings, qtext, min_score, segments) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let tree = Suffix_tree.Ukkonen.build db in
      let gap = Scoring.Gap.affine ~open_cost:2 ~extend_cost:1 in
      let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap ~min_score () in
      let direct =
        hit_pairs
          (Oasis.Engine.Mem.run
             (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg))
      in
      let segmented, _ =
        Oasis.Long_query.Mem.search ~source:tree ~db ~query:q ~segments cfg
      in
      hit_pairs segmented = direct)

(* --- Budgeted search / graceful degradation --- *)

let mem_engine_budget ~budget ~min_score db q =
  let tree = Suffix_tree.Ukkonen.build db in
  Oasis.Engine.Mem.create ~source:tree ~db ~query:q
    (Oasis.Engine.config ~budget ~matrix:unit_matrix ~gap:gap1 ~min_score ())

(* A truncated run degrades gracefully when everything it reported is an
   exact oracle hit and everything it suppressed is covered by the
   Exhausted bound. *)
let check_degradation ~name db q min_score engine =
  let hits = Oasis.Engine.Mem.run engine in
  let got = hit_pairs hits in
  let oracle = sw_pairs (sw_hits ~matrix:unit_matrix ~gap:gap1 ~min_score db q) in
  match Oasis.Engine.Mem.outcome engine with
  | Oasis.Engine.Searching -> Alcotest.failf "%s: still Searching after drain" name
  | Oasis.Engine.Complete ->
    Alcotest.(check (list (pair int int))) (name ^ ": complete = oracle") oracle got
  | Oasis.Engine.Exhausted { remaining_bound } ->
    List.iter
      (fun p ->
        if not (List.mem p oracle) then
          Alcotest.failf "%s: reported non-oracle hit (%d, %d)" name (fst p)
            (snd p))
      got;
    List.iter
      (fun (s, score) ->
        if (not (List.mem (s, score) got)) && score > remaining_bound then
          Alcotest.failf "%s: suppressed hit (%d, %d) above bound %d" name s
            score remaining_bound)
      oracle

let test_budget_max_columns () =
  let db =
    db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA"; "ACGTAC" ]
  in
  let q = query "TACG" in
  let budget = Oasis.Engine.budget ~max_columns:1 () in
  let engine = mem_engine_budget ~budget ~min_score:1 db q in
  let hits = Oasis.Engine.Mem.run engine in
  (match Oasis.Engine.Mem.outcome engine with
  | Oasis.Engine.Exhausted { remaining_bound } ->
    Alcotest.(check bool) "bound positive" true (remaining_bound >= 1)
  | _ -> Alcotest.fail "tiny column budget did not exhaust");
  (* A fresh engine with the same budget degrades gracefully. *)
  ignore hits;
  check_degradation ~name:"max_columns=1" db q 1
    (mem_engine_budget ~budget ~min_score:1 db q)

let test_budget_max_nodes () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA" ] in
  let q = query "TACG" in
  let budget = Oasis.Engine.budget ~max_expanded:1 () in
  check_degradation ~name:"max_expanded=1" db q 1
    (mem_engine_budget ~budget ~min_score:1 db q)

let test_budget_unlimited_completes () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC" ] in
  let q = query "TACG" in
  let engine = mem_engine_budget ~budget:Oasis.Engine.unlimited ~min_score:2 db q in
  let hits = Oasis.Engine.Mem.run engine in
  Alcotest.(check bool) "complete" true
    (Oasis.Engine.Mem.outcome engine = Oasis.Engine.Complete);
  Alcotest.(check (list (pair int int)))
    "hits = oracle"
    (sw_pairs (sw_hits ~matrix:unit_matrix ~gap:gap1 ~min_score:2 db q))
    (hit_pairs hits)

let test_budget_time_limit_zero () =
  (* An already-expired deadline stops the search before its first pop;
     the bound is then the root priority, covering every possible hit. *)
  let db = db_of_strings [ "TACGTACG"; "AGTC" ] in
  let q = query "TACG" in
  let budget = Oasis.Engine.budget ~time_limit:0. () in
  let engine = mem_engine_budget ~budget ~min_score:1 db q in
  Alcotest.(check bool) "no hit emitted" true
    (Oasis.Engine.Mem.next engine = None);
  match Oasis.Engine.Mem.outcome engine with
  | Oasis.Engine.Exhausted { remaining_bound } ->
    let oracle = sw_pairs (sw_hits ~matrix:unit_matrix ~gap:gap1 ~min_score:1 db q) in
    List.iter
      (fun (_, score) ->
        Alcotest.(check bool) "bound admissible" true (score <= remaining_bound))
      oracle
  | _ -> Alcotest.fail "expired deadline did not exhaust"

let qcheck_budget_graceful =
  QCheck.Test.make ~count:300
    ~name:"budgeted search: exact prefix + admissible bound"
    (QCheck.make
       QCheck.Gen.(
         pair random_case_gen (int_range 0 60))
       ~print:(fun (case, cols) ->
         print_case case ^ Printf.sprintf " max_columns=%d" cols))
    (fun ((strings, qtext, min_score), max_columns) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let budget = Oasis.Engine.budget ~max_columns () in
      let engine = mem_engine_budget ~budget ~min_score db q in
      let got = hit_pairs (Oasis.Engine.Mem.run engine) in
      let oracle =
        sw_pairs (sw_hits ~matrix:unit_matrix ~gap:gap1 ~min_score db q)
      in
      match Oasis.Engine.Mem.outcome engine with
      | Oasis.Engine.Searching -> false
      | Oasis.Engine.Complete -> got = oracle
      | Oasis.Engine.Exhausted { remaining_bound } ->
        List.for_all (fun p -> List.mem p oracle) got
        && List.for_all
             (fun (s, score) ->
               List.mem (s, score) got || score <= remaining_bound)
             oracle)

(* --- Pooled kernel vs. reference implementation --- *)

(* The optimized engine must reproduce the pre-refactor engine's hit
   stream bit for bit: same hits, same order, same tie-breaks — not just
   the same set. [Oasis.Reference] is that engine, kept as an executable
   specification; these properties drain both engines step by step and
   compare full records in stream order. *)

let same_hit (a : Oasis.Hit.t) (b : Oasis.Hit.t) =
  a.seq_index = b.seq_index
  && a.score = b.score
  && a.query_stop = b.query_stop
  && a.target_stop = b.target_stop

let rec same_stream xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs, y :: ys -> same_hit x y && same_stream xs ys
  | _ -> false

let engine_pair ?options ?budget ~matrix ~gap ~min_score db q =
  let tree = Suffix_tree.Ukkonen.build db in
  let cfg = Oasis.Engine.config ?options ?budget ~matrix ~gap ~min_score () in
  ( Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg,
    Oasis.Reference.Mem.create ~source:tree ~db ~query:q cfg )

let same_outcome a b =
  match (a, b) with
  | Oasis.Engine.Searching, Oasis.Engine.Searching -> true
  | Oasis.Engine.Complete, Oasis.Engine.Complete -> true
  | ( Oasis.Engine.Exhausted { remaining_bound = x },
      Oasis.Engine.Exhausted { remaining_bound = y } ) ->
    x = y
  | _ -> false

let qcheck_stream_equals_reference =
  QCheck.Test.make ~count:300
    ~name:"pooled engine stream = reference stream (linear)"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let engine, reference =
        engine_pair ~matrix:unit_matrix ~gap:gap1 ~min_score db q
      in
      let eh = Oasis.Engine.Mem.run engine in
      let rh = Oasis.Reference.Mem.run reference in
      same_stream eh rh
      && (Oasis.Engine.Mem.counters engine).Oasis.Engine.columns
         = Oasis.Reference.Mem.columns reference)

let qcheck_stream_equals_reference_affine =
  QCheck.Test.make ~count:200
    ~name:"pooled engine stream = reference stream (affine)"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let gap = Scoring.Gap.affine ~open_cost:2 ~extend_cost:1 in
      let engine, reference = engine_pair ~matrix:unit_matrix ~gap ~min_score db q in
      same_stream (Oasis.Engine.Mem.run engine) (Oasis.Reference.Mem.run reference))

let qcheck_stream_equals_reference_protein =
  let gen =
    QCheck.Gen.(
      let residues = "ARNDCQEGHILKMFPSTWYVBZX" in
      let residue =
        map (String.get residues) (int_range 0 (String.length residues - 1))
      in
      let protein n m = string_size ~gen:residue (int_range n m) in
      let* strings = list_size (int_range 1 4) (protein 1 30) in
      let* q = protein 1 8 in
      let* min_score = int_range 1 25 in
      return (strings, q, min_score))
  in
  QCheck.Test.make ~count:150
    ~name:"pooled engine stream = reference stream (PAM30)"
    (QCheck.make gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let palpha = Bioseq.Alphabet.protein in
      let db =
        Bioseq.Database.make
          (List.mapi
             (fun i s ->
               Bioseq.Sequence.make ~alphabet:palpha ~id:(Printf.sprintf "p%d" i) s)
             strings)
      in
      let q = Bioseq.Sequence.make ~alphabet:palpha ~id:"q" qtext in
      let engine, reference =
        engine_pair ~matrix:Scoring.Matrices.pam30 ~gap:(Scoring.Gap.linear 10)
          ~min_score db q
      in
      same_stream (Oasis.Engine.Mem.run engine) (Oasis.Reference.Mem.run reference))

let qcheck_stream_equals_reference_options =
  (* Every pruning/heuristic combination must stay in lockstep — this is
     what pins the specialized default-path kernel to the generic one. *)
  QCheck.Test.make ~count:100
    ~name:"pooled engine stream = reference stream (all option combos)"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      List.for_all
        (fun options ->
          let engine, reference =
            engine_pair ~options ~matrix:unit_matrix ~gap:gap1 ~min_score db q
          in
          same_stream (Oasis.Engine.Mem.run engine)
            (Oasis.Reference.Mem.run reference))
        all_option_combos)

let qcheck_stream_equals_reference_budgeted =
  (* Budgeted runs must truncate at exactly the same point with the same
     outcome and the same remaining bound. *)
  QCheck.Test.make ~count:200
    ~name:"budgeted pooled engine = budgeted reference (outcome + bound)"
    (QCheck.make
       QCheck.Gen.(triple random_case_gen (int_range 0 40) (int_range 0 10))
       ~print:(fun (case, cols, nodes) ->
         print_case case ^ Printf.sprintf " max_columns=%d max_expanded=%d" cols nodes))
    (fun ((strings, qtext, min_score), max_columns, max_expanded) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let budget = Oasis.Engine.budget ~max_columns ~max_expanded () in
      let engine, reference =
        engine_pair ~budget ~matrix:unit_matrix ~gap:gap1 ~min_score db q
      in
      same_stream (Oasis.Engine.Mem.run engine) (Oasis.Reference.Mem.run reference)
      && same_outcome
           (Oasis.Engine.Mem.outcome engine)
           (Oasis.Reference.Mem.outcome reference))

let qcheck_pool_recycles =
  (* Arena discipline: once the frontier is drained every slot has been
     released (live slots otherwise belong exactly to still-queued
     viable nodes, which an early finish legitimately leaves behind),
     and the peak never exceeds queued nodes plus the parent and child
     of the expansion in flight. *)
  QCheck.Test.make ~count:200 ~name:"column pool drains to zero live slots"
    (QCheck.make random_case_gen ~print:print_case)
    (fun (strings, qtext, min_score) ->
      let db = db_of_strings strings in
      let q = query qtext in
      let tree = Suffix_tree.Ukkonen.build db in
      let engine =
        Oasis.Engine.Mem.create ~source:tree ~db ~query:q
          (Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score ())
      in
      ignore (Oasis.Engine.Mem.run engine);
      let c = Oasis.Engine.Mem.counters engine in
      (Oasis.Engine.Mem.peek_bound engine <> None
      || c.Oasis.Engine.pool_live = 0)
      && c.Oasis.Engine.pool_peak_live <= c.Oasis.Engine.nodes_enqueued + 2
      && (c.Oasis.Engine.nodes_expanded <= 1
         || c.Oasis.Engine.pool_peak_bytes > 0))

(* --- Parallel batch search --- *)

let test_batch_parallel_equals_sequential () =
  let db =
    db_of_strings
      [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA"; "ACGTACGTAA"; "TTAACC" ]
  in
  let tree = Suffix_tree.Ukkonen.build db in
  let queries =
    List.map query [ "TACG"; "GATT"; "ACGT"; "CCTA"; "AAAA"; "TTAA"; "CGTA" ]
  in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:2 () in
  let extract results =
    List.map
      (fun r ->
        ( r.Oasis.Batch.query_index,
          List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) r.Oasis.Batch.hits ))
      results
  in
  let sequential = extract (Oasis.Batch.run ~domains:1 ~tree ~db ~queries cfg) in
  List.iter
    (fun domains ->
      let parallel = extract (Oasis.Batch.run ~domains ~tree ~db ~queries cfg) in
      Alcotest.(check (list (pair int (list (pair int int)))))
        (Printf.sprintf "%d domains" domains)
        sequential parallel)
    [ 2; 3; 4 ]

let qcheck_batch_parallel =
  QCheck.Test.make ~count:50 ~name:"parallel batch equals sequential batch"
    (QCheck.make
       QCheck.Gen.(
         let dna n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
         pair (list_size (int_range 1 5) (dna 2 30)) (list_size (int_range 1 6) (dna 2 8)))
       ~print:(fun (ss, qs) -> String.concat "/" ss ^ " ? " ^ String.concat "," qs))
    (fun (strings, qtexts) ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let queries = List.map query qtexts in
      let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:1 () in
      let key results =
        List.map
          (fun r ->
            List.map
              (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score))
              r.Oasis.Batch.hits)
          results
      in
      key (Oasis.Batch.run ~domains:1 ~tree ~db ~queries cfg)
      = key (Oasis.Batch.run ~domains:3 ~tree ~db ~queries cfg))

let () =
  Alcotest.run "oasis"
    [
      ( "examples",
        [
          Alcotest.test_case "paper worked example" `Quick test_paper_example;
          Alcotest.test_case "counters" `Quick test_paper_example_counters;
          Alcotest.test_case "min_score filtering" `Quick test_min_score_filters;
          Alcotest.test_case "online ordering" `Quick test_online_order;
          Alcotest.test_case "matches S-W" `Quick test_matches_sw_exactly;
          Alcotest.test_case "disk engine agrees" `Quick test_disk_engine_agrees;
          Alcotest.test_case "affine matches Gotoh S-W" `Quick
            test_affine_matches_gotoh;
          Alcotest.test_case "coordinates consistent" `Quick
            test_coordinates_consistent;
          Alcotest.test_case "parallel batch" `Quick
            test_batch_parallel_equals_sequential;
        ] );
      ( "budget",
        [
          Alcotest.test_case "max_columns exhausts with a bound" `Quick
            test_budget_max_columns;
          Alcotest.test_case "max_expanded degrades gracefully" `Quick
            test_budget_max_nodes;
          Alcotest.test_case "unlimited budget completes" `Quick
            test_budget_unlimited_completes;
          Alcotest.test_case "expired deadline stops before work" `Quick
            test_budget_time_limit_zero;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_matches_sw;
            qcheck_options_equivalent;
            qcheck_online_order;
            qcheck_disk_matches_mem;
            qcheck_coordinates;
            qcheck_protein_pam30;
            qcheck_affine_matches_sw;
            qcheck_affine_protein;
            qcheck_long_query_exact;
            qcheck_long_query_affine;
            qcheck_batch_parallel;
            qcheck_disk_affine;
            qcheck_profile_engine_equals_sw;
            qcheck_budget_graceful;
            qcheck_stream_equals_reference;
            qcheck_stream_equals_reference_affine;
            qcheck_stream_equals_reference_protein;
            qcheck_stream_equals_reference_options;
            qcheck_stream_equals_reference_budgeted;
            qcheck_pool_recycles;
          ] );
    ]
