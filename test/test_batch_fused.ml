(* The fused batch kernel's contract: every query's hit stream —
   values, order among equal scores, and budget truncation point — is
   bit-identical to running the single-query engine on that query
   alone. These tests compare full [Hit.t] streams structurally (not
   score multisets) across gap models, alphabets, sources, pruning
   options, and budgets. *)

let alpha = Bioseq.Alphabet.dna
let unit_matrix = Scoring.Matrices.dna_unit
let gap1 = Scoring.Gap.linear 1

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let queries_of_strings texts =
  Array.of_list
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "q%d" i) s)
       texts)

(* Reference: each query through its own single-query engine. *)
let single_streams ~tree ~db ~queries cfg =
  Array.map
    (fun query ->
      let e = Oasis.Engine.Mem.create ~source:tree ~db ~query cfg in
      let hits = Oasis.Engine.Mem.run e in
      (hits, Oasis.Engine.Mem.outcome e, Oasis.Engine.Mem.counters e))
    queries

let show_hits hits =
  String.concat ";"
    (List.map
       (fun h ->
         Printf.sprintf "%d:%d@%d,%d" h.Oasis.Hit.seq_index h.Oasis.Hit.score
           h.Oasis.Hit.query_stop h.Oasis.Hit.target_stop)
       hits)

let show_outcome = function
  | Oasis.Engine.Searching -> "searching"
  | Oasis.Engine.Complete -> "complete"
  | Oasis.Engine.Exhausted { remaining_bound } ->
    Printf.sprintf "exhausted(%d)" remaining_bound

(* Core comparison: fused streams and outcomes vs single-engine, on
   both tree sources. Each fused backend is held to {e its own}
   backend's single engine — that is the bit-identity contract, and the
   backends themselves are not column-for-column identical: a disk leaf
   arc's label can differ in length from its in-memory counterpart, so
   under a [max_columns] budget the two single engines can truncate at
   different points. Returns true or fails the qcheck test with a
   report. *)
let check_fused_equal ~db ~queries cfg =
  let tree = Suffix_tree.Ukkonen.build db in
  let expected = single_streams ~tree ~db ~queries cfg in
  let check expected tag fused_hits fused_outcome q =
    let exp_hits, exp_outcome, _ = expected.(q) in
    if fused_hits <> exp_hits then
      QCheck.Test.fail_reportf "%s query %d: fused=[%s] single=[%s]" tag q
        (show_hits fused_hits) (show_hits exp_hits);
    if fused_outcome <> exp_outcome then
      QCheck.Test.fail_reportf "%s query %d: outcome fused=%s single=%s" tag q
        (show_outcome fused_outcome)
        (show_outcome exp_outcome)
  in
  let mem = Oasis.Batch_kernel.Mem.create ~source:tree ~db ~queries cfg in
  Oasis.Batch_kernel.Mem.run mem;
  Array.iteri
    (fun q _ ->
      check expected "mem"
        (Oasis.Batch_kernel.Mem.hits mem q)
        (Oasis.Batch_kernel.Mem.outcome mem q)
        q)
    queries;
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:16 ~capacity:3 tree in
  let disk_expected =
    Array.map
      (fun query ->
        let e = Oasis.Engine.Disk.create ~source:dt ~db ~query cfg in
        let hits = Oasis.Engine.Disk.run e in
        (hits, Oasis.Engine.Disk.outcome e, Oasis.Engine.Disk.counters e))
      queries
  in
  let disk = Oasis.Batch_kernel.Disk.create ~source:dt ~db ~queries cfg in
  Oasis.Batch_kernel.Disk.run disk;
  Array.iteri
    (fun q _ ->
      check disk_expected "disk"
        (Oasis.Batch_kernel.Disk.hits disk q)
        (Oasis.Batch_kernel.Disk.outcome disk q)
        q)
    queries;
  true

let batch_case_gen =
  QCheck.Gen.(
    let dna n m =
      string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m)
    in
    let* strings = list_size (int_range 1 6) (dna 1 25) in
    let* qs = list_size (int_range 1 6) (dna 1 10) in
    let* min_score = int_range 1 6 in
    return (strings, qs, min_score))

let print_batch_case (strings, qs, min_score) =
  Printf.sprintf "db=%s queries=%s min=%d"
    (String.concat "/" strings)
    (String.concat "/" qs) min_score

let qcheck_fused_linear =
  QCheck.Test.make ~count:250
    ~name:"fused streams = single-engine streams (linear, mem+disk)"
    (QCheck.make batch_case_gen ~print:print_batch_case)
    (fun (strings, qs, min_score) ->
      check_fused_equal ~db:(db_of_strings strings)
        ~queries:(queries_of_strings qs)
        (Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score ()))

let qcheck_fused_affine =
  QCheck.Test.make ~count:150
    ~name:"fused streams = single-engine streams (affine)"
    (QCheck.make batch_case_gen ~print:print_batch_case)
    (fun (strings, qs, min_score) ->
      let match3 =
        Scoring.Submat.of_function ~alphabet:alpha ~name:"m3" (fun a b ->
            if a = b then 3 else -3)
      in
      let gap = Scoring.Gap.affine ~open_cost:4 ~extend_cost:1 in
      check_fused_equal ~db:(db_of_strings strings)
        ~queries:(queries_of_strings qs)
        (Oasis.Engine.config ~matrix:match3 ~gap ~min_score ()))

let qcheck_fused_options =
  (* Every pruning-option combination, not just the default: the fused
     cascade collapses the engine's rule arms into one cutoff, and that
     collapse must hold with each rule disabled too. *)
  let all_option_combos =
    [
      Oasis.Engine.default_options;
      { Oasis.Engine.default_options with prune_nonpositive = false };
      { Oasis.Engine.default_options with prune_dominated = false };
      {
        Oasis.Engine.prune_nonpositive = false;
        prune_dominated = false;
        heuristic = Oasis.Heuristic.Safe;
      };
    ]
  in
  QCheck.Test.make ~count:80
    ~name:"fused streams = single-engine streams (each pruning combo)"
    (QCheck.make batch_case_gen ~print:print_batch_case)
    (fun (strings, qs, min_score) ->
      List.for_all
        (fun options ->
          check_fused_equal ~db:(db_of_strings strings)
            ~queries:(queries_of_strings qs)
            (Oasis.Engine.config ~options ~matrix:unit_matrix ~gap:gap1
               ~min_score ()))
        all_option_combos)

let qcheck_fused_pam30 =
  let gen =
    QCheck.Gen.(
      let residues = "ARNDCQEGHILKMFPSTWYVBZX" in
      let residue =
        map (String.get residues) (int_range 0 (String.length residues - 1))
      in
      let protein n m = string_size ~gen:residue (int_range n m) in
      let* strings = list_size (int_range 1 4) (protein 1 30) in
      let* qs = list_size (int_range 1 4) (protein 1 8) in
      let* min_score = int_range 1 25 in
      return (strings, qs, min_score))
  in
  QCheck.Test.make ~count:120
    ~name:"fused streams = single-engine streams (PAM30)"
    (QCheck.make gen ~print:print_batch_case)
    (fun (strings, qs, min_score) ->
      let palpha = Bioseq.Alphabet.protein in
      let db =
        Bioseq.Database.make
          (List.mapi
             (fun i s ->
               Bioseq.Sequence.make ~alphabet:palpha
                 ~id:(Printf.sprintf "p%d" i) s)
             strings)
      in
      let queries =
        Array.of_list
          (List.mapi
             (fun i s ->
               Bioseq.Sequence.make ~alphabet:palpha
                 ~id:(Printf.sprintf "q%d" i) s)
             qs)
      in
      check_fused_equal ~db ~queries
        (Oasis.Engine.config ~matrix:Scoring.Matrices.pam30
           ~gap:(Scoring.Gap.linear 10) ~min_score ()))

let qcheck_fused_budgeted =
  (* Under a deterministic budget, truncation must land at the same hit
     and the per-query [Exhausted] must carry the same remaining bound
     as the single engine's — the virtual replay counts columns and
     expansions exactly as its single-engine twin would. *)
  let gen =
    QCheck.Gen.(
      let* (strings, qs, min_score) = batch_case_gen in
      let* max_columns = int_range 1 60 in
      let* max_expanded = int_range 1 20 in
      let* which = int_range 0 2 in
      return (strings, qs, min_score, max_columns, max_expanded, which))
  in
  QCheck.Test.make ~count:200
    ~name:"fused budget truncation = single-engine truncation"
    (QCheck.make gen
       ~print:(fun (strings, qs, min_score, mc, me, which) ->
         Printf.sprintf "%s cols=%d exp=%d which=%d"
           (print_batch_case (strings, qs, min_score))
           mc me which))
    (fun (strings, qs, min_score, mc, me, which) ->
      let budget =
        match which with
        | 0 -> Oasis.Engine.budget ~max_columns:mc ()
        | 1 -> Oasis.Engine.budget ~max_expanded:me ()
        | _ -> Oasis.Engine.budget ~max_columns:mc ~max_expanded:me ()
      in
      check_fused_equal ~db:(db_of_strings strings)
        ~queries:(queries_of_strings qs)
        (Oasis.Engine.config ~budget ~matrix:unit_matrix ~gap:gap1 ~min_score
           ()))

let qcheck_k1_equals_engine =
  (* A batch of one must reduce to the committed kernel's exact
     behaviour, counters included. *)
  QCheck.Test.make ~count:100 ~name:"fused k=1 = committed engine"
    (QCheck.make batch_case_gen ~print:print_batch_case)
    (fun (strings, qs, min_score) ->
      let db = db_of_strings strings in
      let queries = queries_of_strings [ List.hd qs ] in
      let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score () in
      let tree = Suffix_tree.Ukkonen.build db in
      let e = Oasis.Engine.Mem.create ~source:tree ~db ~query:queries.(0) cfg in
      let eh = Oasis.Engine.Mem.run e in
      let ec = Oasis.Engine.Mem.counters e in
      let k = Oasis.Batch_kernel.Mem.create ~source:tree ~db ~queries cfg in
      Oasis.Batch_kernel.Mem.run k;
      let kc = Oasis.Batch_kernel.Mem.counters k 0 in
      Oasis.Batch_kernel.Mem.hits k 0 = eh
      && Oasis.Batch_kernel.Mem.outcome k 0 = Oasis.Engine.Mem.outcome e
      && kc.Oasis.Engine.columns = ec.Oasis.Engine.columns
      && kc.Oasis.Engine.nodes_expanded = ec.Oasis.Engine.nodes_expanded
      && kc.Oasis.Engine.nodes_enqueued = ec.Oasis.Engine.nodes_enqueued
      && kc.Oasis.Engine.nodes_pruned = ec.Oasis.Engine.nodes_pruned
      && kc.Oasis.Engine.max_queue = ec.Oasis.Engine.max_queue)

let qcheck_batch_run_equivalence =
  (* [Batch.run] must return the same results whatever the fusion width
     and domain count. *)
  QCheck.Test.make ~count:60
    ~name:"Batch.run invariant under batch_size and domains"
    (QCheck.make batch_case_gen ~print:print_batch_case)
    (fun (strings, qs, min_score) ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let queries = Array.to_list (queries_of_strings qs) in
      let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score () in
      let key results =
        List.map
          (fun r ->
            (r.Oasis.Batch.query_index, r.Oasis.Batch.hits, r.Oasis.Batch.outcome))
          results
      in
      let reference =
        key (Oasis.Batch.run ~batch_size:1 ~tree ~db ~queries cfg)
      in
      List.for_all
        (fun (batch_size, domains) ->
          key (Oasis.Batch.run ~batch_size ~domains ~tree ~db ~queries cfg)
          = reference)
        [ (2, 1); (3, 2); (16, 1); (16, 3) ])

(* --- Directed tests --- *)

let fused_physical_savings () =
  (* The point of fusion: on a batch of equal queries the physical
     traversal does the work once, so shared columns stay well below
     the summed virtual columns. *)
  let db =
    db_of_strings [ "AGTACGCCTAGGATTACA"; "TACGTACGTACG"; "CCGTACCAGT" ]
  in
  let queries = queries_of_strings [ "TACG"; "TACG"; "TACG"; "TACG" ] in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:2 () in
  let tree = Suffix_tree.Ukkonen.build db in
  let k = Oasis.Batch_kernel.Mem.create ~source:tree ~db ~queries cfg in
  Oasis.Batch_kernel.Mem.run k;
  let virt = ref 0 in
  for q = 0 to 3 do
    virt := !virt + (Oasis.Batch_kernel.Mem.counters k q).Oasis.Engine.columns
  done;
  let phys = Oasis.Batch_kernel.Mem.physical_columns k in
  Alcotest.(check bool) "did work" true (phys > 0);
  Alcotest.(check int) "identical queries fuse perfectly" (4 * phys) !virt

let fused_instrumentation () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACGTT"; "GGGG" ] in
  let queries = queries_of_strings [ "TACG"; "GGTT"; "AG" ] in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:2 () in
  let tree = Suffix_tree.Ukkonen.build db in
  let k = Oasis.Batch_kernel.Mem.create ~source:tree ~db ~queries cfg in
  let inst = Oasis.Instrument.create () in
  Oasis.Batch_kernel.Mem.set_instrument k (Some inst);
  Oasis.Batch_kernel.Mem.run k;
  let h = inst.Oasis.Instrument.batch_active in
  Alcotest.(check int) "one histogram sample per physical expansion"
    (Oasis.Batch_kernel.Mem.physical_expansions k)
    (Obs.Metric.hist_count h);
  Alcotest.(check bool) "active lanes bounded by k" true
    (Obs.Metric.hist_max h <= 3);
  Alcotest.(check int) "retired counter mirrors accessor"
    (Oasis.Batch_kernel.Mem.retired k)
    (Obs.Metric.count inst.Oasis.Instrument.batch_retired)

let batch_totals_merge () =
  (* [Batch.totals] must use [Counters.merge] semantics: work counters
     sum, gauges max. *)
  let db = db_of_strings [ "AGTACGCCTAG"; "TACGTT" ] in
  let queries =
    Array.to_list (queries_of_strings [ "TACG"; "GGTT"; "AGTA" ])
  in
  let tree = Suffix_tree.Ukkonen.build db in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:2 () in
  let results = Oasis.Batch.run ~batch_size:1 ~tree ~db ~queries cfg in
  let totals = Oasis.Batch.totals results in
  let sum f = List.fold_left (fun a r -> a + f r.Oasis.Batch.counters) 0 results in
  let mx f =
    List.fold_left (fun a r -> max a (f r.Oasis.Batch.counters)) 0 results
  in
  Alcotest.(check int) "columns sum" (sum (fun c -> c.Oasis.Engine.columns))
    totals.Oasis.Engine.columns;
  Alcotest.(check int) "max_queue maxed" (mx (fun c -> c.Oasis.Engine.max_queue))
    totals.Oasis.Engine.max_queue;
  Alcotest.(check int) "pool peak maxed"
    (mx (fun c -> c.Oasis.Engine.pool_peak_bytes))
    totals.Oasis.Engine.pool_peak_bytes

let merge_streams_order () =
  let hit seq score = { Oasis.Hit.seq_index = seq; score; query_stop = 0; target_stop = 0 } in
  let merged =
    Oasis.Batch.merge_streams
      [| [ hit 0 9; hit 1 5 ]; [ hit 2 9; hit 3 7; hit 4 5 ] |]
  in
  Alcotest.(check (list (pair int int)))
    "score-desc, ties to lowest part"
    [ (0, 9); (2, 9); (3, 7); (1, 5); (4, 5) ]
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) merged)

let merge_outcomes_aggregate () =
  let open Oasis.Engine in
  Alcotest.(check bool) "complete"
    (Oasis.Batch.merge_outcomes [| Complete; Complete |] = Complete)
    true;
  Alcotest.(check bool) "exhausted wins with max bound"
    (Oasis.Batch.merge_outcomes
       [| Complete; Exhausted { remaining_bound = 4 }; Exhausted { remaining_bound = 9 } |]
    = Exhausted { remaining_bound = 9 })
    true;
  Alcotest.(check bool) "searching beats complete"
    (Oasis.Batch.merge_outcomes [| Searching; Complete |] = Searching)
    true

let fused_create_validation () =
  let db = db_of_strings [ "ACGT" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let cfg = Oasis.Engine.config ~matrix:unit_matrix ~gap:gap1 ~min_score:1 () in
  Alcotest.check_raises "empty batch"
    (Invalid_argument "Oasis.Batch_kernel.create: no queries") (fun () ->
      ignore (Oasis.Batch_kernel.Mem.create ~source:tree ~db ~queries:[||] cfg));
  Alcotest.check_raises "empty query"
    (Invalid_argument "Oasis.Batch_kernel.create: empty query") (fun () ->
      ignore
        (Oasis.Batch_kernel.Mem.create ~source:tree ~db
           ~queries:(queries_of_strings [ "" ])
           cfg))

let () =
  Alcotest.run "batch_fused"
    [
      ( "identity",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_fused_linear;
            qcheck_fused_affine;
            qcheck_fused_options;
            qcheck_fused_pam30;
            qcheck_fused_budgeted;
            qcheck_k1_equals_engine;
            qcheck_batch_run_equivalence;
          ] );
      ( "fused",
        [
          Alcotest.test_case "physical savings" `Quick fused_physical_savings;
          Alcotest.test_case "instrumentation" `Quick fused_instrumentation;
          Alcotest.test_case "create validation" `Quick fused_create_validation;
        ] );
      ( "batch",
        [
          Alcotest.test_case "totals merge" `Quick batch_totals_merge;
          Alcotest.test_case "merge streams" `Quick merge_streams_order;
          Alcotest.test_case "merge outcomes" `Quick merge_outcomes_aggregate;
        ] );
    ]
