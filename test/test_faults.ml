(* End-to-end robustness: an OASIS disk search running over a
   fault-injected device, with buffer-pool retries absorbing the
   transient failures, must return exactly the Smith-Waterman oracle's
   results — fault tolerance may cost time, never accuracy. *)

let alpha = Bioseq.Alphabet.dna
let matrix = Scoring.Matrices.dna_unit
let gap = Scoring.Gap.linear 1

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let sw_pairs db q min_score =
  let hits, _ = Align.Smith_waterman.search ~matrix ~gap ~query:q ~db ~min_score in
  List.sort compare
    (List.map (fun h -> Align.Smith_waterman.(h.seq_index, h.score)) hits)

let hit_pairs hits =
  List.sort compare
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)

(* Serialize [db]'s suffix tree to clean in-memory devices, then wrap
   each component in a fault injector and open the index through a
   retrying pool. [warmup_ops] covers the footer reads [open_] performs
   outside the pool (at most two raw preads per device); everything the
   search itself touches goes through the pool and is retried. *)
let faulty_engine ?layout ?(capacity = 8) db query min_score plan =
  let symbols = Storage.Device.in_memory ()
  and internal = Storage.Device.in_memory ()
  and leaves = Storage.Device.in_memory () in
  let tree = Suffix_tree.Ukkonen.build db in
  Storage.Disk_tree.write ?layout tree ~symbols ~internal ~leaves;
  let symbols, hs = Storage.Faulty.wrap plan symbols in
  let internal, hi = Storage.Faulty.wrap plan internal in
  let leaves, hl = Storage.Faulty.wrap plan leaves in
  let pool = Storage.Buffer_pool.create ~block_size:32 ~capacity in
  Storage.Buffer_pool.set_retry pool
    { Storage.Buffer_pool.attempts = 4; backoff = 0.; multiplier = 2. };
  let dt =
    Storage.Disk_tree.open_ ~verify:Storage.Disk_tree.Footer ~alphabet:alpha
      ~pool ~symbols ~internal ~leaves ()
  in
  let cfg = Oasis.Engine.config ~matrix ~gap ~min_score () in
  (Oasis.Engine.Disk.create ~source:dt ~db ~query cfg, [ hs; hi; hl ], pool)

(* [warmup_ops] covers open_'s raw (unretried) reads: the footer
   verification preads plus the terminator scan. The pinned-page reader
   needs very few device reads per search, so the warmup is tight and
   the search runs cold (pool dropped) to leave the fault machinery
   something to bite on. *)
let transient_plan seed =
  Storage.Faulty.plan ~seed ~warmup_ops:4 ~transient_read_prob:0.4
    ~max_consecutive_transient:2 ()

let test_search_through_faults () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA" ] in
  let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" "TACG" in
  let engine, handles, pool = faulty_engine db q 2 (transient_plan 11) in
  Storage.Buffer_pool.drop_all pool;
  let hits = Oasis.Engine.Disk.run engine in
  Alcotest.(check (list (pair int int)))
    "hits equal the oracle" (sw_pairs db q 2) (hit_pairs hits);
  let injected =
    List.fold_left
      (fun acc h -> acc + (Storage.Faulty.stats h).Storage.Faulty.transient_failures)
      0 handles
  in
  Alcotest.(check bool) "faults actually fired" true (injected > 0)

let test_dead_device_surfaces () =
  (* Once the device dies permanently, the search fails with a typed,
     non-transient error rather than a crash or a silent wrong answer. *)
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA" ] in
  let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" "TACG" in
  (* The budget must outlast open_ (3 raw reads per device) but not the
     cold search: the pinned-page reader finishes this workload in ~7
     internal-component reads, so anything much higher never fires. *)
  let plan = Storage.Faulty.plan ~fail_after_ops:4 () in
  match faulty_engine db q 2 plan with
  | exception Storage.Io_error info ->
    (* The budget may already die during open_'s footer reads. *)
    Alcotest.(check bool) "permanent" false info.Storage.Io_error.transient
  | engine, _, pool -> (
    (* Evict everything the open verification cached: the search must go
       back to the (now dead) device rather than ride the pool. *)
    Storage.Buffer_pool.drop_all pool;
    match Oasis.Engine.Disk.run engine with
    | exception Storage.Io_error info ->
      Alcotest.(check bool) "permanent" false info.Storage.Io_error.transient
    | _ -> Alcotest.fail "search over a dead device succeeded")

let qcheck_faulty_equals_oracle =
  let gen =
    QCheck.Gen.(
      let dna n = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) n in
      quad
        (list_size (int_range 1 5) (dna (int_range 1 25)))
        (dna (int_range 1 8))
        (int_range 1 6) (int_range 0 1000))
  in
  let print (ss, q, ms, seed) =
    Printf.sprintf "db=%s q=%s min_score=%d seed=%d" (String.concat "/" ss) q
      ms seed
  in
  QCheck.Test.make ~count:150
    ~name:"fault-injected disk search equals Smith-Waterman"
    (QCheck.make gen ~print)
    (fun (strings, query, min_score, seed) ->
      QCheck.assume (query <> "");
      let db = db_of_strings strings in
      let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" query in
      let engine, _, _ = faulty_engine db q min_score (transient_plan seed) in
      hit_pairs (Oasis.Engine.Disk.run engine) = sw_pairs db q min_score)

(* The strongest equivalence the engine offers: Mem and Disk produce
   {e bit-identical ordered hit streams} (not just equal sets), for both
   leaf layouts, even when the disk engine runs through a two-frame pool
   (the minimum that supports one pinned page plus one working frame)
   over fault-injected devices. This pins down the canonical sibling
   order end to end: any divergence in child or position iteration shows
   up as a reordered stream under score ties. *)
let qcheck_mem_disk_streams_identical =
  let gen =
    QCheck.Gen.(
      let dna n = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) n in
      quad
        (list_size (int_range 1 6) (dna (int_range 1 20)))
        (dna (int_range 1 8))
        (int_range 1 6) (int_range 0 1000))
  in
  let print (ss, q, ms, seed) =
    Printf.sprintf "db=%s q=%s min_score=%d seed=%d" (String.concat "/" ss) q
      ms seed
  in
  let stream_of hits =
    List.map
      (fun h ->
        Oasis.Hit.(h.seq_index, h.score, h.query_stop, h.target_stop))
      hits
  in
  QCheck.Test.make ~count:100
    ~name:"Mem and Disk hit streams bit-identical (2-frame pool, faults)"
    (QCheck.make gen ~print)
    (fun (strings, query, min_score, seed) ->
      QCheck.assume (query <> "");
      let db = db_of_strings strings in
      let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" query in
      let tree = Suffix_tree.Ukkonen.build db in
      let cfg = Oasis.Engine.config ~matrix ~gap ~min_score () in
      let mem_stream =
        stream_of
          (Oasis.Engine.Mem.run
             (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg))
      in
      List.for_all
        (fun layout ->
          let engine, _, _ =
            faulty_engine ~layout ~capacity:2 db q min_score
              (transient_plan seed)
          in
          stream_of (Oasis.Engine.Disk.run engine) = mem_stream)
        [ Storage.Disk_tree.Position_indexed; Storage.Disk_tree.Clustered ])

(* --- Simulated power loss (crash combinators) --- *)

let is_power_loss = function
  | Storage.Io_error info ->
    (not info.Storage.Io_error.transient)
    && info.Storage.Io_error.detail = "simulated power loss"
  | _ -> false

let test_crash_after_writes () =
  let store = Storage.Vfs.store () in
  let crash = Storage.Faulty.crash_after ~writes:3 in
  let fs = Storage.Vfs.with_crash crash (Storage.Vfs.of_store store) in
  (* Boundary 1: create. Boundaries 2 and 3: two appends. *)
  let d = Storage.Vfs.create fs "a.dat" in
  Storage.Device.append d (Bytes.of_string "one");
  Storage.Device.append d (Bytes.of_string "two");
  Alcotest.(check bool) "alive before the budget" false
    (Storage.Faulty.crashed crash);
  (match Storage.Device.append d (Bytes.of_string "three") with
  | exception e when is_power_loss e -> ()
  | () -> Alcotest.fail "append past the budget succeeded");
  Alcotest.(check bool) "machine dead" true (Storage.Faulty.crashed crash);
  (* Everything raises now, reads included. *)
  (match Storage.Device.pread d ~off:0 ~buf:(Bytes.create 1) with
  | exception e when is_power_loss e -> ()
  | () -> Alcotest.fail "read on a dead machine succeeded");
  (match Storage.Vfs.files fs with
  | exception e when is_power_loss e -> ()
  | _ -> Alcotest.fail "listing on a dead machine succeeded");
  (* Completed writes survive the crash: a fresh view of the store
     models the post-reboot filesystem. *)
  let fs' = Storage.Vfs.of_store store in
  let d' = Storage.Vfs.open_ro fs' "a.dat" in
  let buf = Bytes.create (Storage.Device.length d') in
  Storage.Device.pread d' ~off:0 ~buf;
  Alcotest.(check string) "pre-crash writes survived" "onetwo"
    (Bytes.to_string buf)

let test_crash_during_rename () =
  let store = Storage.Vfs.store () in
  let plain = Storage.Vfs.of_store store in
  (* Seed two files without any crash armed. *)
  let d = Storage.Vfs.create plain "cat.0" in
  Storage.Device.append d (Bytes.of_string "v0");
  let d = Storage.Vfs.create plain "cat.tmp" in
  Storage.Device.append d (Bytes.of_string "v1");
  let crash = Storage.Faulty.crash_during_rename ~renames:0 in
  let fs = Storage.Vfs.with_crash crash plain in
  (match Storage.Vfs.rename fs ~src:"cat.tmp" ~dst:"cat.0" with
  | exception e when is_power_loss e -> ()
  | () -> Alcotest.fail "rename past the budget succeeded");
  (* The rename must NOT have taken effect: the old catalog is live. *)
  let fs' = Storage.Vfs.of_store store in
  Alcotest.(check bool) "tmp still present" true
    (Storage.Vfs.exists fs' "cat.tmp");
  let d' = Storage.Vfs.open_ro fs' "cat.0" in
  let buf = Bytes.create (Storage.Device.length d') in
  Storage.Device.pread d' ~off:0 ~buf;
  Alcotest.(check string) "destination untouched" "v0" (Bytes.to_string buf)

let test_crash_counts_boundaries () =
  (* no_crash counts the workload's boundaries — the matrix width. *)
  let crash = Storage.Faulty.no_crash () in
  let fs =
    Storage.Vfs.with_crash crash (Storage.Vfs.of_store (Storage.Vfs.store ()))
  in
  let d = Storage.Vfs.create fs "x" in
  Storage.Device.append d (Bytes.of_string "a");
  Storage.Device.sync d;
  (* sync is a barrier, not a boundary *)
  Storage.Device.append d (Bytes.of_string "b");
  Storage.Vfs.rename fs ~src:"x" ~dst:"y";
  Storage.Vfs.remove fs "y";
  Alcotest.(check int) "write boundaries" 5
    (Storage.Faulty.crash_write_count crash);
  Alcotest.(check int) "rename boundaries" 1
    (Storage.Faulty.crash_rename_count crash);
  Alcotest.(check bool) "still alive" false (Storage.Faulty.crashed crash)

(* Budget exhaustion under sharding: the per-shard budget split must
   exhaust the aggregate search the way a single engine exhausts —
   ordered stream, only oracle hits reported, every suppressed hit
   covered by the aggregate remaining bound — never wedge the merge or
   report fabricated results. *)

let sharded_engine ~shards ~budget ~min_score db q =
  Oasis.Parallel.Mem.create_sharded ~shards ~db ~query:q
    (Oasis.Engine.config ~budget ~matrix ~gap ~min_score ())

let check_sharded_degradation ~name ~shards ~budget db q min_score =
  let t = sharded_engine ~shards ~budget ~min_score db q in
  let hits = Oasis.Parallel.Mem.run t in
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      a.Oasis.Hit.score >= b.Oasis.Hit.score && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) (name ^ ": stream non-increasing") true (ordered hits);
  let got = hit_pairs hits in
  let oracle = sw_pairs db q min_score in
  match Oasis.Parallel.Mem.outcome t with
  | Oasis.Engine.Searching -> Alcotest.failf "%s: Searching after drain" name
  | Oasis.Engine.Complete ->
    Alcotest.(check (list (pair int int)))
      (name ^ ": complete = oracle")
      oracle got
  | Oasis.Engine.Exhausted { remaining_bound } ->
    Alcotest.(check bool)
      (name ^ ": bound covers viable work")
      true
      (remaining_bound >= min_score);
    List.iter
      (fun p ->
        if not (List.mem p oracle) then
          Alcotest.failf "%s: reported non-oracle hit (%d, %d)" name (fst p)
            (snd p))
      got;
    List.iter
      (fun (s, score) ->
        if (not (List.mem (s, score) got)) && score > remaining_bound then
          Alcotest.failf "%s: suppressed hit (%d, %d) above bound %d" name s
            score remaining_bound)
      oracle

let test_sharded_budget_exhaustion () =
  let db =
    db_of_strings
      [
        "AGTACGCCTAG";
        "TACG";
        "CCCCTACGCCCC";
        "GATTACA";
        "ACGTACGTAC";
        "TTACGTTACG";
      ]
  in
  let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" "TACG" in
  (* A tiny aggregate budget must exhaust — never wedge the merge. *)
  let t =
    sharded_engine ~shards:2
      ~budget:(Oasis.Engine.budget ~max_columns:2 ())
      ~min_score:1 db q
  in
  ignore (Oasis.Parallel.Mem.run t);
  (match Oasis.Parallel.Mem.outcome t with
  | Oasis.Engine.Exhausted { remaining_bound } ->
    Alcotest.(check bool) "bound positive" true (remaining_bound >= 1)
  | _ -> Alcotest.fail "tiny sharded budget did not exhaust");
  List.iter
    (fun (shards, max_columns) ->
      check_sharded_degradation
        ~name:(Printf.sprintf "K=%d max_columns=%d" shards max_columns)
        ~shards
        ~budget:(Oasis.Engine.budget ~max_columns ())
        db q 1)
    [ (2, 2); (2, 16); (3, 9); (4, 40) ];
  (* A generous budget restores the exact oracle result. *)
  check_sharded_degradation ~name:"K=4 ample" ~shards:4
    ~budget:(Oasis.Engine.budget ~max_columns:1_000_000 ())
    db q 1

let () =
  Alcotest.run "faults"
    [
      ( "engine",
        [
          Alcotest.test_case "search through transient faults" `Quick
            test_search_through_faults;
          Alcotest.test_case "permanent failure surfaces cleanly" `Quick
            test_dead_device_surfaces;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash_after kills at the boundary" `Quick
            test_crash_after_writes;
          Alcotest.test_case "crash_during_rename leaves dst untouched" `Quick
            test_crash_during_rename;
          Alcotest.test_case "boundary counting" `Quick
            test_crash_counts_boundaries;
        ] );
      ( "budget",
        [
          Alcotest.test_case "exhaustion under sharding degrades gracefully"
            `Quick test_sharded_budget_exhaustion;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_faulty_equals_oracle;
          QCheck_alcotest.to_alcotest qcheck_mem_disk_streams_identical;
        ] );
    ]
