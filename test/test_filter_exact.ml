(* Filter-adversarial exactness battery for the q-gram tier (ISSUE 10).

   The q-gram filter is a pure work-saver: armed with any profile of
   the searched database image, every observable result — hit stream,
   outcome, reported order — must stay bit-identical to the unfiltered
   engine, across tree sources, gap models, matrices and budgets; only
   the work counters may shrink. These properties drain filter-on and
   filter-off engines on random workloads (including queries shorter
   than q, where the tier must disarm itself) and compare full records
   in stream order. Run under [OASIS_CHECKED_KERNEL=1], every settle
   additionally replays its whole subtree with an independent plain DP
   (CI does). *)

let show_hits hits =
  String.concat ";"
    (List.map
       (fun h ->
         Printf.sprintf "%d:%d@%d,%d" h.Oasis.Hit.seq_index h.Oasis.Hit.score
           h.Oasis.Hit.query_stop h.Oasis.Hit.target_stop)
       hits)

let show_outcome = function
  | Oasis.Engine.Searching -> "searching"
  | Oasis.Engine.Complete -> "complete"
  | Oasis.Engine.Exhausted { remaining_bound } ->
    Printf.sprintf "exhausted(%d)" remaining_bound

let db_of_strings ~alphabet strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet ~id:(Printf.sprintf "s%d" i) s)
       strings)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

(* One workload, filter-on vs filter-off, across Mem / Packed / Disk.
   Filter-on Packed must also match filter-on Mem on the full counter
   and filter-stats records (the profile is source-agnostic), and an
   unbudgeted filter-on run must cost at most the unfiltered column
   count. [cfg] is unbudgeted; when [max_columns] is given, a budgeted
   pair is additionally drained and held to the prefix laws — the
   filter only shrinks the work a budget meters, so the budgeted
   unfiltered stream is a prefix of the budgeted filtered one, which is
   a prefix of the full stream (outcomes may legitimately differ: the
   filtered run can complete inside a budget that exhausts the
   unfiltered one). *)
let check_filter_identity ~db ~q ~prof cfg ~max_columns =
  let tree = Suffix_tree.Ukkonen.build db in
  let profile = prof ~tree in
  let fail tag exp_h exp_o got_h got_o =
    if got_h <> exp_h then
      QCheck.Test.fail_reportf "%s hits: got [%s] expected [%s]" tag
        (show_hits got_h) (show_hits exp_h)
    else
      QCheck.Test.fail_reportf "%s outcome: got %s expected %s" tag
        (show_outcome got_o) (show_outcome exp_o)
  in
  (* Mem: off is the specification. *)
  let eoff = Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg in
  let hits_off = Oasis.Engine.Mem.run eoff in
  let out_off = Oasis.Engine.Mem.outcome eoff in
  let cols_off = (Oasis.Engine.Mem.counters eoff).Oasis.Engine.columns in
  let eon =
    Oasis.Engine.Mem.create ~filter:profile ~source:tree ~db ~query:q cfg
  in
  let hits_on = Oasis.Engine.Mem.run eon in
  let out_on = Oasis.Engine.Mem.outcome eon in
  if hits_on <> hits_off || out_on <> out_off then
    fail "mem on-vs-off" hits_off out_off hits_on out_on;
  let mc = Oasis.Engine.Mem.counters eon in
  if mc.Oasis.Engine.columns > cols_off then
    QCheck.Test.fail_reportf "filter-on columns %d > filter-off %d"
      mc.Oasis.Engine.columns cols_off;
  let mstats = Oasis.Engine.Mem.filter_stats eon in
  (* Packed, filter-on: same stream, same counters, same settles. *)
  let packed = Suffix_tree.Packed.of_tree tree in
  let ep =
    Oasis.Engine.Packed.create ~filter:profile ~source:packed ~db ~query:q cfg
  in
  let ph = Oasis.Engine.Packed.run ep in
  let po = Oasis.Engine.Packed.outcome ep in
  if ph <> hits_off || po <> out_off then fail "packed on" hits_off out_off ph po;
  let pc = Oasis.Engine.Packed.counters ep in
  if
    pc.Oasis.Engine.columns <> mc.Oasis.Engine.columns
    || pc.Oasis.Engine.nodes_expanded <> mc.Oasis.Engine.nodes_expanded
    || pc.Oasis.Engine.nodes_pruned <> mc.Oasis.Engine.nodes_pruned
  then
    QCheck.Test.fail_reportf
      "packed filter-on counters diverge from mem: cols %d/%d exp %d/%d \
       pruned %d/%d"
      pc.Oasis.Engine.columns mc.Oasis.Engine.columns
      pc.Oasis.Engine.nodes_expanded mc.Oasis.Engine.nodes_expanded
      pc.Oasis.Engine.nodes_pruned mc.Oasis.Engine.nodes_pruned;
  if Oasis.Engine.Packed.filter_stats ep <> mstats then
    QCheck.Test.fail_reportf "packed filter_stats diverge from mem";
  (* Disk, filter-on vs filter-off over the same paged tree — the
     profile was built from the in-memory tree, so this also pins
     source-agnosticism. *)
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:16 ~capacity:4 tree in
  let doff = Oasis.Engine.Disk.create ~source:dt ~db ~query:q cfg in
  let dh_off = Oasis.Engine.Disk.run doff in
  let do_off = Oasis.Engine.Disk.outcome doff in
  let don =
    Oasis.Engine.Disk.create ~filter:profile ~source:dt ~db ~query:q cfg
  in
  let dh_on = Oasis.Engine.Disk.run don in
  let do_on = Oasis.Engine.Disk.outcome don in
  if dh_on <> dh_off || do_on <> do_off then
    fail "disk on-vs-off" dh_off do_off dh_on do_on;
  (* Fused batch, filter-on, two lanes of the same query: every lane's
     stream, outcome, and virtual counters must equal the filtered
     single engine's (the tier settles per lane with the engine's own
     one-logical-column charge). *)
  let bk =
    Oasis.Batch_kernel.Mem.create ~filter:profile ~source:tree ~db
      ~queries:[| q; q |] cfg
  in
  Oasis.Batch_kernel.Mem.run bk;
  for lane = 0 to 1 do
    let bh = Oasis.Batch_kernel.Mem.hits bk lane in
    let bo = Oasis.Batch_kernel.Mem.outcome bk lane in
    if bh <> hits_off || bo <> out_off then
      fail (Printf.sprintf "batch lane %d on" lane) hits_off out_off bh bo;
    let bc = Oasis.Batch_kernel.Mem.counters bk lane in
    if
      bc.Oasis.Engine.columns <> mc.Oasis.Engine.columns
      || bc.Oasis.Engine.nodes_pruned <> mc.Oasis.Engine.nodes_pruned
      || bc.Oasis.Engine.nodes_enqueued <> mc.Oasis.Engine.nodes_enqueued
    then
      QCheck.Test.fail_reportf
        "batch lane %d filter-on counters diverge from filtered engine: cols \
         %d/%d pruned %d/%d enq %d/%d"
        lane bc.Oasis.Engine.columns mc.Oasis.Engine.columns
        bc.Oasis.Engine.nodes_pruned mc.Oasis.Engine.nodes_pruned
        bc.Oasis.Engine.nodes_enqueued mc.Oasis.Engine.nodes_enqueued
  done;
  (* Multi-part merged stream (the sharded release rule, sequential):
     profiles arm each part's tier and cap its initial merge bound —
     the merged stream must stay bit-identical to the profile-less
     run. *)
  (if Bioseq.Database.num_sequences db >= 2 then begin
     let pieces = Oasis.Shard.plan ~shards:2 db in
     let ptrees = Oasis.Shard.build_trees pieces in
     let parts =
       Array.map2
         (fun tree (piece : Oasis.Shard.piece) ->
           Oasis.Multi.Mem
             { tree; db = piece.Oasis.Shard.db; first_seq = piece.first_seq })
         ptrees pieces
     in
     let profiles =
       Array.map2
         (fun tree (piece : Oasis.Shard.piece) ->
           Some
             (Quasar.Profile.build ~db:piece.Oasis.Shard.db ~tree
                ~q:(Quasar.Profile.q profile)
                ~cutoff:(Quasar.Profile.cutoff profile)
                ~horizon:(Quasar.Profile.horizon profile)
                ()))
         ptrees pieces
     in
     let m_off = Oasis.Multi.create ~parts ~query:q cfg in
     let mh_off = Oasis.Multi.run m_off in
     let mo_off = Oasis.Multi.outcome m_off in
     let m_on = Oasis.Multi.create ~profiles ~parts ~query:q cfg in
     let mh_on = Oasis.Multi.run m_on in
     let mo_on = Oasis.Multi.outcome m_on in
     if mh_on <> mh_off || mo_on <> mo_off then
       fail "multi on-vs-off" mh_off mo_off mh_on mo_on
   end);
  (* Budget prefix laws. *)
  (match max_columns with
  | None -> ()
  | Some cols ->
    let bcfg =
      Oasis.Engine.config ~matrix:cfg.Oasis.Engine.matrix
        ~gap:cfg.Oasis.Engine.gap ~min_score:cfg.Oasis.Engine.min_score
        ~budget:(Oasis.Engine.budget ~max_columns:cols ())
        ()
    in
    let boff = Oasis.Engine.Mem.create ~source:tree ~db ~query:q bcfg in
    let bh_off = Oasis.Engine.Mem.run boff in
    let bon =
      Oasis.Engine.Mem.create ~filter:profile ~source:tree ~db ~query:q bcfg
    in
    let bh_on = Oasis.Engine.Mem.run bon in
    if not (is_prefix bh_off bh_on) then
      QCheck.Test.fail_reportf
        "budgeted unfiltered [%s] not a prefix of budgeted filtered [%s]"
        (show_hits bh_off) (show_hits bh_on);
    if not (is_prefix bh_on hits_off) then
      QCheck.Test.fail_reportf
        "budgeted filtered [%s] not a prefix of the full stream [%s]"
        (show_hits bh_on) (show_hits hits_off));
  true

let case_gen residues =
  QCheck.Gen.(
    let sym = map (String.get residues) (int_range 0 (String.length residues - 1)) in
    let text n m = string_size ~gen:sym (int_range n m) in
    let* strings = list_size (int_range 1 5) (text 1 28) in
    let* qtext = text 1 10 in
    let* min_score = int_range 1 12 in
    let* pq = int_range 2 3 in
    let* cutoff = int_range 0 8 in
    let* horizon = int_range 8 64 in
    let* max_columns = opt (int_range 1 60) in
    return (strings, qtext, min_score, pq, cutoff, horizon, max_columns))

let print_case (strings, qtext, min_score, pq, cutoff, horizon, max_columns) =
  Printf.sprintf "db=%s q=%s min=%d pq=%d cut=%d hor=%d%s"
    (String.concat "/" strings)
    qtext min_score pq cutoff horizon
    (match max_columns with None -> "" | Some v -> Printf.sprintf " cols=%d" v)

let run_case ~alphabet ~matrix ~gap
    (strings, qtext, min_score, pq, cutoff, horizon, max_columns) =
  let db = db_of_strings ~alphabet strings in
  let q = Bioseq.Sequence.make ~alphabet ~id:"q" qtext in
  check_filter_identity ~db ~q
    ~prof:(fun ~tree ->
      Quasar.Profile.build ~db ~tree ~q:pq ~cutoff ~horizon ())
    (Oasis.Engine.config ~matrix ~gap ~min_score ())
    ~max_columns

let qcheck_identity_linear =
  QCheck.Test.make ~count:200
    ~name:"filter on = off across mem/packed/disk (DNA, linear, budgets)"
    (QCheck.make (case_gen "ACGT") ~print:print_case)
    (run_case ~alphabet:Bioseq.Alphabet.dna ~matrix:Scoring.Matrices.dna_unit
       ~gap:(Scoring.Gap.linear 1))

let qcheck_identity_affine =
  QCheck.Test.make ~count:150
    ~name:"filter on = off across mem/packed/disk (DNA, affine, budgets)"
    (QCheck.make (case_gen "ACGT") ~print:print_case)
    (run_case ~alphabet:Bioseq.Alphabet.dna ~matrix:Scoring.Matrices.dna_unit
       ~gap:(Scoring.Gap.affine ~open_cost:2 ~extend_cost:1))

let qcheck_identity_pam30 =
  QCheck.Test.make ~count:150
    ~name:"filter on = off across mem/packed/disk (PAM30, budgets)"
    (QCheck.make (case_gen "ARNDCQEGHILKMFPSTWYV") ~print:print_case)
    (run_case ~alphabet:Bioseq.Alphabet.protein
       ~matrix:Scoring.Matrices.pam30
       ~gap:(Scoring.Gap.linear 10))

(* Multicore sharded merge (real domains, K = 2): per-shard profiles
   arm the engines and cap published bounds — admissible tightenings
   only, so the merged stream must be bit-identical with and without
   them. A small count: each case spins up worker domains twice. *)
let qcheck_parallel_sharded =
  QCheck.Test.make ~count:30
    ~name:"sharded K=2 multicore merge: profiles preserve the stream"
    (QCheck.make (case_gen "ACGT") ~print:print_case)
    (fun (strings, qtext, min_score, pq, cutoff, horizon, _) ->
      let alphabet = Bioseq.Alphabet.dna in
      let db = db_of_strings ~alphabet strings in
      let q = Bioseq.Sequence.make ~alphabet ~id:"q" qtext in
      let cfg =
        Oasis.Engine.config ~matrix:Scoring.Matrices.dna_unit
          ~gap:(Scoring.Gap.linear 1) ~min_score ()
      in
      let pieces = Oasis.Shard.plan ~shards:2 db in
      let trees = Oasis.Shard.build_trees pieces in
      let shards =
        Array.map2
          (fun source piece -> { Oasis.Parallel.Mem.source; piece })
          trees pieces
      in
      let profiles =
        Array.map2
          (fun tree (piece : Oasis.Shard.piece) ->
            Some
              (Quasar.Profile.build ~db:piece.Oasis.Shard.db ~tree ~q:pq
                 ~cutoff ~horizon ()))
          trees pieces
      in
      let p_off = Oasis.Parallel.Mem.create ~shards ~query:q cfg in
      let h_off = Oasis.Parallel.Mem.run p_off in
      let p_on = Oasis.Parallel.Mem.create ~profiles ~shards ~query:q cfg in
      let h_on = Oasis.Parallel.Mem.run p_on in
      if h_on <> h_off then
        QCheck.Test.fail_reportf "sharded on [%s] <> off [%s]"
          (show_hits h_on) (show_hits h_off);
      true)

(* Root completeness: every q-gram the database contains (not crossing
   a terminator) is in the root entry's set — the property that makes
   {!Oasis.Qgram.shard_cap} admissible at any horizon. *)
let qcheck_root_complete =
  let gen =
    QCheck.Gen.(
      let sym = oneofl [ 'A'; 'C'; 'G'; 'T' ] in
      let* strings =
        list_size (int_range 1 6) (string_size ~gen:sym (int_range 1 40))
      in
      let* pq = int_range 2 3 in
      let* horizon = int_range 4 16 in
      return (strings, pq, horizon))
  in
  QCheck.Test.make ~count:200 ~name:"profile root set contains every db gram"
    (QCheck.make gen ~print:(fun (s, pq, hor) ->
         Printf.sprintf "db=%s pq=%d hor=%d" (String.concat "/" s) pq hor))
    (fun (strings, pq, horizon) ->
      let db = db_of_strings ~alphabet:Bioseq.Alphabet.dna strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let p = Quasar.Profile.build ~db ~tree ~q:pq ~cutoff:2 ~horizon () in
      let root = Quasar.Profile.root p in
      List.iteri
        (fun si s ->
          let n = String.length s in
          let codes =
            Array.init n (fun i ->
                Bioseq.Alphabet.of_char_exn Bioseq.Alphabet.dna s.[i])
          in
          for off = 0 to n - pq do
            let gram = Quasar.Profile.gram_of_codes p codes off in
            if gram >= 0 && not (Quasar.Profile.has_gram p root gram) then
              QCheck.Test.fail_reportf "seq %d offset %d: gram missing" si off
          done)
        strings;
      true)

(* Serialization: exact round-trip, byte for byte. *)
let qcheck_profile_roundtrip =
  let gen =
    QCheck.Gen.(
      let sym = oneofl [ 'A'; 'C'; 'G'; 'T' ] in
      let* strings =
        list_size (int_range 1 5) (string_size ~gen:sym (int_range 1 30))
      in
      let* pq = int_range 1 3 in
      let* cutoff = int_range 0 10 in
      let* horizon = int_range 4 32 in
      return (strings, pq, cutoff, horizon))
  in
  QCheck.Test.make ~count:200 ~name:"profile to_bytes/of_bytes round-trips"
    (QCheck.make gen ~print:(fun (s, pq, c, h) ->
         Printf.sprintf "db=%s pq=%d cut=%d hor=%d" (String.concat "/" s) pq c
           h))
    (fun (strings, pq, cutoff, horizon) ->
      let db = db_of_strings ~alphabet:Bioseq.Alphabet.dna strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let p =
        Quasar.Profile.build ~db ~tree ~q:(max pq (min pq 3)) ~cutoff ~horizon
          ()
      in
      let b = Quasar.Profile.to_bytes p in
      let p' = Quasar.Profile.of_bytes b in
      if Quasar.Profile.to_bytes p' <> b then
        QCheck.Test.fail_reportf "re-serialization differs";
      if
        Quasar.Profile.num_nodes p' <> Quasar.Profile.num_nodes p
        || Quasar.Profile.q p' <> Quasar.Profile.q p
        || Quasar.Profile.cutoff p' <> Quasar.Profile.cutoff p
        || Quasar.Profile.horizon p' <> Quasar.Profile.horizon p
      then QCheck.Test.fail_reportf "round-trip header differs";
      true)

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

(* Cutoff seeding (DESIGN.md §2k), the monotone step in its purest
   form: for EVERY prefix length k of the unseeded stream, re-running
   with min_score raised to the k-th hit's score must reproduce that
   prefix bit-identically. No heuristic is involved — the strongest
   seed any first pass could produce is the true k-th best score
   itself — so a failure here indicts the engine's claim that raising
   the cutoff only removes hits strictly below it. *)
let qcheck_seed_monotone =
  let gen =
    QCheck.Gen.(
      let sym = oneofl [ 'A'; 'C'; 'G'; 'T' ] in
      let text n m = string_size ~gen:sym (int_range n m) in
      let* strings = list_size (int_range 1 5) (text 1 24) in
      let* qtext = text 1 10 in
      let* min_score = int_range 1 8 in
      return (strings, qtext, min_score))
  in
  QCheck.Test.make ~count:150
    ~name:"seeding: min_score raised to the k-th score keeps the first k hits"
    (QCheck.make gen ~print:(fun (s, q, ms) ->
         Printf.sprintf "db=%s q=%s min=%d" (String.concat "/" s) q ms))
    (fun (strings, qtext, min_score) ->
      let alphabet = Bioseq.Alphabet.dna in
      let db = db_of_strings ~alphabet strings in
      let q = Bioseq.Sequence.make ~alphabet ~id:"q" qtext in
      let cfg =
        Oasis.Engine.config ~matrix:Scoring.Matrices.dna_unit
          ~gap:(Scoring.Gap.linear 1) ~min_score ()
      in
      let tree = Suffix_tree.Ukkonen.build db in
      let run cfg =
        Oasis.Engine.Mem.run
          (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg)
      in
      let hits = run cfg in
      List.iteri
        (fun i h ->
          let k = i + 1 in
          let seeded =
            { cfg with Oasis.Engine.min_score = max min_score h.Oasis.Hit.score }
          in
          let hits' = run seeded in
          if take k hits' <> take k hits then
            QCheck.Test.fail_reportf
              "k=%d cutoff=%d: seeded prefix [%s] <> unseeded prefix [%s]" k
              seeded.Oasis.Engine.min_score
              (show_hits (take k hits'))
              (show_hits (take k hits)))
        hits;
      true)

(* The real first pass: a BLAST run's k-th best hit score seeds the
   cutoff (Blast.Seed.min_score), and the seeded engine's first k hits
   must equal the unseeded engine's — BLAST scores are scores of real
   alignments, hence lower bounds, hence the seed can never climb past
   the true k-th best. Word size 4 keeps the heuristic productive on
   short random DNA so the seed actually raises the cutoff. *)
let qcheck_seed_blast =
  let gen =
    QCheck.Gen.(
      let sym = oneofl [ 'A'; 'C'; 'G'; 'T' ] in
      let text n m = string_size ~gen:sym (int_range n m) in
      let* strings = list_size (int_range 1 6) (text 4 40) in
      let* qtext = text 4 12 in
      let* min_score = int_range 1 6 in
      let* k = int_range 1 5 in
      return (strings, qtext, min_score, k))
  in
  QCheck.Test.make ~count:150
    ~name:"seeding: BLAST-seeded top-k stream = unseeded top-k stream"
    (QCheck.make gen ~print:(fun (s, q, ms, k) ->
         Printf.sprintf "db=%s q=%s min=%d k=%d" (String.concat "/" s) q ms k))
    (fun (strings, qtext, min_score, k) ->
      let alphabet = Bioseq.Alphabet.dna in
      let db = db_of_strings ~alphabet strings in
      let q = Bioseq.Sequence.make ~alphabet ~id:"q" qtext in
      let matrix = Scoring.Matrices.dna_unit in
      let gap = Scoring.Gap.linear 1 in
      let cfg = Oasis.Engine.config ~matrix ~gap ~min_score () in
      let tree = Suffix_tree.Ukkonen.build db in
      let run cfg =
        Oasis.Engine.Mem.run
          (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg)
      in
      match
        Scoring.Karlin.estimate ~matrix
          ~freqs:(Scoring.Background.of_database db)
          ()
      with
      | exception Scoring.Karlin.Unsupported_matrix _ -> true
      | params ->
        let bcfg = Blast.Search.default_dna ~word_size:4 ~matrix ~gap ~params () in
        let s = Blast.Seed.min_score bcfg ~query:q ~db ~k ~floor:min_score in
        if s < min_score then
          QCheck.Test.fail_reportf "seed %d loosened the floor %d" s min_score;
        let seeded = { cfg with Oasis.Engine.min_score = s } in
        let plain = take k (run cfg) and fast = take k (run seeded) in
        if fast <> plain then
          QCheck.Test.fail_reportf
            "seed %d (floor %d, k=%d): seeded [%s] <> unseeded [%s]" s
            min_score k (show_hits fast) (show_hits plain);
        true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_identity_linear;
      qcheck_identity_affine;
      qcheck_identity_pam30;
      qcheck_parallel_sharded;
      qcheck_root_complete;
      qcheck_profile_roundtrip;
      qcheck_seed_monotone;
      qcheck_seed_blast;
    ]

let () = Alcotest.run "filter_exact" [ ("filter_exact", suite) ]
