(* Metamorphic properties of the search: transformations of the input
   with a known effect on the output, checked against every engine
   (in-memory, disk, K=2 sharded). Unlike the oracle tests these need
   no reference implementation — they catch bugs the oracle shares,
   e.g. a direction-dependent pruning rule or a threshold baked in
   somewhere other than the config.

   (a) Reversing the query and every database sequence preserves each
       sequence's best local score (alignments reverse with them).
   (b) Appending a sequence over a disjoint alphabet half (all
       mismatches against the query) leaves the hit multiset unchanged.
   (c) Scaling the unit-edit matrix, the gap costs and the threshold by
       a positive integer k scales every hit score by exactly k and
       changes nothing else: every DP comparison is preserved under
       multiplication by k > 0. *)

let alpha = Bioseq.Alphabet.dna

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

let query qtext = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" qtext

(* Shared two-worker pool, spawned on first sharded case (see
   test_parallel.ml). *)
let pool = lazy (Oasis.Domain_pool.create ~domains:2)

let mem_hits ~matrix ~gap ~min_score db q =
  let tree = Suffix_tree.Ukkonen.build db in
  Oasis.Engine.Mem.run
    (Oasis.Engine.Mem.create ~source:tree ~db ~query:q
       (Oasis.Engine.config ~matrix ~gap ~min_score ()))

let disk_hits ~matrix ~gap ~min_score db q =
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:32 ~capacity:8 tree in
  Oasis.Engine.Disk.run
    (Oasis.Engine.Disk.create ~source:dt ~db ~query:q
       (Oasis.Engine.config ~matrix ~gap ~min_score ()))

let sharded_hits ~matrix ~gap ~min_score db q =
  Oasis.Parallel.Mem.run
    (Oasis.Parallel.Mem.create_sharded ~pool:(Lazy.force pool) ~shards:2 ~db
       ~query:q
       (Oasis.Engine.config ~matrix ~gap ~min_score ()))

let paths = [ ("mem", mem_hits); ("disk", disk_hits); ("sharded2", sharded_hits) ]

(* One hit per sequence, so the sorted (seq_index, score) list is the
   full per-sequence score map. Stops are not compared across a
   transformation: reversal moves them by construction. *)
let seq_scores hits =
  List.sort compare
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)

let full_multiset hits =
  List.sort compare
    (List.map
       (fun h ->
         ( h.Oasis.Hit.seq_index,
           h.Oasis.Hit.score,
           h.Oasis.Hit.query_stop,
           h.Oasis.Hit.target_stop ))
       hits)

let rev_string s =
  String.init (String.length s) (fun i -> s.[String.length s - 1 - i])

(* ---------- (a) reversal ---------- *)

let reversal_prop ~matrix ~gap (strings, qtext, min_score) =
  List.for_all
    (fun (name, run) ->
      let fwd =
        run ~matrix ~gap ~min_score (db_of_strings strings) (query qtext)
      in
      let bwd =
        run ~matrix ~gap ~min_score
          (db_of_strings (List.map rev_string strings))
          (query (rev_string qtext))
      in
      if seq_scores fwd <> seq_scores bwd then
        QCheck.Test.fail_reportf
          "%s: per-sequence scores changed under reversal" name;
      true)
    paths

(* ---------- (b) disjoint-alphabet pad ---------- *)

(* Query over {A,C}, pad over {G,T}: with the unit matrix every query
   symbol mismatches every pad symbol, so the pad's best local score is
   0 < min_score — no hit with the pad's index, and every existing
   sequence keeps its score. (Stops are not compared: the pad shares
   tree paths with existing sequences, which may legitimately flip
   which of several equal-scoring alignment ends gets reported.) *)
let pad_prop ~matrix ~gap (strings, qtext, pad, min_score) =
  List.for_all
    (fun (name, run) ->
      let base =
        run ~matrix ~gap ~min_score (db_of_strings strings) (query qtext)
      in
      let padded =
        run ~matrix ~gap ~min_score
          (db_of_strings (strings @ [ pad ]))
          (query qtext)
      in
      if
        List.exists
          (fun h -> h.Oasis.Hit.seq_index = List.length strings)
          padded
      then QCheck.Test.fail_reportf "%s: pad sequence produced a hit" name;
      if seq_scores base <> seq_scores padded then
        QCheck.Test.fail_reportf "%s: pad sequence perturbed the hits" name;
      true)
    paths

(* ---------- (c) score scaling ---------- *)

let scale_gap k = function
  | Scoring.Gap.Linear { penalty } -> Scoring.Gap.linear (k * penalty)
  | Scoring.Gap.Affine { open_cost; extend_cost } ->
    Scoring.Gap.affine ~open_cost:(k * open_cost)
      ~extend_cost:(k * extend_cost)

let scale_matrix k m =
  Scoring.Submat.of_function ~alphabet:(Scoring.Submat.alphabet m)
    ~name:(Printf.sprintf "%dx %s" k (Scoring.Submat.name m))
    (fun a b -> k * Scoring.Submat.score m a b)

let scaling_prop ~gap (strings, qtext, min_score, k) =
  let matrix = Scoring.Submat.unit_edit alpha in
  List.for_all
    (fun (name, run) ->
      let base =
        run ~matrix ~gap ~min_score (db_of_strings strings) (query qtext)
      in
      let scaled =
        run ~matrix:(scale_matrix k matrix) ~gap:(scale_gap k gap)
          ~min_score:(k * min_score) (db_of_strings strings) (query qtext)
      in
      let expected =
        List.map (fun (s, sc, qs, ts) -> (s, k * sc, qs, ts)) (full_multiset base)
      in
      if full_multiset scaled <> expected then
        QCheck.Test.fail_reportf
          "%s: scaling the scoring system by %d did not scale hit scores by \
           %d"
          name k k;
      true)
    paths

(* ---------- generators ---------- *)

let dna n m =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m))

let base_gen =
  QCheck.Gen.(
    let* strings = list_size (int_range 1 6) (dna 1 25) in
    let* q = dna 1 8 in
    let* min_score = int_range 1 5 in
    return (strings, q, min_score))

let pad_gen =
  QCheck.Gen.(
    let ac n m =
      string_size ~gen:(oneofl [ 'A'; 'C' ]) (int_range n m)
    in
    let gt n m =
      string_size ~gen:(oneofl [ 'G'; 'T' ]) (int_range n m)
    in
    let* strings = list_size (int_range 1 6) (dna 1 25) in
    let* q = ac 1 8 in
    let* pad = gt 1 30 in
    let* min_score = int_range 1 5 in
    return (strings, q, pad, min_score))

let scale_gen =
  QCheck.Gen.(
    let* strings, q, min_score = base_gen in
    let* k = int_range 2 5 in
    return (strings, q, min_score, k))

let print_base (ss, q, ms) =
  Printf.sprintf "db=%s q=%s min=%d" (String.concat "/" ss) q ms

let print_pad (ss, q, pad, ms) =
  Printf.sprintf "db=%s q=%s pad=%s min=%d" (String.concat "/" ss) q pad ms

let print_scale (ss, q, ms, k) =
  Printf.sprintf "db=%s q=%s min=%d k=%d" (String.concat "/" ss) q ms k

let unit_matrix = Scoring.Matrices.dna_unit
let gap1 = Scoring.Gap.linear 1
let affine21 = Scoring.Gap.affine ~open_cost:2 ~extend_cost:1

let qcheck_reversal_linear =
  QCheck.Test.make ~count:60
    ~name:"reversal preserves per-sequence scores (linear gaps)"
    (QCheck.make base_gen ~print:print_base)
    (reversal_prop ~matrix:unit_matrix ~gap:gap1)

let qcheck_reversal_affine =
  QCheck.Test.make ~count:40
    ~name:"reversal preserves per-sequence scores (affine gaps)"
    (QCheck.make base_gen ~print:print_base)
    (reversal_prop ~matrix:unit_matrix ~gap:affine21)

let qcheck_pad =
  QCheck.Test.make ~count:60
    ~name:"disjoint-alphabet pad sequence leaves hits unchanged"
    (QCheck.make pad_gen ~print:print_pad)
    (pad_prop ~matrix:unit_matrix ~gap:gap1)

let qcheck_scaling_linear =
  QCheck.Test.make ~count:60
    ~name:"scaling matrix+gap+threshold by k scales scores by k (linear)"
    (QCheck.make scale_gen ~print:print_scale)
    (scaling_prop ~gap:gap1)

let qcheck_scaling_affine =
  QCheck.Test.make ~count:40
    ~name:"scaling matrix+gap+threshold by k scales scores by k (affine)"
    (QCheck.make scale_gen ~print:print_scale)
    (scaling_prop ~gap:affine21)

(* Fixed cases pinning each property to a hand-checkable instance. *)

let test_reversal_fixed () =
  let strings = [ "ACGTACGT"; "TTTT"; "GATTACA" ] in
  assert (
    reversal_prop ~matrix:unit_matrix ~gap:gap1 (strings, "ACGT", 2));
  let fwd = mem_hits ~matrix:unit_matrix ~gap:gap1 ~min_score:2
      (db_of_strings strings) (query "ACGT")
  in
  Alcotest.(check bool) "forward search finds hits" true (fwd <> [])

let test_pad_fixed () =
  assert (
    pad_prop ~matrix:unit_matrix ~gap:gap1
      ([ "ACAC"; "CCCC" ], "ACA", "GTGTGTGT", 2))

let test_scaling_fixed () =
  assert (scaling_prop ~gap:gap1 ([ "ACGTACGT"; "GATTACA" ], "ACGT", 2, 3))

let () =
  let suite =
    [
      ( "reversal",
        [
          QCheck_alcotest.to_alcotest qcheck_reversal_linear;
          QCheck_alcotest.to_alcotest qcheck_reversal_affine;
          Alcotest.test_case "fixed case" `Quick test_reversal_fixed;
        ] );
      ( "pad",
        [
          QCheck_alcotest.to_alcotest qcheck_pad;
          Alcotest.test_case "fixed case" `Quick test_pad_fixed;
        ] );
      ( "scaling",
        [
          QCheck_alcotest.to_alcotest qcheck_scaling_linear;
          QCheck_alcotest.to_alcotest qcheck_scaling_affine;
          Alcotest.test_case "fixed case" `Quick test_scaling_fixed;
        ] );
    ]
  in
  let failed =
    Fun.protect
      ~finally:(fun () ->
        if Lazy.is_val pool then Oasis.Domain_pool.shutdown (Lazy.force pool))
      (fun () ->
        match Alcotest.run ~and_exit:false "metamorphic" suite with
        | () -> false
        | exception Alcotest.Test_error -> true)
  in
  if failed then exit 1
