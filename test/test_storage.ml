(* Storage layer: devices, clock buffer pool, on-disk suffix tree
   round-trips. *)

let alpha = Bioseq.Alphabet.dna

let db_of_strings strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s -> Bioseq.Sequence.make ~alphabet:alpha ~id:(Printf.sprintf "s%d" i) s)
       strings)

(* --- Device --- *)

let test_device_memory () =
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Bytes.of_string "hello");
  Storage.Device.append d (Bytes.of_string " world");
  Alcotest.(check int) "length" 11 (Storage.Device.length d);
  let buf = Bytes.create 5 in
  Storage.Device.pread d ~off:6 ~buf;
  Alcotest.(check string) "read" "world" (Bytes.to_string buf);
  (* Reads past the end are zero-filled. *)
  let buf = Bytes.create 4 in
  Storage.Device.pread d ~off:9 ~buf;
  Alcotest.(check string) "tail" "ld\000\000" (Bytes.to_string buf)

let test_device_file () =
  let path = Filename.temp_file "oasis_test" ".dev" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d = Storage.Device.file path in
      Storage.Device.append d (Bytes.of_string "abcdefgh");
      let buf = Bytes.create 3 in
      Storage.Device.pread d ~off:2 ~buf;
      Alcotest.(check string) "read after append" "cde" (Bytes.to_string buf);
      Storage.Device.close d;
      let d = Storage.Device.open_file path in
      Alcotest.(check int) "reopened length" 8 (Storage.Device.length d);
      let buf = Bytes.create 8 in
      Storage.Device.pread d ~off:0 ~buf;
      Alcotest.(check string) "reopened read" "abcdefgh" (Bytes.to_string buf);
      Alcotest.check_raises "append to read-only"
        (Invalid_argument "Device.append: device opened read-only") (fun () ->
          Storage.Device.append d (Bytes.of_string "x"));
      Storage.Device.close d)

(* --- Buffer pool --- *)

let test_pool_hits_and_misses () =
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Bytes.init 4096 (fun i -> Char.chr (i land 0xFF)));
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:4 in
  let h = Storage.Buffer_pool.attach pool ~name:"d" d in
  Alcotest.(check int) "byte 0" 0 (Storage.Buffer_pool.read_byte pool h 0);
  Alcotest.(check int) "byte 1" 1 (Storage.Buffer_pool.read_byte pool h 1);
  Alcotest.(check int) "byte 17" 17 (Storage.Buffer_pool.read_byte pool h 17);
  let s = Storage.Buffer_pool.stats h in
  Alcotest.(check int) "misses" 2 s.Storage.Buffer_pool.misses;
  Alcotest.(check int) "hits" 1 s.Storage.Buffer_pool.hits

let test_pool_eviction () =
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Bytes.init 4096 (fun i -> Char.chr (i land 0xFF)));
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:2 in
  let h = Storage.Buffer_pool.attach pool ~name:"d" d in
  (* Touch 3 distinct blocks through a 2-block pool, then re-read: data
     must still be correct after evictions. *)
  for round = 1 to 3 do
    for block = 0 to 2 do
      let off = block * 16 in
      let v = Storage.Buffer_pool.read_byte pool h off in
      Alcotest.(check int) (Printf.sprintf "round %d block %d" round block)
        (off land 0xFF) v
    done
  done;
  let s = Storage.Buffer_pool.stats h in
  Alcotest.(check int) "total accesses" 9
    (s.Storage.Buffer_pool.hits + s.Storage.Buffer_pool.misses);
  Alcotest.(check bool) "some misses beyond the first three" true
    (s.Storage.Buffer_pool.misses > 3)

let test_pool_u32 () =
  let d = Storage.Device.in_memory () in
  let b = Bytes.create 32 in
  Bytes.fill b 0 32 '\000';
  (* 0x0A0B0C0D little-endian at offset 4. *)
  Bytes.set b 4 '\x0D';
  Bytes.set b 5 '\x0C';
  Bytes.set b 6 '\x0B';
  Bytes.set b 7 '\x0A';
  Storage.Device.append d b;
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:2 in
  let h = Storage.Buffer_pool.attach pool ~name:"d" d in
  Alcotest.(check int) "u32" 0x0A0B0C0D (Storage.Buffer_pool.read_u32 pool h 4);
  Alcotest.check_raises "unaligned"
    (Invalid_argument "Buffer_pool.read_u32: unaligned offset") (fun () ->
      ignore (Storage.Buffer_pool.read_u32 pool h 2))

let test_pool_drop_all () =
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Bytes.make 64 'x');
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:4 in
  let h = Storage.Buffer_pool.attach pool ~name:"d" d in
  ignore (Storage.Buffer_pool.read_byte pool h 0);
  ignore (Storage.Buffer_pool.read_byte pool h 0);
  Storage.Buffer_pool.drop_all pool;
  let s = Storage.Buffer_pool.stats h in
  Alcotest.(check int) "stats cleared" 0
    (s.Storage.Buffer_pool.hits + s.Storage.Buffer_pool.misses);
  ignore (Storage.Buffer_pool.read_byte pool h 0);
  let s = Storage.Buffer_pool.stats h in
  Alcotest.(check int) "cold after drop" 1 s.Storage.Buffer_pool.misses

(* Three devices churning through a two-frame pool: every read must
   return the right byte through any number of evictions and re-reads,
   and the stats must stay conserved (every access is a hit or a miss). *)
let test_pool_churn () =
  let mk tag =
    let d = Storage.Device.in_memory () in
    Storage.Device.append d
      (Bytes.init 512 (fun i -> Char.chr ((tag + i) land 0xFF)));
    d
  in
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:2 in
  let handles =
    List.map
      (fun tag -> (tag, Storage.Buffer_pool.attach pool ~name:"d" (mk tag)))
      [ 0; 50; 100 ]
  in
  let accesses = ref 0 in
  for round = 0 to 3 do
    List.iter
      (fun (tag, h) ->
        for block = 0 to 31 do
          let off = (block * 16) + ((round + tag) mod 16) in
          incr accesses;
          Alcotest.(check int)
            (Printf.sprintf "tag %d round %d off %d" tag round off)
            ((tag + off) land 0xFF)
            (Storage.Buffer_pool.read_byte pool h off)
        done)
      handles
  done;
  let total =
    List.fold_left
      (fun acc (_, h) ->
        let s = Storage.Buffer_pool.stats h in
        acc + s.Storage.Buffer_pool.hits + s.Storage.Buffer_pool.misses)
      0 handles
  in
  Alcotest.(check int) "hits + misses = accesses" !accesses total;
  List.iter
    (fun (_, h) ->
      Alcotest.(check bool) "evictions forced re-reads" true
        ((Storage.Buffer_pool.stats h).Storage.Buffer_pool.misses > 32))
    handles

let test_pool_read_bytes_into () =
  let d = Storage.Device.in_memory () in
  let content = Bytes.init 200 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  Storage.Device.append d content;
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:3 in
  let h = Storage.Buffer_pool.attach pool ~name:"d" d in
  (* A block-straddling range must come back exactly, with padding in
     [dst] untouched. *)
  let dst = Bytes.make 80 '\xAA' in
  Storage.Buffer_pool.read_bytes_into pool h ~off:13 ~len:70 ~dst ~dst_off:5;
  Alcotest.(check string) "spanning copy"
    (Bytes.sub_string content 13 70)
    (Bytes.sub_string dst 5 70);
  Alcotest.(check char) "front padding intact" '\xAA' (Bytes.get dst 0);
  Alcotest.(check char) "back padding intact" '\xAA' (Bytes.get dst 79);
  Alcotest.check_raises "bad range"
    (Invalid_argument "Buffer_pool.read_bytes_into: bad range") (fun () ->
      Storage.Buffer_pool.read_bytes_into pool h ~off:0 ~len:100 ~dst ~dst_off:0)

(* A pinned frame survives arbitrary churn: the clock must pass it over,
   so its bytes stay valid until the unpin. *)
let test_pool_pinning () =
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Bytes.init 512 (fun i -> Char.chr (i land 0xFF)));
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:2 in
  let h = Storage.Buffer_pool.attach pool ~name:"d" d in
  let frame = Storage.Buffer_pool.pin pool h ~block:0 in
  (* Churn every other block through the remaining frame. *)
  for block = 1 to 31 do
    ignore (Storage.Buffer_pool.read_byte pool h (block * 16))
  done;
  let buf = Storage.Buffer_pool.frame_bytes pool frame in
  Alcotest.(check int) "pinned bytes still block 0" 5 (Char.code (Bytes.get buf 5));
  Alcotest.(check int) "one frame pinned" 1 (Storage.Buffer_pool.pinned_count pool);
  (* The pinned block is still resident: re-reading it is a hit. *)
  let before = (Storage.Buffer_pool.stats h).Storage.Buffer_pool.misses in
  ignore (Storage.Buffer_pool.read_byte pool h 0);
  Alcotest.(check int) "pinned block re-read is a hit" before
    ((Storage.Buffer_pool.stats h).Storage.Buffer_pool.misses);
  Alcotest.check_raises "drop_all refused while pinned"
    (Invalid_argument "Buffer_pool.drop_all: frames are pinned") (fun () ->
      Storage.Buffer_pool.drop_all pool);
  Storage.Buffer_pool.unpin pool frame;
  Alcotest.(check int) "unpinned" 0 (Storage.Buffer_pool.pinned_count pool);
  Alcotest.check_raises "double unpin"
    (Invalid_argument "Buffer_pool.unpin: frame is not pinned") (fun () ->
      Storage.Buffer_pool.unpin pool frame);
  Storage.Buffer_pool.drop_all pool

let test_pool_all_pinned () =
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Bytes.make 256 'x');
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:2 in
  let h = Storage.Buffer_pool.attach pool ~name:"d" d in
  let f0 = Storage.Buffer_pool.pin pool h ~block:0 in
  let f1 = Storage.Buffer_pool.pin pool h ~block:1 in
  Alcotest.check_raises "miss with every frame pinned"
    (Failure "Buffer_pool: all frames pinned, cannot evict") (fun () ->
      ignore (Storage.Buffer_pool.read_byte pool h (5 * 16)));
  (* Pinned blocks themselves stay readable (they are resident). *)
  ignore (Storage.Buffer_pool.read_byte pool h 0);
  Storage.Buffer_pool.unpin pool f0;
  Storage.Buffer_pool.unpin pool f1;
  ignore (Storage.Buffer_pool.read_byte pool h (5 * 16))

(* The open-addressed pool must be observably the same cache as the
   seed's Hashtbl clock: replay a random access trace against a direct
   reimplementation of that algorithm and compare per-handle stats. *)
module Clock_model = struct
  type frame = { mutable owner : (int * int) option; mutable referenced : bool }

  type t = {
    frames : frame array;
    table : (int * int, int) Hashtbl.t;
    mutable hand : int;
    hits : int array;
    misses : int array;
  }

  let create ~capacity ~n_handles =
    {
      frames =
        Array.init capacity (fun _ -> { owner = None; referenced = false });
      table = Hashtbl.create 16;
      hand = 0;
      hits = Array.make n_handles 0;
      misses = Array.make n_handles 0;
    }

  let access t handle block =
    let key = (handle, block) in
    match Hashtbl.find_opt t.table key with
    | Some idx ->
      t.hits.(handle) <- t.hits.(handle) + 1;
      t.frames.(idx).referenced <- true
    | None ->
      t.misses.(handle) <- t.misses.(handle) + 1;
      let rec sweep () =
        let idx = t.hand in
        let frame = t.frames.(idx) in
        t.hand <- (t.hand + 1) mod Array.length t.frames;
        if frame.referenced then begin
          frame.referenced <- false;
          sweep ()
        end
        else (idx, frame)
      in
      let idx, frame = sweep () in
      (match frame.owner with
      | Some old_key -> Hashtbl.remove t.table old_key
      | None -> ());
      frame.owner <- Some key;
      frame.referenced <- true;
      Hashtbl.replace t.table key idx
end

let qcheck_pool_matches_clock_model =
  let gen =
    QCheck.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 0 300) (pair (int_range 0 2) (int_range 0 15))))
  in
  let print (cap, trace) =
    Printf.sprintf "capacity=%d trace=[%s]" cap
      (String.concat ";"
         (List.map (fun (h, b) -> Printf.sprintf "%d@%d" h b) trace))
  in
  QCheck.Test.make ~count:300
    ~name:"pool stats replay the seed clock algorithm exactly"
    (QCheck.make gen ~print)
    (fun (capacity, trace) ->
      let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity in
      let handles =
        Array.init 3 (fun i ->
            let d = Storage.Device.in_memory () in
            Storage.Device.append d (Bytes.make 256 (Char.chr (i + 65)));
            Storage.Buffer_pool.attach pool ~name:(string_of_int i) d)
      in
      let model = Clock_model.create ~capacity ~n_handles:3 in
      List.iter
        (fun (h, block) ->
          ignore (Storage.Buffer_pool.read_byte pool handles.(h) (block * 16));
          Clock_model.access model h block)
        trace;
      Array.for_all Fun.id
        (Array.init 3 (fun i ->
             let s = Storage.Buffer_pool.stats handles.(i) in
             s.Storage.Buffer_pool.hits = model.Clock_model.hits.(i)
             && s.Storage.Buffer_pool.misses = model.Clock_model.misses.(i))))

(* --- Disk tree --- *)

(* Enumerate (path, positions) of every leaf via the disk tree. *)
let disk_leaf_paths dt =
  let buf = Buffer.create 64 in
  let out = ref [] in
  let rec go node prefix =
    if Storage.Disk_tree.is_leaf node then begin
      let start = Storage.Disk_tree.label_start dt node in
      Buffer.clear buf;
      Buffer.add_string buf prefix;
      let rec read i =
        let c = Storage.Disk_tree.symbol dt i in
        if c = Storage.Disk_tree.terminator dt then Buffer.add_char buf '$'
        else begin
          Buffer.add_char buf (Bioseq.Alphabet.to_char alpha c);
          read (i + 1)
        end
      in
      read start;
      match Storage.Disk_tree.leaf_position node with
      | Some p -> out := (Buffer.contents buf, p) :: !out
      | None -> Alcotest.fail "leaf without position"
    end
    else begin
      let start = Storage.Disk_tree.label_start dt node in
      let stop =
        match Storage.Disk_tree.label_stop dt node with
        | Some s -> s
        | None -> Alcotest.fail "internal without stop"
      in
      let piece =
        String.init (stop - start) (fun i ->
            let c = Storage.Disk_tree.symbol dt (start + i) in
            if c = Storage.Disk_tree.terminator dt then '$'
            else Bioseq.Alphabet.to_char alpha c)
      in
      List.iter
        (fun child -> go child (prefix ^ piece))
        (Storage.Disk_tree.children dt node)
    end
  in
  let root = Storage.Disk_tree.root dt in
  List.iter (fun child -> go child "") (Storage.Disk_tree.children dt root);
  List.sort compare !out

let mem_leaf_paths tree =
  Suffix_tree.Tree.fold tree ~init:[] ~f:(fun acc ~depth:_ node ->
      if Suffix_tree.Tree.is_leaf node then
        let path = Suffix_tree.Tree.path_string tree node in
        List.fold_left
          (fun acc p -> (path, p) :: acc)
          acc
          (Suffix_tree.Tree.positions node)
      else acc)
  |> List.sort compare

let test_disk_tree_roundtrip () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "AGTACG" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:32 ~capacity:4 tree in
  Alcotest.(check (list (pair string int)))
    "leaf paths match" (mem_leaf_paths tree) (disk_leaf_paths dt)

let test_disk_tree_clustered_roundtrip () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "AGTACG" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _pool =
    Storage.Disk_tree.of_tree ~layout:Storage.Disk_tree.Clustered
      ~block_size:32 ~capacity:4 tree
  in
  Alcotest.(check bool) "layout recorded" true
    (Storage.Disk_tree.layout dt = Storage.Disk_tree.Clustered);
  Alcotest.(check (list (pair string int)))
    "leaf paths match" (mem_leaf_paths tree) (disk_leaf_paths dt)

let test_disk_tree_bad_magic () =
  let symbols = Storage.Device.in_memory ()
  and internal = Storage.Device.in_memory ()
  and leaves = Storage.Device.in_memory () in
  Storage.Device.append leaves (Bytes.make 16 'x');
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:2 in
  try
    ignore
      (Storage.Disk_tree.open_ ~alphabet:alpha ~pool ~symbols ~internal ~leaves ());
    Alcotest.fail "bad magic accepted"
  with Invalid_argument _ -> ()

let test_disk_tree_subtree_positions () =
  let db = db_of_strings [ "AGTACGCCTAG" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _pool = Storage.Disk_tree.of_tree tree in
  let root = Storage.Disk_tree.root dt in
  let acc = ref [] in
  Storage.Disk_tree.iter_positions dt root (fun p -> acc := p :: !acc);
  let all = List.sort compare !acc in
  Alcotest.(check (list int)) "all suffixes" (List.init 12 Fun.id) all

let test_disk_tree_stats_move () =
  let db = db_of_strings [ "AGTACGCCTAGAGTACGAGTACCGTA" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, pool = Storage.Disk_tree.of_tree ~block_size:16 ~capacity:2 tree in
  Storage.Disk_tree.iter_positions dt (Storage.Disk_tree.root dt) ignore;
  ignore pool;
  let s = Storage.Disk_tree.component_stats dt Storage.Disk_tree.Internal_nodes in
  Alcotest.(check bool) "internal accesses happened" true
    (s.Storage.Buffer_pool.hits + s.Storage.Buffer_pool.misses > 0);
  let l = Storage.Disk_tree.component_stats dt Storage.Disk_tree.Leaves in
  Alcotest.(check bool) "leaf accesses happened" true
    (l.Storage.Buffer_pool.hits + l.Storage.Buffer_pool.misses > 0)

let test_size_report () =
  let db = db_of_strings [ "AGTACGCCTAG" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, _ = Storage.Disk_tree.of_tree tree in
  let r = Storage.Disk_tree.size_report dt in
  Alcotest.(check int) "symbols bytes" 12 r.Storage.Disk_tree.symbols_bytes;
  (* 16-byte layout header plus one 4-byte entry per suffix. *)
  Alcotest.(check int) "leaves bytes" (16 + (12 * 4)) r.Storage.Disk_tree.leaves_bytes;
  Alcotest.(check bool) "bytes per symbol sane" true
    (r.Storage.Disk_tree.bytes_per_symbol > 4.
    && r.Storage.Disk_tree.bytes_per_symbol < 40.)

(* --- External (partitioned) construction --- *)

let open_external ?layout db =
  let symbols = Storage.Device.in_memory ()
  and internal = Storage.Device.in_memory ()
  and leaves = Storage.Device.in_memory () in
  Storage.External_build.write ?layout db ~symbols ~internal ~leaves;
  let pool = Storage.Buffer_pool.create ~block_size:64 ~capacity:8 in
  Storage.Disk_tree.open_ ~alphabet:(Bioseq.Database.alphabet db) ~pool ~symbols
    ~internal ~leaves ()

let test_external_build_roundtrip () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "AGTACG"; "TACG" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  List.iter
    (fun layout ->
      let dt = open_external ~layout db in
      Alcotest.(check (list (pair string int)))
        "external leaf paths = in-memory tree" (mem_leaf_paths tree)
        (disk_leaf_paths dt))
    [ Storage.Disk_tree.Position_indexed; Storage.Disk_tree.Clustered ]

let test_external_build_search () =
  (* An OASIS search over the externally-built image must agree with the
     in-memory engine. *)
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "CCCCTACGCCCC"; "GATTACA" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let dt = open_external db in
  let q = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" "TACG" in
  let cfg =
    Oasis.Engine.config ~matrix:Scoring.Matrices.dna_unit
      ~gap:(Scoring.Gap.linear 1) ~min_score:2 ()
  in
  let mem_hits =
    Oasis.Engine.Mem.run (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg)
  in
  let disk_hits =
    Oasis.Engine.Disk.run (Oasis.Engine.Disk.create ~source:dt ~db ~query:q cfg)
  in
  let key h = (h.Oasis.Hit.seq_index, h.Oasis.Hit.score) in
  Alcotest.(check (list (pair int int)))
    "hits agree"
    (List.sort compare (List.map key mem_hits))
    (List.sort compare (List.map key disk_hits))

let test_max_partition () =
  let db = db_of_strings [ "AAAACGT"; "AAA" ] in
  (* Suffixes starting with A: positions 0,1,2,3 (then CGT...) plus
     8,9,10 = 7 occurrences. *)
  Alcotest.(check int) "largest bucket" 7
    (Storage.External_build.max_partition_occurrences db)

let test_validate_ok () =
  let db = db_of_strings [ "AGTACGCCTAG"; "TACG"; "TACG" ] in
  let tree = Suffix_tree.Ukkonen.build db in
  List.iter
    (fun layout ->
      let dt, _ = Storage.Disk_tree.of_tree ~layout ~block_size:32 ~capacity:8 tree in
      match Storage.Disk_tree.validate dt with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "validate: %s" msg)
    [ Storage.Disk_tree.Position_indexed; Storage.Disk_tree.Clustered ];
  let dt = open_external db in
  match Storage.Disk_tree.validate dt with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "external validate: %s" msg

let qcheck_validate_random =
  QCheck.Test.make ~count:100 ~name:"validate accepts every built index"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 5)
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 25)))
       ~print:(String.concat "/"))
    (fun strings ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let dt, _ = Storage.Disk_tree.of_tree ~block_size:16 ~capacity:3 tree in
      Storage.Disk_tree.validate dt = Ok ())

let qcheck_external_equals_monolithic =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 5)
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 25)))
        (oneofl
           [ Storage.Disk_tree.Position_indexed; Storage.Disk_tree.Clustered ]))
  in
  QCheck.Test.make ~count:150
    ~name:"external build equals monolithic serialization"
    (QCheck.make gen ~print:(fun (ss, _) -> String.concat "/" ss))
    (fun (strings, layout) ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let dt_mono, _ =
        Storage.Disk_tree.of_tree ~layout ~block_size:16 ~capacity:3 tree
      in
      let dt_ext = open_external ~layout db in
      disk_leaf_paths dt_mono = disk_leaf_paths dt_ext)

(* --- Integrity: CRC-32, footers, verify levels --- *)

let test_crc32_known () =
  (* The CRC-32/IEEE check value. *)
  Alcotest.(check int) "check value" 0xCBF43926
    (Storage.Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Storage.Crc32.string "");
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Bytes.of_string "123456789");
  Alcotest.(check int) "of_device" 0xCBF43926 (Storage.Crc32.of_device d)

let test_footer_roundtrip () =
  let d = Storage.Device.in_memory () in
  Storage.Device.append d (Bytes.of_string "payload bytes");
  Storage.Footer.append d;
  Alcotest.(check int) "length" (13 + Storage.Footer.size)
    (Storage.Device.length d);
  (match Storage.Footer.read d with
  | Some f ->
    Alcotest.(check int) "version" Storage.Footer.current_version
      f.Storage.Footer.version;
    Alcotest.(check int) "payload length" 13 f.Storage.Footer.payload_length;
    Alcotest.(check int) "crc"
      (Storage.Crc32.string "payload bytes")
      f.Storage.Footer.crc
  | None -> Alcotest.fail "footer unreadable");
  match Storage.Footer.verify d with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "verify: %s" e

let sample_db () = db_of_strings [ "AGTACGCCTAG"; "TACG"; "AGTACG" ]

let write_devices ?layout db =
  let symbols = Storage.Device.in_memory ()
  and internal = Storage.Device.in_memory ()
  and leaves = Storage.Device.in_memory () in
  let tree = Suffix_tree.Ukkonen.build db in
  Storage.Disk_tree.write ?layout tree ~symbols ~internal ~leaves;
  (symbols, internal, leaves)

let open_devices ?verify (symbols, internal, leaves) =
  let pool = Storage.Buffer_pool.create ~block_size:32 ~capacity:8 in
  Storage.Disk_tree.open_ ?verify ~alphabet:alpha ~pool ~symbols ~internal
    ~leaves ()

(* A copy of [d] with its last [n] bytes chopped off, as after an
   interrupted write. *)
let truncated d n =
  let keep = Storage.Device.length d - n in
  let buf = Bytes.create keep in
  Storage.Device.pread d ~off:0 ~buf;
  let d' = Storage.Device.in_memory () in
  Storage.Device.append d' buf;
  d'

let flip_bit d off =
  let buf = Bytes.create 1 in
  Storage.Device.pread d ~off ~buf;
  Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) lxor 0x04));
  Storage.Device.pwrite d ~off buf

let expect_corrupt component f =
  try
    ignore (f ());
    Alcotest.failf "%s corruption accepted" component
  with Storage.Disk_tree.Corrupt { component = c; _ } ->
    Alcotest.(check string) "failing component" component c

let test_verify_full_ok () =
  let db = sample_db () in
  let tree = Suffix_tree.Ukkonen.build db in
  List.iter
    (fun layout ->
      let dt =
        open_devices ~verify:Storage.Disk_tree.Full (write_devices ~layout db)
      in
      Alcotest.(check (list (pair string int)))
        "paths survive full verification" (mem_leaf_paths tree)
        (disk_leaf_paths dt))
    [ Storage.Disk_tree.Position_indexed; Storage.Disk_tree.Clustered ];
  (* The externally-built image carries valid footers too. *)
  let symbols = Storage.Device.in_memory ()
  and internal = Storage.Device.in_memory ()
  and leaves = Storage.Device.in_memory () in
  Storage.External_build.write db ~symbols ~internal ~leaves;
  let dt =
    open_devices ~verify:Storage.Disk_tree.Full (symbols, internal, leaves)
  in
  Alcotest.(check (list (pair string int)))
    "external image verifies" (mem_leaf_paths tree) (disk_leaf_paths dt)

let test_verify_truncation () =
  (* Chopping the tail off any component removes its footer; every
     verify level above Off must refuse the image. *)
  List.iter
    (fun pick ->
      let s, i, l = write_devices (sample_db ()) in
      let name, devices =
        match pick with
        | 0 -> ("symbols", (truncated s 8, i, l))
        | 1 -> ("internal", (s, truncated i 8, l))
        | _ -> ("leaves", (s, i, truncated l 8))
      in
      expect_corrupt name (fun () ->
          open_devices ~verify:Storage.Disk_tree.Footer devices))
    [ 0; 1; 2 ]

let test_verify_bit_flip () =
  (* One flipped payload bit in any component fails its CRC. *)
  List.iter
    (fun pick ->
      let s, i, l = write_devices (sample_db ()) in
      let d, name =
        match pick with
        | 0 -> (s, "symbols")
        | 1 -> (i, "internal")
        | _ -> (l, "leaves")
      in
      flip_bit d (Storage.Device.length d - Storage.Footer.size - 2);
      expect_corrupt name (fun () ->
          open_devices ~verify:Storage.Disk_tree.Footer (s, i, l)))
    [ 0; 1; 2 ]

let test_verify_wrong_version () =
  let s, i, l = write_devices (sample_db ()) in
  let s = truncated s Storage.Footer.size in
  Storage.Footer.append ~version:(Storage.Footer.current_version + 1) s;
  expect_corrupt "symbols" (fun () ->
      open_devices ~verify:Storage.Disk_tree.Footer (s, i, l))

let test_verify_off_legacy () =
  (* Images written before footers existed (no footer at all) still open
     at the default level. *)
  let db = sample_db () in
  let tree = Suffix_tree.Ukkonen.build db in
  let s, i, l = write_devices db in
  let n = Storage.Footer.size in
  let dt = open_devices (truncated s n, truncated i n, truncated l n) in
  Alcotest.(check (list (pair string int)))
    "legacy footerless image readable" (mem_leaf_paths tree)
    (disk_leaf_paths dt)

let test_check_reports_garbage () =
  (* Damage an internal entry's pointer word: Footer-level verification
     would catch the CRC, but [check] must locate the bad field even
     when asked to look at the raw structure. *)
  let s, i, l = write_devices (sample_db ()) in
  let off = 16 + 4 (* first entry's label-start word *) in
  let bad = Bytes.of_string "\xff\xff\xff\x7f" in
  Storage.Device.pwrite i ~off bad;
  let dt = open_devices (s, i, l) in
  match Storage.Disk_tree.check dt with
  | [] -> Alcotest.fail "check accepted a wild pointer"
  | issue :: _ ->
    Alcotest.(check string) "component" "internal"
      (Storage.Disk_tree.component_name issue.Storage.Disk_tree.component)

(* --- Fault injection --- *)

let test_faulty_transient () =
  let inner = Storage.Device.in_memory () in
  Storage.Device.append inner (Bytes.of_string "abcdefgh");
  let plan =
    Storage.Faulty.plan ~transient_read_prob:1.0 ~max_consecutive_transient:2 ()
  in
  let d, h = Storage.Faulty.wrap plan inner in
  let buf = Bytes.create 4 in
  let attempts = ref 0 in
  let rec go () =
    incr attempts;
    try Storage.Device.pread d ~off:0 ~buf
    with Storage.Io_error info ->
      Alcotest.(check bool) "transient" true info.Storage.Io_error.transient;
      go ()
  in
  go ();
  (* max_consecutive_transient + 1 attempts always suffice. *)
  Alcotest.(check int) "third attempt succeeds" 3 !attempts;
  Alcotest.(check string) "data intact" "abcd" (Bytes.to_string buf);
  let s = Storage.Faulty.stats h in
  Alcotest.(check int) "failures counted" 2
    s.Storage.Faulty.transient_failures

let test_faulty_fail_after () =
  let inner = Storage.Device.in_memory () in
  Storage.Device.append inner (Bytes.make 16 'x');
  let d, _ =
    Storage.Faulty.wrap (Storage.Faulty.plan ~fail_after_ops:3 ()) inner
  in
  let buf = Bytes.create 1 in
  for _ = 1 to 3 do
    Storage.Device.pread d ~off:0 ~buf
  done;
  try
    Storage.Device.pread d ~off:0 ~buf;
    Alcotest.fail "dead device still reads"
  with Storage.Io_error info ->
    Alcotest.(check bool) "permanent" false info.Storage.Io_error.transient

let test_faulty_torn_append () =
  let inner = Storage.Device.in_memory () in
  let d, h =
    Storage.Faulty.wrap
      (Storage.Faulty.plan ~seed:7 ~torn_append_prob:1.0 ())
      inner
  in
  Storage.Device.append d (Bytes.make 100 'a');
  Alcotest.(check bool) "strict prefix landed" true
    (Storage.Device.length inner < 100);
  Alcotest.(check int) "torn append counted" 1
    (Storage.Faulty.stats h).Storage.Faulty.torn_appends

let test_faulty_bit_flip () =
  let inner = Storage.Device.in_memory () in
  Storage.Device.append inner (Bytes.make 32 '\000');
  let d, h =
    Storage.Faulty.wrap (Storage.Faulty.plan ~seed:3 ~bit_flip_prob:1.0 ()) inner
  in
  let buf = Bytes.create 32 in
  Storage.Device.pread d ~off:0 ~buf;
  let set_bits = ref 0 in
  Bytes.iter
    (fun c ->
      for bit = 0 to 7 do
        if Char.code c land (1 lsl bit) <> 0 then incr set_bits
      done)
    buf;
  Alcotest.(check int) "exactly one bit flipped" 1 !set_bits;
  Alcotest.(check int) "flip counted" 1
    (Storage.Faulty.stats h).Storage.Faulty.bit_flips;
  (* The flip is on the read path only: the device itself is clean. *)
  let again = Bytes.create 32 in
  Storage.Device.pread inner ~off:0 ~buf:again;
  Alcotest.(check string) "underlying data clean"
    (String.make 32 '\000')
    (Bytes.to_string again)

let test_faulty_deterministic () =
  let run () =
    let inner = Storage.Device.in_memory () in
    Storage.Device.append inner (Bytes.make 64 'x');
    let plan =
      Storage.Faulty.plan ~seed:42 ~transient_read_prob:0.5
        ~max_consecutive_transient:1 ()
    in
    let d, h = Storage.Faulty.wrap plan inner in
    let buf = Bytes.create 4 in
    for off = 0 to 15 do
      try Storage.Device.pread d ~off ~buf with Storage.Io_error _ -> ()
    done;
    Storage.Faulty.stats h
  in
  Alcotest.(check bool) "same seed, same faults" true (run () = run ())

let test_pool_retry () =
  let inner = Storage.Device.in_memory () in
  Storage.Device.append inner (Bytes.init 64 (fun i -> Char.chr i));
  let plan =
    Storage.Faulty.plan ~transient_read_prob:1.0 ~max_consecutive_transient:2 ()
  in
  let d, _ = Storage.Faulty.wrap plan inner in
  let pool = Storage.Buffer_pool.create ~block_size:16 ~capacity:4 in
  Storage.Buffer_pool.set_retry pool
    { Storage.Buffer_pool.attempts = 3; backoff = 0.; multiplier = 2. };
  let h = Storage.Buffer_pool.attach pool ~name:"faulty" d in
  Alcotest.(check int) "read through retries" 5
    (Storage.Buffer_pool.read_byte pool h 5);
  let s = Storage.Buffer_pool.stats h in
  Alcotest.(check int) "retries counted" 2 s.Storage.Buffer_pool.retries;
  Alcotest.(check int) "no failures" 0 s.Storage.Buffer_pool.failures;
  (* Without a retry budget the same fault is fatal and counted. *)
  Storage.Buffer_pool.set_retry pool Storage.Buffer_pool.no_retry;
  (try
     ignore (Storage.Buffer_pool.read_byte pool h 20);
     Alcotest.fail "fault survived no_retry"
   with Storage.Io_error info ->
     Alcotest.(check bool) "still transient" true
       info.Storage.Io_error.transient);
  let s = Storage.Buffer_pool.stats h in
  Alcotest.(check int) "failure counted" 1 s.Storage.Buffer_pool.failures

let test_open_file_missing () =
  try
    ignore (Storage.Device.open_file "/nonexistent/oasis-io-error-test");
    Alcotest.fail "opened a missing file"
  with Storage.Io_error info ->
    Alcotest.(check bool) "op is Open" true
      (info.Storage.Io_error.op = Storage.Io_error.Open);
    Alcotest.(check bool) "path recorded" true
      (info.Storage.Io_error.path <> None)

let qcheck_disk_roundtrip =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 5)
           (string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range 1 25)))
        (oneofl [ Storage.Disk_tree.Position_indexed; Storage.Disk_tree.Clustered ]))
  in
  QCheck.Test.make ~count:150 ~name:"disk round-trip preserves leaf paths"
    (QCheck.make gen ~print:(fun (ss, layout) ->
         String.concat "/" ss
         ^ match layout with
           | Storage.Disk_tree.Position_indexed -> " (position)"
           | Storage.Disk_tree.Clustered -> " (clustered)"))
    (fun (strings, layout) ->
      let db = db_of_strings strings in
      let tree = Suffix_tree.Ukkonen.build db in
      let dt, _ =
        Storage.Disk_tree.of_tree ~layout ~block_size:16 ~capacity:3 tree
      in
      mem_leaf_paths tree = disk_leaf_paths dt)

let () =
  Alcotest.run "storage"
    [
      ( "device",
        [
          Alcotest.test_case "in-memory" `Quick test_device_memory;
          Alcotest.test_case "file backend" `Quick test_device_file;
          Alcotest.test_case "missing file is a typed Io_error" `Quick
            test_open_file_missing;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "crc32 known values" `Quick test_crc32_known;
          Alcotest.test_case "footer round-trip" `Quick test_footer_roundtrip;
          Alcotest.test_case "full verify accepts good images" `Quick
            test_verify_full_ok;
          Alcotest.test_case "truncation rejected" `Quick
            test_verify_truncation;
          Alcotest.test_case "bit flip rejected" `Quick test_verify_bit_flip;
          Alcotest.test_case "wrong footer version rejected" `Quick
            test_verify_wrong_version;
          Alcotest.test_case "legacy footerless image opens at Off" `Quick
            test_verify_off_legacy;
          Alcotest.test_case "check locates wild pointers" `Quick
            test_check_reports_garbage;
        ] );
      ( "faults",
        [
          Alcotest.test_case "transient reads recover" `Quick
            test_faulty_transient;
          Alcotest.test_case "fail-after kills the device" `Quick
            test_faulty_fail_after;
          Alcotest.test_case "torn append writes a strict prefix" `Quick
            test_faulty_torn_append;
          Alcotest.test_case "bit flip corrupts the read path only" `Quick
            test_faulty_bit_flip;
          Alcotest.test_case "same seed injects the same faults" `Quick
            test_faulty_deterministic;
          Alcotest.test_case "pool retries transient faults" `Quick
            test_pool_retry;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hits and misses" `Quick test_pool_hits_and_misses;
          Alcotest.test_case "eviction correctness" `Quick test_pool_eviction;
          Alcotest.test_case "u32 reads" `Quick test_pool_u32;
          Alcotest.test_case "drop_all" `Quick test_pool_drop_all;
          Alcotest.test_case "multi-handle churn" `Quick test_pool_churn;
          Alcotest.test_case "read_bytes_into spans blocks" `Quick
            test_pool_read_bytes_into;
          Alcotest.test_case "pinned frame survives churn" `Quick
            test_pool_pinning;
          Alcotest.test_case "all frames pinned fails loudly" `Quick
            test_pool_all_pinned;
        ] );
      ( "disk_tree",
        [
          Alcotest.test_case "round-trip" `Quick test_disk_tree_roundtrip;
          Alcotest.test_case "clustered round-trip" `Quick
            test_disk_tree_clustered_roundtrip;
          Alcotest.test_case "bad magic rejected" `Quick test_disk_tree_bad_magic;
          Alcotest.test_case "external build round-trip" `Quick
            test_external_build_roundtrip;
          Alcotest.test_case "external build search" `Quick
            test_external_build_search;
          Alcotest.test_case "max partition size" `Quick test_max_partition;
          Alcotest.test_case "validate accepts good indexes" `Quick
            test_validate_ok;
          Alcotest.test_case "subtree positions" `Quick
            test_disk_tree_subtree_positions;
          Alcotest.test_case "component stats" `Quick test_disk_tree_stats_move;
          Alcotest.test_case "size report" `Quick test_size_report;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_disk_roundtrip;
            qcheck_external_equals_monolithic;
            qcheck_validate_random;
            qcheck_pool_matches_clock_model;
          ] );
    ]
