(* Report rendering: BLAST outfmt-6 tabular, pairwise text, summaries. *)

let dna = Bioseq.Alphabet.dna
let matrix = Scoring.Matrices.dna_unit
let gap1 = Scoring.Gap.linear 1

let mk_db strings =
  Bioseq.Database.make
    (List.mapi
       (fun i s -> Bioseq.Sequence.make ~alphabet:dna ~id:(Printf.sprintf "s%d" i) s)
       strings)

let paper_row ?params () =
  let db = mk_db [ "AGTACGCCTAG" ] in
  let query = Bioseq.Sequence.make ~alphabet:dna ~id:"q" "TACG" in
  Report.Render.row ~matrix ~gap:gap1 ?params ~db ~query ~seq_index:0 ()

let test_statistics () =
  let r = paper_row () in
  Alcotest.(check int) "identities" 4 (Report.Render.identities r);
  Alcotest.(check int) "mismatches" 0 (Report.Render.mismatches r);
  Alcotest.(check int) "gap opens" 0 (Report.Render.gap_opens r);
  Alcotest.(check int) "length" 4 (Report.Render.alignment_length r);
  Alcotest.(check (float 1e-9)) "pident" 100. (Report.Render.percent_identity r)

let test_tabular_line () =
  let r = paper_row () in
  let line = Report.Render.to_string Report.Render.Tabular [ r ] in
  (* qseqid sseqid pident length mismatch gapopen qstart qend sstart send
     evalue bitscore; 1-based inclusive coordinates; '*' without
     statistics. *)
  Alcotest.(check string) "outfmt 6"
    "q\ts0\t100.00\t4\t0\t0\t1\t4\t3\t6\t*\t*\n" line

let test_tabular_with_stats () =
  let params =
    Scoring.Karlin.estimate ~matrix ~freqs:Scoring.Background.dna_uniform ()
  in
  let r = paper_row ~params () in
  let line = Report.Render.to_string Report.Render.Tabular [ r ] in
  Alcotest.(check bool) "no stars" true (not (String.contains line '*'));
  Alcotest.(check bool) "evalue present" true
    (Option.is_some r.Report.Render.evalue)

let test_gap_statistics () =
  (* Query AAAATTTT vs target AAAACCTTTT: one 2-symbol gap run. *)
  let db = mk_db [ "AAAACCTTTT" ] in
  let query = Bioseq.Sequence.make ~alphabet:dna ~id:"q" "AAAATTTT" in
  let match3 =
    Scoring.Submat.of_function ~alphabet:dna ~name:"m3" (fun a b ->
        if a = b then 3 else -3)
  in
  let r =
    Report.Render.row ~matrix:match3
      ~gap:(Scoring.Gap.affine ~open_cost:2 ~extend_cost:1)
      ~db ~query ~seq_index:0 ()
  in
  Alcotest.(check int) "one gap open" 1 (Report.Render.gap_opens r);
  Alcotest.(check int) "length includes gap" 10 (Report.Render.alignment_length r);
  Alcotest.(check int) "identities" 8 (Report.Render.identities r)

let test_pairwise_shape () =
  let r = paper_row () in
  let text = Report.Render.to_string Report.Render.Pairwise [ r ] in
  Alcotest.(check bool) "has header" true
    (String.length text > 0 && text.[0] = '>');
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "score line" true (contains "Score = 4");
  Alcotest.(check bool) "query row" true (contains "Query     1 TACG 4");
  Alcotest.(check bool) "subject row" true (contains "Sbjct     3 TACG 6")

let test_pairwise_wraps () =
  (* A 150-symbol identical pair must wrap into 60-column blocks with
     consistent coordinates. *)
  let text150 = String.concat "" (List.init 15 (fun _ -> "ACGTACGTAC")) in
  let db = mk_db [ text150 ] in
  let query = Bioseq.Sequence.make ~alphabet:dna ~id:"q" text150 in
  let r = Report.Render.row ~matrix ~gap:gap1 ~db ~query ~seq_index:0 () in
  let text = Report.Render.to_string Report.Render.Pairwise [ r ] in
  let lines = String.split_on_char '\n' text in
  let query_lines =
    List.filter (fun l -> String.length l > 5 && String.sub l 0 5 = "Query") lines
  in
  Alcotest.(check int) "three blocks" 3 (List.length query_lines);
  Alcotest.(check bool) "second block starts at 61" true
    (List.exists
       (fun l -> String.length l > 11 && String.sub l 0 11 = "Query    61")
       query_lines)

let test_summary () =
  let r = paper_row () in
  let text = Report.Render.to_string Report.Render.Summary [ r ] in
  Alcotest.(check bool) "mentions target and identities" true
    (let contains needle =
       let nl = String.length needle and tl = String.length text in
       let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
       go 0
     in
     contains "s0" && contains "4/4")

let qcheck_tabular_well_formed =
  let gen =
    QCheck.Gen.(
      let dnas n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
      pair (dnas 2 10) (dnas 5 40))
  in
  QCheck.Test.make ~count:200 ~name:"tabular rows always have 12 columns"
    (QCheck.make gen ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (qtext, ttext) ->
      let db = mk_db [ ttext ] in
      let query = Bioseq.Sequence.make ~alphabet:dna ~id:"q" qtext in
      let r = Report.Render.row ~matrix ~gap:gap1 ~db ~query ~seq_index:0 () in
      let line = Report.Render.to_string Report.Render.Tabular [ r ] in
      List.length (String.split_on_char '\t' (String.trim line)) = 12)

let qcheck_stats_add_up =
  let gen =
    QCheck.Gen.(
      let dnas n m = string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_range n m) in
      pair (dnas 2 10) (dnas 5 40))
  in
  QCheck.Test.make ~count:200
    ~name:"identities + mismatches + gaps = alignment length"
    (QCheck.make gen ~print:(fun (q, t) -> q ^ " / " ^ t))
    (fun (qtext, ttext) ->
      let db = mk_db [ ttext ] in
      let query = Bioseq.Sequence.make ~alphabet:dna ~id:"q" qtext in
      let r = Report.Render.row ~matrix ~gap:gap1 ~db ~query ~seq_index:0 () in
      let gaps =
        List.length
          (List.filter
             (fun op -> op <> Align.Alignment.Replace)
             r.Report.Render.alignment.Align.Alignment.ops)
      in
      Report.Render.identities r + Report.Render.mismatches r + gaps
      = Report.Render.alignment_length r)

(* --- ASCII charts --- *)

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let test_chart_basic () =
  let chart =
    Report.Chart.render ~title:"t" ~x_label:"xs" ~y_label:"ys"
      [
        { Report.Chart.label = "a"; mark = 'a'; points = [ (0., 0.); (10., 5.) ] };
        { Report.Chart.label = "b"; mark = 'b'; points = [ (5., 2.) ] };
      ]
  in
  Alcotest.(check bool) "title" true (contains chart "t\n");
  Alcotest.(check bool) "marks present" true
    (String.contains chart 'a' && String.contains chart 'b');
  Alcotest.(check bool) "legend" true (contains chart "legend:");
  Alcotest.(check bool) "labels" true (contains chart "xs" && contains chart "ys")

let test_chart_log_drops_nonpositive () =
  let chart =
    Report.Chart.render ~title:"t" ~y_scale:Report.Chart.Log10
      [
        {
          Report.Chart.label = "a";
          mark = '*';
          points = [ (1., 0.); (2., -3.); (3., 10.) ];
        };
      ]
  in
  (* Only one drawable point; it must still render. *)
  Alcotest.(check bool) "renders" true (String.contains chart '*')

let test_chart_empty () =
  Alcotest.(check string) "no drawable points" ""
    (Report.Chart.render ~title:"t" ~y_scale:Report.Chart.Log10
       [ { Report.Chart.label = "a"; mark = '*'; points = [ (1., -1.) ] } ])

let test_chart_extremes_on_canvas () =
  let chart =
    Report.Chart.render ~width:20 ~height:8 ~title:"t"
      [
        {
          Report.Chart.label = "a";
          mark = '*';
          points = [ (0., 0.); (100., 100.) ];
        };
      ]
  in
  let lines = String.split_on_char '\n' chart in
  (* Every canvas row is bounded: "<label> |" + width characters. *)
  List.iter
    (fun l ->
      if String.length l > 9 && l.[9] = '|' then
        Alcotest.(check bool) "row width" true (String.length l <= 10 + 20))
    lines

let qcheck_chart_never_crashes =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 20)
        (pair (float_range (-100.) 1000.) (float_range (-100.) 1000.)))
  in
  QCheck.Test.make ~count:200 ~name:"chart renders any point set"
    (QCheck.make gen ~print:(fun ps ->
         String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%g,%g)" a b) ps)))
    (fun points ->
      List.for_all
        (fun (xs, ys) ->
          let s =
            Report.Chart.render ~x_scale:xs ~y_scale:ys ~title:"t"
              [ { Report.Chart.label = "a"; mark = '*'; points } ]
          in
          (* Either empty (nothing drawable) or contains the canvas. *)
          s = "" || String.contains s '|')
        Report.Chart.
          [ (Linear, Linear); (Log10, Linear); (Linear, Log10); (Log10, Log10) ])

let () =
  Alcotest.run "report"
    [
      ( "statistics",
        [
          Alcotest.test_case "basic" `Quick test_statistics;
          Alcotest.test_case "gaps" `Quick test_gap_statistics;
        ] );
      ( "formats",
        [
          Alcotest.test_case "tabular" `Quick test_tabular_line;
          Alcotest.test_case "tabular with stats" `Quick test_tabular_with_stats;
          Alcotest.test_case "pairwise shape" `Quick test_pairwise_shape;
          Alcotest.test_case "pairwise wraps" `Quick test_pairwise_wraps;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "chart",
        [
          Alcotest.test_case "basic" `Quick test_chart_basic;
          Alcotest.test_case "log drops non-positive" `Quick
            test_chart_log_drops_nonpositive;
          Alcotest.test_case "empty" `Quick test_chart_empty;
          Alcotest.test_case "extremes clamped" `Quick test_chart_extremes_on_canvas;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_tabular_well_formed;
            qcheck_stats_add_up;
            qcheck_chart_never_crashes;
          ] );
    ]
