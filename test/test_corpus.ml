(* Committed adversarial corpus: every file under corpus/ is one
   (scoring system, query, database) case chosen to stress an edge of
   the search — terminator-adjacent repeats, degenerate trees, score
   ties, empty streams, thresholds at the reachable boundary. For each
   case the reference implementation, the in-memory engine and the disk
   engine must produce bit-identical hit streams (same hits, same
   stops, same order), and the K=2 sharded search the same
   (seq_index, score) multiset in non-increasing score order,
   reproducibly (the PR3 determinism contract). *)

(* dune runtest runs from the test directory; dune exec from the root. *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else "test/corpus"

type case = {
  file : string;
  alphabet : Bioseq.Alphabet.t;
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
  min_score : int;
  query : string;
  seqs : string list;
}

let parse_case file =
  let ic = open_in (Filename.concat corpus_dir file) in
  let alphabet = ref None
  and matrix = ref None
  and gap = ref None
  and min_score = ref None
  and query = ref None
  and seqs = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          if line = "" || line.[0] = '#' then ()
          else
            match String.split_on_char ' ' line with
            | [ "alphabet"; "dna" ] -> alphabet := Some Bioseq.Alphabet.dna
            | [ "alphabet"; "protein" ] ->
              alphabet := Some Bioseq.Alphabet.protein
            | [ "matrix"; name ] -> (
              match Scoring.Matrices.by_name name with
              | Some m -> matrix := Some m
              | None -> failwith (file ^ ": unknown matrix " ^ name))
            | [ "gap"; "linear"; p ] ->
              gap := Some (Scoring.Gap.linear (int_of_string p))
            | [ "gap"; "affine"; o; e ] ->
              gap :=
                Some
                  (Scoring.Gap.affine ~open_cost:(int_of_string o)
                     ~extend_cost:(int_of_string e))
            | [ "min_score"; s ] -> min_score := Some (int_of_string s)
            | [ "query"; q ] -> query := Some q
            | [ "seq"; s ] -> seqs := s :: !seqs
            | _ -> failwith (file ^ ": unparseable line: " ^ line)
        done
      with End_of_file -> ());
  let req what = function
    | Some v -> v
    | None -> failwith (file ^ ": missing " ^ what)
  in
  {
    file;
    alphabet = req "alphabet" !alphabet;
    matrix = req "matrix" !matrix;
    gap = req "gap" !gap;
    min_score = req "min_score" !min_score;
    query = req "query" !query;
    seqs = List.rev !seqs;
  }

let cases =
  lazy
    (Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".txt")
    |> List.sort compare |> List.map parse_case)

let db_of_case c =
  Bioseq.Database.make
    (List.mapi
       (fun i s ->
         Bioseq.Sequence.make ~alphabet:c.alphabet
           ~id:(Printf.sprintf "s%d" i) s)
       c.seqs)

let query_of_case c =
  Bioseq.Sequence.make ~alphabet:c.alphabet ~id:"q" c.query

let cfg_of_case c =
  Oasis.Engine.config ~matrix:c.matrix ~gap:c.gap ~min_score:c.min_score ()

let pool = lazy (Oasis.Domain_pool.create ~domains:2)

let hit_testable =
  Alcotest.testable Oasis.Hit.pp (fun (a : Oasis.Hit.t) b -> a = b)

let seq_scores hits =
  List.sort compare
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)

let nonincreasing hits =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Oasis.Hit.score >= b.Oasis.Hit.score && go rest
    | _ -> true
  in
  go hits

(* Runs the case with the q-gram tier armed and returns the engine's
   (tested, settled_coarse, settled_refined) counters, checking the
   filtered stream against [reference] on the way. *)
let run_filtered c ~db ~q ~cfg ~tree ~reference =
  let filter = Quasar.Profile.build ~db ~tree () in
  let eng = Oasis.Engine.Mem.create ~filter ~source:tree ~db ~query:q cfg in
  let hits = Oasis.Engine.Mem.run eng in
  Alcotest.(check (list hit_testable))
    (c.file ^ ": q-gram-filtered mem engine = reference, bit-identical")
    reference hits;
  Oasis.Engine.Mem.filter_stats eng

let check_case c =
  let db = db_of_case c in
  let q = query_of_case c in
  let cfg = cfg_of_case c in
  let tree = Suffix_tree.Ukkonen.build db in
  let reference =
    Oasis.Reference.Mem.run
      (Oasis.Reference.Mem.create ~source:tree ~db ~query:q cfg)
  in
  let mem =
    Oasis.Engine.Mem.run (Oasis.Engine.Mem.create ~source:tree ~db ~query:q cfg)
  in
  Alcotest.(check (list hit_testable))
    (c.file ^ ": mem engine = reference, bit-identical")
    reference mem;
  let (_ : int * int * int) = run_filtered c ~db ~q ~cfg ~tree ~reference in
  List.iter
    (fun layout ->
      let dt, _pool =
        Storage.Disk_tree.of_tree ~layout ~block_size:32 ~capacity:8 tree
      in
      let disk =
        Oasis.Engine.Disk.run
          (Oasis.Engine.Disk.create ~source:dt ~db ~query:q cfg)
      in
      Alcotest.(check (list hit_testable))
        (c.file ^ ": disk engine = reference, bit-identical")
        reference disk)
    [ Storage.Disk_tree.Position_indexed; Storage.Disk_tree.Clustered ];
  let sharded () =
    Oasis.Parallel.Mem.run
      (Oasis.Parallel.Mem.create_sharded ~pool:(Lazy.force pool) ~shards:2 ~db
         ~query:q cfg)
  in
  let s1 = sharded () in
  Alcotest.(check (list (pair int int)))
    (c.file ^ ": sharded (seq, score) multiset = reference")
    (seq_scores reference) (seq_scores s1);
  Alcotest.(check bool)
    (c.file ^ ": sharded stream non-increasing")
    true (nonincreasing s1);
  Alcotest.(check (list hit_testable))
    (c.file ^ ": sharded stream reproducible")
    s1 (sharded ())

let test_corpus_covers_edges () =
  (* The corpus must stay adversarial: keep at least one empty-stream
     case, one tie pile-up, one query longer than every target, and
     both alphabets, so a future pruning "optimization" cannot quietly
     drop the cases that made these files worth committing. *)
  let cases = Lazy.force cases in
  Alcotest.(check bool) "at least 20 cases" true (List.length cases >= 20);
  let some p = List.exists p cases in
  Alcotest.(check bool) "an empty-hit case" true
    (some (fun c ->
         let db = db_of_case c in
         let tree = Suffix_tree.Ukkonen.build db in
         Oasis.Engine.Mem.run
           (Oasis.Engine.Mem.create ~source:tree ~db ~query:(query_of_case c)
              (cfg_of_case c))
         = []));
  Alcotest.(check bool) "a score-tie case (>= 4 equal scores)" true
    (some (fun c ->
         let db = db_of_case c in
         let tree = Suffix_tree.Ukkonen.build db in
         let hits =
           Oasis.Engine.Mem.run
             (Oasis.Engine.Mem.create ~source:tree ~db
                ~query:(query_of_case c) (cfg_of_case c))
         in
         List.exists
           (fun h ->
             List.length
               (List.filter
                  (fun h' -> h'.Oasis.Hit.score = h.Oasis.Hit.score)
                  hits)
             >= 4)
           hits));
  Alcotest.(check bool) "a query longer than every target" true
    (some (fun c ->
         List.for_all (fun s -> String.length s < String.length c.query) c.seqs));
  Alcotest.(check bool) "both alphabets represented" true
    (some (fun c -> c.alphabet == Bioseq.Alphabet.dna)
    && some (fun c -> c.alphabet == Bioseq.Alphabet.protein))

let test_filter_branches_covered () =
  (* The exactness guarantee of the q-gram tier is only as good as the
     branches the corpus drives through it: across all cases the tier
     must have tested subtrees, settled some on the coarse count-only
     bound, settled some only after the refined per-position pass, and
     left some tested-but-unsettled (the no-skip path). A corpus edit
     that silences any of these turns the filter tests into no-ops. *)
  let tested, coarse, refined =
    List.fold_left
      (fun (t, cg, r) c ->
        let db = db_of_case c in
        let q = query_of_case c in
        let cfg = cfg_of_case c in
        let tree = Suffix_tree.Ukkonen.build db in
        let reference =
          Oasis.Reference.Mem.run
            (Oasis.Reference.Mem.create ~source:tree ~db ~query:q cfg)
        in
        let t', cg', r' = run_filtered c ~db ~q ~cfg ~tree ~reference in
        (t + t', cg + cg', r + r'))
      (0, 0, 0) (Lazy.force cases)
  in
  Alcotest.(check bool) "some subtrees tested" true (tested > 0);
  Alcotest.(check bool) "some subtrees settled by the coarse bound" true
    (coarse > 0);
  Alcotest.(check bool) "some subtrees settled only by the refined bound" true
    (refined > 0);
  Alcotest.(check bool) "some tested subtrees survive (no-skip branch)" true
    (tested > coarse + refined)

let () =
  let case_tests =
    List.map
      (fun c ->
        Alcotest.test_case c.file `Quick (fun () -> check_case c))
      (Lazy.force cases)
  in
  let suite =
    [
      ("cases", case_tests);
      ( "coverage",
        [
          Alcotest.test_case "corpus stays adversarial" `Quick
            test_corpus_covers_edges;
          Alcotest.test_case "q-gram tier branches all exercised" `Quick
            test_filter_branches_covered;
        ] );
    ]
  in
  let failed =
    Fun.protect
      ~finally:(fun () ->
        if Lazy.is_val pool then Oasis.Domain_pool.shutdown (Lazy.force pool))
      (fun () ->
        match Alcotest.run ~and_exit:false "corpus" suite with
        | () -> false
        | exception Alcotest.Test_error -> true)
  in
  if failed then exit 1
