type format = Tabular | Pairwise | Summary

type row = {
  query : Bioseq.Sequence.t;
  target : Bioseq.Sequence.t;
  alignment : Align.Alignment.t;
  evalue : float option;
  bit_score : float option;
}

let row ~matrix ~gap ?params ?db_symbols ~db ~query ~seq_index () =
  let target = Bioseq.Database.seq db seq_index in
  let alignment = Align.Smith_waterman.align ~matrix ~gap ~query ~target in
  let evalue, bit_score =
    match params with
    | None -> (None, None)
    | Some p ->
      let n =
        match db_symbols with
        | Some n -> n
        | None -> Bioseq.Database.total_symbols db
      in
      ( Some
          (Scoring.Karlin.evalue p
             ~m:(Bioseq.Sequence.length query)
             ~n ~score:alignment.Align.Alignment.score),
        Some (Scoring.Karlin.bit_score p alignment.Align.Alignment.score) )
  in
  { query; target; alignment; evalue; bit_score }

(* Walk operations with query/target cursors. *)
let fold_ops r ~init ~f =
  let a = r.alignment in
  let acc = ref init in
  let q = ref a.Align.Alignment.query_start in
  let t = ref a.Align.Alignment.target_start in
  List.iter
    (fun op ->
      acc := f !acc ~q:!q ~t:!t op;
      match op with
      | Align.Alignment.Replace ->
        incr q;
        incr t
      | Align.Alignment.Insert -> incr q
      | Align.Alignment.Delete -> incr t)
    a.Align.Alignment.ops;
  !acc

let identities r =
  fold_ops r ~init:0 ~f:(fun acc ~q ~t op ->
      match op with
      | Align.Alignment.Replace
        when Bioseq.Sequence.get r.query q = Bioseq.Sequence.get r.target t ->
        acc + 1
      | _ -> acc)

let mismatches r =
  fold_ops r ~init:0 ~f:(fun acc ~q ~t op ->
      match op with
      | Align.Alignment.Replace
        when Bioseq.Sequence.get r.query q <> Bioseq.Sequence.get r.target t ->
        acc + 1
      | _ -> acc)

let gap_opens r =
  let count, _ =
    List.fold_left
      (fun (count, prev) op ->
        match op with
        | Align.Alignment.Insert | Align.Alignment.Delete ->
          if prev = Some op then (count, prev) else (count + 1, Some op)
        | Align.Alignment.Replace -> (count, Some op))
      (0, None) r.alignment.Align.Alignment.ops
  in
  count

let alignment_length r = List.length r.alignment.Align.Alignment.ops

let percent_identity r =
  let len = alignment_length r in
  if len = 0 then 0.
  else 100. *. float_of_int (identities r) /. float_of_int len

let float_or_star = function
  | None -> "*"
  | Some v -> Printf.sprintf "%.3g" v

let tabular_line r =
  let a = r.alignment in
  (* 1-based inclusive coordinates, BLAST convention. *)
  Printf.sprintf "%s\t%s\t%.2f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s"
    (Bioseq.Sequence.id r.query)
    (Bioseq.Sequence.id r.target)
    (percent_identity r) (alignment_length r) (mismatches r) (gap_opens r)
    (a.Align.Alignment.query_start + 1)
    a.Align.Alignment.query_stop
    (a.Align.Alignment.target_start + 1)
    a.Align.Alignment.target_stop (float_or_star r.evalue)
    (float_or_star r.bit_score)

let summary_line rank r =
  Printf.sprintf "%4d. %-24s score %-5d%s%s" rank
    (Bioseq.Sequence.id r.target)
    r.alignment.Align.Alignment.score
    (match r.evalue with
    | None -> ""
    | Some e -> Printf.sprintf "  E=%-10.3g" e)
    (Printf.sprintf "  (%d/%d identities, %.0f%%)" (identities r)
       (alignment_length r) (percent_identity r))

let pairwise_block buf r =
  let a = r.alignment in
  Buffer.add_string buf
    (Printf.sprintf ">%s%s\n"
       (Bioseq.Sequence.id r.target)
       (match Bioseq.Sequence.description r.target with
       | "" -> ""
       | d -> " " ^ d));
  Buffer.add_string buf
    (Printf.sprintf " Score = %d%s%s\n" a.Align.Alignment.score
       (match r.bit_score with
       | None -> ""
       | Some b -> Printf.sprintf " (%.1f bits)" b)
       (match r.evalue with
       | None -> ""
       | Some e -> Printf.sprintf ", Expect = %.3g" e));
  Buffer.add_string buf
    (Printf.sprintf " Identities = %d/%d (%.0f%%), Gaps = %d\n\n" (identities r)
       (alignment_length r) (percent_identity r)
       (alignment_length r - identities r - mismatches r));
  (* Aligned blocks of 60 columns. *)
  let qrow = Buffer.create 64
  and mid = Buffer.create 64
  and trow = Buffer.create 64 in
  let _ =
    fold_ops r ~init:() ~f:(fun () ~q ~t op ->
        match op with
        | Align.Alignment.Replace ->
          let qc = Bioseq.Sequence.char_at r.query q
          and tc = Bioseq.Sequence.char_at r.target t in
          Buffer.add_char qrow qc;
          Buffer.add_char mid (if qc = tc then '|' else ' ');
          Buffer.add_char trow tc
        | Align.Alignment.Insert ->
          Buffer.add_char qrow (Bioseq.Sequence.char_at r.query q);
          Buffer.add_char mid ' ';
          Buffer.add_char trow '-'
        | Align.Alignment.Delete ->
          Buffer.add_char qrow '-';
          Buffer.add_char mid ' ';
          Buffer.add_char trow (Bioseq.Sequence.char_at r.target t))
  in
  let qtext = Buffer.contents qrow
  and mtext = Buffer.contents mid
  and ttext = Buffer.contents trow in
  let len = String.length qtext in
  let rec blocks pos qpos tpos =
    if pos < len then begin
      let w = min 60 (len - pos) in
      let qconsumed =
        String.fold_left
          (fun acc c -> if c = '-' then acc else acc + 1)
          0
          (String.sub qtext pos w)
      in
      let tconsumed =
        String.fold_left
          (fun acc c -> if c = '-' then acc else acc + 1)
          0
          (String.sub ttext pos w)
      in
      Buffer.add_string buf
        (Printf.sprintf "Query %5d %s %d\n" (qpos + 1) (String.sub qtext pos w)
           (qpos + qconsumed));
      Buffer.add_string buf
        (Printf.sprintf "            %s\n" (String.sub mtext pos w));
      Buffer.add_string buf
        (Printf.sprintf "Sbjct %5d %s %d\n\n" (tpos + 1) (String.sub ttext pos w)
           (tpos + tconsumed));
      blocks (pos + w) (qpos + qconsumed) (tpos + tconsumed)
    end
  in
  blocks 0 r.alignment.Align.Alignment.query_start
    r.alignment.Align.Alignment.target_start

let to_string format rows =
  let buf = Buffer.create 1024 in
  (match format with
  | Tabular ->
    List.iter
      (fun r ->
        Buffer.add_string buf (tabular_line r);
        Buffer.add_char buf '\n')
      rows
  | Summary ->
    List.iteri
      (fun i r ->
        Buffer.add_string buf (summary_line (i + 1) r);
        Buffer.add_char buf '\n')
      rows
  | Pairwise -> List.iter (pairwise_block buf) rows);
  Buffer.contents buf

let pp format ppf rows = Format.pp_print_string ppf (to_string format rows)
