(** Terminal (ASCII) charts for the benchmark harness — so the
    regenerated experiments read as figures, like the paper's, not just
    tables.

    Multiple series share one plot; marks use one character per series.
    Axes can be linear or base-10 logarithmic (the paper plots most
    times on a log scale). *)

type scale = Linear | Log10

type series = {
  label : string;
  mark : char;
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** [render ~title series] draws all series on one canvas
    (default 64x16 plot area) with axis ticks and a legend. Points with
    non-positive coordinates on a log axis are dropped. Returns [""] if
    no point remains. Overlapping marks show the later series'
    character. *)
