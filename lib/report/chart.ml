type scale = Linear | Log10

type series = {
  label : string;
  mark : char;
  points : (float * float) list;
}

let transform = function
  | Linear -> fun v -> v
  | Log10 -> fun v -> log10 v

let usable scale (x, y) =
  (match scale with Linear, _ -> true | Log10, _ -> x > 0.)
  |> fun ok_x ->
  ok_x && (match scale with _, Linear -> true | _, Log10 -> y > 0.)

let tick_label scale v =
  match scale with
  | Linear ->
    if Float.abs v >= 1000. then Printf.sprintf "%.3g" v
    else Printf.sprintf "%.4g" v
  | Log10 -> Printf.sprintf "1e%.0f" v

let render ?(width = 64) ?(height = 16) ?(x_scale = Linear) ?(y_scale = Linear)
    ?(x_label = "") ?(y_label = "") ~title series =
  let fx = transform x_scale and fy = transform y_scale in
  let points =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun p ->
            if usable (x_scale, y_scale) p then
              Some (s.mark, fx (fst p), fy (snd p))
            else None)
          s.points)
      series
  in
  if points = [] then ""
  else begin
    let xs = List.map (fun (_, x, _) -> x) points in
    let ys = List.map (fun (_, _, y) -> y) points in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let x_lo = fmin xs and x_hi = fmax xs in
    let y_lo = fmin ys and y_hi = fmax ys in
    let pad v_lo v_hi =
      if v_hi > v_lo then (v_lo, v_hi) else (v_lo -. 0.5, v_hi +. 0.5)
    in
    let x_lo, x_hi = pad x_lo x_hi and y_lo, y_hi = pad y_lo y_hi in
    let canvas = Array.make_matrix height width ' ' in
    let col x =
      let c =
        int_of_float
          (Float.round ((x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1)))
      in
      max 0 (min (width - 1) c)
    in
    let row y =
      let r =
        int_of_float
          (Float.round
             ((y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1)))
      in
      (* Row 0 is the top of the canvas. *)
      height - 1 - max 0 (min (height - 1) r)
    in
    List.iter (fun (mark, x, y) -> canvas.(row y).(col x) <- mark) points;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    if y_label <> "" then begin
      Buffer.add_string buf ("  [y: " ^ y_label ^ "]");
      Buffer.add_char buf '\n'
    end;
    let y_tick r =
      (* Value at canvas row [r]. *)
      y_lo
      +. ((y_hi -. y_lo) *. float_of_int (height - 1 - r) /. float_of_int (height - 1))
    in
    Array.iteri
      (fun r line ->
        let label =
          if r = 0 || r = height - 1 || r = height / 2 then
            Printf.sprintf "%8s |" (tick_label y_scale (y_tick r))
          else Printf.sprintf "%8s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%8s  %-*s%s\n" ""
         (width - String.length (tick_label x_scale x_hi))
         (tick_label x_scale x_lo)
         (tick_label x_scale x_hi));
    if x_label <> "" then
      Buffer.add_string buf (Printf.sprintf "%8s  [x: %s]\n" "" x_label);
    Buffer.add_string buf "  legend:";
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf "  %c %s" s.mark s.label))
      series;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
