(** Search-result rendering in the formats bioinformaticians expect.

    Any search method's hits reduce to (query, target sequence, best
    local alignment); this module recomputes the alignment and renders:

    - {!Tabular}: BLAST "outfmt 6" — 12 tab-separated columns
      (qseqid, sseqid, pident, length, mismatch, gapopen, qstart, qend,
      sstart, send, evalue, bitscore), 1-based inclusive coordinates,
      ["*"] for missing statistics;
    - {!Pairwise}: a classic text report with aligned sequence blocks;
    - {!Summary}: one line per hit. *)

type format = Tabular | Pairwise | Summary

type row = {
  query : Bioseq.Sequence.t;
  target : Bioseq.Sequence.t;
  alignment : Align.Alignment.t;
  evalue : float option;
  bit_score : float option;
}

val row :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  ?params:Scoring.Karlin.params ->
  ?db_symbols:int ->
  db:Bioseq.Database.t ->
  query:Bioseq.Sequence.t ->
  seq_index:int ->
  unit ->
  row
(** Recompute the best local alignment of [query] against sequence
    [seq_index] and derive statistics when [params] (and [db_symbols],
    defaulting to the database total) are available. *)

(** {1 Alignment statistics} *)

val identities : row -> int
val mismatches : row -> int

val gap_opens : row -> int
(** Number of gap runs (not gap symbols), as in BLAST's gapopen
    column. *)

val alignment_length : row -> int
(** Total operations (aligned columns including gaps). *)

val percent_identity : row -> float

(** {1 Rendering} *)

val to_string : format -> row list -> string

val pp : format -> Format.formatter -> row list -> unit
