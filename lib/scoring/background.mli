(** Background residue frequencies, used by Karlin–Altschul statistics
    and by the synthetic workload generators. *)

val robinson_robinson : float array
(** Robinson & Robinson (1991) amino-acid frequencies, indexed by the
    codes of {!Bioseq.Alphabet.protein}; ambiguity codes and [*] have
    frequency 0. Sums to 1. *)

val dna_uniform : float array
(** Uniform [ACGT] (0.25 each), [N] = 0, over {!Bioseq.Alphabet.dna}. *)

val dna_gc : gc:float -> float array
(** GC-biased nucleotide frequencies: [C] and [G] get [gc/2] each,
    [A]/[T] get [(1-gc)/2]. Raises [Invalid_argument] unless
    [0 < gc < 1]. *)

val uniform : Bioseq.Alphabet.t -> float array
(** Uniform over all real symbols of an alphabet. *)

val of_database : Bioseq.Database.t -> float array
(** Empirical symbol frequencies of a database (terminators excluded). *)
