(** Position-specific scoring matrices (profiles).

    A PSSM generalizes a substitution matrix for one fixed query: column
    [i] scores every alphabet symbol against query position [i]
    independently, the scoring model behind PSI-BLAST-style profile
    searches. The OASIS engine and the Smith-Waterman scanner both
    accept profiles ([Oasis.Engine.create_profile],
    [Align.Smith_waterman.search_profile]) and remain exact for them —
    position-specific scores change nothing in the algorithm's
    correctness argument. *)

type t

val length : t -> int
(** Number of profile columns (the "query length"). *)

val alphabet : t -> Bioseq.Alphabet.t

val make : alphabet:Bioseq.Alphabet.t -> int array array -> t
(** [make ~alphabet rows] with one row of [Alphabet.size] scores per
    profile column. Raises [Invalid_argument] on a ragged or empty
    table. *)

val of_query : matrix:Submat.t -> Bioseq.Sequence.t -> t
(** The degenerate profile equivalent to searching [query] under
    [matrix]: column [i] is the matrix row of the [i]-th query symbol.
    Profile searches with this PSSM return exactly the plain-matrix
    results (property-tested). *)

val of_sequences :
  ?pseudocount:float ->
  freqs:float array ->
  scale:float ->
  Bioseq.Sequence.t list ->
  t
(** Build a log-odds profile from equal-length, pre-aligned family
    members: column [i] scores symbol [b] as
    [round (scale * ln ((count_i(b) + pseudocount * freqs(b)) /
    ((n + pseudocount) * freqs(b))))]. [pseudocount] defaults to 1.
    Raises [Invalid_argument] on an empty list, unequal lengths or a
    symbol with zero background frequency appearing in the input. *)

val score : t -> int -> int -> int
(** [score p i code]: the score of aligning symbol [code] against
    profile column [i] (0-based). The terminator code scores
    {!Submat.neg_inf}. *)

val best_at : t -> int -> int
(** Maximum score of column [i] over real symbols. *)

val rows_flat : t -> int array
(** Row-major [length * (size + 1)] table for hot loops, terminator
    column included (= {!Submat.neg_inf}):
    [score p i c = (rows_flat p).((i * (size + 1)) + c)]. Read-only. *)

val cols_flat : t -> int array
(** Symbol-major [(size + 1) * length] transpose of {!rows_flat}:
    [score p i c = (cols_flat p).((c * length p) + i)]. A DP column
    aligns one fixed database symbol [c] against every query position,
    so this layout makes the engine's inner loop a stride-1 scan of one
    contiguous row. Read-only. *)

val dim : t -> int
(** [Alphabet.size + 1]. *)

val pp : Format.formatter -> t -> unit
