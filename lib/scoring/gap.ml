type t =
  | Linear of { penalty : int }
  | Affine of { open_cost : int; extend_cost : int }

let linear penalty =
  if penalty <= 0 then invalid_arg "Gap.linear: penalty must be positive";
  Linear { penalty }

let affine ~open_cost ~extend_cost =
  if open_cost <= 0 || extend_cost <= 0 then
    invalid_arg "Gap.affine: costs must be positive";
  Affine { open_cost; extend_cost }

let is_linear = function Linear _ -> true | Affine _ -> false

let open_score = function
  | Linear { penalty } -> -penalty
  | Affine { open_cost; extend_cost } -> -(open_cost + extend_cost)

let extend_score = function
  | Linear { penalty } -> -penalty
  | Affine { extend_cost; _ } -> -extend_cost

let run_score g k =
  if k < 1 then invalid_arg "Gap.run_score: run length must be >= 1";
  open_score g + ((k - 1) * extend_score g)

let pp ppf = function
  | Linear { penalty } -> Format.fprintf ppf "linear(%d)" penalty
  | Affine { open_cost; extend_cost } ->
    Format.fprintf ppf "affine(open=%d, extend=%d)" open_cost extend_cost
