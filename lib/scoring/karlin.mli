(** Karlin–Altschul statistics for ungapped local alignment scores.

    For a substitution matrix [S] and background frequencies [p], the
    number of chance local alignments scoring at least [s] between a
    query of length [m] and a database of total length [n] is
    approximately [E = K * m * n * exp (-lambda * s)] (the paper's
    Equation 2, with [K = gamma] and [lambda = xi]). [lambda] is the
    unique positive root of [sum_ij p_i p_j exp (lambda * S_ij) = 1];
    [K] is computed with the convolution method of Karlin & Altschul
    (1990), as in NCBI's [BlastKarlinLHtoK].

    The paper's evaluation uses a fixed gap model; like classic BLAST
    with non-default gap costs, we reuse the ungapped parameters as an
    approximation when converting E-values to score thresholds
    (Equation 3), which only shifts thresholds by a constant factor and
    preserves the experiment shapes. *)

type params = { lambda : float; k : float; h : float }
(** [lambda] and [k] as above; [h] is the relative entropy of the
    aligned-pair distribution in nats. *)

exception Unsupported_matrix of string
(** Raised by {!estimate} when no positive [lambda] exists: the expected
    pair score is non-negative, or no positive score is reachable. *)

val estimate :
  ?max_convolutions:int -> matrix:Submat.t -> freqs:float array -> unit -> params
(** [estimate ~matrix ~freqs ()] computes the parameters.
    [freqs] is indexed by symbol code and must cover the real symbols of
    the matrix alphabet; it is renormalized over its positive entries.
    [max_convolutions] (default 60) bounds the K summation. *)

val fit_gumbel : m:int -> n:int -> int list -> params
(** [fit_gumbel ~m ~n scores] estimates [lambda] and [K] from observed
    maximum local-alignment scores of independent random (query, target)
    pairs of lengths [m] and [n], by the method of moments on the Gumbel
    law [P(S < x) = exp (-K m n e^(-lambda x))]: with Euler's constant
    [g], [mean = mu + g / lambda], [variance = pi^2 / (6 lambda^2)] and
    [mu = ln (K m n) / lambda]. This is how {e gapped} parameters — for
    which no analytic theory exists — are calibrated in practice
    (Altschul & Gish 1996); the simulation driver lives in
    [Workload.Calibrate]. The returned [h] is 0 (not estimable from
    score maxima). Raises [Invalid_argument] on fewer than 10 scores or
    zero variance. *)

val evalue : params -> m:int -> n:int -> score:int -> float
(** Equation 2. *)

val score_for_evalue : params -> m:int -> n:int -> evalue:float -> int
(** Equation 3: the smallest integer score whose E-value is at most
    [evalue]; at least 1. *)

val bit_score : params -> int -> float
(** [(lambda * s - ln k) / ln 2]. *)

val effective_lengths :
  params -> m:int -> n:int -> num_sequences:int -> int * int
(** BLAST's edge-effect correction (Altschul & Gish 1996): an alignment
    cannot start within the expected HSP length
    [l = ln (K m n) / h] of a sequence end, so the search space is
    really [(m - l) * (n - num_sequences * l)]. Returns the corrected
    [(m', n')], floored at [1] and [num_sequences] respectively.
    Requires [h > 0] (analytic parameters). *)

val pp_params : Format.formatter -> params -> unit
