type t = {
  alphabet : Bioseq.Alphabet.t;
  name : string;
  dim : int;
  flat : int array; (* dim * dim, row-major; terminator row/col = neg_inf *)
}

let neg_inf = min_int / 4

let make ~alphabet ~name rows =
  let size = Bioseq.Alphabet.size alphabet in
  if Array.length rows <> size then
    invalid_arg
      (Printf.sprintf "Submat.make: %d rows for alphabet of size %d"
         (Array.length rows) size);
  let dim = size + 1 in
  let flat = Array.make (dim * dim) neg_inf in
  Array.iteri
    (fun a row ->
      if Array.length row <> size then
        invalid_arg (Printf.sprintf "Submat.make: row %d has wrong length" a);
      Array.iteri (fun b s -> flat.((a * dim) + b) <- s) row)
    rows;
  { alphabet; name; dim; flat }

let of_function ~alphabet ~name f =
  let size = Bioseq.Alphabet.size alphabet in
  make ~alphabet ~name
    (Array.init size (fun a -> Array.init size (fun b -> f a b)))

let unit_edit alphabet =
  of_function ~alphabet ~name:"unit" (fun a b -> if a = b then 1 else -1)

let alphabet m = m.alphabet
let name m = m.name
let dim m = m.dim
let score m a b = m.flat.((a * m.dim) + b)
let scores_flat m = m.flat

let fold_real_pairs m f init =
  let size = m.dim - 1 in
  let acc = ref init in
  for a = 0 to size - 1 do
    for b = 0 to size - 1 do
      acc := f !acc a b (score m a b)
    done
  done;
  !acc

let best_against m a =
  let size = m.dim - 1 in
  let best = ref neg_inf in
  for b = 0 to size - 1 do
    if score m a b > !best then best := score m a b
  done;
  !best

let max_entry m = fold_real_pairs m (fun acc _ _ s -> max acc s) neg_inf
let min_entry m = fold_real_pairs m (fun acc _ _ s -> min acc s) max_int

let is_symmetric m =
  fold_real_pairs m (fun acc a b s -> acc && s = score m b a) true

let pp ppf m =
  Format.fprintf ppf "%s over %a" m.name Bioseq.Alphabet.pp m.alphabet
