(** Substitution matrices over an {!Bioseq.Alphabet}.

    A matrix assigns an integer score to every ordered pair of symbol
    codes. The terminator code scores {!neg_inf} against everything, so
    dynamic programs over concatenated databases never extend an
    alignment across a sequence boundary. *)

type t

val neg_inf : int
(** Sentinel for "impossible": large enough in magnitude to dominate any
    realistic alignment score, small enough that adding a handful of
    matrix entries cannot overflow. *)

(** {1 Construction} *)

val make : alphabet:Bioseq.Alphabet.t -> name:string -> int array array -> t
(** [make ~alphabet ~name rows] where [rows] is a [size x size] score
    table indexed by symbol code. Raises [Invalid_argument] on dimension
    mismatch. *)

val of_function :
  alphabet:Bioseq.Alphabet.t -> name:string -> (int -> int -> int) -> t
(** Tabulates [f a b] for every pair of real symbol codes. *)

val unit_edit : Bioseq.Alphabet.t -> t
(** The paper's Table 1 generalized to any alphabet: +1 for an exact
    match, -1 otherwise. *)

(** {1 Lookup} *)

val alphabet : t -> Bioseq.Alphabet.t
val name : t -> string

val dim : t -> int
(** [size alphabet + 1]; row/column [dim - 1] is the terminator. *)

val score : t -> int -> int -> int
(** [score m a b] for symbol codes [a], [b] (terminator allowed). *)

val scores_flat : t -> int array
(** The underlying [dim*dim] row-major table, for hot DP loops:
    [score m a b = (scores_flat m).((a * dim m) + b)]. Read-only. *)

val best_against : t -> int -> int
(** [best_against m a] is [max_b (score m a b)] over real symbols [b].
    Used by the OASIS heuristic vector. *)

val max_entry : t -> int
(** Largest score over all pairs of real symbols. *)

val min_entry : t -> int
(** Smallest score over all pairs of real symbols. *)

val is_symmetric : t -> bool

val pp : Format.formatter -> t -> unit
