type t = {
  alphabet : Bioseq.Alphabet.t;
  length : int;
  dim : int; (* size + 1; the extra column is the terminator *)
  flat : int array; (* length * dim, row-major (position-major) *)
  cols : int array; (* dim * length, symbol-major transpose of [flat] *)
}

let length p = p.length
let alphabet p = p.alphabet
let dim p = p.dim
let rows_flat p = p.flat
let cols_flat p = p.cols

let make ~alphabet rows =
  let size = Bioseq.Alphabet.size alphabet in
  let m = Array.length rows in
  if m = 0 then invalid_arg "Pssm.make: empty profile";
  let dim = size + 1 in
  let flat = Array.make (m * dim) Submat.neg_inf in
  Array.iteri
    (fun i row ->
      if Array.length row <> size then
        invalid_arg (Printf.sprintf "Pssm.make: row %d has wrong length" i);
      Array.iteri (fun b s -> flat.((i * dim) + b) <- s) row)
    rows;
  let cols = Array.make (dim * m) Submat.neg_inf in
  for i = 0 to m - 1 do
    for b = 0 to dim - 1 do
      cols.((b * m) + i) <- flat.((i * dim) + b)
    done
  done;
  { alphabet; length = m; dim; flat; cols }

let of_query ~matrix query =
  let alphabet = Submat.alphabet matrix in
  if
    Bioseq.Alphabet.name (Bioseq.Sequence.alphabet query)
    <> Bioseq.Alphabet.name alphabet
  then invalid_arg "Pssm.of_query: alphabet mismatch";
  let size = Bioseq.Alphabet.size alphabet in
  make ~alphabet
    (Array.init (Bioseq.Sequence.length query) (fun i ->
         let qi = Bioseq.Sequence.get query i in
         Array.init size (fun b -> Submat.score matrix qi b)))

let of_sequences ?(pseudocount = 1.0) ~freqs ~scale seqs =
  (match seqs with [] -> invalid_arg "Pssm.of_sequences: no sequences" | _ -> ());
  let first = List.hd seqs in
  let alphabet = Bioseq.Sequence.alphabet first in
  let m = Bioseq.Sequence.length first in
  List.iter
    (fun s ->
      if Bioseq.Sequence.length s <> m then
        invalid_arg "Pssm.of_sequences: sequences have different lengths")
    seqs;
  let size = Bioseq.Alphabet.size alphabet in
  let n = float_of_int (List.length seqs) in
  make ~alphabet
    (Array.init m (fun i ->
         let counts = Array.make size 0 in
         List.iter
           (fun s ->
             let c = Bioseq.Sequence.get s i in
             counts.(c) <- counts.(c) + 1)
           seqs;
         Array.init size (fun b ->
             let fb = freqs.(b) in
             if fb <= 0. then begin
               if counts.(b) > 0 then
                 invalid_arg
                   (Printf.sprintf
                      "Pssm.of_sequences: symbol %c appears but has zero \
                       background frequency"
                      (Bioseq.Alphabet.to_char alphabet b));
               (* Unobservable symbol: strongly disfavored. *)
               int_of_float (Float.round (scale *. log (pseudocount /. (n +. pseudocount))))
             end
             else
               let odds =
                 (float_of_int counts.(b) +. (pseudocount *. fb))
                 /. ((n +. pseudocount) *. fb)
               in
               int_of_float (Float.round (scale *. log odds)))))

let score p i code = p.flat.((i * p.dim) + code)

let best_at p i =
  let best = ref Submat.neg_inf in
  for b = 0 to p.dim - 2 do
    if score p i b > !best then best := score p i b
  done;
  !best

let pp ppf p =
  Format.fprintf ppf "pssm(%d columns over %a)" p.length Bioseq.Alphabet.pp
    p.alphabet
