let robinson_robinson =
  (* Robinson & Robinson (1991), order ARNDCQEGHILKMFPSTWYV; the four
     trailing protein-alphabet codes (B, Z, X, stop) get frequency 0. *)
  let twenty =
    [|
      0.07805; 0.05129; 0.04487; 0.05364; 0.01925; 0.04264; 0.06295; 0.07377;
      0.02199; 0.05142; 0.09019; 0.05744; 0.02243; 0.03856; 0.05203; 0.07120;
      0.05841; 0.01330; 0.03216; 0.06441;
    |]
  in
  let total = Array.fold_left ( +. ) 0. twenty in
  let size = Bioseq.Alphabet.size Bioseq.Alphabet.protein in
  Array.init size (fun i -> if i < 20 then twenty.(i) /. total else 0.)

let dna_uniform =
  let size = Bioseq.Alphabet.size Bioseq.Alphabet.dna in
  Array.init size (fun i -> if i < 4 then 0.25 else 0.)

let dna_gc ~gc =
  if gc <= 0. || gc >= 1. then invalid_arg "Background.dna_gc: gc out of (0,1)";
  let size = Bioseq.Alphabet.size Bioseq.Alphabet.dna in
  (* DNA alphabet order is ACGTN. *)
  Array.init size (function
    | 0 | 3 -> (1. -. gc) /. 2.
    | 1 | 2 -> gc /. 2.
    | _ -> 0.)

let uniform alphabet =
  let size = Bioseq.Alphabet.size alphabet in
  Array.make size (1. /. float_of_int size)

let of_database db =
  let alphabet = Bioseq.Database.alphabet db in
  let size = Bioseq.Alphabet.size alphabet in
  let counts = Array.make size 0 in
  let data = Bioseq.Database.data db in
  (* Bound by data_length: the buffer may carry append slack. *)
  for i = 0 to Bioseq.Database.data_length db - 1 do
    let code = Char.code (Bytes.get data i) in
    if code < size then counts.(code) <- counts.(code) + 1
  done;
  let total = float_of_int (Bioseq.Database.total_symbols db) in
  Array.map (fun c -> float_of_int c /. total) counts
