(** Standard substitution matrices.

    Protein matrices are over {!Bioseq.Alphabet.protein} (24 symbols in
    NCBI order [ARNDCQEGHILKMFPSTWYVBZX*]); DNA matrices over
    {!Bioseq.Alphabet.dna} ([ACGTN]).

    The tables are transcriptions of the standard NCBI score files;
    tests validate symmetry, diagonals and Karlin–Altschul statistics
    rather than byte-exactness. *)

val blosum62 : Submat.t
(** BLOSUM62, the general-purpose protein matrix. *)

val pam30 : Submat.t
(** PAM30, the recommended matrix for short protein queries and the one
    used throughout the paper's evaluation (§4.2). *)

val dna_unit : Submat.t
(** The paper's Table 1 over DNA: +1 match / -1 mismatch ([N] scores -1
    against everything including itself). *)

val dna_blast : Submat.t
(** blastn-style rewards: +2 match / -3 mismatch, [N] always -3. *)

val protein_unit : Submat.t
(** +1/-1 over the protein alphabet. *)

val by_name : string -> Submat.t option
(** Lookup by lowercase name ("blosum62", "pam30", "dna-unit",
    "dna-blast", "protein-unit") for CLI use. *)

val all : Submat.t list
