type params = { lambda : float; k : float; h : float }

exception Unsupported_matrix of string

let unsupported fmt =
  Printf.ksprintf (fun msg -> raise (Unsupported_matrix msg)) fmt

(* Distribution of the score of one aligned pair drawn from the
   background: probabilities indexed by [score - low]. *)
type score_dist = { low : int; probs : float array }

let score_distribution ~matrix ~freqs =
  let size = Bioseq.Alphabet.size (Submat.alphabet matrix) in
  if Array.length freqs < size then
    invalid_arg "Karlin.estimate: frequency array too short";
  let total =
    let acc = ref 0. in
    for a = 0 to size - 1 do
      if freqs.(a) > 0. then acc := !acc +. freqs.(a)
    done;
    !acc
  in
  if total <= 0. then invalid_arg "Karlin.estimate: all frequencies are zero";
  let low = ref max_int and high = ref min_int in
  for a = 0 to size - 1 do
    for b = 0 to size - 1 do
      if freqs.(a) > 0. && freqs.(b) > 0. then begin
        let s = Submat.score matrix a b in
        if s < !low then low := s;
        if s > !high then high := s
      end
    done
  done;
  let probs = Array.make (!high - !low + 1) 0. in
  for a = 0 to size - 1 do
    for b = 0 to size - 1 do
      if freqs.(a) > 0. && freqs.(b) > 0. then begin
        let s = Submat.score matrix a b in
        let p = freqs.(a) /. total *. (freqs.(b) /. total) in
        probs.(s - !low) <- probs.(s - !low) +. p
      end
    done
  done;
  { low = !low; probs }

let expected_score d =
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (p *. float_of_int (d.low + i))) d.probs;
  !acc

(* sum_s q_s * exp (lambda * s) *)
let moment d lambda =
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      if p > 0. then acc := !acc +. (p *. exp (lambda *. float_of_int (d.low + i))))
    d.probs;
  !acc

let solve_lambda d =
  (* f lambda = moment - 1 with f 0 = 0, f' 0 = E[s] < 0, f (+inf) = +inf:
     bracket the positive root then bisect. *)
  let f lambda = moment d lambda -. 1. in
  let rec find_hi hi =
    if hi > 1e4 then unsupported "no positive lambda below 1e4"
    else if f hi > 0. then hi
    else find_hi (hi *. 2.)
  in
  let hi = find_hi 0.5 in
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if f mid > 0. then bisect lo mid (iters - 1) else bisect mid hi (iters - 1)
  in
  bisect 0. hi 200

let relative_entropy d lambda =
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      if p > 0. then begin
        let s = float_of_int (d.low + i) in
        acc := !acc +. (p *. s *. exp (lambda *. s))
      end)
    d.probs;
  lambda *. !acc

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let score_gcd d =
  let g = ref 0 in
  Array.iteri
    (fun i p ->
      let s = d.low + i in
      if p > 0. && s <> 0 then g := gcd !g (abs s))
    d.probs;
  if !g = 0 then 1 else !g

(* Convolve [p] (offset [p_low]) with the base distribution. *)
let convolve (p_low, p) d =
  let n = Array.length p and m = Array.length d.probs in
  let out = Array.make (n + m - 1) 0. in
  for i = 0 to n - 1 do
    if p.(i) > 0. then
      for j = 0 to m - 1 do
        out.(i + j) <- out.(i + j) +. (p.(i) *. d.probs.(j))
      done
  done;
  (p_low + d.low, out)

(* Karlin & Altschul (1990): K = d * lambda * exp (-2 sigma)
   / (h * (1 - exp (-lambda * d))) with
   sigma = sum_j (1/j) * (sum_{s<0} P_j(s) e^{lambda s} + P(S_j >= 0)). *)
let solve_k d lambda h max_convolutions =
  let delta = score_gcd d in
  let sigma = ref 0. in
  let current = ref (d.low, Array.copy d.probs) in
  (try
     for j = 1 to max_convolutions do
       let low, probs = !current in
       let term = ref 0. in
       Array.iteri
         (fun i p ->
           if p > 0. then begin
             let s = low + i in
             if s < 0 then term := !term +. (p *. exp (lambda *. float_of_int s))
             else term := !term +. p
           end)
         probs;
       sigma := !sigma +. (!term /. float_of_int j);
       if !term < 1e-12 then raise Exit;
       if j < max_convolutions then current := convolve !current d
     done
   with Exit -> ());
  let delta_f = float_of_int delta in
  delta_f *. lambda *. exp (-2. *. !sigma)
  /. (h *. (1. -. exp (-.lambda *. delta_f)))

let estimate ?(max_convolutions = 60) ~matrix ~freqs () =
  let d = score_distribution ~matrix ~freqs in
  if expected_score d >= 0. then
    unsupported "expected pair score %.4f is non-negative" (expected_score d);
  if d.low + Array.length d.probs - 1 <= 0 then
    unsupported "no positive score is reachable";
  let lambda = solve_lambda d in
  let h = relative_entropy d lambda in
  let k = solve_k d lambda h max_convolutions in
  { lambda; k; h }

let euler_gamma = 0.5772156649015329

let fit_gumbel ~m ~n scores =
  let k = List.length scores in
  if k < 10 then invalid_arg "Karlin.fit_gumbel: need at least 10 scores";
  let fk = float_of_int k in
  let mean =
    List.fold_left (fun acc s -> acc +. float_of_int s) 0. scores /. fk
  in
  let var =
    List.fold_left
      (fun acc s ->
        let d = float_of_int s -. mean in
        acc +. (d *. d))
      0. scores
    /. (fk -. 1.)
  in
  if var <= 0. then invalid_arg "Karlin.fit_gumbel: zero score variance";
  let lambda = Float.pi /. sqrt (6. *. var) in
  let mu = mean -. (euler_gamma /. lambda) in
  let kparam = exp (lambda *. mu) /. (float_of_int m *. float_of_int n) in
  { lambda; k = kparam; h = 0. }

let evalue p ~m ~n ~score =
  p.k *. float_of_int m *. float_of_int n *. exp (-.p.lambda *. float_of_int score)

let score_for_evalue p ~m ~n ~evalue =
  if evalue <= 0. then invalid_arg "Karlin.score_for_evalue: evalue <= 0";
  let s =
    log (p.k *. float_of_int m *. float_of_int n /. evalue) /. p.lambda
  in
  max 1 (int_of_float (ceil s))

let bit_score p s = ((p.lambda *. float_of_int s) -. log p.k) /. log 2.

let effective_lengths p ~m ~n ~num_sequences =
  if p.h <= 0. then invalid_arg "Karlin.effective_lengths: h must be positive";
  let l =
    log (p.k *. float_of_int m *. float_of_int n) /. p.h
  in
  let l = max 0. l in
  let m' = max 1 (m - int_of_float l) in
  let n' = max num_sequences (n - int_of_float (float_of_int num_sequences *. l)) in
  (m', n')

let pp_params ppf p =
  Format.fprintf ppf "lambda=%.4f K=%.4f H=%.4f" p.lambda p.k p.h
