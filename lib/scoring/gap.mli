(** Gap penalty models.

    The paper's evaluation uses the fixed (linear) model: a run of [k]
    insertions or deletions contributes [-k * penalty] to the alignment
    score. The affine model ([-(open_cost + k * extend_cost)] per run)
    is supported by the Smith-Waterman implementation (Gotoh) but not by
    the OASIS engine, matching the paper's implementation (§4.2). *)

type t =
  | Linear of { penalty : int }
  | Affine of { open_cost : int; extend_cost : int }

val linear : int -> t
(** [linear penalty]; [penalty] must be positive. *)

val affine : open_cost:int -> extend_cost:int -> t
(** Both costs must be positive. *)

val is_linear : t -> bool

val open_score : t -> int
(** Score contribution of the first symbol of a gap run (negative). *)

val extend_score : t -> int
(** Score contribution of each subsequent gap symbol (negative). *)

val run_score : t -> int -> int
(** [run_score g k] is the (negative) total contribution of a run of
    [k >= 1] gap symbols. *)

val pp : Format.formatter -> t -> unit
