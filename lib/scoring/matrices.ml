(* Matrix literals are kept as whitespace-separated text blocks (one row
   per line, NCBI residue order) and parsed once at startup: easier to
   proofread against the published score files than nested array
   syntax. *)

let parse_table ~alphabet ~name text =
  let size = Bioseq.Alphabet.size alphabet in
  let rows =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun line -> line <> "")
    |> List.map (fun line ->
           String.split_on_char ' ' line
           |> List.filter (fun tok -> tok <> "")
           |> List.map int_of_string
           |> Array.of_list)
    |> Array.of_list
  in
  if Array.length rows <> size then
    invalid_arg (Printf.sprintf "matrix %s: %d rows" name (Array.length rows));
  Submat.make ~alphabet ~name rows

(* BLOSUM62, NCBI order ARNDCQEGHILKMFPSTWYVBZX* *)
let blosum62_text =
  {|
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
|}

(* PAM30, NCBI order ARNDCQEGHILKMFPSTWYVBZX* *)
let pam30_text =
  {|
  6  -7  -4  -3  -6  -4  -2  -2  -7  -5  -6  -7  -5  -8  -2   0  -1 -13  -8  -2  -3  -3  -3 -17
 -7   8  -6 -10  -8  -2  -9  -9  -2  -5  -8   0  -4  -9  -4  -3  -6  -2 -10  -8  -7  -4  -6 -17
 -4  -6   8   2 -11  -3  -2  -3   0  -5  -7  -1  -9  -9  -6   0  -2  -8  -4  -8   6  -3  -3 -17
 -3 -10   2   8 -14  -2   2  -3  -4  -7 -12  -4 -11 -15  -8  -4  -5 -15 -11  -8   6   1  -5 -17
 -6  -8 -11 -14  10 -14 -14  -9  -7  -6 -15 -14 -13 -13  -8  -3  -8 -15  -4  -6 -12 -14  -9 -17
 -4  -2  -3  -2 -14   8   1  -7   1  -8  -5  -3  -4 -13  -3  -5  -5 -13 -12  -7  -3   6  -5 -17
 -2  -9  -2   2 -14   1   8  -4  -5  -5  -9  -4  -7 -14  -5  -4  -6 -17  -8  -6   1   6  -5 -17
 -2  -9  -3  -3  -9  -7  -4   6  -9 -11 -10  -7  -8  -9  -6  -2  -6 -15 -14  -5  -3  -5  -5 -17
 -7  -2   0  -4  -7   1  -5  -9   9  -9  -6  -6 -10  -6  -4  -6  -7  -7  -3  -6  -1  -1  -5 -17
 -5  -5  -5  -7  -6  -8  -5 -11  -9   8  -1  -6  -1  -2  -8  -7  -2 -14  -6   2  -6  -6  -5 -17
 -6  -8  -7 -12 -15  -5  -9 -10  -6  -1   7  -8   1  -3  -7  -8  -7  -6  -7  -2  -9  -7  -6 -17
 -7   0  -1  -4 -14  -3  -4  -7  -6  -6  -8   7  -2 -14  -6  -4  -3 -12  -9  -9  -2  -4  -5 -17
 -5  -4  -9 -11 -13  -4  -7  -8 -10  -1   1  -2  11  -4  -8  -5  -4 -13 -11  -1 -10  -5  -5 -17
 -8  -9  -9 -15 -13 -13 -14  -9  -6  -2  -3 -14  -4   9 -10  -6  -9  -4   2  -8 -10 -13  -8 -17
 -2  -4  -6  -8  -8  -3  -5  -6  -4  -8  -7  -6  -8 -10   8  -2  -4 -14 -13  -6  -7  -4  -5 -17
  0  -3   0  -4  -3  -5  -4  -2  -6  -7  -8  -4  -5  -6  -2   6   0  -5  -7  -6  -1  -5  -3 -17
 -1  -6  -2  -5  -8  -5  -6  -6  -7  -2  -7  -3  -4  -9  -4   0   7 -13  -6  -3  -3  -6  -4 -17
-13  -2  -8 -15 -15 -13 -17 -15  -7 -14  -6 -12 -13  -4 -14  -5 -13  13  -5 -15 -10 -14 -11 -17
 -8 -10  -4 -11  -4 -12  -8 -14  -3  -6  -7  -9 -11   2 -13  -7  -6  -5  10  -7  -6  -9  -7 -17
 -2  -8  -8  -8  -6  -7  -6  -5  -6   2  -2  -9  -1  -8  -6  -6  -3 -15  -7   7  -8  -6  -5 -17
 -3  -7   6   6 -12  -3   1  -3  -1  -6  -9  -2 -10 -10  -7  -1  -3 -10  -6  -8   6   0  -5 -17
 -3  -4  -3   1 -14   6   6  -5  -1  -6  -7  -4  -5 -13  -4  -5  -6 -14  -9  -6   0   6  -5 -17
 -3  -6  -3  -5  -9  -5  -5  -5  -5  -5  -6  -5  -5  -8  -5  -3  -4 -11  -7  -5  -5  -5  -5 -17
-17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17 -17   1
|}

let blosum62 =
  parse_table ~alphabet:Bioseq.Alphabet.protein ~name:"blosum62" blosum62_text

let pam30 =
  parse_table ~alphabet:Bioseq.Alphabet.protein ~name:"pam30" pam30_text

let dna_unit =
  (* N (code 4) never matches, even against itself. *)
  Submat.of_function ~alphabet:Bioseq.Alphabet.dna ~name:"dna-unit" (fun a b ->
      if a = b && a <> 4 then 1 else -1)

let dna_blast =
  (* N is code 4 in the DNA alphabet and never matches. *)
  Submat.of_function ~alphabet:Bioseq.Alphabet.dna ~name:"dna-blast"
    (fun a b -> if a = b && a <> 4 then 2 else -3)

let protein_unit =
  let m = Submat.unit_edit Bioseq.Alphabet.protein in
  Submat.of_function
    ~alphabet:(Submat.alphabet m)
    ~name:"protein-unit"
    (Submat.score m)

let all = [ blosum62; pam30; dna_unit; dna_blast; protein_unit ]

let by_name name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun m -> Submat.name m = name) all
