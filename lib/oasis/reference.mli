(** Executable specification of the search engine.

    This is the straightforward, allocating implementation the optimized
    {!Engine} kernel was derived from: every child expansion copies the
    parent's DP column into a fresh array, the priority queue stores
    boxed entry records, the profile is scanned row-major, and the upper
    bound is recomputed in a second pass when an arc is consumed. It is
    kept — unoptimized, byte for byte in behaviour — for two jobs:

    - {e oracle}: property tests assert that {!Engine} produces a
      bit-identical hit stream (same hits, same order, same tie-breaks,
      same budget outcomes) on random workloads;
    - {e baseline}: the bench harness measures the pooled kernel's
      columns/sec and allocation rate against it on the same queries.

    Do not use it for real searches, and do not "fix" it to match a
    changed [Engine] — change it only when the intended semantics
    change, in which case the stream-equality tests re-verify the
    optimized kernel against it. *)

module Make (S : Source.S) : sig
  type t

  val create :
    source:S.t ->
    db:Bioseq.Database.t ->
    query:Bioseq.Sequence.t ->
    Engine.config ->
    t

  val create_profile :
    source:S.t ->
    db:Bioseq.Database.t ->
    profile:Scoring.Pssm.t ->
    ?options:Engine.options ->
    ?budget:Engine.budget ->
    gap:Scoring.Gap.t ->
    min_score:int ->
    unit ->
    t

  val next : t -> Hit.t option
  val run : ?limit:int -> t -> Hit.t list
  val peek_bound : t -> int option
  val outcome : t -> Engine.outcome
  val columns : t -> int
  val nodes_expanded : t -> int
end

module Mem : module type of Make (Source.Mem)
