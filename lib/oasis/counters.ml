type t = {
  columns : int;
  nodes_expanded : int;
  nodes_enqueued : int;
  nodes_pruned : int;
  max_queue : int;
  pool_reused : int;
  pool_live : int;
  pool_peak_live : int;
  pool_peak_bytes : int;
  minor_words : float;
  io_hits : int;
  io_misses : int;
}

let zero =
  {
    columns = 0;
    nodes_expanded = 0;
    nodes_enqueued = 0;
    nodes_pruned = 0;
    max_queue = 0;
    pool_reused = 0;
    pool_live = 0;
    pool_peak_live = 0;
    pool_peak_bytes = 0;
    minor_words = 0.;
    io_hits = 0;
    io_misses = 0;
  }

let merge a b =
  {
    columns = a.columns + b.columns;
    nodes_expanded = a.nodes_expanded + b.nodes_expanded;
    nodes_enqueued = a.nodes_enqueued + b.nodes_enqueued;
    nodes_pruned = a.nodes_pruned + b.nodes_pruned;
    max_queue = (if a.max_queue >= b.max_queue then a.max_queue else b.max_queue);
    pool_reused = a.pool_reused + b.pool_reused;
    pool_live = (if a.pool_live >= b.pool_live then a.pool_live else b.pool_live);
    pool_peak_live =
      (if a.pool_peak_live >= b.pool_peak_live then a.pool_peak_live
       else b.pool_peak_live);
    pool_peak_bytes =
      (if a.pool_peak_bytes >= b.pool_peak_bytes then a.pool_peak_bytes
       else b.pool_peak_bytes);
    minor_words = a.minor_words +. b.minor_words;
    io_hits = a.io_hits + b.io_hits;
    io_misses = a.io_misses + b.io_misses;
  }

let sum cs = List.fold_left merge zero cs

let pp ppf c =
  Format.fprintf ppf
    "columns %d, expanded %d, enqueued %d, pruned %d, max queue %d, pool \
     reused %d / live %d / peak %d (%d bytes), minor words %.0f, io %d hits / \
     %d misses"
    c.columns c.nodes_expanded c.nodes_enqueued c.nodes_pruned c.max_queue
    c.pool_reused c.pool_live c.pool_peak_live c.pool_peak_bytes c.minor_words
    c.io_hits c.io_misses
