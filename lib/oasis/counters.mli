(** Search-effort counters, shared by every engine instantiation and by
    the aggregation layers above them ({!Batch}, {!Parallel}).

    A counters record mixes two kinds of field, and aggregating them
    correctly requires treating them differently — which is why
    {!merge} exists instead of ad-hoc per-field addition:

    - {e additive} totals ([columns], [nodes_expanded], [nodes_enqueued],
      [nodes_pruned], [pool_reused], [minor_words], [io_hits],
      [io_misses]): work done; summing
      across engines gives the work of the whole search.
    - {e gauges and peaks} ([max_queue], [pool_live], [pool_peak_live],
      [pool_peak_bytes]): sizes of one engine's own structures. Each
      engine owns a separate column arena and queue, so adding peaks
      would claim a single pool reached the sum of several distinct
      high-water marks — it never did. {!merge} takes the maximum: the
      largest single-engine footprint, which is the number capacity
      planning actually needs (every engine must fit, and concurrent
      engines are sized independently). *)

type t = {
  columns : int;  (** DP columns filled — the Figure 4 metric *)
  nodes_expanded : int;
  nodes_enqueued : int;
  nodes_pruned : int;  (** children discarded as unviable *)
  max_queue : int;
  pool_reused : int;
      (** column-arena acquisitions served by recycling a released slot
          (vs growing the backing store) *)
  pool_live : int;  (** arena slots held by queued viable nodes *)
  pool_peak_live : int;
  pool_peak_bytes : int;
      (** arena backing-store size — its high-water mark, since the
          store never shrinks *)
  minor_words : float;
      (** minor-heap words allocated since engine creation, {e on the
          engine's own domain} ([Gc.minor_words] is per-domain in
          OCaml 5, which is what makes these safely additive across a
          shard pool) *)
  io_hits : int;
      (** buffer-pool accesses served from a resident block (additive;
          always 0 for in-memory sources) *)
  io_misses : int;
      (** buffer-pool accesses that had to read the device (additive;
          always 0 for in-memory sources) *)
}

val zero : t
(** Identity of {!merge}. *)

val merge : t -> t -> t
(** Pointwise aggregate: additive fields sum, gauge/peak fields take
    the maximum (see the module comment for why). Associative and
    commutative with {!zero} as identity (unit-tested). *)

val sum : t list -> t
(** [List.fold_left merge zero]. *)

val pp : Format.formatter -> t -> unit
