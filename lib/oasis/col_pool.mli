(** Column arena: a growable pool of fixed-width integer buffers backing
    the engine's DP columns.

    Search nodes reference their column(s) by {e slot} instead of owning
    an OCaml array: expanding a child acquires a slot, the DP runs in
    place inside the shared backing store, and the slot is released the
    moment the node is pruned, accepted, or fully expanded. Steady-state
    searches therefore allocate nothing per column — the backing store
    only grows when the live frontier outgrows every previous high-water
    mark, and released slots are recycled LIFO (the hottest slot is
    reused first, which keeps the working set cache-resident).

    The pool is single-owner and not thread-safe; each engine instance
    creates its own (parallel batch search runs one engine per domain).

    Safety of recycling rests on the engine's node lifetimes: a slot is
    referenced only by the one queued node that acquired it, children
    copy the parent column {e before} the parent's slot is released, and
    accepted nodes carry no slot at all. *)

type t

val create : width:int -> t
(** [create ~width] makes an empty pool of [width]-integer slots.
    Raises [Invalid_argument] if [width <= 0]. *)

val width : t -> int

val reset : t -> width:int -> unit
(** [reset t ~width] empties the pool and re-slots its backing store at
    a (possibly different) slot width, keeping the allocated cells — the
    point of an engine {e session}: a long-lived serving process reuses
    one arena across queries of different lengths without re-growing it
    from zero. Every outstanding slot id is invalidated and all
    statistics restart at zero ({!capacity_bytes} alone carries over,
    since the backing store is retained). Raises [Invalid_argument] if
    [width <= 0]. *)

val reserve : t -> int -> unit
(** [reserve t slots] grows the backing store to hold at least [slots]
    slots up front. Purely an allocation hint: the fused batch kernel's
    slots are [k] columns wide, so letting the store double its way up
    would copy the entire arena several times during the first
    expansions. No-op when the pool is already that large. *)

val ensure_free : t -> int -> unit
(** [ensure_free t n] grows the backing store just enough that the next
    [n] {!acquire}s are served without reallocating it — so a caller
    may hoist {!data} across a run of acquisitions (the blocked engine
    reserves one sibling block's worth of slots up front). Amortized
    doubling; no-op when [n] released or fresh slots are already
    available. *)

val acquire : t -> int
(** Hand out a slot id, recycling a released slot when one is free and
    growing the backing store (amortized doubling) otherwise. Slot
    contents are whatever the previous owner left — callers initialise
    via {!fill} or {!blit}. *)

val release : t -> int -> unit
(** Return a slot to the free list. Raises [Invalid_argument] on a slot
    that was never handed out. Releasing the same slot twice is not
    detected — the engine's node lifetimes make it impossible. *)

val blit : t -> src:int -> dst:int -> unit
(** Copy one slot's contents onto another (the parent-to-child column
    copy). *)

val fill : t -> int -> int -> unit
(** [fill t slot v] sets every cell of [slot] to [v]. *)

val data : t -> int array
(** The current backing store; index cell [i] of a slot as
    [(data t).(base t slot + i)]. The array is replaced on growth, so
    re-read it after any {!acquire}. *)

val base : t -> int -> int
(** [base t slot = slot * width t]: the slot's offset into {!data}. *)

(** {2 Statistics} *)

val live : t -> int
(** Slots currently acquired and not yet released. *)

val peak_live : t -> int
val reused : t -> int
(** Acquisitions served by recycling a released slot. *)

val acquired : t -> int
(** Total acquisitions. *)

val capacity_bytes : t -> int
(** Size of the backing store in bytes — the pool's high-water mark,
    since the store never shrinks. *)
