type t = {
  mu : Mutex.t;
  work_ready : Condition.t;  (** signalled when a task or stop arrives *)
  idle : Condition.t;  (** signalled when [busy + queued] may have hit 0 *)
  tasks : (unit -> unit) Queue.t;
  mutable busy : int;  (** tasks currently executing *)
  mutable failed : exn option;  (** first task exception, kept for [wait] *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let worker t () =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.tasks && not t.stopping do
      Condition.wait t.work_ready t.mu
    done;
    match Queue.take_opt t.tasks with
    | None ->
      (* Stopping and drained. *)
      Mutex.unlock t.mu;
      ()
    | Some task ->
      t.busy <- t.busy + 1;
      Mutex.unlock t.mu;
      (try task ()
       with exn ->
         locked t (fun () ->
             if t.failed = None then t.failed <- Some exn));
      locked t (fun () ->
          t.busy <- t.busy - 1;
          if t.busy = 0 && Queue.is_empty t.tasks then
            Condition.broadcast t.idle);
      loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  let t =
    {
      mu = Mutex.create ();
      work_ready = Condition.create ();
      idle = Condition.create ();
      tasks = Queue.create ();
      busy = 0;
      failed = None;
      stopping = false;
      workers = [||];
    }
  in
  t.workers <- Array.init domains (fun _ -> Domain.spawn (worker t));
  t

let size t = Array.length t.workers

let submit t task =
  locked t (fun () ->
      if t.stopping then invalid_arg "Domain_pool.submit: pool is shut down";
      Queue.add task t.tasks;
      Condition.signal t.work_ready)

let wait t =
  let reraise =
    locked t (fun () ->
        while t.busy > 0 || not (Queue.is_empty t.tasks) do
          Condition.wait t.idle t.mu
        done;
        let e = t.failed in
        t.failed <- None;
        e)
  in
  match reraise with None -> () | Some exn -> raise exn

let shutdown t =
  let joinable =
    locked t (fun () ->
        if t.stopping then [||]
        else begin
          t.stopping <- true;
          Condition.broadcast t.work_ready;
          t.workers
        end)
  in
  Array.iter Domain.join joinable;
  if joinable <> [||] then wait t

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
