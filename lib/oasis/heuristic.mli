(** The OASIS heuristic vector (Algorithm 2).

    [H.(i)] is an upper bound on the score any alignment can gain by
    consuming more of the query after position [i] (1-based; [H.(m)] is
    0 by definition since nothing remains). The A* priority of a search
    node is [max_i (B.(i) + H.(i))]. *)

type style =
  | Safe
      (** Per-symbol optimistic gain
          [c_j = max (best replacement for q_j) (gap extension)], summed
          with a clamp at zero:
          [H.(i) = max 0 (H.(i+1) + c.(i+1))]. Admissible for every
          substitution matrix, including ones with all-negative rows. *)
  | Paper
      (** The paper's §3.1 vector: the plain running sum of best
          replacement scores, no gap term, no clamp. Admissible only
          when every query symbol has a non-negative best replacement
          (true for PAM/BLOSUM diagonals); kept for the ablation
          benchmarks. *)

val vector :
  style:style ->
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  int array
(** Length [m+1]. Raises [Invalid_argument] if [style = Paper] would be
    inadmissible for this query/matrix pair. *)

val vector_of_profile :
  style:style -> gap:Scoring.Gap.t -> Scoring.Pssm.t -> int array
(** The same vector for a position-specific profile: [c_j] is the best
    score of profile column [j] (or the gap extension under [Safe]).
    [Paper] style raises [Invalid_argument] when some column's best
    score is negative. *)

val is_admissible_paper :
  matrix:Scoring.Submat.t -> query:Bioseq.Sequence.t -> bool
(** Whether every query symbol's best replacement score is
    non-negative. *)
