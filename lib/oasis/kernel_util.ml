(* Helpers shared by the single-query engine kernel ([Engine]) and the
   fused multi-query batch kernel ([Batch_kernel]). *)

(* Debug escape hatch: set OASIS_CHECKED_KERNEL=1 to validate kernel
   index ranges once per DP column. The inner loops use unsafe array
   accesses whose indices all lie inside the validated ranges, so a
   per-access check would only re-prove the same bounds at ~5x the
   memory-access count. *)
let checked =
  match Sys.getenv_opt "OASIS_CHECKED_KERNEL" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* In-place ascending sort of [a.(lo .. hi)] — quicksort with an
   insertion-sort base case. The emit paths sort a reused scratch
   prefix, which [Array.sort] cannot do without slicing. *)
let rec sort_range (a : int array) lo hi =
  if hi - lo < 12 then
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    let swap i j =
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    in
    let mid = (lo + hi) / 2 in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi) < a.(lo) then swap hi lo;
    if a.(hi) < a.(mid) then swap hi mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    sort_range a lo !j;
    sort_range a !i hi
  end
