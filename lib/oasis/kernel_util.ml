(* Helpers shared by the single-query engine kernel ([Engine]) and the
   fused multi-query batch kernel ([Batch_kernel]). *)

(* Debug escape hatch: set OASIS_CHECKED_KERNEL=1 to validate kernel
   index ranges once per DP column. The inner loops use unsafe array
   accesses whose indices all lie inside the validated ranges, so a
   per-access check would only re-prove the same bounds at ~5x the
   memory-access count. *)
let checked =
  match Sys.getenv_opt "OASIS_CHECKED_KERNEL" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Sibling arcs are expanded in blocks of up to this many: the block's
   children are gathered from the tree in one pass, then their DP runs
   back-to-back against the parent column while the PSSM rows and the
   parent's cells are hot in cache. 16 covers a full protein fan-out
   (20 residues + terminator splits into at most two blocks) without
   outgrowing the scratch arrays' cache footprint. *)
let block_arcs = 16

(* Per-symbol maximum of a symbol-major profile: [smax.(c)] is the best
   score symbol [c] achieves against any query position. One O(dim * m)
   pass at engine creation buys the ALAE-style pre-DP bound an O(1)
   replacement term per sibling arc. *)
let smax_of_cols ~cols ~m ~dim =
  let smax = Array.make dim Scoring.Submat.neg_inf in
  for c = 0 to dim - 1 do
    let row = c * m in
    let best = ref Scoring.Submat.neg_inf in
    for i = 0 to m - 1 do
      let s = cols.(row + i) in
      if s > !best then best := s
    done;
    smax.(c) <- !best
  done;
  smax

(* Minimum one-step drop of the admissible vector:
   [min over i in 1..m of hvec.(i-1) - hvec.(i)] (0 for an empty
   query). Both heuristic constructors guarantee this is >= the gap
   extension score, which is what makes the parent-aggregate bound
   cover insert chains with no slack term — the engine checks the
   inequality at creation rather than assuming it. *)
let min_hdrop hvec =
  let m = Array.length hvec - 1 in
  let d = ref max_int in
  for i = 1 to m do
    let s = hvec.(i - 1) - hvec.(i) in
    if s < !d then d := s
  done;
  if !d = max_int then 0 else !d

(* In-place ascending sort of [a.(lo .. hi)] — quicksort with an
   insertion-sort base case. The emit paths sort a reused scratch
   prefix, which [Array.sort] cannot do without slicing. *)
let rec sort_range (a : int array) lo hi =
  if hi - lo < 12 then
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    let swap i j =
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    in
    let mid = (lo + hi) / 2 in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi) < a.(lo) then swap hi lo;
    if a.(hi) < a.(mid) then swap hi mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    sort_range a lo !j;
    sort_range a !i hi
  end
