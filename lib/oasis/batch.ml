type result = {
  query_index : int;
  hits : Hit.t list;
  counters : Engine.counters;
}

let search_one ~tree ~db cfg query_index query =
  let engine = Engine.Mem.create ~source:tree ~db ~query cfg in
  let hits = Engine.Mem.run engine in
  { query_index; hits; counters = Engine.Mem.counters engine }

let run_on_pool pool ~tree ~db ~queries cfg =
  let queries = Array.of_list queries in
  let results = Array.make (Array.length queries) None in
  Array.iteri
    (fun i query ->
      Domain_pool.submit pool (fun () ->
          results.(i) <- Some (search_one ~tree ~db cfg i query)))
    queries;
  Domain_pool.wait pool;
  Array.to_list results
  |> List.map (function Some r -> r | None -> assert false)

let run ?(domains = 1) ?pool ~tree ~db ~queries cfg =
  match pool with
  | Some pool -> run_on_pool pool ~tree ~db ~queries cfg
  | None ->
    if domains < 1 then invalid_arg "Batch.run: domains < 1";
    if domains = 1 then
      List.mapi (fun i q -> search_one ~tree ~db cfg i q) queries
    else
      Domain_pool.with_pool ~domains (fun pool ->
          run_on_pool pool ~tree ~db ~queries cfg)
