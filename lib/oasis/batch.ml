type result = {
  query_index : int;
  hits : Hit.t list;
  counters : Engine.counters;
  outcome : Engine.outcome;
}

let totals results =
  List.fold_left
    (fun acc r -> Counters.merge acc r.counters)
    Counters.zero results

(* k = 1 rides the committed single-query kernel — the fused kernel's
   replay layer would only add bookkeeping, and keeping the one-query
   path byte-for-byte the benchmarked engine keeps the kernel baseline
   meaningful. *)
let search_one ?filter ~tree ~db cfg query_index query =
  let engine = Engine.Mem.create ?filter ~source:tree ~db ~query cfg in
  let hits = Engine.Mem.run engine in
  {
    query_index;
    hits;
    counters = Engine.Mem.counters engine;
    outcome = Engine.Mem.outcome engine;
  }

(* One fused chunk: a single tree traversal serving the whole chunk
   (see [Batch_kernel]); per-query streams are bit-identical to the
   single-engine runs. *)
let search_chunk ?filter ~tree ~db cfg base queries =
  match Array.length queries with
  | 1 -> [ search_one ?filter ~tree ~db cfg base queries.(0) ]
  | _ ->
    let k = Batch_kernel.Mem.create ?filter ~source:tree ~db ~queries cfg in
    Batch_kernel.Mem.run k;
    List.init (Array.length queries) (fun q ->
        {
          query_index = base + q;
          hits = Batch_kernel.Mem.hits k q;
          counters = Batch_kernel.Mem.counters k q;
          outcome = Batch_kernel.Mem.outcome k q;
        })

let chunks ~batch_size queries =
  if batch_size < 1 then invalid_arg "Batch.run: batch_size < 1";
  if batch_size > 512 then invalid_arg "Batch.run: batch_size > 512";
  let queries = Array.of_list queries in
  let n = Array.length queries in
  let rec go base acc =
    if base >= n then List.rev acc
    else
      let len = min batch_size (n - base) in
      go (base + len) ((base, Array.sub queries base len) :: acc)
  in
  go 0 []

let run_on_pool pool ?filter ~batch_size ~tree ~db ~queries cfg =
  let chunks = Array.of_list (chunks ~batch_size queries) in
  let results = Array.make (Array.length chunks) [] in
  Array.iteri
    (fun i (base, chunk) ->
      Domain_pool.submit pool (fun () ->
          results.(i) <- search_chunk ?filter ~tree ~db cfg base chunk))
    chunks;
  Domain_pool.wait pool;
  (* Chunks cover the query list in order, so concatenation restores
     per-query order directly — no option round-trip. *)
  List.concat (Array.to_list results)

let run ?(domains = 1) ?pool ?(batch_size = 16) ?filter ~tree ~db ~queries cfg
    =
  match pool with
  | Some pool -> run_on_pool pool ?filter ~batch_size ~tree ~db ~queries cfg
  | None ->
    if domains < 1 then invalid_arg "Batch.run: domains < 1";
    if domains = 1 then
      List.concat_map
        (fun (base, chunk) -> search_chunk ?filter ~tree ~db cfg base chunk)
        (chunks ~batch_size queries)
    else
      Domain_pool.with_pool ~domains (fun pool ->
          run_on_pool pool ?filter ~batch_size ~tree ~db ~queries cfg)

(* Merge per-part complete streams for one query into the stream the
   unsharded engine would produce. Each input is sorted by
   non-increasing score already (every part ran a full engine or fused
   kernel), so this is a k-way merge; equal scores release the
   lowest-indexed part first, which is exactly the sharded
   coordinator's release rule ([Parallel], DESIGN.md §2e) specialised
   to complete streams. *)
let merge_streams streams =
  let heads = Array.map (fun s -> s) streams in
  let out = ref [] in
  let rec step () =
    let best = ref (-1) in
    let best_score = ref min_int in
    Array.iteri
      (fun i s ->
        match s with
        | [] -> ()
        | h :: _ -> if h.Hit.score > !best_score then begin
            best := i;
            best_score := h.Hit.score
          end)
      heads;
    if !best >= 0 then begin
      (match heads.(!best) with
      | h :: rest ->
        out := h :: !out;
        heads.(!best) <- rest
      | [] -> assert false);
      step ()
    end
  in
  step ();
  List.rev !out

let merge_outcomes outcomes =
  Array.fold_left
    (fun acc o ->
      match (acc, o) with
      | Engine.Exhausted { remaining_bound = a }, Engine.Exhausted { remaining_bound = b }
        ->
        Engine.Exhausted { remaining_bound = max a b }
      | (Engine.Exhausted _ as e), _ | _, (Engine.Exhausted _ as e) -> e
      | Engine.Searching, _ | _, Engine.Searching -> Engine.Searching
      | Engine.Complete, Engine.Complete -> Engine.Complete)
    Engine.Complete outcomes
