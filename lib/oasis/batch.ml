type result = {
  query_index : int;
  hits : Hit.t list;
  counters : Engine.counters;
}

let search_one ~tree ~db cfg (query_index, query) =
  let engine = Engine.Mem.create ~source:tree ~db ~query cfg in
  let hits = Engine.Mem.run engine in
  { query_index; hits; counters = Engine.Mem.counters engine }

let run ?(domains = 1) ~tree ~db ~queries cfg =
  if domains < 1 then invalid_arg "Batch.run: domains < 1";
  let indexed = List.mapi (fun i q -> (i, q)) queries in
  let results =
    if domains = 1 then List.map (search_one ~tree ~db cfg) indexed
    else begin
      (* Round-robin split; the tree and database are only read. *)
      let chunks = Array.make domains [] in
      List.iter
        (fun ((i, _) as entry) ->
          chunks.(i mod domains) <- entry :: chunks.(i mod domains))
        indexed;
      let workers =
        Array.map
          (fun chunk ->
            Domain.spawn (fun () -> List.map (search_one ~tree ~db cfg) chunk))
          chunks
      in
      Array.fold_left (fun acc w -> Domain.join w @ acc) [] workers
    end
  in
  List.sort (fun a b -> Int.compare a.query_index b.query_index) results
