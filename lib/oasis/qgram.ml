(* Query-side q-gram filter state — see the .mli for the admissibility
   contract and DESIGN.md §2k for the full derivation. *)

type t = {
  pf : Quasar.Profile.t;
  qgid : int array;  (** gram id per query window, -1 for unusable windows *)
  memo : int array;  (** per profile entry: G, -1 = not yet counted *)
  a : int;  (** best substitution entry over the query's rows *)
  cmin : int;  (** min score lost per defect column, vs the [a] ceiling *)
  q : int;
  m : int;
  ext_ok_all : bool;  (** query's max extension reach fits the horizon *)
  enabled : bool;
}

let enabled t = t.enabled
let cutoff t = Quasar.Profile.cutoff t.pf

let make ~profile ~query ~matrix ~gap =
  let pf = profile in
  let q = Quasar.Profile.q pf in
  let asize = Quasar.Profile.alphabet_size pf in
  let m = Bioseq.Sequence.length query in
  let nq = m - q + 1 in
  let qcodes = Array.init m (Bioseq.Sequence.get query) in
  (* a: the ceiling any column can score. dmis: the best mismatch entry
     — what a defect column can still score, so a defect loses at least
     a - dmis vs the ceiling (and at least the gap-extend penalty when
     it is a gap column instead). *)
  let a = ref min_int and dmis = ref min_int in
  Array.iter
    (fun qc ->
      if qc >= 0 && qc < asize then
        for c = 0 to asize - 1 do
          let s = Scoring.Submat.score matrix qc c in
          if s > !a then a := s;
          if c <> qc && s > !dmis then dmis := s
        done)
    qcodes;
  let a = max 0 !a in
  let gep = -Scoring.Gap.extend_score gap in
  let cmin =
    if !dmis = min_int then gep (* no mismatch possible: defects are gaps *)
    else max 0 (min (a - !dmis) gep)
  in
  let qgid =
    Array.init (max nq 0) (fun i -> Quasar.Profile.gram_of_codes pf qcodes i)
  in
  let memo = Array.make (Quasar.Profile.num_nodes pf) (-1) in
  (* Reach: an alignment scoring > 0 consumes at most m query-matched
     columns (each <= a) and a * m / gep further database-gap columns;
     its last gram window needs q - 1 more symbols. *)
  let ext_cap = if a = 0 then q else m + (a * m / gep) + q in
  let ext_ok_all = ext_cap <= Quasar.Profile.horizon pf in
  let enabled = nq >= 1 && gep >= 1 in
  { pf; qgid; memo; a; cmin; q; m; ext_ok_all; enabled }

let walk t path depth =
  let pf = t.pf in
  let rec go cur d =
    if d = depth then cur
    else if d > depth then -1
    else
      let nxt = Quasar.Profile.child pf cur path.(d) in
      if nxt < 0 then -1 else go nxt (Quasar.Profile.dend pf nxt)
  in
  go (Quasar.Profile.root pf) 0

let child t id sym = Quasar.Profile.child t.pf id sym

let usable t id = t.ext_ok_all || Quasar.Profile.ext t.pf id <= Quasar.Profile.horizon t.pf

let gcount t id =
  let g = t.memo.(id) in
  if g >= 0 then g
  else begin
    let g = ref 0 in
    Array.iter
      (fun gid -> if gid >= 0 && Quasar.Profile.has_gram t.pf id gid then incr g)
      t.qgid;
    t.memo.(id) <- !g;
    !g
  end

(* E(g, l): sup over segment lengths e' <= l and defect counts d of
   a * e' - cmin * d subject to the q-gram lemma feasibility
   e' - q + 1 - q * d <= g (at most g query windows can be exact).
   For e' <= g + q - 1 the constraint is slack: value a * e'. Beyond,
   each extra q-block of columns buys a * q but forces one more defect
   (-cmin); the sup over partial blocks is the running max of the
   endpoint value (fend, with ceiling division charging the partial
   block's defect) and the last full-block boundary (fblock, the peak
   when a partial block cannot pay for its defect). *)
let ebound t ~g ~l =
  if l <= 0 || t.a = 0 then 0
  else begin
    let a = t.a and cmin = t.cmin and q = t.q in
    let gq1 = g + q - 1 in
    let k = l - gq1 in
    if k <= 0 then a * l
    else begin
      let fend = (a * k) - (cmin * ((k + q - 1) / q)) in
      let fblock = if a * q >= cmin then k / q * ((a * q) - cmin) else 0 in
      let e = (a * gq1) + max 0 (max fend fblock) in
      max 0 (min e (a * l))
    end
  end

let shard_cap t =
  if not t.enabled then max_int
  else ebound t ~g:(gcount t (Quasar.Profile.root t.pf)) ~l:t.m
