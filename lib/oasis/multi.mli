(** Merged search over a heterogeneous index — sealed disk segments plus
    the in-memory tail of a {!Storage.Live_index} — as one online hit
    stream.

    Each part runs its own engine ({!Engine.Mem} over the tail's suffix
    tree, {!Engine.Disk} over each sealed segment) and the streams merge
    under exactly the multicore merge's release rule (see {!Parallel}):
    the best buffered head — score [s] from part [i] — is released only
    when every other part [j] that could still produce a hit satisfies
    [s > bound_j \/ (s = bound_j /\ j > i)]. The merge is sequential
    and {e demand-driven}: instead of waiting for worker pushes it
    advances precisely the part whose bound blocks the release, so the
    merged stream is a deterministic function of the part streams.

    Guarantees, mirroring {!Parallel}:

    - the merged stream is globally non-increasing in score, every hit
      carries its {e global} sequence index, and each sequence is
      reported at most once (parts partition the sequences);
    - with a single part the stream is {e bit-identical} to that
      engine's own;
    - across parts, equal-score hits emit in increasing part index —
      the same deterministic tie shuffle the sharded search has, and
      the only way the stream may differ from a monolithic index over
      the identical database (plus the stop-coordinate caveat of
      {!Parallel} when a tie has several optimal endpoints);
    - [max_columns]/[max_expanded] budgets are split across parts in
      proportion to symbol count ({!Parallel.split_limit}); the
      aggregate {!outcome} is [Exhausted] with the max remaining bound
      as soon as any part exhausted, and hits already emitted are exact
      and final. [time_limit] is passed to each part unchanged (the
      parts time-share one thread, so the wall clock is a cap on the
      whole merge, checked per part). *)

type part =
  | Mem of {
      tree : Suffix_tree.Tree.t;
      db : Bioseq.Database.t;
      first_seq : int;
    }
  | Disk of {
      tree : Storage.Disk_tree.t;
      db : Bioseq.Database.t;
      first_seq : int;
    }

type t

val create :
  ?profiles:Quasar.Profile.t option array ->
  parts:part array ->
  query:Bioseq.Sequence.t ->
  Engine.config ->
  t
(** Parts must be in sequence order (strictly increasing [first_seq]);
    raises [Invalid_argument] otherwise, when [parts] is empty, or when
    [profiles] has a different length than [parts]. Each part's engine
    is created eagerly; no hit is computed until {!next}.

    [profiles] (one per part, [None] entries allowed) arms each part
    engine's q-gram tier and tightens the part's initial merge bound to
    the admissible whole-part cap {!Oasis.Qgram.shard_cap} — both pure
    bound tightenings, so the merged stream stays bit-identical. *)

val parts_of_snapshot : Storage.Live_index.snapshot -> part array
(** The searchable parts of a pinned live-index snapshot, in sequence
    order (empty for an empty index — {!create} rejects it; callers
    short-circuit to no hits). *)

val next : t -> Hit.t option
(** Next merged hit; [None] once every part drained. Non-increasing
    scores, each global sequence at most once. *)

val run : ?limit:int -> t -> Hit.t list

val peek_bound : t -> int option
(** Admissible upper bound on every hit {!next} can still return. *)

val outcome : t -> Engine.outcome
val counters : t -> Counters.t
(** {!Counters.sum} across parts. *)

val num_parts : t -> int
