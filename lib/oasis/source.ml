module type S = sig
  type t
  type node

  val root : t -> node
  val children : t -> node -> node list
  val iter_children : t -> node -> (node -> unit) -> unit
  val is_leaf : t -> node -> bool
  val label_start : t -> node -> int
  val label_stop : t -> node -> int option
  val label_end : t -> node -> int
  val symbol : t -> int -> int
  val terminator : t -> int
  val iter_positions : t -> node -> (int -> unit) -> unit
  val io_stats : t -> int * int
end

module Mem = struct
  type t = Suffix_tree.Tree.t
  type node = Suffix_tree.Tree.node

  let root = Suffix_tree.Tree.root

  (* Canonical sibling order: internal children first (in tree order),
     then leaf children. The disk image stores a node's internal
     children as one contiguous entry run and its leaf children as one
     leaf run, so that partition is the only order the disk source can
     iterate in without buffering — matching it here makes Mem and Disk
     hit streams bit-identical under score ties. *)
  let iter_children _ node f =
    Suffix_tree.Tree.iter_children node (fun c ->
        if not (Suffix_tree.Tree.is_leaf c) then f c);
    Suffix_tree.Tree.iter_children node (fun c ->
        if Suffix_tree.Tree.is_leaf c then f c)

  let children t node =
    let acc = ref [] in
    iter_children t node (fun c -> acc := c :: !acc);
    List.rev !acc
  let is_leaf _ node = Suffix_tree.Tree.is_leaf node
  let label_start _ node = Suffix_tree.Tree.label_start node
  let label_stop _ node = Some (Suffix_tree.Tree.label_stop node)
  let label_end _ node = Suffix_tree.Tree.label_stop node

  let symbol t pos =
    Bioseq.Database.code (Suffix_tree.Tree.database t) pos

  let terminator t =
    Bioseq.Alphabet.terminator
      (Bioseq.Database.alphabet (Suffix_tree.Tree.database t))

  let iter_positions _ node f =
    let rec walk n =
      if Suffix_tree.Tree.is_leaf n then
        List.iter f (Suffix_tree.Tree.positions n)
      else Suffix_tree.Tree.iter_children n walk
    in
    walk node

  let io_stats _ = (0, 0)
end

module Disk = struct
  type t = Storage.Disk_tree.t
  type node = Storage.Disk_tree.node

  let root = Storage.Disk_tree.root
  let children = Storage.Disk_tree.children
  let iter_children = Storage.Disk_tree.iter_children
  let is_leaf _ node = Storage.Disk_tree.is_leaf node
  let label_start = Storage.Disk_tree.label_start
  let label_stop = Storage.Disk_tree.label_stop
  let label_end = Storage.Disk_tree.label_end
  let symbol = Storage.Disk_tree.symbol
  let terminator = Storage.Disk_tree.terminator
  let iter_positions = Storage.Disk_tree.iter_positions
  let io_stats = Storage.Disk_tree.io_stats
end
