module type S = sig
  type t
  type node

  val root : t -> node
  val children : t -> node -> node list
  val iter_children : t -> node -> (node -> unit) -> unit
  val is_leaf : t -> node -> bool
  val label_start : t -> node -> int
  val label_stop : t -> node -> int option
  val label_end : t -> node -> int

  val gather :
    t -> node -> (node -> start:int -> stop:int -> sym:int -> unit) -> unit

  val symbol : t -> int -> int
  val blit_symbols : t -> pos:int -> len:int -> int array -> int -> unit
  val terminator : t -> int
  val iter_positions : t -> node -> (int -> unit) -> unit
  val io_stats : t -> int * int
end

module Mem = struct
  type t = Suffix_tree.Tree.t
  type node = Suffix_tree.Tree.node

  let root = Suffix_tree.Tree.root

  (* Canonical sibling order: internal children first (in tree order),
     then leaf children. The disk image stores a node's internal
     children as one contiguous entry run and its leaf children as one
     leaf run, so that partition is the only order the disk source can
     iterate in without buffering — matching it here makes Mem and Disk
     hit streams bit-identical under score ties. *)
  let iter_children _ node f =
    Suffix_tree.Tree.iter_children node (fun c ->
        if not (Suffix_tree.Tree.is_leaf c) then f c);
    Suffix_tree.Tree.iter_children node (fun c ->
        if Suffix_tree.Tree.is_leaf c then f c)

  let children t node =
    let acc = ref [] in
    iter_children t node (fun c -> acc := c :: !acc);
    List.rev !acc
  let is_leaf _ node = Suffix_tree.Tree.is_leaf node
  let label_start _ node = Suffix_tree.Tree.label_start node
  let label_stop _ node = Some (Suffix_tree.Tree.label_stop node)
  let label_end _ node = Suffix_tree.Tree.label_stop node

  let gather = Suffix_tree.Tree.gather_children

  let symbol t pos =
    Bioseq.Database.code (Suffix_tree.Tree.database t) pos

  (* One range check for the whole run, then raw byte reads: arc labels
     are tree invariants, so the check never fires outside a corrupted
     index — but it keeps the unsafe loop honest. *)
  let blit_symbols t ~pos ~len dst off =
    let db = Suffix_tree.Tree.database t in
    let data = Bioseq.Database.data db in
    if
      pos < 0 || len < 0
      || pos + len > Bioseq.Database.data_length db
      || off < 0
      || off + len > Array.length dst
    then invalid_arg "Source.Mem.blit_symbols: range out of bounds";
    for k = 0 to len - 1 do
      Array.unsafe_set dst (off + k)
        (Char.code (Bytes.unsafe_get data (pos + k)))
    done

  let terminator t =
    Bioseq.Alphabet.terminator
      (Bioseq.Database.alphabet (Suffix_tree.Tree.database t))

  let iter_positions _ node f =
    let rec walk n =
      if Suffix_tree.Tree.is_leaf n then
        List.iter f (Suffix_tree.Tree.positions n)
      else Suffix_tree.Tree.iter_children n walk
    in
    walk node

  let io_stats _ = (0, 0)
end

module Packed = struct
  type t = Suffix_tree.Packed.t
  type node = Suffix_tree.Packed.node

  let root = Suffix_tree.Packed.root
  let iter_children = Suffix_tree.Packed.iter_children

  let children t node =
    let acc = ref [] in
    iter_children t node (fun c -> acc := c :: !acc);
    List.rev !acc

  let is_leaf _ node = Suffix_tree.Packed.is_leaf node
  let label_start = Suffix_tree.Packed.label_start
  let label_stop t node = Some (Suffix_tree.Packed.label_stop t node)
  let label_end = Suffix_tree.Packed.label_stop
  let gather = Suffix_tree.Packed.gather_children

  let symbol t pos =
    Bioseq.Database.code (Suffix_tree.Packed.database t) pos

  let blit_symbols t ~pos ~len dst off =
    let db = Suffix_tree.Packed.database t in
    let data = Bioseq.Database.data db in
    if
      pos < 0 || len < 0
      || pos + len > Bioseq.Database.data_length db
      || off < 0
      || off + len > Array.length dst
    then invalid_arg "Source.Packed.blit_symbols: range out of bounds";
    for k = 0 to len - 1 do
      Array.unsafe_set dst (off + k)
        (Char.code (Bytes.unsafe_get data (pos + k)))
    done

  let terminator t =
    Bioseq.Alphabet.terminator
      (Bioseq.Database.alphabet (Suffix_tree.Packed.database t))

  let iter_positions = Suffix_tree.Packed.iter_positions
  let io_stats _ = (0, 0)
end

module Disk = struct
  type t = Storage.Disk_tree.t
  type node = Storage.Disk_tree.node

  let root = Storage.Disk_tree.root
  let children = Storage.Disk_tree.children
  let iter_children = Storage.Disk_tree.iter_children
  let is_leaf _ node = Storage.Disk_tree.is_leaf node
  let label_start = Storage.Disk_tree.label_start
  let label_stop = Storage.Disk_tree.label_stop
  let label_end = Storage.Disk_tree.label_end
  let symbol = Storage.Disk_tree.symbol

  let gather t node f =
    Storage.Disk_tree.iter_children t node (fun c ->
        let start = Storage.Disk_tree.label_start t c in
        let stop = Storage.Disk_tree.label_end t c in
        let sym = if start < stop then Storage.Disk_tree.symbol t start else -1 in
        f c ~start ~stop ~sym)

  (* One [Disk_tree.symbol] per position: each read lands in the same
     pinned symbols page for all but the first symbol of a page-crossing
     run, so the per-call cost is the handle's last-page memo probe. *)
  let blit_symbols t ~pos ~len dst off =
    for k = 0 to len - 1 do
      dst.(off + k) <- Storage.Disk_tree.symbol t (pos + k)
    done

  let terminator = Storage.Disk_tree.terminator
  let iter_positions = Storage.Disk_tree.iter_positions
  let io_stats = Storage.Disk_tree.io_stats
end
