module type S = sig
  type t
  type node

  val root : t -> node
  val children : t -> node -> node list
  val iter_children : t -> node -> (node -> unit) -> unit
  val is_leaf : t -> node -> bool
  val label_start : t -> node -> int
  val label_stop : t -> node -> int option
  val label_end : t -> node -> int
  val symbol : t -> int -> int
  val terminator : t -> int
  val subtree_positions : t -> node -> int list
end

module Mem = struct
  type t = Suffix_tree.Tree.t
  type node = Suffix_tree.Tree.node

  let root = Suffix_tree.Tree.root
  let children _ node = Suffix_tree.Tree.children node
  let iter_children _ node f = Suffix_tree.Tree.iter_children node f
  let is_leaf _ node = Suffix_tree.Tree.is_leaf node
  let label_start _ node = Suffix_tree.Tree.label_start node
  let label_stop _ node = Some (Suffix_tree.Tree.label_stop node)
  let label_end _ node = Suffix_tree.Tree.label_stop node

  let symbol t pos =
    Bioseq.Database.code (Suffix_tree.Tree.database t) pos

  let terminator t =
    Bioseq.Alphabet.terminator
      (Bioseq.Database.alphabet (Suffix_tree.Tree.database t))

  let subtree_positions _ node = Suffix_tree.Tree.subtree_positions node
end

module Disk = struct
  type t = Storage.Disk_tree.t
  type node = Storage.Disk_tree.node

  let root = Storage.Disk_tree.root
  let children = Storage.Disk_tree.children
  let iter_children t node f = List.iter f (Storage.Disk_tree.children t node)
  let is_leaf _ node = Storage.Disk_tree.is_leaf node
  let label_start = Storage.Disk_tree.label_start
  let label_stop = Storage.Disk_tree.label_stop

  let label_end t node =
    match Storage.Disk_tree.label_stop t node with
    | Some s -> s
    | None -> max_int
  let symbol = Storage.Disk_tree.symbol
  let terminator = Storage.Disk_tree.terminator
  let subtree_positions = Storage.Disk_tree.subtree_positions
end
