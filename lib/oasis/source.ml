module type S = sig
  type t
  type node

  val root : t -> node
  val children : t -> node -> node list
  val is_leaf : t -> node -> bool
  val label_start : t -> node -> int
  val label_stop : t -> node -> int option
  val symbol : t -> int -> int
  val terminator : t -> int
  val subtree_positions : t -> node -> int list
end

module Mem = struct
  type t = Suffix_tree.Tree.t
  type node = Suffix_tree.Tree.node

  let root = Suffix_tree.Tree.root
  let children _ node = Suffix_tree.Tree.children node
  let is_leaf _ node = Suffix_tree.Tree.is_leaf node
  let label_start _ node = fst (Suffix_tree.Tree.label node)
  let label_stop _ node = Some (snd (Suffix_tree.Tree.label node))

  let symbol t pos =
    Bioseq.Database.code (Suffix_tree.Tree.database t) pos

  let terminator t =
    Bioseq.Alphabet.terminator
      (Bioseq.Database.alphabet (Suffix_tree.Tree.database t))

  let subtree_positions _ node = Suffix_tree.Tree.subtree_positions node
end

module Disk = struct
  type t = Storage.Disk_tree.t
  type node = Storage.Disk_tree.node

  let root = Storage.Disk_tree.root
  let children = Storage.Disk_tree.children
  let is_leaf _ node = Storage.Disk_tree.is_leaf node
  let label_start = Storage.Disk_tree.label_start
  let label_stop = Storage.Disk_tree.label_stop
  let symbol = Storage.Disk_tree.symbol
  let terminator = Storage.Disk_tree.terminator
  let subtree_positions = Storage.Disk_tree.subtree_positions
end
