type hit = { seq_index : int; edits : int; target_stop : int }
type stats = { nodes_visited : int; rows_computed : int }

(* Bit-parallel word geometry. OCaml's native int carries 63 usable
   bits; packing 62 query positions per word leaves the top bit free as
   carry space, so the Myers/Hyyro? carry-save addition
   [(Eq land Pv) + Pv] can never overflow into undefined territory —
   the wrap at 2^63 is well defined and its low 62 bits are exact. *)
let wbits = 62

(* Lazy 65536-entry table over one (Pv byte, Mv byte) pair: packed
   [(byte_delta_sum + 8) lsl 4 lor (- byte_min_prefix)]. Scanning a
   column's delta words byte by byte through this table recovers the
   exact column minimum — the DP prune needs it, and the bit vectors
   only carry cell-to-cell deltas. *)
let delta_tbl =
  lazy
    (let t = Array.make 65536 0 in
     for pb = 0 to 255 do
       for mb = 0 to 255 do
         let sum = ref 0 and mn = ref 0 in
         for b = 0 to 7 do
           if pb land (1 lsl b) <> 0 then incr sum
           else if mb land (1 lsl b) <> 0 then decr sum;
           if !sum < !mn then mn := !sum
         done;
         t.((pb lsl 8) lor mb) <- ((!sum + 8) lsl 4) lor (- !mn)
       done
     done;
     t)

module Make (S : Source.S) = struct
  (* Shared tail: turn the per-sequence best tables into the sorted hit
     list both kernels return. *)
  let assemble best best_stop nodes_visited rows_computed =
    let hits = ref [] in
    Array.iteri
      (fun seq_index edits ->
        if edits < max_int then
          hits :=
            { seq_index; edits; target_stop = best_stop.(seq_index) } :: !hits)
      best;
    let hits =
      List.sort
        (fun a b ->
          if a.edits <> b.edits then Int.compare a.edits b.edits
          else Int.compare a.seq_index b.seq_index)
        !hits
    in
    (hits, { nodes_visited; rows_computed })

  let check_args ~query ~max_diffs =
    if max_diffs < 0 then invalid_arg "Edit_search.search: max_diffs < 0";
    if Bioseq.Sequence.length query = 0 then
      invalid_arg "Edit_search.search: empty query"

  (* The scalar DP row kernel: one O(m) row per path symbol. Kept as
     the executable specification — [search] must match its hits and
     stats bit for bit (property-tested, and asserted outright under
     [OASIS_CHECKED_KERNEL=1]). *)
  let search_dp ~source ~db ~query ~max_diffs =
    check_args ~query ~max_diffs;
    let m = Bioseq.Sequence.length query in
    let q = Bioseq.Sequence.codes query in
    let term = S.terminator source in
    let max_depth = m + max_diffs in
    let best = Array.make (Bioseq.Database.num_sequences db) max_int in
    let best_stop = Array.make (Bioseq.Database.num_sequences db) 0 in
    let nodes_visited = ref 0 in
    let rows_computed = ref 0 in
    (* The DP row for the current path: row.(j) = unit edit distance
       between the full path and query prefix of length j. *)
    let report node depth edits =
      (* Collect-and-sort keeps the reported stop deterministic (lowest
         position wins an edit-count tie) whatever order the source
         streams positions in. *)
      let positions = ref [] in
      S.iter_positions source node (fun p -> positions := p :: !positions);
      List.iter
        (fun p ->
          let seq_index = Bioseq.Database.seq_of_pos db p in
          if edits < best.(seq_index) then begin
            best.(seq_index) <- edits;
            best_stop.(seq_index) <-
              p + depth - Bioseq.Database.seq_start db seq_index
          end)
        (List.sort Int.compare !positions)
    in
    let rec visit node row depth =
      incr nodes_visited;
      let start = S.label_start source node in
      let stop = S.label_stop source node in
      (* Walk the arc symbol by symbol, updating the row. Returns the
         final row, or None when the branch was pruned or ended. *)
      let rec arc idx row depth =
        let arc_done = match stop with Some s -> idx >= s | None -> false in
        if arc_done then Some (row, depth)
        else
          let c = S.symbol source idx in
          if c = term then None
          else if depth >= max_depth then None
          else begin
            incr rows_computed;
            let nrow = Array.make (m + 1) 0 in
            nrow.(0) <- depth + 1;
            let minv = ref nrow.(0) in
            for j = 1 to m do
              let cost =
                if Char.code (Bytes.unsafe_get q (j - 1)) = c then 0 else 1
              in
              let v =
                min (row.(j - 1) + cost) (min (nrow.(j - 1) + 1) (row.(j) + 1))
              in
              nrow.(j) <- v;
              if v < !minv then minv := v
            done;
            if nrow.(m) <= max_diffs then report node (depth + 1) nrow.(m);
            if !minv > max_diffs then None else arc (idx + 1) nrow (depth + 1)
          end
      in
      match arc start row depth with
      | None -> ()
      | Some (row, depth) ->
        List.iter (fun child -> visit child row depth) (S.children source node)
    in
    let row0 = Array.init (m + 1) Fun.id in
    (* Row 0 must itself be within budget for an empty path; matches of
       the whole query with depth 0 are only possible when m <= k. *)
    if row0.(m) <= max_diffs then report (S.root source) 0 row0.(m);
    List.iter
      (fun child -> visit child row0 0)
      (S.children source (S.root source));
    assemble best best_stop !nodes_visited !rows_computed

  (* Myers/Hyyro? bit-parallel kernel: the DP row lives as per-word
     (Pv, Mv) delta vectors, one row update costs O(m / 62) word
     operations, and the exact row minimum (the prune test needs it)
     comes from a byte-table scan of the deltas. Control flow mirrors
     [search_dp] exactly — same visits, same per-symbol row count, same
     report-before-prune order — so hits and stats are bit-identical. *)
  let search_bp ~source ~db ~query ~max_diffs =
    check_args ~query ~max_diffs;
    let m = Bioseq.Sequence.length query in
    let q = Bioseq.Sequence.codes query in
    let term = S.terminator source in
    let max_depth = m + max_diffs in
    let best = Array.make (Bioseq.Database.num_sequences db) max_int in
    let best_stop = Array.make (Bioseq.Database.num_sequences db) 0 in
    let nodes_visited = ref 0 in
    let rows_computed = ref 0 in
    let report node depth edits =
      let positions = ref [] in
      S.iter_positions source node (fun p -> positions := p :: !positions);
      List.iter
        (fun p ->
          let seq_index = Bioseq.Database.seq_of_pos db p in
          if edits < best.(seq_index) then begin
            best.(seq_index) <- edits;
            best_stop.(seq_index) <-
              p + depth - Bioseq.Database.seq_start db seq_index
          end)
        (List.sort Int.compare !positions)
    in
    let w = (m + wbits - 1) / wbits in
    let width k = if k = w - 1 then m - ((w - 1) * wbits) else wbits in
    let mask = Array.init w (fun k -> (1 lsl width k) - 1) in
    let hbit = Array.init w (fun k -> width k - 1) in
    (* Peq.(c * w + k): match vector of symbol [c] against query word
       [k]. Terminators never reach the lookup (the arc walk stops on
       them first), so [Alphabet.size] rows suffice. *)
    let dim = Bioseq.Alphabet.size (Bioseq.Database.alphabet db) in
    let peq = Array.make (dim * w) 0 in
    for j = 0 to m - 1 do
      let c = Char.code (Bytes.unsafe_get q j) in
      let cell = (c * w) + (j / wbits) in
      peq.(cell) <- peq.(cell) lor (1 lsl (j mod wbits))
    done;
    let tbl = Lazy.force delta_tbl in
    (* Exact minimum of the row encoded by (pv, mv), whose row-0 cell
       is [base]: fold the per-byte (delta sum, min prefix) table. *)
    let row_min pv mv base =
      let run = ref 0 and mn = ref 0 in
      for k = 0 to w - 1 do
        let pvk = pv.(k) and mvk = mv.(k) in
        for byte = 0 to 7 do
          let pb = (pvk lsr (8 * byte)) land 0xff
          and mb = (mvk lsr (8 * byte)) land 0xff in
          let e = Array.unsafe_get tbl ((pb lsl 8) lor mb) in
          let bmn = !run - (e land 0xf) in
          if bmn < !mn then mn := bmn;
          run := !run + (e lsr 4) - 8
        done
      done;
      base + !mn
    in
    let rec visit node pv mv score depth =
      incr nodes_visited;
      let start = S.label_start source node in
      let stop = S.label_stop source node in
      let rec arc idx pv mv score depth =
        let arc_done = match stop with Some s -> idx >= s | None -> false in
        if arc_done then Some (pv, mv, score, depth)
        else
          let c = S.symbol source idx in
          if c = term then None
          else if depth >= max_depth then None
          else begin
            incr rows_computed;
            let npv = Array.make w 0 and nmv = Array.make w 0 in
            (* The horizontal delta entering word 0 is always +1: the
               row-0 boundary cell is the path depth. Word k > 0 takes
               word k-1's outgoing delta. *)
            let hin = ref 1 in
            for k = 0 to w - 1 do
              let eq0 = Array.unsafe_get peq ((c * w) + k) in
              let pvk = Array.unsafe_get pv k
              and mvk = Array.unsafe_get mv k in
              let hin_neg = if !hin < 0 then 1 else 0 in
              let eq = eq0 lor hin_neg in
              let xv = eq0 lor mvk in
              let xh = (((eq land pvk) + pvk) lxor pvk) lor eq in
              let ph = mvk lor lnot (xh lor pvk) in
              let mh = pvk land xh in
              let hb = Array.unsafe_get hbit k in
              let hout = ((ph lsr hb) land 1) - ((mh lsr hb) land 1) in
              let ph = (ph lsl 1) lor (if !hin > 0 then 1 else 0) in
              let mh = (mh lsl 1) lor hin_neg in
              let msk = Array.unsafe_get mask k in
              Array.unsafe_set npv k ((mh lor lnot (xv lor ph)) land msk);
              Array.unsafe_set nmv k (ph land xv land msk);
              hin := hout
            done;
            let score = score + !hin in
            if score <= max_diffs then report node (depth + 1) score;
            if row_min npv nmv (depth + 1) > max_diffs then None
            else arc (idx + 1) npv nmv score (depth + 1)
          end
      in
      match arc start pv mv score depth with
      | None -> ()
      | Some (pv, mv, score, depth) ->
        List.iter
          (fun child -> visit child pv mv score depth)
          (S.children source node)
    in
    (* Row 0: every vertical delta is +1 (cell j holds j), score m. *)
    let pv0 = Array.init w (fun k -> mask.(k)) in
    let mv0 = Array.make w 0 in
    if m <= max_diffs then report (S.root source) 0 m;
    List.iter
      (fun child -> visit child pv0 mv0 m 0)
      (S.children source (S.root source));
    assemble best best_stop !nodes_visited !rows_computed

  let search ~source ~db ~query ~max_diffs =
    if Kernel_util.checked then begin
      let bp = search_bp ~source ~db ~query ~max_diffs in
      let dp = search_dp ~source ~db ~query ~max_diffs in
      if bp <> dp then
        failwith
          "Oasis.Edit_search: bit-parallel kernel diverged from the DP oracle";
      bp
    end
    else search_bp ~source ~db ~query ~max_diffs
end

module Mem = Make (Source.Mem)
module Disk = Make (Source.Disk)
