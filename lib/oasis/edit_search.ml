type hit = { seq_index : int; edits : int; target_stop : int }
type stats = { nodes_visited : int; rows_computed : int }

module Make (S : Source.S) = struct
  let search ~source ~db ~query ~max_diffs =
    if max_diffs < 0 then invalid_arg "Edit_search.search: max_diffs < 0";
    let m = Bioseq.Sequence.length query in
    if m = 0 then invalid_arg "Edit_search.search: empty query";
    let q = Bioseq.Sequence.codes query in
    let term = S.terminator source in
    let max_depth = m + max_diffs in
    let best = Array.make (Bioseq.Database.num_sequences db) max_int in
    let best_stop = Array.make (Bioseq.Database.num_sequences db) 0 in
    let nodes_visited = ref 0 in
    let rows_computed = ref 0 in
    (* The DP row for the current path: row.(j) = unit edit distance
       between the full path and query prefix of length j. *)
    let report node depth edits =
      (* Collect-and-sort keeps the reported stop deterministic (lowest
         position wins an edit-count tie) whatever order the source
         streams positions in. *)
      let positions = ref [] in
      S.iter_positions source node (fun p -> positions := p :: !positions);
      List.iter
        (fun p ->
          let seq_index = Bioseq.Database.seq_of_pos db p in
          if edits < best.(seq_index) then begin
            best.(seq_index) <- edits;
            best_stop.(seq_index) <-
              p + depth - Bioseq.Database.seq_start db seq_index
          end)
        (List.sort Int.compare !positions)
    in
    let rec visit node row depth =
      incr nodes_visited;
      let start = S.label_start source node in
      let stop = S.label_stop source node in
      (* Walk the arc symbol by symbol, updating the row. Returns the
         final row, or None when the branch was pruned or ended. *)
      let rec arc idx row depth =
        let arc_done = match stop with Some s -> idx >= s | None -> false in
        if arc_done then Some (row, depth)
        else
          let c = S.symbol source idx in
          if c = term then None
          else if depth >= max_depth then None
          else begin
            incr rows_computed;
            let nrow = Array.make (m + 1) 0 in
            nrow.(0) <- depth + 1;
            let minv = ref nrow.(0) in
            for j = 1 to m do
              let cost =
                if Char.code (Bytes.unsafe_get q (j - 1)) = c then 0 else 1
              in
              let v =
                min (row.(j - 1) + cost) (min (nrow.(j - 1) + 1) (row.(j) + 1))
              in
              nrow.(j) <- v;
              if v < !minv then minv := v
            done;
            if nrow.(m) <= max_diffs then report node (depth + 1) nrow.(m);
            if !minv > max_diffs then None else arc (idx + 1) nrow (depth + 1)
          end
      in
      match arc start row depth with
      | None -> ()
      | Some (row, depth) ->
        List.iter (fun child -> visit child row depth) (S.children source node)
    in
    let row0 = Array.init (m + 1) Fun.id in
    (* Row 0 must itself be within budget for an empty path; matches of
       the whole query with depth 0 are only possible when m <= k. *)
    if row0.(m) <= max_diffs then
      report (S.root source) 0 row0.(m);
    List.iter
      (fun child -> visit child row0 0)
      (S.children source (S.root source));
    let hits = ref [] in
    Array.iteri
      (fun seq_index edits ->
        if edits < max_int then
          hits :=
            { seq_index; edits; target_stop = best_stop.(seq_index) } :: !hits)
      best;
    let hits =
      List.sort
        (fun a b ->
          if a.edits <> b.edits then Int.compare a.edits b.edits
          else Int.compare a.seq_index b.seq_index)
        !hits
    in
    (hits, { nodes_visited = !nodes_visited; rows_computed = !rows_computed })
end

module Mem = Make (Source.Mem)
module Disk = Make (Source.Disk)
