(** Search results.

    OASIS duplicates the reporting convention of the S-W baseline (§3):
    one hit per database sequence — its strongest local alignment —
    emitted online in non-increasing score order. *)

type t = {
  seq_index : int;
  score : int;
  query_stop : int;  (** one past the last aligned query symbol *)
  target_stop : int;  (** one past the last aligned symbol, sequence-local *)
}

val compare_for_report : t -> t -> int
(** Decreasing score, then increasing sequence index. *)

val pp : Format.formatter -> t -> unit
