(** Query-side state for the exactness-preserving q-gram filter tier
    (DESIGN.md §2k).

    Wraps a {!Quasar.Profile} with everything one query's searches
    need: the query's window gram ids, a per-profile-node memo of [G]
    (how many query windows have their gram present in the node's
    region), and the admissible extension bound [ebound ~g ~l] — an
    upper bound, derived from the generalized q-gram lemma, on the
    score any alignment can add while consuming at most [l] further
    query positions against a region whose gram overlap with the query
    is at most [g] windows.

    Admissibility sketch (full argument in DESIGN.md §2k): an extension
    with [e] exact-match columns and [d] defect columns (mismatch or
    gap) has at least [e' - q + 1 - q*d] exact q-windows over its
    aligned query segment of length [e' <= l], each of which
    contributes a gram present in the region — so at most [g] exist.
    Every column scores at most [a] (the query's best substitution
    entry), every defect costs at least
    [cmin = max 0 (min (a - worst_mismatch) gap_extend_penalty)]
    against that ceiling; maximizing the resulting LP over all feasible
    [(e, d)] and all segment lengths [<= l] gives [ebound], evaluated
    in closed form with ceiling division (the continuous optimum
    dominates the integer one, preserving admissibility).

    The bound is only sound when the profile's gram sets cover every
    symbol an alignment can reach, which holds per node when the
    region is complete ([ext <= horizon]) or globally when the query's
    maximum extension reach [m + a*m/gap_extend_penalty + q] fits the
    horizon — {!usable} checks exactly this. *)

type t

val make :
  profile:Quasar.Profile.t ->
  query:Bioseq.Sequence.t ->
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  t
(** Never raises: a configuration the lemma cannot serve (query shorter
    than [q], non-negative gap-extension score) yields a state with
    [enabled = false], which every consumer must treat as "no filter". *)

val enabled : t -> bool
val cutoff : t -> int
(** The profile's depth cutoff: parents deeper than this have no
    profiled children. *)

val walk : t -> int array -> int -> int
(** [walk t path depth]: the profile entry whose path is
    [path.(0 .. depth - 1)], or [-1]. [depth = 0] returns the root. *)

val child : t -> int -> int -> int
(** Profile child by first arc symbol; [-1] when absent (no settle). *)

val usable : t -> int -> bool
(** Is [ebound] sound for this entry (complete region, or the query's
    extension reach fits the horizon)? *)

val gcount : t -> int -> int
(** Memoized [G] for an entry: query windows whose gram the entry's
    region contains. *)

val ebound : t -> g:int -> l:int -> int
(** See above. Non-negative; non-decreasing in [l] and in [g]. *)

val shard_cap : t -> int
(** [ebound ~g:(gcount root) ~l:m]: an admissible upper bound on the
    score of {e any} hit in the profiled database — the root region is
    every suffix, and every database gram is some suffix's first
    window, so the root set is complete regardless of the horizon. The
    sharded merge uses this to down-prioritize low-overlap shards.
    [max_int] when the filter is disabled. *)
