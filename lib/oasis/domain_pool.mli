(** A fixed pool of OCaml 5 worker domains draining one task queue.

    Both aggregation layers above the engine run on this pool: {!Batch}
    submits one task per query, {!Parallel} one task per database
    shard. Centralizing the domains keeps their number fixed for a
    whole workload (domains are heavyweight — spawning one per task
    would swamp short searches) and lets a server share a single pool
    across many concurrent requests.

    Tasks may block on their own synchronization (the {!Parallel}
    coordinator consumes shard hits while the shard tasks are still
    running) but must never wait on {e other tasks starting}: with
    fewer workers than tasks, later submissions wait for a free worker,
    so a task that spins on a sibling's progress can deadlock the
    pool. Shard and query tasks run to completion independently, which
    is what makes them safe here.

    A task that raises does not kill its worker: the first exception is
    kept and re-raised from {!wait} (and {!shutdown}); later ones are
    dropped. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains (>= 1; raises [Invalid_argument]
    otherwise). Callers usually size this by
    [Domain.recommended_domain_count ()]. *)

val size : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task; it runs on the first free worker. Raises
    [Invalid_argument] after {!shutdown}. *)

val wait : t -> unit
(** Block until every submitted task has finished, then re-raise the
    first task exception if any (clearing it). The pool stays usable
    for further submissions. *)

val shutdown : t -> unit
(** {!wait}, then stop and join the workers. Idempotent; the pool
    refuses further submissions. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run the function, and {!shutdown} (also on exception). *)
