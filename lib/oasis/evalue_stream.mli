(** Online results ordered by length-adjusted E-value (§4.3).

    BLAST adjusts each alignment's E-value for the length of the
    database sequence it occurs in; the engine's native order (by score,
    equivalently by the database-level E-value of Equation 2) is not the
    same order. The paper sketches how OASIS keeps its online property
    anyway: order the frontier by an optimistic E-value and push
    accepted sequences back "with a non-optimistic E value" adjusted for
    the actual sequence length. This module implements that: it buffers
    engine hits and releases one only when its adjusted E-value is at
    most the best adjusted E-value any still-unseen hit could reach
    (computed from the engine's frontier bound and the shortest database
    sequence).

    The length-adjusted model is
    [E = K * m * len(sequence) * num_sequences * exp (-lambda * s)]:
    Equation 2 with the sequence's own length replacing the average
    length implied by the database total. *)

module Make (D : Engine.DRIVER) : sig
  type t

  val create :
    driver:D.t ->
    db:Bioseq.Database.t ->
    params:Scoring.Karlin.params ->
    query_length:int ->
    t

  val next : t -> (Hit.t * float) option
  (** Hits in non-decreasing adjusted E-value order, each with its
      adjusted E-value. Exactly the same hit set as draining the
      underlying engine. *)

  val buffered : t -> int
  (** Hits held back waiting for the frontier bound to drop (exposed for
      tests and instrumentation). *)
end

module Mem : module type of Make (Engine.Mem)
module Disk : module type of Make (Engine.Disk)
