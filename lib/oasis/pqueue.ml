type 'a entry = { priority : int; tie : int; seqno : int; value : 'a }

type 'a t = {
  mutable entries : 'a entry array; (* heap in entries.(0 .. size-1) *)
  mutable size : int;
  mutable next_seqno : int;
}

let create () = { entries = [||]; size = 0; next_seqno = 0 }
let is_empty t = t.size = 0
let length t = t.size

(* [a] sorts strictly before [b]. *)
let before a b =
  if a.priority <> b.priority then a.priority > b.priority
  else if a.tie <> b.tie then a.tie < b.tie
  else a.seqno < b.seqno

let grow t entry =
  let cap = Array.length t.entries in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let entries = Array.make ncap entry in
    Array.blit t.entries 0 entries 0 t.size;
    t.entries <- entries
  end

let push t ~priority ?(tie = 1) value =
  let entry = { priority; tie; seqno = t.next_seqno; value } in
  t.next_seqno <- t.next_seqno + 1;
  grow t entry;
  let entries = t.entries in
  let rec up i =
    if i = 0 then entries.(0) <- entry
    else
      let parent = (i - 1) / 2 in
      if before entry entries.(parent) then begin
        entries.(i) <- entries.(parent);
        up parent
      end
      else entries.(i) <- entry
  in
  up t.size;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.entries.(0) in
    t.size <- t.size - 1;
    let last = t.entries.(t.size) in
    let entries = t.entries in
    let rec down i =
      let left = (2 * i) + 1 in
      if left >= t.size then entries.(i) <- last
      else begin
        let right = left + 1 in
        let best =
          if right < t.size && before entries.(right) entries.(left) then right
          else left
        in
        if before entries.(best) last then begin
          entries.(i) <- entries.(best);
          down best
        end
        else entries.(i) <- last
      end
    in
    if t.size > 0 then down 0;
    Some (top.priority, top.value)
  end

let peek_priority t = if t.size = 0 then None else Some t.entries.(0).priority
