(* Structure-of-arrays binary heap: priorities and packed tie/seqno live
   in flat int arrays, values in a parallel array, so push/pop allocate
   nothing (array growth is amortized and reuses the pushed value as the
   filler). Equal-priority order is decided entirely by [meta] — tie in
   the high bits, seqno below — so one int comparison replaces the old
   entry record's three-field cascade. *)

let seqno_bits = 54
let max_tie = 1 lsl 8 (* tie must fit above seqno within 62 bits *)

type 'a t = {
  mutable prios : int array; (* heap order in slots 0 .. size-1 *)
  mutable metas : int array; (* (tie lsl seqno_bits) lor seqno *)
  mutable values : 'a array;
  mutable size : int;
  mutable next_seqno : int;
}

let create () =
  { prios = [||]; metas = [||]; values = [||]; size = 0; next_seqno = 0 }

let is_empty t = t.size = 0
let length t = t.size

let clear t =
  t.size <- 0;
  t.next_seqno <- 0

(* (p1, m1) sorts strictly before (p2, m2): higher priority first, then
   smaller meta (lower tie, then earlier seqno — FIFO). *)
let[@inline] before p1 m1 p2 m2 = p1 > p2 || (p1 = p2 && m1 < m2)

let grow t value =
  let cap = Array.length t.prios in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nprios = Array.make ncap 0 in
    let nmetas = Array.make ncap 0 in
    let nvalues = Array.make ncap value in
    Array.blit t.prios 0 nprios 0 t.size;
    Array.blit t.metas 0 nmetas 0 t.size;
    Array.blit t.values 0 nvalues 0 t.size;
    t.prios <- nprios;
    t.metas <- nmetas;
    t.values <- nvalues
  end

(* Unsafe accesses below are justified by the heap shape: every index is
   either [< t.size <= capacity] or the write slot [t.size] itself,
   which [grow] just guaranteed to exist. *)

let push_tie t ~priority ~tie value =
  if tie < 0 || tie >= max_tie then
    invalid_arg "Pqueue.push: tie must be in [0, 256)";
  let meta = (tie lsl seqno_bits) lor t.next_seqno in
  t.next_seqno <- t.next_seqno + 1;
  grow t value;
  let prios = t.prios and metas = t.metas and values = t.values in
  let rec up i =
    if i = 0 then begin
      Array.unsafe_set prios 0 priority;
      Array.unsafe_set metas 0 meta;
      Array.unsafe_set values 0 value
    end
    else
      let parent = (i - 1) / 2 in
      if
        before priority meta
          (Array.unsafe_get prios parent)
          (Array.unsafe_get metas parent)
      then begin
        Array.unsafe_set prios i (Array.unsafe_get prios parent);
        Array.unsafe_set metas i (Array.unsafe_get metas parent);
        Array.unsafe_set values i (Array.unsafe_get values parent);
        up parent
      end
      else begin
        Array.unsafe_set prios i priority;
        Array.unsafe_set metas i meta;
        Array.unsafe_set values i value
      end
  in
  up t.size;
  t.size <- t.size + 1

let push t ~priority ?(tie = 1) value = push_tie t ~priority ~tie value

(* Remove the root without building a result; caller must have checked
   non-emptiness (and typically read the root via [top]/[top_priority_exn]
   first). *)
let drop t =
  if t.size = 0 then invalid_arg "Pqueue.drop: empty"
  else begin
    t.size <- t.size - 1;
    let n = t.size in
    if n > 0 then begin
      let prios = t.prios and metas = t.metas and values = t.values in
      (* Re-insert the last element from the root down. *)
      let lp = Array.unsafe_get prios n
      and lm = Array.unsafe_get metas n
      and lv = Array.unsafe_get values n in
      let rec down i =
        let left = (2 * i) + 1 in
        if left >= n then begin
          Array.unsafe_set prios i lp;
          Array.unsafe_set metas i lm;
          Array.unsafe_set values i lv
        end
        else begin
          let right = left + 1 in
          let best =
            if
              right < n
              && before
                   (Array.unsafe_get prios right)
                   (Array.unsafe_get metas right)
                   (Array.unsafe_get prios left)
                   (Array.unsafe_get metas left)
            then right
            else left
          in
          if
            before (Array.unsafe_get prios best) (Array.unsafe_get metas best)
              lp lm
          then begin
            Array.unsafe_set prios i (Array.unsafe_get prios best);
            Array.unsafe_set metas i (Array.unsafe_get metas best);
            Array.unsafe_set values i (Array.unsafe_get values best);
            down best
          end
          else begin
            Array.unsafe_set prios i lp;
            Array.unsafe_set metas i lm;
            Array.unsafe_set values i lv
          end
        end
      in
      down 0
    end
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top_prio = t.prios.(0) and top_value = t.values.(0) in
    drop t;
    Some (top_prio, top_value)
  end

let peek_priority t = if t.size = 0 then None else Some t.prios.(0)

let top_priority_exn t =
  if t.size = 0 then invalid_arg "Pqueue.top_priority_exn: empty"
  else t.prios.(0)

let top t =
  if t.size = 0 then invalid_arg "Pqueue.top: empty" else t.values.(0)
let peek t = if t.size = 0 then None else Some (t.prios.(0), t.values.(0))

(* Int-payload specialization. Same heap discipline as the generic
   queue, but values are immediate ints, so every sift move is a raw
   store: the generic queue's polymorphic [values] array pays the
   [caml_modify] write barrier on each of the ~log n element moves per
   push/pop, which dominates once a caller (the fused batch replay)
   drives hundreds of thousands of operations per search. *)
module Int = struct
  type t = {
    mutable prios : int array;
    mutable metas : int array;
    mutable values : int array;
    mutable size : int;
    mutable next_seqno : int;
  }

  let create () =
    { prios = [||]; metas = [||]; values = [||]; size = 0; next_seqno = 0 }

  let is_empty t = t.size = 0
  let length t = t.size

  let grow t =
    let cap = Array.length t.prios in
    if t.size = cap then begin
      let ncap = max 16 (2 * cap) in
      let nprios = Array.make ncap 0 in
      let nmetas = Array.make ncap 0 in
      let nvalues = Array.make ncap 0 in
      Array.blit t.prios 0 nprios 0 t.size;
      Array.blit t.metas 0 nmetas 0 t.size;
      Array.blit t.values 0 nvalues 0 t.size;
      t.prios <- nprios;
      t.metas <- nmetas;
      t.values <- nvalues
    end

  let push_tie t ~priority ~tie value =
    if tie < 0 || tie >= max_tie then
      invalid_arg "Pqueue.Int.push: tie must be in [0, 256)";
    let meta = (tie lsl seqno_bits) lor t.next_seqno in
    t.next_seqno <- t.next_seqno + 1;
    grow t;
    let prios = t.prios and metas = t.metas and values = t.values in
    let rec up i =
      if i = 0 then begin
        Array.unsafe_set prios 0 priority;
        Array.unsafe_set metas 0 meta;
        Array.unsafe_set values 0 value
      end
      else
        let parent = (i - 1) / 2 in
        if
          before priority meta
            (Array.unsafe_get prios parent)
            (Array.unsafe_get metas parent)
        then begin
          Array.unsafe_set prios i (Array.unsafe_get prios parent);
          Array.unsafe_set metas i (Array.unsafe_get metas parent);
          Array.unsafe_set values i (Array.unsafe_get values parent);
          up parent
        end
        else begin
          Array.unsafe_set prios i priority;
          Array.unsafe_set metas i meta;
          Array.unsafe_set values i value
        end
    in
    up t.size;
    t.size <- t.size + 1

  let drop t =
    if t.size = 0 then invalid_arg "Pqueue.Int.drop: empty"
    else begin
      t.size <- t.size - 1;
      let n = t.size in
      if n > 0 then begin
        let prios = t.prios and metas = t.metas and values = t.values in
        let lp = Array.unsafe_get prios n
        and lm = Array.unsafe_get metas n
        and lv = Array.unsafe_get values n in
        let rec down i =
          let left = (2 * i) + 1 in
          if left >= n then begin
            Array.unsafe_set prios i lp;
            Array.unsafe_set metas i lm;
            Array.unsafe_set values i lv
          end
          else begin
            let right = left + 1 in
            let best =
              if
                right < n
                && before
                     (Array.unsafe_get prios right)
                     (Array.unsafe_get metas right)
                     (Array.unsafe_get prios left)
                     (Array.unsafe_get metas left)
              then right
              else left
            in
            if
              before
                (Array.unsafe_get prios best)
                (Array.unsafe_get metas best)
                lp lm
            then begin
              Array.unsafe_set prios i (Array.unsafe_get prios best);
              Array.unsafe_set metas i (Array.unsafe_get metas best);
              Array.unsafe_set values i (Array.unsafe_get values best);
              down best
            end
            else begin
              Array.unsafe_set prios i lp;
              Array.unsafe_set metas i lm;
              Array.unsafe_set values i lv
            end
          end
        in
        down 0
      end
    end

  let peek_priority t = if t.size = 0 then None else Some t.prios.(0)

  let top_priority_exn t =
    if t.size = 0 then invalid_arg "Pqueue.Int.top_priority_exn: empty"
    else t.prios.(0)

  let top t =
    if t.size = 0 then invalid_arg "Pqueue.Int.top: empty" else t.values.(0)
end
