(** The OASIS search engine (§3, Algorithms 1-3).

    A best-first A* search over a suffix tree: each search node
    corresponds to a tree node and stores one Smith-Waterman-style
    column [B] for the alignments that end exactly at its path end,
    together with the best score [max_score] already found along the
    path and an admissible upper bound (the priority) on anything its
    subtree can still produce. Expanding a node fills the DP columns for
    the symbols of a child arc, applying the three §3.2 pruning rules.

    When a node whose bound is exact (an {e accepted} node) reaches the
    head of the queue, no remaining path can beat it, so its sequences
    are reported immediately — results stream out in non-increasing
    score order, which is the paper's online property.

    Scores agree exactly with {!Align.Smith_waterman.search}: one hit
    per sequence, its maximum local-alignment score, for every sequence
    whose score reaches [min_score]. *)

type options = {
  prune_nonpositive : bool;  (** §3.2 rule 1 *)
  prune_dominated : bool;  (** §3.2 rule 2 *)
  heuristic : Heuristic.style;
}
(** Switching a rule off keeps results identical and is only slower —
    the ablation benchmarks measure by how much. *)

val default_options : options

type budget = {
  max_columns : int option;  (** stop after this many DP columns *)
  max_expanded : int option;  (** stop after this many node expansions *)
  time_limit : float option;  (** wall-clock seconds from [create] *)
}
(** Resource limits for one search. The budget is checked between queue
    pops, so a stop is clean — no partial hit is ever emitted — but may
    overshoot by one arc expansion. Because the engine is best-first,
    truncation degrades gracefully: everything already reported is
    exact and final, and {!Make.outcome} carries an admissible bound on
    the score of anything left unreported. *)

val unlimited : budget

val budget :
  ?max_columns:int -> ?max_expanded:int -> ?time_limit:float -> unit -> budget
(** Raises [Invalid_argument] on a negative limit. *)

type config = {
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
      (** [Linear] is the paper's fixed gap model (§4.2); [Affine]
          (Gotoh) is this implementation's extension of the paper's §6
          future work — the engine then carries two DP vectors per
          search node. Results agree with the correspondingly-configured
          Smith-Waterman under either model. *)
  min_score : int;  (** >= 1 *)
  options : options;
  budget : budget;
}

val config :
  ?options:options ->
  ?budget:budget ->
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  min_score:int ->
  unit ->
  config

val config_for_evalue :
  ?options:options ->
  ?budget:budget ->
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  params:Scoring.Karlin.params ->
  query_length:int ->
  db_symbols:int ->
  evalue:float ->
  unit ->
  config
(** Equation 3: translate a BLAST-style E-value cutoff into
    [min_score]. *)

(** Where a search stands after any number of {!Make.next} calls:

    - [Searching] — viable work remains and the budget permits it;
    - [Complete] — the result set is exact: the queue drained (or every
      sequence was reported) with the budget intact;
    - [Exhausted] — the budget ran out with viable nodes still queued.
      Hits already returned are exact; any unreported hit scores at most
      [remaining_bound] (the frontier's {!Make.peek_bound} at the moment
      the search stopped). *)
type outcome = Searching | Complete | Exhausted of { remaining_bound : int }

(** Search-trace events, mirroring the §3.3 worked example's narration:
    one event per queue pop and per reported hit. Attach an observer
    with [Make.set_tracer] (pedagogy and debugging; zero cost when
    unset). *)
type trace_event =
  | Popped of {
      priority : int;
      accepted : bool;
      depth : int;  (** path length of the popped node *)
      max_score : int;
      queue_length : int;
    }
  | Reported of { seq_index : int; score : int }

type counters = Counters.t = {
  columns : int;  (** DP columns filled — the Figure 4 metric *)
  nodes_expanded : int;
  nodes_enqueued : int;
  nodes_pruned : int;  (** children discarded as unviable *)
  max_queue : int;
  pool_reused : int;
      (** column-arena acquisitions served by recycling a released slot
          (vs growing the backing store) *)
  pool_live : int;  (** arena slots held by queued viable nodes *)
  pool_peak_live : int;
  pool_peak_bytes : int;
      (** arena backing-store size — its high-water mark, since the
          store never shrinks *)
  minor_words : float;
      (** minor-heap words allocated since [create], engine work and
          caller work alike ([Gc.minor_words] delta, per-domain in
          OCaml 5) — divide by [columns] for the words-per-column figure
          the bench reports *)
  io_hits : int;
      (** buffer-pool accesses served from a resident block since
          [create] (0 for {!Mem} engines) *)
  io_misses : int;
      (** buffer-pool accesses that went to the device since [create]
          (0 for {!Mem} engines) *)
}
(** Re-export of {!Counters.t} (aggregate across engines with
    {!Counters.merge}, never ad-hoc addition — the pool_* gauges must
    not be summed). The pool_* fields observe the {!Col_pool} column
    arena behind the hot path: DP columns live in a recycled flat
    backing store, so a steady-state search allocates (almost) nothing
    per column. Set [OASIS_CHECKED_KERNEL=1] to re-enable bounds checks
    in the kernel's array accesses when debugging. *)

module Make (S : Source.S) : sig
  type t

  (** A session owns the reusable per-search scratch — the {!Col_pool}
      column arena, the {!Pqueue} frontier heap, and the emit sort
      buffer — separated from everything tied to one query. This is the
      serving layer's reentrancy unit: K sessions over one shared,
      immutable tree image run K independent searches, and a long-lived
      server keeps one session per worker so a steady-state request
      reuses the previous request's high-water capacity instead of
      growing fresh arenas.

      A session serves one engine at a time: passing it to [create]
      resets the scratch, which {e invalidates} any earlier engine
      built on the same session (calling [next] on it afterwards is a
      contract violation — don't). Sessions are single-owner and not
      thread-safe, exactly like the scratch they carry. *)
  module Session : sig
    type t

    val create : unit -> t
  end

  val create :
    ?session:Session.t ->
    ?filter:Quasar.Profile.t ->
    source:S.t ->
    db:Bioseq.Database.t ->
    query:Bioseq.Sequence.t ->
    config ->
    t
  (** Raises [Invalid_argument] on an empty query, [min_score < 1], or
      an alphabet mismatch. [db] must be the database the tree was built
      on. [session] lends the engine its scratch (default: a private
      fresh one); the resulting hit stream is bit-identical either way —
      only allocation behaviour differs (a reused session starts at its
      previous capacity, so the [pool_peak_bytes] counter can exceed a
      fresh run's).

      [filter] arms the exactness-preserving q-gram tier
      (DESIGN.md §2k): subtrees the generalized q-gram lemma proves
      cannot reach [min_score] are settled before their first DP
      column. The profile must describe the same database image; the
      hit stream is bit-identical with or without it — only the work
      counters (and {!filter_stats}) change. A configuration the lemma
      cannot serve (query shorter than the profile's q, non-negative
      gap-extension score) silently disarms the tier. *)

  val create_profile :
    ?session:Session.t ->
    source:S.t ->
    db:Bioseq.Database.t ->
    profile:Scoring.Pssm.t ->
    ?options:options ->
    ?budget:budget ->
    gap:Scoring.Gap.t ->
    min_score:int ->
    unit ->
    t
  (** Profile (PSSM) search: exactly like {!create} but scoring each
      query position with its own column of scores. With
      [Scoring.Pssm.of_query] this degenerates to the plain-matrix
      search (property-tested); with a family-derived profile it is the
      exact equivalent of a PSI-BLAST-style profile scan. *)

  val next : t -> Hit.t option
  (** The next result, online: strictly non-increasing scores across
      calls; each sequence appears at most once. [None] when the queue
      is exhausted, every sequence has been reported, or the configured
      {!budget} ran out — distinguish with {!outcome}. *)

  val run : ?limit:int -> t -> Hit.t list
  (** Drain [next] (up to [limit] results). *)

  val set_tracer : t -> (trace_event -> unit) -> unit
  (** Observe the search as it runs (see {!trace_event}). *)

  val set_instrument : t -> Instrument.t option -> unit
  (** Attach (or detach) observability hooks: the phase timer runs for
      the exact span of each {!next} call, expansion-depth and
      arc-column histograms fill, and — when the instrument carries a
      trace sink — one ["expand"] event per expanded node plus ["hit"]
      and ["queue_hwm"] events stream out. With [None] (the default)
      every hook site costs one pointer compare; the kernel bench gates
      that this stays within the shared tolerance. *)

  val peek_bound : t -> int option
  (** An upper bound on the score of every hit {!next} can still return
      ([None] once nothing remains). Non-increasing across calls; used by
      {!Evalue_stream} to re-order hits by length-adjusted E-value
      without losing the online property. *)

  val frontier_bound : t -> int
  (** {!peek_bound} without the option box: [Scoring.Submat.neg_inf]
      once nothing remains. This is the merge-release bound the sharded
      {!Parallel} coordinator compares against after every hit. *)

  val counters : t -> counters
  val queue_length : t -> int
  val reported : t -> int

  val bound_stats : t -> int * int
  (** [(reused, recomputed)]: sibling arcs settled by the shared pre-DP
      parent-aggregate bound alone versus arcs that ran the full DP arc
      walk. With the q-gram tier off, their sum counts every
      non-terminator child arc expanded so far; with it on, arcs the
      tier settles (see {!filter_stats}) belong to neither side, so the
      sum undercounts by exactly that many. Purely informational — the
      reused arcs still contribute their one logical column to
      {!counters}' [columns], which stays bit-identical to the
      reference engine's. *)

  val filter_stats : t -> int * int * int
  (** [(tested, settled_coarse, settled_refined)] for the q-gram tier:
      arcs the settle test examined (ALAE survivors with a usable
      profile entry), arcs settled by the whole-column coarse bound,
      and arcs settled by the per-cell refinement. All zero when no
      [filter] was supplied. Unlike an ALAE settle, a q-gram settle
      removes work the unfiltered engine would really do (the whole
      subtree), so [columns] with the tier on is [<=] the unfiltered
      count — while the hit stream stays bit-identical. *)

  val outcome : t -> outcome
  (** See {!outcome}. Once [Exhausted], further {!next} calls return
      [None] without resuming; the value is stable. *)
end

(** Minimal pull interface shared by every engine instantiation (what
    {!Evalue_stream} needs). *)
module type DRIVER = sig
  type t

  val next : t -> Hit.t option
  val peek_bound : t -> int option
end

module Mem : module type of Make (Source.Mem)
(** Engine over the in-memory {!Suffix_tree.Tree}. *)

module Packed : module type of Make (Source.Packed)
(** Engine over the flat {!Suffix_tree.Packed} image: bit-identical
    hit streams and counters to {!Mem} over the packing's origin tree,
    with the expansion phase's tree walk turned into sequential array
    scans (the throughput benchmarks use this instantiation). *)

module Disk : module type of Make (Source.Disk)
(** Engine over the paged {!Storage.Disk_tree}; every tree and symbol
    access goes through the buffer pool. *)
