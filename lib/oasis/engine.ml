type options = {
  prune_nonpositive : bool;
  prune_dominated : bool;
  heuristic : Heuristic.style;
}

let default_options =
  { prune_nonpositive = true; prune_dominated = true; heuristic = Heuristic.Safe }

type budget = {
  max_columns : int option;
  max_expanded : int option;
  time_limit : float option;
}

let unlimited = { max_columns = None; max_expanded = None; time_limit = None }

let budget ?max_columns ?max_expanded ?time_limit () =
  (match max_columns with
  | Some l when l < 0 -> invalid_arg "Oasis.Engine.budget: max_columns < 0"
  | _ -> ());
  (match max_expanded with
  | Some l when l < 0 -> invalid_arg "Oasis.Engine.budget: max_expanded < 0"
  | _ -> ());
  (match time_limit with
  | Some s when s < 0. -> invalid_arg "Oasis.Engine.budget: time_limit < 0"
  | _ -> ());
  { max_columns; max_expanded; time_limit }

type config = {
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
  min_score : int;
  options : options;
  budget : budget;
}

let config ?(options = default_options) ?(budget = unlimited) ~matrix ~gap
    ~min_score () =
  { matrix; gap; min_score; options; budget }

let config_for_evalue ?(options = default_options) ?(budget = unlimited)
    ~matrix ~gap ~params ~query_length ~db_symbols ~evalue () =
  let min_score =
    Scoring.Karlin.score_for_evalue params ~m:query_length ~n:db_symbols ~evalue
  in
  { matrix; gap; min_score; options; budget }

type outcome = Searching | Complete | Exhausted of { remaining_bound : int }

type trace_event =
  | Popped of {
      priority : int;
      accepted : bool;
      depth : int;
      max_score : int;
      queue_length : int;
    }
  | Reported of { seq_index : int; score : int }

type counters = Counters.t = {
  columns : int;
  nodes_expanded : int;
  nodes_enqueued : int;
  nodes_pruned : int;
  max_queue : int;
  pool_reused : int;
  pool_live : int;
  pool_peak_live : int;
  pool_peak_bytes : int;
  minor_words : float;
  io_hits : int;
  io_misses : int;
}

let neg_inf = Scoring.Submat.neg_inf

(* Shared with the fused batch kernel — see [Kernel_util]. *)
let sort_range = Kernel_util.sort_range
let checked_kernel = Kernel_util.checked

module Make (S : Source.S) = struct
  type snode = {
    tree_node : S.node;
    slot : int;
        (** column-arena slot holding this node's DP vector(s); [-1] for
            accepted nodes, which are never expanded *)
    depth : int;  (** path length in symbols *)
    max_score : int;
    max_q : int;  (** query end (exclusive) of the max_score alignment *)
    max_off : int;  (** path offset (depth) where it ends *)
    accepted : bool;
  }

  (* A session owns the per-search mutable scratch — column arena,
     priority queue, emit sort buffer — and nothing tied to one query.
     Engines borrow a session at [create]; a fresh one is made when the
     caller passes none, so single-shot searches are unchanged. A
     long-lived server keeps one session per worker and reuses it across
     requests: the arena and heap keep their high-water capacity, so a
     steady-state request allocates (almost) nothing, while K sessions
     share one immutable tree image. *)
  type session = {
    ses_pool : Col_pool.t;
    ses_pq : snode Pqueue.t;
    mutable ses_emit_buf : int array;
        (** scratch positions buffer for {!emit}; grown on demand,
            reused across hits and across searches *)
  }

  module Session = struct
    type t = session

    let create () =
      {
        ses_pool = Col_pool.create ~width:1;
        ses_pq = Pqueue.create ();
        ses_emit_buf = Array.make 64 0;
      }
  end

  type t = {
    source : S.t;
    db : Bioseq.Database.t;
    m : int;
    hvec : int array;
    cfg : config;
    cols : int array;
        (** symbol-major scoring table [dim * m]:
            [cols.((c * m) + (i - 1))] scores symbol [c] against query
            position [i] — one contiguous row per database symbol, so a
            DP column (fixed [c], [i] sweeping) is a stride-1 scan *)
    gap_open : int;  (** score of a gap run's first symbol (negative) *)
    gap_extend : int;  (** score of each further gap symbol (negative) *)
    min_score : int;  (** = cfg.min_score, hoisted for the kernel *)
    opt_pn : bool;  (** = cfg.options.prune_nonpositive *)
    opt_pd : bool;  (** = cfg.options.prune_dominated *)
    affine : bool;
    term : int;
    ses : session;  (** owns the scratch below (and the emit buffer) *)
    pool : Col_pool.t;
        (** = [ses.ses_pool]; slot width [m + 1] (linear) or
            [2 * (m + 1)] (affine, [B] then Gotoh's [D] vector in one
            slot) *)
    pq : snode Pqueue.t;  (** = [ses.ses_pq] *)
    reported_seq : bool array;
    mutable reported_count : int;
    pending : Hit.t Queue.t;
    mutable c_columns : int;
    mutable c_expanded : int;
    mutable c_enqueued : int;
    mutable c_pruned : int;
    mutable c_max_queue : int;
    (* Scratch registers for the closure-free kernel: loaded from the
       parent node before an arc walk, stored into the child snode (or
       discarded) after. Only one arc is ever in flight. *)
    mutable sc_best : int;
    mutable sc_best_q : int;
    mutable sc_best_off : int;
    mutable sc_ub : int;  (** arc result: the viable node's priority *)
    mutable sc_depth : int;  (** arc result: the viable node's depth *)
    mutable tracer : (trace_event -> unit) option;
    mutable obs : Instrument.t option;
        (** observability hooks; [None] (the default) costs one pointer
            compare per hook site on the hot path *)
    base_minor_words : float;  (** [Gc.minor_words] at creation *)
    base_io_hits : int;
    base_io_misses : int;
        (** [S.io_stats] at creation — opening and verifying an index
            does its own pool reads; counters report the search's
            share *)
    deadline : float;  (** absolute; [infinity] when no time limit *)
    mutable exhausted : int option;
        (** [Some bound] once the budget stopped the search with viable
            nodes still queued; [bound] is the admissible bound on
            everything left unreported *)
  }

  (* Checked-mode validation, once per DP column: every unsafe access
     in the loops below stays inside these ranges ([w.(lo .. hi + m)],
     [cols.(c*m .. c*m + m - 1)], [hvec.(0 .. m)]). *)
  let check_column t (w : int array) lo hi c =
    if
      lo < 0
      || hi + t.m >= Array.length w
      || c < 0
      || (c + 1) * t.m > Array.length t.cols
      || Array.length t.hvec <> t.m + 1
    then invalid_arg "Oasis.Engine: kernel index range violation"

  (* Fallback bound for an arc that contributed no DP column: scan the
     (inherited) column once, as the pre-arena engine's second pass did.
     When at least one column ran, the fused per-column bound already
     equals this scan's result over the final column, so the kernel
     skips it. *)
  let rescan t (w : int array) off =
    let rec go i ub =
      if i > t.m then ub
      else
        let v = w.(off + i) in
        let ub =
          if v > neg_inf && v + t.hvec.(i) > ub then v + t.hvec.(i) else ub
        in
        go (i + 1) ub
    in
    go 0 neg_inf

  (* One linear-model DP column, in place at [w.(off .. off + m)], fused
     with the upper-bound computation. [diag] carries the previous
     column's value one row up; [crow = c * m - 1] indexes the symbol's
     stride-1 score row. Returns the column's admissible bound; the
     running best lives in the scratch registers. Arguments are plain
     ints so the loop allocates nothing (no closures, no refs), the §3.2
     pruning cascade is written out inline — without flambda an
     out-of-line cascade costs a call per cell — and every [max] is an
     explicit int comparison (the polymorphic [Stdlib.max] keeps its
     generic [>=], a C call, when the compiler is not flambda). *)
  let rec lin_rows t (w : int array) off crow i diag ub depth =
    if i > t.m then ub
    else begin
      let wi = Array.unsafe_get w (off + i) in
      let repl =
        if diag = neg_inf then neg_inf
        else diag + Array.unsafe_get t.cols (crow + i)
      in
      let del = if wi = neg_inf then neg_inf else wi + t.gap_extend in
      let prev = Array.unsafe_get w (off + i - 1) in
      let ins = if prev = neg_inf then neg_inf else prev + t.gap_extend in
      let hv = Array.unsafe_get t.hvec i in
      let dm = if del >= ins then del else ins in
      let v = if repl >= dm then repl else dm in
      let v =
        if v = neg_inf then neg_inf
        else if t.opt_pn && v <= 0 then neg_inf
        else if t.opt_pd && v + hv <= t.sc_best then neg_inf
        else if v + hv < t.min_score then neg_inf
        else v
      in
      Array.unsafe_set w (off + i) v;
      let ub =
        if v > neg_inf then begin
          if v > t.sc_best then begin
            t.sc_best <- v;
            t.sc_best_q <- i;
            t.sc_best_off <- depth
          end;
          if v + hv > ub then v + hv else ub
        end
        else ub
      in
      lin_rows t w off crow (i + 1) wi ub depth
    end

  (* [lin_rows] specialized for the default pruning configuration (both
     rules on — the only one the CLI and bench exercise). The three
     cascade thresholds collapse into one cutoff
     [cut = max sc_best (min_score - 1)], maintained incrementally as
     the best improves, so a cell lives iff [v > 0 && v + hvec(i) > cut]
     — two compares instead of four (rule 1 subsumes the [neg_inf]
     guard). [left] carries the just-written cell so the loop reads [w]
     once per row. Cell-for-cell equivalent to [lin_rows] with both
     flags set: [v + hv <= max best (min_score - 1)] iff
     [v + hv <= best || v + hv < min_score]. *)
  let rec lin_rows_def t (w : int array) off crow i diag left ub cut depth =
    if i > t.m then ub
    else begin
      let wi = Array.unsafe_get w (off + i) in
      let ge = t.gap_extend in
      let repl =
        if diag = neg_inf then neg_inf
        else diag + Array.unsafe_get t.cols (crow + i)
      in
      let del = if wi = neg_inf then neg_inf else wi + ge in
      let ins = if left = neg_inf then neg_inf else left + ge in
      let dm = if del >= ins then del else ins in
      let v = if repl >= dm then repl else dm in
      let s = v + Array.unsafe_get t.hvec i in
      if v <= 0 || s <= cut then begin
        Array.unsafe_set w (off + i) neg_inf;
        lin_rows_def t w off crow (i + 1) wi neg_inf ub cut depth
      end
      else begin
        Array.unsafe_set w (off + i) v;
        let ub = if s > ub then s else ub in
        if v > t.sc_best then begin
          t.sc_best <- v;
          t.sc_best_q <- i;
          t.sc_best_off <- depth;
          let cut = if v > cut then v else cut in
          lin_rows_def t w off crow (i + 1) wi v ub cut depth
        end
        else lin_rows_def t w off crow (i + 1) wi v ub cut depth
      end
    end

  let lin_column t w off c depth =
    if checked_kernel then check_column t w off off c;
    (* Row 0: the empty query prefix. Off the root it can only be
       reached by deleting target symbols, which other tree paths cover;
       it is pruned by rule 1 (or kept, negative, when the rule is off —
       harmless either way). *)
    let w0 = Array.unsafe_get w off in
    let w0' =
      if w0 = neg_inf then neg_inf
      else
        let v = w0 + t.gap_extend in
        if t.opt_pn && v <= 0 then neg_inf else v
    in
    Array.unsafe_set w off w0';
    let ub = if w0' = neg_inf then neg_inf else w0' + Array.unsafe_get t.hvec 0 in
    let crow = (c * t.m) - 1 in
    if t.opt_pn && t.opt_pd then
      let ms1 = t.min_score - 1 in
      let cut = if t.sc_best >= ms1 then t.sc_best else ms1 in
      lin_rows_def t w off crow 1 w0 w0' ub cut depth
    else lin_rows t w off crow 1 w0 ub depth

  (* One affine-model (Gotoh) column: [off] addresses the B vector,
     [offd] the D vector (delete-run scores), both in the same arena
     slot. [ins] threads the insert-run score down the column. *)
  let rec aff_rows t (w : int array) off offd crow i diag ins ub depth =
    if i > t.m then ub
    else begin
      let whi = Array.unsafe_get w (off + i) in
      let wdi = Array.unsafe_get w (offd + i) in
      (* Delete run: previous column's B/D at row i (not yet
         overwritten). *)
      let d1 = if whi = neg_inf then neg_inf else whi + t.gap_open in
      let d2 = if wdi = neg_inf then neg_inf else wdi + t.gap_extend in
      let d = if d1 >= d2 then d1 else d2 in
      (* Insert run: current column, one row up. *)
      let prev = Array.unsafe_get w (off + i - 1) in
      let i1 = if prev = neg_inf then neg_inf else prev + t.gap_open in
      let i2 = if ins = neg_inf then neg_inf else ins + t.gap_extend in
      let ins = if i1 >= i2 then i1 else i2 in
      let repl =
        if diag = neg_inf then neg_inf
        else diag + Array.unsafe_get t.cols (crow + i)
      in
      let hv = Array.unsafe_get t.hvec i in
      let d =
        if d = neg_inf then neg_inf
        else if t.opt_pn && d <= 0 then neg_inf
        else if t.opt_pd && d + hv <= t.sc_best then neg_inf
        else if d + hv < t.min_score then neg_inf
        else d
      in
      let dm = if d >= ins then d else ins in
      let h = if repl >= dm then repl else dm in
      let h =
        if h = neg_inf then neg_inf
        else if t.opt_pn && h <= 0 then neg_inf
        else if t.opt_pd && h + hv <= t.sc_best then neg_inf
        else if h + hv < t.min_score then neg_inf
        else h
      in
      Array.unsafe_set w (offd + i) d;
      Array.unsafe_set w (off + i) h;
      let ub =
        if h > neg_inf then begin
          if h > t.sc_best then begin
            t.sc_best <- h;
            t.sc_best_q <- i;
            t.sc_best_off <- depth
          end;
          if h + hv > ub then h + hv else ub
        end
        else ub
      in
      aff_rows t w off offd crow (i + 1) whi ins ub depth
    end

  (* [aff_rows] specialized like [lin_rows_def]: one [cut] threshold,
     [left] carries the just-written B cell. Both Gotoh cascades (the
     delete-run score and the cell score) use the collapsed test. The
     last two arguments spill to the stack (OCaml passes ten ints in
     registers on amd64) — still far cheaper than the generic cascades. *)
  let rec aff_rows_def t (w : int array) off offd crow i diag ins left ub cut
      depth =
    if i > t.m then ub
    else begin
      let whi = Array.unsafe_get w (off + i) in
      let wdi = Array.unsafe_get w (offd + i) in
      let ge = t.gap_extend in
      let go = t.gap_open in
      let d1 = if whi = neg_inf then neg_inf else whi + go in
      let d2 = if wdi = neg_inf then neg_inf else wdi + ge in
      let d = if d1 >= d2 then d1 else d2 in
      let i1 = if left = neg_inf then neg_inf else left + go in
      let i2 = if ins = neg_inf then neg_inf else ins + ge in
      let ins = if i1 >= i2 then i1 else i2 in
      let repl =
        if diag = neg_inf then neg_inf
        else diag + Array.unsafe_get t.cols (crow + i)
      in
      let hv = Array.unsafe_get t.hvec i in
      let d = if d <= 0 || d + hv <= cut then neg_inf else d in
      let dm = if d >= ins then d else ins in
      let h = if repl >= dm then repl else dm in
      Array.unsafe_set w (offd + i) d;
      let s = h + hv in
      if h <= 0 || s <= cut then begin
        Array.unsafe_set w (off + i) neg_inf;
        aff_rows_def t w off offd crow (i + 1) whi ins neg_inf ub cut depth
      end
      else begin
        Array.unsafe_set w (off + i) h;
        let ub = if s > ub then s else ub in
        if h > t.sc_best then begin
          t.sc_best <- h;
          t.sc_best_q <- i;
          t.sc_best_off <- depth;
          let cut = if h > cut then h else cut in
          aff_rows_def t w off offd crow (i + 1) whi ins h ub cut depth
        end
        else aff_rows_def t w off offd crow (i + 1) whi ins h ub cut depth
      end
    end

  let aff_column t w off offd c depth =
    if checked_kernel then check_column t w off offd c;
    let wh0 = Array.unsafe_get w off in
    let wd0 = Array.unsafe_get w offd in
    (* Row 0: reachable only through a delete run. *)
    let d1 = if wh0 = neg_inf then neg_inf else wh0 + t.gap_open in
    let d2 = if wd0 = neg_inf then neg_inf else wd0 + t.gap_extend in
    let d0 = if d1 >= d2 then d1 else d2 in
    let hv0 = Array.unsafe_get t.hvec 0 in
    let d0 =
      if d0 = neg_inf then neg_inf
      else if t.opt_pn && d0 <= 0 then neg_inf
      else if t.opt_pd && d0 + hv0 <= t.sc_best then neg_inf
      else if d0 + hv0 < t.min_score then neg_inf
      else d0
    in
    Array.unsafe_set w offd d0;
    Array.unsafe_set w off d0;
    let ub = if d0 = neg_inf then neg_inf else d0 + hv0 in
    let crow = (c * t.m) - 1 in
    if t.opt_pn && t.opt_pd then
      let ms1 = t.min_score - 1 in
      let cut = if t.sc_best >= ms1 then t.sc_best else ms1 in
      aff_rows_def t w off offd crow 1 wh0 neg_inf d0 ub cut depth
    else aff_rows t w off offd crow 1 wh0 neg_inf ub depth

  (* Walk one child arc's symbols (Algorithm 3), columns fused with
     bounds. Returns a status code, with details in the scratch
     registers:
     - [0]: unviable, discard;
     - [1]: viable — enqueue with priority [t.sc_ub], depth [t.sc_depth];
     - [2]: bound is exact (terminator hit, or no extension can beat
       [t.sc_best]) — enqueue as accepted iff [sc_best >= min_score].
     [last_ub] is [min_int] until the first column of this arc runs. *)
  let rec lin_arc t w off idx stop depth last_ub =
    if idx >= stop then begin
      t.sc_ub <- (if last_ub <> min_int then last_ub else rescan t w off);
      t.sc_depth <- depth;
      1
    end
    else
      let c = S.symbol t.source idx in
      if c = t.term then 2
      else begin
        t.c_columns <- t.c_columns + 1;
        let depth = depth + 1 in
        let ub = lin_column t w off c depth in
        if ub <= t.sc_best then 2
        else if ub < t.min_score then 0
        else lin_arc t w off (idx + 1) stop depth ub
      end

  let rec aff_arc t w off offd idx stop depth last_ub =
    if idx >= stop then begin
      t.sc_ub <- (if last_ub <> min_int then last_ub else rescan t w off);
      t.sc_depth <- depth;
      1
    end
    else
      let c = S.symbol t.source idx in
      if c = t.term then 2
      else begin
        t.c_columns <- t.c_columns + 1;
        let depth = depth + 1 in
        let ub = aff_column t w off offd c depth in
        if ub <= t.sc_best then 2
        else if ub < t.min_score then 0
        else aff_arc t w off offd (idx + 1) stop depth ub
      end

  (* Every obs hook is one [match] on [t.obs] when instrumentation is
     off; the bench gate holds the disabled-hook overhead on the kernel
     experiment under the shared tolerance. *)
  let[@inline] obs_phase t p =
    match t.obs with
    | None -> ()
    | Some o -> Obs.Timer.switch o.Instrument.timer p

  (* Expand one child arc: acquire a slot, copy the parent's column(s)
     into it, run the fused kernel, then enqueue or recycle. The parent's
     own slot is released by [next] after all children are expanded. *)
  let expand t parent child =
    let start = S.label_start t.source child in
    let stop = S.label_end t.source child in
    let slot = Col_pool.acquire t.pool in
    Col_pool.blit t.pool ~src:parent.slot ~dst:slot;
    (* Read the backing store only after [acquire] — growth replaces it. *)
    let w = Col_pool.data t.pool in
    let off = Col_pool.base t.pool slot in
    t.sc_best <- parent.max_score;
    t.sc_best_q <- parent.max_q;
    t.sc_best_off <- parent.max_off;
    let cols_before = t.c_columns in
    obs_phase t Instrument.phase_dp;
    let status =
      if t.affine then
        aff_arc t w off (off + t.m + 1) start stop parent.depth min_int
      else lin_arc t w off start stop parent.depth min_int
    in
    (match t.obs with
    | None -> ()
    | Some o ->
      Obs.Timer.switch o.Instrument.timer Instrument.phase_expand;
      Obs.Metric.observe o.Instrument.arc_columns (t.c_columns - cols_before));
    match status with
    | 0 ->
      Col_pool.release t.pool slot;
      t.c_pruned <- t.c_pruned + 1
    | 1 ->
      t.c_enqueued <- t.c_enqueued + 1;
      Pqueue.push_tie t.pq ~priority:t.sc_ub ~tie:1
        {
          tree_node = child;
          slot;
          depth = t.sc_depth;
          max_score = t.sc_best;
          max_q = t.sc_best_q;
          max_off = t.sc_best_off;
          accepted = false;
        }
    | _ ->
      (* Bound exact: the node needs no column any more. *)
      Col_pool.release t.pool slot;
      if t.sc_best >= t.min_score then begin
        t.c_enqueued <- t.c_enqueued + 1;
        Pqueue.push_tie t.pq ~priority:t.sc_best ~tie:0
          {
            tree_node = child;
            slot = -1;
            depth = 0;
            max_score = t.sc_best;
            max_q = t.sc_best_q;
            max_off = t.sc_best_off;
            accepted = true;
          }
      end
      else t.c_pruned <- t.c_pruned + 1

  (* Shared constructor: [cols]/[hvec] come either from a matrix and a
     query or from a position-specific profile. A borrowed [session] is
     reset for this search, which invalidates any previous engine that
     was using it. *)
  let create_internal ?session ~source ~db ~profile (cfg : config) =
    if cfg.min_score < 1 then
      invalid_arg "Oasis.Engine.create: min_score must be >= 1";
    if
      Bioseq.Alphabet.name (Scoring.Pssm.alphabet profile)
      <> Bioseq.Alphabet.name (Bioseq.Database.alphabet db)
    then invalid_arg "Oasis.Engine.create: alphabet mismatch";
    let m = Scoring.Pssm.length profile in
    let hvec =
      Heuristic.vector_of_profile ~style:cfg.options.heuristic ~gap:cfg.gap
        profile
    in
    let affine = not (Scoring.Gap.is_linear cfg.gap) in
    let width = (m + 1) * if affine then 2 else 1 in
    let ses =
      match session with
      | Some s ->
        Col_pool.reset s.ses_pool ~width;
        Pqueue.clear s.ses_pq;
        s
      | None ->
        {
          ses_pool = Col_pool.create ~width;
          ses_pq = Pqueue.create ();
          ses_emit_buf = Array.make 64 0;
        }
    in
    let t =
      {
        source;
        db;
        m;
        hvec;
        cfg;
        cols = Scoring.Pssm.cols_flat profile;
        gap_open = Scoring.Gap.open_score cfg.gap;
        gap_extend = Scoring.Gap.extend_score cfg.gap;
        min_score = cfg.min_score;
        opt_pn = cfg.options.prune_nonpositive;
        opt_pd = cfg.options.prune_dominated;
        affine;
        term = S.terminator source;
        ses;
        pool = ses.ses_pool;
        pq = ses.ses_pq;
        reported_seq = Array.make (Bioseq.Database.num_sequences db) false;
        reported_count = 0;
        pending = Queue.create ();
        c_columns = 0;
        c_expanded = 0;
        c_enqueued = 0;
        c_pruned = 0;
        c_max_queue = 0;
        sc_best = 0;
        sc_best_q = 0;
        sc_best_off = 0;
        sc_ub = neg_inf;
        sc_depth = 0;
        tracer = None;
        obs = None;
        base_minor_words = Gc.minor_words ();
        base_io_hits = (let h, _ = S.io_stats source in h);
        base_io_misses = (let _, m = S.io_stats source in m);
        deadline =
          (match cfg.budget.time_limit with
          | None -> infinity
          | Some s -> Unix.gettimeofday () +. s);
        exhausted = None;
      }
    in
    (* Algorithm 2: seed the queue with the root. Root B entries are 0
       (the empty partial alignment may start at any query position);
       entries that cannot reach min_score are pruned. *)
    let priority = ref neg_inf in
    for i = 0 to m do
      if hvec.(i) >= cfg.min_score && hvec.(i) > !priority then
        priority := hvec.(i)
    done;
    if !priority > neg_inf then begin
      let slot = Col_pool.acquire t.pool in
      Col_pool.fill t.pool slot neg_inf;
      let w = Col_pool.data t.pool in
      let off = Col_pool.base t.pool slot in
      for i = 0 to m do
        if hvec.(i) >= cfg.min_score then w.(off + i) <- 0
      done;
      Pqueue.push t.pq ~priority:!priority ~tie:1
        {
          tree_node = S.root source;
          slot;
          depth = 0;
          max_score = 0;
          max_q = 0;
          max_off = 0;
          accepted = false;
        };
      t.c_enqueued <- 1;
      t.c_max_queue <- 1
    end;
    t

  let create ?session ~source ~db ~query cfg =
    if Bioseq.Sequence.length query = 0 then
      invalid_arg "Oasis.Engine.create: empty query";
    if
      Bioseq.Alphabet.name (Scoring.Submat.alphabet cfg.matrix)
      <> Bioseq.Alphabet.name (Bioseq.Sequence.alphabet query)
    then invalid_arg "Oasis.Engine.create: alphabet mismatch";
    create_internal ?session ~source ~db
      ~profile:(Scoring.Pssm.of_query ~matrix:cfg.matrix query)
      cfg

  let create_profile ?session ~source ~db ~profile
      ?(options = default_options) ?(budget = unlimited) ~gap ~min_score () =
    (* The config's matrix slot is irrelevant for profile searches (the
       profile carries all scores); store the unit matrix of the
       profile's alphabet so the record stays self-consistent. *)
    create_internal ?session ~source ~db ~profile
      {
        matrix = Scoring.Submat.unit_edit (Scoring.Pssm.alphabet profile);
        gap;
        min_score;
        options;
        budget;
      }

  let set_tracer t f = t.tracer <- Some f
  let set_instrument t obs = t.obs <- obs

  let trace t event =
    match t.tracer with None -> () | Some f -> f event

  (* Report an accepted node: every not-yet-reported sequence with an
     occurrence below it, in ascending position order. Positions stream
     into a reused scratch buffer and are sorted in place — no list, no
     [List.sort] allocation per hit. *)
  let emit t node =
    let n = ref 0 in
    S.iter_positions t.source node.tree_node (fun p ->
        if !n = Array.length t.ses.ses_emit_buf then begin
          let bigger = Array.make (2 * !n) 0 in
          Array.blit t.ses.ses_emit_buf 0 bigger 0 !n;
          t.ses.ses_emit_buf <- bigger
        end;
        t.ses.ses_emit_buf.(!n) <- p;
        incr n);
    sort_range t.ses.ses_emit_buf 0 (!n - 1);
    for i = 0 to !n - 1 do
      let p = t.ses.ses_emit_buf.(i) in
      let seq_index = Bioseq.Database.seq_of_pos t.db p in
      if not t.reported_seq.(seq_index) then begin
        t.reported_seq.(seq_index) <- true;
        t.reported_count <- t.reported_count + 1;
        let global_stop = p + node.max_off in
        trace t (Reported { seq_index; score = node.max_score });
        (match t.obs with
        | Some { Instrument.trace = Some sink; _ } ->
          Obs.Trace.instant sink "hit"
            ~args:
              [
                ("seq", Obs.Trace.Int seq_index);
                ("score", Obs.Trace.Int node.max_score);
              ]
        | _ -> ());
        Queue.add
          {
            Hit.seq_index;
            score = node.max_score;
            query_stop = node.max_q;
            target_stop =
              global_stop - Bioseq.Database.seq_start t.db seq_index;
          }
          t.pending
      end
    done

  (* Has the configured budget run out? Checked between queue pops, so a
     single arc expansion may overshoot [max_columns] by one arc's worth
     of columns — the stop is clean, not surgical. *)
  let budget_spent t =
    let b = t.cfg.budget in
    (match b.max_columns with Some l -> t.c_columns >= l | None -> false)
    || (match b.max_expanded with Some l -> t.c_expanded >= l | None -> false)
    || (t.deadline < infinity && Unix.gettimeofday () >= t.deadline)

  let rec next_loop t =
    match Queue.take_opt t.pending with
    | Some hit -> Some hit
    | None ->
      if t.reported_count >= Array.length t.reported_seq then None
      else if t.exhausted <> None then None
      else begin
        obs_phase t Instrument.phase_bound;
        if budget_spent t && Pqueue.length t.pq > 0 then begin
          (* Stop with the frontier intact: the head priority is an
             admissible bound on every hit the truncated search would
             still have reported. *)
          (match Pqueue.peek_priority t.pq with
          | Some bound -> t.exhausted <- Some bound
          | None -> assert false);
          None
        end
        else begin
          obs_phase t Instrument.phase_queue;
          match Pqueue.pop t.pq with
          | None -> None
          | Some (priority, node) ->
            trace t
              (Popped
                 {
                   priority;
                   accepted = node.accepted;
                   depth = node.depth;
                   max_score = node.max_score;
                   queue_length = Pqueue.length t.pq;
                 });
            if node.accepted then begin
              obs_phase t Instrument.phase_emit;
              emit t node;
              obs_phase t Instrument.phase_queue
            end
            else begin
              (match t.obs with
              | None -> ()
              | Some o -> (
                Obs.Metric.observe o.Instrument.expansion_depth node.depth;
                match o.Instrument.trace with
                | None -> ()
                | Some sink ->
                  (* One "expand" event per expanded node, so
                     trace_check.py can equate the event count with the
                     nodes_expanded counter. *)
                  Obs.Trace.instant sink "expand"
                    ~args:
                      [
                        ("depth", Obs.Trace.Int node.depth);
                        ("priority", Obs.Trace.Int priority);
                        ("queue", Obs.Trace.Int (Pqueue.length t.pq));
                      ]));
              obs_phase t Instrument.phase_expand;
              t.c_expanded <- t.c_expanded + 1;
              S.iter_children t.source node.tree_node (fun child ->
                  expand t node child);
              (* Every child has copied what it needs: recycle the
                 parent's column. *)
              Col_pool.release t.pool node.slot;
              obs_phase t Instrument.phase_queue;
              let qlen = Pqueue.length t.pq in
              if qlen > t.c_max_queue then begin
                t.c_max_queue <- qlen;
                match t.obs with
                | None -> ()
                | Some o -> (
                  Obs.Metric.set o.Instrument.queue qlen;
                  match o.Instrument.trace with
                  | None -> ()
                  | Some sink ->
                    Obs.Trace.instant sink "queue_hwm"
                      ~args:[ ("queue", Obs.Trace.Int qlen) ])
              end
            end;
            next_loop t
        end
      end

  (* Public [next]: when instrumented, the timer runs for exactly the
     span of the call (started on entry, paused on exit), so per-phase
     times telescope to the instrumented wall time. *)
  let next t =
    match t.obs with
    | None -> next_loop t
    | Some o ->
      Obs.Timer.switch o.Instrument.timer Instrument.phase_queue;
      let hit = next_loop t in
      Obs.Timer.pause o.Instrument.timer;
      hit

  let run ?limit t =
    let rec go acc n =
      match limit with
      | Some l when n >= l -> List.rev acc
      | _ -> (
        match next t with
        | None -> List.rev acc
        | Some hit -> go (hit :: acc) (n + 1))
    in
    go [] 0

  let peek_bound t =
    let from_queue = Pqueue.peek_priority t.pq in
    match Queue.peek_opt t.pending with
    | None -> from_queue
    | Some hit -> (
      match from_queue with
      | None -> Some hit.Hit.score
      | Some p -> Some (max p hit.Hit.score))

  let frontier_bound t =
    match peek_bound t with Some b -> b | None -> neg_inf

  let counters t =
    {
      columns = t.c_columns;
      nodes_expanded = t.c_expanded;
      nodes_enqueued = t.c_enqueued;
      nodes_pruned = t.c_pruned;
      max_queue = t.c_max_queue;
      pool_reused = Col_pool.reused t.pool;
      pool_live = Col_pool.live t.pool;
      pool_peak_live = Col_pool.peak_live t.pool;
      pool_peak_bytes = Col_pool.capacity_bytes t.pool;
      minor_words = Gc.minor_words () -. t.base_minor_words;
      io_hits = (let h, _ = S.io_stats t.source in h - t.base_io_hits);
      io_misses = (let _, m = S.io_stats t.source in m - t.base_io_misses);
    }

  let queue_length t = Pqueue.length t.pq
  let reported t = t.reported_count

  let outcome t =
    match t.exhausted with
    | Some remaining_bound -> Exhausted { remaining_bound }
    | None ->
      if
        Queue.is_empty t.pending
        && (Pqueue.length t.pq = 0
           || t.reported_count >= Array.length t.reported_seq)
      then Complete
      else Searching
end

module type DRIVER = sig
  type t

  val next : t -> Hit.t option
  val peek_bound : t -> int option
end

module Mem = Make (Source.Mem)
module Disk = Make (Source.Disk)
