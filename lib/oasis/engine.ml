type options = {
  prune_nonpositive : bool;
  prune_dominated : bool;
  heuristic : Heuristic.style;
}

let default_options =
  { prune_nonpositive = true; prune_dominated = true; heuristic = Heuristic.Safe }

type budget = {
  max_columns : int option;
  max_expanded : int option;
  time_limit : float option;
}

let unlimited = { max_columns = None; max_expanded = None; time_limit = None }

let budget ?max_columns ?max_expanded ?time_limit () =
  (match max_columns with
  | Some l when l < 0 -> invalid_arg "Oasis.Engine.budget: max_columns < 0"
  | _ -> ());
  (match max_expanded with
  | Some l when l < 0 -> invalid_arg "Oasis.Engine.budget: max_expanded < 0"
  | _ -> ());
  (match time_limit with
  | Some s when s < 0. -> invalid_arg "Oasis.Engine.budget: time_limit < 0"
  | _ -> ());
  { max_columns; max_expanded; time_limit }

type config = {
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
  min_score : int;
  options : options;
  budget : budget;
}

let config ?(options = default_options) ?(budget = unlimited) ~matrix ~gap
    ~min_score () =
  { matrix; gap; min_score; options; budget }

let config_for_evalue ?(options = default_options) ?(budget = unlimited)
    ~matrix ~gap ~params ~query_length ~db_symbols ~evalue () =
  let min_score =
    Scoring.Karlin.score_for_evalue params ~m:query_length ~n:db_symbols ~evalue
  in
  { matrix; gap; min_score; options; budget }

type outcome = Searching | Complete | Exhausted of { remaining_bound : int }

type trace_event =
  | Popped of {
      priority : int;
      accepted : bool;
      depth : int;
      max_score : int;
      queue_length : int;
    }
  | Reported of { seq_index : int; score : int }

type counters = {
  columns : int;
  nodes_expanded : int;
  nodes_enqueued : int;
  nodes_pruned : int;
  max_queue : int;
}

let neg_inf = Scoring.Submat.neg_inf

module Make (S : Source.S) = struct
  type snode = {
    tree_node : S.node;
    b : int array;  (** empty for accepted nodes (never expanded) *)
    bd : int array;
        (** affine gaps only: scores of alignments ending in a
            gap-vs-target run (Gotoh's D matrix column); empty under the
            linear model and for accepted nodes *)
    depth : int;  (** path length in symbols *)
    max_score : int;
    max_q : int;  (** query end (exclusive) of the max_score alignment *)
    max_off : int;  (** path offset (depth) where it ends *)
    accepted : bool;
  }

  type t = {
    source : S.t;
    db : Bioseq.Database.t;
    m : int;
    hvec : int array;
    cfg : config;
    rows : int array;
        (** per-query-position scoring table, row-major [m * dim]:
            [rows.((i-1) * dim + c)] scores symbol [c] against query
            position [i] — a matrix row for plain searches, a PSSM
            column for profile searches *)
    dim : int;
    gap_open : int;  (** score of a gap run's first symbol (negative) *)
    gap_extend : int;  (** score of each further gap symbol (negative) *)
    affine : bool;
    term : int;
    pq : snode Pqueue.t;
    reported_seq : bool array;
    mutable reported_count : int;
    pending : Hit.t Queue.t;
    mutable c_columns : int;
    mutable c_expanded : int;
    mutable c_enqueued : int;
    mutable c_pruned : int;
    mutable c_max_queue : int;
    mutable tracer : (trace_event -> unit) option;
    deadline : float;  (** absolute; [infinity] when no time limit *)
    mutable exhausted : int option;
        (** [Some bound] once the budget stopped the search with viable
            nodes still queued; [bound] is the admissible bound on
            everything left unreported *)
  }

  (* Shared constructor: [rows]/[hvec] come either from a matrix and a
     query or from a position-specific profile. *)
  let create_internal ~source ~db ~profile cfg =
    if cfg.min_score < 1 then
      invalid_arg "Oasis.Engine.create: min_score must be >= 1";
    if
      Bioseq.Alphabet.name (Scoring.Pssm.alphabet profile)
      <> Bioseq.Alphabet.name (Bioseq.Database.alphabet db)
    then invalid_arg "Oasis.Engine.create: alphabet mismatch";
    let m = Scoring.Pssm.length profile in
    let hvec =
      Heuristic.vector_of_profile ~style:cfg.options.heuristic ~gap:cfg.gap
        profile
    in
    let t =
      {
        source;
        db;
        m;
        hvec;
        cfg;
        rows = Scoring.Pssm.rows_flat profile;
        dim = Scoring.Pssm.dim profile;
        gap_open = Scoring.Gap.open_score cfg.gap;
        gap_extend = Scoring.Gap.extend_score cfg.gap;
        affine = not (Scoring.Gap.is_linear cfg.gap);
        term = S.terminator source;
        pq = Pqueue.create ();
        reported_seq = Array.make (Bioseq.Database.num_sequences db) false;
        reported_count = 0;
        pending = Queue.create ();
        c_columns = 0;
        c_expanded = 0;
        c_enqueued = 0;
        c_pruned = 0;
        c_max_queue = 0;
        tracer = None;
        deadline =
          (match cfg.budget.time_limit with
          | None -> infinity
          | Some s -> Unix.gettimeofday () +. s);
        exhausted = None;
      }
    in
    (* Algorithm 2: seed the queue with the root. Root B entries are 0
       (the empty partial alignment may start at any query position);
       entries that cannot reach min_score are pruned. *)
    let b = Array.make (m + 1) neg_inf in
    let priority = ref neg_inf in
    for i = 0 to m do
      if hvec.(i) >= cfg.min_score then begin
        b.(i) <- 0;
        if hvec.(i) > !priority then priority := hvec.(i)
      end
    done;
    if !priority > neg_inf then begin
      Pqueue.push t.pq ~priority:!priority ~tie:1
        {
          tree_node = S.root source;
          b;
          bd = (if t.affine then Array.make (m + 1) neg_inf else [||]);
          depth = 0;
          max_score = 0;
          max_q = 0;
          max_off = 0;
          accepted = false;
        };
      t.c_enqueued <- 1;
      t.c_max_queue <- 1
    end;
    t

  let create ~source ~db ~query cfg =
    if Bioseq.Sequence.length query = 0 then
      invalid_arg "Oasis.Engine.create: empty query";
    if
      Bioseq.Alphabet.name (Scoring.Submat.alphabet cfg.matrix)
      <> Bioseq.Alphabet.name (Bioseq.Sequence.alphabet query)
    then invalid_arg "Oasis.Engine.create: alphabet mismatch";
    create_internal ~source ~db
      ~profile:(Scoring.Pssm.of_query ~matrix:cfg.matrix query)
      cfg

  let create_profile ~source ~db ~profile ?(options = default_options)
      ?(budget = unlimited) ~gap ~min_score () =
    (* The config's matrix slot is irrelevant for profile searches (the
       profile carries all scores); store the unit matrix of the
       profile's alphabet so the record stays self-consistent. *)
    create_internal ~source ~db ~profile
      {
        matrix = Scoring.Submat.unit_edit (Scoring.Pssm.alphabet profile);
        gap;
        min_score;
        options;
        budget;
      }

  (* Expand one child arc (Algorithm 3) under the fixed gap model.
     Returns the tagged search node to enqueue, or [None] when the child
     is unviable. *)
  let expand_linear t parent child =
    let start = S.label_start t.source child in
    let stop = S.label_stop t.source child in
    let opts = t.cfg.options in
    let min_score = t.cfg.min_score in
    let m = t.m in
    let hvec = t.hvec in
    let w = Array.copy parent.b in
    let max_score = ref parent.max_score in
    let max_q = ref parent.max_q in
    let max_off = ref parent.max_off in
    let accepted () =
      if !max_score >= min_score then
        Some
          {
            tree_node = child;
            b = [||];
            bd = [||];
            depth = 0;
            max_score = !max_score;
            max_q = !max_q;
            max_off = !max_off;
            accepted = true;
          }
      else None
    in
    let rec columns idx depth =
      let arc_done = match stop with Some s -> idx >= s | None -> false in
      if arc_done then
        (* Arc consumed: the node stays on the frontier as viable. Its
           bound was checked after the last column, so ub > max_score
           and ub >= min_score here. *)
        let ub = ref neg_inf in
        let () =
          for i = 0 to m do
            if w.(i) > neg_inf && w.(i) + hvec.(i) > !ub then
              ub := w.(i) + hvec.(i)
          done
        in
        Some
          ( {
              tree_node = child;
              b = w;
              bd = [||];
              depth;
              max_score = !max_score;
              max_q = !max_q;
              max_off = !max_off;
              accepted = false;
            },
            !ub )
      else
        let c = S.symbol t.source idx in
        if c = t.term then
          (* Sequence terminator: nothing below can extend any
             alignment; only what was already found matters. *)
          match accepted () with
          | Some node -> Some (node, node.max_score)
          | None -> None
        else begin
          t.c_columns <- t.c_columns + 1;
          let depth = depth + 1 in
          (* One DP column, in place. [diag] carries the previous
             column's value one row up. *)
          let diag = ref w.(0) in
          (* Row 0: the empty query prefix. Off the root it can only be
             reached by deleting target symbols, which other tree paths
             cover; it is pruned by rule 1 (or kept, negative, when the
             rule is off — harmless either way). *)
          w.(0) <-
            (if w.(0) = neg_inf then neg_inf
             else
               let v = w.(0) + t.gap_extend in
               if opts.prune_nonpositive && v <= 0 then neg_inf else v);
          let ub = ref (if w.(0) = neg_inf then neg_inf else w.(0) + hvec.(0)) in
          for i = 1 to m do
            let repl =
              if !diag = neg_inf then neg_inf
              else !diag + Array.unsafe_get t.rows (((i - 1) * t.dim) + c)
            in
            let del = if w.(i) = neg_inf then neg_inf else w.(i) + t.gap_extend in
            let ins =
              if w.(i - 1) = neg_inf then neg_inf else w.(i - 1) + t.gap_extend
            in
            diag := w.(i);
            let v = max repl (max del ins) in
            let v =
              if v = neg_inf then neg_inf
              else if opts.prune_nonpositive && v <= 0 then neg_inf
              else if opts.prune_dominated && v + hvec.(i) <= !max_score then
                neg_inf
              else if v + hvec.(i) < min_score then neg_inf
              else v
            in
            w.(i) <- v;
            if v > neg_inf then begin
              if v + hvec.(i) > !ub then ub := v + hvec.(i);
              if v > !max_score then begin
                max_score := v;
                max_q := i;
                max_off := depth
              end
            end
          done;
          if !ub <= !max_score then
            (* No extension can beat what this path already found. *)
            match accepted () with
            | Some node -> Some (node, node.max_score)
            | None -> None
          else if !ub < min_score then None
          else columns (idx + 1) depth
        end
    in
    match columns start parent.depth with
    | None ->
      t.c_pruned <- t.c_pruned + 1;
      None
    | Some (node, priority) -> Some (node, priority)

  (* Affine-gap expansion (the paper's §6 future work): Gotoh's
     three-state recurrence folded into the search-node columns. Each
     node carries two vectors — [b] (best alignment ending at (i, path
     end), any final operation) and [bd] (alignments ending in a
     gap-vs-target run, which can be extended cheaply across the next
     column). Insert runs (query symbol vs gap) live within a column and
     need no persistent state. The pruning rules apply to both vectors;
     since [b >= bd] cell-wise, the priority bound from [b] alone is
     exact. *)
  let expand_affine t parent child =
    let start = S.label_start t.source child in
    let stop = S.label_stop t.source child in
    let opts = t.cfg.options in
    let min_score = t.cfg.min_score in
    let m = t.m in
    let hvec = t.hvec in
    let wh = Array.copy parent.b in
    let wd = Array.copy parent.bd in
    let go = t.gap_open and ge = t.gap_extend in
    let max_score = ref parent.max_score in
    let max_q = ref parent.max_q in
    let max_off = ref parent.max_off in
    let accepted () =
      if !max_score >= min_score then
        Some
          {
            tree_node = child;
            b = [||];
            bd = [||];
            depth = 0;
            max_score = !max_score;
            max_q = !max_q;
            max_off = !max_off;
            accepted = true;
          }
      else None
    in
    let prune i v =
      if v = neg_inf then neg_inf
      else if opts.prune_nonpositive && v <= 0 then neg_inf
      else if opts.prune_dominated && v + hvec.(i) <= !max_score then neg_inf
      else if v + hvec.(i) < min_score then neg_inf
      else v
    in
    let rec columns idx depth =
      let arc_done = match stop with Some s -> idx >= s | None -> false in
      if arc_done then begin
        let ub = ref neg_inf in
        for i = 0 to m do
          if wh.(i) > neg_inf && wh.(i) + hvec.(i) > !ub then
            ub := wh.(i) + hvec.(i)
        done;
        Some
          ( {
              tree_node = child;
              b = wh;
              bd = wd;
              depth;
              max_score = !max_score;
              max_q = !max_q;
              max_off = !max_off;
              accepted = false;
            },
            !ub )
      end
      else
        let c = S.symbol t.source idx in
        if c = t.term then
          match accepted () with
          | Some node -> Some (node, node.max_score)
          | None -> None
        else begin
          t.c_columns <- t.c_columns + 1;
          let depth = depth + 1 in
          let diag = ref wh.(0) in
          (* Row 0: reachable only through a delete run. *)
          let d0 =
            max
              (if wh.(0) = neg_inf then neg_inf else wh.(0) + go)
              (if wd.(0) = neg_inf then neg_inf else wd.(0) + ge)
          in
          wd.(0) <- prune 0 d0;
          wh.(0) <- wd.(0);
          let ub = ref (if wh.(0) = neg_inf then neg_inf else wh.(0) + hvec.(0)) in
          let ins = ref neg_inf in
          for i = 1 to m do
            (* Delete run: uses the previous column's wh/wd at row i
               (not yet overwritten). *)
            let d =
              max
                (if wh.(i) = neg_inf then neg_inf else wh.(i) + go)
                (if wd.(i) = neg_inf then neg_inf else wd.(i) + ge)
            in
            (* Insert run: current column, one row up. *)
            ins :=
              max
                (if wh.(i - 1) = neg_inf then neg_inf else wh.(i - 1) + go)
                (if !ins = neg_inf then neg_inf else !ins + ge);
            let repl =
              if !diag = neg_inf then neg_inf
              else !diag + Array.unsafe_get t.rows (((i - 1) * t.dim) + c)
            in
            diag := wh.(i);
            let d = prune i d in
            let h = prune i (max repl (max d !ins)) in
            wd.(i) <- d;
            wh.(i) <- h;
            if h > neg_inf then begin
              if h + hvec.(i) > !ub then ub := h + hvec.(i);
              if h > !max_score then begin
                max_score := h;
                max_q := i;
                max_off := depth
              end
            end
          done;
          if !ub <= !max_score then
            match accepted () with
            | Some node -> Some (node, node.max_score)
            | None -> None
          else if !ub < min_score then None
          else columns (idx + 1) depth
        end
    in
    match columns start parent.depth with
    | None ->
      t.c_pruned <- t.c_pruned + 1;
      None
    | Some (node, priority) -> Some (node, priority)

  let expand t parent child =
    if t.affine then expand_affine t parent child
    else expand_linear t parent child

  let set_tracer t f = t.tracer <- Some f

  let trace t event =
    match t.tracer with None -> () | Some f -> f event

  let emit t node =
    let positions = S.subtree_positions t.source node.tree_node in
    let hits =
      List.filter_map
        (fun p ->
          let seq_index = Bioseq.Database.seq_of_pos t.db p in
          if t.reported_seq.(seq_index) then None
          else begin
            t.reported_seq.(seq_index) <- true;
            t.reported_count <- t.reported_count + 1;
            let global_stop = p + node.max_off in
            trace t (Reported { seq_index; score = node.max_score });
            Some
              {
                Hit.seq_index;
                score = node.max_score;
                query_stop = node.max_q;
                target_stop =
                  global_stop - Bioseq.Database.seq_start t.db seq_index;
              }
          end)
        (List.sort compare positions)
    in
    List.iter (fun h -> Queue.add h t.pending) hits

  (* Has the configured budget run out? Checked between queue pops, so a
     single arc expansion may overshoot [max_columns] by one arc's worth
     of columns — the stop is clean, not surgical. *)
  let budget_spent t =
    let b = t.cfg.budget in
    (match b.max_columns with Some l -> t.c_columns >= l | None -> false)
    || (match b.max_expanded with Some l -> t.c_expanded >= l | None -> false)
    || (t.deadline < infinity && Unix.gettimeofday () >= t.deadline)

  let rec next t =
    match Queue.take_opt t.pending with
    | Some hit -> Some hit
    | None ->
      if t.reported_count >= Array.length t.reported_seq then None
      else if t.exhausted <> None then None
      else if budget_spent t && Pqueue.length t.pq > 0 then begin
        (* Stop with the frontier intact: the head priority is an
           admissible bound on every hit the truncated search would
           still have reported. *)
        (match Pqueue.peek_priority t.pq with
        | Some bound -> t.exhausted <- Some bound
        | None -> assert false);
        None
      end
      else begin
        match Pqueue.pop t.pq with
        | None -> None
        | Some (priority, node) ->
          trace t
            (Popped
               {
                 priority;
                 accepted = node.accepted;
                 depth = node.depth;
                 max_score = node.max_score;
                 queue_length = Pqueue.length t.pq;
               });
          if node.accepted then emit t node
          else begin
            t.c_expanded <- t.c_expanded + 1;
            List.iter
              (fun child ->
                match expand t node child with
                | None -> ()
                | Some (snode, priority) ->
                  t.c_enqueued <- t.c_enqueued + 1;
                  Pqueue.push t.pq ~priority
                    ~tie:(if snode.accepted then 0 else 1)
                    snode)
              (S.children t.source node.tree_node);
            t.c_max_queue <- max t.c_max_queue (Pqueue.length t.pq)
          end;
          next t
      end

  let run ?limit t =
    let rec go acc n =
      match limit with
      | Some l when n >= l -> List.rev acc
      | _ -> (
        match next t with
        | None -> List.rev acc
        | Some hit -> go (hit :: acc) (n + 1))
    in
    go [] 0

  let peek_bound t =
    let from_queue = Pqueue.peek_priority t.pq in
    match Queue.peek_opt t.pending with
    | None -> from_queue
    | Some hit -> (
      match from_queue with
      | None -> Some hit.Hit.score
      | Some p -> Some (max p hit.Hit.score))

  let counters t =
    {
      columns = t.c_columns;
      nodes_expanded = t.c_expanded;
      nodes_enqueued = t.c_enqueued;
      nodes_pruned = t.c_pruned;
      max_queue = t.c_max_queue;
    }

  let queue_length t = Pqueue.length t.pq
  let reported t = t.reported_count

  let outcome t =
    match t.exhausted with
    | Some remaining_bound -> Exhausted { remaining_bound }
    | None ->
      if
        Queue.is_empty t.pending
        && (Pqueue.length t.pq = 0
           || t.reported_count >= Array.length t.reported_seq)
      then Complete
      else Searching
end

module type DRIVER = sig
  type t

  val next : t -> Hit.t option
  val peek_bound : t -> int option
end

module Mem = Make (Source.Mem)
module Disk = Make (Source.Disk)
