type options = {
  prune_nonpositive : bool;
  prune_dominated : bool;
  heuristic : Heuristic.style;
}

let default_options =
  { prune_nonpositive = true; prune_dominated = true; heuristic = Heuristic.Safe }

type budget = {
  max_columns : int option;
  max_expanded : int option;
  time_limit : float option;
}

let unlimited = { max_columns = None; max_expanded = None; time_limit = None }

let budget ?max_columns ?max_expanded ?time_limit () =
  (match max_columns with
  | Some l when l < 0 -> invalid_arg "Oasis.Engine.budget: max_columns < 0"
  | _ -> ());
  (match max_expanded with
  | Some l when l < 0 -> invalid_arg "Oasis.Engine.budget: max_expanded < 0"
  | _ -> ());
  (match time_limit with
  | Some s when s < 0. -> invalid_arg "Oasis.Engine.budget: time_limit < 0"
  | _ -> ());
  { max_columns; max_expanded; time_limit }

type config = {
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
  min_score : int;
  options : options;
  budget : budget;
}

let config ?(options = default_options) ?(budget = unlimited) ~matrix ~gap
    ~min_score () =
  { matrix; gap; min_score; options; budget }

let config_for_evalue ?(options = default_options) ?(budget = unlimited)
    ~matrix ~gap ~params ~query_length ~db_symbols ~evalue () =
  let min_score =
    Scoring.Karlin.score_for_evalue params ~m:query_length ~n:db_symbols ~evalue
  in
  { matrix; gap; min_score; options; budget }

type outcome = Searching | Complete | Exhausted of { remaining_bound : int }

type trace_event =
  | Popped of {
      priority : int;
      accepted : bool;
      depth : int;
      max_score : int;
      queue_length : int;
    }
  | Reported of { seq_index : int; score : int }

type counters = Counters.t = {
  columns : int;
  nodes_expanded : int;
  nodes_enqueued : int;
  nodes_pruned : int;
  max_queue : int;
  pool_reused : int;
  pool_live : int;
  pool_peak_live : int;
  pool_peak_bytes : int;
  minor_words : float;
  io_hits : int;
  io_misses : int;
}

let neg_inf = Scoring.Submat.neg_inf

(* Shared with the fused batch kernel — see [Kernel_util]. *)
let sort_range = Kernel_util.sort_range
let checked_kernel = Kernel_util.checked

module Make (S : Source.S) = struct
  type snode = {
    tree_node : S.node;
    slot : int;
        (** column-arena slot holding this node's DP vector(s); [-1] for
            accepted nodes, which are never expanded *)
    depth : int;  (** path length in symbols *)
    max_score : int;
    max_q : int;  (** query end (exclusive) of the max_score alignment *)
    max_off : int;  (** path offset (depth) where it ends *)
    accepted : bool;
  }

  (* A session owns the per-search mutable scratch — column arena,
     bucket frontier, emit sort buffer — and nothing tied to one query.
     Engines borrow a session at [create]; a fresh one is made when the
     caller passes none, so single-shot searches are unchanged. A
     long-lived server keeps one session per worker and reuses it across
     requests: the arena and frontier keep their high-water capacity, so a
     steady-state request allocates (almost) nothing, while K sessions
     share one immutable tree image. *)
  type session = {
    ses_pool : Col_pool.t;
    ses_fr : S.node Frontier.t;
    mutable ses_emit_buf : int array;
        (** scratch positions buffer for {!emit}; grown on demand,
            reused across hits and across searches *)
  }

  module Session = struct
    type t = session

    let create () =
      {
        ses_pool = Col_pool.create ~width:1;
        ses_fr = Frontier.create ();
        ses_emit_buf = Array.make 64 0;
      }
  end

  type t = {
    source : S.t;
    db : Bioseq.Database.t;
    m : int;
    hvec : int array;
    cfg : config;
    cols : int array;
        (** symbol-major scoring table [dim * m]:
            [cols.((c * m) + (i - 1))] scores symbol [c] against query
            position [i] — one contiguous row per database symbol, so a
            DP column (fixed [c], [i] sweeping) is a stride-1 scan *)
    gap_open : int;  (** score of a gap run's first symbol (negative) *)
    gap_extend : int;  (** score of each further gap symbol (negative) *)
    min_score : int;  (** = cfg.min_score, hoisted for the kernel *)
    opt_pn : bool;  (** = cfg.options.prune_nonpositive *)
    opt_pd : bool;  (** = cfg.options.prune_dominated *)
    affine : bool;
    term : int;
    smax : int array;
        (** [smax.(c)]: best score symbol [c] achieves at any query
            position — the replacement term of the pre-DP sibling
            bound (see {!Kernel_util.smax_of_cols}) *)
    skip_ok : bool;
        (** the pre-DP sibling bound is admissible: [hvec] is pointwise
            non-negative and its one-step drop covers insert chains
            ([Kernel_util.min_hdrop hvec >= gap_extend]); checked at
            creation, not assumed (DESIGN.md §2j) *)
    ses : session;  (** owns the scratch below (and the emit buffer) *)
    pool : Col_pool.t;
        (** = [ses.ses_pool]; slot width [m + 1] (linear) or
            [2 * (m + 1)] (affine, [B] then Gotoh's [D] vector in one
            slot) *)
    fr : S.node Frontier.t;  (** = [ses.ses_fr] *)
    reported_seq : bool array;
    mutable reported_count : int;
    pending : Hit.t Queue.t;
    mutable c_columns : int;
    mutable c_expanded : int;
    mutable c_enqueued : int;
    mutable c_pruned : int;
    mutable c_max_queue : int;
    mutable c_bound_reused : int;
        (** sibling arcs settled by the shared pre-DP bound alone *)
    mutable c_bound_recomputed : int;
        (** sibling arcs that ran the full DP arc walk *)
    flt : Qgram.t option;
        (** q-gram filter tier (DESIGN.md §2k); [None] = off *)
    mutable flt_path : int array;
        (** scratch for a parent's root-path symbols (filter walk) *)
    mutable ft_tested : int;
        (** arcs the q-gram settle test examined (ALAE survivors with a
            usable profile entry) *)
    mutable ft_settled_coarse : int;
        (** arcs settled by [vmax + E(G, m)] alone *)
    mutable ft_settled_refined : int;
        (** arcs settled by the per-cell [v_i + E(G, m - i)] scan *)
    (* Scratch registers for the closure-free kernel: loaded from the
       parent node before an arc walk, stored into the child snode (or
       discarded) after. Only one arc is ever in flight. *)
    mutable sc_best : int;
    mutable sc_best_q : int;
    mutable sc_best_off : int;
    mutable sc_ub : int;  (** arc result: the viable node's priority *)
    mutable sc_depth : int;  (** arc result: the viable node's depth *)
    mutable sc_col_depth : int;
        (** depth of the column being filled — constant per column, so
            the row loops read it from here instead of carrying an
            argument past the register budget *)
    mutable sc_cut : int;
        (** the default-path cascade cutoff [max sc_best (min_score-1)];
            updated with [sc_best], read once per cell *)
    (* Blocked-expansion scratch: one [iter_children] pass gathers a
       parent's children (node, label range, first symbol) into these
       parallel arrays, then the DP streams over them in chunks of
       [Kernel_util.block_arcs]. Grown together, never shrunk. *)
    mutable ch_nodes : S.node array;
    mutable ch_start : int array;
    mutable ch_stop : int array;
    mutable ch_sym : int array;  (** first label symbol; [-1] if empty *)
    (* Live-cell scratch for the refined pre-DP bound: one aggregate
       pass per parent records, for each live diagonal feed, the cols
       offset [i - 1] and the feed's score-plus-heuristic
       [parent(i-1) + hvec(i)], so each sibling's exact replacement-term
       bound is an O(live) scan instead of O(m). *)
    live_i : int array;
    live_g : int array;
    (* Chunked arc-label fetch: [sym_buf.(k)] holds the symbol at
       database position [sym_base + k] for [k < sym_n]. *)
    sym_buf : int array;
    mutable sym_base : int;
    mutable sym_n : int;
    mutable tracer : (trace_event -> unit) option;
    mutable obs : Instrument.t option;
        (** observability hooks; [None] (the default) costs one pointer
            compare per hook site on the hot path *)
    base_minor_words : float;  (** [Gc.minor_words] at creation *)
    base_io_hits : int;
    base_io_misses : int;
        (** [S.io_stats] at creation — opening and verifying an index
            does its own pool reads; counters report the search's
            share *)
    deadline : float;  (** absolute; [infinity] when no time limit *)
    mutable exhausted : int option;
        (** [Some bound] once the budget stopped the search with viable
            nodes still queued; [bound] is the admissible bound on
            everything left unreported *)
  }

  (* Checked-mode validation, once per DP column: every unsafe access
     in the loops below stays inside these ranges. The kernels are
     split-source: the first column of an arc reads the parent's slot
     ([src]) and writes the child's ([dst]); later columns run in place
     ([src = dst]). [span] is the largest in-slot offset touched — [m]
     for the linear model, [2m + 1] for affine (Gotoh's D vector lives
     at [+ (m + 1)] inside the same slot). *)
  let check_column t (w : int array) src dst span c =
    if
      src < 0 || dst < 0
      || src + span >= Array.length w
      || dst + span >= Array.length w
      || c < 0
      || (c + 1) * t.m > Array.length t.cols
      || Array.length t.hvec <> t.m + 1
    then invalid_arg "Oasis.Engine: kernel index range violation"

  (* Fallback bound for an arc that contributed no DP column: scan the
     (inherited) column once, as the pre-arena engine's second pass did.
     When at least one column ran, the fused per-column bound already
     equals this scan's result over the final column, so the kernel
     skips it. *)
  let rescan t (w : int array) off =
    let rec go i ub =
      if i > t.m then ub
      else
        let v = w.(off + i) in
        let ub =
          if v > neg_inf && v + t.hvec.(i) > ub then v + t.hvec.(i) else ub
        in
        go (i + 1) ub
    in
    go 0 neg_inf

  (* One linear-model DP column, reading the previous column at
     [w.(src .. src + m)] and writing the new one at
     [w.(dst .. dst + m)], fused with the upper-bound computation. The
     first column of an arc passes the parent's slot as [src] — no
     parent-to-child blit — and later columns run in place
     ([src = dst], where reading [w.(src + i)] before writing
     [w.(dst + i)] reproduces the old in-place update exactly). [diag]
     carries the previous column's value one row up; [crow = c * m - 1]
     indexes the symbol's stride-1 score row. Returns the column's
     admissible bound; the running best lives in the scratch registers.
     Arguments are plain ints so the loop allocates nothing (no
     closures, no refs), the §3.2 pruning cascade is written out inline
     — without flambda an out-of-line cascade costs a call per cell —
     and every [max] is an explicit int comparison (the polymorphic
     [Stdlib.max] keeps its generic [>=], a C call, when the compiler is
     not flambda). *)
  let rec lin_rows t (w : int array) src dst crow i diag ub depth =
    if i > t.m then ub
    else begin
      let wi = Array.unsafe_get w (src + i) in
      let repl =
        if diag = neg_inf then neg_inf
        else diag + Array.unsafe_get t.cols (crow + i)
      in
      let del = if wi = neg_inf then neg_inf else wi + t.gap_extend in
      let prev = Array.unsafe_get w (dst + i - 1) in
      let ins = if prev = neg_inf then neg_inf else prev + t.gap_extend in
      let hv = Array.unsafe_get t.hvec i in
      let dm = if del >= ins then del else ins in
      let v = if repl >= dm then repl else dm in
      let v =
        if v = neg_inf then neg_inf
        else if t.opt_pn && v <= 0 then neg_inf
        else if t.opt_pd && v + hv <= t.sc_best then neg_inf
        else if v + hv < t.min_score then neg_inf
        else v
      in
      Array.unsafe_set w (dst + i) v;
      let ub =
        if v > neg_inf then begin
          if v > t.sc_best then begin
            t.sc_best <- v;
            t.sc_best_q <- i;
            t.sc_best_off <- depth
          end;
          if v + hv > ub then v + hv else ub
        end
        else ub
      in
      lin_rows t w src dst crow (i + 1) wi ub depth
    end

  (* [lin_rows] specialized for the default pruning configuration (both
     rules on — the only one the CLI and bench exercise), re-specialized
     for the blocked layout (ISSUE 9). Three levers over the generic
     cascade:

     - The three thresholds collapse into one cutoff
       [sc_cut = max sc_best (min_score - 1)], so a cell lives iff
       [v > 0 && v + hvec(i) > sc_cut]. Cell-for-cell equivalent to
       [lin_rows] with both flags set:
       [v + hv <= max best (min_score - 1)] iff
       [v + hv <= best || v + hv < min_score].
     - No [neg_inf] input guards: stored cells are either real scores
       or {e exactly} [neg_inf] (~[min_int/4]), so a dead input drifts
       by at most a few hundred below [neg_inf + 0] and the [v <= 0]
       test still kills it, re-normalizing the stored cell to exact
       [neg_inf] — three compare+branches per cell gone, no overflow
       possible (drift never compounds across cells).
     - [sc_cut] and the column's depth live in [t] instead of being
       threaded as arguments: with [src]/[dst] split the argument list
       would spill past the native calling convention's register
       budget, turning every row step into stack traffic.

     [left] carries the just-written cell so the loop reads [w] once
     per row. *)
  let rec lin_rows_def t (w : int array) src dst crow i diag left ub =
    if i > t.m then ub
    else begin
      let wi = Array.unsafe_get w (src + i) in
      let ge = t.gap_extend in
      let repl = diag + Array.unsafe_get t.cols (crow + i) in
      let del = wi + ge in
      let ins = left + ge in
      let dm = if del >= ins then del else ins in
      let v = if repl >= dm then repl else dm in
      let s = v + Array.unsafe_get t.hvec i in
      if v <= 0 || s <= t.sc_cut then begin
        Array.unsafe_set w (dst + i) neg_inf;
        lin_rows_def t w src dst crow (i + 1) wi neg_inf ub
      end
      else begin
        Array.unsafe_set w (dst + i) v;
        let ub = if s > ub then s else ub in
        if v > t.sc_best then begin
          t.sc_best <- v;
          t.sc_best_q <- i;
          t.sc_best_off <- t.sc_col_depth;
          if v > t.sc_cut then t.sc_cut <- v
        end;
        lin_rows_def t w src dst crow (i + 1) wi v ub
      end
    end

  let lin_column t w src dst c depth =
    if checked_kernel then check_column t w src dst t.m c;
    (* Row 0: the empty query prefix. Off the root it can only be
       reached by deleting target symbols, which other tree paths cover;
       it is pruned by rule 1 (or kept, negative, when the rule is off —
       harmless either way). *)
    let w0 = Array.unsafe_get w src in
    let w0' =
      if w0 = neg_inf then neg_inf
      else
        let v = w0 + t.gap_extend in
        if t.opt_pn && v <= 0 then neg_inf else v
    in
    Array.unsafe_set w dst w0';
    let ub = if w0' = neg_inf then neg_inf else w0' + Array.unsafe_get t.hvec 0 in
    let crow = (c * t.m) - 1 in
    if t.opt_pn && t.opt_pd then begin
      let ms1 = t.min_score - 1 in
      t.sc_cut <- (if t.sc_best >= ms1 then t.sc_best else ms1);
      t.sc_col_depth <- depth;
      lin_rows_def t w src dst crow 1 w0 w0' ub
    end
    else lin_rows t w src dst crow 1 w0 ub depth

  (* One affine-model (Gotoh) column, split-source like [lin_rows]:
     [src]/[srcd] address the previous column's B and D vectors,
     [dst]/[dstd] the new ones (first arc column: parent slot to child
     slot; later columns: in place). [ins] threads the insert-run score
     down the column. *)
  let rec aff_rows t (w : int array) src srcd dst dstd crow i diag ins ub depth
      =
    if i > t.m then ub
    else begin
      let whi = Array.unsafe_get w (src + i) in
      let wdi = Array.unsafe_get w (srcd + i) in
      (* Delete run: previous column's B/D at row i (not yet
         overwritten). *)
      let d1 = if whi = neg_inf then neg_inf else whi + t.gap_open in
      let d2 = if wdi = neg_inf then neg_inf else wdi + t.gap_extend in
      let d = if d1 >= d2 then d1 else d2 in
      (* Insert run: current column, one row up. *)
      let prev = Array.unsafe_get w (dst + i - 1) in
      let i1 = if prev = neg_inf then neg_inf else prev + t.gap_open in
      let i2 = if ins = neg_inf then neg_inf else ins + t.gap_extend in
      let ins = if i1 >= i2 then i1 else i2 in
      let repl =
        if diag = neg_inf then neg_inf
        else diag + Array.unsafe_get t.cols (crow + i)
      in
      let hv = Array.unsafe_get t.hvec i in
      let d =
        if d = neg_inf then neg_inf
        else if t.opt_pn && d <= 0 then neg_inf
        else if t.opt_pd && d + hv <= t.sc_best then neg_inf
        else if d + hv < t.min_score then neg_inf
        else d
      in
      let dm = if d >= ins then d else ins in
      let h = if repl >= dm then repl else dm in
      let h =
        if h = neg_inf then neg_inf
        else if t.opt_pn && h <= 0 then neg_inf
        else if t.opt_pd && h + hv <= t.sc_best then neg_inf
        else if h + hv < t.min_score then neg_inf
        else h
      in
      Array.unsafe_set w (dstd + i) d;
      Array.unsafe_set w (dst + i) h;
      let ub =
        if h > neg_inf then begin
          if h > t.sc_best then begin
            t.sc_best <- h;
            t.sc_best_q <- i;
            t.sc_best_off <- depth
          end;
          if h + hv > ub then h + hv else ub
        end
        else ub
      in
      aff_rows t w src srcd dst dstd crow (i + 1) whi ins ub depth
    end

  (* [aff_rows] specialized like [lin_rows_def]: one collapsed [sc_cut]
     threshold (read from [t], keeping the argument list inside the
     native register budget), no [neg_inf] input guards, [left] carries
     the just-written B cell. Both Gotoh cascades (the delete-run score
     and the cell score) use the collapsed test. *)
  let rec aff_rows_def t (w : int array) src srcd dst dstd crow i diag ins left
      ub =
    if i > t.m then ub
    else begin
      let whi = Array.unsafe_get w (src + i) in
      let wdi = Array.unsafe_get w (srcd + i) in
      let ge = t.gap_extend in
      let go = t.gap_open in
      (* No [neg_inf] input guards, as in [lin_rows_def]: the B and D
         stores below re-normalize dead cells to exact [neg_inf], and
         the threaded [ins] drifts by at most [m] gap scores — far from
         overflow, still far below zero. *)
      let d1 = whi + go in
      let d2 = wdi + ge in
      let d = if d1 >= d2 then d1 else d2 in
      let i1 = left + go in
      let i2 = ins + ge in
      let ins = if i1 >= i2 then i1 else i2 in
      let repl = diag + Array.unsafe_get t.cols (crow + i) in
      let hv = Array.unsafe_get t.hvec i in
      let d = if d <= 0 || d + hv <= t.sc_cut then neg_inf else d in
      let dm = if d >= ins then d else ins in
      let h = if repl >= dm then repl else dm in
      Array.unsafe_set w (dstd + i) d;
      let s = h + hv in
      if h <= 0 || s <= t.sc_cut then begin
        Array.unsafe_set w (dst + i) neg_inf;
        aff_rows_def t w src srcd dst dstd crow (i + 1) whi ins neg_inf ub
      end
      else begin
        Array.unsafe_set w (dst + i) h;
        let ub = if s > ub then s else ub in
        if h > t.sc_best then begin
          t.sc_best <- h;
          t.sc_best_q <- i;
          t.sc_best_off <- t.sc_col_depth;
          if h > t.sc_cut then t.sc_cut <- h
        end;
        aff_rows_def t w src srcd dst dstd crow (i + 1) whi ins h ub
      end
    end

  let aff_column t w src srcd dst dstd c depth =
    if checked_kernel then check_column t w src dst ((2 * t.m) + 1) c;
    let wh0 = Array.unsafe_get w src in
    let wd0 = Array.unsafe_get w srcd in
    (* Row 0: reachable only through a delete run. *)
    let d1 = if wh0 = neg_inf then neg_inf else wh0 + t.gap_open in
    let d2 = if wd0 = neg_inf then neg_inf else wd0 + t.gap_extend in
    let d0 = if d1 >= d2 then d1 else d2 in
    let hv0 = Array.unsafe_get t.hvec 0 in
    let d0 =
      if d0 = neg_inf then neg_inf
      else if t.opt_pn && d0 <= 0 then neg_inf
      else if t.opt_pd && d0 + hv0 <= t.sc_best then neg_inf
      else if d0 + hv0 < t.min_score then neg_inf
      else d0
    in
    Array.unsafe_set w dstd d0;
    Array.unsafe_set w dst d0;
    let ub = if d0 = neg_inf then neg_inf else d0 + hv0 in
    let crow = (c * t.m) - 1 in
    if t.opt_pn && t.opt_pd then begin
      let ms1 = t.min_score - 1 in
      t.sc_cut <- (if t.sc_best >= ms1 then t.sc_best else ms1);
      t.sc_col_depth <- depth;
      aff_rows_def t w src srcd dst dstd crow 1 wh0 neg_inf d0 ub
    end
    else aff_rows t w src srcd dst dstd crow 1 wh0 neg_inf ub depth

  (* Arc labels are fetched in chunks of up to this many symbols through
     [S.blit_symbols]: a disk source decodes a label page once per run
     instead of once per symbol, and the memory source amortizes its
     per-call bound checks. *)
  let sym_chunk = 32

  (* The symbol at database position [idx], served from [sym_buf] when
     the chunk covers it and refilled (clipped to the arc's [stop])
     otherwise. The gather pass seeds the first symbol of each arc. *)
  let arc_symbol t idx stop =
    let k = idx - t.sym_base in
    if k >= 0 && k < t.sym_n then Array.unsafe_get t.sym_buf k
    else begin
      let len = min sym_chunk (stop - idx) in
      S.blit_symbols t.source ~pos:idx ~len t.sym_buf 0;
      t.sym_base <- idx;
      t.sym_n <- len;
      Array.unsafe_get t.sym_buf 0
    end

  (* Walk one child arc's symbols (Algorithm 3), columns fused with
     bounds. The first column reads the parent's slot ([src]) and writes
     the child's ([dst]); the recursion then continues in place at
     [dst]. Returns a status code, with details in the scratch
     registers:
     - [0]: unviable, discard;
     - [1]: viable — enqueue with priority [t.sc_ub], depth [t.sc_depth];
     - [2]: bound is exact (terminator hit, or no extension can beat
       [t.sc_best]) — enqueue as accepted iff [sc_best >= min_score].
     [last_ub] is [min_int] until the first column of this arc runs (so
     the zero-column [rescan] reads [src] — still the parent's
     untouched column). *)
  let rec lin_arc t w src dst idx stop depth last_ub =
    if idx >= stop then begin
      t.sc_ub <- (if last_ub <> min_int then last_ub else rescan t w src);
      t.sc_depth <- depth;
      1
    end
    else
      let c = arc_symbol t idx stop in
      if c = t.term then 2
      else begin
        t.c_columns <- t.c_columns + 1;
        let depth = depth + 1 in
        let ub = lin_column t w src dst c depth in
        if ub <= t.sc_best then 2
        else if ub < t.min_score then 0
        else lin_arc t w dst dst (idx + 1) stop depth ub
      end

  let rec aff_arc t w src srcd dst dstd idx stop depth last_ub =
    if idx >= stop then begin
      t.sc_ub <- (if last_ub <> min_int then last_ub else rescan t w src);
      t.sc_depth <- depth;
      1
    end
    else
      let c = arc_symbol t idx stop in
      if c = t.term then 2
      else begin
        t.c_columns <- t.c_columns + 1;
        let depth = depth + 1 in
        let ub = aff_column t w src srcd dst dstd c depth in
        if ub <= t.sc_best then 2
        else if ub < t.min_score then 0
        else aff_arc t w dst dstd dst dstd (idx + 1) stop depth ub
      end

  (* Every obs hook is one [match] on [t.obs] when instrumentation is
     off; the bench gate holds the disabled-hook overhead on the kernel
     experiment under the shared tolerance. *)
  let[@inline] obs_phase t p =
    match t.obs with
    | None -> ()
    | Some o -> Obs.Timer.switch o.Instrument.timer p

  (* Grow the gather scratch — all four parallel arrays together. Only
     called with at least one gathered child, so [ch_nodes.(0)] is a
     valid filler for the fresh node array. *)
  let grow_gather t =
    let n = Array.length t.ch_start in
    let n' = 2 * n in
    let nodes = Array.make n' t.ch_nodes.(0) in
    Array.blit t.ch_nodes 0 nodes 0 n;
    t.ch_nodes <- nodes;
    let grow a =
      let b = Array.make n' 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.ch_start <- grow t.ch_start;
    t.ch_stop <- grow t.ch_stop;
    t.ch_sym <- grow t.ch_sym

  (* Finish an arc whose bound is exact (terminator hit, pre-DP bound
     dominated, or kernel status 2): enqueue as accepted iff the best
     score in the scratch registers clears the threshold. *)
  let finish_exact t child =
    if t.sc_best >= t.min_score then begin
      t.c_enqueued <- t.c_enqueued + 1;
      Frontier.push t.fr ~priority:t.sc_best ~tie:0 ~node:child ~slot:(-1)
        ~depth:0 ~max_score:t.sc_best ~max_q:t.sc_best_q
        ~max_off:t.sc_best_off ~accepted:true
    end
    else t.c_pruned <- t.c_pruned + 1

  (* Checked mode: replay a skipped first column into a transient slot
     and verify the cheap bound really dominated it. The column cannot
     move the scratch registers (any surviving cell would contradict the
     bound), so the caller's state is untouched; [ensure_free] reserved
     room for this extra acquire, so the hoisted backing store stays
     valid. *)
  let check_skip t parent c cheap =
    let slot = Col_pool.acquire t.pool in
    let w = Col_pool.data t.pool in
    let src = Col_pool.base t.pool parent.slot in
    let dst = Col_pool.base t.pool slot in
    t.sc_best <- parent.max_score;
    t.sc_best_q <- parent.max_q;
    t.sc_best_off <- parent.max_off;
    let depth = parent.depth + 1 in
    let ub =
      if t.affine then
        aff_column t w src (src + t.m + 1) dst (dst + t.m + 1) c depth
      else lin_column t w src dst c depth
    in
    Col_pool.release t.pool slot;
    if ub > cheap then
      invalid_arg "Oasis.Engine: pre-DP sibling bound not admissible"

  (* Checked mode: exhaustively replay a q-gram-settled subtree with an
     independent plain DP walk — none of the optional pruning rules, no
     running-best domination — and verify no cell reaches [min_score].
     The always-on viability rule ([cell + hvec < min_score] is dead) is
     kept: it cannot hide a violation (hvec is admissible) and it is
     what bounds the walk's depth, since a cell that stops consuming
     query positions loses at least the gap-extension penalty per
     column. Fresh arrays per path branch; checked mode owns the cost,
     and the column pool's hoisted backing store is never touched. *)
  let check_qgram_settle t parent k =
    let m = t.m in
    let ms = t.min_score in
    let ge = t.gap_extend and go = t.gap_open in
    let hvec = t.hvec and cols = t.cols in
    let best = ref neg_inf in
    let bump v = if v > !best then best := v in
    (* One column: (b, d) -> (b', d') for symbol [c]; returns [false]
       when every new cell is dead. Linear model keeps [d] empty. *)
    let step b d c =
      let b' = Array.make (m + 1) neg_inf in
      let d' = if t.affine then Array.make (m + 1) neg_inf else [||] in
      let alive = ref false in
      let crow = (c * m) - 1 in
      if t.affine then begin
        let d1 = if b.(0) = neg_inf then neg_inf else b.(0) + go in
        let d2 = if d.(0) = neg_inf then neg_inf else d.(0) + ge in
        let d0 = if d1 >= d2 then d1 else d2 in
        let d0 = if d0 = neg_inf || d0 + hvec.(0) < ms then neg_inf else d0 in
        d'.(0) <- d0;
        b'.(0) <- d0;
        if d0 > neg_inf then begin
          alive := true;
          bump d0
        end;
        for i = 1 to m do
          let d1 = if b.(i) = neg_inf then neg_inf else b.(i) + go in
          let d2 = if d.(i) = neg_inf then neg_inf else d.(i) + ge in
          let dd = if d1 >= d2 then d1 else d2 in
          let dd = if dd = neg_inf || dd + hvec.(i) < ms then neg_inf else dd in
          let i1 = if b'.(i - 1) = neg_inf then neg_inf else b'.(i - 1) + go in
          let repl =
            if b.(i - 1) = neg_inf then neg_inf else b.(i - 1) + cols.(crow + i)
          in
          let h = if repl >= dd then repl else dd in
          let h = if i1 > h then i1 else h in
          let h = if h = neg_inf || h + hvec.(i) < ms then neg_inf else h in
          d'.(i) <- dd;
          b'.(i) <- h;
          if h > neg_inf || dd > neg_inf then alive := true;
          if h > neg_inf then bump h
        done
      end
      else begin
        let v0 = if b.(0) = neg_inf then neg_inf else b.(0) + ge in
        let v0 = if v0 = neg_inf || v0 + hvec.(0) < ms then neg_inf else v0 in
        b'.(0) <- v0;
        if v0 > neg_inf then begin
          alive := true;
          bump v0
        end;
        for i = 1 to m do
          let repl =
            if b.(i - 1) = neg_inf then neg_inf else b.(i - 1) + cols.(crow + i)
          in
          let del = if b.(i) = neg_inf then neg_inf else b.(i) + ge in
          let ins =
            if b'.(i - 1) = neg_inf then neg_inf else b'.(i - 1) + ge
          in
          let dm = if del >= ins then del else ins in
          let v = if repl >= dm then repl else dm in
          let v = if v = neg_inf || v + hvec.(i) < ms then neg_inf else v in
          b'.(i) <- v;
          if v > neg_inf then begin
            alive := true;
            bump v
          end
        done
      end;
      (b', d', !alive)
    in
    let rec down node b d pos stop =
      if pos >= stop then begin
        if not (S.is_leaf t.source node) then
          S.gather t.source node (fun child ~start ~stop ~sym:_ ->
              down child b d start stop)
      end
      else
        let c = S.symbol t.source pos in
        if c <> t.term && c >= 0 then begin
          let b', d', alive = step b d c in
          if alive then down node b' d' (pos + 1) stop
        end
    in
    let w = Col_pool.data t.pool in
    let poff = Col_pool.base t.pool parent.slot in
    let b0 = Array.init (m + 1) (fun i -> w.(poff + i)) in
    let d0 =
      if t.affine then Array.init (m + 1) (fun i -> w.(poff + m + 1 + i))
      else [||]
    in
    down t.ch_nodes.(k) b0 d0 t.ch_start.(k) t.ch_stop.(k);
    if !best >= ms then
      invalid_arg "Oasis.Engine: q-gram subtree settle not admissible"

  (* Full DP for one gathered child arc: acquire a slot and run the
     kernel with the first column reading straight from the parent's
     slot — the split-source kernels replace the old parent-to-child
     blit. [w]/[poff] are hoisted by the caller ([ensure_free]
     guarantees the acquire below cannot reallocate the store). *)
  let run_arc t parent child w poff k =
    let start = t.ch_start.(k) and stop = t.ch_stop.(k) in
    let slot = Col_pool.acquire t.pool in
    let coff = Col_pool.base t.pool slot in
    t.sc_best <- parent.max_score;
    t.sc_best_q <- parent.max_q;
    t.sc_best_off <- parent.max_off;
    (* Seed the chunked label fetch with the symbol the gather pass
       already read. *)
    t.sym_base <- start;
    t.sym_n <-
      (if t.ch_sym.(k) >= 0 then begin
         t.sym_buf.(0) <- t.ch_sym.(k);
         1
       end
       else 0);
    let cols_before = t.c_columns in
    obs_phase t Instrument.phase_dp;
    let status =
      if t.affine then
        aff_arc t w poff
          (poff + t.m + 1)
          coff
          (coff + t.m + 1)
          start stop parent.depth min_int
      else lin_arc t w poff coff start stop parent.depth min_int
    in
    (match t.obs with
    | None -> ()
    | Some o ->
      Obs.Timer.switch o.Instrument.timer Instrument.phase_expand;
      Obs.Metric.observe o.Instrument.arc_columns (t.c_columns - cols_before));
    match status with
    | 0 ->
      Col_pool.release t.pool slot;
      t.c_pruned <- t.c_pruned + 1
    | 1 ->
      (* A zero-column viable arc (empty label) never wrote the child
         slot: inherit the parent's column(s) by copy. *)
      if t.c_columns = cols_before then
        Col_pool.blit t.pool ~src:parent.slot ~dst:slot;
      t.c_enqueued <- t.c_enqueued + 1;
      Frontier.push t.fr ~priority:t.sc_ub ~tie:1 ~node:child ~slot
        ~depth:t.sc_depth ~max_score:t.sc_best ~max_q:t.sc_best_q
        ~max_off:t.sc_best_off ~accepted:false
    | _ ->
      (* Bound exact: the node needs no column any more. *)
      Col_pool.release t.pool slot;
      finish_exact t child

  (* Expand every child of [parent] with the blocked layout:

     1. {e Gather}: one [iter_children] pass stores each child's node,
        label range and first symbol in the scratch arrays, so the tree
        is touched once per sibling run instead of once per child.
     2. {e Aggregate}: one O(m) scan of the parent's column(s) computes
        the ALAE-style bound ingredients every sibling shares — the
        best diagonal feed [rmax = max (parent(i-1) + hvec(i))], the
        best cell [pub = max (parent(i) + hvec(i))] (and [pdub] over
        the delete vector when affine) — and records each live diagonal
        feed in [live_i]/[live_g] for the per-sibling refinement.
     3. {e Blocked walk}: children stream back-to-back in chunks of
        [Kernel_util.block_arcs] while the parent column and the PSSM
        rows are cache-hot. Each arc's first symbol [c] gets a
        two-level admissible bound: the O(1) coarse form
        [max (rmax + smax.(c)) del_ub], then — only when the coarse
        form cannot settle the arc but the shared delete term can — the
        exact replacement term [max over live feeds
        (parent(i-1) + hvec(i) + cols(c, i))], an O(live) scan. An arc
        whose bound is [<= parent.max_score] (bound
        dominated) or [< min_score] (unreachable) is settled before
        its first DP cell — but still counts one {e logical} column,
        because the reference engine provably runs exactly one column
        before reaching the same verdict (DESIGN.md §2j proves the
        bound dominates that column's fused upper bound), keeping
        counters, histograms and hit streams bit-identical. *)
  let expand_children t parent =
    let n = ref 0 in
    S.gather t.source parent.tree_node (fun child ~start ~stop ~sym ->
        let i = !n in
        if i = Array.length t.ch_start then grow_gather t;
        t.ch_nodes.(i) <- child;
        t.ch_start.(i) <- start;
        t.ch_stop.(i) <- stop;
        t.ch_sym.(i) <- sym;
        n := i + 1);
    let n = !n in
    if n > 0 then begin
      (* The whole sibling run's slots fit without reallocation, so the
         backing store pointer is hoisted across the run (checked mode
         may transiently acquire one more slot per skip). *)
      Col_pool.ensure_free t.pool (if checked_kernel then 2 * n else n);
      let w = Col_pool.data t.pool in
      let poff = Col_pool.base t.pool parent.slot in
      let m = t.m in
      let hvec = t.hvec in
      let rmax = ref neg_inf and pub = ref neg_inf and pdub = ref neg_inf in
      let nlive = ref 0 in
      if t.skip_ok then begin
        let live_i = t.live_i and live_g = t.live_g in
        let v0 = w.(poff) in
        if v0 > neg_inf then pub := v0 + hvec.(0);
        for i = 1 to m do
          let hv = hvec.(i) in
          let prev = w.(poff + i - 1) in
          if prev > neg_inf then begin
            let g = prev + hv in
            let nl = !nlive in
            live_i.(nl) <- i - 1;
            live_g.(nl) <- g;
            nlive := nl + 1;
            if g > !rmax then rmax := g
          end;
          let vi = w.(poff + i) in
          if vi > neg_inf && vi + hv > !pub then pub := vi + hv
        done;
        if t.affine then
          for i = 0 to m do
            let di = w.(poff + m + 1 + i) in
            if di > neg_inf && di + hvec.(i) > !pdub then
              pdub := di + hvec.(i)
          done
      end;
      (* Best first-column cell reachable through a delete: covers row 0
         and every delete-run feed, for any first symbol. *)
      let del_ub =
        if t.affine then begin
          let a = if !pub > neg_inf then !pub + t.gap_open else neg_inf in
          let b = if !pdub > neg_inf then !pdub + t.gap_extend else neg_inf in
          if a >= b then a else b
        end
        else if !pub > neg_inf then !pub + t.gap_extend
        else neg_inf
      in
      let rmax = !rmax in
      let nlive = !nlive in
      (* Settle threshold the refined bound must clear: an arc whose
         bound is at most this is dominated or unreachable either way. *)
      let thr =
        if parent.max_score >= t.min_score - 1 then parent.max_score
        else t.min_score - 1
      in
      (* q-gram filter tier (DESIGN.md §2k): resolve the parent's
         profile entry and its column max once per sibling run. Only a
         parent that has not yet banked an accepted alignment on its
         path ([max_score < min_score] — so a settled subtree is
         provably silent in the unfiltered run too) and whose children
         start within the profile's depth cutoff can settle subtrees. *)
      let fpn = ref (-1) in
      let fvmax = ref neg_inf in
      (match t.flt with
      | Some f
        when Qgram.enabled f
             && parent.max_score < t.min_score
             && parent.depth <= Qgram.cutoff f -> begin
        (* The parent's path spells the [depth] database symbols just
           before any non-empty child label. *)
        let anchor = ref (-1) in
        (try
           for j = 0 to n - 1 do
             if t.ch_stop.(j) > t.ch_start.(j) then begin
               anchor := t.ch_start.(j);
               raise Exit
             end
           done
         with Exit -> ());
        if parent.depth = 0 || !anchor >= parent.depth then begin
          if Array.length t.flt_path < parent.depth then
            t.flt_path <- Array.make (2 * parent.depth) 0;
          if parent.depth > 0 then
            S.blit_symbols t.source
              ~pos:(!anchor - parent.depth)
              ~len:parent.depth t.flt_path 0;
          let pn = Qgram.walk f t.flt_path parent.depth in
          if pn >= 0 then begin
            fpn := pn;
            let vmax = ref neg_inf in
            for i = 0 to m do
              let v = w.(poff + i) in
              if v > !vmax then vmax := v
            done;
            if t.affine then
              for i = 0 to m do
                let v = w.(poff + m + 1 + i) in
                if v > !vmax then vmax := v
              done;
            fvmax := !vmax
          end
        end
      end
      | _ -> ());
      let fpn = !fpn and fvmax = !fvmax in
      let i = ref 0 in
      while !i < n do
        let chunk = min Kernel_util.block_arcs (n - !i) in
        (match t.obs with
        | None -> ()
        | Some o -> Obs.Metric.observe o.Instrument.block_arcs chunk);
        let chunk_stop = !i + chunk in
        while !i < chunk_stop do
          let k = !i in
          let child = t.ch_nodes.(k) in
          let c = t.ch_sym.(k) in
          if c = t.term then begin
            (* Terminator-first arc: the bound is exact before any
               column runs. *)
            t.sc_best <- parent.max_score;
            t.sc_best_q <- parent.max_q;
            t.sc_best_off <- parent.max_off;
            (match t.obs with
            | None -> ()
            | Some o -> Obs.Metric.observe o.Instrument.arc_columns 0);
            finish_exact t child
          end
          else begin
            let cheap =
              if t.skip_ok && c >= 0 then begin
                (* O(1) filter: the coarse replacement term uses the best
                   PSSM entry for [c] anywhere in the query. *)
                let r = if rmax > neg_inf then rmax + t.smax.(c) else neg_inf in
                let q = if r >= del_ub then r else del_ub in
                if q <= thr || del_ub > thr then q
                else begin
                  (* Refine: the exact replacement-term bound pairs each
                     live diagonal feed with its own PSSM entry — an
                     O(live) scan, and [live] is small after pruning. *)
                  let row = c * m in
                  let cols = t.cols in
                  let live_i = t.live_i and live_g = t.live_g in
                  let rc = ref neg_inf in
                  for j = 0 to nlive - 1 do
                    let s =
                      Array.unsafe_get live_g j
                      + Array.unsafe_get cols (row + Array.unsafe_get live_i j)
                    in
                    if s > !rc then rc := s
                  done;
                  if !rc >= del_ub then !rc else del_ub
                end
              end
              else max_int
            in
            if cheap <= parent.max_score || cheap < t.min_score then begin
              if checked_kernel then check_skip t parent c cheap;
              (* One logical column: the reference engine runs exactly
                 one before reaching this verdict. *)
              t.c_columns <- t.c_columns + 1;
              t.c_bound_reused <- t.c_bound_reused + 1;
              (match t.obs with
              | None -> ()
              | Some o ->
                Obs.Metric.incr o.Instrument.bound_reused;
                Obs.Metric.observe o.Instrument.arc_columns 1);
              if cheap <= parent.max_score then begin
                (* Dominated: the reference column cannot improve the
                   running best, so its verdict is status 2 with the
                   parent's registers intact. *)
                t.sc_best <- parent.max_score;
                t.sc_best_q <- parent.max_q;
                t.sc_best_off <- parent.max_off;
                finish_exact t child
              end
              else
                (* cheap < min_score (and parent.max_score < cheap <
                   min_score): the reference column ends below both
                   thresholds and its node is discarded either way. *)
                t.c_pruned <- t.c_pruned + 1
            end
            else begin
              (* q-gram settle (§2k): the ALAE bound could not settle
                 this arc, but the lemma bound over the child's whole
                 subtree might — coarse form first, then the per-cell
                 refinement pairing each live parent cell with the
                 query budget actually left from its position. *)
              let qsettle =
                match t.flt with
                | Some f when fpn >= 0 && c >= 0 ->
                  let cn = Qgram.child f fpn c in
                  if cn < 0 || not (Qgram.usable f cn) then false
                  else begin
                    t.ft_tested <- t.ft_tested + 1;
                    let g = Qgram.gcount f cn in
                    if fvmax + Qgram.ebound f ~g ~l:m < t.min_score then begin
                      t.ft_settled_coarse <- t.ft_settled_coarse + 1;
                      true
                    end
                    else begin
                      let ok = ref true in
                      let j = ref 0 in
                      while !ok && !j <= m do
                        let v = w.(poff + !j) in
                        let v =
                          if t.affine && w.(poff + m + 1 + !j) > v then
                            w.(poff + m + 1 + !j)
                          else v
                        in
                        if
                          v > neg_inf
                          && v + Qgram.ebound f ~g ~l:(m - !j) >= t.min_score
                        then ok := false;
                        incr j
                      done;
                      if !ok then
                        t.ft_settled_refined <- t.ft_settled_refined + 1;
                      !ok
                    end
                  end
                | _ -> false
              in
              if qsettle then begin
                if checked_kernel then check_qgram_settle t parent k;
                (* One logical column, like an ALAE settle — but not a
                   [c_bound_reused] arc: the savings this tier adds are
                   exactly the subtree columns the unfiltered engine
                   would still run. *)
                t.c_columns <- t.c_columns + 1;
                t.c_pruned <- t.c_pruned + 1;
                match t.obs with
                | None -> ()
                | Some o -> Obs.Metric.observe o.Instrument.arc_columns 1
              end
              else begin
                t.c_bound_recomputed <- t.c_bound_recomputed + 1;
                (match t.obs with
                | None -> ()
                | Some o -> Obs.Metric.incr o.Instrument.bound_recomputed);
                run_arc t parent child w poff k
              end
            end
          end;
          incr i
        done
      done
    end

  (* Shared constructor: [cols]/[hvec] come either from a matrix and a
     query or from a position-specific profile. A borrowed [session] is
     reset for this search, which invalidates any previous engine that
     was using it. *)
  let create_internal ?session ?filter ~source ~db ~profile (cfg : config) =
    if cfg.min_score < 1 then
      invalid_arg "Oasis.Engine.create: min_score must be >= 1";
    if
      Bioseq.Alphabet.name (Scoring.Pssm.alphabet profile)
      <> Bioseq.Alphabet.name (Bioseq.Database.alphabet db)
    then invalid_arg "Oasis.Engine.create: alphabet mismatch";
    let m = Scoring.Pssm.length profile in
    let hvec =
      Heuristic.vector_of_profile ~style:cfg.options.heuristic ~gap:cfg.gap
        profile
    in
    let affine = not (Scoring.Gap.is_linear cfg.gap) in
    let width = (m + 1) * if affine then 2 else 1 in
    let cols = Scoring.Pssm.cols_flat profile in
    let smax =
      Kernel_util.smax_of_cols ~cols ~m ~dim:(Scoring.Pssm.dim profile)
    in
    (* The pre-DP sibling bound is only admissible when the heuristic
       vector is pointwise non-negative (so a cell's bound dominates the
       running best's) and drops by at least the gap-extension score per
       step (so parent-column aggregates cover insert chains with no
       slack). Both constructors in [Heuristic] satisfy this; check
       rather than assume. *)
    let skip_ok =
      Array.for_all (fun h -> h >= 0) hvec
      && Kernel_util.min_hdrop hvec >= Scoring.Gap.extend_score cfg.gap
    in
    let ses =
      match session with
      | Some s ->
        Col_pool.reset s.ses_pool ~width;
        Frontier.clear s.ses_fr;
        s
      | None ->
        {
          ses_pool = Col_pool.create ~width;
          ses_fr = Frontier.create ();
          ses_emit_buf = Array.make 64 0;
        }
    in
    let t =
      {
        source;
        db;
        m;
        hvec;
        cfg;
        cols;
        gap_open = Scoring.Gap.open_score cfg.gap;
        gap_extend = Scoring.Gap.extend_score cfg.gap;
        min_score = cfg.min_score;
        opt_pn = cfg.options.prune_nonpositive;
        opt_pd = cfg.options.prune_dominated;
        affine;
        term = S.terminator source;
        smax;
        skip_ok;
        ses;
        pool = ses.ses_pool;
        fr = ses.ses_fr;
        reported_seq = Array.make (Bioseq.Database.num_sequences db) false;
        reported_count = 0;
        pending = Queue.create ();
        c_columns = 0;
        c_expanded = 0;
        c_enqueued = 0;
        c_pruned = 0;
        c_max_queue = 0;
        c_bound_reused = 0;
        c_bound_recomputed = 0;
        flt = filter;
        flt_path = Array.make 16 0;
        ft_tested = 0;
        ft_settled_coarse = 0;
        ft_settled_refined = 0;
        sc_best = 0;
        sc_best_q = 0;
        sc_best_off = 0;
        sc_ub = neg_inf;
        sc_depth = 0;
        sc_col_depth = 0;
        sc_cut = 0;
        ch_nodes = Array.make 32 (S.root source);
        ch_start = Array.make 32 0;
        ch_stop = Array.make 32 0;
        ch_sym = Array.make 32 0;
        live_i = Array.make m 0;
        live_g = Array.make m 0;
        sym_buf = Array.make sym_chunk 0;
        sym_base = 0;
        sym_n = 0;
        tracer = None;
        obs = None;
        base_minor_words = Gc.minor_words ();
        base_io_hits = (let h, _ = S.io_stats source in h);
        base_io_misses = (let _, m = S.io_stats source in m);
        deadline =
          (match cfg.budget.time_limit with
          | None -> infinity
          | Some s -> Unix.gettimeofday () +. s);
        exhausted = None;
      }
    in
    (* Algorithm 2: seed the queue with the root. Root B entries are 0
       (the empty partial alignment may start at any query position);
       entries that cannot reach min_score are pruned. *)
    let priority = ref neg_inf in
    for i = 0 to m do
      if hvec.(i) >= cfg.min_score && hvec.(i) > !priority then
        priority := hvec.(i)
    done;
    if !priority > neg_inf then begin
      let slot = Col_pool.acquire t.pool in
      Col_pool.fill t.pool slot neg_inf;
      let w = Col_pool.data t.pool in
      let off = Col_pool.base t.pool slot in
      for i = 0 to m do
        if hvec.(i) >= cfg.min_score then w.(off + i) <- 0
      done;
      Frontier.push t.fr ~priority:!priority ~tie:1 ~node:(S.root source)
        ~slot ~depth:0 ~max_score:0 ~max_q:0 ~max_off:0 ~accepted:false;
      t.c_enqueued <- 1;
      t.c_max_queue <- 1
    end;
    t

  let create ?session ?filter ~source ~db ~query cfg =
    if Bioseq.Sequence.length query = 0 then
      invalid_arg "Oasis.Engine.create: empty query";
    if
      Bioseq.Alphabet.name (Scoring.Submat.alphabet cfg.matrix)
      <> Bioseq.Alphabet.name (Bioseq.Sequence.alphabet query)
    then invalid_arg "Oasis.Engine.create: alphabet mismatch";
    let filter =
      match filter with
      | Some profile ->
        let f =
          Qgram.make ~profile ~query ~matrix:cfg.matrix ~gap:cfg.gap
        in
        if Qgram.enabled f then Some f else None
      | None -> None
    in
    create_internal ?session ?filter ~source ~db
      ~profile:(Scoring.Pssm.of_query ~matrix:cfg.matrix query)
      cfg

  let create_profile ?session ~source ~db ~profile
      ?(options = default_options) ?(budget = unlimited) ~gap ~min_score () =
    (* The config's matrix slot is irrelevant for profile searches (the
       profile carries all scores); store the unit matrix of the
       profile's alphabet so the record stays self-consistent. *)
    create_internal ?session ~source ~db ~profile
      {
        matrix = Scoring.Submat.unit_edit (Scoring.Pssm.alphabet profile);
        gap;
        min_score;
        options;
        budget;
      }

  let set_tracer t f = t.tracer <- Some f
  let set_instrument t obs = t.obs <- obs

  let trace t event =
    match t.tracer with None -> () | Some f -> f event

  (* Report an accepted node: every not-yet-reported sequence with an
     occurrence below it, in ascending position order. Positions stream
     into a reused scratch buffer and are sorted in place — no list, no
     [List.sort] allocation per hit. *)
  let emit t node =
    let n = ref 0 in
    S.iter_positions t.source node.tree_node (fun p ->
        if !n = Array.length t.ses.ses_emit_buf then begin
          let bigger = Array.make (2 * !n) 0 in
          Array.blit t.ses.ses_emit_buf 0 bigger 0 !n;
          t.ses.ses_emit_buf <- bigger
        end;
        t.ses.ses_emit_buf.(!n) <- p;
        incr n);
    sort_range t.ses.ses_emit_buf 0 (!n - 1);
    for i = 0 to !n - 1 do
      let p = t.ses.ses_emit_buf.(i) in
      let seq_index = Bioseq.Database.seq_of_pos t.db p in
      if not t.reported_seq.(seq_index) then begin
        t.reported_seq.(seq_index) <- true;
        t.reported_count <- t.reported_count + 1;
        let global_stop = p + node.max_off in
        trace t (Reported { seq_index; score = node.max_score });
        (match t.obs with
        | Some { Instrument.trace = Some sink; _ } ->
          Obs.Trace.instant sink "hit"
            ~args:
              [
                ("seq", Obs.Trace.Int seq_index);
                ("score", Obs.Trace.Int node.max_score);
              ]
        | _ -> ());
        Queue.add
          {
            Hit.seq_index;
            score = node.max_score;
            query_stop = node.max_q;
            target_stop =
              global_stop - Bioseq.Database.seq_start t.db seq_index;
          }
          t.pending
      end
    done

  (* Has the configured budget run out? Checked between queue pops, so a
     single arc expansion may overshoot [max_columns] by one arc's worth
     of columns — the stop is clean, not surgical. *)
  let budget_spent t =
    let b = t.cfg.budget in
    (match b.max_columns with Some l -> t.c_columns >= l | None -> false)
    || (match b.max_expanded with Some l -> t.c_expanded >= l | None -> false)
    || (t.deadline < infinity && Unix.gettimeofday () >= t.deadline)

  let rec next_loop t =
    match Queue.take_opt t.pending with
    | Some hit -> Some hit
    | None ->
      if t.reported_count >= Array.length t.reported_seq then None
      else if t.exhausted <> None then None
      else begin
        obs_phase t Instrument.phase_bound;
        if budget_spent t && Frontier.length t.fr > 0 then begin
          (* Stop with the frontier intact: the head priority is an
             admissible bound on every hit the truncated search would
             still have reported. *)
          (match Frontier.peek_priority t.fr with
          | Some bound -> t.exhausted <- Some bound
          | None -> assert false);
          None
        end
        else begin
          obs_phase t Instrument.phase_queue;
          match Frontier.pop t.fr with
          | None -> None
          | Some tree_node ->
            let priority = Frontier.popped_priority t.fr in
            (* The popped entry's one record materialization: pushes
               stored bare fields in the frontier's flat arenas. *)
            let node =
              {
                tree_node;
                slot = Frontier.popped_slot t.fr;
                depth = Frontier.popped_depth t.fr;
                max_score = Frontier.popped_max_score t.fr;
                max_q = Frontier.popped_max_q t.fr;
                max_off = Frontier.popped_max_off t.fr;
                accepted = Frontier.popped_accepted t.fr;
              }
            in
            trace t
              (Popped
                 {
                   priority;
                   accepted = node.accepted;
                   depth = node.depth;
                   max_score = node.max_score;
                   queue_length = Frontier.length t.fr;
                 });
            if node.accepted then begin
              obs_phase t Instrument.phase_emit;
              emit t node;
              obs_phase t Instrument.phase_queue
            end
            else begin
              (match t.obs with
              | None -> ()
              | Some o -> (
                Obs.Metric.observe o.Instrument.expansion_depth node.depth;
                match o.Instrument.trace with
                | None -> ()
                | Some sink ->
                  (* One "expand" event per expanded node, so
                     trace_check.py can equate the event count with the
                     nodes_expanded counter. *)
                  Obs.Trace.instant sink "expand"
                    ~args:
                      [
                        ("depth", Obs.Trace.Int node.depth);
                        ("priority", Obs.Trace.Int priority);
                        ("queue", Obs.Trace.Int (Frontier.length t.fr));
                      ]));
              obs_phase t Instrument.phase_expand;
              t.c_expanded <- t.c_expanded + 1;
              expand_children t node;
              (* Every child has copied what it needs: recycle the
                 parent's column. *)
              Col_pool.release t.pool node.slot;
              obs_phase t Instrument.phase_queue;
              let qlen = Frontier.length t.fr in
              if qlen > t.c_max_queue then begin
                t.c_max_queue <- qlen;
                match t.obs with
                | None -> ()
                | Some o -> (
                  Obs.Metric.set o.Instrument.queue qlen;
                  match o.Instrument.trace with
                  | None -> ()
                  | Some sink ->
                    Obs.Trace.instant sink "queue_hwm"
                      ~args:[ ("queue", Obs.Trace.Int qlen) ])
              end
            end;
            next_loop t
        end
      end

  (* Public [next]: when instrumented, the timer runs for exactly the
     span of the call (started on entry, paused on exit), so per-phase
     times telescope to the instrumented wall time. *)
  let next t =
    match t.obs with
    | None -> next_loop t
    | Some o ->
      Obs.Timer.switch o.Instrument.timer Instrument.phase_queue;
      let hit = next_loop t in
      Obs.Timer.pause o.Instrument.timer;
      hit

  let run ?limit t =
    let rec go acc n =
      match limit with
      | Some l when n >= l -> List.rev acc
      | _ -> (
        match next t with
        | None -> List.rev acc
        | Some hit -> go (hit :: acc) (n + 1))
    in
    go [] 0

  let peek_bound t =
    let from_queue = Frontier.peek_priority t.fr in
    match Queue.peek_opt t.pending with
    | None -> from_queue
    | Some hit -> (
      match from_queue with
      | None -> Some hit.Hit.score
      | Some p -> Some (max p hit.Hit.score))

  let frontier_bound t =
    match peek_bound t with Some b -> b | None -> neg_inf

  let counters t =
    {
      columns = t.c_columns;
      nodes_expanded = t.c_expanded;
      nodes_enqueued = t.c_enqueued;
      nodes_pruned = t.c_pruned;
      max_queue = t.c_max_queue;
      pool_reused = Col_pool.reused t.pool;
      pool_live = Col_pool.live t.pool;
      pool_peak_live = Col_pool.peak_live t.pool;
      pool_peak_bytes = Col_pool.capacity_bytes t.pool;
      minor_words = Gc.minor_words () -. t.base_minor_words;
      io_hits = (let h, _ = S.io_stats t.source in h - t.base_io_hits);
      io_misses = (let _, m = S.io_stats t.source in m - t.base_io_misses);
    }

  let queue_length t = Frontier.length t.fr
  let reported t = t.reported_count
  let bound_stats t = (t.c_bound_reused, t.c_bound_recomputed)

  let filter_stats t =
    (t.ft_tested, t.ft_settled_coarse, t.ft_settled_refined)

  let outcome t =
    match t.exhausted with
    | Some remaining_bound -> Exhausted { remaining_bound }
    | None ->
      if
        Queue.is_empty t.pending
        && (Frontier.length t.fr = 0
           || t.reported_count >= Array.length t.reported_seq)
      then Complete
      else Searching
end

module type DRIVER = sig
  type t

  val next : t -> Hit.t option
  val peek_bound : t -> int option
end

module Mem = Make (Source.Mem)
module Packed = Make (Source.Packed)
module Disk = Make (Source.Disk)
