type t = {
  seq_index : int;
  score : int;
  query_stop : int;
  target_stop : int;
}

let compare_for_report a b =
  if a.score <> b.score then Int.compare b.score a.score
  else Int.compare a.seq_index b.seq_index

let pp ppf h =
  Format.fprintf ppf "seq %d score %d (query ..%d, target ..%d)" h.seq_index
    h.score h.query_stop h.target_stop
