(** Tree sources: the engine's view of a suffix tree.

    The OASIS search only needs to walk children, read arc labels symbol
    by symbol, and enumerate the suffix positions below a node. Two
    implementations are provided: the in-memory {!Suffix_tree.Tree} and
    the paged {!Storage.Disk_tree} (whose every access is counted by the
    buffer pool).

    Error model: {!Disk} accessors read through the buffer pool, so a
    failing device surfaces as {!Storage.Io_error} out of any engine
    call that touches the tree ([next], mostly). Transient faults are
    retried inside the pool (see {!Storage.Buffer_pool.set_retry});
    only errors that outlive the retry policy escape. An escape is
    fatal to the search (a node may already have been popped), so size
    the retry policy for the faults you expect and treat the exception
    as "rebuild the engine". *)

module type S = sig
  type t
  type node

  val root : t -> node
  val children : t -> node -> node list

  val iter_children : t -> node -> (node -> unit) -> unit
  (** Same children, same order as {!children}, without materializing a
      list — the engine's hot path uses this to keep expansion
      allocation-free (the in-memory tree iterates sibling links in
      place). *)

  val is_leaf : t -> node -> bool

  val label_start : t -> node -> int
  (** Global symbols position where the incoming arc's label begins. *)

  val label_stop : t -> node -> int option
  (** One past the label's last symbol; [None] when the arc runs to its
      sequence terminator (leaf arcs on disk). *)

  val label_end : t -> node -> int
  (** {!label_stop} without the option box: for a leaf arc, the real
      exclusive end — its sequence's terminator position + 1 (the disk
      source resolves it from a terminator table built at open time).
      The engine's per-child hot path uses this to stay
      allocation-free. *)

  val symbol : t -> int -> int
  (** Symbol code at a global position (terminator included). *)

  val terminator : t -> int

  val iter_positions : t -> node -> (int -> unit) -> unit
  (** Suffix start positions of all leaf occurrences below the node,
      without materializing a list — the engine's hit-emission path
      uses this with a reusable scratch buffer. Order is unspecified;
      not reentrant. *)

  val io_stats : t -> int * int
  (** Cumulative I/O [(hits, misses)] behind this source — buffer-pool
      traffic for {!Disk}, [(0, 0)] for {!Mem}. *)
end

module Mem : S with type t = Suffix_tree.Tree.t
module Disk : S with type t = Storage.Disk_tree.t
