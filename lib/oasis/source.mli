(** Tree sources: the engine's view of a suffix tree.

    The OASIS search only needs to walk children, read arc labels symbol
    by symbol, and enumerate the suffix positions below a node. Two
    implementations are provided: the in-memory {!Suffix_tree.Tree} and
    the paged {!Storage.Disk_tree} (whose every access is counted by the
    buffer pool).

    Error model: {!Disk} accessors read through the buffer pool, so a
    failing device surfaces as {!Storage.Io_error} out of any engine
    call that touches the tree ([next], mostly). Transient faults are
    retried inside the pool (see {!Storage.Buffer_pool.set_retry});
    only errors that outlive the retry policy escape. An escape is
    fatal to the search (a node may already have been popped), so size
    the retry policy for the faults you expect and treat the exception
    as "rebuild the engine". *)

module type S = sig
  type t
  type node

  val root : t -> node
  val children : t -> node -> node list

  val iter_children : t -> node -> (node -> unit) -> unit
  (** Same children, same order as {!children}, without materializing a
      list — the engine's hot path uses this to keep expansion
      allocation-free (the in-memory tree iterates sibling links in
      place). *)

  val is_leaf : t -> node -> bool

  val label_start : t -> node -> int
  (** Global symbols position where the incoming arc's label begins. *)

  val label_stop : t -> node -> int option
  (** One past the label's last symbol; [None] when the arc runs to its
      sequence terminator (leaf arcs on disk). *)

  val label_end : t -> node -> int
  (** {!label_stop} without the option box: for a leaf arc, the real
      exclusive end — its sequence's terminator position + 1 (the disk
      source resolves it from a terminator table built at open time).
      The engine's per-child hot path uses this to stay
      allocation-free. *)

  val gather :
    t -> node -> (node -> start:int -> stop:int -> sym:int -> unit) -> unit
  (** One fused pass over [node]'s children in {!iter_children} order:
      each child arrives with its label range ([start]/[stop], as
      {!label_start}/{!label_end} would report) and its first symbol
      code [sym] ({!symbol} at [start]; [-1] for an empty label). The
      engines' expansion path uses this to pay one callback per child
      instead of four accessor dispatches. *)

  val symbol : t -> int -> int
  (** Symbol code at a global position (terminator included). *)

  val blit_symbols : t -> pos:int -> len:int -> int array -> int -> unit
  (** [blit_symbols t ~pos ~len dst off] copies the [len] symbol codes
      at global positions [pos .. pos + len - 1] (terminators included)
      into [dst.(off .. off + len - 1)]. Semantically [len] calls to
      {!symbol}; one call per label run lets the engine's blocked arc
      walk fetch a chunk of a sibling's label through a single functor
      dispatch instead of one per DP column. *)

  val terminator : t -> int

  val iter_positions : t -> node -> (int -> unit) -> unit
  (** Suffix start positions of all leaf occurrences below the node,
      without materializing a list — the engine's hit-emission path
      uses this with a reusable scratch buffer. Order is unspecified;
      not reentrant. *)

  val io_stats : t -> int * int
  (** Cumulative I/O [(hits, misses)] behind this source — buffer-pool
      traffic for {!Disk}, [(0, 0)] for {!Mem}. *)
end

module Mem : S with type t = Suffix_tree.Tree.t

module Packed :
  S with type t = Suffix_tree.Packed.t and type node = Suffix_tree.Packed.node
(** The flat array-packed image ({!Suffix_tree.Packed.of_tree}): same
    children, same canonical order, same hit streams as {!Mem} over the
    packed tree's origin — but gathering a sibling block is a
    sequential scan of contiguous arrays instead of a pointer chase,
    and node handles are unboxed ints. The throughput benchmarks run
    the engine over this source. *)

module Disk : S with type t = Storage.Disk_tree.t
