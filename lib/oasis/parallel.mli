(** Sharded multicore search: one engine per database shard on a
    {!Domain_pool}, merged back into a single online hit stream.

    {2 Why sharding is exact}

    A {!Shard.plan} cuts the database only at sequence boundaries, so
    every alignment the unsharded search can find lies entirely inside
    one shard: running K independent engines finds exactly the union of
    the unsharded result set, with shard-local sequence indices mapped
    back through {!Shard.globalize}.

    {2 Why the merge preserves the online order}

    Each engine emits its hits in non-increasing score order and
    publishes, after every hit, an admissible upper bound on everything
    it can still produce ({!Engine.Make.frontier_bound}, clamped to the
    last hit's score). The coordinator buffers each shard's hits and
    releases the best buffered candidate — score [s] from shard [i] —
    only when it provably precedes everything unseen, i.e. for every
    shard [j <> i] that is still running with an empty buffer:

    [s > bound_j  \/  (s = bound_j /\ j > i)]

    Shards with a non-empty buffer need no check: the candidate is the
    maximum over buffer heads (lowest shard index on ties), and each
    buffer is itself sorted. Because bounds only decrease and are
    admissible, this rule makes the merged stream a {e deterministic}
    function of the per-shard streams — independent of domain timing —
    and globally non-increasing. Ties across shards emit in increasing
    shard index; within a shard the engine's own order is kept. With
    K = 1 the stream is bit-identical to the plain engine's.

    With K > 1 the stream equals the unsharded one modulo two tie
    effects, both deterministic: (a) equal-score hits may permute
    across shards (they emit in shard order, the single engine in its
    own queue order), and (b) when one sequence has several endpoints
    of the same maximal score, the shard's tree may discover a
    different one than the global tree — [seq_index] and [score] are
    always identical, only the reported stop coordinates can differ.

    {2 Budgets}

    [max_columns] and [max_expanded] are divided across shards in
    proportion to shard symbol count (largest-remainder rounding), so
    the aggregate work bound is the configured one. [time_limit] is a
    shared wall clock measured from {!Make.create}: shards whose task
    starts late get only the remaining time. The aggregate
    {!Make.outcome} is [Exhausted] as soon as any shard exhausted — but
    unlike a single exhausted engine, the other shards still complete
    and their hits are exact, so truncation degrades {e better} than in
    the unsharded search; [remaining_bound] is the max over exhausted
    shards' bounds.

    A worker that raises poisons the stream: the first exception is
    re-raised from the next {!Make.next} call. *)

val split_limit : int array -> int option -> int option array
(** Largest-remainder split of an optional limit over weights: quotas
    sum exactly to the limit, each share proportional to its weight,
    deterministic (remainder to the largest fractional parts, lowest
    index first on ties). Shared with {!Multi}, which splits budgets
    over heterogeneous index parts the same way this module splits them
    over shards. *)

module Make (S : Source.S) : sig
  type shard_source = {
    source : S.t;  (** suffix tree over [piece.db] *)
    piece : Shard.piece;
  }

  type t

  val create :
    ?pool:Domain_pool.t ->
    ?obs:Instrument.merge ->
    ?profiles:Quasar.Profile.t option array ->
    shards:shard_source array ->
    query:Bioseq.Sequence.t ->
    Engine.config ->
    t
  (** Submit one search task per shard and return immediately; hits
      are pulled with {!next}. Without [pool] a private pool of
      [min (Array.length shards) (Domain.recommended_domain_count ())]
      domains is created and shut down when the stream drains. With
      fewer workers than shards the search still completes (later
      shards queue), but nothing can be emitted until every shard has
      started and published its first bound. Raises [Invalid_argument]
      on an empty shard array, or on [profiles] of a different length
      than [shards].

      [profiles] (one per shard, [None] entries allowed) arms each
      shard engine's q-gram tier (see {!Engine.Make.create}) and caps
      the shard's published merge bound by the admissible whole-shard
      score bound [Oasis.Qgram.shard_cap] from the moment of creation —
      a shard with little gram overlap with the query stops holding
      back other shards' releases before its engine pops a single node.
      Both uses are admissible-bound tightenings: the merged stream is
      bit-identical with or without them.

      With [obs], the merge records per-shard release latency (push to
      order-preserving release) and merge-buffer occupancy histograms,
      and — when the instrument carries a trace sink — streams
      ["frontier"] (per-shard bound updates, one trace [tid] per
      shard) and ["release"] events. All updates happen under the
      coordinator lock, so a single sink is safe across domains. *)

  val next : t -> Hit.t option
  (** Blocking pull of the next merged hit; [None] once every shard
      has finished and its buffer drained. Same contract as
      {!Engine.Make.next}: non-increasing scores, each (global)
      sequence at most once. *)

  val run : ?limit:int -> t -> Hit.t list
  (** Drain {!next} (up to [limit] results). *)

  val peek_bound : t -> int option
  (** Upper bound on the score of every hit {!next} can still return
      (max over shard buffers and published bounds); [None] once
      nothing remains. Before a shard's task has started this is
      [Some max_int] — admissible, just loose — or the shard's q-gram
      cap when [profiles] was given. *)

  val outcome : t -> Engine.outcome
  (** [Searching] until every shard finished {e and} the merged stream
      drained; then [Complete], or [Exhausted] with the max remaining
      bound if any shard ran out of budget (see the budget notes
      above). *)

  val counters : t -> Engine.counters
  (** {!Counters.merge} across shards (additive fields summed, pool
      gauges maxed), from each shard's latest published snapshot —
      exact once that shard finished. *)

  val num_shards : t -> int
end

module Mem : sig
  include module type of Make (Source.Mem)

  val create_sharded :
    ?pool:Domain_pool.t ->
    ?obs:Instrument.merge ->
    shards:int ->
    db:Bioseq.Database.t ->
    query:Bioseq.Sequence.t ->
    Engine.config ->
    t
  (** Convenience: {!Shard.plan} the database, build one in-memory
      suffix tree per piece (on [pool] when given), and {!create}. *)
end

module Disk : module type of Make (Source.Disk)
(** Sharded search over per-shard {!Storage.Disk_tree} indexes (see
    {!Storage.Shard_manifest} for the on-disk layout). *)
