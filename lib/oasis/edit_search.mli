(** Approximate (k-difference) search on the suffix tree — the §5
    alternative of Chavez and Navarro: "an algorithm operating on a
    suffix tree that finds all matches within a certain edit distance".

    A depth-first walk of the tree carries one unit-cost edit-distance
    DP row per path symbol and prunes a branch as soon as every row
    entry exceeds [max_diffs]; a path whose full-query entry is within
    the budget reports every leaf below it.

    The paper's point (§5) is that for PAM/BLOSUM scoring "edit distance
    provides a very loose lower-bound on the actual alignment score,
    since certain residues are substituted with high likelihood" — the
    [edit] benchmark quantifies how differently this search and the
    score-driven OASIS select sequences. *)

type hit = {
  seq_index : int;
  edits : int;  (** smallest edit distance found for this sequence *)
  target_stop : int;  (** sequence-local end of one best occurrence *)
}

type stats = {
  nodes_visited : int;
  rows_computed : int;  (** DP rows, comparable to column counts *)
}

module Make (S : Source.S) : sig
  val search :
    source:S.t ->
    db:Bioseq.Database.t ->
    query:Bioseq.Sequence.t ->
    max_diffs:int ->
    hit list * stats
  (** All sequences containing a substring within [max_diffs] unit-cost
      edits (substitution / insertion / deletion) of the whole query,
      with each sequence's best distance, sorted by increasing [edits]
      then sequence index. [max_diffs >= 0].

      Runs the Myers-style bit-parallel row kernel: the edit-distance
      row lives as word-packed delta vectors (62 query positions per
      native int, the spare bit absorbing the addition carry), one row
      update costs O(m/62) word operations, and the exact row minimum
      driving the prune comes from a byte-table scan. Hits {e and}
      stats are bit-identical to {!search_dp} (property-tested; under
      [OASIS_CHECKED_KERNEL=1] every call runs both kernels and fails
      loudly on divergence). *)

  val search_dp :
    source:S.t ->
    db:Bioseq.Database.t ->
    query:Bioseq.Sequence.t ->
    max_diffs:int ->
    hit list * stats
  (** The scalar O(m)-per-row DP kernel — the executable specification
      {!search} is verified against. *)
end

module Mem : module type of Make (Source.Mem)
module Disk : module type of Make (Source.Disk)
