let phase_queue = 0
let phase_expand = 1
let phase_dp = 2
let phase_bound = 3
let phase_emit = 4
let phase_names = [| "queue"; "expand"; "dp"; "bound"; "emit" |]

type t = {
  timer : Obs.Timer.t;
  expansion_depth : Obs.Metric.histogram;
  arc_columns : Obs.Metric.histogram;
  queue : Obs.Metric.gauge;
  block_arcs : Obs.Metric.histogram;
  bound_reused : Obs.Metric.counter;
  bound_recomputed : Obs.Metric.counter;
  batch_active : Obs.Metric.histogram;
  batch_retired : Obs.Metric.counter;
  trace : Obs.Trace.t option;
  registry : Obs.Registry.t;
}

let create ?registry ?trace () =
  let registry =
    match registry with Some r -> r | None -> Obs.Registry.create ()
  in
  {
    timer = Obs.Timer.create ~phases:phase_names;
    expansion_depth = Obs.Registry.histogram registry "engine.expansion_depth";
    arc_columns = Obs.Registry.histogram registry "engine.arc_columns";
    queue = Obs.Registry.gauge registry "engine.queue";
    block_arcs = Obs.Registry.histogram registry "block.arcs_per_block";
    bound_reused = Obs.Registry.counter registry "bound.reused";
    bound_recomputed = Obs.Registry.counter registry "bound.recomputed";
    batch_active = Obs.Registry.histogram registry "batch.active_queries";
    batch_retired = Obs.Registry.counter registry "batch.retired";
    trace;
    registry;
  }

type merge = {
  release_latency_us : Obs.Metric.histogram;
  merge_occupancy : Obs.Metric.histogram;
  merge_trace : Obs.Trace.t option;
}

let merge_obs ?registry ?trace () =
  let registry =
    match registry with Some r -> r | None -> Obs.Registry.create ()
  in
  {
    release_latency_us =
      Obs.Registry.histogram registry "parallel.release_latency_us";
    merge_occupancy = Obs.Registry.histogram registry "parallel.merge_occupancy";
    merge_trace = trace;
  }

let emit_counters sink ?(sharded = false) (c : Counters.t) =
  Obs.Trace.instant sink "counters"
    ~args:
      [
        ("sharded", Obs.Trace.Bool sharded);
        ("columns", Obs.Trace.Int c.columns);
        ("nodes_expanded", Obs.Trace.Int c.nodes_expanded);
        ("nodes_enqueued", Obs.Trace.Int c.nodes_enqueued);
        ("nodes_pruned", Obs.Trace.Int c.nodes_pruned);
        ("max_queue", Obs.Trace.Int c.max_queue);
        ("pool_peak_bytes", Obs.Trace.Int c.pool_peak_bytes);
        ("io_hits", Obs.Trace.Int c.io_hits);
        ("io_misses", Obs.Trace.Int c.io_misses);
      ]
