(** Bucket frontier for the engine's A* loop.

    Same queue discipline as {!Pqueue} — decreasing [priority], then
    increasing [tie] (must be 0 or 1), then insertion order (FIFO) — but
    implemented as an array of per-(priority, tie) FIFO buckets indexed
    by the priority itself, which must be a non-negative int (scores in
    the engine are bounded by the root bound). Every operation is O(1)
    plus an amortized scan of empty buckets; because A* pops
    non-increasing bounds and arc bounds are admissible along a path,
    that scan totals roughly one pass over the score range per search.

    The payload is the engine's search-node shape — tree node plus six
    scalar fields — stored in flat arenas so a push allocates nothing;
    the fields of the last popped entry are read back through the
    [popped_*] registers (see DESIGN.md §2j). *)

type 'node t

val create : unit -> 'node t
val is_empty : 'node t -> bool
val length : 'node t -> int

val clear : 'node t -> unit
(** Empty the frontier, keeping bucket-table and arena capacity — an
    engine session reuses one frontier across queries. Retained arena
    slots may still reference previously pushed nodes until overwritten;
    the engine's session reuse always re-pushes before reading, so
    nothing observes them (same caveat as {!Pqueue.clear}). *)

val push :
  'node t ->
  priority:int ->
  tie:int ->
  node:'node ->
  slot:int ->
  depth:int ->
  max_score:int ->
  max_q:int ->
  max_off:int ->
  accepted:bool ->
  unit
(** Enqueue one search node without allocating. [priority] must be
    non-negative and [tie] must be 0 or 1; raises [Invalid_argument]
    otherwise. *)

val pop : 'node t -> 'node option
(** Highest priority first, ties as documented above. The scalar fields
    of the popped entry are left in the [popped_*] registers below,
    valid until the next {!pop}. *)

val popped_priority : 'node t -> int
val popped_slot : 'node t -> int
val popped_depth : 'node t -> int
val popped_max_score : 'node t -> int
val popped_max_q : 'node t -> int
val popped_max_off : 'node t -> int
val popped_accepted : 'node t -> bool

val peek_priority : 'node t -> int option
val top_priority_exn : 'node t -> int
(** Raises [Invalid_argument] when empty. *)
