(* Fused multi-query batch kernel: one best-first suffix-tree traversal
   serving k queries at once.

   The engine's DP columns, bounds and acceptance decisions are all
   path-local — [Engine.expand] reloads the running best from the
   parent node, never from a global register — so every (node, query)
   fact (DP column, admissible bound, exact score) is a pure function
   of the tree and the query, independent of traversal order. The
   fused kernel exploits that split:

   - A {e physical} traversal expands each tree node once for the whole
     batch. DP columns for the k queries live lane-major in one
     [Col_pool] slot (lane q's cells contiguous at
     [off + q*(mm+1) + i]); the arc's symbols are fetched from the
     source once, memoized in [sym_buf], and each lane then walks the
     whole arc with its running state (best, bound, cutoff) in
     registers. Per-query cutoffs retire a query's lane from the walk
     the moment its own bound falls under its prune threshold; the walk
     stops when no lane is live. Each expansion records a per-(child,
     lane) fact table: pruned, viable with bound, or accepted with the
     exact score.

   - Per query, a {e virtual} engine replays the single-engine search
     over the recorded facts: its own priority queue (same priorities,
     same accepted-before-viable tie, same FIFO seqno discipline), its
     own budget counters, its own emission pass. Because the facts are
     traversal-order independent, the replay's pop/emit sequence — and
     therefore the hit stream, including budget truncation — is
     bit-identical to running [Engine.Make(S)] on that query alone.

   - The scheduler is demand-driven: virtual engines drain until each
     blocks on a tree node not yet physically expanded; the blocked
     node with the highest bound (the max live bound across the batch)
     is expanded next. Nodes no engine ever needs — e.g. beyond every
     query's budget — are never touched. *)

let neg_inf = Scoring.Submat.neg_inf

module type S = sig
  type t
  type source

  val create :
    ?filter:Quasar.Profile.t ->
    source:source ->
    db:Bioseq.Database.t ->
    queries:Bioseq.Sequence.t array ->
    Engine.config ->
    t

  val next : t -> (int * Hit.t) option
  val run : t -> unit
  val hits : t -> int -> Hit.t list
  val outcome : t -> int -> Engine.outcome
  val peek_bound : t -> int -> int option
  val counters : t -> int -> Counters.t
  val shared_counters : t -> Counters.t
  val num_queries : t -> int
  val retired : t -> int
  val filter_stats : t -> int -> int * int * int
  val physical_expansions : t -> int
  val physical_columns : t -> int
  val set_instrument : t -> Instrument.t option -> unit
end

module Make (S : Source.S) = struct
  type source = S.t

  (* A physical tree node known to the traversal: created when its
     parent was expanded and at least one lane stayed viable, destroyed
     (facts dropped) once every referencing lane consumed it.

     Expansion facts are stored allocation-lean: a child pruned for
     every lane leaves only two ints per parent lane (the aggregate
     count and column cost the single engine would have paid there),
     viable facts ride inside the child's own register block, and only
     the rare accepted facts get a flat side table. *)
  type pnode = {
    tree_node : S.node;
    depth : int;  (** path length in symbols *)
    mutable slot : int;  (** column-pool slot; [-1] once expanded *)
    lanes : int array;  (** query ids live here, ascending *)
    preg : int array;
        (** per-lane registers, stride 5 parallel to [lanes]:
            [5j] path-best score, [5j+1] its query row, [5j+2] its path
            offset, [5j+3] the admissible bound (this lane's viable
            fact priority), [5j+4] the arc columns the lane paid *)
    mutable refs : int;  (** lanes that still hold a viable fact for us *)
    mutable fkids : pnode array;
        (** physical children (viable for >= 1 lane), in child order *)
    mutable fpruned : int array;
        (** per parent lane [j], set by expansion: [2j] children pruned
            for that lane, [2j+1] the DP columns those arcs cost it *)
    mutable facc : int array;
        (** accepted facts, stride 4 in child order: score, query stop,
            path offset, arc columns *)
    mutable facc_nodes : S.node array;  (** tree node per accepted fact *)
    mutable foff : int array;
        (** CSR row offsets: lane [j]'s replay facts are
            [fdata.(foff.(j) .. foff.(j+1) - 1)] *)
    mutable fdata : int array;
        (** packed replay facts, child order within each lane's segment:
            [>= 0] viable — [(child index in fkids) * 1024 + (lane index
            in that child)]; [< 0] accepted — [-(g + 1)] indexing
            [facc]/[facc_nodes] *)
    mutable expanded : bool;
  }

  (* Virtual-queue entries are packed int handles into the fact arenas
     on [t] (the replay analogue of [Engine.snode], flattened so the
     int-specialized heap can sift them without write barriers):
     [(slot lsl 11) lor (lane lsl 1) lor 1] for a viable fact — slot
     into [va_pn], lane our index within that pnode (k <= 512 so ten
     bits suffice) — and [slot lsl 1] for an accepted one, slot into
     [aa_nd]/[aa_qs]/[aa_off] with the score carried as the heap
     priority. *)
  type veng = {
    q_index : int;
    vq : Pqueue.Int.t;
    reported_seq : bool array;
    mutable reported_count : int;
    pending : Hit.t Queue.t;
    mutable v_columns : int;
    mutable v_expanded : int;
    mutable v_enqueued : int;
    mutable v_pruned : int;
    mutable v_max_queue : int;
    mutable exhausted : int option;
    mutable done_ : bool;
    mutable rev_hits : Hit.t list;
    mutable blocked_on : (int * pnode) option;
        (** memoized drain result: the node this engine waits on and
            its bound. Valid until that node is expanded — nothing else
            can change a blocked engine's queue. *)
  }

  type t = {
    source : S.t;
    db : Bioseq.Database.t;
    k : int;
    mm : int;  (** max query length; every lane's block is sized for it *)
    mq : int array;  (** per-query lengths: each lane sweeps only its rows *)
    dim : int;
    fhs : int array array;  (** per-query heuristic vectors, [fhs.(q).(i)] *)
    fcs : int array array;
        (** per-query symbol-major profiles in the single engine's own
            layout: [fcs.(q).((c * mq.(q)) + (i-1))] scores symbol [c]
            at query [q]'s position [i] *)
    gap_open : int;
    gap_extend : int;
    min_score : int;
    k_lo : int;  (** cell floor: 0 with prune_nonpositive, else neg_inf *)
    opt_pd : bool;
    affine : bool;
    term : int;
    cfg : Engine.config;
    lim_columns : int;  (** budget, [max_int] when unbounded *)
    lim_expanded : int;
    pool : Col_pool.t;
    engines : veng array;
    (* Arc-walk scratch, indexed by query id. *)
    s_best : int array;
    s_best_q : int array;
    s_best_off : int array;
    s_ub : int array;
    s_cut : int array;
    s_cols : int array;
    s_state : int array;  (** 0 live, 1 pruned, 2 exact, 3 inactive *)
    mutable nlive : int;  (** lanes still viable after an arc walk *)
    (* Arc-label memo: symbols fetched from the source in chunks (one
       [S.blit_symbols] dispatch per [sym_chunk] run) and replayed for
       every lane, so k lanes walking the same arc pay one decoded
       fetch per column. [-1] encodes the terminator. [sb_n] counts the
       symbols some lane actually {e demanded} — the physical-column
       accounting reads it, so prefetching ahead of demand must not
       touch it. *)
    mutable sym_buf : int array;
    mutable sb_n : int;  (** symbols demanded for the current arc *)
    mutable sb_fetched : int;  (** symbols buffered for the current arc *)
    mutable sb_idx : int;  (** next source position for the current arc *)
    mutable sb_stop : int;  (** arc label end (exclusive) *)
    (* Expansion scratch: packed replay facts in append (= child) order,
       rebucketed per lane by a stable counting sort at the end of each
       [pexpand]. *)
    mutable fb_lane : int array;  (** parent lane index per fact *)
    mutable fb_code : int array;  (** packed fact, as in [fdata] *)
    mutable fb_n : int;
    s_cursor : int array;  (** counting-sort cursors, one per lane *)
    (* Per-lane q-gram tier (DESIGN.md §2k): [flt.(q)] is lane [q]'s
       lemma state, [None] when the lemma cannot serve that query;
       [flt_walk] is any enabled lane's state, used for the
       query-independent profile-topology walk resolving the parent's
       profile node once per expansion (scratch path in [flt_path]). *)
    flt : Qgram.t option array;
    flt_walk : Qgram.t option;
    mutable flt_path : int array;
    ft_tested : int array;  (** per-lane settle tests run *)
    ft_coarse : int array;  (** ... settled by the coarse bound *)
    ft_refined : int array;  (** ... settled by the per-cell refinement *)
    (* Fact arenas: the replay facts referenced by the virtual queues'
       packed int handles. Slots are free-listed on pop; a released
       [va_pn] slot may keep its last pnode reachable until reuse,
       which only delays collection of an already-consumed record. *)
    mutable va_pn : pnode array;  (** viable facts: the child pnode *)
    mutable va_free : int array;
    mutable va_nfree : int;
    mutable va_top : int;
    mutable aa_nd : S.node array;  (** accepted facts: emission node *)
    mutable aa_qs : int array;  (** ... query-stop *)
    mutable aa_off : int array;  (** ... path offset of the best cell *)
    mutable aa_free : int array;
    mutable aa_nfree : int;
    mutable aa_top : int;
    out : (int * Hit.t) Queue.t;
    mutable ebuf : int array;  (** emission scratch, grown on demand *)
    mutable p_expansions : int;
    mutable p_columns : int;  (** columns walked once for the batch *)
    mutable retired : int;
    mutable obs : Instrument.t option;
    base_io_hits : int;
    base_io_misses : int;
    base_minor_words : float;
    deadline : float;
  }

  (* Checked-mode validation, once per lane DP column: the unsafe
     accesses below stay inside the lane's source and destination
     blocks (the D half included for affine) and inside its profile and
     heuristic vectors. *)
  let check_lane t (w : int array) rbase wbase c q =
    let m = t.mq.(q) in
    let ext = if t.affine then (t.mm + 1) * t.k else 0 in
    if
      c < 0 || c >= t.dim || q < 0 || q >= t.k || m > t.mm
      || rbase < 0
      || rbase + ext + m >= Array.length w
      || wbase < 0
      || wbase + ext + m >= Array.length w
      || (c * m) + m > Array.length t.fcs.(q)
      || m >= Array.length t.fhs.(q)
    then invalid_arg "Oasis.Batch_kernel: kernel index range violation"

  let sym_chunk = 32

  (* Next symbol of the current arc label, memoized across lanes: the
     first lane that reaches column [i] triggers a chunked refill (one
     [S.blit_symbols] dispatch per [sym_chunk] label run); every other
     lane replays the buffer. Only called with [i <= sb_n] and
     [i < sb_stop - label start], and only while some lane is still
     live. [sb_n] tracks demand, not the refill: the physical-column
     accounting stays exactly the column sweeps a fused traversal
     would run, however far the chunk prefetched. *)
  let arc_sym t i =
    if i >= t.sb_fetched then begin
      let len = min sym_chunk (t.sb_stop - t.sb_idx) in
      if t.sb_fetched + len > Array.length t.sym_buf then begin
        let bigger =
          Array.make (max (2 * Array.length t.sym_buf) (t.sb_fetched + len)) 0
        in
        Array.blit t.sym_buf 0 bigger 0 t.sb_fetched;
        t.sym_buf <- bigger
      end;
      S.blit_symbols t.source ~pos:t.sb_idx ~len t.sym_buf t.sb_fetched;
      for k = t.sb_fetched to t.sb_fetched + len - 1 do
        if Array.unsafe_get t.sym_buf k = t.term then
          Array.unsafe_set t.sym_buf k (-1)
      done;
      t.sb_idx <- t.sb_idx + len;
      t.sb_fetched <- t.sb_fetched + len
    end;
    if i >= t.sb_n then t.sb_n <- i + 1;
    Array.unsafe_get t.sym_buf i

  (* Walk the current arc (up to [maxc] memoized columns) for one lane:
     per column this is the engine's linear cell cascade verbatim, with
     the lane's registers (path best, collapsed cutoff, bound) in
     scalars for the whole arc. The first column reads the lane's block
     in the parent slot [srcb] and writes the child slot [dstb]; later
     columns run in place. Stops early when the lane's bound sinks to
     its path best (exact), falls under [min_score] (retired), or the
     label hits the terminator (exact, before that column). Finals are
     written back to the scratch registers, parallel to what
     [Engine.lin_arc] leaves in its search node. *)
  let lin_lane t (w : int array) q srcb dstb maxc depth0 =
    let m = Array.unsafe_get t.mq q in
    let fcq = Array.unsafe_get t.fcs q in
    let fhq = Array.unsafe_get t.fhs q in
    let ge = t.gap_extend in
    let lo = t.k_lo in
    let best = ref (Array.unsafe_get t.s_best q) in
    let best_q = ref (Array.unsafe_get t.s_best_q q) in
    let best_off = ref (Array.unsafe_get t.s_best_off q) in
    let cut = ref (Array.unsafe_get t.s_cut q) in
    let ub = ref min_int in
    let cols = ref 0 in
    let state = ref 0 in
    let rbase = ref srcb in
    while !state = 0 && !cols < maxc do
      let c = arc_sym t !cols in
      if c < 0 then state := 2 (* terminator: the bound is exact *)
      else begin
        if Kernel_util.checked then check_lane t w !rbase dstb c q;
        let fcb = (c * m) - 1 in
        (* Row 0: the empty query prefix; only gap-extension reachable
           (mirrors [Engine.lin_column]). *)
        let w0 = Array.unsafe_get w !rbase in
        let w0' =
          if w0 = neg_inf then neg_inf
          else
            let v = w0 + ge in
            if v <= lo && lo = 0 then neg_inf else v
        in
        Array.unsafe_set w dstb w0';
        let diag = ref w0 in
        let left = ref w0' in
        let cub =
          ref (if w0' = neg_inf then neg_inf else w0' + Array.unsafe_get fhq 0)
        in
        let rb = !rbase in
        for i = 1 to m do
          let wi = Array.unsafe_get w (rb + i) in
          let repl =
            if !diag = neg_inf then neg_inf
            else !diag + Array.unsafe_get fcq (fcb + i)
          in
          let del = if wi = neg_inf then neg_inf else wi + ge in
          let ins = if !left = neg_inf then neg_inf else !left + ge in
          let hv = Array.unsafe_get fhq i in
          let dm = if del >= ins then del else ins in
          let v = if repl >= dm then repl else dm in
          diag := wi;
          let sc = v + hv in
          if v <= lo || sc <= !cut then begin
            Array.unsafe_set w (dstb + i) neg_inf;
            left := neg_inf
          end
          else begin
            Array.unsafe_set w (dstb + i) v;
            left := v;
            if sc > !cub then cub := sc;
            if v > !best then begin
              best := v;
              best_q := i;
              best_off := depth0 + !cols + 1;
              if t.opt_pd && v > !cut then cut := v
            end
          end
        done;
        ub := !cub;
        incr cols;
        rbase := dstb;
        (* Per-column arc termination (mirrors the checks after each
           [Engine.lin_column]): bound sunk to the path best — exact;
           under min_score — retired. *)
        if !cub <= !best then state := 2
        else if !cub < t.min_score then state := 1
      end
    done;
    Array.unsafe_set t.s_best q !best;
    Array.unsafe_set t.s_best_q q !best_q;
    Array.unsafe_set t.s_best_off q !best_off;
    Array.unsafe_set t.s_cut q !cut;
    Array.unsafe_set t.s_ub q !ub;
    Array.unsafe_set t.s_cols q !cols;
    Array.unsafe_set t.s_state q !state

  (* The affine-model (Gotoh) lane walk: the lane's B cells live at
     [srcb/dstb + i], its D cells one D-half further on; the insert-run
     score threads down each column in a scalar. Same arc-register
     discipline and termination as [lin_lane]. *)
  let aff_lane t (w : int array) q srcb dstb maxc depth0 =
    let m = Array.unsafe_get t.mq q in
    let fcq = Array.unsafe_get t.fcs q in
    let fhq = Array.unsafe_get t.fhs q in
    let ge = t.gap_extend in
    let go = t.gap_open in
    let lo = t.k_lo in
    let dhalf = (t.mm + 1) * t.k in
    let best = ref (Array.unsafe_get t.s_best q) in
    let best_q = ref (Array.unsafe_get t.s_best_q q) in
    let best_off = ref (Array.unsafe_get t.s_best_off q) in
    let cut = ref (Array.unsafe_get t.s_cut q) in
    let ub = ref min_int in
    let cols = ref 0 in
    let state = ref 0 in
    let rbase = ref srcb in
    while !state = 0 && !cols < maxc do
      let c = arc_sym t !cols in
      if c < 0 then state := 2
      else begin
        if Kernel_util.checked then check_lane t w !rbase dstb c q;
        let fcb = (c * m) - 1 in
        let rb = !rbase in
        let rd = rb + dhalf in
        let wd = dstb + dhalf in
        (* Row 0: reachable only through a delete run; the full cascade
           applies (mirrors [Engine.aff_column]). *)
        let wh0 = Array.unsafe_get w rb in
        let wd0 = Array.unsafe_get w rd in
        let d1 = if wh0 = neg_inf then neg_inf else wh0 + go in
        let d2 = if wd0 = neg_inf then neg_inf else wd0 + ge in
        let d0 = if d1 >= d2 then d1 else d2 in
        let hv0 = Array.unsafe_get fhq 0 in
        let d0 = if d0 <= lo || d0 + hv0 <= !cut then neg_inf else d0 in
        Array.unsafe_set w wd d0;
        Array.unsafe_set w dstb d0;
        let diag = ref wh0 in
        let sins = ref neg_inf in
        let left = ref d0 in
        let cub = ref (if d0 = neg_inf then neg_inf else d0 + hv0) in
        for i = 1 to m do
          let whi = Array.unsafe_get w (rb + i) in
          let wdi = Array.unsafe_get w (rd + i) in
          let d1 = if whi = neg_inf then neg_inf else whi + go in
          let d2 = if wdi = neg_inf then neg_inf else wdi + ge in
          let d = if d1 >= d2 then d1 else d2 in
          let i1 = if !left = neg_inf then neg_inf else !left + go in
          let i2 = if !sins = neg_inf then neg_inf else !sins + ge in
          let ins = if i1 >= i2 then i1 else i2 in
          let repl =
            if !diag = neg_inf then neg_inf
            else !diag + Array.unsafe_get fcq (fcb + i)
          in
          let hv = Array.unsafe_get fhq i in
          let d = if d <= lo || d + hv <= !cut then neg_inf else d in
          let dm = if d >= ins then d else ins in
          let h = if repl >= dm then repl else dm in
          Array.unsafe_set w (wd + i) d;
          diag := whi;
          sins := ins;
          let sc = h + hv in
          if h <= lo || sc <= !cut then begin
            Array.unsafe_set w (dstb + i) neg_inf;
            left := neg_inf
          end
          else begin
            Array.unsafe_set w (dstb + i) h;
            left := h;
            if sc > !cub then cub := sc;
            if h > !best then begin
              best := h;
              best_q := i;
              best_off := depth0 + !cols + 1;
              if t.opt_pd && h > !cut then cut := h
            end
          end
        done;
        ub := !cub;
        incr cols;
        rbase := dstb;
        if !cub <= !best then state := 2
        else if !cub < t.min_score then state := 1
      end
    done;
    Array.unsafe_set t.s_best q !best;
    Array.unsafe_set t.s_best_q q !best_q;
    Array.unsafe_set t.s_best_off q !best_off;
    Array.unsafe_set t.s_cut q !cut;
    Array.unsafe_set t.s_ub q !ub;
    Array.unsafe_set t.s_cols q !cols;
    Array.unsafe_set t.s_state q !state

  (* Fallback bound for a lane whose arc contributed no DP column (a
     defensive mirror of [Engine.rescan]). *)
  let rescan_lane t (w : int array) off q =
    let base = off + (q * (t.mm + 1)) in
    let fhq = t.fhs.(q) in
    let rec go i ub =
      if i > t.mq.(q) then ub
      else
        let v = w.(base + i) in
        let ub =
          if v > neg_inf && v + fhq.(i) > ub then v + fhq.(i) else ub
        in
        go (i + 1) ub
    in
    go 0 neg_inf

  (* Append one packed replay fact for parent lane [lane] to the
     expansion scratch buffer (amortized growth, reused across
     expansions). *)
  let fb_push t lane code =
    let n = t.fb_n in
    if n = Array.length t.fb_lane then begin
      let ncap = max 64 (2 * n) in
      let nlane = Array.make ncap 0 in
      let ncode = Array.make ncap 0 in
      Array.blit t.fb_lane 0 nlane 0 n;
      Array.blit t.fb_code 0 ncode 0 n;
      t.fb_lane <- nlane;
      t.fb_code <- ncode
    end;
    t.fb_lane.(n) <- lane;
    t.fb_code.(n) <- code;
    t.fb_n <- n + 1

  (* The per-lane q-gram subtree settle (the fused mirror of the tier
     in [Engine.expand]): the lemma bound over the whole child subtree
     at profile node [Qgram.child f fpn c], coarse whole-query form
     first, then the per-cell refinement pairing each live cell of the
     lane's parent block with the query budget left from its row. Only
     called for lanes whose path best is below [min_score], so a
     settled subtree is provably silent for that lane and skipping it
     leaves the lane's stream untouched. *)
  let qgram_settle t pn fpn q (w : int array) srcb =
    match t.flt.(q) with
    | None -> false
    | Some f ->
      pn.depth <= Qgram.cutoff f
      &&
      let cn = Qgram.child f fpn t.sym_buf.(0) in
      cn >= 0
      && Qgram.usable f cn
      && begin
           t.ft_tested.(q) <- t.ft_tested.(q) + 1;
           let m = t.mq.(q) in
           let dh = (t.mm + 1) * t.k in
           let g = Qgram.gcount f cn in
           let vmax = ref neg_inf in
           for i = 0 to m do
             let v = w.(srcb + i) in
             let v =
               if t.affine && w.(srcb + dh + i) > v then w.(srcb + dh + i)
               else v
             in
             if v > !vmax then vmax := v
           done;
           if !vmax + Qgram.ebound f ~g ~l:m < t.min_score then begin
             t.ft_coarse.(q) <- t.ft_coarse.(q) + 1;
             true
           end
           else begin
             let ok = ref true in
             let j = ref 0 in
             while !ok && !j <= m do
               let v = w.(srcb + !j) in
               let v =
                 if t.affine && w.(srcb + dh + !j) > v then w.(srcb + dh + !j)
                 else v
               in
               if
                 v > neg_inf
                 && v + Qgram.ebound f ~g ~l:(m - !j) >= t.min_score
               then ok := false;
               incr j
             done;
             if !ok then t.ft_refined.(q) <- t.ft_refined.(q) + 1;
             !ok
           end
         end

  (* Checked mode: replay a lemma-settled (child, lane) pair with a
     plain DP pass over the whole child subtree — fresh arrays, none of
     the optional prunes, only the always-admissible viability cut —
     and verify no cell reaches [min_score]. The lane-vector analogue
     of [Engine.check_qgram_settle]. *)
  let check_lane_settle t q srcb child start stop =
    let m = t.mq.(q) in
    let ms = t.min_score in
    let ge = t.gap_extend and go = t.gap_open in
    let fhq = t.fhs.(q) and fcq = t.fcs.(q) in
    let best = ref neg_inf in
    let bump v = if v > !best then best := v in
    let step b d c =
      let b' = Array.make (m + 1) neg_inf in
      let d' = if t.affine then Array.make (m + 1) neg_inf else [||] in
      let alive = ref false in
      let crow = (c * m) - 1 in
      if t.affine then begin
        let d1 = if b.(0) = neg_inf then neg_inf else b.(0) + go in
        let d2 = if d.(0) = neg_inf then neg_inf else d.(0) + ge in
        let d0 = if d1 >= d2 then d1 else d2 in
        let d0 = if d0 = neg_inf || d0 + fhq.(0) < ms then neg_inf else d0 in
        d'.(0) <- d0;
        b'.(0) <- d0;
        if d0 > neg_inf then begin
          alive := true;
          bump d0
        end;
        for i = 1 to m do
          let d1 = if b.(i) = neg_inf then neg_inf else b.(i) + go in
          let d2 = if d.(i) = neg_inf then neg_inf else d.(i) + ge in
          let dd = if d1 >= d2 then d1 else d2 in
          let dd = if dd = neg_inf || dd + fhq.(i) < ms then neg_inf else dd in
          let i1 = if b'.(i - 1) = neg_inf then neg_inf else b'.(i - 1) + go in
          let repl =
            if b.(i - 1) = neg_inf then neg_inf else b.(i - 1) + fcq.(crow + i)
          in
          let h = if repl >= dd then repl else dd in
          let h = if i1 > h then i1 else h in
          let h = if h = neg_inf || h + fhq.(i) < ms then neg_inf else h in
          d'.(i) <- dd;
          b'.(i) <- h;
          if h > neg_inf || dd > neg_inf then alive := true;
          if h > neg_inf then bump h
        done
      end
      else begin
        let v0 = if b.(0) = neg_inf then neg_inf else b.(0) + ge in
        let v0 = if v0 = neg_inf || v0 + fhq.(0) < ms then neg_inf else v0 in
        b'.(0) <- v0;
        if v0 > neg_inf then begin
          alive := true;
          bump v0
        end;
        for i = 1 to m do
          let repl =
            if b.(i - 1) = neg_inf then neg_inf else b.(i - 1) + fcq.(crow + i)
          in
          let del = if b.(i) = neg_inf then neg_inf else b.(i) + ge in
          let ins =
            if b'.(i - 1) = neg_inf then neg_inf else b'.(i - 1) + ge
          in
          let dm = if del >= ins then del else ins in
          let v = if repl >= dm then repl else dm in
          let v = if v = neg_inf || v + fhq.(i) < ms then neg_inf else v in
          b'.(i) <- v;
          if v > neg_inf then begin
            alive := true;
            bump v
          end
        done
      end;
      (b', d', !alive)
    in
    let rec down node b d pos stop =
      if pos >= stop then begin
        if not (S.is_leaf t.source node) then
          S.gather t.source node (fun ch ~start ~stop ~sym:_ ->
              down ch b d start stop)
      end
      else
        let c = S.symbol t.source pos in
        if c <> t.term && c >= 0 then begin
          let b', d', alive = step b d c in
          if alive then down node b' d' (pos + 1) stop
        end
    in
    let w = Col_pool.data t.pool in
    let dh = (t.mm + 1) * t.k in
    let b0 = Array.init (m + 1) (fun i -> w.(srcb + i)) in
    let d0 =
      if t.affine then Array.init (m + 1) (fun i -> w.(srcb + dh + i))
      else [||]
    in
    down child b0 d0 start stop;
    if !best >= ms then
      invalid_arg "Oasis.Batch_kernel: q-gram subtree settle not admissible"

  (* Expand one child arc of [pn]: walk it lane by lane over the
     memoized label (each lane's first column reads the parent slot in
     place — nothing is ever blitted), then record the per-lane facts —
     aggregate counters in [fpruned] for pruned lanes, a child pnode
     (registers in its [preg]) when some lane stays viable, an [accs]
     entry per accepted lane; viable and accepted facts also append a
     packed entry to the scratch buffer for the CSR rebucket. A child
     whose arc opens with the terminator (a leaf, the common case) or
     prunes every lane touches no slot at all. *)
  let walk_child t pn fpn fpruned kids nkids accs naccs child =
    let start = S.label_start t.source child in
    let stop = S.label_end t.source child in
    let lanes = pn.lanes in
    let nl = Array.length lanes in
    let span = t.mm + 1 in
    let ms1 = t.min_score - 1 in
    let maxc = stop - start in
    t.sb_n <- 0;
    t.sb_fetched <- 0;
    t.sb_idx <- start;
    t.sb_stop <- stop;
    (* The child slot: needed iff some lane will run a column, i.e. the
       label is non-empty and does not open with the terminator. *)
    let slot0 =
      if maxc > 0 && arc_sym t 0 >= 0 then Col_pool.acquire t.pool else -1
    in
    (* Resolve the parent's profile node once per expansion, anchored
       at the first child with a non-empty label (its label start
       points just past the parent path) — the topology walk is
       query-independent, so any enabled lane's state serves. *)
    (if !fpn = -2 && maxc > 0 then
       match t.flt_walk with
       | None -> fpn := -1
       | Some f ->
         if pn.depth = 0 then fpn := Qgram.walk f t.flt_path 0
         else if start >= pn.depth then begin
           if Array.length t.flt_path < pn.depth then
             t.flt_path <- Array.make (2 * pn.depth) 0;
           S.blit_symbols t.source ~pos:(start - pn.depth) ~len:pn.depth
             t.flt_path 0;
           fpn := Qgram.walk f t.flt_path pn.depth
         end
         else fpn := -1);
    let w = Col_pool.data t.pool in
    let psrc = Col_pool.base t.pool pn.slot in
    let dst0 = if slot0 >= 0 then Col_pool.base t.pool slot0 else psrc in
    t.nlive <- 0;
    for j = 0 to nl - 1 do
      let q = lanes.(j) in
      if t.engines.(q).done_ then t.s_state.(q) <- 3
      else begin
        let r = 5 * j in
        let b = pn.preg.(r) in
        t.s_best.(q) <- b;
        t.s_best_q.(q) <- pn.preg.(r + 1);
        t.s_best_off.(q) <- pn.preg.(r + 2);
        t.s_cut.(q) <- (if t.opt_pd && b >= ms1 then b else ms1);
        let srcb = psrc + (q * span) in
        let dstb = dst0 + (q * span) in
        if
          !fpn >= 0 && slot0 >= 0 && b < t.min_score
          && qgram_settle t pn !fpn q w srcb
        then begin
          (* Settled pre-DP: the lane pays the one logical column the
             single engine's tier pays and leaves the subtree as a
             pruned fact. *)
          if Kernel_util.checked then
            check_lane_settle t q srcb child start stop;
          t.s_state.(q) <- 1;
          t.s_cols.(q) <- 1
        end
        else if t.affine then aff_lane t w q srcb dstb maxc pn.depth
        else lin_lane t w q srcb dstb maxc pn.depth;
        match t.s_state.(q) with
        | 0 -> t.nlive <- t.nlive + 1
        | 1 ->
          t.retired <- t.retired + 1;
          (match t.obs with
          | None -> ()
          | Some o -> Obs.Metric.incr o.Instrument.batch_retired)
        | _ -> ()
      end
    done;
    (* Physical column sweeps for this arc: symbols are fetched on
       first demand, so the memo length (terminator excluded) is
       exactly the number of sweeps a column-at-a-time fused walk would
       have run. *)
    t.p_columns <-
      t.p_columns + t.sb_n
      - (if t.sb_n > 0 && t.sym_buf.(t.sb_n - 1) < 0 then 1 else 0);
    let nviable = t.nlive in
    if nviable = 0 then begin
      if slot0 >= 0 then Col_pool.release t.pool slot0;
      for j = 0 to nl - 1 do
        let q = lanes.(j) in
        match t.s_state.(q) with
        | 3 -> ()  (* inactive: the lane never walked this arc *)
        | 2 when t.s_best.(q) >= t.min_score ->
          accs :=
            (child, t.s_best.(q), t.s_best_q.(q), t.s_best_off.(q),
             t.s_cols.(q))
            :: !accs;
          fb_push t j (-(!naccs + 1));
          incr naccs
        | _ ->
          (* Pruned outright, or exact below min_score: the single
             engine pays the columns and discards the child. *)
          fpruned.(2 * j) <- fpruned.(2 * j) + 1;
          fpruned.((2 * j) + 1) <- fpruned.((2 * j) + 1) + t.s_cols.(q)
      done
    end
    else begin
      (* An empty arc label never ran a column: materialize the child
         slot as a copy of the viable lanes' parent blocks. *)
      let slot =
        if slot0 >= 0 then slot0
        else begin
          let s = Col_pool.acquire t.pool in
          let w = Col_pool.data t.pool in
          let src = Col_pool.base t.pool pn.slot in
          let dst = Col_pool.base t.pool s in
          let dhalf = span * t.k in
          for j = 0 to nl - 1 do
            let q = lanes.(j) in
            if t.s_state.(q) = 0 then begin
              let lbase = q * span in
              Array.blit w (src + lbase) w (dst + lbase) span;
              if t.affine then
                Array.blit w (src + dhalf + lbase) w (dst + dhalf + lbase) span
            end
          done;
          s
        end
      in
      let w = Col_pool.data t.pool in
      let off = Col_pool.base t.pool slot in
      let clanes = Array.make nviable 0 in
      let creg = Array.make (5 * nviable) 0 in
      let ci = ref 0 in
      (* One classification pass: viable lanes fill the child's register
         block, the rest leave their pruned/accepted fact. *)
      for j = 0 to nl - 1 do
        let q = lanes.(j) in
        match t.s_state.(q) with
        | 3 -> ()  (* inactive: the lane never walked this arc *)
        | 0 ->
          clanes.(!ci) <- q;
          let r = 5 * !ci in
          creg.(r) <- t.s_best.(q);
          creg.(r + 1) <- t.s_best_q.(q);
          creg.(r + 2) <- t.s_best_off.(q);
          creg.(r + 3) <-
            (if t.s_cols.(q) > 0 then t.s_ub.(q) else rescan_lane t w off q);
          creg.(r + 4) <- t.s_cols.(q);
          fb_push t j ((!nkids lsl 10) lor !ci);
          incr ci
        | 2 when t.s_best.(q) >= t.min_score ->
          accs :=
            (child, t.s_best.(q), t.s_best_q.(q), t.s_best_off.(q),
             t.s_cols.(q))
            :: !accs;
          fb_push t j (-(!naccs + 1));
          incr naccs
        | _ ->
          fpruned.(2 * j) <- fpruned.(2 * j) + 1;
          fpruned.((2 * j) + 1) <- fpruned.((2 * j) + 1) + t.s_cols.(q)
      done;
      kids :=
        {
          tree_node = child;
          depth = pn.depth + (stop - start);
          slot;
          lanes = clanes;
          preg = creg;
          refs = nviable;
          fkids = [||];
          fpruned = [||];
          facc = [||];
          facc_nodes = [||];
          foff = [||];
          fdata = [||];
          expanded = false;
        }
        :: !kids;
      incr nkids
    end

  (* Physically expand [pn] once for the whole batch. *)
  let pexpand t pn =
    t.p_expansions <- t.p_expansions + 1;
    (match t.obs with
    | None -> ()
    | Some o ->
      let n = ref 0 in
      Array.iter
        (fun q -> if not t.engines.(q).done_ then incr n)
        pn.lanes;
      Obs.Metric.observe o.Instrument.batch_active !n);
    let nl = Array.length pn.lanes in
    let fpruned = Array.make (2 * nl) 0 in
    let kids = ref [] in
    let nkids = ref 0 in
    let accs = ref [] in
    let naccs = ref 0 in
    t.fb_n <- 0;
    (* Parent profile node for the q-gram tier: [-2] unresolved (the
       first non-empty child arc resolves it), [-1] absent/ineligible. *)
    let fpn = ref (match t.flt_walk with None -> -1 | Some _ -> -2) in
    S.iter_children t.source pn.tree_node (fun child ->
        walk_child t pn fpn fpruned kids nkids accs naccs child);
    pn.fkids <- Array.of_list (List.rev !kids);
    pn.fpruned <- fpruned;
    (match !accs with
    | [] -> ()
    | accs_rev ->
      let accs_fwd = List.rev accs_rev in
      let na = !naccs in
      let facc = Array.make (4 * na) 0 in
      let facc_nodes = Array.make na pn.tree_node in
      List.iteri
        (fun g (node, score, q_stop, off_, cols) ->
          let r = 4 * g in
          facc.(r) <- score;
          facc.(r + 1) <- q_stop;
          facc.(r + 2) <- off_;
          facc.(r + 3) <- cols;
          facc_nodes.(g) <- node)
        accs_fwd;
      pn.facc <- facc;
      pn.facc_nodes <- facc_nodes);
    (* Rebucket the scratch facts into per-lane CSR segments: counts,
       prefix sums, then a stable scatter — stability keeps each lane's
       segment in child order, which the replay's queue discipline
       depends on. *)
    let nf = t.fb_n in
    let foff = Array.make (nl + 1) 0 in
    for i = 0 to nf - 1 do
      let j = t.fb_lane.(i) in
      foff.(j + 1) <- foff.(j + 1) + 1
    done;
    for j = 1 to nl do
      foff.(j) <- foff.(j) + foff.(j - 1)
    done;
    let fdata = Array.make nf 0 in
    for j = 0 to nl - 1 do
      t.s_cursor.(j) <- foff.(j)
    done;
    for i = 0 to nf - 1 do
      let j = t.fb_lane.(i) in
      fdata.(t.s_cursor.(j)) <- t.fb_code.(i);
      t.s_cursor.(j) <- t.s_cursor.(j) + 1
    done;
    pn.foff <- foff;
    pn.fdata <- fdata;
    Col_pool.release t.pool pn.slot;
    pn.slot <- -1;
    pn.expanded <- true

  (* {2 Virtual engines: the per-query replay} *)

  let va_alloc t pn =
    if t.va_nfree > 0 then begin
      t.va_nfree <- t.va_nfree - 1;
      let s = Array.unsafe_get t.va_free t.va_nfree in
      Array.unsafe_set t.va_pn s pn;
      s
    end
    else begin
      let cap = Array.length t.va_pn in
      if t.va_top = cap then begin
        (* [pn] doubles as the filler, as in [Pqueue.grow]. *)
        let bigger = Array.make (max 64 (2 * cap)) pn in
        Array.blit t.va_pn 0 bigger 0 cap;
        t.va_pn <- bigger
      end;
      let s = t.va_top in
      t.va_top <- s + 1;
      Array.unsafe_set t.va_pn s pn;
      s
    end

  let va_release t s =
    if t.va_nfree = Array.length t.va_free then begin
      let bigger = Array.make (max 64 (2 * t.va_nfree)) 0 in
      Array.blit t.va_free 0 bigger 0 t.va_nfree;
      t.va_free <- bigger
    end;
    Array.unsafe_set t.va_free t.va_nfree s;
    t.va_nfree <- t.va_nfree + 1

  let aa_alloc t node q_stop off =
    let s =
      if t.aa_nfree > 0 then begin
        t.aa_nfree <- t.aa_nfree - 1;
        Array.unsafe_get t.aa_free t.aa_nfree
      end
      else begin
        let cap = Array.length t.aa_nd in
        if t.aa_top = cap then begin
          let ncap = max 64 (2 * cap) in
          let nnd = Array.make ncap node in
          let nqs = Array.make ncap 0 in
          let noff = Array.make ncap 0 in
          Array.blit t.aa_nd 0 nnd 0 cap;
          Array.blit t.aa_qs 0 nqs 0 cap;
          Array.blit t.aa_off 0 noff 0 cap;
          t.aa_nd <- nnd;
          t.aa_qs <- nqs;
          t.aa_off <- noff
        end;
        let s = t.aa_top in
        t.aa_top <- s + 1;
        s
      end
    in
    Array.unsafe_set t.aa_nd s node;
    Array.unsafe_set t.aa_qs s q_stop;
    Array.unsafe_set t.aa_off s off;
    s

  let aa_release t s =
    if t.aa_nfree = Array.length t.aa_free then begin
      let bigger = Array.make (max 64 (2 * t.aa_nfree)) 0 in
      Array.blit t.aa_free 0 bigger 0 t.aa_nfree;
      t.aa_free <- bigger
    end;
    Array.unsafe_set t.aa_free t.aa_nfree s;
    t.aa_nfree <- t.aa_nfree + 1

  let budget_spent t (e : veng) =
    e.v_columns >= t.lim_columns
    || e.v_expanded >= t.lim_expanded
    || (t.deadline < infinity && Unix.gettimeofday () >= t.deadline)

  (* Mirror of [Engine.emit]: report every not-yet-reported sequence
     below the accepted node, in ascending position order. *)
  let vemit t e node score q_stop off_ =
    let n = ref 0 in
    S.iter_positions t.source node (fun p ->
        if !n = Array.length t.ebuf then begin
          let bigger = Array.make (2 * !n) 0 in
          Array.blit t.ebuf 0 bigger 0 !n;
          t.ebuf <- bigger
        end;
        t.ebuf.(!n) <- p;
        incr n);
    Kernel_util.sort_range t.ebuf 0 (!n - 1);
    for i = 0 to !n - 1 do
      let p = t.ebuf.(i) in
      let seq_index = Bioseq.Database.seq_of_pos t.db p in
      if not e.reported_seq.(seq_index) then begin
        e.reported_seq.(seq_index) <- true;
        e.reported_count <- e.reported_count + 1;
        Queue.add
          {
            Hit.seq_index;
            score;
            query_stop = q_stop;
            target_stop = p + off_ - Bioseq.Database.seq_start t.db seq_index;
          }
          e.pending
      end
    done

  (* Mirror of the enqueue half of [Engine.expand], replayed from this
     lane's CSR fact segment. The segment is in child order; viable and
     accepted entries may interleave, but the pop sequence still equals
     the single engine's: entries of different kinds never share a
     (priority, tie) class, and within a class the FIFO seqno sees the
     same relative order as the single engine's pushes. *)
  let vexpand t e pn lane =
    e.v_expanded <- e.v_expanded + 1;
    e.v_pruned <- e.v_pruned + pn.fpruned.(2 * lane);
    e.v_columns <- e.v_columns + pn.fpruned.((2 * lane) + 1);
    let fkids = pn.fkids and facc = pn.facc and fdata = pn.fdata in
    for idx = pn.foff.(lane) to pn.foff.(lane + 1) - 1 do
      let en = fdata.(idx) in
      if en >= 0 then begin
        let child = fkids.(en lsr 10) in
        let li = en land 1023 in
        let r = 5 * li in
        e.v_columns <- e.v_columns + child.preg.(r + 4);
        e.v_enqueued <- e.v_enqueued + 1;
        let s = va_alloc t child in
        Pqueue.Int.push_tie e.vq ~priority:child.preg.(r + 3) ~tie:1
          ((s lsl 11) lor (li lsl 1) lor 1)
      end
      else begin
        let g = -en - 1 in
        let r = 4 * g in
        e.v_columns <- e.v_columns + facc.(r + 3);
        e.v_enqueued <- e.v_enqueued + 1;
        let s = aa_alloc t pn.facc_nodes.(g) facc.(r + 1) facc.(r + 2) in
        Pqueue.Int.push_tie e.vq ~priority:facc.(r) ~tie:0 (s lsl 1)
      end
    done;
    pn.refs <- pn.refs - 1;
    if pn.refs = 0 then begin
      pn.fkids <- [||];
      pn.fpruned <- [||];
      pn.facc <- [||];
      pn.facc_nodes <- [||];
      pn.foff <- [||];
      pn.fdata <- [||]
    end;
    let qlen = Pqueue.Int.length e.vq in
    if qlen > e.v_max_queue then e.v_max_queue <- qlen

  (* One [Engine.next]-equivalent step: a hit, a block on an unexpanded
     physical node, or done. Mirrors [Engine.next_loop] clause for
     clause. *)
  let rec vstep t e =
    if not (Queue.is_empty e.pending) then `Hit (Queue.pop e.pending)
    else if e.reported_count >= Array.length e.reported_seq then `Done
    else if e.exhausted <> None then `Done
    else if Pqueue.Int.length e.vq = 0 then `Done
    else if budget_spent t e then begin
      e.exhausted <- Some (Pqueue.Int.top_priority_exn e.vq);
      `Done
    end
    else begin
      let h = Pqueue.Int.top e.vq in
      if h land 1 = 1 then begin
        let s = h lsr 11 in
        let pn = Array.unsafe_get t.va_pn s in
        if not pn.expanded then `Blocked pn
        else begin
          Pqueue.Int.drop e.vq;
          va_release t s;
          vexpand t e pn ((h lsr 1) land 1023);
          vstep t e
        end
      end
      else begin
        let s = h lsr 1 in
        let score = Pqueue.Int.top_priority_exn e.vq in
        let node = Array.unsafe_get t.aa_nd s in
        let q_stop = Array.unsafe_get t.aa_qs s in
        let off = Array.unsafe_get t.aa_off s in
        Pqueue.Int.drop e.vq;
        aa_release t s;
        vemit t e node score q_stop off;
        vstep t e
      end
    end

  (* Drain one engine: emit every hit it can already prove next, stop
     at a block or completion. Returns the blocking node's bound and
     node, if any. *)
  let rec drain t e =
    if e.done_ then None
    else
      match vstep t e with
      | `Hit h ->
        e.rev_hits <- h :: e.rev_hits;
        Queue.add (e.q_index, h) t.out;
        drain t e
      | `Blocked pn -> Some (Pqueue.Int.top_priority_exn e.vq, pn)
      | `Done ->
        e.done_ <- true;
        None

  (* The fused scheduler: drain every engine not already memoized as
     blocked, then expand the blocked node with the highest bound (ties
     to the lowest query index via the scan order), until hits appear
     or everything is done. Only the engines whose node was just
     expanded re-drain — a blocked engine's queue cannot change
     otherwise. *)
  let rec pump t =
    if Queue.is_empty t.out then begin
      let best_prio = ref min_int in
      let best_pn = ref None in
      Array.iter
        (fun e ->
          if not e.done_ then begin
            (match e.blocked_on with
            | Some _ -> ()
            | None -> e.blocked_on <- drain t e);
            match e.blocked_on with
            | None -> ()
            | Some (prio, pn) ->
              if prio > !best_prio then begin
                best_prio := prio;
                best_pn := Some pn
              end
          end)
        t.engines;
      if Queue.is_empty t.out then
        match !best_pn with
        | None -> ()
        | Some pn ->
          pexpand t pn;
          Array.iter
            (fun e ->
              match e.blocked_on with
              | Some (_, pn') when pn' == pn -> e.blocked_on <- None
              | _ -> ())
            t.engines;
          pump t
    end

  let next t =
    if Queue.is_empty t.out then pump t;
    Queue.take_opt t.out

  let run t =
    let rec go () = match next t with None -> () | Some _ -> go () in
    go ()

  (* {2 Construction} *)

  let create ?filter ~source ~db ~queries (cfg : Engine.config) =
    let k = Array.length queries in
    if k = 0 then invalid_arg "Oasis.Batch_kernel.create: no queries";
    if k > 512 then
      invalid_arg "Oasis.Batch_kernel.create: batch too large (max 512)";
    if cfg.Engine.min_score < 1 then
      invalid_arg "Oasis.Batch_kernel.create: min_score must be >= 1";
    Array.iter
      (fun query ->
        if Bioseq.Sequence.length query = 0 then
          invalid_arg "Oasis.Batch_kernel.create: empty query";
        if
          Bioseq.Alphabet.name (Scoring.Submat.alphabet cfg.Engine.matrix)
          <> Bioseq.Alphabet.name (Bioseq.Sequence.alphabet query)
        then invalid_arg "Oasis.Batch_kernel.create: alphabet mismatch")
      queries;
    if
      Bioseq.Alphabet.name (Scoring.Submat.alphabet cfg.Engine.matrix)
      <> Bioseq.Alphabet.name (Bioseq.Database.alphabet db)
    then invalid_arg "Oasis.Batch_kernel.create: alphabet mismatch";
    let profiles =
      Array.map (fun q -> Scoring.Pssm.of_query ~matrix:cfg.Engine.matrix q)
        queries
    in
    let hvecs =
      Array.map
        (fun p ->
          Heuristic.vector_of_profile
            ~style:cfg.Engine.options.Engine.heuristic ~gap:cfg.Engine.gap p)
        profiles
    in
    let ms = Array.map Scoring.Pssm.length profiles in
    let mm = Array.fold_left max 1 ms in
    let dim = Scoring.Pssm.dim profiles.(0) in
    let affine = not (Scoring.Gap.is_linear cfg.Engine.gap) in
    let pool =
      Col_pool.create ~width:((mm + 1) * k * if affine then 2 else 1)
    in
    Col_pool.reserve pool 32;
    (* Per-lane q-gram tier state: queries the lemma cannot serve run
       unfiltered (their entry stays [None]). *)
    let flt =
      match filter with
      | None -> Array.make k None
      | Some profile ->
        Array.map
          (fun query ->
            let f =
              Qgram.make ~profile ~query ~matrix:cfg.Engine.matrix
                ~gap:cfg.Engine.gap
            in
            if Qgram.enabled f then Some f else None)
          queries
    in
    let flt_walk =
      Array.fold_left
        (fun acc f -> match acc with Some _ -> acc | None -> f)
        None flt
    in
    let num_seqs = Bioseq.Database.num_sequences db in
    let engines =
      Array.init k (fun q_index ->
          {
            q_index;
            vq = Pqueue.Int.create ();
            reported_seq = Array.make num_seqs false;
            reported_count = 0;
            pending = Queue.create ();
            v_columns = 0;
            v_expanded = 0;
            v_enqueued = 0;
            v_pruned = 0;
            v_max_queue = 0;
            exhausted = None;
            done_ = false;
            rev_hits = [];
            blocked_on = None;
          })
    in
    let t =
      {
        source;
        db;
        k;
        mm;
        mq = ms;
        dim;
        fhs = hvecs;
        fcs = Array.map Scoring.Pssm.cols_flat profiles;
        gap_open = Scoring.Gap.open_score cfg.Engine.gap;
        gap_extend = Scoring.Gap.extend_score cfg.Engine.gap;
        min_score = cfg.Engine.min_score;
        k_lo =
          (if cfg.Engine.options.Engine.prune_nonpositive then 0 else neg_inf);
        opt_pd = cfg.Engine.options.Engine.prune_dominated;
        affine;
        term = S.terminator source;
        cfg;
        lim_columns =
          (match cfg.Engine.budget.Engine.max_columns with
          | Some l -> l
          | None -> max_int);
        lim_expanded =
          (match cfg.Engine.budget.Engine.max_expanded with
          | Some l -> l
          | None -> max_int);
        pool;
        engines;
        s_best = Array.make k 0;
        s_best_q = Array.make k 0;
        s_best_off = Array.make k 0;
        s_ub = Array.make k 0;
        s_cut = Array.make k 0;
        s_cols = Array.make k 0;
        s_state = Array.make k 0;
        nlive = 0;
        sym_buf = Array.make 64 0;
        sb_n = 0;
        sb_fetched = 0;
        sb_idx = 0;
        sb_stop = 0;
        fb_lane = Array.make 64 0;
        fb_code = Array.make 64 0;
        fb_n = 0;
        s_cursor = Array.make k 0;
        flt;
        flt_walk;
        flt_path = Array.make 16 0;
        ft_tested = Array.make k 0;
        ft_coarse = Array.make k 0;
        ft_refined = Array.make k 0;
        va_pn = [||];
        va_free = [||];
        va_nfree = 0;
        va_top = 0;
        aa_nd = [||];
        aa_qs = [||];
        aa_off = [||];
        aa_free = [||];
        aa_nfree = 0;
        aa_top = 0;
        out = Queue.create ();
        ebuf = Array.make 64 0;
        p_expansions = 0;
        p_columns = 0;
        retired = 0;
        obs = None;
        base_io_hits = (let h, _ = S.io_stats source in h);
        base_io_misses = (let _, m = S.io_stats source in m);
        base_minor_words = Gc.minor_words ();
        deadline =
          (match cfg.Engine.budget.Engine.time_limit with
          | None -> infinity
          | Some s -> Unix.gettimeofday () +. s);
      }
    in
    (* Root seeding, mirroring [Engine.create_internal] per query: a
       query participates iff some H(i) reaches min_score; its root
       priority is the max such H(i). *)
    let root_lanes = ref [] in
    let root_prio = Array.make k neg_inf in
    for q = k - 1 downto 0 do
      let hv = hvecs.(q) in
      let best = ref neg_inf in
      for i = 0 to ms.(q) do
        if hv.(i) >= cfg.Engine.min_score && hv.(i) > !best then best := hv.(i)
      done;
      root_prio.(q) <- !best;
      if !best > neg_inf then root_lanes := q :: !root_lanes
    done;
    (match !root_lanes with
    | [] -> ()
    | lanes_list ->
      let lanes = Array.of_list lanes_list in
      let nl = Array.length lanes in
      let slot = Col_pool.acquire pool in
      Col_pool.fill pool slot neg_inf;
      let w = Col_pool.data pool in
      let off = Col_pool.base pool slot in
      Array.iter
        (fun q ->
          let hv = hvecs.(q) in
          let base = off + (q * (mm + 1)) in
          for i = 0 to ms.(q) do
            if hv.(i) >= cfg.Engine.min_score then w.(base + i) <- 0
          done)
        lanes;
      let root =
        {
          tree_node = S.root source;
          depth = 0;
          slot;
          lanes;
          preg = Array.make (5 * nl) 0;
          refs = nl;
          fkids = [||];
          fpruned = [||];
          facc = [||];
          facc_nodes = [||];
          foff = [||];
          fdata = [||];
          expanded = false;
        }
      in
      Array.iteri
        (fun j q ->
          let e = engines.(q) in
          let s = va_alloc t root in
          Pqueue.Int.push_tie e.vq ~priority:root_prio.(q) ~tie:1
            ((s lsl 11) lor (j lsl 1) lor 1);
          e.v_enqueued <- 1;
          e.v_max_queue <- 1)
        lanes);
    t

  let set_instrument t obs = t.obs <- obs
  let num_queries t = t.k

  let check_q t q =
    if q < 0 || q >= t.k then
      invalid_arg "Oasis.Batch_kernel: query index out of range"

  let hits t q =
    check_q t q;
    List.rev t.engines.(q).rev_hits

  let outcome t q =
    check_q t q;
    let e = t.engines.(q) in
    match e.exhausted with
    | Some remaining_bound -> Engine.Exhausted { remaining_bound }
    | None ->
      if
        Queue.is_empty e.pending
        && (Pqueue.Int.length e.vq = 0
           || e.reported_count >= Array.length e.reported_seq)
      then Engine.Complete
      else Engine.Searching

  let peek_bound t q =
    check_q t q;
    let e = t.engines.(q) in
    let from_queue = Pqueue.Int.peek_priority e.vq in
    match Queue.peek_opt e.pending with
    | None -> from_queue
    | Some hit -> (
      match from_queue with
      | None -> Some hit.Hit.score
      | Some p -> Some (max p hit.Hit.score))

  let counters t q =
    check_q t q;
    let e = t.engines.(q) in
    {
      Counters.zero with
      Counters.columns = e.v_columns;
      nodes_expanded = e.v_expanded;
      nodes_enqueued = e.v_enqueued;
      nodes_pruned = e.v_pruned;
      max_queue = e.v_max_queue;
    }

  let shared_counters t =
    {
      Counters.zero with
      Counters.columns = t.p_columns;
      nodes_expanded = t.p_expansions;
      nodes_pruned = t.retired;
      pool_reused = Col_pool.reused t.pool;
      pool_live = Col_pool.live t.pool;
      pool_peak_live = Col_pool.peak_live t.pool;
      pool_peak_bytes = Col_pool.capacity_bytes t.pool;
      minor_words = Gc.minor_words () -. t.base_minor_words;
      io_hits = (let h, _ = S.io_stats t.source in h - t.base_io_hits);
      io_misses = (let _, m = S.io_stats t.source in m - t.base_io_misses);
    }

  let retired t = t.retired

  let filter_stats t q =
    check_q t q;
    (t.ft_tested.(q), t.ft_coarse.(q), t.ft_refined.(q))
  let physical_expansions t = t.p_expansions
  let physical_columns t = t.p_columns
end

module Mem = Make (Source.Mem)
module Disk = Make (Source.Disk)
