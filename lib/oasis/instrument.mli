(** Observability hooks for the search layers.

    An {!t} bundles the metrics one engine updates while searching: a
    phase timer, the expansion-depth and arc-column-length histograms,
    the queue-length gauge, and an optional {!Obs.Trace.t} event sink.
    Engines hold [Instrument.t option] and every hook site is guarded
    by a single [match] on it, so a [None] engine pays one pointer
    compare per hook — the kernel benchmark gates that this stays
    within the shared bench tolerance.

    All metric cells are registered in an {!Obs.Registry.t} under
    stable dotted names ([engine.*], [parallel.*]; the buffer pool
    registers [pool.*] through {!Storage.Buffer_pool.set_obs}), so the
    CLI and the bench harness can print every layer uniformly. *)

(** {1 Engine phases} *)

val phase_queue : int
(** Priority-queue pops and pushes, pending-hit bookkeeping. *)

val phase_expand : int
(** Child-arc setup: slot acquire, column blit, enqueue/recycle. *)

val phase_dp : int
(** The fused DP-column + admissible-bound kernel (the bound is
    computed inside the DP loop, so a separate bound phase would
    always read zero; see DESIGN.md §2f). *)

val phase_bound : int
(** Budget checks and frontier-bound bookkeeping between pops. *)

val phase_emit : int
(** Hit emission: position collection, sorting, dedup. *)

val phase_names : string array

(** {1 Engine instrumentation} *)

type t = {
  timer : Obs.Timer.t;
  expansion_depth : Obs.Metric.histogram;
      (** depth (in symbols) of each node popped for expansion *)
  arc_columns : Obs.Metric.histogram;
      (** DP columns computed per child arc (0 = pruned before the
          first column or terminator-first arc) *)
  queue : Obs.Metric.gauge;  (** priority-queue length at each high-water *)
  block_arcs : Obs.Metric.histogram;
      (** sibling arcs per DP block: how full each gathered run of
          siblings was when its columns streamed back-to-back *)
  bound_reused : Obs.Metric.counter;
      (** sibling arcs settled by the parent-aggregate (ALAE-style)
          bound alone — no DP cell was computed *)
  bound_recomputed : Obs.Metric.counter;
      (** sibling arcs that ran the full DP arc walk because the cheap
          bound could not decide them *)
  batch_active : Obs.Metric.histogram;
      (** fused batch kernel: queries still active at each physical
          node expansion — how dense the k-lane DP slot actually is *)
  batch_retired : Obs.Metric.counter;
      (** fused batch kernel: lane retirements — a query leaving an arc
          walk because its own bound fell under its prune threshold *)
  trace : Obs.Trace.t option;
  registry : Obs.Registry.t;
}

val create : ?registry:Obs.Registry.t -> ?trace:Obs.Trace.t -> unit -> t
(** Metrics register in [registry] (fresh one if omitted); reusing one
    instrument across engines accumulates. *)

(** {1 Merge (sharded search) instrumentation} *)

type merge = {
  release_latency_us : Obs.Metric.histogram;
      (** microseconds between a shard publishing a hit and the
          order-preserving merge releasing it *)
  merge_occupancy : Obs.Metric.histogram;
      (** hits buffered across all shards at each release *)
  merge_trace : Obs.Trace.t option;
      (** frontier-bound updates and releases; written only under the
          coordinator lock *)
}

val merge_obs :
  ?registry:Obs.Registry.t -> ?trace:Obs.Trace.t -> unit -> merge

(** {1 Trace helpers} *)

val emit_counters : Obs.Trace.t -> ?sharded:bool -> Counters.t -> unit
(** Write the end-of-search ["counters"] summary event carrying the
    final {!Counters.t}. [scripts/trace_check.py] cross-checks its
    [nodes_expanded] against the number of ["expand"] events unless
    [sharded] is set (sharded traces carry merge events, not per-node
    engine events). *)
