let neg_inf = Scoring.Submat.neg_inf

(* Largest-remainder split of an optional limit over shard weights:
   quotas sum exactly to the limit, every shard's share is proportional
   to its symbol count, and the result is deterministic (remainder goes
   to the largest fractional parts, lowest index first on ties). *)
let split_limit weights = function
  | None -> Array.map (fun _ -> None) weights
  | Some limit ->
    let total = Array.fold_left ( + ) 0 weights in
    let k = Array.length weights in
    let quota = Array.map (fun w -> limit * w / total) weights in
    let given = Array.fold_left ( + ) 0 quota in
    let order = Array.init k (fun i -> i) in
    Array.sort
      (fun a b ->
        let fa = limit * weights.(a) mod total
        and fb = limit * weights.(b) mod total in
        if fa <> fb then compare fb fa else compare a b)
      order;
    for r = 0 to limit - given - 1 do
      let i = order.(r mod k) in
      quota.(i) <- quota.(i) + 1
    done;
    Array.map (fun q -> Some q) quota

module Make (S : Source.S) = struct
  module E = Engine.Make (S)

  type shard_source = { source : S.t; piece : Shard.piece }

  type shard = {
    index : int;
    piece : Shard.piece;
    hits : Hit.t Queue.t;  (* globalized, pushed in non-increasing order *)
    push_times : float Queue.t;
        (* parallel to [hits], filled only when instrumented: wall
           clock at push, consumed at release for the latency
           histogram *)
    mutable bound : int;  (* admissible bound on hits not yet pushed *)
    mutable done_ : bool;
    mutable outcome : Engine.outcome;  (* meaningful once done_ *)
    mutable counters : Counters.t;  (* latest snapshot *)
  }

  type t = {
    mu : Mutex.t;
    progress : Condition.t;  (* a shard pushed, finished, or failed *)
    shards : shard array;
    obs : Instrument.merge option;
        (* all obs updates and trace writes happen under [mu], so one
           sink is safe to share across worker domains *)
    mutable failed : exn option;
    mutable owned_pool : Domain_pool.t option;  (* shut down on drain *)
  }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  (* Trace one shard's frontier-bound update. Called under [t.mu]. *)
  let obs_bound t shard =
    match t.obs with
    | Some { Instrument.merge_trace = Some sink; _ } ->
      Obs.Trace.instant sink ~tid:(shard.index + 2) "frontier"
        ~args:
          [
            ("shard", Obs.Trace.Int shard.index);
            ("bound", Obs.Trace.Int shard.bound);
            ("done", Obs.Trace.Bool shard.done_);
          ]
    | _ -> ()

  (* Runs on a pool worker. The engine lives entirely in this domain,
     so its per-domain [minor_words] counter stays meaningful. [cap] is
     the shard's admissible q-gram score cap ([max_int] without a
     profile): published bounds never exceed it, so a low-overlap shard
     stops holding back the other shards' releases as soon as it is
     created — before its engine pops a single node. *)
  let shard_task t shard source ?filter ~cap query config () =
    match
      let e =
        E.create ?filter ~source ~db:shard.piece.Shard.db ~query config
      in
      locked t (fun () ->
          shard.bound <- min (E.frontier_bound e) cap;
          shard.counters <- E.counters e;
          obs_bound t shard;
          Condition.broadcast t.progress);
      let rec loop () =
        match E.next e with
        | Some h ->
          let g = Shard.globalize shard.piece h in
          (* frontier_bound already <= h.score after the pop; the min is
             belt and braces for the merge invariant. *)
          let b = min (min (E.frontier_bound e) h.Hit.score) cap in
          locked t (fun () ->
              Queue.add g shard.hits;
              if t.obs <> None then
                Queue.add (Unix.gettimeofday ()) shard.push_times;
              shard.bound <- b;
              shard.counters <- E.counters e;
              obs_bound t shard;
              Condition.broadcast t.progress);
          loop ()
        | None ->
          locked t (fun () ->
              shard.bound <- neg_inf;
              shard.outcome <- E.outcome e;
              shard.counters <- E.counters e;
              shard.done_ <- true;
              obs_bound t shard;
              Condition.broadcast t.progress)
      in
      loop ()
    with
    | () -> ()
    | exception exn ->
      locked t (fun () ->
          if t.failed = None then t.failed <- Some exn;
          shard.bound <- neg_inf;
          shard.done_ <- true;
          Condition.broadcast t.progress)

  let create ?pool ?obs ?profiles ~shards ~query (config : Engine.config) =
    let n = Array.length shards in
    if n = 0 then invalid_arg "Parallel.create: no shards";
    (match profiles with
    | Some p when Array.length p <> n ->
      invalid_arg "Parallel.create: profiles/shards length mismatch"
    | _ -> ());
    (* Per-shard q-gram state: the filter handed to the shard's engine,
       and the admissible whole-shard score cap (the root profile entry
       covers the shard's complete gram content at any horizon). *)
    let filters = Array.make n None in
    let caps = Array.make n max_int in
    (match profiles with
    | None -> ()
    | Some p ->
      Array.iteri
        (fun i prof ->
          match prof with
          | None -> ()
          | Some profile ->
            let f =
              Qgram.make ~profile ~query ~matrix:config.Engine.matrix
                ~gap:config.Engine.gap
            in
            if Qgram.enabled f then begin
              filters.(i) <- Some profile;
              caps.(i) <- Qgram.shard_cap f
            end)
        p);
    let weights =
      Array.map
        (fun (s : shard_source) ->
          max 1 (Bioseq.Database.total_symbols s.piece.Shard.db))
        shards
    in
    let b = config.Engine.budget in
    let columns = split_limit weights b.Engine.max_columns in
    let expanded = split_limit weights b.Engine.max_expanded in
    (* Shared wall clock: shards whose task starts late (fewer workers
       than shards) only get what is left of the limit. *)
    let deadline =
      Option.map (fun s -> Unix.gettimeofday () +. s) b.Engine.time_limit
    in
    let t =
      {
        mu = Mutex.create ();
        progress = Condition.create ();
        shards =
          Array.mapi
            (fun index (s : shard_source) ->
              {
                index;
                piece = s.piece;
                hits = Queue.create ();
                push_times = Queue.create ();
                bound = caps.(index);
                done_ = false;
                outcome = Engine.Searching;
                counters = Counters.zero;
              })
            shards;
        obs;
        failed = None;
        owned_pool = None;
      }
    in
    let pool, owned =
      match pool with
      | Some p -> (p, false)
      | None ->
        let domains = min n (Domain.recommended_domain_count ()) in
        (Domain_pool.create ~domains, true)
    in
    Array.iteri
      (fun i (s : shard_source) ->
        Domain_pool.submit pool (fun () ->
            let time_limit =
              Option.map
                (fun d -> Float.max 0. (d -. Unix.gettimeofday ()))
                deadline
            in
            let config =
              {
                config with
                Engine.budget =
                  {
                    Engine.max_columns = columns.(i);
                    max_expanded = expanded.(i);
                    time_limit;
                  };
              }
            in
            shard_task t t.shards.(i) s.source ?filter:filters.(i)
              ~cap:caps.(i) query config ()))
      shards;
    if owned then t.owned_pool <- Some pool;
    t

  let num_shards t = Array.length t.shards

  let head_score s = (Queue.peek s.hits).Hit.score

  (* The merge-release rule (see the interface): candidate = max head
     score, lowest shard index on ties; safe iff every still-running
     empty-buffered shard j satisfies s > bound_j, or s = bound_j with
     j on the losing side (> i) of the tie order. *)
  let pick t =
    let best = ref (-1) in
    Array.iteri
      (fun i s ->
        if not (Queue.is_empty s.hits) then
          if !best < 0 || head_score s > head_score t.shards.(!best) then
            best := i)
      t.shards;
    match !best with
    | -1 -> None
    | i ->
      let s = head_score t.shards.(i) in
      let safe = ref true in
      Array.iteri
        (fun j sh ->
          if
            j <> i
            && (not sh.done_)
            && Queue.is_empty sh.hits
            && not (s > sh.bound || (s = sh.bound && j > i))
          then safe := false)
        t.shards;
      Some (i, !safe)

  let all_done t = Array.for_all (fun s -> s.done_) t.shards

  let close_pool t =
    match t.owned_pool with
    | None -> ()
    | Some p ->
      t.owned_pool <- None;
      Domain_pool.shutdown p

  (* Record one release through the merge. Called under [t.mu], after
     the pop. *)
  let obs_release t o i (h : Hit.t) =
    let sh = t.shards.(i) in
    (match Queue.take_opt sh.push_times with
    | Some pushed ->
      let us = int_of_float ((Unix.gettimeofday () -. pushed) *. 1e6) in
      Obs.Metric.observe o.Instrument.release_latency_us (max 0 us)
    | None -> ());
    let occ =
      Array.fold_left (fun acc s -> acc + Queue.length s.hits) 0 t.shards
    in
    Obs.Metric.observe o.Instrument.merge_occupancy occ;
    match o.Instrument.merge_trace with
    | None -> ()
    | Some sink ->
      Obs.Trace.instant sink "release"
        ~args:
          [
            ("shard", Obs.Trace.Int i);
            ("seq", Obs.Trace.Int h.Hit.seq_index);
            ("score", Obs.Trace.Int h.Hit.score);
            ("buffered", Obs.Trace.Int occ);
          ]

  let next t =
    let result =
      locked t (fun () ->
          let rec loop () =
            match t.failed with
            | Some exn -> Error exn
            | None -> (
              match pick t with
              | Some (i, true) ->
                let h = Queue.pop t.shards.(i).hits in
                (match t.obs with
                | None -> ()
                | Some o -> obs_release t o i h);
                Ok (Some h)
              | Some (_, false) ->
                Condition.wait t.progress t.mu;
                loop ()
              | None ->
                if all_done t then Ok None
                else begin
                  Condition.wait t.progress t.mu;
                  loop ()
                end)
          in
          loop ())
    in
    match result with
    | Error exn ->
      close_pool t;
      raise exn
    | Ok None ->
      close_pool t;
      None
    | Ok some -> some

  let run ?limit t =
    let rec go acc n =
      if n = 0 then List.rev acc
      else
        match next t with
        | None -> List.rev acc
        | Some h -> go (h :: acc) (n - 1)
    in
    go [] (match limit with None -> -1 | Some l -> l)

  let peek_bound t =
    locked t (fun () ->
        let b =
          Array.fold_left
            (fun acc s ->
              let sb =
                if not (Queue.is_empty s.hits) then head_score s
                else if s.done_ then neg_inf
                else s.bound
              in
              max acc sb)
            neg_inf t.shards
        in
        if b = neg_inf then None else Some b)

  let outcome t =
    locked t (fun () ->
        if not (all_done t) then Engine.Searching
        else if Array.exists (fun s -> not (Queue.is_empty s.hits)) t.shards
        then Engine.Searching
        else
          let bound =
            Array.fold_left
              (fun acc s ->
                match s.outcome with
                | Engine.Exhausted { remaining_bound } ->
                  max acc remaining_bound
                | _ -> acc)
              neg_inf t.shards
          in
          if bound > neg_inf then Engine.Exhausted { remaining_bound = bound }
          else if Array.exists
                    (fun s ->
                      match s.outcome with
                      | Engine.Exhausted _ -> true
                      | _ -> false)
                    t.shards
          then
            (* Exhausted shards whose frontier was already empty-bounded. *)
            Engine.Exhausted { remaining_bound = neg_inf }
          else Engine.Complete)

  let counters t =
    locked t (fun () ->
        Counters.sum (Array.to_list (Array.map (fun s -> s.counters) t.shards)))
end

module Mem = struct
  include Make (Source.Mem)

  let create_sharded ?pool ?obs ~shards ~db ~query config =
    let pieces = Shard.plan ~shards db in
    let trees = Shard.build_trees ?pool pieces in
    let sources =
      Array.map2 (fun source piece -> { source; piece }) trees pieces
    in
    create ?pool ?obs ~shards:sources ~query config
end

module Disk = Make (Source.Disk)
