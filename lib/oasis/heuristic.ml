type style = Safe | Paper

let is_admissible_paper ~matrix ~query =
  let ok = ref true in
  for i = 0 to Bioseq.Sequence.length query - 1 do
    if Scoring.Submat.best_against matrix (Bioseq.Sequence.get query i) < 0 then
      ok := false
  done;
  !ok

let vector_of_bests ~style ~gap bests =
  let m = Array.length bests in
  let h = Array.make (m + 1) 0 in
  (match style with
  | Safe ->
    let ge = Scoring.Gap.extend_score gap in
    for i = m - 1 downto 0 do
      h.(i) <- max 0 (h.(i + 1) + max bests.(i) ge)
    done
  | Paper ->
    Array.iter
      (fun b ->
        if b < 0 then
          invalid_arg
            "Heuristic: the paper-style vector is inadmissible here (a \
             column's best score is negative); use Safe")
      bests;
    for i = m - 1 downto 0 do
      h.(i) <- h.(i + 1) + bests.(i)
    done);
  h

let vector_of_profile ~style ~gap profile =
  vector_of_bests ~style ~gap
    (Array.init (Scoring.Pssm.length profile) (Scoring.Pssm.best_at profile))

let vector ~style ~matrix ~gap ~query =
  let m = Bioseq.Sequence.length query in
  let h = Array.make (m + 1) 0 in
  (match style with
  | Safe ->
    let ge = Scoring.Gap.extend_score gap in
    for i = m - 1 downto 0 do
      let c =
        max (Scoring.Submat.best_against matrix (Bioseq.Sequence.get query i)) ge
      in
      h.(i) <- max 0 (h.(i + 1) + c)
    done
  | Paper ->
    if not (is_admissible_paper ~matrix ~query) then
      invalid_arg
        "Heuristic.vector: the paper-style vector is inadmissible here (a \
         query symbol has an all-negative matrix row); use Safe";
    for i = m - 1 downto 0 do
      h.(i) <-
        h.(i + 1)
        + Scoring.Submat.best_against matrix (Bioseq.Sequence.get query i)
    done);
  h
