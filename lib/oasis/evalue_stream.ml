module Make (D : Engine.DRIVER) = struct
  module Buffer_set = Set.Make (struct
    type t = float * int * Hit.t (* adjusted E, sequence index, hit *)

    let compare (e1, s1, _) (e2, s2, _) =
      let c = Float.compare e1 e2 in
      if c <> 0 then c else Int.compare s1 s2
  end)

  type t = {
    driver : D.t;
    db : Bioseq.Database.t;
    params : Scoring.Karlin.params;
    query_length : int;
    num_sequences : int;
    min_seq_len : int;
    mutable buffer : Buffer_set.t;
    mutable exhausted : bool;
  }

  let create ~driver ~db ~params ~query_length =
    let min_seq_len =
      let best = ref max_int in
      for i = 0 to Bioseq.Database.num_sequences db - 1 do
        best := min !best (Bioseq.Sequence.length (Bioseq.Database.seq db i))
      done;
      !best
    in
    {
      driver;
      db;
      params;
      query_length;
      num_sequences = Bioseq.Database.num_sequences db;
      min_seq_len = max 1 min_seq_len;
      buffer = Buffer_set.empty;
      exhausted = false;
    }

  let adjusted t (hit : Hit.t) =
    let len = Bioseq.Sequence.length (Bioseq.Database.seq t.db hit.seq_index) in
    float_of_int t.num_sequences
    *. Scoring.Karlin.evalue t.params ~m:t.query_length ~n:len ~score:hit.score

  (* Best (smallest) adjusted E-value any hit still inside the engine
     could achieve: the frontier's score bound against the shortest
     sequence. *)
  let optimistic_future t =
    match D.peek_bound t.driver with
    | None -> infinity
    | Some bound ->
      float_of_int t.num_sequences
      *. Scoring.Karlin.evalue t.params ~m:t.query_length ~n:t.min_seq_len
           ~score:bound

  let rec next t =
    let releasable =
      match Buffer_set.min_elt_opt t.buffer with
      | None -> None
      | Some ((e, _, _) as entry) ->
        if t.exhausted || e <= optimistic_future t then Some entry else None
    in
    match releasable with
    | Some ((e, _, hit) as entry) ->
      t.buffer <- Buffer_set.remove entry t.buffer;
      Some (hit, e)
    | None ->
      if t.exhausted then None
      else begin
        (match D.next t.driver with
        | None -> t.exhausted <- true
        | Some hit ->
          t.buffer <- Buffer_set.add (adjusted t hit, hit.seq_index, hit) t.buffer);
        next t
      end

  let buffered t = Buffer_set.cardinal t.buffer
end

module Mem = Make (Engine.Mem)
module Disk = Make (Engine.Disk)
