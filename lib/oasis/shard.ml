type piece = { db : Bioseq.Database.t; first_seq : int }

(* Cut points: after assigning a sequence, start a new piece once the
   accumulated symbols reach the next ideal boundary i * total / shards.
   Greedy and deterministic; every piece gets at least one sequence
   because boundaries are visited in order and each step consumes one. *)
let plan ~shards db =
  if shards < 1 then invalid_arg "Shard.plan: shards < 1";
  let n = Bioseq.Database.num_sequences db in
  let shards = min shards n in
  let total = Bioseq.Database.total_symbols db in
  let pieces = ref [] in
  let current = ref [] and current_first = ref 0 in
  let assigned = ref 0 (* symbols in closed pieces + current *) in
  let piece_index = ref 0 in
  let flush next_first =
    if !current <> [] then begin
      pieces :=
        { db = Bioseq.Database.make (List.rev !current); first_seq = !current_first }
        :: !pieces;
      incr piece_index;
      current := [];
      current_first := next_first
    end
  in
  for i = 0 to n - 1 do
    current := Bioseq.Database.seq db i :: !current;
    assigned := !assigned + Bioseq.Sequence.length (Bioseq.Database.seq db i);
    (* Close the piece when it reaches its ideal share, but never leave
       more pieces to form than sequences to fill them. *)
    let remaining_seqs = n - i - 1 in
    let remaining_pieces = shards - !piece_index - 1 in
    if
      remaining_pieces > 0
      && (!assigned * shards >= total * (!piece_index + 1)
         || remaining_seqs <= remaining_pieces)
    then flush (i + 1)
  done;
  flush n;
  let arr = Array.of_list (List.rev !pieces) in
  assert (Array.length arr >= 1 && Array.length arr <= shards);
  arr

let globalize piece (h : Hit.t) =
  if piece.first_seq = 0 then h
  else { h with Hit.seq_index = h.Hit.seq_index + piece.first_seq }

let build_trees ?pool pieces =
  match pool with
  | None -> Array.map (fun p -> Suffix_tree.Ukkonen.build p.db) pieces
  | Some pool ->
    let trees = Array.make (Array.length pieces) None in
    Array.iteri
      (fun i p ->
        Domain_pool.submit pool (fun () ->
            trees.(i) <- Some (Suffix_tree.Ukkonen.build p.db)))
      pieces;
    Domain_pool.wait pool;
    Array.map (function Some t -> t | None -> assert false) trees
