(* Bucket frontier for the engine's A* loop.

   The engine's queue discipline is the same as [Pqueue]'s — decreasing
   priority, then increasing tie, then insertion order — but its traffic
   pattern is special: priorities are bounded integer scores (root bound
   down to [min_score]), and after the first pop every push carries a
   priority no greater than the bound just popped (the arc bound is
   admissible along the path). A binary heap pays O(log n) scattered
   array touches per operation plus one boxed node record per push; a
   bucket table pays O(1) array writes and stores the node's fields in
   flat int arenas, so an enqueue allocates nothing at all. The record
   the engine works with is materialized once per *pop* — and pops are
   ~5x rarer than pushes on the benchmark workload.

   Layout: one FIFO list per (priority, tie) pair, threaded through a
   flat [next] arena; [heads]/[tails] are indexed by
   [2 * priority lor tie]. A scan pointer [cur] tracks the highest
   possibly non-empty priority. Pops walk [cur] downward over empty
   buckets; a push above [cur] (possible before the first pop, or if a
   bound were not consistent) simply raises it again, so correctness
   never relies on the monotone pattern — only the O(1) amortized cost
   does. Entry slots are recycled through a free list threaded through
   the same [next] arena. *)

let stride = 6
(* per-entry int fields: slot, depth, max_score, max_q, max_off,
   accepted *)

type 'node t = {
  mutable heads : int array;  (** entry index per [2*p lor tie]; -1 = empty *)
  mutable tails : int array;
  mutable nprio : int;  (** bucket table covers priorities [0, nprio) *)
  mutable cur : int;  (** no bucket above this priority is non-empty *)
  mutable size : int;
  (* entry arenas, grown together; capacity = [Array.length next] *)
  mutable nodes : 'node array;
  mutable ints : int array;  (** [stride] ints per entry *)
  mutable next : int array;  (** FIFO link, then free-list link; -1 ends *)
  mutable used : int;  (** arena high-water mark *)
  mutable free : int;  (** free-list head; -1 = none *)
  (* registers holding the last popped entry's fields; the node itself
     is {!pop}'s return value *)
  mutable o_priority : int;
  mutable o_slot : int;
  mutable o_depth : int;
  mutable o_max_score : int;
  mutable o_max_q : int;
  mutable o_max_off : int;
  mutable o_accepted : bool;
}

let create () =
  {
    heads = [||];
    tails = [||];
    nprio = 0;
    cur = 0;
    size = 0;
    nodes = [||];
    ints = [||];
    next = [||];
    used = 0;
    free = -1;
    o_priority = 0;
    o_slot = 0;
    o_depth = 0;
    o_max_score = 0;
    o_max_q = 0;
    o_max_off = 0;
    o_accepted = false;
  }

let length t = t.size
let is_empty t = t.size = 0

(* Keep every capacity (bucket table and arenas) so a session reuses the
   high-water allocation across searches. As with [Pqueue.clear],
   retained slots may still reference previously pushed nodes until
   overwritten; the engine always re-pushes before reading. *)
let clear t =
  Array.fill t.heads 0 (Array.length t.heads) (-1);
  Array.fill t.tails 0 (Array.length t.tails) (-1);
  t.cur <- 0;
  t.size <- 0;
  t.used <- 0;
  t.free <- -1

let grow_buckets t p =
  let n' = max (p + 1) (2 * max 16 t.nprio) in
  let heads = Array.make (2 * n') (-1) in
  Array.blit t.heads 0 heads 0 (2 * t.nprio);
  let tails = Array.make (2 * n') (-1) in
  Array.blit t.tails 0 tails 0 (2 * t.nprio);
  t.heads <- heads;
  t.tails <- tails;
  t.nprio <- n'

let alloc_entry t node =
  if t.free >= 0 then begin
    let e = t.free in
    t.free <- Array.unsafe_get t.next e;
    Array.unsafe_set t.nodes e node;
    e
  end
  else begin
    let e = t.used in
    if e = Array.length t.next then begin
      let cap' = max 64 (2 * e) in
      (* [node] is a valid filler for the fresh value array. *)
      let nodes = Array.make cap' node in
      Array.blit t.nodes 0 nodes 0 e;
      t.nodes <- nodes;
      let ints = Array.make (stride * cap') 0 in
      Array.blit t.ints 0 ints 0 (stride * e);
      t.ints <- ints;
      let next = Array.make cap' (-1) in
      Array.blit t.next 0 next 0 e;
      t.next <- next
    end
    else Array.unsafe_set t.nodes e node;
    t.used <- e + 1;
    e
  end

let push t ~priority ~tie ~node ~slot ~depth ~max_score ~max_q ~max_off
    ~accepted =
  if priority < 0 then invalid_arg "Oasis.Frontier.push: negative priority";
  if tie land -2 <> 0 then invalid_arg "Oasis.Frontier.push: tie not 0 or 1";
  if priority >= t.nprio then grow_buckets t priority;
  let e = alloc_entry t node in
  let b = stride * e in
  let ints = t.ints in
  Array.unsafe_set ints b slot;
  Array.unsafe_set ints (b + 1) depth;
  Array.unsafe_set ints (b + 2) max_score;
  Array.unsafe_set ints (b + 3) max_q;
  Array.unsafe_set ints (b + 4) max_off;
  Array.unsafe_set ints (b + 5) (if accepted then 1 else 0);
  Array.unsafe_set t.next e (-1);
  let li = (2 * priority) lor tie in
  let tl = Array.unsafe_get t.tails li in
  if tl < 0 then Array.unsafe_set t.heads li e
  else Array.unsafe_set t.next tl e;
  Array.unsafe_set t.tails li e;
  if priority > t.cur then t.cur <- priority;
  t.size <- t.size + 1

(* Advance [cur] down to the highest non-empty priority. Only called
   with [size > 0], so the scan terminates; buckets above [cur] are
   empty by the push invariant. *)
let settle t =
  let heads = t.heads in
  let c = ref t.cur in
  while
    Array.unsafe_get heads (2 * !c) < 0
    && Array.unsafe_get heads ((2 * !c) lor 1) < 0
  do
    decr c
  done;
  t.cur <- !c

let peek_priority t =
  if t.size = 0 then None
  else begin
    settle t;
    Some t.cur
  end

let top_priority_exn t =
  if t.size = 0 then invalid_arg "Oasis.Frontier.top_priority_exn: empty";
  settle t;
  t.cur

let pop t =
  if t.size = 0 then None
  else begin
    settle t;
    let p = t.cur in
    let li0 = 2 * p in
    let li = if Array.unsafe_get t.heads li0 >= 0 then li0 else li0 lor 1 in
    let e = Array.unsafe_get t.heads li in
    let nx = Array.unsafe_get t.next e in
    Array.unsafe_set t.heads li nx;
    if nx < 0 then Array.unsafe_set t.tails li (-1);
    Array.unsafe_set t.next e t.free;
    t.free <- e;
    t.size <- t.size - 1;
    let b = stride * e in
    let ints = t.ints in
    t.o_priority <- p;
    t.o_slot <- Array.unsafe_get ints b;
    t.o_depth <- Array.unsafe_get ints (b + 1);
    t.o_max_score <- Array.unsafe_get ints (b + 2);
    t.o_max_q <- Array.unsafe_get ints (b + 3);
    t.o_max_off <- Array.unsafe_get ints (b + 4);
    t.o_accepted <- Array.unsafe_get ints (b + 5) <> 0;
    Some (Array.unsafe_get t.nodes e)
  end

let popped_priority t = t.o_priority
let popped_slot t = t.o_slot
let popped_depth t = t.o_depth
let popped_max_score t = t.o_max_score
let popped_max_q t = t.o_max_q
let popped_max_off t = t.o_max_off
let popped_accepted t = t.o_accepted
