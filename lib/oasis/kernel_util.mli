(** Helpers shared by the single-query engine kernel ({!Engine}) and
    the fused multi-query batch kernel ({!Batch_kernel}). *)

val checked : bool
(** True when [OASIS_CHECKED_KERNEL=1]: kernels validate their index
    ranges once per DP column before entering the unsafe inner loops. *)

val block_arcs : int
(** Sibling arcs per DP block: children are gathered from the tree in
    one pass and their columns run back-to-back in chunks of this many,
    so the PSSM rows and the parent column stay cache-hot across the
    whole sibling run. *)

val smax_of_cols : cols:int array -> m:int -> dim:int -> int array
(** [smax_of_cols ~cols ~m ~dim] over a symbol-major [dim * m] profile:
    element [c] is [max over i of cols.((c * m) + i)] — the best score
    symbol [c] achieves against any query position. Feeds the
    replacement term of the pre-DP sibling bound. *)

val min_hdrop : int array -> int
(** Minimum one-step drop [hvec.(i-1) - hvec.(i)] of an admissible
    vector (0 for an empty query). The pre-DP bound is only enabled
    when this is >= the gap extension score — the property that lets
    parent-column aggregates cover insert chains exactly. *)

val sort_range : int array -> int -> int -> unit
(** In-place ascending sort of [a.(lo .. hi)] — lets the emit paths
    sort a reused scratch prefix without slicing. *)
