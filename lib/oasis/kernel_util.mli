(** Helpers shared by the single-query engine kernel ({!Engine}) and
    the fused multi-query batch kernel ({!Batch_kernel}). *)

val checked : bool
(** True when [OASIS_CHECKED_KERNEL=1]: kernels validate their index
    ranges once per DP column before entering the unsafe inner loops. *)

val sort_range : int array -> int -> int -> unit
(** In-place ascending sort of [a.(lo .. hi)] — lets the emit paths
    sort a reused scratch prefix without slicing. *)
