type stats = {
  segment_columns : int;
  verify_columns : int;
  candidates : int;
}

module Make (S : Source.S) = struct
  module E = Engine.Make (S)

  let segment_bounds ~len ~segments =
    (* [segments] consecutive pieces covering [0, len), sizes differing
       by at most one. *)
    let base = len / segments and extra = len mod segments in
    let rec go i start acc =
      if i = segments then List.rev acc
      else
        let size = base + if i < extra then 1 else 0 in
        go (i + 1) (start + size) ((start, size) :: acc)
    in
    go 0 0 [] |> List.filter (fun (_, size) -> size > 0)

  let search ~source ~db ~query ~segments (cfg : Engine.config) =
    if segments < 1 then invalid_arg "Long_query.search: segments < 1";
    let len = Bioseq.Sequence.length query in
    let segments = min segments len in
    let pieces = segment_bounds ~len ~segments in
    let k = List.length pieces in
    (* Affine splitting slack: each boundary may cut one gap run, which
       then pays the opening difference once more. *)
    let slack =
      (k - 1)
      * (Scoring.Gap.extend_score cfg.gap - Scoring.Gap.open_score cfg.gap)
    in
    let piece_min_score =
      max 1
        (int_of_float
           (ceil (float_of_int (cfg.min_score - slack) /. float_of_int k)))
    in
    (* Filter: union of sequences reported by any segment search. *)
    let candidate = Array.make (Bioseq.Database.num_sequences db) false in
    let segment_columns = ref 0 in
    List.iter
      (fun (pos, size) ->
        let piece = Bioseq.Sequence.sub query ~pos ~len:size in
        let engine =
          E.create ~source ~db ~query:piece
            { cfg with min_score = piece_min_score }
        in
        List.iter
          (fun h -> candidate.(h.Hit.seq_index) <- true)
          (E.run engine);
        segment_columns :=
          !segment_columns + (E.counters engine).Engine.columns)
      pieces;
    (* Refine: full-query Smith-Waterman on the candidates only. *)
    let verify_columns = ref 0 in
    let hits = ref [] in
    let num_candidates = ref 0 in
    Array.iteri
      (fun seq_index is_candidate ->
        if is_candidate then begin
          incr num_candidates;
          let target = Bioseq.Database.seq db seq_index in
          let single = Bioseq.Database.make [ target ] in
          let found, stats =
            Align.Smith_waterman.search ~matrix:cfg.matrix ~gap:cfg.gap ~query
              ~db:single ~min_score:cfg.min_score
          in
          verify_columns := !verify_columns + stats.Align.Smith_waterman.columns;
          List.iter
            (fun (h : Align.Smith_waterman.hit) ->
              hits :=
                {
                  Hit.seq_index;
                  score = h.score;
                  query_stop = h.query_stop;
                  target_stop = h.target_stop;
                }
                :: !hits)
            found
        end)
      candidate;
    let hits = List.sort Hit.compare_for_report !hits in
    ( hits,
      {
        segment_columns = !segment_columns;
        verify_columns = !verify_columns;
        candidates = !num_candidates;
      } )
end

module Mem = Make (Source.Mem)
module Disk = Make (Source.Disk)
