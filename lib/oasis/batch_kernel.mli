(** Fused multi-query batch kernel: one best-first suffix-tree
    traversal serving k queries simultaneously.

    Running k queries as k independent {!Engine} instances repeats all
    the traversal work k times: every tree node is decoded, its page
    pinned, its children enumerated, and its arc labels fetched once
    {e per query}. The fused kernel expands each node once {e per
    batch}: an arc's symbols are read from the source once and
    memoized, DP columns for all k queries live lane-major in one
    {!Col_pool} slot (each query's cells contiguous, so a lane walks
    the whole arc with its running best/bound/cutoff in registers),
    one admissible bound is maintained per (node, query), and a query
    whose own bound falls below its prune threshold retires from the
    arc walk without stopping the others.

    Because the engine's bounds and acceptance decisions are
    {e path-local} — they depend only on a node's root path, never on
    traversal order — every per-(node, query) fact the fused traversal
    records is exactly what the single engine would have computed. A
    lightweight {e virtual engine} per query replays the single-engine
    queue discipline (same priorities, same accepted-before-viable tie
    break, same FIFO order, its own budget counters) over those facts.
    The hit stream delivered for each query is therefore
    {e bit-identical} to running [Engine.Make(S)] on that query alone —
    including order among equal scores and the truncation point under a
    [max_columns]/[max_expanded] budget. The property tests gate this
    equivalence; the physical traversal does the DP and the I/O only
    once.

    Physical expansion is demand-driven: the unexpanded node with the
    highest bound among all blocked virtual engines (the max live bound
    across the batch) is expanded next, so subtrees no query can use —
    e.g. beyond every query's budget — are never decoded. *)

(** Output signature of {!Make}, named so drivers (CLI, bench) can
    abstract over the tree source with a first-class module. *)
module type S = sig
  type t
  type source

  val create :
    ?filter:Quasar.Profile.t ->
    source:source ->
    db:Bioseq.Database.t ->
    queries:Bioseq.Sequence.t array ->
    Engine.config ->
    t
  (** One fused search over [queries] (at most 512 — the shared slot
      holds [k] lane blocks and must stay cache-sane). The config
      applies to every query. Raises [Invalid_argument] on an empty
      batch, an empty query, [min_score < 1], or an alphabet
      mismatch.

      [filter] arms a per-lane q-gram settle tier (see
      {!Engine.Make.create}): before a lane walks a child arc, the
      lemma bound over the child's whole subtree may prove the lane
      cannot reach [min_score] there, in which case the lane pays the
      one logical column the single engine's tier pays and skips the
      subtree. The settled subtrees are provably silent, so per-query
      streams {e and} per-query {!counters} stay bit-identical to the
      filtered single engine's. Queries the lemma cannot serve (see
      [Oasis.Qgram.make]) silently run unfiltered. *)

  val next : t -> (int * Hit.t) option
  (** The next available result from any query, as [(query_index,
      hit)]. Per query the hit subsequence is online — strictly
      non-increasing scores, each database sequence at most once — and
      bit-identical to that query's single-engine stream. Across
      queries the interleaving follows the fused schedule and carries
      no ordering guarantee. *)

  val run : t -> unit
  (** Drain the search; afterwards {!hits} holds every query's full
      stream. *)

  val hits : t -> int -> Hit.t list
  (** All hits delivered so far for one query, in delivery order. *)

  val outcome : t -> int -> Engine.outcome
  (** Per-query outcome with single-engine semantics: [Exhausted]
      carries that query's own frontier bound at its truncation
      point. *)

  val peek_bound : t -> int -> int option
  (** Per-query bound on every hit still to come (mirrors
      [Engine.peek_bound]). *)

  val counters : t -> int -> Counters.t
  (** Per-query {e virtual} counters — the work this query's
      single-engine run would have done ([columns], [nodes_expanded],
      [nodes_enqueued], [nodes_pruned], [max_queue]); pool/io/alloc
      fields are zero, they are physical and shared. The fused saving
      is visible as [(sum of virtual columns) / (shared physical
      columns)]. *)

  val shared_counters : t -> Counters.t
  (** The physical traversal's counters: [columns] = DP column sweeps
      actually run (each serving every live lane), [nodes_expanded] =
      tree nodes expanded once for the batch, [nodes_pruned] = lane
      retirements, plus the pool, allocation, and buffer-pool I/O
      deltas. *)

  val num_queries : t -> int

  val retired : t -> int
  (** Lane retirements: a query leaving an arc walk because its own
      bound fell under its prune threshold. *)

  val filter_stats : t -> int -> int * int * int
  (** Per-query q-gram tier counters [(tested, settled_coarse,
      settled_refined)], all zero without [filter]. Unlike the single
      engine — which only consults the tier on arcs its shared pre-DP
      bound failed to settle — the fused kernel tests every eligible
      (child, lane) pair before the lane walk, so [tested] (and the
      settled counts, on arcs both tiers cover) can exceed the single
      engine's {!Engine.Make.filter_stats}. {!counters} equality is
      unaffected: either tier charges the same one logical column. *)

  val physical_expansions : t -> int
  val physical_columns : t -> int

  val set_instrument : t -> Instrument.t option -> unit
  (** Attach observability: fills [batch.active_queries] (live lanes at
      each physical expansion) and [batch.retired]. [None] costs one
      pointer compare per hook site. *)
end

module Make (Src : Source.S) : S with type source = Src.t

module Mem : S with type source = Source.Mem.t
module Disk : S with type source = Source.Disk.t
