(** Database partitioning for the sharded search ({!Parallel}).

    A shard is a contiguous run of whole database sequences, packaged
    as its own {!Bioseq.Database.t} (so a suffix tree can be built on
    it — in memory or on disk — exactly as for an unsharded database)
    plus the global index of its first sequence. Cutting only at
    sequence boundaries is what keeps the sharded search exact:
    alignments never cross a terminator, so every alignment the
    unsharded search can find lives entirely inside one shard, and a
    shard-local hit maps back to the global database by shifting its
    sequence index. *)

type piece = {
  db : Bioseq.Database.t;  (** the shard's own sequence database *)
  first_seq : int;  (** global index of the shard's sequence 0 *)
}

val plan : shards:int -> Bioseq.Database.t -> piece array
(** Split [db] into at most [shards] contiguous pieces, balanced by
    symbol count (greedy cut at the sequence boundary nearest each
    ideal split point). Every piece is non-empty; fewer pieces than
    requested come back when the database has fewer sequences. Raises
    [Invalid_argument] when [shards < 1]. The partition is a pure
    function of [(shards, db)] — index build and search must agree on
    it, which the on-disk {!Storage.Shard_manifest} records
    explicitly. *)

val globalize : piece -> Hit.t -> Hit.t
(** Map a shard-local hit to global sequence numbering. [query_stop]
    and [target_stop] are already sequence-relative and unchanged. *)

val build_trees : ?pool:Domain_pool.t -> piece array -> Suffix_tree.Tree.t array
(** One {!Suffix_tree.Ukkonen} tree per piece; built on [pool]'s
    domains when given (construction is per-shard independent),
    sequentially otherwise. *)
