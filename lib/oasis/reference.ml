(* The pre-optimization engine, preserved as an executable
   specification. See reference.mli for why this file must stay dumb:
   per-child column copies, a record-based priority queue, row-major
   profile scans, and a separate upper-bound pass at the end of each
   arc. The optimized Engine must produce bit-identical hit streams. *)

let neg_inf = Scoring.Submat.neg_inf

(* The original entry-record binary heap, embedded so the reference
   cannot drift when the shared Pqueue is optimized. *)
module Rq = struct
  type 'a entry = { priority : int; tie : int; seqno : int; value : 'a }

  type 'a t = {
    mutable entries : 'a entry array; (* heap in entries.(0 .. size-1) *)
    mutable size : int;
    mutable next_seqno : int;
  }

  let create () = { entries = [||]; size = 0; next_seqno = 0 }
  let length t = t.size

  (* [a] sorts strictly before [b]. *)
  let before a b =
    if a.priority <> b.priority then a.priority > b.priority
    else if a.tie <> b.tie then a.tie < b.tie
    else a.seqno < b.seqno

  let grow t entry =
    let cap = Array.length t.entries in
    if t.size = cap then begin
      let ncap = max 16 (2 * cap) in
      let entries = Array.make ncap entry in
      Array.blit t.entries 0 entries 0 t.size;
      t.entries <- entries
    end

  let push t ~priority ?(tie = 1) value =
    let entry = { priority; tie; seqno = t.next_seqno; value } in
    t.next_seqno <- t.next_seqno + 1;
    grow t entry;
    let entries = t.entries in
    let rec up i =
      if i = 0 then entries.(0) <- entry
      else
        let parent = (i - 1) / 2 in
        if before entry entries.(parent) then begin
          entries.(i) <- entries.(parent);
          up parent
        end
        else entries.(i) <- entry
    in
    up t.size;
    t.size <- t.size + 1

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.entries.(0) in
      t.size <- t.size - 1;
      let last = t.entries.(t.size) in
      let entries = t.entries in
      let rec down i =
        let left = (2 * i) + 1 in
        if left >= t.size then entries.(i) <- last
        else begin
          let right = left + 1 in
          let best =
            if right < t.size && before entries.(right) entries.(left) then
              right
            else left
          in
          if before entries.(best) last then begin
            entries.(i) <- entries.(best);
            down best
          end
          else entries.(i) <- last
        end
      in
      if t.size > 0 then down 0;
      Some (top.priority, top.value)
    end

  let peek_priority t = if t.size = 0 then None else Some t.entries.(0).priority
end

module Make (S : Source.S) = struct
  type snode = {
    tree_node : S.node;
    b : int array; (* empty for accepted nodes *)
    bd : int array; (* affine gaps only *)
    depth : int;
    max_score : int;
    max_q : int;
    max_off : int;
    accepted : bool;
  }

  type t = {
    source : S.t;
    db : Bioseq.Database.t;
    m : int;
    hvec : int array;
    cfg : Engine.config;
    rows : int array; (* row-major [m * dim] profile scores *)
    dim : int;
    gap_open : int;
    gap_extend : int;
    affine : bool;
    term : int;
    pq : snode Rq.t;
    reported_seq : bool array;
    mutable reported_count : int;
    pending : Hit.t Queue.t;
    mutable c_columns : int;
    mutable c_expanded : int;
    deadline : float;
    mutable exhausted : int option;
  }

  let create_internal ~source ~db ~profile (cfg : Engine.config) =
    if cfg.Engine.min_score < 1 then
      invalid_arg "Oasis.Reference.create: min_score must be >= 1";
    if
      Bioseq.Alphabet.name (Scoring.Pssm.alphabet profile)
      <> Bioseq.Alphabet.name (Bioseq.Database.alphabet db)
    then invalid_arg "Oasis.Reference.create: alphabet mismatch";
    let m = Scoring.Pssm.length profile in
    let hvec =
      Heuristic.vector_of_profile ~style:cfg.Engine.options.Engine.heuristic
        ~gap:cfg.Engine.gap profile
    in
    let t =
      {
        source;
        db;
        m;
        hvec;
        cfg;
        rows = Scoring.Pssm.rows_flat profile;
        dim = Scoring.Pssm.dim profile;
        gap_open = Scoring.Gap.open_score cfg.Engine.gap;
        gap_extend = Scoring.Gap.extend_score cfg.Engine.gap;
        affine = not (Scoring.Gap.is_linear cfg.Engine.gap);
        term = S.terminator source;
        pq = Rq.create ();
        reported_seq = Array.make (Bioseq.Database.num_sequences db) false;
        reported_count = 0;
        pending = Queue.create ();
        c_columns = 0;
        c_expanded = 0;
        deadline =
          (match cfg.Engine.budget.Engine.time_limit with
          | None -> infinity
          | Some s -> Unix.gettimeofday () +. s);
        exhausted = None;
      }
    in
    let b = Array.make (m + 1) neg_inf in
    let priority = ref neg_inf in
    for i = 0 to m do
      if hvec.(i) >= cfg.Engine.min_score then begin
        b.(i) <- 0;
        if hvec.(i) > !priority then priority := hvec.(i)
      end
    done;
    if !priority > neg_inf then
      Rq.push t.pq ~priority:!priority ~tie:1
        {
          tree_node = S.root source;
          b;
          bd = (if t.affine then Array.make (m + 1) neg_inf else [||]);
          depth = 0;
          max_score = 0;
          max_q = 0;
          max_off = 0;
          accepted = false;
        };
    t

  let create ~source ~db ~query cfg =
    if Bioseq.Sequence.length query = 0 then
      invalid_arg "Oasis.Reference.create: empty query";
    if
      Bioseq.Alphabet.name (Scoring.Submat.alphabet cfg.Engine.matrix)
      <> Bioseq.Alphabet.name (Bioseq.Sequence.alphabet query)
    then invalid_arg "Oasis.Reference.create: alphabet mismatch";
    create_internal ~source ~db
      ~profile:(Scoring.Pssm.of_query ~matrix:cfg.Engine.matrix query)
      cfg

  let create_profile ~source ~db ~profile
      ?(options = Engine.default_options) ?(budget = Engine.unlimited) ~gap
      ~min_score () =
    create_internal ~source ~db ~profile
      {
        Engine.matrix = Scoring.Submat.unit_edit (Scoring.Pssm.alphabet profile);
        gap;
        min_score;
        options;
        budget;
      }

  let expand_linear t parent child =
    let start = S.label_start t.source child in
    let stop = S.label_stop t.source child in
    let opts = t.cfg.Engine.options in
    let min_score = t.cfg.Engine.min_score in
    let m = t.m in
    let hvec = t.hvec in
    let w = Array.copy parent.b in
    let max_score = ref parent.max_score in
    let max_q = ref parent.max_q in
    let max_off = ref parent.max_off in
    let accepted () =
      if !max_score >= min_score then
        Some
          {
            tree_node = child;
            b = [||];
            bd = [||];
            depth = 0;
            max_score = !max_score;
            max_q = !max_q;
            max_off = !max_off;
            accepted = true;
          }
      else None
    in
    let rec columns idx depth =
      let arc_done = match stop with Some s -> idx >= s | None -> false in
      if arc_done then
        (* Arc consumed: second pass recomputes the bound. *)
        let ub = ref neg_inf in
        let () =
          for i = 0 to m do
            if w.(i) > neg_inf && w.(i) + hvec.(i) > !ub then
              ub := w.(i) + hvec.(i)
          done
        in
        Some
          ( {
              tree_node = child;
              b = w;
              bd = [||];
              depth;
              max_score = !max_score;
              max_q = !max_q;
              max_off = !max_off;
              accepted = false;
            },
            !ub )
      else
        let c = S.symbol t.source idx in
        if c = t.term then
          match accepted () with
          | Some node -> Some (node, node.max_score)
          | None -> None
        else begin
          t.c_columns <- t.c_columns + 1;
          let depth = depth + 1 in
          let diag = ref w.(0) in
          w.(0) <-
            (if w.(0) = neg_inf then neg_inf
             else
               let v = w.(0) + t.gap_extend in
               if opts.Engine.prune_nonpositive && v <= 0 then neg_inf else v);
          let ub = ref (if w.(0) = neg_inf then neg_inf else w.(0) + hvec.(0)) in
          for i = 1 to m do
            let repl =
              if !diag = neg_inf then neg_inf
              else !diag + t.rows.(((i - 1) * t.dim) + c)
            in
            let del =
              if w.(i) = neg_inf then neg_inf else w.(i) + t.gap_extend
            in
            let ins =
              if w.(i - 1) = neg_inf then neg_inf else w.(i - 1) + t.gap_extend
            in
            diag := w.(i);
            let v = max repl (max del ins) in
            let v =
              if v = neg_inf then neg_inf
              else if opts.Engine.prune_nonpositive && v <= 0 then neg_inf
              else if
                opts.Engine.prune_dominated && v + hvec.(i) <= !max_score
              then neg_inf
              else if v + hvec.(i) < min_score then neg_inf
              else v
            in
            w.(i) <- v;
            if v > neg_inf then begin
              if v + hvec.(i) > !ub then ub := v + hvec.(i);
              if v > !max_score then begin
                max_score := v;
                max_q := i;
                max_off := depth
              end
            end
          done;
          if !ub <= !max_score then
            match accepted () with
            | Some node -> Some (node, node.max_score)
            | None -> None
          else if !ub < min_score then None
          else columns (idx + 1) depth
        end
    in
    columns start parent.depth

  let expand_affine t parent child =
    let start = S.label_start t.source child in
    let stop = S.label_stop t.source child in
    let opts = t.cfg.Engine.options in
    let min_score = t.cfg.Engine.min_score in
    let m = t.m in
    let hvec = t.hvec in
    let wh = Array.copy parent.b in
    let wd = Array.copy parent.bd in
    let go = t.gap_open and ge = t.gap_extend in
    let max_score = ref parent.max_score in
    let max_q = ref parent.max_q in
    let max_off = ref parent.max_off in
    let accepted () =
      if !max_score >= min_score then
        Some
          {
            tree_node = child;
            b = [||];
            bd = [||];
            depth = 0;
            max_score = !max_score;
            max_q = !max_q;
            max_off = !max_off;
            accepted = true;
          }
      else None
    in
    let prune i v =
      if v = neg_inf then neg_inf
      else if opts.Engine.prune_nonpositive && v <= 0 then neg_inf
      else if opts.Engine.prune_dominated && v + hvec.(i) <= !max_score then
        neg_inf
      else if v + hvec.(i) < min_score then neg_inf
      else v
    in
    let rec columns idx depth =
      let arc_done = match stop with Some s -> idx >= s | None -> false in
      if arc_done then begin
        let ub = ref neg_inf in
        for i = 0 to m do
          if wh.(i) > neg_inf && wh.(i) + hvec.(i) > !ub then
            ub := wh.(i) + hvec.(i)
        done;
        Some
          ( {
              tree_node = child;
              b = wh;
              bd = wd;
              depth;
              max_score = !max_score;
              max_q = !max_q;
              max_off = !max_off;
              accepted = false;
            },
            !ub )
      end
      else
        let c = S.symbol t.source idx in
        if c = t.term then
          match accepted () with
          | Some node -> Some (node, node.max_score)
          | None -> None
        else begin
          t.c_columns <- t.c_columns + 1;
          let depth = depth + 1 in
          let diag = ref wh.(0) in
          let d0 =
            max
              (if wh.(0) = neg_inf then neg_inf else wh.(0) + go)
              (if wd.(0) = neg_inf then neg_inf else wd.(0) + ge)
          in
          wd.(0) <- prune 0 d0;
          wh.(0) <- wd.(0);
          let ub =
            ref (if wh.(0) = neg_inf then neg_inf else wh.(0) + hvec.(0))
          in
          let ins = ref neg_inf in
          for i = 1 to m do
            let d =
              max
                (if wh.(i) = neg_inf then neg_inf else wh.(i) + go)
                (if wd.(i) = neg_inf then neg_inf else wd.(i) + ge)
            in
            ins :=
              max
                (if wh.(i - 1) = neg_inf then neg_inf else wh.(i - 1) + go)
                (if !ins = neg_inf then neg_inf else !ins + ge);
            let repl =
              if !diag = neg_inf then neg_inf
              else !diag + t.rows.(((i - 1) * t.dim) + c)
            in
            diag := wh.(i);
            let d = prune i d in
            let h = prune i (max repl (max d !ins)) in
            wd.(i) <- d;
            wh.(i) <- h;
            if h > neg_inf then begin
              if h + hvec.(i) > !ub then ub := h + hvec.(i);
              if h > !max_score then begin
                max_score := h;
                max_q := i;
                max_off := depth
              end
            end
          done;
          if !ub <= !max_score then
            match accepted () with
            | Some node -> Some (node, node.max_score)
            | None -> None
          else if !ub < min_score then None
          else columns (idx + 1) depth
        end
    in
    columns start parent.depth

  let expand t parent child =
    if t.affine then expand_affine t parent child
    else expand_linear t parent child

  let emit t node =
    let positions = ref [] in
    S.iter_positions t.source node.tree_node (fun p ->
        positions := p :: !positions);
    let positions = !positions in
    let hits =
      List.filter_map
        (fun p ->
          let seq_index = Bioseq.Database.seq_of_pos t.db p in
          if t.reported_seq.(seq_index) then None
          else begin
            t.reported_seq.(seq_index) <- true;
            t.reported_count <- t.reported_count + 1;
            let global_stop = p + node.max_off in
            Some
              {
                Hit.seq_index;
                score = node.max_score;
                query_stop = node.max_q;
                target_stop =
                  global_stop - Bioseq.Database.seq_start t.db seq_index;
              }
          end)
        (List.sort compare positions)
    in
    List.iter (fun h -> Queue.add h t.pending) hits

  let budget_spent t =
    let b = t.cfg.Engine.budget in
    (match b.Engine.max_columns with
    | Some l -> t.c_columns >= l
    | None -> false)
    || (match b.Engine.max_expanded with
       | Some l -> t.c_expanded >= l
       | None -> false)
    || (t.deadline < infinity && Unix.gettimeofday () >= t.deadline)

  let rec next t =
    match Queue.take_opt t.pending with
    | Some hit -> Some hit
    | None ->
      if t.reported_count >= Array.length t.reported_seq then None
      else if t.exhausted <> None then None
      else if budget_spent t && Rq.length t.pq > 0 then begin
        (match Rq.peek_priority t.pq with
        | Some bound -> t.exhausted <- Some bound
        | None -> assert false);
        None
      end
      else begin
        match Rq.pop t.pq with
        | None -> None
        | Some (_, node) ->
          if node.accepted then emit t node
          else begin
            t.c_expanded <- t.c_expanded + 1;
            List.iter
              (fun child ->
                match expand t node child with
                | None -> ()
                | Some (snode, priority) ->
                  Rq.push t.pq ~priority
                    ~tie:(if snode.accepted then 0 else 1)
                    snode)
              (S.children t.source node.tree_node)
          end;
          next t
      end

  let run ?limit t =
    let rec go acc n =
      match limit with
      | Some l when n >= l -> List.rev acc
      | _ -> (
        match next t with
        | None -> List.rev acc
        | Some hit -> go (hit :: acc) (n + 1))
    in
    go [] 0

  let peek_bound t =
    let from_queue = Rq.peek_priority t.pq in
    match Queue.peek_opt t.pending with
    | None -> from_queue
    | Some hit -> (
      match from_queue with
      | None -> Some hit.Hit.score
      | Some p -> Some (max p hit.Hit.score))

  let outcome t =
    match t.exhausted with
    | Some remaining_bound -> Engine.Exhausted { remaining_bound }
    | None ->
      if
        Queue.is_empty t.pending
        && (Rq.length t.pq = 0
           || t.reported_count >= Array.length t.reported_seq)
      then Engine.Complete
      else Engine.Searching

  let columns t = t.c_columns
  let nodes_expanded t = t.c_expanded
end

module Mem = Make (Source.Mem)
