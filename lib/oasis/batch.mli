(** Multi-query batch search, optionally parallel across OCaml 5
    domains.

    Once built, the suffix tree is immutable, so any number of engines
    can traverse it concurrently; a query workload (the paper evaluates
    100 ProClass motifs, §4.1) parallelizes trivially. Only the
    in-memory source is offered here — the disk engine shares one
    buffer pool, which is deliberately not thread-safe (a single clock
    hand, like the paper's). *)

type result = {
  query_index : int;
  hits : Hit.t list;
  counters : Engine.counters;
}

val run :
  ?domains:int ->
  ?pool:Domain_pool.t ->
  tree:Suffix_tree.Tree.t ->
  db:Bioseq.Database.t ->
  queries:Bioseq.Sequence.t list ->
  Engine.config ->
  result list
(** Search every query, returning results in query order. One task per
    query on a {!Domain_pool} — queries of very different costs still
    balance, unlike a static split. [pool] reuses a caller's pool
    (e.g. shared with a {!Parallel} search); otherwise [domains]
    (default 1) sizes a private one, with [domains = 1] running
    inline. Results are identical regardless of [domains]/[pool]
    (checked by tests). *)
