(** Multi-query batch search: fused chunks, optionally parallel across
    OCaml 5 domains.

    Queries are grouped into chunks of [batch_size]; each chunk runs as
    one {!Batch_kernel} search — a single best-first tree traversal
    serving the whole chunk, with the k DP columns laid out
    structure-of-arrays in one column-arena slot. Per-query hit streams
    are bit-identical to single-engine runs (the kernel's replay layer
    guarantees it; property tests gate it), so fusion is purely a
    performance choice. Chunks of one query ride the committed
    single-query engine directly, keeping the benchmarked kernel
    baseline untouched.

    Once built, the suffix tree is immutable, so any number of chunk
    searches can traverse it concurrently; a query workload (the paper
    evaluates 100 ProClass motifs, §4.1) parallelizes trivially. Only
    the in-memory source is offered here — the disk engine shares one
    buffer pool, which is deliberately not thread-safe (a single clock
    hand, like the paper's). The CLI's disk batch path runs one fused
    {!Batch_kernel.Disk} search single-threaded instead, which is where
    fusion pays most: each page is pinned and decoded once for the
    whole batch. *)

type result = {
  query_index : int;
  hits : Hit.t list;
  counters : Engine.counters;
      (** for a fused chunk: the query's {e virtual} counters — the
          work its single-engine run would have done (pool/io/alloc
          fields zero, those are shared physics); for a chunk of one:
          the engine's full counters *)
  outcome : Engine.outcome;
}

val run :
  ?domains:int ->
  ?pool:Domain_pool.t ->
  ?batch_size:int ->
  ?filter:Quasar.Profile.t ->
  tree:Suffix_tree.Tree.t ->
  db:Bioseq.Database.t ->
  queries:Bioseq.Sequence.t list ->
  Engine.config ->
  result list
(** Search every query, returning results in query order. One task per
    {e chunk} on a {!Domain_pool}; [batch_size] (default 16, max 512)
    sets the fusion width — [1] recovers the independent-engines
    behaviour exactly. [pool] reuses a caller's pool (e.g. shared with
    a {!Parallel} search); otherwise [domains] (default 1) sizes a
    private one, with [domains = 1] running inline. Results are
    identical regardless of [domains]/[pool]/[batch_size] (checked by
    tests). [filter] arms every chunk's q-gram settle tier (see
    {!Batch_kernel.S.create}); streams and counters are unchanged by
    it. *)

val totals : result list -> Counters.t
(** Aggregate batch counters with {!Counters.merge} — work counters
    sum, pool gauges take the max instead of double-counting. *)

(** {2 Merging per-shard batch results}

    Helpers for composing fused chunks with sharded or multi-part
    sources: run one fused search per shard/part, globalize each hit
    stream, then merge per query. *)

val merge_streams : Hit.t list array -> Hit.t list
(** Merge complete per-part streams (each already sorted by
    non-increasing score) into one stream, releasing equal scores from
    the lowest-indexed part first — the sharded coordinator's release
    order ({!Parallel}) specialised to complete streams, so a batch
    over shards reports hits in the same order as the online sharded
    search. *)

val merge_outcomes : Engine.outcome array -> Engine.outcome
(** Aggregate per-part outcomes: any [Exhausted] wins (with the max
    remaining bound), then [Searching], else [Complete]. *)
