let neg_inf = Scoring.Submat.neg_inf

type part =
  | Mem of {
      tree : Suffix_tree.Tree.t;
      db : Bioseq.Database.t;
      first_seq : int;
    }
  | Disk of {
      tree : Storage.Disk_tree.t;
      db : Bioseq.Database.t;
      first_seq : int;
    }

(* One engine behind a uniform face: the part list mixes disk segments
   and the in-memory tail, so the per-part engines are packed as closure
   records instead of a functor instantiation. *)
type engine = {
  e_next : unit -> Hit.t option;
  e_frontier_bound : unit -> int;
  e_counters : unit -> Counters.t;
  e_outcome : unit -> Engine.outcome;
}

type slot = {
  index : int;
  piece : Shard.piece;
  engine : engine;
  mutable head : Hit.t option; (* next hit, globalized, not yet released *)
  mutable bound : int; (* admissible bound on everything unseen *)
  mutable done_ : bool;
  mutable outcome : Engine.outcome; (* meaningful once done_ *)
}

type t = { slots : slot array; mutable drained : bool }

let part_db = function Mem { db; _ } | Disk { db; _ } -> db
let part_first_seq = function
  | Mem { first_seq; _ } | Disk { first_seq; _ } -> first_seq

let make_engine part ?filter ~query config =
  match part with
  | Mem { tree; db; _ } ->
    let e = Engine.Mem.create ?filter ~source:tree ~db ~query config in
    {
      e_next = (fun () -> Engine.Mem.next e);
      e_frontier_bound = (fun () -> Engine.Mem.frontier_bound e);
      e_counters = (fun () -> Engine.Mem.counters e);
      e_outcome = (fun () -> Engine.Mem.outcome e);
    }
  | Disk { tree; db; _ } ->
    let e = Engine.Disk.create ?filter ~source:tree ~db ~query config in
    {
      e_next = (fun () -> Engine.Disk.next e);
      e_frontier_bound = (fun () -> Engine.Disk.frontier_bound e);
      e_counters = (fun () -> Engine.Disk.counters e);
      e_outcome = (fun () -> Engine.Disk.outcome e);
    }

let create ?profiles ~parts ~query (config : Engine.config) =
  let n = Array.length parts in
  if n = 0 then invalid_arg "Multi.create: no parts";
  (match profiles with
  | Some p when Array.length p <> n ->
    invalid_arg "Multi.create: profiles/parts length mismatch"
  | _ -> ());
  (* Per-part q-gram state: engine filter plus the admissible
     whole-part score cap tightening the slot's initial merge bound. *)
  let filters = Array.make n None in
  let caps = Array.make n max_int in
  (match profiles with
  | None -> ()
  | Some p ->
    Array.iteri
      (fun i prof ->
        match prof with
        | None -> ()
        | Some profile ->
          let f =
            Qgram.make ~profile ~query ~matrix:config.Engine.matrix
              ~gap:config.Engine.gap
          in
          if Qgram.enabled f then begin
            filters.(i) <- Some profile;
            caps.(i) <- Qgram.shard_cap f
          end)
      p);
  let firsts = Array.map part_first_seq parts in
  Array.iteri
    (fun i f ->
      if i > 0 && f <= firsts.(i - 1) then
        invalid_arg "Multi.create: parts not in sequence order")
    firsts;
  let weights =
    Array.map
      (fun p -> max 1 (Bioseq.Database.total_symbols (part_db p)))
      parts
  in
  let b = config.Engine.budget in
  let columns = Parallel.split_limit weights b.Engine.max_columns in
  let expanded = Parallel.split_limit weights b.Engine.max_expanded in
  let slots =
    Array.mapi
      (fun i part ->
        let config =
          {
            config with
            Engine.budget =
              {
                Engine.max_columns = columns.(i);
                max_expanded = expanded.(i);
                time_limit = b.Engine.time_limit;
              };
          }
        in
        let engine = make_engine part ?filter:filters.(i) ~query config in
        {
          index = i;
          piece =
            { Shard.db = part_db part; first_seq = part_first_seq part };
          engine;
          head = None;
          bound = min (engine.e_frontier_bound ()) caps.(i);
          done_ = false;
          outcome = Engine.Searching;
        })
      parts
  in
  { slots; drained = false }

let num_parts t = Array.length t.slots

(* Pull one hit from a slot into its buffer (or discover it finished).
   Unlike the multicore merge, which waits for worker pushes, the
   sequential merge advances the specific engine whose bound blocks the
   release — this is what makes the interleaving deterministic. *)
let fill slot =
  if slot.head = None && not slot.done_ then begin
    match slot.engine.e_next () with
    | Some h ->
      slot.head <- Some (Shard.globalize slot.piece h);
      (* frontier_bound is already <= h.score after the pop; the min is
         belt and braces for the merge invariant. *)
      slot.bound <- min (slot.engine.e_frontier_bound ()) h.Hit.score
    | None ->
      slot.done_ <- true;
      slot.bound <- neg_inf;
      slot.outcome <- slot.engine.e_outcome ()
  end

let head_score slot =
  match slot.head with Some h -> h.Hit.score | None -> neg_inf

(* Same release rule as the multicore merge: candidate = max buffered
   head (lowest part index on ties); safe iff every other part that
   could still produce something satisfies s > bound_j, or s = bound_j
   with j on the losing side (> i) of the tie order. The first blocking
   part is advanced and the rule re-evaluated. *)
let next t =
  let rec loop () =
    let best = ref (-1) in
    Array.iteri
      (fun i s ->
        if s.head <> None then
          if !best < 0 || head_score s > head_score t.slots.(!best) then
            best := i)
      t.slots;
    match !best with
    | -1 -> (
      match
        Array.find_opt (fun s -> (not s.done_) && s.head = None) t.slots
      with
      | Some s ->
        fill s;
        loop ()
      | None ->
        t.drained <- true;
        None)
    | i -> (
      let s = head_score t.slots.(i) in
      let blocking = ref None in
      Array.iteri
        (fun j sh ->
          if
            !blocking = None && j <> i
            && (not sh.done_)
            && sh.head = None
            && not (s > sh.bound || (s = sh.bound && j > i))
          then blocking := Some sh)
        t.slots;
      match !blocking with
      | Some sh ->
        fill sh;
        loop ()
      | None ->
        let h = t.slots.(i).head in
        t.slots.(i).head <- None;
        h)
  in
  loop ()

let run ?limit t =
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match next t with
      | None -> List.rev acc
      | Some h -> go (h :: acc) (n - 1)
  in
  go [] (match limit with None -> -1 | Some l -> l)

let peek_bound t =
  let b =
    Array.fold_left
      (fun acc s ->
        let sb =
          if s.head <> None then head_score s
          else if s.done_ then neg_inf
          else s.bound
        in
        max acc sb)
      neg_inf t.slots
  in
  if b = neg_inf then None else Some b

let outcome t =
  if
    (not t.drained)
    && Array.exists (fun s -> (not s.done_) || s.head <> None) t.slots
  then Engine.Searching
  else
    let bound =
      Array.fold_left
        (fun acc s ->
          match s.outcome with
          | Engine.Exhausted { remaining_bound } -> max acc remaining_bound
          | _ -> acc)
        neg_inf t.slots
    in
    if bound > neg_inf then Engine.Exhausted { remaining_bound = bound }
    else if
      Array.exists
        (fun s ->
          match s.outcome with Engine.Exhausted _ -> true | _ -> false)
        t.slots
    then Engine.Exhausted { remaining_bound = neg_inf }
    else Engine.Complete

let counters t =
  Counters.sum
    (Array.to_list (Array.map (fun s -> s.engine.e_counters ()) t.slots))

let parts_of_snapshot (snapshot : Storage.Live_index.snapshot) =
  Array.of_list
    (List.map
       (function
         | Storage.Live_index.Disk_part { tree; db; first_seq } ->
           Disk { tree; db; first_seq }
         | Storage.Live_index.Mem_part { tree; db; first_seq } ->
           Mem { tree; db; first_seq })
       snapshot.Storage.Live_index.parts)
