(** Maximum priority queue (binary heap) for search nodes.

    Ordered by decreasing [priority]; equal priorities break by
    increasing [tie] (the engine uses [tie = 0] for accepted nodes and
    [1] for viable nodes, so exact scores surface before equal upper
    bounds); remaining ties break by insertion order (FIFO), keeping the
    search deterministic.

    The heap is a structure of arrays — flat [int] arrays for priorities
    and packed tie/insertion-order keys, one parallel array for values —
    so push and pop allocate nothing; array growth is amortized. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> priority:int -> ?tie:int -> 'a -> unit
(** [tie] defaults to [1] and must lie in [\[0, 256)] (it is packed
    above the insertion counter in one machine word); raises
    [Invalid_argument] otherwise. *)

val push_tie : 'a t -> priority:int -> tie:int -> 'a -> unit
(** {!push} with a required [tie] — no option box is built, which keeps
    the engine's enqueue path allocation-free (the value itself is the
    only allocation the caller pays). *)

val pop : 'a t -> (int * 'a) option
(** Highest priority first; returns [(priority, value)]. *)

val peek_priority : 'a t -> int option
