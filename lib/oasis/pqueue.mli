(** Maximum priority queue (binary heap) for search nodes.

    Ordered by decreasing [priority]; equal priorities break by
    increasing [tie] (the engine uses [tie = 0] for accepted nodes and
    [1] for viable nodes, so exact scores surface before equal upper
    bounds); remaining ties break by insertion order (FIFO), keeping the
    search deterministic.

    The heap is a structure of arrays — flat [int] arrays for priorities
    and packed tie/insertion-order keys, one parallel array for values —
    so push and pop allocate nothing; array growth is amortized. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val clear : 'a t -> unit
(** Empty the queue and restart the FIFO insertion counter, keeping the
    allocated capacity — an engine session reuses one heap across
    queries. Popped-but-retained slots may still reference previously
    pushed values until overwritten; the engine's session reuse always
    re-pushes before reading, so nothing observes them. *)

val push : 'a t -> priority:int -> ?tie:int -> 'a -> unit
(** [tie] defaults to [1] and must lie in [\[0, 256)] (it is packed
    above the insertion counter in one machine word); raises
    [Invalid_argument] otherwise. *)

val push_tie : 'a t -> priority:int -> tie:int -> 'a -> unit
(** {!push} with a required [tie] — no option box is built, which keeps
    the engine's enqueue path allocation-free (the value itself is the
    only allocation the caller pays). *)

val pop : 'a t -> (int * 'a) option
(** Highest priority first; returns [(priority, value)]. *)

val peek_priority : 'a t -> int option

val top : 'a t -> 'a
(** The root's value without an option or tuple box — the fused batch
    kernel's replay loop peeks and pops hundreds of thousands of times
    per search, so the boxed {!peek}/{!pop} pair would put real pressure
    on the minor heap. Raises [Invalid_argument] when empty. *)

val top_priority_exn : 'a t -> int
(** The root's priority, unboxed. Raises [Invalid_argument] when
    empty. *)

val drop : 'a t -> unit
(** Remove the root ({!pop} without the result). Raises
    [Invalid_argument] when empty. *)

val peek : 'a t -> (int * 'a) option
(** The element {!pop} would return, without removing it. The fused
    batch kernel peeks each query's virtual queue to decide whether its
    head is consumable or blocks on a not-yet-expanded tree node — a
    pop would commit to an order the caller may not be able to honor
    yet. *)

(** Same queue discipline specialized to immediate [int] values. The
    generic heap's polymorphic value array pays a [caml_modify] write
    barrier on every element move during sifting (~log n moves per
    push/pop); with ints those moves are raw stores. The fused batch
    kernel keeps its replay facts in flat side arenas and pushes packed
    int handles here — hundreds of thousands of queue operations per
    search with zero allocation and zero barrier traffic. *)
module Int : sig
  type t

  val create : unit -> t
  val is_empty : t -> bool
  val length : t -> int

  val push_tie : t -> priority:int -> tie:int -> int -> unit
  (** Same ordering contract as the polymorphic {!push_tie}: decreasing
      [priority], then increasing [tie] (must lie in [\[0, 256)]), then
      insertion order. *)

  val top : t -> int
  (** The root's value. Raises [Invalid_argument] when empty. *)

  val top_priority_exn : t -> int
  (** The root's priority. Raises [Invalid_argument] when empty. *)

  val peek_priority : t -> int option

  val drop : t -> unit
  (** Remove the root. Raises [Invalid_argument] when empty. *)
end
