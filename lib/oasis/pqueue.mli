(** Maximum priority queue (binary heap) for search nodes.

    Ordered by decreasing [priority]; equal priorities break by
    increasing [tie] (the engine uses [tie = 0] for accepted nodes and
    [1] for viable nodes, so exact scores surface before equal upper
    bounds); remaining ties break by insertion order (FIFO), keeping the
    search deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> priority:int -> ?tie:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Highest priority first; returns [(priority, value)]. *)

val peek_priority : 'a t -> int option
