type t = {
  mutable width : int;
  mutable data : int array; (* cap * width cells *)
  mutable cap : int; (* slots allocated in [data] *)
  mutable next_fresh : int; (* slots in [0, next_fresh) have been handed out *)
  mutable free : int array; (* LIFO free stack in free.(0 .. free_top-1) *)
  mutable free_top : int;
  mutable live : int;
  mutable peak_live : int;
  mutable reused : int;
  mutable acquired : int;
}

let create ~width =
  if width <= 0 then invalid_arg "Col_pool.create: width must be positive";
  {
    width;
    data = [||];
    cap = 0;
    next_fresh = 0;
    free = [||];
    free_top = 0;
    live = 0;
    peak_live = 0;
    reused = 0;
    acquired = 0;
  }

let width t = t.width
let data t = t.data
let base t slot = slot * t.width

let grow t =
  let ncap = max 8 (2 * t.cap) in
  let ndata = Array.make (ncap * t.width) 0 in
  Array.blit t.data 0 ndata 0 (t.cap * t.width);
  t.data <- ndata;
  t.cap <- ncap

let reset t ~width =
  if width <= 0 then invalid_arg "Col_pool.reset: width must be positive";
  t.width <- width;
  (* Re-slot the existing backing store at the new width; no live slot
     survives a reset, so re-slicing the same cells is safe. *)
  t.cap <- Array.length t.data / width;
  t.next_fresh <- 0;
  t.free_top <- 0;
  t.live <- 0;
  t.peak_live <- 0;
  t.reused <- 0;
  t.acquired <- 0

let reserve t slots =
  if slots > t.cap then begin
    let ndata = Array.make (slots * t.width) 0 in
    Array.blit t.data 0 ndata 0 (t.cap * t.width);
    t.data <- ndata;
    t.cap <- slots
  end

(* Guarantee the next [n] acquisitions reuse or slice the current
   backing store without growing it. The blocked engine calls this once
   per sibling block so it can hoist [data t] (and the parent's offset)
   out of the per-child loop: [grow] replaces the array, which would
   invalidate the hoisted pointer mid-block. *)
let ensure_free t n =
  let avail = t.free_top + (t.cap - t.next_fresh) in
  if avail < n then begin
    let need = t.next_fresh + (n - t.free_top) in
    let ncap = max need (max 8 (2 * t.cap)) in
    let ndata = Array.make (ncap * t.width) 0 in
    Array.blit t.data 0 ndata 0 (t.cap * t.width);
    t.data <- ndata;
    t.cap <- ncap
  end

let acquire t =
  t.acquired <- t.acquired + 1;
  t.live <- t.live + 1;
  if t.live > t.peak_live then t.peak_live <- t.live;
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.reused <- t.reused + 1;
    t.free.(t.free_top)
  end
  else begin
    if t.next_fresh = t.cap then grow t;
    let slot = t.next_fresh in
    t.next_fresh <- t.next_fresh + 1;
    slot
  end

let release t slot =
  if slot < 0 || slot >= t.next_fresh then
    invalid_arg "Col_pool.release: slot was never acquired";
  if t.free_top = Array.length t.free then begin
    let ncap = max 8 (2 * Array.length t.free) in
    let nfree = Array.make ncap 0 in
    Array.blit t.free 0 nfree 0 t.free_top;
    t.free <- nfree
  end;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.live <- t.live - 1

let blit t ~src ~dst =
  Array.blit t.data (src * t.width) t.data (dst * t.width) t.width

let fill t slot v = Array.fill t.data (slot * t.width) t.width v
let live t = t.live
let peak_live t = t.peak_live
let reused t = t.reused
let acquired t = t.acquired
let capacity_bytes t = t.cap * t.width * (Sys.word_size / 8)
