(** Long-query acceleration (the paper's §6 "improve the performance of
    OASIS for answering long queries" future work).

    OASIS's advantage shrinks as queries grow (Figures 3/4): the A*
    frontier widens until most of the database is expanded. This module
    implements an {e exact} filter-and-refine strategy: split the query
    into [segments] consecutive pieces, run an OASIS search per piece
    with a proportionally lowered threshold, union the candidate
    sequences, and verify only those with a full Smith-Waterman pass.

    Correctness: split any alignment of score [s] at the segment
    boundaries of the query. Under a linear gap model the piece scores
    sum to [s] (a split gap run costs the same in two parts), so some
    piece scores at least [s / k]; under an affine model splitting a run
    re-pays the opening difference, costing at most
    [(k - 1) * (open - extend)] in total. Hence searching every segment
    at threshold [(min_score - slack) / k] (rounded up, floored at 1)
    finds a candidate for every sequence OASIS would report, and the
    verification pass restores exact scores — the hit set equals
    {!Engine}'s. The result is batch rather than online. *)

type stats = {
  segment_columns : int;  (** DP columns spent by the segment searches *)
  verify_columns : int;  (** columns spent verifying candidates *)
  candidates : int;  (** sequences that survived the filter *)
}

module Make (S : Source.S) : sig
  val search :
    source:S.t ->
    db:Bioseq.Database.t ->
    query:Bioseq.Sequence.t ->
    segments:int ->
    Engine.config ->
    Hit.t list * stats
  (** The same hit set as [Engine.run] with the same config, sorted by
      decreasing score (ties by sequence index). [segments >= 1];
      [segments = 1] degenerates to a plain engine run followed by
      per-candidate verification. *)
end

module Mem : module type of Make (Source.Mem)
module Disk : module type of Make (Source.Disk)
