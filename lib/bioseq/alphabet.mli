(** Symbol alphabets for biological (and other) sequences.

    An alphabet maps a set of characters to small integer codes
    [0 .. size-1]. Code [size] is reserved for the sequence terminator
    used by generalized suffix trees and concatenated databases; it is
    never produced by {!encode_char} and scores [-infinity] against
    everything in a substitution matrix. *)

type t

(** {1 Construction} *)

val make : name:string -> symbols:string -> t
(** [make ~name ~symbols] builds an alphabet whose [i]-th character in
    [symbols] has code [i]. Decoding is case-insensitive. Raises
    [Invalid_argument] if [symbols] contains a duplicate (up to case) or
    is empty. *)

val dna : t
(** [ACGT] plus the ambiguity code [N]. *)

val protein : t
(** The 20 standard amino acids in NCBI order ([ARNDCQEGHILKMFPSTWYV])
    plus the ambiguity codes [B], [Z], [X] and the stop symbol [*]. *)

(** {1 Accessors} *)

val name : t -> string

val size : t -> int
(** Number of real symbols (terminator excluded). *)

val terminator : t -> int
(** The reserved terminator code, equal to [size t]. *)

val to_char : t -> int -> char
(** [to_char a code] is the canonical character for [code]. The
    terminator prints as ['$']. Raises [Invalid_argument] on other
    out-of-range codes. *)

val of_char : t -> char -> int option
(** [of_char a c] is the code for [c], case-insensitively, or [None] if
    [c] is not in the alphabet. *)

val of_char_exn : t -> char -> int
(** Like {!of_char} but raises [Invalid_argument] with a descriptive
    message for unknown characters. *)

val mem : t -> char -> bool

(** {1 String conversions} *)

val encode : t -> string -> bytes
(** [encode a s] encodes every character of [s]; raises
    [Invalid_argument] on the first unknown character. *)

val decode : t -> bytes -> string
(** Inverse of {!encode}; terminator codes decode to ['$']. *)

val pp : Format.formatter -> t -> unit
