exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let split_header line_no line =
  (* [line] starts with '>'; split identifier from description. *)
  let body = String.sub line 1 (String.length line - 1) in
  let body = String.trim body in
  if body = "" then fail line_no "empty FASTA header"
  else
    match String.index_opt body ' ' with
    | None -> (body, "")
    | Some i ->
      ( String.sub body 0 i,
        String.trim (String.sub body (i + 1) (String.length body - i - 1)) )

let parse_lines ~alphabet lines =
  let finish id description buf acc line_no =
    match id with
    | None -> acc
    | Some id ->
      if Buffer.length buf = 0 then fail line_no "sequence %S has no residues" id
      else
        Sequence.make ~alphabet ~id ~description (Buffer.contents buf) :: acc
  in
  let rec go lines line_no id description buf acc =
    match lines with
    | [] -> List.rev (finish id description buf acc line_no)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || (String.length line > 0 && line.[0] = ';') then
        go rest (line_no + 1) id description buf acc
      else if line.[0] = '>' then begin
        let acc = finish id description buf acc line_no in
        let new_id, new_description = split_header line_no line in
        Buffer.clear buf;
        go rest (line_no + 1) (Some new_id) new_description buf acc
      end
      else begin
        if id = None then fail line_no "sequence data before any '>' header";
        String.iter
          (fun c ->
            if not (Alphabet.mem alphabet c) then
              fail line_no "character %C not in alphabet %s" c
                (Alphabet.name alphabet))
          line;
        Buffer.add_string buf line;
        go rest (line_no + 1) id description buf acc
      end
  in
  go lines 1 None "" (Buffer.create 256) []

let parse_string ~alphabet text =
  parse_lines ~alphabet (String.split_on_char '\n' text)

let read_file ~alphabet path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~alphabet text

let to_string ?(width = 70) seqs =
  if width <= 0 then invalid_arg "Fasta.to_string: width must be positive";
  let buf = Buffer.create 4096 in
  let emit s =
    Buffer.add_char buf '>';
    Buffer.add_string buf (Sequence.id s);
    if Sequence.description s <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Sequence.description s)
    end;
    Buffer.add_char buf '\n';
    let text = Sequence.to_string s in
    let n = String.length text in
    let rec wrap pos =
      if pos < n then begin
        let len = min width (n - pos) in
        Buffer.add_substring buf text pos len;
        Buffer.add_char buf '\n';
        wrap (pos + len)
      end
    in
    wrap 0
  in
  List.iter emit seqs;
  Buffer.contents buf

let write_file ?width path seqs =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?width seqs))
