(** A sequence database: the concatenation of many sequences over one
    alphabet, each followed by a terminator code.

    Layout: [seq_0 $ seq_1 $ ... seq_{n-1} $] where [$] is
    [Alphabet.terminator]. Global positions index this concatenation;
    suffix trees and the OASIS search operate on global positions, and
    this module maps them back to (sequence, offset) pairs. *)

type t

val make : Sequence.t list -> t
(** Raises [Invalid_argument] if the list is empty or the sequences do
    not share one alphabet. *)

val append : t -> Sequence.t list -> t
(** [append db extra] is the database holding [db]'s sequences followed
    by [extra]. The concatenation layout is deterministic, so every
    global position of [db] denotes the same symbol in the result — the
    property incremental index updates ({!Suffix_tree}'s
    [Ukkonen.extend]) rely on.

    Cost is amortized O(length of [extra]) along a linear append
    history: the concatenation buffer carries doubling slack and is
    extended in place when [db] is the newest view of it (both results
    then share one buffer, which is what lets [Ukkonen.extend] keep the
    old tree's positions valid). Appending to an {e older} view falls
    back to one copy of the prefix, so the value semantics stay
    persistent. Raises [Invalid_argument] on an empty list or an
    alphabet mismatch. *)

val alphabet : t -> Alphabet.t

val num_sequences : t -> int

val total_symbols : t -> int
(** Sum of sequence lengths, terminators excluded. *)

val data_length : t -> int
(** Length of the concatenation, terminators included
    ([total_symbols + num_sequences]). *)

val code : t -> int -> int
(** [code db pos] is the symbol code at global position [pos]
    (possibly the terminator). *)

val data : t -> bytes
(** The raw concatenation buffer (read-only). Its physical length may
    exceed {!data_length} — {!append} keeps growth slack past the real
    concatenation — so bound every scan with [data_length db], never
    [Bytes.length (data db)]. *)

val seq : t -> int -> Sequence.t
(** [seq db i] is the [i]-th sequence. *)

val seq_start : t -> int -> int
(** Global position of the first symbol of sequence [i]. *)

val seq_of_pos : t -> int -> int
(** [seq_of_pos db pos] is the index of the sequence whose region
    (including its terminator) contains global position [pos]. *)

val to_local : t -> int -> int * int
(** [to_local db pos] is [(i, off)] such that [pos = seq_start db i + off]. *)

val pp : Format.formatter -> t -> unit
