type t = {
  name : string;
  symbols : string;
  (* code for every byte value, -1 when the character is not in the
     alphabet; indexed by [Char.code]. *)
  codes : int array;
}

let make ~name ~symbols =
  if String.length symbols = 0 then invalid_arg "Alphabet.make: empty symbols";
  let codes = Array.make 256 (-1) in
  String.iteri
    (fun i c ->
      let lo = Char.lowercase_ascii c and up = Char.uppercase_ascii c in
      if codes.(Char.code lo) >= 0 || codes.(Char.code up) >= 0 then
        invalid_arg (Printf.sprintf "Alphabet.make: duplicate symbol %C" c);
      codes.(Char.code lo) <- i;
      codes.(Char.code up) <- i)
    symbols;
  { name; symbols; codes }

let dna = make ~name:"dna" ~symbols:"ACGTN"
let protein = make ~name:"protein" ~symbols:"ARNDCQEGHILKMFPSTWYVBZX*"
let name a = a.name
let size a = String.length a.symbols
let terminator a = size a

let to_char a code =
  if code >= 0 && code < size a then a.symbols.[code]
  else if code = terminator a then '$'
  else invalid_arg (Printf.sprintf "Alphabet.to_char: code %d" code)

let of_char a c =
  let code = a.codes.(Char.code c) in
  if code < 0 then None else Some code

let of_char_exn a c =
  match of_char a c with
  | Some code -> code
  | None ->
    invalid_arg
      (Printf.sprintf "Alphabet.of_char_exn: %C not in alphabet %s" c a.name)

let mem a c = a.codes.(Char.code c) >= 0

let encode a s =
  let b = Bytes.create (String.length s) in
  String.iteri (fun i c -> Bytes.set b i (Char.chr (of_char_exn a c))) s;
  b

let decode a b =
  String.init (Bytes.length b) (fun i -> to_char a (Char.code (Bytes.get b i)))

let pp ppf a = Format.fprintf ppf "%s(%s)" a.name a.symbols
