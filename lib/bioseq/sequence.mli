(** A named biological sequence, stored in encoded form.

    The payload is a byte string of alphabet codes (see {!Alphabet});
    the terminator code never appears inside a sequence. *)

type t

val make : alphabet:Alphabet.t -> id:string -> ?description:string -> string -> t
(** [make ~alphabet ~id ?description text] encodes [text]. Raises
    [Invalid_argument] if [text] contains a character outside
    [alphabet]. *)

val of_codes : alphabet:Alphabet.t -> id:string -> ?description:string -> bytes -> t
(** Wraps an already-encoded payload. Raises [Invalid_argument] if any
    byte is not a valid (non-terminator) code. The bytes are copied. *)

val id : t -> string
val description : t -> string
val alphabet : t -> Alphabet.t
val length : t -> int

val get : t -> int -> int
(** [get s i] is the code of the [i]-th symbol (0-based). *)

val char_at : t -> int -> char

val codes : t -> bytes
(** The raw encoded payload (not a copy; treat as read-only). *)

val to_string : t -> string
(** Decoded text. *)

val sub : t -> pos:int -> len:int -> t
(** [sub s ~pos ~len] is the subsequence, with id ["<id>[pos,pos+len)"]. *)

val equal : t -> t -> bool
(** Payload and id equality. *)

val pp : Format.formatter -> t -> unit
