type t = {
  alphabet : Alphabet.t;
  id : string;
  description : string;
  data : bytes;
}

let make ~alphabet ~id ?(description = "") text =
  { alphabet; id; description; data = Alphabet.encode alphabet text }

let of_codes ~alphabet ~id ?(description = "") data =
  let n = Alphabet.size alphabet in
  Bytes.iter
    (fun c ->
      if Char.code c >= n then
        invalid_arg
          (Printf.sprintf "Sequence.of_codes: invalid code %d" (Char.code c)))
    data;
  { alphabet; id; description; data = Bytes.copy data }

let id s = s.id
let description s = s.description
let alphabet s = s.alphabet
let length s = Bytes.length s.data
let get s i = Char.code (Bytes.get s.data i)
let char_at s i = Alphabet.to_char s.alphabet (get s i)
let codes s = s.data
let to_string s = Alphabet.decode s.alphabet s.data

let sub s ~pos ~len =
  {
    s with
    id = Printf.sprintf "%s[%d,%d)" s.id pos (pos + len);
    data = Bytes.sub s.data pos len;
  }

let equal a b = String.equal a.id b.id && Bytes.equal a.data b.data

let pp ppf s =
  let preview =
    if length s <= 40 then to_string s
    else String.sub (to_string s) 0 37 ^ "..."
  in
  Format.fprintf ppf ">%s (%d) %s" s.id (length s) preview
