(** FASTA reading and writing.

    The parser accepts the common dialect: header lines start with ['>']
    followed by an identifier and an optional description separated by
    whitespace; sequence lines may be wrapped at any width; blank lines
    and [';'] comment lines are ignored; characters outside the alphabet
    are an error reported with a line number. *)

exception Parse_error of { line : int; message : string }

val parse_string : alphabet:Alphabet.t -> string -> Sequence.t list
(** Parse a whole FASTA document held in memory. Raises
    {!Parse_error}. *)

val read_file : alphabet:Alphabet.t -> string -> Sequence.t list
(** Parse a FASTA file from disk. Raises {!Parse_error} or [Sys_error]. *)

val to_string : ?width:int -> Sequence.t list -> string
(** Render sequences as FASTA; lines wrapped at [width] (default 70). *)

val write_file : ?width:int -> string -> Sequence.t list -> unit
