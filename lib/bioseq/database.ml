type t = {
  alphabet : Alphabet.t;
  sequences : Sequence.t array;
  starts : int array; (* global position of each sequence's first symbol *)
  data : bytes; (* concatenation with a terminator after each sequence *)
  total_symbols : int;
}

let make sequences =
  match sequences with
  | [] -> invalid_arg "Database.make: empty sequence list"
  | first :: _ ->
    let alphabet = Sequence.alphabet first in
    List.iter
      (fun s ->
        if Alphabet.name (Sequence.alphabet s) <> Alphabet.name alphabet then
          invalid_arg "Database.make: sequences use different alphabets")
      sequences;
    let sequences = Array.of_list sequences in
    let n = Array.length sequences in
    let total_symbols =
      Array.fold_left (fun acc s -> acc + Sequence.length s) 0 sequences
    in
    let data = Bytes.create (total_symbols + n) in
    let starts = Array.make n 0 in
    let term = Char.chr (Alphabet.terminator alphabet) in
    let pos = ref 0 in
    Array.iteri
      (fun i s ->
        starts.(i) <- !pos;
        let len = Sequence.length s in
        Bytes.blit (Sequence.codes s) 0 data !pos len;
        Bytes.set data (!pos + len) term;
        pos := !pos + len + 1)
      sequences;
    { alphabet; sequences; starts; data; total_symbols }

let append db extra =
  make (Array.to_list db.sequences @ extra)

let alphabet db = db.alphabet
let num_sequences db = Array.length db.sequences
let total_symbols db = db.total_symbols
let data_length db = Bytes.length db.data
let code db pos = Char.code (Bytes.get db.data pos)
let data db = db.data
let seq db i = db.sequences.(i)
let seq_start db i = db.starts.(i)

let seq_of_pos db pos =
  if pos < 0 || pos >= data_length db then
    invalid_arg (Printf.sprintf "Database.seq_of_pos: position %d" pos);
  (* Largest i with starts.(i) <= pos. *)
  let rec search lo hi =
    if lo = hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if db.starts.(mid) <= pos then search mid hi else search lo (mid - 1)
  in
  search 0 (Array.length db.starts - 1)

let to_local db pos =
  let i = seq_of_pos db pos in
  (i, pos - db.starts.(i))

let pp ppf db =
  Format.fprintf ppf "database(%s, %d sequences, %d symbols)"
    (Alphabet.name db.alphabet) (num_sequences db) db.total_symbols
