(* The concatenation lives in a buffer that may carry growth slack past
   [used] (amortized-O(extra) appends): every consumer must bound its
   scans with [data_length], never [Bytes.length (data db)].

   Appending in place is only safe for the *newest* view of a buffer:
   [tail] is shared by every view of one buffer and records the [used]
   of the view that owns the slack. [append] on an older view (or a
   foreign branch of the same history) falls back to copying, so the
   value semantics are persistent even though the fast path mutates. *)

type t = {
  alphabet : Alphabet.t;
  sequences : Sequence.t array;
  starts : int array; (* global position of each sequence's first symbol *)
  data : bytes; (* concatenation with a terminator after each sequence *)
  used : int; (* bytes of [data] holding real concatenation *)
  total_symbols : int;
  tail : int ref; (* shared per buffer: [used] of the newest view *)
}

let check_alphabet ~who alphabet s =
  if Alphabet.name (Sequence.alphabet s) <> Alphabet.name alphabet then
    invalid_arg (who ^ ": sequences use different alphabets")

(* Write [seqs] (each followed by a terminator) into [data] starting at
   [pos], recording their start offsets into [starts] from [seq_idx]. *)
let blit_sequences ~alphabet ~data ~starts ~seq_idx ~pos seqs =
  let term = Char.chr (Alphabet.terminator alphabet) in
  let pos = ref pos and idx = ref seq_idx in
  List.iter
    (fun s ->
      starts.(!idx) <- !pos;
      let len = Sequence.length s in
      Bytes.blit (Sequence.codes s) 0 data !pos len;
      Bytes.set data (!pos + len) term;
      pos := !pos + len + 1;
      incr idx)
    seqs;
  !pos

let make sequences =
  match sequences with
  | [] -> invalid_arg "Database.make: empty sequence list"
  | first :: _ ->
    let alphabet = Sequence.alphabet first in
    List.iter (check_alphabet ~who:"Database.make" alphabet) sequences;
    let n = List.length sequences in
    let total_symbols =
      List.fold_left (fun acc s -> acc + Sequence.length s) 0 sequences
    in
    let used = total_symbols + n in
    let data = Bytes.create used in
    let starts = Array.make n 0 in
    let final = blit_sequences ~alphabet ~data ~starts ~seq_idx:0 ~pos:0 sequences in
    assert (final = used);
    {
      alphabet;
      sequences = Array.of_list sequences;
      starts;
      data;
      used;
      total_symbols;
      tail = ref used;
    }

let append db extra =
  if extra = [] then invalid_arg "Database.append: empty sequence list";
  List.iter (check_alphabet ~who:"Database.append" db.alphabet) extra;
  let n = Array.length db.sequences and k = List.length extra in
  let added_symbols =
    List.fold_left (fun acc s -> acc + Sequence.length s) 0 extra
  in
  let needed = added_symbols + k in
  let starts = Array.make (n + k) 0 in
  Array.blit db.starts 0 starts 0 n;
  let sequences = Array.make (n + k) db.sequences.(0) in
  Array.blit db.sequences 0 sequences 0 n;
  List.iteri (fun i s -> sequences.(n + i) <- s) extra;
  let data, tail =
    if !(db.tail) = db.used && Bytes.length db.data - db.used >= needed then
      (* [db] is the newest view of its buffer and the slack fits: write
         the new sequences in place and advance the shared tail. Older
         views keep reading their own [used]-bounded prefix, which the
         in-place write never touches. *)
      (db.data, db.tail)
    else begin
      (* Older view, or out of slack: copy once into a doubled buffer.
         The single memcpy of the existing prefix keeps appends
         amortized O(appended length) along any linear history. *)
      let cap = max (db.used + needed) (2 * Bytes.length db.data) in
      let data = Bytes.create cap in
      Bytes.blit db.data 0 data 0 db.used;
      (data, ref db.used)
    end
  in
  let final =
    blit_sequences ~alphabet:db.alphabet ~data ~starts ~seq_idx:n ~pos:db.used
      extra
  in
  assert (final = db.used + needed);
  tail := db.used + needed;
  {
    db with
    sequences;
    starts;
    data;
    used = db.used + needed;
    total_symbols = db.total_symbols + added_symbols;
    tail;
  }

let alphabet db = db.alphabet
let num_sequences db = Array.length db.sequences
let total_symbols db = db.total_symbols
let data_length db = db.used
let code db pos = Char.code (Bytes.get db.data pos)
let data db = db.data
let seq db i = db.sequences.(i)
let seq_start db i = db.starts.(i)

let seq_of_pos db pos =
  if pos < 0 || pos >= data_length db then
    invalid_arg (Printf.sprintf "Database.seq_of_pos: position %d" pos);
  (* Largest i with starts.(i) <= pos. *)
  let rec search lo hi =
    if lo = hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if db.starts.(mid) <= pos then search mid hi else search lo (mid - 1)
  in
  search 0 (Array.length db.starts - 1)

let to_local db pos =
  let i = seq_of_pos db pos in
  (i, pos - db.starts.(i))

let pp ppf db =
  Format.fprintf ppf "database(%s, %d sequences, %d symbols)"
    (Alphabet.name db.alphabet) (num_sequences db) db.total_symbols
