(** Cutoff seeding for the exact engine (DESIGN.md §2k).

    A fast heuristic first pass can initialize the exact search's prune
    cutoff: every BLAST hit score is the score of a {e real} alignment
    in that sequence, so it lower-bounds the sequence's true optimum,
    and the k-th best of those lower bounds lower-bounds the true k-th
    best hit score. Raising [min_score] to that value is therefore
    {e monotone-safe} for a top-[k] consumer — the exact stream's first
    [k] hits are bit-identical (raising [min_score] only removes hits
    strictly below it, and the engine's emission order among surviving
    hits is unchanged), while the engine prunes against the tighter
    threshold from its very first expansion. *)

val kth_score : k:int -> Search.hit list -> int option
(** Score of the [k]-th best hit (1-based) of a BLAST result list
    (already sorted by decreasing score); [None] when fewer than [k]
    hits were found or [k < 1]. *)

val min_score :
  Search.config ->
  query:Bioseq.Sequence.t ->
  db:Bioseq.Database.t ->
  k:int ->
  floor:int ->
  int
(** [min_score cfg ~query ~db ~k ~floor] runs one {!Search.search} pass
    and returns [max floor s] where [s] is the k-th best hit score —
    the seeded prune cutoff for an exact top-[k] search that would
    otherwise start at [floor]. Returns [floor] when BLAST finds fewer
    than [k] hits (seeding never loosens the cutoff). *)
