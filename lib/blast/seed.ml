(* Cutoff seeding: the k-th best score of a heuristic first pass lower
   bounds the true k-th best hit score (each BLAST score is achieved by
   a real alignment), so it is a monotone-safe initial prune cutoff for
   an exact top-k search. *)

let kth_score ~k hits =
  if k < 1 then None
  else
    let rec go n = function
      | [] -> None
      | (h : Search.hit) :: rest -> if n = k then Some h.score else go (n + 1) rest
    in
    go 1 hits

let min_score cfg ~query ~db ~k ~floor =
  let hits, _stats = Search.search cfg ~query ~db in
  match kth_score ~k hits with
  | Some s when s > floor -> s
  | _ -> floor
