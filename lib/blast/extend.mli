(** Seed extension: X-drop ungapped extension and banded gapped
    extension, the BLAST refinement pipeline. *)

type ungapped = {
  score : int;
  query_start : int;
  query_stop : int;  (** exclusive *)
  target_start : int;  (** global database position *)
  target_stop : int;
}

val ungapped :
  matrix:Scoring.Submat.t ->
  x_drop:int ->
  query:Bioseq.Sequence.t ->
  data:bytes ->
  seq_lo:int ->
  seq_hi:int ->
  qpos:int ->
  tpos:int ->
  word:int ->
  ungapped
(** Extend the word hit [(qpos, tpos)] of length [word] left and right
    along the diagonal, within the sequence region [ [seq_lo, seq_hi) ),
    stopping a direction once the running score falls more than [x_drop]
    below the best seen. Terminator codes end extension (their matrix
    row is -inf). *)

type gapped = { score : int; columns : int }

val gapped :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  band:int ->
  query:Bioseq.Sequence.t ->
  data:bytes ->
  seq_lo:int ->
  seq_hi:int ->
  seed:ungapped ->
  gapped
(** Banded local DP around the seed's diagonal: the best local alignment
    score whose path stays within [band] diagonals of the seed, inside a
    target window of [2 * (query length + band)] symbols around the
    seed. [columns] counts DP columns filled (work accounting). *)
