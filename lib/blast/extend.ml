type ungapped = {
  score : int;
  query_start : int;
  query_stop : int;
  target_start : int;
  target_stop : int;
}

let ungapped ~matrix ~x_drop ~query ~data ~seq_lo ~seq_hi ~qpos ~tpos ~word =
  let m = Bioseq.Sequence.length query in
  let score_at qi ti =
    Scoring.Submat.score matrix (Bioseq.Sequence.get query qi)
      (Char.code (Bytes.get data ti))
  in
  (* Seed score: the word itself. *)
  let seed_score = ref 0 in
  for i = 0 to word - 1 do
    seed_score := !seed_score + score_at (qpos + i) (tpos + i)
  done;
  (* Extend right from the end of the word. *)
  let best_right = ref 0 and right = ref 0 in
  let rec go_right i running =
    let qi = qpos + word + i and ti = tpos + word + i in
    if qi >= m || ti >= seq_hi then ()
    else
      let running = running + score_at qi ti in
      if running > !best_right then begin
        best_right := running;
        right := i + 1
      end;
      if !best_right - running <= x_drop then go_right (i + 1) running
  in
  go_right 0 0;
  (* Extend left from the start of the word. *)
  let best_left = ref 0 and left = ref 0 in
  let rec go_left i running =
    let qi = qpos - 1 - i and ti = tpos - 1 - i in
    if qi < 0 || ti < seq_lo then ()
    else
      let running = running + score_at qi ti in
      if running > !best_left then begin
        best_left := running;
        left := i + 1
      end;
      if !best_left - running <= x_drop then go_left (i + 1) running
  in
  go_left 0 0;
  {
    score = !seed_score + !best_right + !best_left;
    query_start = qpos - !left;
    query_stop = qpos + word + !right;
    target_start = tpos - !left;
    target_stop = tpos + word + !right;
  }

type gapped = { score : int; columns : int }

let gapped ~matrix ~gap ~band ~query ~data ~seq_lo ~seq_hi ~seed =
  let m = Bioseq.Sequence.length query in
  let flat = Scoring.Submat.scores_flat matrix in
  let dim = Scoring.Submat.dim matrix in
  let neg_inf = Scoring.Submat.neg_inf in
  let go = Scoring.Gap.open_score gap and ge = Scoring.Gap.extend_score gap in
  (* Target window around the seed. *)
  let slack = m + band in
  let lo = max seq_lo (seed.target_start - slack) in
  let hi = min seq_hi (seed.target_stop + slack) in
  (* Seed diagonal (target - query). *)
  let diag0 = seed.target_start - seed.query_start in
  let h = Array.make (m + 1) 0 in
  let f = Array.make (m + 1) neg_inf in
  let best = ref 0 in
  let columns = ref 0 in
  for t = lo to hi - 1 do
    incr columns;
    let c = Char.code (Bytes.get data t) in
    (* Rows allowed in this column: |(t - (i-1)) - diag0| <= band, i.e.
       query offsets near the seed diagonal. *)
    let i_lo = max 1 (t - diag0 - band + 1) in
    let i_hi = min m (t - diag0 + band + 1) in
    if i_lo <= i_hi then begin
      let diag = ref (if i_lo = 1 then h.(0) else h.(i_lo - 1)) in
      (* Cells outside the band behave as 0 (local restart) at the band
         edge; keep it simple and correct-as-a-heuristic. *)
      if i_lo > 1 then diag := h.(i_lo - 1);
      let egap = ref neg_inf in
      for i = i_lo to i_hi do
        let qi = Bioseq.Sequence.get query (i - 1) in
        f.(i) <- max (h.(i) + go) (f.(i) + ge);
        egap := max (h.(i - 1) + go) (!egap + ge);
        let repl = !diag + Array.unsafe_get flat ((qi * dim) + c) in
        diag := h.(i);
        let cell = max 0 (max repl (max !egap f.(i))) in
        h.(i) <- cell;
        if cell > !best then best := cell
      done;
      (* Clear cells just outside the band so stale values from earlier
         columns cannot leak back in. *)
      if i_lo - 1 >= 1 then h.(i_lo - 1) <- 0;
      if i_hi + 1 <= m then begin
        h.(i_hi + 1) <- 0;
        f.(i_hi + 1) <- neg_inf
      end
    end
  done;
  { score = !best; columns = !columns }
