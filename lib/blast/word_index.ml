type t = {
  word_size : int;
  radix : int; (* alphabet size + 1 so terminators perturb encodings *)
  table : (int, int list) Hashtbl.t;
  mutable entries : int;
}

let word_size t = t.word_size

let add t word pos =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.table word) in
  Hashtbl.replace t.table word (pos :: existing);
  t.entries <- t.entries + 1

(* Enumerate all words scoring >= threshold against the query word at
   [qpos], by DFS over word symbols with an exact bound on the best
   completion. *)
let add_neighborhood t ~matrix ~threshold ~query qpos =
  let w = t.word_size in
  let size = Bioseq.Alphabet.size (Scoring.Submat.alphabet matrix) in
  (* best.(i) = max score attainable from word offsets i.. *)
  let best = Array.make (w + 1) 0 in
  for i = w - 1 downto 0 do
    best.(i) <-
      best.(i + 1)
      + Scoring.Submat.best_against matrix (Bioseq.Sequence.get query (qpos + i))
  done;
  let rec fill i acc score =
    if i = w then add t acc qpos
    else
      let qc = Bioseq.Sequence.get query (qpos + i) in
      for b = 0 to size - 1 do
        let score = score + Scoring.Submat.score matrix qc b in
        if score + best.(i + 1) >= threshold then
          fill (i + 1) ((acc * t.radix) + b) score
      done
  in
  fill 0 0 0

let add_exact t ~query qpos =
  let w = t.word_size in
  let acc = ref 0 in
  for i = 0 to w - 1 do
    acc := (!acc * t.radix) + Bioseq.Sequence.get query (qpos + i)
  done;
  add t !acc qpos

let build ~matrix ~word_size ~threshold ~query =
  if word_size < 1 then invalid_arg "Word_index.build: word_size < 1";
  let radix = Bioseq.Alphabet.size (Scoring.Submat.alphabet matrix) + 1 in
  let t = { word_size; radix; table = Hashtbl.create 4096; entries = 0 } in
  let m = Bioseq.Sequence.length query in
  for qpos = 0 to m - word_size do
    if threshold = max_int then add_exact t ~query qpos
    else add_neighborhood t ~matrix ~threshold ~query qpos
  done;
  t

let lookup t word = Option.value ~default:[] (Hashtbl.find_opt t.table word)

let encode_at t data pos =
  let acc = ref 0 in
  for i = 0 to t.word_size - 1 do
    acc := (!acc * t.radix) + Char.code (Bytes.get data (pos + i))
  done;
  !acc

let entries t = t.entries
let neighborhood_size t = Hashtbl.length t.table
