(** Query word index for BLAST-style seeding.

    The query is cut into overlapping words of [word_size] symbols. For
    protein searches each word is expanded into its {e neighborhood}:
    every word of the same length whose substitution score against the
    query word is at least [threshold] (Altschul et al. 1990). The index
    maps database words to the query positions they seed. *)

type t

val build :
  matrix:Scoring.Submat.t ->
  word_size:int ->
  threshold:int ->
  query:Bioseq.Sequence.t ->
  t
(** [threshold = max_int] degenerates to exact-word seeding (the
    blastn-style DNA mode). Raises [Invalid_argument] if
    [word_size < 1]. Queries shorter than [word_size] yield an index
    with no entries. *)

val word_size : t -> int

val lookup : t -> int -> int list
(** [lookup t w] is the list of query positions (0-based offsets of the
    word start) seeded by the encoded database word [w]. *)

val encode_at : t -> bytes -> int -> int
(** [encode_at t data pos] is the radix encoding of the word starting at
    [pos] in [data] (caller guarantees the word lies inside one
    sequence). *)

val entries : t -> int
(** Number of (word, position) pairs in the index. *)

val neighborhood_size : t -> int
(** Number of distinct words present. *)
