(** The BLAST-style heuristic search pipeline: word seeding → (optional
    two-hit filter) → ungapped X-drop extension → gapped banded
    extension → E-value filter.

    This is the paper's §4 baseline. Like the original it is a
    heuristic: alignments whose neighborhoods generate no word hit are
    missed — Figure 5 measures exactly how many, relative to OASIS. *)

type config = {
  word_size : int;
  threshold : int;
      (** neighborhood score threshold; [max_int] = exact words (DNA mode) *)
  x_drop : int;  (** ungapped extension X-drop *)
  gap_trigger : int;  (** ungapped score needed to attempt gapped extension *)
  band : int;  (** gapped extension band half-width *)
  two_hit_window : int option;
      (** [Some a]: require two non-overlapping hits within [a] diagonal
          positions before extending (Gapped BLAST); [None]: extend
          every hit *)
  evalue : float;  (** report cutoff *)
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
  params : Scoring.Karlin.params;
}

val default_protein :
  ?evalue:float ->
  ?two_hit:bool ->
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  params:Scoring.Karlin.params ->
  unit ->
  config
(** blastp-flavoured defaults: word size 3, neighborhood threshold 13,
    X-drop 7, gap trigger 18, band 24, E-value 10. *)

val default_dna :
  ?evalue:float ->
  ?word_size:int ->
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  params:Scoring.Karlin.params ->
  unit ->
  config
(** blastn-flavoured defaults: exact words (default size 8), X-drop 10,
    band 16. *)

type hit = {
  seq_index : int;
  score : int;
  evalue : float;
  query_stop : int;  (** ungapped-seed end; indicative, like BLAST's HSP *)
  target_stop : int;  (** sequence-local *)
}

type stats = {
  word_hits : int;  (** seeds looked up successfully *)
  ungapped_extensions : int;
  gapped_extensions : int;
  columns : int;  (** gapped DP columns (comparable to Figure 4's metric) *)
}

val search :
  config -> query:Bioseq.Sequence.t -> db:Bioseq.Database.t -> hit list * stats
(** One hit per database sequence (its best alignment found), sorted by
    decreasing score, filtered to [evalue]. *)
