type config = {
  word_size : int;
  threshold : int;
  x_drop : int;
  gap_trigger : int;
  band : int;
  two_hit_window : int option;
  evalue : float;
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
  params : Scoring.Karlin.params;
}

let default_protein ?(evalue = 10.) ?(two_hit = false) ~matrix ~gap ~params () =
  {
    word_size = 3;
    threshold = 13;
    x_drop = 7;
    gap_trigger = 18;
    band = 24;
    two_hit_window = (if two_hit then Some 40 else None);
    evalue;
    matrix;
    gap;
    params;
  }

let default_dna ?(evalue = 10.) ?(word_size = 8) ~matrix ~gap ~params () =
  {
    word_size;
    threshold = max_int;
    x_drop = 10;
    gap_trigger = 12;
    band = 16;
    two_hit_window = None;
    evalue;
    matrix;
    gap;
    params;
  }

type hit = {
  seq_index : int;
  score : int;
  evalue : float;
  query_stop : int;
  target_stop : int;
}

type stats = {
  word_hits : int;
  ungapped_extensions : int;
  gapped_extensions : int;
  columns : int;
}

let search cfg ~query ~db =
  let m = Bioseq.Sequence.length query in
  let n = Bioseq.Database.total_symbols db in
  let index =
    Word_index.build ~matrix:cfg.matrix ~word_size:cfg.word_size
      ~threshold:cfg.threshold ~query
  in
  let data = Bioseq.Database.data db in
  let word_hits = ref 0 in
  let ungapped_extensions = ref 0 in
  let gapped_extensions = ref 0 in
  let columns = ref 0 in
  let best_hits = ref [] in
  let process_sequence seq_index =
    let seq_lo = Bioseq.Database.seq_start db seq_index in
    let len = Bioseq.Sequence.length (Bioseq.Database.seq db seq_index) in
    let seq_hi = seq_lo + len in
    if len >= cfg.word_size && m >= cfg.word_size then begin
      let best_score = ref 0 and best_q = ref 0 and best_t = ref 0 in
      (* Per-diagonal bookkeeping: diagonal id = (t - seq_lo) - q + m,
         in [0, m + len). *)
      let num_diags = m + len in
      let last_hit = Array.make num_diags min_int in
      (* Rightmost target position already covered by an extension on
         each diagonal; seeds inside are skipped. *)
      let extended_to = Array.make num_diags min_int in
      for tpos = seq_lo to seq_hi - cfg.word_size do
        let word = Word_index.encode_at index data tpos in
        let qpositions = Word_index.lookup index word in
        if qpositions <> [] then incr word_hits;
        List.iter
          (fun qpos ->
            let diag = tpos - seq_lo - qpos + m in
            if tpos >= extended_to.(diag) then begin
              let fire =
                match cfg.two_hit_window with
                | None -> true
                | Some window ->
                  (* Gapped-BLAST two-hit rule: fire on a second,
                     non-overlapping hit within [window] on the same
                     diagonal. Overlapping hits keep the older one so a
                     later hit can still pair with it. *)
                  let prev = last_hit.(diag) in
                  if prev = min_int then begin
                    last_hit.(diag) <- tpos;
                    false
                  end
                  else if tpos - prev < cfg.word_size then false
                  else if tpos - prev <= window then true
                  else begin
                    last_hit.(diag) <- tpos;
                    false
                  end
              in
              if fire then begin
                incr ungapped_extensions;
                let seed =
                  Extend.ungapped ~matrix:cfg.matrix ~x_drop:cfg.x_drop ~query
                    ~data ~seq_lo ~seq_hi ~qpos ~tpos ~word:cfg.word_size
                in
                extended_to.(diag) <- seed.Extend.target_stop;
                let score, q_stop, t_stop =
                  if seed.Extend.score >= cfg.gap_trigger then begin
                    incr gapped_extensions;
                    let g =
                      Extend.gapped ~matrix:cfg.matrix ~gap:cfg.gap
                        ~band:cfg.band ~query ~data ~seq_lo ~seq_hi ~seed
                    in
                    columns := !columns + g.Extend.columns;
                    (g.Extend.score, seed.Extend.query_stop,
                     seed.Extend.target_stop)
                  end
                  else
                    (seed.Extend.score, seed.Extend.query_stop,
                     seed.Extend.target_stop)
                in
                if score > !best_score then begin
                  best_score := score;
                  best_q := q_stop;
                  best_t := t_stop - seq_lo
                end
              end
            end)
          qpositions
      done;
      if !best_score > 0 then begin
        let evalue =
          Scoring.Karlin.evalue cfg.params ~m ~n ~score:!best_score
        in
        if evalue <= cfg.evalue then
          best_hits :=
            {
              seq_index;
              score = !best_score;
              evalue;
              query_stop = !best_q;
              target_stop = !best_t;
            }
            :: !best_hits
      end
    end
  in
  for i = 0 to Bioseq.Database.num_sequences db - 1 do
    process_sequence i
  done;
  let hits =
    List.sort
      (fun a b ->
        if a.score <> b.score then compare b.score a.score
        else compare a.seq_index b.seq_index)
      !best_hits
  in
  ( hits,
    {
      word_hits = !word_hits;
      ungapped_extensions = !ungapped_extensions;
      gapped_extensions = !gapped_extensions;
      columns = !columns;
    } )
