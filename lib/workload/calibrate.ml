let random_sequence rng ~alphabet ~freqs ~id ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Rng.choose_weighted rng freqs))
  done;
  Bioseq.Sequence.of_codes ~alphabet ~id b

let gapped_params rng ~matrix ~gap ~freqs ?(length = 100) ?(samples = 500) () =
  if length < 2 then invalid_arg "Calibrate.gapped_params: length < 2";
  if samples < 10 then invalid_arg "Calibrate.gapped_params: samples < 10";
  let alphabet = Scoring.Submat.alphabet matrix in
  let scores =
    List.init samples (fun i ->
        let query =
          random_sequence rng ~alphabet ~freqs ~id:(Printf.sprintf "q%d" i)
            ~len:length
        in
        let target =
          random_sequence rng ~alphabet ~freqs ~id:(Printf.sprintf "t%d" i)
            ~len:length
        in
        Align.Smith_waterman.score_only ~matrix ~gap ~query ~target)
  in
  Scoring.Karlin.fit_gumbel ~m:length ~n:length scores
