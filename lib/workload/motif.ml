let proclass_length rng =
  (* 6 + geometric-ish tail with mean 10, truncated at 56. *)
  let rec draw len =
    if len >= 56 then 56
    else if Rng.bool rng ~p:0.1 then len
    else draw (len + 1)
  in
  draw 6

let mutate rng ~rate s =
  let alphabet = Bioseq.Sequence.alphabet s in
  let freqs =
    if Bioseq.Alphabet.name alphabet = "protein" then
      Scoring.Background.robinson_robinson
    else if Bioseq.Alphabet.name alphabet = "dna" then
      Scoring.Background.dna_uniform
    else Scoring.Background.uniform alphabet
  in
  let codes =
    Bytes.map
      (fun c ->
        if Rng.bool rng ~p:rate then Char.chr (Rng.choose_weighted rng freqs)
        else c)
      (Bioseq.Sequence.codes s)
  in
  Bioseq.Sequence.of_codes ~alphabet ~id:(Bioseq.Sequence.id s) codes

let sample rng ~db ?len ~mutation_rate ~id () =
  let len = match len with Some l -> l | None -> proclass_length rng in
  let n = Bioseq.Database.num_sequences db in
  let candidates =
    List.filter
      (fun i -> Bioseq.Sequence.length (Bioseq.Database.seq db i) >= len)
      (List.init n Fun.id)
  in
  if candidates = [] then
    invalid_arg
      (Printf.sprintf "Motif.sample: no database sequence of length >= %d" len);
  let candidates = Array.of_list candidates in
  let i = candidates.(Rng.int rng (Array.length candidates)) in
  let s = Bioseq.Database.seq db i in
  let room = Bioseq.Sequence.length s - len in
  let off = if room = 0 then 0 else Rng.int rng (room + 1) in
  let piece = Bioseq.Sequence.sub s ~pos:off ~len in
  let piece =
    Bioseq.Sequence.of_codes
      ~alphabet:(Bioseq.Sequence.alphabet s)
      ~id
      ~description:(Printf.sprintf "motif from %s@%d" (Bioseq.Sequence.id s) off)
      (Bioseq.Sequence.codes piece)
  in
  mutate rng ~rate:mutation_rate piece

let workload rng ~db ~count ?(mutation_rate = 0.1) () =
  List.init count (fun i ->
      sample rng ~db ~mutation_rate ~id:(Printf.sprintf "motif%03d" i) ())
