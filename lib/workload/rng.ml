(* splitmix64 (Steele, Lea, Flood 2014). *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62-bit non-negative value (fits OCaml's int even on the sign bit),
     modulo bias negligible for our bounds. *)
  Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t ~p = float t 1.0 < p

let gaussian t =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let choose_weighted t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.choose_weighted: zero total weight";
  let target = float t total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let split t = { state = next t }
