(** Deterministic random number generator (splitmix64), so every
    workload, test and benchmark is reproducible from a seed without
    touching the global [Random] state. *)

type t

val create : seed:int -> t

val next : t -> int64
(** Raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [ [0, n) ); [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [ [0, x) ). *)

val bool : t -> p:float -> bool
(** [true] with probability [p]. *)

val gaussian : t -> float
(** Standard normal (Box-Muller). *)

val choose_weighted : t -> float array -> int
(** Index drawn proportionally to the (non-negative) weights; raises
    [Invalid_argument] if all weights are zero. *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)
