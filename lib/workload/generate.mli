(** Synthetic sequence databases standing in for the paper's data sets
    (§4.1): SWISS-PROT (≈100K proteins, 40M residues, lengths 7-2048)
    and the Drosophila genome (120M nt). The generators preserve the
    statistics the algorithms are sensitive to — alphabet, background
    residue frequencies and length mix — at a configurable scale. *)

val swissprot_length : Rng.t -> int
(** A protein length drawn from a log-normal fitted to SWISS-PROT's
    reported shape (min 7, max 2048, mean ≈ 370). *)

val protein_sequence : Rng.t -> id:string -> len:int -> Bioseq.Sequence.t
(** Residues i.i.d. from Robinson-Robinson frequencies. *)

val protein_database :
  Rng.t -> ?mean_len:int -> target_symbols:int -> unit -> Bioseq.Database.t
(** Sequences drawn with {!swissprot_length} (rescaled to [mean_len] if
    given) until at least [target_symbols] residues accumulate. *)

val dna_sequence : ?gc:float -> Rng.t -> id:string -> len:int -> Bioseq.Sequence.t

val dna_database :
  Rng.t ->
  ?gc:float ->
  ?num_sequences:int ->
  target_symbols:int ->
  unit ->
  Bioseq.Database.t
(** [num_sequences] (default 32) roughly-equal pieces totalling
    [target_symbols], echoing the Drosophila set's few large scaffolds. *)

val plant :
  Rng.t ->
  db:Bioseq.Database.t ->
  motif:Bioseq.Sequence.t ->
  copies:int ->
  mutation_rate:float ->
  Bioseq.Database.t
(** Overwrite [copies] random locations (in distinct random sequences
    where possible) with point-mutated copies of [motif], giving the
    database genuine homologous families the way ProClass queries have
    family members in SWISS-PROT. *)
