(** Empirical Karlin-Altschul calibration by simulation.

    The analytic parameters ({!Scoring.Karlin.estimate}) only exist for
    ungapped alignment; for gapped scoring systems practice (Altschul &
    Gish 1996) simulates random sequence pairs, takes their maximum
    local-alignment scores, and fits the Gumbel law. This is the
    simulation driver; the fitting lives in
    {!Scoring.Karlin.fit_gumbel}. *)

val gapped_params :
  Rng.t ->
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  freqs:float array ->
  ?length:int ->
  ?samples:int ->
  unit ->
  Scoring.Karlin.params
(** Draw [samples] (default 500) independent pairs of random sequences
    of [length] (default 100) symbols from [freqs], score each with
    Smith-Waterman under [matrix]/[gap], and fit. With a very large gap
    penalty the result converges to the analytic ungapped parameters
    (tested); with realistic gap costs [lambda] comes out lower, making
    E-values appropriately more conservative. *)
