(** ProClass-style motif query workloads (§4.1).

    The paper's query set is a hundred motifs sampled from ProClass:
    lengths 6-56, average ≈ 16, each strongly related to at least one
    SWISS-PROT family. We reproduce that by cutting substrings out of
    the database itself and point-mutating them: the query then has one
    near-exact occurrence plus whatever weaker homology the database
    contains. *)

val proclass_length : Rng.t -> int
(** Length in [6, 56] with mean ≈ 16 (truncated geometric tail). *)

val sample :
  Rng.t ->
  db:Bioseq.Database.t ->
  ?len:int ->
  mutation_rate:float ->
  id:string ->
  unit ->
  Bioseq.Sequence.t
(** Cut a substring of a random database sequence (length [len], default
    {!proclass_length}) and mutate it. Sequences shorter than the target
    length are skipped; raises [Invalid_argument] if none is long
    enough. *)

val workload :
  Rng.t ->
  db:Bioseq.Database.t ->
  count:int ->
  ?mutation_rate:float ->
  unit ->
  Bioseq.Sequence.t list
(** [count] queries with ProClass-like lengths; [mutation_rate] defaults
    to 0.1. *)

val mutate : Rng.t -> rate:float -> Bioseq.Sequence.t -> Bioseq.Sequence.t
(** Point-mutate each symbol with probability [rate], drawing
    replacements from the alphabet's background distribution. *)
