let clamp lo hi v = max lo (min hi v)

(* Log-normal fitted by eye to SWISS-PROT's reported statistics: median
   around 300, mean around 370, heavy right tail cut at 2048. *)
let swissprot_length rng =
  let mu = log 300. and sigma = 0.65 in
  let v = exp (mu +. (sigma *. Rng.gaussian rng)) in
  clamp 7 2048 (int_of_float v)

let draw_residues rng ~alphabet ~freqs ~id ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Rng.choose_weighted rng freqs))
  done;
  Bioseq.Sequence.of_codes ~alphabet ~id b

let protein_sequence rng ~id ~len =
  draw_residues rng ~alphabet:Bioseq.Alphabet.protein
    ~freqs:Scoring.Background.robinson_robinson ~id ~len

let protein_database rng ?mean_len ~target_symbols () =
  if target_symbols <= 0 then
    invalid_arg "Generate.protein_database: target_symbols must be positive";
  let scale =
    match mean_len with
    | None -> 1.0
    | Some l -> float_of_int l /. 370.
  in
  let rec go acc total i =
    if total >= target_symbols then List.rev acc
    else begin
      let len =
        clamp 7 2048 (int_of_float (scale *. float_of_int (swissprot_length rng)))
      in
      let len = min len (max 7 (target_symbols - total)) in
      let s = protein_sequence rng ~id:(Printf.sprintf "SYN%06d" i) ~len in
      go (s :: acc) (total + len) (i + 1)
    end
  in
  Bioseq.Database.make (go [] 0 0)

let dna_sequence ?(gc = 0.45) rng ~id ~len =
  draw_residues rng ~alphabet:Bioseq.Alphabet.dna
    ~freqs:(Scoring.Background.dna_gc ~gc) ~id ~len

let dna_database rng ?(gc = 0.45) ?(num_sequences = 32) ~target_symbols () =
  if target_symbols < num_sequences then
    invalid_arg "Generate.dna_database: fewer symbols than sequences";
  let base = target_symbols / num_sequences in
  let seqs =
    List.init num_sequences (fun i ->
        let len = if i = num_sequences - 1 then target_symbols - (base * i) else base in
        dna_sequence ~gc rng ~id:(Printf.sprintf "SCAF%04d" i) ~len)
  in
  Bioseq.Database.make seqs

(* Background frequencies for substituting a mutated symbol: never
   introduces ambiguity codes. *)
let background_for alphabet =
  if Bioseq.Alphabet.name alphabet = "protein" then
    Scoring.Background.robinson_robinson
  else if Bioseq.Alphabet.name alphabet = "dna" then Scoring.Background.dna_uniform
  else Scoring.Background.uniform alphabet

let mutate_codes rng ~alphabet ~rate codes =
  let freqs = background_for alphabet in
  Bytes.map
    (fun c ->
      if Rng.bool rng ~p:rate then Char.chr (Rng.choose_weighted rng freqs)
      else c)
    codes

let plant rng ~db ~motif ~copies ~mutation_rate =
  let alphabet = Bioseq.Database.alphabet db in
  if Bioseq.Alphabet.name (Bioseq.Sequence.alphabet motif) <> Bioseq.Alphabet.name alphabet
  then invalid_arg "Generate.plant: alphabet mismatch";
  let n = Bioseq.Database.num_sequences db in
  let mlen = Bioseq.Sequence.length motif in
  let payloads =
    Array.init n (fun i -> Bytes.copy (Bioseq.Sequence.codes (Bioseq.Database.seq db i)))
  in
  let eligible =
    Array.to_list (Array.init n Fun.id)
    |> List.filter (fun i -> Bytes.length payloads.(i) >= mlen)
  in
  if eligible = [] then invalid_arg "Generate.plant: motif longer than every sequence";
  let eligible = Array.of_list eligible in
  for _ = 1 to copies do
    let i = eligible.(Rng.int rng (Array.length eligible)) in
    let room = Bytes.length payloads.(i) - mlen in
    let off = if room = 0 then 0 else Rng.int rng (room + 1) in
    let copy =
      mutate_codes rng ~alphabet ~rate:mutation_rate (Bioseq.Sequence.codes motif)
    in
    Bytes.blit copy 0 payloads.(i) off mlen
  done;
  Bioseq.Database.make
    (List.init n (fun i ->
         let old = Bioseq.Database.seq db i in
         Bioseq.Sequence.of_codes ~alphabet ~id:(Bioseq.Sequence.id old)
           ~description:(Bioseq.Sequence.description old) payloads.(i)))
