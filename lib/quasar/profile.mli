(** Per-subtree q-gram profiles for the exactness-preserving filter
    tier (DESIGN.md §2k).

    A profile mirrors the shallow part of a suffix tree: one entry per
    tree node whose arc {e starts} at string depth [<= cutoff]. Each
    entry records, for the {e region} of strings readable along paths
    below that node's arc start, the exact set of q-grams occurring
    among the first [horizon] symbols of any such string — plus how far
    the region extends ([ext]) so a consumer knows whether the set
    covers every reachable symbol ([ext <= horizon], the region is
    {e complete}) or only the horizon window.

    The set is a {e superset} of the region's true q-gram content
    (ancestor tails and horizon-overshoot grams may leak in), never a
    subset — the only direction an admissible filter can tolerate: a
    gram reported present that is actually absent merely weakens the
    bound; the reverse would break exactness.

    Profiles are source-agnostic (keyed by path strings, not node ids),
    so one profile built from the in-memory tree serves the packed and
    on-disk engines over the same database image. *)

type t

val build :
  db:Bioseq.Database.t ->
  tree:Suffix_tree.Tree.t ->
  ?q:int ->
  ?cutoff:int ->
  ?horizon:int ->
  unit ->
  t
(** Defaults: [q = 2], [cutoff = 12], [horizon = 96]. Raises
    [Invalid_argument] when [q < 1], the gram space [size^q] exceeds
    [2^16] bits, [horizon < q], or [cutoff < 0]. [tree] must be the
    suffix tree of [db]. *)

val q : t -> int
val cutoff : t -> int
val horizon : t -> int
val alphabet_size : t -> int
val num_nodes : t -> int
val bytes : t -> int
(** Serialized size (the in-memory footprint is within a small constant
    of it). *)

val root : t -> int
(** The entry for the tree root (depth 0); entry ids are dense in
    [0 .. num_nodes - 1]. *)

val dstart : t -> int -> int
val dend : t -> int -> int
(** Arc start / end string depth of an entry. *)

val ext : t -> int -> int
(** Max symbols readable below the entry's arc start before every path
    terminates, capped at [horizon + 1]; [ext <= horizon] means the
    gram set covers the whole region (complete). *)

val child : t -> int -> int -> int
(** [child t id sym]: the entry for the tree child whose arc starts
    with symbol [sym], or [-1]. Only meaningful when
    [dend t id <= cutoff t] (deeper children carry no entry). *)

val has_gram : t -> int -> int -> bool
(** [has_gram t id gram]: is the coded gram ([sum code_i * size^i],
    most recent symbol last) present in entry [id]'s set? *)

val gram_of_codes : t -> int array -> int -> int
(** [gram_of_codes t codes off]: the gram id of
    [codes.(off .. off + q - 1)], or [-1] when any code falls outside
    the alphabet (e.g. a terminator). *)

val to_bytes : t -> Bytes.t
val of_bytes : Bytes.t -> t
(** Exact round-trip; [of_bytes] raises [Invalid_argument] on a
    malformed or truncated image. *)

val root_grams : t -> Bytes.t
(** The root entry's raw bitset ([(size^q + 7) / 8] bytes) — the whole
    database's gram content, the piece {!Storage.Shard_manifest} embeds
    per shard so the sharded merge can down-prioritize low-overlap
    shards without opening each shard's full profile. *)
