(* Per-subtree q-gram profiles — see the .mli for the contract. The
   build is one post-order pass: each node's gram set is its own arc
   windows (threaded across arc boundaries by carrying the rolling
   gram prefix into children) unioned with its children's sets. Sets
   are gram-identity based, so a child's set shifts into its parent's
   region for free; every approximation (ancestor-tail windows, grams
   past one node's horizon but inside a descendant's) errs toward
   supersets, which an admissible consumer tolerates. *)

type t = {
  q : int;
  asize : int;
  gbits : int;  (** asize^q *)
  gstride : int;  (** bytes per node's bitset *)
  cutoff : int;
  horizon : int;
  dstart : int array;
  dend : int array;
  ext : int array;
  grams : Bytes.t;  (** num_nodes consecutive bitsets *)
  ch_off : int array;  (** CSR offsets, length num_nodes + 1 *)
  ch_sym : int array;
  ch_id : int array;
}

let q t = t.q
let cutoff t = t.cutoff
let horizon t = t.horizon
let alphabet_size t = t.asize
let num_nodes t = Array.length t.dstart
let root _ = 0
let dstart t id = t.dstart.(id)
let dend t id = t.dend.(id)
let ext t id = t.ext.(id)

let child t id sym =
  let stop = t.ch_off.(id + 1) in
  let rec go k =
    if k >= stop then -1
    else if t.ch_sym.(k) = sym then t.ch_id.(k)
    else go (k + 1)
  in
  go t.ch_off.(id)

let has_gram t id gram =
  let bit = (id * t.gstride * 8) + gram in
  Char.code (Bytes.unsafe_get t.grams (bit lsr 3)) land (1 lsl (bit land 7))
  <> 0

let gram_of_codes t codes off =
  let rec go j acc =
    if j >= t.q then acc
    else
      let c = codes.(off + j) in
      if c < 0 || c >= t.asize then -1 else go (j + 1) ((acc * t.asize) + c)
  in
  go 0 0

let root_grams t = Bytes.sub t.grams 0 t.gstride

(* --- build --- *)

let rec pow_int b e = if e = 0 then 1 else b * pow_int b (e - 1)

(* Growable int vector — the build does not know the node count ahead
   of time. *)
type vec = { mutable a : int array; mutable n : int }

let vec () = { a = Array.make 256 0; n = 0 }

let vpush v x =
  if v.n = Array.length v.a then begin
    let b = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 b 0 v.n;
    v.a <- b
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

let varr v = Array.sub v.a 0 v.n

let set_bit set gram =
  let b = gram lsr 3 in
  Bytes.unsafe_set set b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get set b) lor (1 lsl (gram land 7))))

let union ~into src =
  for b = 0 to Bytes.length into - 1 do
    Bytes.unsafe_set into b
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get into b)
         lor Char.code (Bytes.unsafe_get src b)))
  done

let build ~db ~tree ?(q = 2) ?(cutoff = 12) ?(horizon = 96) () =
  let alpha = Bioseq.Database.alphabet db in
  let asize = Bioseq.Alphabet.size alpha in
  if q < 1 then invalid_arg "Quasar.Profile.build: q < 1";
  if horizon < q then invalid_arg "Quasar.Profile.build: horizon < q";
  if cutoff < 0 then invalid_arg "Quasar.Profile.build: cutoff < 0";
  let gbits = pow_int asize q in
  if gbits > 65536 then
    invalid_arg "Quasar.Profile.build: gram space size^q exceeds 2^16";
  let gstride = (gbits + 7) / 8 in
  let powq1 = pow_int asize (q - 1) in
  (* Scan allowance: any profile node's horizon window ends before
     absolute depth cutoff + horizon, and its last window needs q - 1
     more symbols. *)
  let dmax = cutoff + horizon + q in
  let v_dstart = vec () and v_dend = vec () and v_ext = vec () in
  let gsets = ref (Array.make 256 Bytes.empty) in
  let nid = ref 0 in
  let edges = ref [] in
  let alloc d_start d_end =
    let id = !nid in
    if id = Array.length !gsets then begin
      let b = Array.make (2 * id) Bytes.empty in
      Array.blit !gsets 0 b 0 id;
      gsets := b
    end;
    vpush v_dstart d_start;
    vpush v_dend d_end;
    vpush v_ext 0;
    nid := id + 1;
    id
  in
  (* Visit one node: [d_start] is its arc's string depth, [(p, run)]
     the rolling gram state entering the arc — [p] codes the last
     [min(run, q - 1)] path symbols in base [asize]. Returns the
     node's gram set, the capped absolute termination depth, and the
     node's profile id (or -1). *)
  let rec visit node ~d_start ~p ~run =
    let s0, s1 = Suffix_tree.Tree.label node in
    let arclen = s1 - s0 in
    let d_end = d_start + arclen in
    let id = if d_start <= cutoff then alloc d_start (min d_end dmax) else -1 in
    let set = Bytes.make gstride '\000' in
    let scan_cap = min arclen (dmax - d_start) in
    let rec scan j p run =
      if j >= scan_cap then (j, p, run, false)
      else
        let c = Bioseq.Database.code db (s0 + j) in
        if c < 0 || c >= asize then (j, p, run, true)
        else begin
          if run >= q - 1 then set_bit set ((p * asize) + c);
          scan (j + 1) (((p * asize) + c) mod powq1) (run + 1)
        end
    in
    let scanned, p', run', terminated = scan 0 p run in
    let extabs =
      if terminated then d_start + scanned
      else if scanned < arclen then dmax + 1 (* ran past the allowance *)
      else if Suffix_tree.Tree.is_leaf node then d_end
      else begin
        (* Recurse; children thread the rolling gram state so windows
           crossing this arc's end land in their sets (and union up). *)
        let worst = ref d_end in
        Suffix_tree.Tree.iter_children node (fun k ->
            let kset, kext, kid = visit k ~d_start:d_end ~p:p' ~run:run' in
            union ~into:set kset;
            if kext > !worst then worst := kext;
            if id >= 0 && kid >= 0 then begin
              let ks, _ = Suffix_tree.Tree.label k in
              let kc = Bioseq.Database.code db ks in
              if kc >= 0 && kc < asize then edges := (id, kc, kid) :: !edges
            end);
        !worst
      end
    in
    let extabs = min extabs (dmax + 1) in
    if id >= 0 then begin
      !gsets.(id) <- set;
      v_ext.a.(id) <- min (extabs - d_start) (horizon + 1)
    end;
    (set, extabs, id)
  in
  let root_id = alloc 0 0 in
  let root_set = Bytes.make gstride '\000' in
  let worst = ref 0 in
  Suffix_tree.Tree.iter_children (Suffix_tree.Tree.root tree) (fun k ->
      let kset, kext, kid = visit k ~d_start:0 ~p:0 ~run:0 in
      union ~into:root_set kset;
      if kext > !worst then worst := kext;
      if kid >= 0 then begin
        let ks, _ = Suffix_tree.Tree.label k in
        let kc = Bioseq.Database.code db ks in
        if kc >= 0 && kc < asize then edges := (root_id, kc, kid) :: !edges
      end);
  !gsets.(root_id) <- root_set;
  v_ext.a.(root_id) <- min !worst (horizon + 1);
  let nn = !nid in
  let dstart = varr v_dstart and dend = varr v_dend and ext = varr v_ext in
  (* CSR over the collected edges. *)
  let counts = Array.make (nn + 1) 0 in
  List.iter (fun (pid, _, _) -> counts.(pid) <- counts.(pid) + 1) !edges;
  let ch_off = Array.make (nn + 1) 0 in
  for i = 1 to nn do
    ch_off.(i) <- ch_off.(i - 1) + counts.(i - 1)
  done;
  let ne = ch_off.(nn) in
  let ch_sym = Array.make (max ne 1) 0 and ch_id = Array.make (max ne 1) 0 in
  let cursor = Array.copy ch_off in
  List.iter
    (fun (pid, sym, kid) ->
      let k = cursor.(pid) in
      ch_sym.(k) <- sym;
      ch_id.(k) <- kid;
      cursor.(pid) <- k + 1)
    !edges;
  let ch_sym = Array.sub ch_sym 0 ne and ch_id = Array.sub ch_id 0 ne in
  let grams = Bytes.create (nn * gstride) in
  for i = 0 to nn - 1 do
    Bytes.blit !gsets.(i) 0 grams (i * gstride) gstride
  done;
  { q; asize; gbits; gstride; cutoff; horizon; dstart; dend; ext; grams;
    ch_off; ch_sym; ch_id }

(* --- serialization (all little-endian u32, then the raw gram blob) --- *)

let magic = 0x50475351 (* "QSGP" *)

let put_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg "Quasar.Profile: field out of u32 range";
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let to_bytes t =
  let nn = num_nodes t in
  let ne = Array.length t.ch_sym in
  let buf = Buffer.create (32 + (16 * nn) + (8 * ne) + Bytes.length t.grams) in
  put_u32 buf magic;
  put_u32 buf t.q;
  put_u32 buf t.asize;
  put_u32 buf t.cutoff;
  put_u32 buf t.horizon;
  put_u32 buf nn;
  put_u32 buf ne;
  Array.iter (put_u32 buf) t.dstart;
  Array.iter (put_u32 buf) t.dend;
  Array.iter (put_u32 buf) t.ext;
  Array.iter (put_u32 buf) t.ch_off;
  Array.iter (put_u32 buf) t.ch_sym;
  Array.iter (put_u32 buf) t.ch_id;
  Buffer.add_bytes buf t.grams;
  Buffer.to_bytes buf

let of_bytes b =
  let bad msg = invalid_arg ("Quasar.Profile.of_bytes: " ^ msg) in
  let len = Bytes.length b in
  if len < 28 then bad "truncated header";
  if get_u32 b 0 <> magic then bad "bad magic";
  let q = get_u32 b 4 and asize = get_u32 b 8 in
  let cutoff = get_u32 b 12 and horizon = get_u32 b 16 in
  let nn = get_u32 b 20 and ne = get_u32 b 24 in
  if q < 1 || asize < 1 || nn < 1 then bad "implausible header";
  let gbits = pow_int asize q in
  if gbits > 65536 then bad "gram space too large";
  let gstride = (gbits + 7) / 8 in
  let expect = 28 + (4 * ((3 * nn) + nn + 1 + (2 * ne))) + (nn * gstride) in
  if len <> expect then bad "size mismatch";
  let off = ref 28 in
  let ints n =
    let a = Array.init n (fun i -> get_u32 b (!off + (4 * i))) in
    off := !off + (4 * n);
    a
  in
  let dstart = ints nn in
  let dend = ints nn in
  let ext = ints nn in
  let ch_off = ints (nn + 1) in
  let ch_sym = ints ne in
  let ch_id = ints ne in
  let grams = Bytes.sub b !off (nn * gstride) in
  if ch_off.(0) <> 0 || ch_off.(nn) <> ne then bad "bad child offsets";
  Array.iter (fun id -> if id < 0 || id >= nn then bad "bad child id") ch_id;
  { q; asize; gbits; gstride; cutoff; horizon; dstart; dend; ext; grams;
    ch_off; ch_sym; ch_id }

let bytes t =
  28 + (4 * ((4 * num_nodes t) + 1 + (2 * Array.length t.ch_sym)))
  + Bytes.length t.grams
