(** A QUASAR-style q-gram filter (Burkhardt et al., RECOMB 1999) — the
    related-work baseline the paper singles out in §5: "an efficient,
    but inaccurate, system for local alignment matching ... based on
    suffix arrays, it achieves a performance gain over BLAST ... by
    filtering out sections of the database not likely to generate any
    useful matches".

    The database is covered by half-overlapping blocks. Each query
    q-gram is located through the suffix array; a block collecting at
    least [threshold] q-gram hits becomes a candidate and is verified
    with a Smith-Waterman pass; everything else is skipped. The q-gram
    lemma makes the filter lossless for alignments with at most [k]
    differences inside one block ([threshold <= m - q + 1 - q*k]), but
    as a filter for weighted local alignment it is heuristic — like
    BLAST, it can miss matches OASIS finds. *)

type config = {
  q : int;  (** q-gram length *)
  block_size : int;  (** blocks overlap by half of this *)
  threshold : int;  (** q-gram hits needed to keep a block *)
  min_score : int;
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
}

val config :
  ?q:int ->
  ?block_size:int ->
  ?diffs:int ->
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  min_score:int ->
  query_length:int ->
  unit ->
  config
(** Defaults: [q = 3] (capped at the query length), [block_size] twice
    the query length (at least 64), and the lemma threshold for
    [diffs = 2] differences: [max 1 (m - q + 1 - q * diffs)], clamped
    to the [m - q + 1] grams the query actually carries (a higher
    threshold would be vacuously unsatisfiable). Raises
    [Invalid_argument] on an empty query, [diffs < 0], or
    [block_size < 1]. *)

type hit = {
  seq_index : int;
  score : int;
  query_stop : int;
  target_stop : int;  (** sequence-local, exclusive *)
}

type stats = {
  qgram_occurrences : int;  (** database positions hit by query q-grams *)
  total_blocks : int;
  candidate_blocks : int;
  verified_symbols : int;  (** database symbols the verifier scanned *)
}

val search :
  config -> sa:Suffix_tree.Suffix_array.t -> query:Bioseq.Sequence.t -> hit list * stats
(** One hit per sequence (its best alignment found inside candidate
    regions), sorted by decreasing score. *)
