type config = {
  q : int;
  block_size : int;
  threshold : int;
  min_score : int;
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
}

let config ?(q = 3) ?block_size ?(diffs = 2) ~matrix ~gap ~min_score
    ~query_length () =
  if query_length < 1 then invalid_arg "Quasar.config: empty query";
  if diffs < 0 then invalid_arg "Quasar.config: diffs < 0";
  let q = max 1 (min q query_length) in
  let block_size =
    match block_size with
    | Some b ->
      if b < 1 then invalid_arg "Quasar.config: block_size < 1";
      b
    | None -> max 64 (2 * query_length)
  in
  (* The query carries m - q + 1 grams, so a higher threshold is
     vacuously unsatisfiable (every block filtered, silently lossy for
     the filter's own q-gram-lemma guarantee); clamp before the lemma
     floor so threshold is always in [1, m - q + 1]. *)
  let threshold =
    min (query_length - q + 1) (max 1 (query_length - q + 1 - (q * diffs)))
  in
  { q; block_size; threshold; min_score; matrix; gap }

type hit = {
  seq_index : int;
  score : int;
  query_stop : int;
  target_stop : int;
}

type stats = {
  qgram_occurrences : int;
  total_blocks : int;
  candidate_blocks : int;
  verified_symbols : int;
}

let search cfg ~sa ~query =
  let db = Suffix_tree.Suffix_array.database sa in
  let data = Bioseq.Database.data db in
  let n = Bioseq.Database.data_length db in
  let m = Bioseq.Sequence.length query in
  let qcodes = Bioseq.Sequence.codes query in
  (* Half-overlapping blocks: stride = block_size / 2; position p lands
     in blocks p/stride and p/stride - 1, so any window of length
     <= stride lies entirely inside at least one block. *)
  let stride = max 1 (cfg.block_size / 2) in
  let num_blocks = (n / stride) + 1 in
  let counts = Array.make num_blocks 0 in
  let qgram_occurrences = ref 0 in
  if m >= cfg.q then
    for i = 0 to m - cfg.q do
      let gram = Bytes.sub qcodes i cfg.q in
      match Suffix_tree.Suffix_array.interval sa gram with
      | None -> ()
      | Some (lo, hi) ->
        for r = lo to hi - 1 do
          let pos = Suffix_tree.Suffix_array.suffix_at sa r in
          incr qgram_occurrences;
          let b = pos / stride in
          counts.(b) <- counts.(b) + 1;
          if b > 0 then counts.(b - 1) <- counts.(b - 1) + 1
        done
    done;
  (* Candidate regions: blocks over threshold, grown by the query length
     so alignments poking out of a block stay verifiable, then merged. *)
  let regions = ref [] in
  let candidate_blocks = ref 0 in
  for b = num_blocks - 1 downto 0 do
    if counts.(b) >= cfg.threshold then begin
      incr candidate_blocks;
      let lo = max 0 ((b * stride) - m) in
      let hi = min n ((b * stride) + cfg.block_size + m) in
      match !regions with
      | (next_lo, next_hi) :: rest when hi >= next_lo ->
        regions := (lo, max hi next_hi) :: rest
      | _ -> regions := (lo, hi) :: !regions
    end
  done;
  (* Verify each region; keep the best alignment per sequence. A region
     may span several sequences — split it at their boundaries so hits
     map cleanly. *)
  let best : (int, hit) Hashtbl.t = Hashtbl.create 64 in
  let verified_symbols = ref 0 in
  let verify_seq_slice seq_index lo hi =
    if hi > lo then begin
      verified_symbols := !verified_symbols + (hi - lo);
      let score, query_stop, stop_global =
        Align.Smith_waterman.best_in_region ~matrix:cfg.matrix ~gap:cfg.gap
          ~query ~data ~lo ~hi
      in
      if score >= cfg.min_score then begin
        let hit =
          {
            seq_index;
            score;
            query_stop;
            target_stop = stop_global - Bioseq.Database.seq_start db seq_index;
          }
        in
        match Hashtbl.find_opt best seq_index with
        | Some old when old.score >= score -> ()
        | _ -> Hashtbl.replace best seq_index hit
      end
    end
  in
  List.iter
    (fun (lo, hi) ->
      let rec split pos =
        if pos < hi then begin
          let seq_index = Bioseq.Database.seq_of_pos db pos in
          let seq_end =
            Bioseq.Database.seq_start db seq_index
            + Bioseq.Sequence.length (Bioseq.Database.seq db seq_index)
          in
          let slice_hi = min hi seq_end in
          verify_seq_slice seq_index pos slice_hi;
          (* Skip the terminator and continue in the next sequence. *)
          split (seq_end + 1)
        end
      in
      split lo)
    !regions;
  let hits =
    Hashtbl.fold (fun _ hit acc -> hit :: acc) best []
    |> List.sort (fun a b ->
           if a.score <> b.score then compare b.score a.score
           else compare a.seq_index b.seq_index)
  in
  ( hits,
    {
      qgram_occurrences = !qgram_occurrences;
      total_blocks = num_blocks;
      candidate_blocks = !candidate_blocks;
      verified_symbols = !verified_symbols;
    } )
