(** Client side of the daemon protocol (used by [oasis client], the
    tests, and the bench).

    Connections are one-shot — connect, send one request, read the
    response stream — matching the server's contract. *)

type t

val connect : string -> t
(** Connect to the daemon's socket path. Raises [Unix.Unix_error]
    (e.g. [ENOENT]/[ECONNREFUSED] when no daemon is listening). *)

val send : t -> Protocol.request -> unit
val recv : t -> (Protocol.response, Protocol.error) result
val close : t -> unit

val request : path:string -> Protocol.request -> (Protocol.response, Protocol.error) result
(** One-shot non-search exchange: connect, send, read a single
    response, close. *)

(** How a search ended, from the client's side. *)
type search_end =
  | Finished of { outcome : Protocol.outcome; hits : int; wall_us : int }
      (** the server's [Done] frame *)
  | Rejected of Protocol.reject
  | Cut of int  (** we hung up on purpose after [stop_after] hits *)
  | Transport of Protocol.error
      (** the stream broke before a [Done] — e.g. the daemon died *)

val search :
  ?stop_after:int ->
  path:string ->
  on_hit:(int -> Protocol.hit -> unit) ->
  Protocol.search ->
  search_end
(** Stream a search: [on_hit i hit] fires per result ([i] counts from
    1, in arrival = non-increasing-score order). With [stop_after n]
    the client closes the connection right after the [n]-th hit — the
    online protocol's early-exit move; the server aborts the rest of
    the work. *)
