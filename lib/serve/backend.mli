(** Per-worker search backends for the daemon.

    A {!worker} is the serving layer's unit of index ownership: the
    server creates one per pool worker at startup and keeps it open
    across requests, so steady-state queries touch no index-opening
    path at all. What a worker owns depends on the index:

    - {!mem}: nothing but an engine {!Oasis.Engine.Mem.Session} — all
      workers share ONE immutable suffix-tree image (tree reads never
      mutate after the Ukkonen build), which is the point of the
      session refactor: K concurrent searches, one tree;
    - {!disk} / {!sharded}: a private {!Storage.Disk_tree} (and buffer
      pool) per worker, because the buffer pool is single-owner by
      design — replicating the handle, not the data;
    - {!live}: a private read-only {!Storage.Live_index} handle; each
      request pins its own snapshot, so searches see a consistent
      segment set even while another process appends.

    Workers are single-owner and not thread-safe; the server hands each
    running task exclusive use of one. *)

type stream = {
  next : unit -> Oasis.Hit.t option;
  outcome : unit -> Oasis.Engine.outcome;
  seq_id : int -> string;  (** resolve a hit's sequence id *)
  finish : unit -> unit;  (** always called once the stream is done *)
}

type worker = {
  search :
    query:Bioseq.Sequence.t ->
    config:Oasis.Engine.config ->
    seed:int option ->
    stream;
      (** [seed = Some k] runs one heuristic BLAST pass first and
          raises the engine's cutoff to its k-th best score (see
          {!Blast.Seed}) — exact for a stream capped at [k] hits *)
  close : unit -> unit;
}

val parse :
  alphabet:Bioseq.Alphabet.t ->
  Protocol.search ->
  ( Bioseq.Sequence.t * Oasis.Engine.config * int option * int option,
    string )
  result
(** Validate a wire request into an engine configuration (the first
    [int option] is the hit cap, the second the seeding [k] — [Some]
    exactly when the request set [seed_cutoff], in which case a hit cap
    is required). Every failure — unknown matrix, bad residue,
    non-positive [min_score], negative budget, uncapped [seed_cutoff]
    — comes back as a message for a [Bad_request] reject, never an
    exception. *)

val mem : tree:Suffix_tree.Tree.t -> db:Bioseq.Database.t -> unit -> worker

val disk :
  dir:string ->
  alphabet:Bioseq.Alphabet.t ->
  db:Bioseq.Database.t ->
  buffer_blocks:int ->
  unit ->
  worker
(** Opens [dir]'s components immediately and keeps them open. *)

val sharded :
  dir:string ->
  alphabet:Bioseq.Alphabet.t ->
  db:Bioseq.Database.t ->
  buffer_blocks:int ->
  unit ->
  worker
(** One {!Storage.Disk_tree} per manifest shard, searched through the
    demand-driven {!Oasis.Multi} merge — same release rule as the
    multicore coordinator, so the stream is identical to [oasis
    search]'s sharded path. [buffer_blocks] is split across shards. *)

val live : dir:string -> alphabet:Bioseq.Alphabet.t -> unit -> worker
(** Read-only live-index worker; an empty index yields an empty
    [Complete] stream. *)
