(* The daemon: accept loop + admission control in the caller's thread,
   request service on a Domain_pool. One mutex guards admission state
   and the SLO metrics — every critical section is a handful of integer
   updates, far off the search hot path. *)

type config = {
  socket_path : string;
  alphabet : Bioseq.Alphabet.t;
  workers : int;
  queue_depth : int;
  allow_sleep : bool;
  recv_timeout : float;
}

let config ?(workers = 4) ?(queue_depth = 16) ?(allow_sleep = false)
    ?(recv_timeout = 10.) ~alphabet ~socket_path () =
  if workers < 1 then invalid_arg "Server.config: workers must be >= 1";
  if queue_depth < 0 then invalid_arg "Server.config: queue_depth must be >= 0";
  if recv_timeout <= 0. then
    invalid_arg "Server.config: recv_timeout must be positive";
  { socket_path; alphabet; workers; queue_depth; allow_sleep; recv_timeout }

type t = {
  cfg : config;
  make_worker : int -> Backend.worker;
  stop_flag : bool Atomic.t;
  mutex : Mutex.t;
  mutable in_flight : int;
  mutable slots : Backend.worker list;  (* free backends, LIFO *)
  mutable started : bool;
  (* SLO metrics, guarded by [mutex] (Obs metrics are not atomic). *)
  registry : Obs.Registry.t;
  accepted : Obs.Metric.counter;
  completed : Obs.Metric.counter;
  rejected_overload : Obs.Metric.counter;
  bad_request : Obs.Metric.counter;
  disconnects : Obs.Metric.counter;
  errors : Obs.Metric.counter;
  hits_streamed : Obs.Metric.counter;
  in_flight_gauge : Obs.Metric.gauge;
  latency_us : Obs.Metric.histogram;
  queue_wait_us : Obs.Metric.histogram;
}

let create cfg ~make_worker =
  let registry = Obs.Registry.create () in
  {
    cfg;
    make_worker;
    stop_flag = Atomic.make false;
    mutex = Mutex.create ();
    in_flight = 0;
    slots = [];
    started = false;
    registry;
    accepted = Obs.Registry.counter registry "serve.accepted";
    completed = Obs.Registry.counter registry "serve.completed";
    rejected_overload = Obs.Registry.counter registry "serve.rejected_overload";
    bad_request = Obs.Registry.counter registry "serve.bad_request";
    disconnects = Obs.Registry.counter registry "serve.disconnects";
    errors = Obs.Registry.counter registry "serve.errors";
    hits_streamed = Obs.Registry.counter registry "serve.hits_streamed";
    in_flight_gauge = Obs.Registry.gauge registry "serve.in_flight";
    latency_us = Obs.Registry.histogram registry "serve.latency_us";
    queue_wait_us = Obs.Registry.histogram registry "serve.queue_wait_us";
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stop t = Atomic.set t.stop_flag true
let capacity t = t.cfg.workers + t.cfg.queue_depth

let stats_pairs t =
  locked t (fun () ->
      [
        ("serve.accepted", Obs.Metric.count t.accepted);
        ("serve.completed", Obs.Metric.count t.completed);
        ("serve.rejected_overload", Obs.Metric.count t.rejected_overload);
        ("serve.bad_request", Obs.Metric.count t.bad_request);
        ("serve.disconnects", Obs.Metric.count t.disconnects);
        ("serve.errors", Obs.Metric.count t.errors);
        ("serve.hits_streamed", Obs.Metric.count t.hits_streamed);
        ("serve.in_flight", Obs.Metric.value t.in_flight_gauge);
        ("serve.in_flight_peak", Obs.Metric.peak t.in_flight_gauge);
        ("serve.capacity", capacity t);
        ("serve.requests", Obs.Metric.hist_count t.latency_us);
        ("serve.latency_us_p50", Obs.Metric.quantile t.latency_us 0.5);
        ("serve.latency_us_p99", Obs.Metric.quantile t.latency_us 0.99);
        ("serve.latency_us_max", Obs.Metric.hist_max t.latency_us);
        ("serve.queue_wait_us_p50", Obs.Metric.quantile t.queue_wait_us 0.5);
        ("serve.queue_wait_us_p99", Obs.Metric.quantile t.queue_wait_us 0.99);
      ])

let tick t c = locked t (fun () -> Obs.Metric.incr c)
let us_since t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
let send fd resp = Protocol.write_frame fd (Protocol.encode_response resp)

(* Best-effort reply on a connection we are about to drop (reject or
   error): never block past the send timeout, never raise. *)
let send_final fd resp =
  try send fd resp with Unix.Unix_error _ | Invalid_argument _ -> ()

let wire_outcome = function
  | Oasis.Engine.Complete -> Protocol.Complete
  | Oasis.Engine.Exhausted { remaining_bound } ->
    Protocol.Exhausted { remaining_bound }
  | Oasis.Engine.Searching ->
    (* Only reachable when the client's own max_hits cap stopped the
       stream; the client knows its cap was the reason. *)
    Protocol.Complete

let serve_search t (worker : Backend.worker) fd (s : Protocol.search) =
  match Backend.parse ~alphabet:t.cfg.alphabet s with
  | Error msg ->
    tick t t.bad_request;
    send_final fd (Protocol.Reject (Protocol.Bad_request msg))
  | Ok (query, config, max_hits, seed) ->
    let t0 = Unix.gettimeofday () in
    let stream = worker.search ~query ~config ~seed in
    Fun.protect ~finally:stream.finish @@ fun () ->
    let cap = match max_hits with Some n -> n | None -> max_int in
    let disconnected = ref false in
    let hits = ref 0 in
    (try
       while (not !disconnected) && !hits < cap do
         match stream.next () with
         | None -> raise Exit
         | Some h ->
           send fd
             (Protocol.Hit
                {
                  seq_index = h.Oasis.Hit.seq_index;
                  score = h.Oasis.Hit.score;
                  query_stop = h.Oasis.Hit.query_stop;
                  target_stop = h.Oasis.Hit.target_stop;
                  seq_id = stream.seq_id h.Oasis.Hit.seq_index;
                });
           incr hits
       done
     with
    | Exit -> ()
    | Unix.Unix_error
        ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN | Unix.EAGAIN), _, _)
      ->
      (* The client hung up mid-stream (its prerogative: every hit it
         already has is final) — abort this search's remaining work. *)
      disconnected := true);
    locked t (fun () -> Obs.Metric.add t.hits_streamed !hits);
    if !disconnected then tick t t.disconnects
    else begin
      let outcome = wire_outcome (stream.outcome ()) in
      send_final fd
        (Protocol.Done { outcome; hits = !hits; wall_us = us_since t0 });
      tick t t.completed
    end

let serve_request t worker fd = function
  | Protocol.Search s -> serve_search t worker fd s
  | Protocol.Ping ->
    send_final fd Protocol.Pong;
    tick t t.completed
  | Protocol.Stats ->
    send_final fd (Protocol.Stats_reply (stats_pairs t));
    tick t t.completed
  | Protocol.Sleep ms ->
    if t.cfg.allow_sleep then begin
      Unix.sleepf (float_of_int ms /. 1000.);
      send_final fd Protocol.Pong;
      tick t t.completed
    end
    else begin
      tick t t.bad_request;
      send_final fd
        (Protocol.Reject (Protocol.Bad_request "sleep verb is disabled"))
    end
  | Protocol.Shutdown ->
    stop t;
    send_final fd Protocol.Pong;
    tick t t.completed

let handle_conn t worker fd ~accepted_at =
  locked t (fun () -> Obs.Metric.observe t.queue_wait_us (us_since accepted_at));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.recv_timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.;
  (match Protocol.read_request (Protocol.reader_of_fd fd) with
  | Error Protocol.Closed -> tick t t.disconnects
  | Error e ->
    tick t t.bad_request;
    send_final fd (Protocol.Reject (Protocol.Bad_request (Protocol.error_to_string e)))
  | Ok req -> serve_request t worker fd req);
  locked t (fun () -> Obs.Metric.observe t.latency_us (us_since accepted_at))

(* One pool task per admitted connection. At most [workers] tasks run
   concurrently (that is the pool's size), so the free-slot stack can
   never be empty when a task starts. *)
let conn_task t fd accepted_at () =
  let worker =
    locked t (fun () ->
        match t.slots with
        | [] -> assert false
        | w :: rest ->
          t.slots <- rest;
          w)
  in
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () ->
          t.slots <- worker :: t.slots;
          t.in_flight <- t.in_flight - 1;
          Obs.Metric.set t.in_flight_gauge t.in_flight);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try handle_conn t worker fd ~accepted_at
      with e ->
        tick t t.errors;
        send_final fd
          (Protocol.Reject (Protocol.Server_error (Printexc.to_string e))))

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let admit t pool fd =
  let accepted_at = Unix.gettimeofday () in
  let verdict =
    locked t (fun () ->
        if Atomic.get t.stop_flag then `Reject Protocol.Shutting_down
        else if t.in_flight >= capacity t then begin
          Obs.Metric.incr t.rejected_overload;
          `Reject
            (Protocol.Overloaded { in_flight = t.in_flight; capacity = capacity t })
        end
        else begin
          t.in_flight <- t.in_flight + 1;
          Obs.Metric.set t.in_flight_gauge t.in_flight;
          Obs.Metric.incr t.accepted;
          `Admit
        end)
  in
  match verdict with
  | `Admit -> Oasis.Domain_pool.submit pool (conn_task t fd accepted_at)
  | `Reject reason ->
    (* The whole point of admission control: the refusal is immediate
       and typed, not a hang. Bound the send so a slow-reading client
       cannot stall the accept loop. *)
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.;
    send_final fd (Protocol.Reject reason);
    (try Unix.close fd with Unix.Unix_error _ -> ())

let run t =
  locked t (fun () ->
      if t.started then invalid_arg "Server.run: already ran";
      t.started <- true);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let workers = Array.init t.cfg.workers t.make_worker in
  t.slots <- Array.to_list workers;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      unlink_quiet t.cfg.socket_path;
      Array.iter (fun (w : Backend.worker) -> w.close ()) workers)
    (fun () ->
      unlink_quiet t.cfg.socket_path;
      Unix.bind lfd (Unix.ADDR_UNIX t.cfg.socket_path);
      Unix.listen lfd 64;
      let pool = Oasis.Domain_pool.create ~domains:t.cfg.workers in
      Fun.protect
        ~finally:(fun () -> Oasis.Domain_pool.shutdown pool)
        (fun () ->
          while not (Atomic.get t.stop_flag) do
            match Unix.select [ lfd ] [] [] 0.2 with
            | [], _, _ -> ()
            | _ :: _, _, _ -> (
              match Unix.accept lfd with
              | fd, _ -> admit t pool fd
              | exception
                  Unix.Unix_error
                    ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                      | Unix.ECONNABORTED ),
                      _,
                      _ ) ->
                ())
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done))
