(** The always-on search daemon.

    One Unix-domain listening socket; each accepted connection carries
    one {!Protocol.request} and its response stream. Admission control
    happens {e at accept time}, under one mutex: at most [workers +
    queue_depth] connections are in flight, and anything beyond that is
    answered immediately with a typed [Overloaded] reject — an
    overloaded daemon fails fast instead of hanging clients.

    Admitted connections become tasks on an {!Oasis.Domain_pool} of
    [workers] domains. Each running task borrows one {!Backend.worker}
    from a pool-sized stack (at most [workers] tasks run at once, so a
    slot is always free), reads the request, and serves it:

    - [Search] streams one [Hit] frame per result as the engine emits
      it — online, non-increasing scores — then a [Done] frame with the
      outcome and wall time. A client that hangs up mid-stream aborts
      the remaining work for that request only.
    - [Stats] returns the SLO counters and latency quantiles.
    - [Shutdown] answers [Pong] and stops the accept loop; in-flight
      requests drain before {!run} returns and unlinks the socket. *)

type config = {
  socket_path : string;
  alphabet : Bioseq.Alphabet.t;
  workers : int;  (** worker domains; >= 1 *)
  queue_depth : int;
      (** connections admitted beyond the running [workers]; 0 means
          reject whenever every worker is busy *)
  allow_sleep : bool;
      (** honor the {!Protocol.request.Sleep} verb (load-testing only) *)
  recv_timeout : float;
      (** seconds an admitted connection may take to send its request
          before the server drops it *)
}

val config :
  ?workers:int ->
  ?queue_depth:int ->
  ?allow_sleep:bool ->
  ?recv_timeout:float ->
  alphabet:Bioseq.Alphabet.t ->
  socket_path:string ->
  unit ->
  config
(** Defaults: 4 workers, queue depth 16, sleep disabled, 10 s receive
    timeout. Raises [Invalid_argument] on a non-positive worker count
    or negative queue depth. *)

type t

val create : config -> make_worker:(int -> Backend.worker) -> t
(** [make_worker i] builds worker [i]'s backend; all are created at the
    start of {!run} (in its thread, before the first accept). *)

val run : t -> unit
(** Bind, listen, and serve until a [Shutdown] request or {!stop}.
    Replaces any stale socket file at the path; unlinks it again, after
    draining in-flight requests, on the way out. Ignores [SIGPIPE] for
    the whole process (streaming to vanishing clients is normal
    operation). Can only be called once. *)

val stop : t -> unit
(** Ask the accept loop to wind down (thread-safe, returns
    immediately). [run] notices within its accept tick (~0.2 s). *)

val stats_pairs : t -> (string * int) list
(** The SLO snapshot the [Stats] verb serves: request counters
    (accepted / completed / rejected_overload / bad_request /
    disconnects / errors / hits_streamed), the in-flight gauge, and
    p50/p99 of the end-to-end latency and queue-wait histograms
    (microseconds, from {!Obs} histograms — quantiles are upper bucket
    bounds, within 2x). Deterministic key order. *)
