type t = { fd : Unix.file_descr; reader : Protocol.reader }

let connect path =
  (* An overloaded server rejects-and-closes at accept time, possibly
     before our request write lands; the write must surface as a typed
     result (the Reject frame is still readable), not kill the
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> { fd; reader = Protocol.reader_of_fd fd }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let send t req = Protocol.write_frame t.fd (Protocol.encode_request req)

(* Send, but let the server's early close win: whatever it already
   queued for us (a reject) is the answer. *)
let send_for_reply t req =
  try send t req
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
let recv t = Protocol.read_response t.reader
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request ~path req =
  let t = connect path in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      send_for_reply t req;
      recv t)

type search_end =
  | Finished of { outcome : Protocol.outcome; hits : int; wall_us : int }
  | Rejected of Protocol.reject
  | Cut of int
  | Transport of Protocol.error

let search ?stop_after ~path ~on_hit req =
  let t = connect path in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      send_for_reply t (Protocol.Search req);
      let rec go i =
        match recv t with
        | Ok (Protocol.Hit h) ->
          let i = i + 1 in
          on_hit i h;
          (match stop_after with
          | Some n when i >= n -> Cut i
          | _ -> go i)
        | Ok (Protocol.Done { outcome; hits; wall_us }) ->
          Finished { outcome; hits; wall_us }
        | Ok (Protocol.Reject r) -> Rejected r
        | Ok (Protocol.Stats_reply _ | Protocol.Pong) ->
          Transport (Protocol.Malformed "unexpected response to a search")
        | Error e -> Transport e
      in
      go 0)
