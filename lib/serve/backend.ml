(* Worker-owned index state. The server keeps one [worker] per pool
   worker for its whole lifetime; everything per-request lives in the
   [stream] the worker hands back. *)

type stream = {
  next : unit -> Oasis.Hit.t option;
  outcome : unit -> Oasis.Engine.outcome;
  seq_id : int -> string;
  finish : unit -> unit;
}

type worker = {
  search :
    query:Bioseq.Sequence.t ->
    config:Oasis.Engine.config ->
    seed:int option ->
    stream;
  close : unit -> unit;
}

let parse ~alphabet (s : Protocol.search) =
  match
    let matrix =
      match Scoring.Matrices.by_name s.matrix with
      | Some m -> m
      | None ->
        failwith
          (Printf.sprintf "unknown matrix %S (available: %s)" s.matrix
             (String.concat ", "
                (List.map Scoring.Submat.name Scoring.Matrices.all)))
    in
    let gap =
      match s.gap with
      | Protocol.Linear { penalty } -> Scoring.Gap.linear penalty
      | Protocol.Affine { open_cost; extend_cost } ->
        Scoring.Gap.affine ~open_cost ~extend_cost
    in
    if s.min_score < 1 then failwith "min_score must be >= 1";
    (match s.max_hits with
    | Some n when n < 0 -> failwith "max_hits must be >= 0"
    | _ -> ());
    (* Seeding raises the cutoff to the heuristic k-th best score,
       which is only monotone-safe for a stream capped at k hits. *)
    if s.seed_cutoff && s.max_hits = None then
      failwith "seed_cutoff requires max_hits (it is only exact for a capped \
                stream)";
    let seed = if s.seed_cutoff then s.max_hits else None in
    let budget =
      Oasis.Engine.budget ?max_columns:s.max_columns
        ?max_expanded:s.max_expanded ?time_limit:s.time_limit ()
    in
    let query = Bioseq.Sequence.make ~alphabet ~id:"query" s.query in
    if Bioseq.Sequence.length query = 0 then failwith "empty query";
    let config =
      Oasis.Engine.config ~matrix ~gap ~min_score:s.min_score ~budget ()
    in
    (query, config, s.max_hits, seed)
  with
  | v -> Ok v
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let db_seq_id db i = Bioseq.Sequence.id (Bioseq.Database.seq db i)

(* Cutoff seeding (see [Blast.Seed]): one heuristic pass over the
   worker's database(s); the k-th best heuristic score lower-bounds the
   true k-th best, so raising [min_score] to it leaves the capped
   stream bit-identical. [dbs] lets the live backend seed across its
   snapshot parts — only scores matter, so no index globalization is
   needed. *)
let seeded_config ~dbs ~query ~seed (config : Oasis.Engine.config) =
  match seed with
  | None -> config
  | Some k when k < 1 -> config
  | Some k ->
    let freqs =
      match dbs with
      | db :: _ -> Scoring.Background.of_database db
      | [] -> invalid_arg "Backend.seeded_config: no databases"
    in
    (match Scoring.Karlin.estimate ~matrix:config.matrix ~freqs () with
    | exception Scoring.Karlin.Unsupported_matrix _ -> config
    | params ->
      let bcfg =
        if Bioseq.Alphabet.size (Bioseq.Sequence.alphabet query) <= 4 then
          Blast.Search.default_dna ~matrix:config.matrix ~gap:config.gap
            ~params ()
        else
          Blast.Search.default_protein ~matrix:config.matrix ~gap:config.gap
            ~params ()
      in
      let scores =
        List.concat_map
          (fun db ->
            List.map
              (fun (h : Blast.Search.hit) -> h.score)
              (fst (Blast.Search.search bcfg ~query ~db)))
          dbs
      in
      let sorted = List.sort (fun a b -> compare (b : int) a) scores in
      match List.nth_opt sorted (k - 1) with
      | Some s when s > config.min_score -> { config with min_score = s }
      | _ -> config)

(* --- in-memory: one shared tree image, one session per worker --- *)

let mem ~tree ~db () =
  let session = Oasis.Engine.Mem.Session.create () in
  let search ~query ~config ~seed =
    let config = seeded_config ~dbs:[ db ] ~query ~seed config in
    let engine =
      Oasis.Engine.Mem.create ~session ~source:tree ~db ~query config
    in
    {
      next = (fun () -> Oasis.Engine.Mem.next engine);
      outcome = (fun () -> Oasis.Engine.Mem.outcome engine);
      seq_id = db_seq_id db;
      finish = ignore;
    }
  in
  { search; close = ignore }

(* --- on-disk: a private tree handle (the buffer pool is
   single-owner) opened once and kept hot across requests --- *)

let index_files dir =
  ( Filename.concat dir "symbols.dat",
    Filename.concat dir "internal.dat",
    Filename.concat dir "leaves.dat" )

let open_disk_tree ~alphabet ~dir ~buffer_blocks =
  let sym_p, int_p, leaf_p = index_files dir in
  let symbols = Storage.Device.open_file sym_p
  and internal = Storage.Device.open_file int_p
  and leaves = Storage.Device.open_file leaf_p in
  let pool =
    Storage.Buffer_pool.create ~block_size:2048 ~capacity:buffer_blocks
  in
  let tree = Storage.Disk_tree.open_ ~alphabet ~pool ~symbols ~internal ~leaves () in
  let close () = List.iter Storage.Device.close [ symbols; internal; leaves ] in
  (tree, close)

let disk ~dir ~alphabet ~db ~buffer_blocks () =
  let tree, close = open_disk_tree ~alphabet ~dir ~buffer_blocks in
  let session = Oasis.Engine.Disk.Session.create () in
  let search ~query ~config ~seed =
    let config = seeded_config ~dbs:[ db ] ~query ~seed config in
    let engine =
      Oasis.Engine.Disk.create ~session ~source:tree ~db ~query config
    in
    {
      next = (fun () -> Oasis.Engine.Disk.next engine);
      outcome = (fun () -> Oasis.Engine.Disk.outcome engine);
      seq_id = db_seq_id db;
      finish = ignore;
    }
  in
  { search; close }

(* --- sharded on-disk: every shard's tree open in this worker,
   searched through the demand-driven Multi merge (identical release
   rule to the multicore coordinator, so identical streams) --- *)

let multi_stream ~parts ~seq_id ~query ~config ~finish =
  let m = Oasis.Multi.create ~parts ~query config in
  {
    next = (fun () -> Oasis.Multi.next m);
    outcome = (fun () -> Oasis.Multi.outcome m);
    seq_id;
    finish;
  }

let sharded ~dir ~alphabet ~db ~buffer_blocks () =
  let entries = Storage.Shard_manifest.load ~dir in
  let k = Array.length entries in
  let per_shard_blocks = max 16 (buffer_blocks / max 1 k) in
  let closers = ref [] in
  let parts =
    Array.mapi
      (fun i (e : Storage.Shard_manifest.entry) ->
        let tree, close =
          open_disk_tree ~alphabet
            ~dir:(Storage.Shard_manifest.shard_dir dir i)
            ~buffer_blocks:per_shard_blocks
        in
        closers := close :: !closers;
        let seqs =
          List.init e.num_seqs (fun j ->
              Bioseq.Database.seq db (e.first_seq + j))
        in
        Oasis.Multi.Disk
          { tree; db = Bioseq.Database.make seqs; first_seq = e.first_seq })
      entries
  in
  let search ~query ~config ~seed =
    let config = seeded_config ~dbs:[ db ] ~query ~seed config in
    multi_stream ~parts ~seq_id:(db_seq_id db) ~query ~config ~finish:ignore
  in
  { search; close = (fun () -> List.iter (fun f -> f ()) !closers) }

(* --- live log-structured index: pin a snapshot per request, so the
   search sees a consistent segment set while appends continue --- *)

let parts_seq_id parts i =
  (* Parts are in increasing first_seq order; find the owning part. *)
  let n = Array.length parts in
  let first_seq = function
    | Oasis.Multi.Mem p -> p.first_seq
    | Oasis.Multi.Disk p -> p.first_seq
  in
  let rec owner j =
    if j + 1 < n && first_seq parts.(j + 1) <= i then owner (j + 1) else j
  in
  let j = owner 0 in
  match parts.(j) with
  | Oasis.Multi.Mem p -> db_seq_id p.db (i - p.first_seq)
  | Oasis.Multi.Disk p -> db_seq_id p.db (i - p.first_seq)

let live ~dir ~alphabet () =
  let t, _recovery = Storage.Live_index.open_ ~alphabet (Storage.Vfs.dir dir) in
  let search ~query ~config ~seed =
    let snap = Storage.Live_index.snapshot t in
    let release () = Storage.Live_index.release t snap in
    match Oasis.Multi.parts_of_snapshot snap with
    | [||] ->
      release ();
      {
        next = (fun () -> None);
        outcome = (fun () -> Oasis.Engine.Complete);
        seq_id = (fun _ -> "?");
        finish = ignore;
      }
    | parts ->
      (match
         let dbs =
           Array.to_list
             (Array.map
                (function
                  | Oasis.Multi.Mem p -> p.db
                  | Oasis.Multi.Disk p -> p.db)
                parts)
         in
         let config = seeded_config ~dbs ~query ~seed config in
         multi_stream ~parts ~seq_id:(parts_seq_id parts) ~query ~config
           ~finish:release
       with
      | s -> s
      | exception e ->
        release ();
        raise e)
  in
  { search; close = (fun () -> Storage.Live_index.close t) }
