(* Frame: [magic 0xA5][tag][len u32 BE][crc32 u32 BE][payload].
   Payload scalars: ints as 8-byte BE two's complement, strings
   length-prefixed (u32), options behind a one-byte presence tag,
   floats as IEEE bits. Everything is fixed-width or length-prefixed,
   so decode never scans — it either consumes exactly the declared
   bytes or fails typed. *)

type gap =
  | Linear of { penalty : int }
  | Affine of { open_cost : int; extend_cost : int }

type search = {
  query : string;
  matrix : string;
  gap : gap;
  min_score : int;
  max_hits : int option;
  max_columns : int option;
  max_expanded : int option;
  time_limit : float option;
  seed_cutoff : bool;
}

type request = Search of search | Stats | Ping | Sleep of int | Shutdown

type reject =
  | Overloaded of { in_flight : int; capacity : int }
  | Bad_request of string
  | Shutting_down
  | Server_error of string

type outcome = Complete | Exhausted of { remaining_bound : int }

type hit = {
  seq_index : int;
  score : int;
  query_stop : int;
  target_stop : int;
  seq_id : string;
}

type response =
  | Hit of hit
  | Done of { outcome : outcome; hits : int; wall_us : int }
  | Reject of reject
  | Stats_reply of (string * int) list
  | Pong

type error =
  | Closed
  | Truncated
  | Bad_magic of int
  | Unknown_tag of int
  | Oversized of int
  | Crc_mismatch
  | Malformed of string

let error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Bad_magic b -> Printf.sprintf "bad frame magic 0x%02x" b
  | Unknown_tag t -> Printf.sprintf "unknown frame tag 0x%02x" t
  | Oversized n -> Printf.sprintf "oversized frame (%d-byte payload)" n
  | Crc_mismatch -> "frame checksum mismatch"
  | Malformed msg -> Printf.sprintf "malformed payload: %s" msg

let magic = 0xA5
let header_len = 10
let max_payload = 16 * 1024 * 1024

(* Request tags sit below 0x80, response tags above — a frame's
   direction is visible in the tag, so a confused peer fails with
   [Unknown_tag] instead of misparsing. *)
let tag_search = 0x01
let tag_stats = 0x02
let tag_ping = 0x03
let tag_sleep = 0x04
let tag_shutdown = 0x05
let tag_hit = 0x81
let tag_done = 0x82
let tag_reject = 0x83
let tag_stats_reply = 0x84
let tag_pong = 0x85

(* --- payload encoding --- *)

let put_int b v = Buffer.add_int64_be b (Int64.of_int v)

let put_u32 b v =
  if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Protocol: u32 out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_opt put b = function
  | None -> Buffer.add_uint8 b 0
  | Some v ->
    Buffer.add_uint8 b 1;
    put b v

let put_float b f = Buffer.add_int64_be b (Int64.bits_of_float f)

let encode_payload fill =
  let b = Buffer.create 64 in
  fill b;
  Buffer.contents b

let request_payload = function
  | Search s ->
    ( tag_search,
      encode_payload (fun b ->
          put_str b s.query;
          put_str b s.matrix;
          (match s.gap with
          | Linear { penalty } ->
            Buffer.add_uint8 b 0;
            put_int b penalty
          | Affine { open_cost; extend_cost } ->
            Buffer.add_uint8 b 1;
            put_int b open_cost;
            put_int b extend_cost);
          put_int b s.min_score;
          put_opt put_int b s.max_hits;
          put_opt put_int b s.max_columns;
          put_opt put_int b s.max_expanded;
          put_opt put_float b s.time_limit;
          (* Trailing extension byte; absent in older frames, which
             decode as [seed_cutoff = false]. *)
          Buffer.add_uint8 b (if s.seed_cutoff then 1 else 0)) )
  | Stats -> (tag_stats, "")
  | Ping -> (tag_ping, "")
  | Sleep ms -> (tag_sleep, encode_payload (fun b -> put_int b ms))
  | Shutdown -> (tag_shutdown, "")

let response_payload = function
  | Hit h ->
    ( tag_hit,
      encode_payload (fun b ->
          put_int b h.seq_index;
          put_int b h.score;
          put_int b h.query_stop;
          put_int b h.target_stop;
          put_str b h.seq_id) )
  | Done { outcome; hits; wall_us } ->
    ( tag_done,
      encode_payload (fun b ->
          (match outcome with
          | Complete -> Buffer.add_uint8 b 0
          | Exhausted { remaining_bound } ->
            Buffer.add_uint8 b 1;
            put_int b remaining_bound);
          put_int b hits;
          put_int b wall_us) )
  | Reject r ->
    ( tag_reject,
      encode_payload (fun b ->
          match r with
          | Overloaded { in_flight; capacity } ->
            Buffer.add_uint8 b 0;
            put_int b in_flight;
            put_int b capacity
          | Bad_request msg ->
            Buffer.add_uint8 b 1;
            put_str b msg
          | Shutting_down -> Buffer.add_uint8 b 2
          | Server_error msg ->
            Buffer.add_uint8 b 3;
            put_str b msg) )
  | Stats_reply items ->
    ( tag_stats_reply,
      encode_payload (fun b ->
          put_int b (List.length items);
          List.iter
            (fun (name, v) ->
              put_str b name;
              put_int b v)
            items) )
  | Pong -> (tag_pong, "")

let frame (tag, payload) =
  if String.length payload >= max_payload then
    invalid_arg "Protocol: payload too large";
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_uint8 b magic;
  Buffer.add_uint8 b tag;
  put_u32 b (String.length payload);
  put_u32 b (Storage.Crc32.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let encode_request r = frame (request_payload r)
let encode_response r = frame (response_payload r)

(* --- payload decoding --- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.s then raise (Bad "ran off the end")

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_int c =
  need c 8;
  let v = Int64.to_int (String.get_int64_be c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.s c.pos) land 0xFFFF_FFFF in
  c.pos <- c.pos + 4;
  v

let get_str c =
  let n = get_u32 c in
  need c n;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let get_opt get c =
  match get_u8 c with
  | 0 -> None
  | 1 -> Some (get c)
  | t -> raise (Bad (Printf.sprintf "bad option tag %d" t))

let get_float c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_be c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let decode payload parse =
  let c = { s = payload; pos = 0 } in
  match parse c with
  | v ->
    if c.pos <> String.length payload then
      Error (Malformed "trailing bytes")
    else Ok v
  | exception Bad msg -> Error (Malformed msg)

let decode_request tag payload =
  if tag = tag_search then
    decode payload (fun c ->
        let query = get_str c in
        let matrix = get_str c in
        let gap =
          match get_u8 c with
          | 0 -> Linear { penalty = get_int c }
          | 1 ->
            let open_cost = get_int c in
            let extend_cost = get_int c in
            Affine { open_cost; extend_cost }
          | t -> raise (Bad (Printf.sprintf "bad gap tag %d" t))
        in
        let min_score = get_int c in
        let max_hits = get_opt get_int c in
        let max_columns = get_opt get_int c in
        let max_expanded = get_opt get_int c in
        let time_limit = get_opt get_float c in
        let seed_cutoff =
          (* Frames from writers predating the field end here. *)
          if c.pos >= String.length c.s then false
          else
            match get_u8 c with
            | 0 -> false
            | 1 -> true
            | t -> raise (Bad (Printf.sprintf "bad seed_cutoff tag %d" t))
        in
        Search
          {
            query;
            matrix;
            gap;
            min_score;
            max_hits;
            max_columns;
            max_expanded;
            time_limit;
            seed_cutoff;
          })
  else if tag = tag_stats then decode payload (fun _ -> Stats)
  else if tag = tag_ping then decode payload (fun _ -> Ping)
  else if tag = tag_sleep then decode payload (fun c -> Sleep (get_int c))
  else if tag = tag_shutdown then decode payload (fun _ -> Shutdown)
  else Error (Unknown_tag tag)

let decode_response tag payload =
  if tag = tag_hit then
    decode payload (fun c ->
        let seq_index = get_int c in
        let score = get_int c in
        let query_stop = get_int c in
        let target_stop = get_int c in
        let seq_id = get_str c in
        Hit { seq_index; score; query_stop; target_stop; seq_id })
  else if tag = tag_done then
    decode payload (fun c ->
        let outcome =
          match get_u8 c with
          | 0 -> Complete
          | 1 -> Exhausted { remaining_bound = get_int c }
          | t -> raise (Bad (Printf.sprintf "bad outcome tag %d" t))
        in
        let hits = get_int c in
        let wall_us = get_int c in
        Done { outcome; hits; wall_us })
  else if tag = tag_reject then
    decode payload (fun c ->
        let r =
          match get_u8 c with
          | 0 ->
            let in_flight = get_int c in
            let capacity = get_int c in
            Overloaded { in_flight; capacity }
          | 1 -> Bad_request (get_str c)
          | 2 -> Shutting_down
          | 3 -> Server_error (get_str c)
          | t -> raise (Bad (Printf.sprintf "bad reject tag %d" t))
        in
        Reject r)
  else if tag = tag_stats_reply then
    decode payload (fun c ->
        let n = get_int c in
        if n < 0 || n > 100_000 then
          raise (Bad (Printf.sprintf "bad stats count %d" n));
        let items =
          List.init n (fun _ ->
              let name = get_str c in
              let v = get_int c in
              (name, v))
        in
        Stats_reply items)
  else if tag = tag_pong then decode payload (fun _ -> Pong)
  else Error (Unknown_tag tag)

(* --- framed reading --- *)

type reader = bytes -> int -> int -> int

let rec read_fd fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_fd fd buf off len
  | exception
      Unix.Unix_error
        ((Unix.ECONNRESET | Unix.EPIPE | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
    (* A vanished (or silent past its receive timeout) peer is an
       end-of-stream, not a crash: the frame layer reports Truncated or
       Closed and the caller drops the connection. *)
    0

let reader_of_fd fd : reader = fun buf off len -> read_fd fd buf off len

let reader_of_string s : reader =
  let pos = ref 0 in
  fun buf off len ->
    let n = min len (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n

(* Fill [buf] entirely; [n] bytes were already consumed before this
   call (distinguishes a clean Closed from a mid-frame Truncated). *)
let read_exactly (read : reader) buf already =
  let len = Bytes.length buf in
  let rec go off =
    if off >= len then Ok ()
    else
      match read buf off (len - off) with
      | 0 -> if already + off = 0 then Error Closed else Error Truncated
      | n -> go (off + n)
  in
  go 0

let read_frame read =
  let header = Bytes.create header_len in
  match read_exactly read header 0 with
  | Error _ as e -> e
  | Ok () ->
    let m = Char.code (Bytes.get header 0) in
    if m <> magic then Error (Bad_magic m)
    else begin
      let tag = Char.code (Bytes.get header 1) in
      let len =
        Int32.to_int (Bytes.get_int32_be header 2) land 0xFFFF_FFFF
      in
      let crc =
        Int32.to_int (Bytes.get_int32_be header 6) land 0xFFFF_FFFF
      in
      if len >= max_payload then Error (Oversized len)
      else begin
        let payload = Bytes.create len in
        match read_exactly read payload header_len with
        | Error Closed | Error Truncated -> Error Truncated
        | Error _ as e -> e
        | Ok () ->
          if Storage.Crc32.bytes payload <> crc then Error Crc_mismatch
          else Ok (tag, Bytes.unsafe_to_string payload)
      end
    end

let read_request read =
  match read_frame read with
  | Error _ as e -> e
  | Ok (tag, payload) -> decode_request tag payload

let read_response read =
  match read_frame read with
  | Error _ as e -> e
  | Ok (tag, payload) -> decode_response tag payload

let write_frame fd s =
  let buf = Bytes.unsafe_of_string s in
  let len = Bytes.length buf in
  let rec go off =
    if off < len then begin
      let n =
        try Unix.write fd buf off (len - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n)
    end
  in
  go 0
