(** Wire protocol for the search daemon.

    One connection carries one request and its response stream. Every
    message travels in a framed envelope:

    {v
      byte 0      magic 0xA5
      byte 1      tag (request 0x01-0x05, response 0x81-0x85)
      bytes 2-5   payload length, u32 big-endian (< {!max_payload})
      bytes 6-9   CRC-32 of the payload, big-endian
      bytes 10-   payload
    v}

    The length prefix lets a reader consume exactly one frame from a
    byte stream without lookahead; the checksum turns a corrupted frame
    into a typed {!error} instead of a misparse. Integers in payloads
    are 8-byte big-endian two's complement, strings are length-prefixed,
    options carry a one-byte presence tag, floats travel as their IEEE
    bit pattern — so encoding round-trips exactly (property-tested).

    The streaming shape of a search response is what makes the daemon
    {e online} in the paper's sense: each {!response.Hit} frame is final
    the moment it is sent (scores are non-increasing), so a client may
    hang up mid-stream once results drop below its threshold, and the
    server aborts the remaining work. *)

type gap =
  | Linear of { penalty : int }
  | Affine of { open_cost : int; extend_cost : int }

type search = {
  query : string;  (** residues, parsed server-side under its alphabet *)
  matrix : string;  (** substitution-matrix name, e.g. ["pam30"] *)
  gap : gap;
  min_score : int;
  max_hits : int option;  (** server stops the stream after this many *)
  max_columns : int option;  (** per-request {!Oasis.Engine.budget} *)
  max_expanded : int option;
  time_limit : float option;
  seed_cutoff : bool;
      (** seed the prune cutoff with a heuristic BLAST first pass
          (monotone-safe for the [max_hits]-capped stream, which it
          therefore requires — see {!Blast.Seed}); encoded as a
          trailing byte so frames from older writers decode as
          [false] *)
}

type request =
  | Search of search
  | Stats  (** server SLO metrics as [(name, value)] pairs *)
  | Ping
  | Sleep of int
      (** hold a worker for this many milliseconds — a deterministic
          load generator for overload tests; rejected unless the server
          was started with [allow_sleep] *)
  | Shutdown

(** Typed refusal — the admission-control contract: an overloaded
    server answers immediately with [Overloaded] rather than hanging
    the client. *)
type reject =
  | Overloaded of { in_flight : int; capacity : int }
  | Bad_request of string
  | Shutting_down
  | Server_error of string

type outcome = Complete | Exhausted of { remaining_bound : int }
(** {!Oasis.Engine.outcome} on the wire ([Searching] cannot escape: the
    server only reports after the stream ends). *)

type hit = {
  seq_index : int;
  score : int;
  query_stop : int;
  target_stop : int;
  seq_id : string;  (** resolved server-side; clients need no FASTA *)
}

type response =
  | Hit of hit  (** one per result, streamed in non-increasing score *)
  | Done of { outcome : outcome; hits : int; wall_us : int }
      (** terminates every successful search stream *)
  | Reject of reject
  | Stats_reply of (string * int) list
  | Pong

(** How reading a frame can fail. [Closed] is a clean end-of-stream
    before any byte of a frame; everything else is a malformed or
    damaged frame. *)
type error =
  | Closed
  | Truncated  (** end-of-stream inside a frame *)
  | Bad_magic of int
  | Unknown_tag of int
  | Oversized of int  (** declared payload length, >= {!max_payload} *)
  | Crc_mismatch
  | Malformed of string  (** payload did not parse as its tag's body *)

val error_to_string : error -> string

val max_payload : int
(** 16 MiB — far above any real frame; a guard against reading a
    garbage length prefix as an allocation size. *)

val encode_request : request -> string
(** The full frame (header + payload), ready to write. *)

val encode_response : response -> string

type reader = bytes -> int -> int -> int
(** [reader buf off len] reads at most [len] bytes into [buf] at
    [off], returning the count, 0 at end-of-stream. Decoding is
    parameterized over this so tests can feed frames from strings or
    fault-injected devices instead of sockets. *)

val reader_of_fd : Unix.file_descr -> reader
(** Retries [EINTR]; maps [ECONNRESET]/[EPIPE] and a receive-timeout
    ([EAGAIN]) to end-of-stream, so a vanished client surfaces as
    [Truncated]/[Closed] rather than an exception. *)

val reader_of_string : string -> reader
(** Reads the string once, then end-of-stream — truncation tests slice
    the string first. *)

val read_request : reader -> (request, error) result
(** Consume exactly one frame and decode it as a request. Responses'
    tags (or any other) yield [Unknown_tag]; trailing payload bytes
    yield [Malformed]. *)

val read_response : reader -> (response, error) result

val write_frame : Unix.file_descr -> string -> unit
(** Write the whole encoded frame (retrying short writes and [EINTR]).
    Raises [Unix.Unix_error] — [EPIPE] here is how the server learns a
    streaming client hung up. *)
