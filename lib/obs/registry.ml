type metric =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

(* Reversed registration order; [items] re-reverses. Registries hold a
   handful of entries, so association-list lookup is fine. *)
type t = { mutable rev_items : (string * metric) list }

let create () = { rev_items = [] }
let find t name = List.assoc_opt name t.rev_items

let register t name make wrap unwrap kind =
  match find t name with
  | None ->
      let m = make () in
      t.rev_items <- (name, wrap m) :: t.rev_items;
      m
  | Some existing -> (
      match unwrap existing with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf "Obs.Registry: %S already registered, not a %s" name
               kind))

let counter t name =
  register t name Metric.counter
    (fun c -> Counter c)
    (function Counter c -> Some c | _ -> None)
    "counter"

let gauge t name =
  register t name Metric.gauge
    (fun g -> Gauge g)
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let histogram t name =
  register t name Metric.histogram
    (fun h -> Histogram h)
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let items t = List.rev t.rev_items

let pp ppf t =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Format.fprintf ppf "%-32s %a@," name Metric.pp_counter c
      | Gauge g -> Format.fprintf ppf "%-32s %a@," name Metric.pp_gauge g
      | Histogram h ->
          Format.fprintf ppf "%-32s %a@," name Metric.pp_histogram h)
    (items t)
