(** Structured trace sink.

    Streams timestamped search events to a channel in one of two
    formats:

    - [Jsonl]: one JSON object per line — easy to grep and to consume
      from scripts ([scripts/trace_check.py]).
    - [Chrome]: a JSON array of Chrome [trace_event] objects, loadable
      directly in [chrome://tracing] or {{:https://ui.perfetto.dev}
      Perfetto}.

    Both formats share the same per-event schema (a superset of the
    trace_event fields): [name], [ph] (event kind), [ts] (microseconds
    since the sink was created), [pid], [tid], and an optional [args]
    object. Timestamps are clamped to be non-decreasing in emission
    order, so a trace replays cleanly even if the wall clock steps.

    Writing an event allocates (it formats JSON), so sinks are meant
    for [--trace] runs, not for always-on production counters — that
    is what {!Metric} is for. Sinks are not thread-safe; callers that
    trace from multiple domains must serialize (the sharded search
    emits only under its coordinator lock). *)

type t

type format = Jsonl | Chrome

val format_of_path : string -> format
(** [Chrome] for [.json] / [.trace] paths, [Jsonl] otherwise. *)

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

val create : ?format:format -> out_channel -> t
(** Default format is [Jsonl]. The caller keeps ownership of the
    channel but must call {!close} before closing it (Chrome traces
    need the closing bracket). *)

val instant : t -> ?tid:int -> ?args:(string * arg) list -> string -> unit
(** Point event ([ph = "i"]). *)

val counter : t -> ?tid:int -> string -> (string * arg) list -> unit
(** Counter sample ([ph = "C"]); Chrome renders these as stacked
    charts. *)

val complete : t -> ?tid:int -> ?args:(string * arg) list ->
  start_us:int -> dur_us:int -> string -> unit
(** Complete span ([ph = "X"]) with explicit start and duration, used
    to lay phase summaries on the timeline. *)

val now_us : t -> int
(** Microseconds since the sink was created (clamped monotonic, same
    clock as event timestamps). *)

val events : t -> int
(** Events written so far. *)

val close : t -> unit
(** Terminate the stream (writes the closing bracket for [Chrome])
    and flush. Does not close the underlying channel. Idempotent. *)
