type t = {
  names : string array;
  acc : float array;
  mutable current : int; (* -1 = stopped *)
  mutable since : float; (* clock at last switch, valid when running *)
}

let create ~phases =
  if Array.length phases = 0 then invalid_arg "Obs.Timer.create: no phases";
  {
    names = Array.copy phases;
    acc = Array.make (Array.length phases) 0.;
    current = -1;
    since = 0.;
  }

let now () = Unix.gettimeofday ()

let switch t p =
  let clock = now () in
  if t.current >= 0 then t.acc.(t.current) <- t.acc.(t.current) +. clock -. t.since;
  t.current <- p;
  t.since <- clock

let pause t =
  if t.current >= 0 then begin
    let clock = now () in
    t.acc.(t.current) <- t.acc.(t.current) +. clock -. t.since;
    t.current <- -1
  end

let elapsed t p = t.acc.(p)
let total t = Array.fold_left ( +. ) 0. t.acc
let phase_count t = Array.length t.names
let phase_name t p = t.names.(p)

let phases t =
  Array.to_list (Array.mapi (fun i name -> (name, t.acc.(i))) t.names)

let reset t =
  Array.fill t.acc 0 (Array.length t.acc) 0.;
  t.current <- -1

let pp ppf t =
  let tot = total t in
  let rows =
    List.sort (fun (_, a) (_, b) -> compare (b : float) a) (phases t)
  in
  List.iter
    (fun (name, s) ->
      let pct = if tot > 0. then 100. *. s /. tot else 0. in
      Format.fprintf ppf "%-12s %8.2f ms  %5.1f%%@," name (s *. 1e3) pct)
    rows;
  Format.fprintf ppf "%-12s %8.2f ms@," "total" (tot *. 1e3)
