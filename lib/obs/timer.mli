(** Named-scope phase timer.

    A timer carries a fixed set of phases (named at creation) and at
    any moment is either stopped or attributing wall time to exactly
    one phase. [switch] moves attribution between phases and [pause]
    stops it; both read the clock once, so the per-phase times
    telescope: the sum over phases equals the total wall time spent
    between the first [switch] and the matching [pause], with no gaps
    and no double counting. That identity is what lets [search
    --stats] promise that phase times sum to the instrumented wall
    time. [switch] and [pause] never allocate. *)

type t

val create : phases:string array -> t
(** Phase ids are indices into [phases]. *)

val switch : t -> int -> unit
(** [switch t p] accrues elapsed time to the currently running phase
    (if any) and starts attributing to phase [p]. Starting the timer
    when stopped is just [switch]. *)

val pause : t -> unit
(** Accrue to the running phase and stop. No-op when stopped. *)

val elapsed : t -> int -> float
(** Accrued seconds for one phase (excludes any currently running
    span). *)

val total : t -> float
(** Sum of all phase times. *)

val phase_count : t -> int
val phase_name : t -> int -> string

val phases : t -> (string * float) list
(** [(name, seconds)] in phase-id order. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
(** Phase table sorted by descending time with percentages of
    [total]. *)
