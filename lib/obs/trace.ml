type format = Jsonl | Chrome

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type t = {
  oc : out_channel;
  format : format;
  t0 : float;
  mutable last_us : int;
  mutable events : int;
  mutable closed : bool;
  buf : Buffer.t;
}

let format_of_path path =
  let lower = String.lowercase_ascii path in
  if
    Filename.check_suffix lower ".json" || Filename.check_suffix lower ".trace"
  then Chrome
  else Jsonl

let create ?(format = Jsonl) oc =
  let t =
    {
      oc;
      format;
      t0 = Unix.gettimeofday ();
      last_us = 0;
      events = 0;
      closed = false;
      buf = Buffer.create 256;
    }
  in
  (match format with Chrome -> output_string oc "[\n" | Jsonl -> ());
  t

let now_us t =
  let us = int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e6) in
  let us = if us < t.last_us then t.last_us else us in
  t.last_us <- us;
  us

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_arg buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s -> add_json_string buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let emit t ~ph ~tid ~ts ?dur ?args name =
  if t.closed then invalid_arg "Obs.Trace: sink is closed";
  let buf = t.buf in
  Buffer.clear buf;
  Buffer.add_string buf "{\"name\":";
  add_json_string buf name;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%c\"" ph);
  Buffer.add_string buf (Printf.sprintf ",\"ts\":%d" ts);
  (match dur with
  | Some d -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" tid);
  (match ph with
  | 'i' -> Buffer.add_string buf ",\"s\":\"t\""
  | _ -> ());
  (match args with
  | None | Some [] -> ()
  | Some kvs ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_json_string buf k;
          Buffer.add_char buf ':';
          add_arg buf v)
        kvs;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  (match t.format with
  | Jsonl ->
      Buffer.add_char buf '\n';
      Buffer.output_buffer t.oc buf
  | Chrome ->
      if t.events > 0 then output_string t.oc ",\n";
      Buffer.output_buffer t.oc buf);
  t.events <- t.events + 1

let instant t ?(tid = 1) ?args name =
  emit t ~ph:'i' ~tid ~ts:(now_us t) ?args name

let counter t ?(tid = 1) name args =
  emit t ~ph:'C' ~tid ~ts:(now_us t) ~args name

let complete t ?(tid = 1) ?args ~start_us ~dur_us name =
  let start_us = if start_us < 0 then 0 else start_us in
  let dur_us = if dur_us < 0 then 0 else dur_us in
  if start_us + dur_us > t.last_us then t.last_us <- start_us + dur_us;
  emit t ~ph:'X' ~tid ~ts:start_us ~dur:dur_us ?args name

let events t = t.events

let close t =
  if not t.closed then begin
    (match t.format with Chrome -> output_string t.oc "\n]\n" | Jsonl -> ());
    flush t.oc;
    t.closed <- true
  end
