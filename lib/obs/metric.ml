type counter = { mutable count : int }

let counter () = { count = 0 }
let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count

type gauge = { mutable value : int; mutable peak : int }

let gauge () = { value = 0; peak = 0 }

let set g v =
  g.value <- v;
  if v > g.peak then g.peak <- v

let value g = g.value
let peak g = g.peak

(* Bucket 0: v <= 0. Bucket k >= 1: 2^(k-1) <= v < 2^k. With 63
   buckets the top bucket absorbs everything >= 2^61, so indexing
   needs no clamp beyond the loop below. *)
let buckets = 63

type histogram = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let histogram () =
  { counts = Array.make buckets 0; n = 0; sum = 0; min_v = 0; max_v = 0 }

(* floor(log2 v) + 1 for v >= 1, computed by binary-stepped shifts:
   branchy but allocation-free and fast for the small values the
   search produces (depths, probe lengths, column counts). *)
let[@inline] bucket_of v =
  if v <= 0 then 0
  else begin
    let v = ref v and b = ref 0 in
    if !v >= 1 lsl 32 then begin
      v := !v lsr 32;
      b := !b + 32
    end;
    if !v >= 1 lsl 16 then begin
      v := !v lsr 16;
      b := !b + 16
    end;
    if !v >= 1 lsl 8 then begin
      v := !v lsr 8;
      b := !b + 8
    end;
    if !v >= 1 lsl 4 then begin
      v := !v lsr 4;
      b := !b + 4
    end;
    if !v >= 1 lsl 2 then begin
      v := !v lsr 2;
      b := !b + 2
    end;
    if !v >= 1 lsl 1 then b := !b + 1;
    !b + 1
  end

let observe h v =
  let b = bucket_of v in
  h.counts.(b) <- h.counts.(b) + 1;
  if h.n = 0 then begin
    h.min_v <- v;
    h.max_v <- v
  end
  else begin
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end;
  h.n <- h.n + 1;
  if v > 0 then h.sum <- h.sum + v

let hist_count h = h.n
let hist_sum h = h.sum
let hist_min h = h.min_v
let hist_max h = h.max_v
let mean h = if h.n = 0 then 0. else float_of_int h.sum /. float_of_int h.n

let bucket_hi b = if b = 0 then 0 else 1 lsl b
let bucket_lo b = if b <= 1 then 0 else 1 lsl (b - 1)

let quantile h q =
  if h.n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.n)) in
      if r < 1 then 1 else if r > h.n then h.n else r
    in
    let b = ref 0 and seen = ref 0 in
    (try
       for i = 0 to buckets - 1 do
         seen := !seen + h.counts.(i);
         if !seen >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    let hi = bucket_hi !b in
    if hi > h.max_v then h.max_v else hi
  end

let iter_buckets h f =
  for b = 0 to buckets - 1 do
    if h.counts.(b) > 0 then
      f ~lo:(bucket_lo b) ~hi:(bucket_hi b) ~count:h.counts.(b)
  done

let pp_counter ppf c = Format.fprintf ppf "%d" c.count
let pp_gauge ppf g = Format.fprintf ppf "%d (peak %d)" g.value g.peak

let pp_histogram ppf h =
  if h.n = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50<=%d p99<=%d max=%d" h.n (mean h)
      (quantile h 0.5) (quantile h 0.99) h.max_v
