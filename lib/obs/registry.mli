(** Named metric registry.

    A registry owns a flat, registration-ordered list of named metrics
    so front ends (CLI [--stats], the bench harness) can print every
    instrumented layer uniformly without knowing which subsystem
    registered what. Registration happens once at instrumentation
    setup; the returned cells are then updated directly, so the
    registry itself never sits on a hot path. *)

type t

type metric =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

val create : unit -> t

val counter : t -> string -> Metric.counter
(** [counter t name] returns the counter registered under [name],
    creating it on first use. Raises [Invalid_argument] if [name] is
    already registered as a different metric kind. *)

val gauge : t -> string -> Metric.gauge
val histogram : t -> string -> Metric.histogram

val items : t -> (string * metric) list
(** All metrics in registration order. *)

val find : t -> string -> metric option

val pp : Format.formatter -> t -> unit
(** One line per metric, registration order. *)
