(** Allocation-conscious metric primitives.

    Every metric is a handful of mutable scalars (plus one fixed [int
    array] for histograms) allocated once at registration time.
    Recording an observation never allocates, so these are safe to poke
    from the search hot path when instrumentation is enabled. *)

(** {1 Counters}

    Monotonic event counts. *)

type counter

val counter : unit -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

(** {1 Gauges}

    A point-in-time level plus its high-water mark. *)

type gauge

val gauge : unit -> gauge

val set : gauge -> int -> unit
(** [set g v] records the current level and updates the peak. *)

val value : gauge -> int
val peak : gauge -> int

(** {1 Histograms}

    Fixed-bucket log2 histograms over non-negative ints. Bucket 0
    holds values [<= 0]; bucket [k >= 1] holds values [v] with
    [2^(k-1) <= v < 2^k]. 63 buckets cover the whole int range, so
    [observe] never branches on overflow. *)

type histogram

val histogram : unit -> histogram

val observe : histogram -> int -> unit
(** Record one value. Never allocates. *)

val hist_count : histogram -> int
(** Number of observations. *)

val hist_sum : histogram -> int
(** Sum of observed values (values [< 0] contribute 0). *)

val hist_min : histogram -> int
(** Smallest observed value; [0] when empty. *)

val hist_max : histogram -> int
(** Largest observed value; [0] when empty. *)

val mean : histogram -> float
(** Arithmetic mean of observations; [0.] when empty. *)

val quantile : histogram -> float -> int
(** [quantile h q] (with [0 <= q <= 1]) returns an upper bound for the
    [q]-quantile: the exclusive upper edge of the bucket holding the
    [q * count]-th observation (clamped to [hist_max h]). Accurate to
    bucket resolution, i.e. within 2x. *)

val iter_buckets : histogram -> (lo:int -> hi:int -> count:int -> unit) -> unit
(** Iterate non-empty buckets in increasing order. [lo] is inclusive,
    [hi] exclusive ([lo = hi = 0] for the zero bucket). *)

val pp_counter : Format.formatter -> counter -> unit
val pp_gauge : Format.formatter -> gauge -> unit

val pp_histogram : Format.formatter -> histogram -> unit
(** One-line summary: count, mean, p50, p99, max. *)
