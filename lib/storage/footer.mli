(** Per-component integrity footer: 16 bytes at the tail of each index
    component holding a magic number, a format version, the payload
    length and a CRC-32 of the payload.

    Truncation chops the footer off (detected as a missing footer);
    payload bit-rot fails the CRC; a format change fails the version
    check. {!Disk_tree.open_}'s [~verify] levels build on this. *)

val size : int
(** 16 *)

val current_version : int

type t = { version : int; payload_length : int; crc : int }

val append : ?version:int -> Device.t -> unit
(** Checksum the device's current contents and append the footer.
    [version] (default {!current_version}) is exposed so tests can write
    futuristic footers. *)

val read : Device.t -> t option
(** Parse the footer at the device tail; [None] when the magic number is
    absent (no footer — truncated or legacy image). No CRC check. *)

val verify : Device.t -> (t, string) result
(** Full check: footer present, supported version, consistent payload
    length, and matching payload CRC. *)
