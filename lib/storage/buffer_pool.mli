(** A shared buffer pool with clock (second-chance) replacement,
    matching the paper's implementation (§4.2: "OASIS reads disk pages
    from a buffer pool, which uses a simple clock replacement policy").

    Several devices ("files") attach to one pool; per-file hit/miss
    counters drive the Figure 8 experiment.

    The pool is also the retry boundary of the storage stack: a device
    read that raises a {e transient} {!Io_error.E} is retried under the
    pool's {!retry} policy (exponential backoff), and per-file retry and
    failure counters sit alongside the hit/miss statistics. Permanent
    errors propagate to the caller. *)

type t
type handle

val create : block_size:int -> capacity:int -> t
(** [capacity] is the number of resident blocks; [block_size] must be a
    positive multiple of 16 (so fixed-width node entries never straddle
    blocks). The pool starts with the {!no_retry} policy. *)

val block_size : t -> int
val capacity : t -> int

(** {1 Retry policy} *)

type retry = {
  attempts : int;  (** total tries per block read, >= 1 *)
  backoff : float;  (** seconds slept before the first retry *)
  multiplier : float;  (** backoff growth per further retry, >= 1 *)
}

val no_retry : retry
(** One attempt, no sleeping — transient errors propagate immediately. *)

val default_retry : retry
(** 4 attempts, 1 ms initial backoff, doubling. *)

val set_retry : t -> retry -> unit
val retry_policy : t -> retry

(** {1 Access} *)

val attach : t -> name:string -> Device.t -> handle
(** Give the pool access to a device. The same device may be attached to
    only one pool at a time for coherent statistics. *)

val read_byte : t -> handle -> int -> int
(** [read_byte pool h off] reads the byte at device offset [off] through
    the pool. *)

val read_u32 : t -> handle -> int -> int
(** Little-endian 32-bit read; [off] must be 4-byte aligned. *)

(** {1 Statistics} *)

type stats = {
  hits : int;
  misses : int;
  retries : int;  (** transient read failures that were retried *)
  failures : int;  (** block reads abandoned (permanent or budget spent) *)
}

val stats : handle -> stats
val hit_ratio : stats -> float
(** [hits / (hits + misses)]; 1.0 when there were no accesses. *)

val reset_stats : t -> unit
(** Zero all per-file counters (resident blocks stay cached). *)

val drop_all : t -> unit
(** Evict every block and zero counters — a cold start. *)
