(** A shared buffer pool with clock (second-chance) replacement,
    matching the paper's implementation (§4.2: "OASIS reads disk pages
    from a buffer pool, which uses a simple clock replacement policy").

    Several devices ("files") attach to one pool; per-file hit/miss
    counters drive the Figure 8 experiment.

    The pool is also the retry boundary of the storage stack: a device
    read that raises a {e transient} {!Io_error.E} is retried under the
    pool's {!retry} policy (exponential backoff), and per-file retry and
    failure counters sit alongside the hit/miss statistics. Permanent
    errors propagate to the caller. *)

type t
type handle

val create : block_size:int -> capacity:int -> t
(** [capacity] is the number of resident blocks; [block_size] must be a
    positive multiple of 16 (so fixed-width node entries never straddle
    blocks). The pool starts with the {!no_retry} policy. *)

val block_size : t -> int
val capacity : t -> int

(** {1 Retry policy} *)

type retry = {
  attempts : int;  (** total tries per block read, >= 1 *)
  backoff : float;  (** seconds slept before the first retry *)
  multiplier : float;  (** backoff growth per further retry, >= 1 *)
}

val no_retry : retry
(** One attempt, no sleeping — transient errors propagate immediately. *)

val default_retry : retry
(** 4 attempts, 1 ms initial backoff, doubling. *)

val set_retry : t -> retry -> unit
val retry_policy : t -> retry

(** {1 Access} *)

val attach : t -> name:string -> Device.t -> handle
(** Give the pool access to a device. The same device may be attached to
    only one pool at a time for coherent statistics. *)

val read_byte : t -> handle -> int -> int
(** [read_byte pool h off] reads the byte at device offset [off] through
    the pool. *)

val read_u32 : t -> handle -> int -> int
(** Little-endian 32-bit read; [off] must be 4-byte aligned. *)

val read_bytes_into :
  t -> handle -> off:int -> len:int -> dst:bytes -> dst_off:int -> unit
(** Copy [len] bytes starting at device offset [off] into [dst],
    spanning blocks as needed; each touched block counts as one pool
    access. *)

val page : t -> handle -> int -> bytes
(** [page pool h block] makes the block resident and returns the frame's
    backing buffer directly — one pool access, no copy. The buffer is
    only valid until the next pool operation (which may evict the
    frame); use {!pin} to hold it across other accesses. *)

(** {1 Pinning}

    A pinned frame is resident and immovable: the clock sweep passes it
    over, so bytes obtained from {!frame_bytes} stay valid — across any
    number of other pool accesses — until the matching {!unpin}. Pins
    nest (each [pin] needs its own [unpin]) and compose with the retry
    policy: the initial load retries transient faults exactly like any
    other access. If every frame is pinned the next miss raises
    [Failure] rather than sweeping forever. *)

val pin : t -> handle -> block:int -> int
(** Make [block] resident, pin its frame and return the frame index. *)

val unpin : t -> int -> unit
(** Release one pin on a frame index returned by {!pin}. Raises
    [Invalid_argument] if the frame is not pinned. *)

val frame_bytes : t -> int -> bytes
(** The backing buffer of a frame index returned by {!pin}. Only valid
    while the pin is held. *)

val pinned_count : t -> int
(** Number of currently pinned frames (instrumentation / tests). *)

(** {1 Statistics} *)

type stats = {
  hits : int;
  misses : int;
  retries : int;  (** transient read failures that were retried *)
  failures : int;  (** block reads abandoned (permanent or budget spent) *)
}

val stats : handle -> stats
val hit_ratio : stats -> float
(** [hits / (hits + misses)]; 1.0 when there were no accesses. *)

val probes : t -> int
(** Cumulative open-addressed table probe steps (every key comparison,
    including the terminating one). With the memo absorbing sequential
    runs this stays well below the access count. *)

val memo_hits : t -> int
(** Accesses short-circuited by a handle's last-block memo — hits that
    never touched the frame table. *)

val reset_stats : t -> unit
(** Zero all per-file counters and the pool-level probe/memo counters
    (resident blocks stay cached). *)

(** {1 Observability}

    Richer, optional instrumentation on top of the always-on counters
    above: a per-lookup probe-length histogram, eviction and pin
    counters, and — when a trace sink is attached — ["pool_miss"],
    ["evict"] and ["pin"] events. Hooks cost one pointer compare per
    lookup when unset. *)

type obs = {
  probe_length : Obs.Metric.histogram;
      (** frame-table probe steps per lookup (memo hits bypass the
          table and are not observed) *)
  evictions : Obs.Metric.counter;  (** frames whose owner was replaced *)
  pin_events : Obs.Metric.counter;  (** {!pin} calls *)
  trace : Obs.Trace.t option;
}

val obs : ?registry:Obs.Registry.t -> ?trace:Obs.Trace.t -> unit -> obs
(** Metric cells register in [registry] (fresh one if omitted) under
    [pool.probe_length] / [pool.evictions] / [pool.pin_events]. *)

val set_obs : t -> obs option -> unit

val drop_all : t -> unit
(** Evict every block and zero counters — a cold start. Raises
    [Invalid_argument] while any frame is pinned. *)
