(* The log-structured incremental index: sealed immutable segments (the
   §3.4 on-disk representation, built by the §3.4.1 external builder)
   plus a journaled in-memory tail, rooted in a versioned catalog that
   is installed atomically by rename.

   Invariants the crash matrix leans on:

   - every mutation is append-only or write-temp/rename: no live file is
     ever overwritten in place;
   - the catalog rename is the only commit point — a crash at any other
     boundary leaves the previous catalog describing a complete index,
     and everything it does not reference is garbage;
   - appends reach the journal (and its sync barrier) before the
     in-memory tail, so a recovered index is always a prefix of the
     acknowledged one. *)

type open_segment = {
  seg : Catalog.segment;
  tree : Disk_tree.t;
  seg_db : Bioseq.Database.t;
  devices : Device.t list;
}

type retired = {
  at_version : int;  (* last catalog version that referenced the files *)
  files : string list;
  stale_devices : Device.t list;
}

type t = {
  fs : Vfs.t;
  alphabet : Bioseq.Alphabet.t;
  verify : Disk_tree.verify;
  block_size : int;
  capacity : int;
  mutable catalog : Catalog.t;
  mutable segments : open_segment list; (* sequence order *)
  mutable journal : Device.t;
  mutable tail_db : Bioseq.Database.t option;
  mutable tail_tree : Suffix_tree.Tree.t option;
  mutable tail_shared : bool; (* a live snapshot references tail_tree *)
  mutable pins : (int * int ref) list; (* catalog version -> snapshots *)
  mutable retired : retired list;
  mutable closed : bool;
}

type part =
  | Disk_part of {
      tree : Disk_tree.t;
      db : Bioseq.Database.t;
      first_seq : int;
    }
  | Mem_part of {
      tree : Suffix_tree.Tree.t;
      db : Bioseq.Database.t;
      first_seq : int;
    }

type snapshot = { snap_version : int; parts : part list }

let segment_files (seg : Catalog.segment) =
  [
    seg.name ^ ".seqs";
    seg.name ^ ".symbols";
    seg.name ^ ".internal";
    seg.name ^ ".leaves";
  ]

let journal_name version = Printf.sprintf "journal.%06d" version
let segment_name version = Printf.sprintf "seg%06d" version

let check_open ~who t =
  if t.closed then invalid_arg (who ^ ": index is closed")

let db_sequences db =
  List.init (Bioseq.Database.num_sequences db) (Bioseq.Database.seq db)

let seg_seq_count (cat : Catalog.t) =
  match List.rev cat.segments with
  | [] -> 0
  | last :: _ -> last.first_seq + last.num_seqs

let tail_first_seq t = seg_seq_count t.catalog

let num_sequences t =
  tail_first_seq t
  + match t.tail_db with
    | None -> 0
    | Some db -> Bioseq.Database.num_sequences db

let sequences t =
  List.concat_map (fun os -> db_sequences os.seg_db) t.segments
  @ (match t.tail_db with None -> [] | Some db -> db_sequences db)

let catalog_version t = t.catalog.Catalog.version
let alphabet t = t.alphabet
let tail_sequences t =
  match t.tail_db with
  | None -> 0
  | Some db -> Bioseq.Database.num_sequences db

(* --- Opening a sealed segment --- *)

let open_segment ~verify ~alphabet ~block_size ~capacity fs
    (seg : Catalog.segment) =
  let seqs_device = Vfs.open_ro fs (seg.name ^ ".seqs") in
  let scan =
    Fun.protect
      ~finally:(fun () -> Device.close seqs_device)
      (fun () -> Segment_log.scan ~sealed:true ~alphabet seqs_device)
  in
  if List.length scan.Segment_log.sequences <> seg.num_seqs then
    raise
      (Segment_log.Corrupt
         (Printf.sprintf "segment %s: catalog claims %d sequences, found %d"
            seg.name seg.num_seqs
            (List.length scan.Segment_log.sequences)));
  let seg_db = Bioseq.Database.make scan.Segment_log.sequences in
  if Bioseq.Database.data_length seg_db <> seg.symbols then
    raise
      (Segment_log.Corrupt
         (Printf.sprintf "segment %s: catalog claims %d symbols, found %d"
            seg.name seg.symbols
            (Bioseq.Database.data_length seg_db)));
  let symbols = Vfs.open_ro fs (seg.name ^ ".symbols") in
  let internal = Vfs.open_ro fs (seg.name ^ ".internal") in
  let leaves = Vfs.open_ro fs (seg.name ^ ".leaves") in
  let devices = [ symbols; internal; leaves ] in
  match
    let pool = Buffer_pool.create ~block_size ~capacity in
    Disk_tree.open_ ~verify ~alphabet ~pool ~symbols ~internal ~leaves ()
  with
  | tree -> { seg; tree; seg_db; devices }
  | exception e ->
    List.iter Device.close devices;
    raise e

(* --- Lifecycle --- *)

let make_t ~fs ~alphabet ~verify ~block_size ~capacity ~catalog ~segments
    ~journal ~tail_db ~tail_tree =
  {
    fs;
    alphabet;
    verify;
    block_size;
    capacity;
    catalog;
    segments;
    journal;
    tail_db;
    tail_tree;
    tail_shared = false;
    pins = [];
    retired = [];
    closed = false;
  }

let create ?(verify = Disk_tree.Footer) ?(block_size = 2048) ?(capacity = 256)
    ~alphabet fs =
  (match Catalog.latest fs with
  | Some _ -> invalid_arg "Live_index.create: index already exists"
  | None -> ());
  let journal = journal_name 0 in
  let jd = Vfs.create fs journal in
  Fun.protect
    ~finally:(fun () -> Device.close jd)
    (fun () -> Segment_log.create jd);
  let catalog = { Catalog.version = 0; journal; segments = [] } in
  Catalog.install fs catalog;
  make_t ~fs ~alphabet ~verify ~block_size ~capacity ~catalog ~segments:[]
    ~journal:(Vfs.open_rw fs journal) ~tail_db:None ~tail_tree:None

(* Remove everything the catalog does not reference: stale catalogs and
   temp files, segments from crashed compactions, orphaned journals. *)
let gc fs (cat : Catalog.t) =
  let keep =
    Catalog.filename cat.version :: cat.journal
    :: List.concat_map segment_files cat.segments
  in
  List.iter
    (fun f -> if not (List.mem f keep) then Vfs.remove fs f)
    (Vfs.files fs)

type recovery = {
  replayed : int;  (** journal records replayed into the tail *)
  truncated : Segment_log.state;  (** [Sealed] when nothing was cut *)
}

let open_ ?(verify = Disk_tree.Footer) ?(block_size = 2048) ?(capacity = 256)
    ~alphabet fs =
  match Catalog.latest fs with
  | None ->
    Io_error.error Io_error.Open "Live_index.open_: no catalog (not an index)"
  | Some catalog ->
    gc fs catalog;
    let segments =
      List.map
        (open_segment ~verify ~alphabet ~block_size ~capacity fs)
        catalog.segments
    in
    let scan =
      if Vfs.exists fs catalog.journal then begin
        let d = Vfs.open_ro fs catalog.journal in
        Fun.protect
          ~finally:(fun () -> Device.close d)
          (fun () -> Segment_log.scan ~alphabet d)
      end
      else
        (* Defensive: a referenced journal is created before the catalog
           naming it is installed, so this only happens on manual
           deletion. Recover to an empty tail. *)
        { Segment_log.sequences = []; records = 0; valid_bytes = 0; state = Torn }
    in
    if scan.Segment_log.state <> Segment_log.Sealed then
      Segment_log.rewrite fs ~name:catalog.journal scan.Segment_log.sequences;
    let tail_db, tail_tree =
      match scan.Segment_log.sequences with
      | [] -> (None, None)
      | seqs ->
        let db = Bioseq.Database.make seqs in
        (Some db, Some (Suffix_tree.Ukkonen.build db))
    in
    let t =
      make_t ~fs ~alphabet ~verify ~block_size ~capacity ~catalog ~segments
        ~journal:(Vfs.open_rw fs catalog.journal) ~tail_db ~tail_tree
    in
    (t, { replayed = scan.Segment_log.records; truncated = scan.Segment_log.state })

let close t =
  if not t.closed then begin
    t.closed <- true;
    Device.close t.journal;
    List.iter (fun os -> List.iter Device.close os.devices) t.segments;
    List.iter (fun r -> List.iter Device.close r.stale_devices) t.retired
  end

(* --- Snapshots and pinning --- *)

let min_pinned t =
  List.fold_left
    (fun acc (v, n) -> if !n > 0 then Some (match acc with None -> v | Some m -> min m v) else acc)
    None t.pins

let collect_retired t =
  let deletable r =
    match min_pinned t with None -> true | Some m -> r.at_version < m
  in
  let gone, kept = List.partition deletable t.retired in
  t.retired <- kept;
  List.iter
    (fun r ->
      List.iter Device.close r.stale_devices;
      List.iter
        (fun f -> if Vfs.exists t.fs f then Vfs.remove t.fs f)
        r.files)
    gone

let snapshot t =
  check_open ~who:"Live_index.snapshot" t;
  let seg_parts =
    List.map
      (fun os ->
        Disk_part
          { tree = os.tree; db = os.seg_db; first_seq = os.seg.first_seq })
      t.segments
  in
  let tail_parts =
    match (t.tail_db, t.tail_tree) with
    | Some db, Some tree ->
      (* The snapshot now shares the tail tree: the next append must
         rebuild instead of extending in place (extend consumes its
         input tree). *)
      t.tail_shared <- true;
      [ Mem_part { tree; db; first_seq = tail_first_seq t } ]
    | _ -> []
  in
  let v = t.catalog.Catalog.version in
  (match List.assoc_opt v t.pins with
  | Some n -> incr n
  | None -> t.pins <- (v, ref 1) :: t.pins);
  { snap_version = v; parts = seg_parts @ tail_parts }

let release t snapshot =
  (match List.assoc_opt snapshot.snap_version t.pins with
  | Some n when !n > 0 -> decr n
  | _ -> invalid_arg "Live_index.release: snapshot already released");
  if not t.closed then collect_retired t

let pinned_versions t =
  List.filter_map (fun (v, n) -> if !n > 0 then Some v else None) t.pins
  |> List.sort Int.compare

(* --- Appending --- *)

let append t seqs =
  check_open ~who:"Live_index.append" t;
  if seqs = [] then invalid_arg "Live_index.append: empty sequence list";
  List.iter
    (fun s ->
      if
        Bioseq.Alphabet.name (Bioseq.Sequence.alphabet s)
        <> Bioseq.Alphabet.name t.alphabet
      then invalid_arg "Live_index.append: sequences use different alphabets")
    seqs;
  (* Journal first: the batch is acknowledged only once every record is
     behind the sync barrier, so a crash mid-batch recovers a strict
     prefix of what the caller saw succeed. *)
  List.iter (Segment_log.append t.journal) seqs;
  Device.sync t.journal;
  match t.tail_db with
  | None ->
    let db = Bioseq.Database.make seqs in
    t.tail_db <- Some db;
    t.tail_tree <- Some (Suffix_tree.Ukkonen.build db);
    t.tail_shared <- false
  | Some db0 ->
    let db = Bioseq.Database.append db0 seqs in
    let tree =
      match t.tail_tree with
      | Some tree0 when not t.tail_shared -> Suffix_tree.Ukkonen.extend tree0 db
      | _ ->
        (* A snapshot still searches the old tree; leave it untouched
           and rebuild the (small) tail for the new state. *)
        Suffix_tree.Ukkonen.build db
    in
    t.tail_db <- Some db;
    t.tail_tree <- Some tree;
    t.tail_shared <- false

(* --- Compaction --- *)

let compact ?(full = false) t =
  check_open ~who:"Live_index.compact" t;
  let folded_segments = if full then t.segments else [] in
  let source_seqs =
    List.concat_map (fun os -> db_sequences os.seg_db) folded_segments
    @ (match t.tail_db with None -> [] | Some db -> db_sequences db)
  in
  if source_seqs = [] then ()
  else begin
    let v = t.catalog.Catalog.version in
    let db = Bioseq.Database.make source_seqs in
    let name = segment_name (v + 1) in
    (* 1. Build the sealed segment under its (unreferenced) name. *)
    let seqs_device = Vfs.create t.fs (name ^ ".seqs") in
    Fun.protect
      ~finally:(fun () -> Device.close seqs_device)
      (fun () -> Segment_log.write_sealed seqs_device source_seqs);
    let symbols = Vfs.create t.fs (name ^ ".symbols") in
    let internal = Vfs.create t.fs (name ^ ".internal") in
    let leaves = Vfs.create t.fs (name ^ ".leaves") in
    Fun.protect
      ~finally:(fun () ->
        List.iter Device.close [ symbols; internal; leaves ])
      (fun () ->
        External_build.write db ~symbols ~internal ~leaves;
        Device.sync symbols;
        Device.sync internal;
        Device.sync leaves);
    (* 2. Fresh journal for the post-compaction tail, created before the
       catalog that references it. *)
    let journal = journal_name (v + 1) in
    let jd = Vfs.create t.fs journal in
    Fun.protect
      ~finally:(fun () -> Device.close jd)
      (fun () -> Segment_log.create jd);
    (* 3. Commit. Any crash before this rename leaves catalog v live and
       every file written above unreferenced (GC'd on reopen). *)
    let new_seg =
      {
        Catalog.name;
        first_seq =
          (if full then 0
           else
             match t.tail_db with
             | Some _ -> tail_first_seq t
             | None -> assert false);
        num_seqs = List.length source_seqs;
        symbols = Bioseq.Database.data_length db;
      }
    in
    let segments' =
      if full then [ new_seg ]
      else t.catalog.Catalog.segments @ [ new_seg ]
    in
    let catalog' =
      { Catalog.version = v + 1; journal; segments = segments' }
    in
    Catalog.install t.fs catalog';
    (* 4. Post-commit: swap in-memory state, retire the replaced files.
       They stay on disk (and their devices open) until every snapshot
       pinned at version <= v is released. *)
    let stale_files =
      t.catalog.Catalog.journal
      :: List.concat_map (fun os -> segment_files os.seg) folded_segments
    in
    let stale_devices =
      t.journal :: List.concat_map (fun os -> os.devices) folded_segments
    in
    let new_open =
      open_segment ~verify:t.verify ~alphabet:t.alphabet
        ~block_size:t.block_size ~capacity:t.capacity t.fs new_seg
    in
    t.retired <-
      { at_version = v; files = stale_files; stale_devices } :: t.retired;
    t.catalog <- catalog';
    t.segments <-
      (if full then [ new_open ]
       else
         List.filter (fun os -> not (List.memq os folded_segments)) t.segments
         @ [ new_open ]);
    t.journal <- Vfs.open_rw t.fs journal;
    t.tail_db <- None;
    t.tail_tree <- None;
    t.tail_shared <- false;
    collect_retired t
  end

let segments t =
  check_open ~who:"Live_index.segments" t;
  List.map (fun os -> os.seg) t.segments

(* --- Health (verify-index) --- *)

type journal_health = {
  journal_file : string;
  journal_records : int;
  journal_state : Segment_log.state;
  journal_readable : bool;  (** [false] = damaged header, unrecoverable *)
}

type segment_health = {
  segment : Catalog.segment;
  segment_ok : bool;
  segment_detail : string;  (** ["sealed"] or the failure *)
}

type health = {
  health_version : int;
  health_journal : journal_health;
  health_segments : segment_health list;
  health_sequences : int;  (** sealed + journaled *)
  recoverable : bool;
}

let inspect ?(verify = Disk_tree.Footer) ?(block_size = 2048) ?(capacity = 16)
    ~alphabet fs =
  match Catalog.latest fs with
  | None -> Error "no catalog found: not a live index directory"
  | exception Catalog.Corrupt msg -> Error ("catalog: " ^ msg)
  | exception Io_error.E info -> Error (Io_error.to_string info)
  | Some cat ->
    let seg_health seg =
      match
        open_segment ~verify ~alphabet ~block_size ~capacity fs seg
      with
      | os ->
        List.iter Device.close os.devices;
        { segment = seg; segment_ok = true; segment_detail = "sealed" }
      | exception Segment_log.Corrupt m ->
        { segment = seg; segment_ok = false; segment_detail = m }
      | exception Disk_tree.Corrupt { component; message } ->
        {
          segment = seg;
          segment_ok = false;
          segment_detail = component ^ ": " ^ message;
        }
      | exception Io_error.E info ->
        {
          segment = seg;
          segment_ok = false;
          segment_detail = Io_error.to_string info;
        }
    in
    let health_segments = List.map seg_health cat.segments in
    let health_journal =
      if not (Vfs.exists fs cat.journal) then
        {
          journal_file = cat.journal;
          journal_records = 0;
          journal_state = Segment_log.Torn;
          journal_readable = true;
        }
      else begin
        let d = Vfs.open_ro fs cat.journal in
        Fun.protect
          ~finally:(fun () -> Device.close d)
          (fun () ->
            match Segment_log.scan ~alphabet d with
            | scan ->
              {
                journal_file = cat.journal;
                journal_records = scan.Segment_log.records;
                journal_state = scan.Segment_log.state;
                journal_readable = true;
              }
            | exception Segment_log.Corrupt _ ->
              {
                journal_file = cat.journal;
                journal_records = 0;
                journal_state = Segment_log.Corrupted;
                journal_readable = false;
              })
      end
    in
    Ok
      {
        health_version = cat.version;
        health_journal;
        health_segments;
        health_sequences =
          seg_seq_count cat + health_journal.journal_records;
        recoverable =
          health_journal.journal_readable
          && List.for_all (fun s -> s.segment_ok) health_segments;
      }

let exists fs = Catalog.versions fs <> []
