(* The versioned root of the log-structured index. Each catalog file is
   immutable and names the index's complete contents — the sealed
   segments (in sequence order) and the live journal. Installation is
   write-temp / rename, so [catalog.<v+1>] appears atomically and a
   crash at any boundary leaves [catalog.<v>] live.

   Payload (all u32 LE unless noted):

     +0   magic "OASC"
     +4   format version
     +8   catalog version
     +12  [u32 |journal|][journal name bytes]
     ...  segment count K
     ...  K entries of [u32 |name|][name][first_seq][num_seqs][symbols]

   followed by the standard 16-byte integrity footer. *)

let magic = 0x4353414F (* "OASC" *)
let format_version = 1
let tmp_name = "catalog.tmp"
let filename version = Printf.sprintf "catalog.%06d" version

let of_filename name =
  match String.index_opt name '.' with
  | Some 7 when String.sub name 0 8 = "catalog." -> (
    let v = String.sub name 8 (String.length name - 8) in
    match int_of_string_opt v with
    | Some n when n >= 0 && String.length v = 6 -> Some n
    | _ -> None)
  | _ -> None

type segment = { name : string; first_seq : int; num_seqs : int; symbols : int }
type t = { version : int; journal : string; segments : segment list }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let put_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Catalog: field out of u32 range";
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let encode t =
  let buf = Buffer.create 256 in
  put_u32 buf magic;
  put_u32 buf format_version;
  put_u32 buf t.version;
  put_str buf t.journal;
  put_u32 buf (List.length t.segments);
  List.iter
    (fun s ->
      put_str buf s.name;
      put_u32 buf s.first_seq;
      put_u32 buf s.num_seqs;
      put_u32 buf s.symbols)
    t.segments;
  Buffer.to_bytes buf

let decode b =
  let len = Bytes.length b in
  let pos = ref 0 in
  let u32 what =
    if !pos + 4 > len then corrupt "catalog truncated reading %s" what;
    let v = get_u32 b !pos in
    pos := !pos + 4;
    v
  in
  let str what =
    let n = u32 what in
    if !pos + n > len then corrupt "catalog truncated reading %s" what;
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    s
  in
  if u32 "magic" <> magic then corrupt "catalog: bad magic";
  let v = u32 "format version" in
  if v <> format_version then corrupt "catalog: unsupported format version %d" v;
  let version = u32 "catalog version" in
  let journal = str "journal name" in
  if journal = "" then corrupt "catalog: empty journal name";
  let k = u32 "segment count" in
  let segments =
    List.init k (fun _ ->
        let name = str "segment name" in
        if name = "" then corrupt "catalog: empty segment name";
        let first_seq = u32 "first_seq" in
        let num_seqs = u32 "num_seqs" in
        let symbols = u32 "symbols" in
        { name; first_seq; num_seqs; symbols })
  in
  if !pos <> len then corrupt "catalog: %d trailing payload bytes" (len - !pos);
  let next = ref 0 in
  List.iter
    (fun s ->
      if s.first_seq <> !next || s.num_seqs < 1 then
        corrupt "catalog: segment ranges not contiguous from sequence 0";
      next := s.first_seq + s.num_seqs)
    segments;
  { version; journal; segments }

let read_device device =
  (match Footer.verify device with
  | Error msg -> corrupt "catalog: %s" msg
  | Ok _ -> ());
  let len = Device.length device - Footer.size in
  let b = Bytes.create len in
  Device.pread device ~off:0 ~buf:b;
  decode b

let read fs name =
  let device = Vfs.open_ro fs name in
  Fun.protect ~finally:(fun () -> Device.close device) (fun () ->
      let t = read_device device in
      (match of_filename name with
      | Some v when v <> t.version ->
        corrupt "catalog %s claims version %d" name t.version
      | _ -> ());
      t)

let install fs t =
  let device = Vfs.create fs tmp_name in
  Fun.protect
    ~finally:(fun () -> Device.close device)
    (fun () ->
      Device.append device (encode t);
      Footer.append device;
      Device.sync device);
  (* The commit point: POSIX rename atomically replaces any previous
     file of the same version (there is none in normal operation). *)
  Vfs.rename fs ~src:tmp_name ~dst:(filename t.version)

let versions fs =
  Vfs.files fs |> List.filter_map of_filename |> List.sort Int.compare

let latest fs =
  match versions fs with
  | [] -> None
  | vs ->
    (* The newest catalog is authoritative; rename-installation means it
       is complete, so failing to parse it is real corruption — falling
       back to an older version would silently time-travel the index. *)
    Some (read fs (filename (List.fold_left max 0 vs)))
