(** Flat-namespace filesystems for the log-structured index.

    A [Vfs.t] is a record of operations over a single flat directory —
    create/open devices by name, test existence, list, atomically
    rename, remove — mirroring {!Device}'s record-of-operations design
    so backends and combinators compose:

    - {!dir} is a real directory (rename is the POSIX atomic-replace
      used to install catalogs);
    - {!store}/{!of_store} is an in-memory directory whose contents
      survive a simulated crash: the crash kills the {e handles}, not
      the bytes, so reopening a fresh [of_store] view models a reboot;
    - {!with_crash} injects a {!Faulty.crash} into every operation, the
      substrate of the crash-matrix tests.

    Names are flat: they must be non-empty and contain no path
    separators ([Invalid_argument] otherwise). Failures are the typed
    {!Io_error.E}, never a bare [Sys_error]. *)

type t

val dir : string -> t
(** A real directory, created (one level) if missing. *)

(** {1 In-memory backend} *)

type store
(** The bytes of an in-memory directory, independent of any handles
    handed out over it. *)

val store : unit -> store

val of_store : store -> t
(** A fresh view of [store]. Multiple views over one store share the
    same files — open a new view after a simulated crash to model the
    post-reboot filesystem. *)

(** {1 Combinators} *)

val with_crash : Faulty.crash -> t -> t
(** Every operation first consults [crash]: create/remove are write
    boundaries, rename is a rename boundary (no effect when it fires),
    opens and reads only require the machine to be alive. Devices handed
    out are wrapped with {!Faulty.wrap_crash} against the same crash. *)

val make :
  create:(string -> Device.t) ->
  open_ro:(string -> Device.t) ->
  open_rw:(string -> Device.t) ->
  exists:(string -> bool) ->
  files:(unit -> string list) ->
  rename:(src:string -> dst:string -> unit) ->
  remove:(string -> unit) ->
  t
(** Build a filesystem from raw operations (combinator hook). *)

(** {1 Operations} *)

val create : t -> string -> Device.t
(** Create or truncate [name]; read/write device. *)

val open_ro : t -> string -> Device.t
(** Open an existing file read-only; raises {!Io_error.E} (op [Open])
    when missing. *)

val open_rw : t -> string -> Device.t
(** Open an existing file for appending without truncation; creates it
    under {!dir} backends, raises on the in-memory backend when
    missing. *)

val exists : t -> string -> bool
val files : t -> string list
(** Sorted list of file names. *)

val rename : t -> src:string -> dst:string -> unit
(** Atomically replace [dst] with [src] (the catalog-install
    primitive). *)

val remove : t -> string -> unit
