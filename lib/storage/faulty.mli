(** Deterministic storage fault injection.

    [Faulty.wrap plan device] returns a device that behaves like
    [device] but injects faults according to a seeded, deterministic
    plan, so every storage failure mode is testable in-process:

    - {e transient read failures}: a read raises {!Io_error.E} with
      [transient = true]; retrying (as {!Buffer_pool} does) succeeds.
      At most [max_consecutive_transient] failures occur in a row, so a
      retry budget of [max_consecutive_transient + 1] attempts is always
      sufficient.
    - {e fail-after-N}: once [fail_after_ops] operations have completed,
      every further operation raises a {e permanent} {!Io_error.E} — the
      device has died.
    - {e short (torn) appends}: an append writes only a strict prefix of
      its data, as after a crash mid-write. The integrity footers
      ({!Disk_tree.open_} with [~verify]) detect the damage.
    - {e single-bit flips}: a read returns its data with one random bit
      inverted — silent corruption on the read path, caught by CRC
      verification or {!Disk_tree.check}.

    All randomness comes from [Random.State.make [| seed |]]: the same
    plan over the same operation sequence injects the same faults. The
    fault machinery is armed only after [warmup_ops] operations, which
    lets tests open an index cleanly and then run its queries over a
    failing device. *)

type plan = {
  seed : int;
  warmup_ops : int;  (** no faults during the first N operations *)
  transient_read_prob : float;
  max_consecutive_transient : int;
  fail_after_ops : int option;
  torn_append_prob : float;
  bit_flip_prob : float;
}

val plan :
  ?seed:int ->
  ?warmup_ops:int ->
  ?transient_read_prob:float ->
  ?max_consecutive_transient:int ->
  ?fail_after_ops:int ->
  ?torn_append_prob:float ->
  ?bit_flip_prob:float ->
  unit ->
  plan
(** All fault probabilities default to 0 (no faults); probabilities must
    lie in [0, 1]. *)

type stats = {
  reads : int;
  writes : int;
  transient_failures : int;
  torn_appends : int;
  bit_flips : int;
}

type handle

val wrap : plan -> Device.t -> Device.t * handle
(** The wrapped device plus a handle for inspecting injected faults. *)

val stats : handle -> stats

(** {1 Simulated power loss}

    A {!crash} models the whole machine dying at a deterministic write
    boundary. One crash value is shared by every device (and {!Vfs}
    handle) of the simulated machine; once the budget is exhausted
    {e every} subsequent operation — reads included — raises a permanent
    {!Io_error.E} ("simulated power loss"). A boundary either completes
    or has no effect at all: torn on-disk states arise from crashing
    between the multiple appends of a higher-level record, which is
    exactly how real page-sized writes tear.

    The crash matrix (see [test_crash_matrix]) counts the write
    boundaries of a workload with {!no_crash}, then replays it once per
    boundary with [crash_after ~writes:n]. *)

type crash

val crash_after : writes:int -> crash
(** The first [writes] write boundaries (appends, pwrites, and [Vfs]
    creates/renames/removes) succeed; the next one kills the machine. *)

val crash_during_rename : renames:int -> crash
(** The first [renames] renames succeed; the next one kills the machine
    {e without} performing the rename — the catalog-install boundary. *)

val no_crash : unit -> crash
(** Never fires; used to count a workload's write boundaries. *)

val crashed : crash -> bool

val crash_write_count : crash -> int
(** Write boundaries crossed so far (the matrix width). *)

val crash_rename_count : crash -> int

val wrap_crash : crash -> Device.t -> Device.t
(** Device view of the machine: write-class operations tick the write
    budget; every operation raises once the machine is dead. [close]
    always succeeds so recovery paths can release handles. *)

val crash_write_boundary : crash -> unit
(** Tick one write boundary (raises if the budget is exhausted) — used
    by {!Vfs.with_crash} for metadata writes (create/remove). *)

val crash_rename_boundary : crash -> unit
(** A rename boundary: a write boundary plus the rename budget. Raises
    {e before} the rename takes effect when either budget is out. *)

val crash_check_alive : crash -> unit
(** Raise if the machine is already dead (read-class operations). *)
