(** Deterministic storage fault injection.

    [Faulty.wrap plan device] returns a device that behaves like
    [device] but injects faults according to a seeded, deterministic
    plan, so every storage failure mode is testable in-process:

    - {e transient read failures}: a read raises {!Io_error.E} with
      [transient = true]; retrying (as {!Buffer_pool} does) succeeds.
      At most [max_consecutive_transient] failures occur in a row, so a
      retry budget of [max_consecutive_transient + 1] attempts is always
      sufficient.
    - {e fail-after-N}: once [fail_after_ops] operations have completed,
      every further operation raises a {e permanent} {!Io_error.E} — the
      device has died.
    - {e short (torn) appends}: an append writes only a strict prefix of
      its data, as after a crash mid-write. The integrity footers
      ({!Disk_tree.open_} with [~verify]) detect the damage.
    - {e single-bit flips}: a read returns its data with one random bit
      inverted — silent corruption on the read path, caught by CRC
      verification or {!Disk_tree.check}.

    All randomness comes from [Random.State.make [| seed |]]: the same
    plan over the same operation sequence injects the same faults. The
    fault machinery is armed only after [warmup_ops] operations, which
    lets tests open an index cleanly and then run its queries over a
    failing device. *)

type plan = {
  seed : int;
  warmup_ops : int;  (** no faults during the first N operations *)
  transient_read_prob : float;
  max_consecutive_transient : int;
  fail_after_ops : int option;
  torn_append_prob : float;
  bit_flip_prob : float;
}

val plan :
  ?seed:int ->
  ?warmup_ops:int ->
  ?transient_read_prob:float ->
  ?max_consecutive_transient:int ->
  ?fail_after_ops:int ->
  ?torn_append_prob:float ->
  ?bit_flip_prob:float ->
  unit ->
  plan
(** All fault probabilities default to 0 (no faults); probabilities must
    lie in [0, 1]. *)

type stats = {
  reads : int;
  writes : int;
  transient_failures : int;
  torn_appends : int;
  bit_flips : int;
}

type handle

val wrap : plan -> Device.t -> Device.t * handle
(** The wrapped device plus a handle for inspecting injected faults. *)

val stats : handle -> stats
