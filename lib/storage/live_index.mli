(** Crash-safe log-structured incremental index.

    The index is a directory of immutable, CRC-sealed {e segments} (each
    the paper's §3.4 on-disk suffix tree plus a sealed [.seqs] sequence
    file) and one append-only {e journal} holding the sequences appended
    since the last compaction, all rooted in a versioned {!Catalog}
    installed atomically by write-temp/rename.

    {b Durability contract.} {!append} returns only after every record
    is journaled behind a sync barrier; a crash at {e any} write
    boundary recovers, on the next {!open_}, to a strict prefix of the
    acknowledged sequence stream (usually all of it — only a batch whose
    append raised can be cut short). {!compact} is a single atomic step:
    until its catalog rename commits, the previous index version is
    live and every file of the crashed compaction is unreferenced
    garbage, removed by the next open. The crash matrix
    ([test_crash_matrix]) drives these guarantees boundary by boundary.

    {b Reads.} {!snapshot} pins the current catalog version and returns
    its parts — sealed segments as {!Disk_tree} readers, the tail as an
    in-memory suffix tree — for the merged {segments ∪ tail} search
    ([Oasis.Multi]). Mutations never disturb a live snapshot: appends
    rebuild rather than extend a shared tail tree, and compaction defers
    deleting replaced files until every snapshot of an older version is
    {!release}d. *)

type t

(** {1 Lifecycle} *)

val create :
  ?verify:Disk_tree.verify ->
  ?block_size:int ->
  ?capacity:int ->
  alphabet:Bioseq.Alphabet.t ->
  Vfs.t ->
  t
(** Initialize an empty index (catalog version 0, empty journal) in a
    directory holding none. [verify] (default [Footer]) is the level
    segments are checked at whenever they are opened; [block_size]
    (default 2048) and [capacity] (default 256) configure each segment's
    buffer pool. *)

type recovery = {
  replayed : int;  (** journal records replayed into the tail *)
  truncated : Segment_log.state;  (** [Sealed] when nothing was cut *)
}

val open_ :
  ?verify:Disk_tree.verify ->
  ?block_size:int ->
  ?capacity:int ->
  alphabet:Bioseq.Alphabet.t ->
  Vfs.t ->
  t * recovery
(** Recovery-on-open: load the newest catalog, garbage-collect every
    unreferenced file, open and verify the segments, scan the journal —
    truncating a torn or corrupt tail (normal after a crash, reported in
    {!recovery}) — and replay the survivors into the in-memory tail.
    Raises {!Io_error.E} when no catalog exists, {!Catalog.Corrupt} /
    {!Segment_log.Corrupt} / {!Disk_tree.Corrupt} on non-recoverable
    damage. *)

val close : t -> unit

val exists : Vfs.t -> bool
(** A catalog file is present (the directory holds a live index, even a
    damaged one). *)

(** {1 Mutation} *)

val append : t -> Bioseq.Sequence.t list -> unit
(** Journal the batch (records, then one sync barrier), then index it in
    the in-memory tail — extending the tail tree in place, or rebuilding
    it when a live snapshot shares it. Raises [Invalid_argument] on an
    empty batch or an alphabet mismatch, before anything is written. *)

val compact : ?full:bool -> t -> unit
(** Seal the tail into a new immutable segment via the §3.4.1 external
    builder and switch to a fresh journal, installing catalog version
    [v+1]; with [full:true] the existing segments are folded in too,
    leaving a single segment. A no-op when there is nothing to fold. A
    crash anywhere before the catalog rename leaves version [v] live;
    replaced files are deleted only once no snapshot pins a version
    [<= v]. *)

(** {1 Inspection} *)

val num_sequences : t -> int
val tail_sequences : t -> int
(** Journaled (not yet compacted) sequences. *)

val catalog_version : t -> int
val segments : t -> Catalog.segment list
val sequences : t -> Bioseq.Sequence.t list
(** All sequences in order (sealed then tail) — test-grade oracle
    support, O(index). *)

val alphabet : t -> Bioseq.Alphabet.t

(** {1 Snapshots} *)

(** One searchable constituent, in sequence order; [first_seq] maps its
    local sequence indices to global ones. *)
type part =
  | Disk_part of {
      tree : Disk_tree.t;
      db : Bioseq.Database.t;
      first_seq : int;
    }
  | Mem_part of {
      tree : Suffix_tree.Tree.t;
      db : Bioseq.Database.t;
      first_seq : int;
    }

type snapshot = { snap_version : int; parts : part list }

val snapshot : t -> snapshot
(** Pin the current catalog version and return its parts. The snapshot
    stays valid — same results, same files — across any number of
    subsequent {!append}s and {!compact}s, until {!release}d. *)

val release : t -> snapshot -> unit
(** Unpin; raises [Invalid_argument] on a double release. When the last
    pin of an old version goes, the files it kept alive are deleted. *)

val pinned_versions : t -> int list

(** {1 Health (verify-index)} *)

type journal_health = {
  journal_file : string;
  journal_records : int;
  journal_state : Segment_log.state;
  journal_readable : bool;
      (** [false]: damaged header, unrecoverable (unlike a torn or
          corrupt {e tail}, which recovery truncates) *)
}

type segment_health = {
  segment : Catalog.segment;
  segment_ok : bool;
  segment_detail : string;  (** ["sealed"] or the failure description *)
}

type health = {
  health_version : int;
  health_journal : journal_health;
  health_segments : segment_health list;
  health_sequences : int;  (** sealed + journaled *)
  recoverable : bool;
      (** an {!open_} of this directory would succeed (possibly
          truncating the journal tail) *)
}

val inspect :
  ?verify:Disk_tree.verify ->
  ?block_size:int ->
  ?capacity:int ->
  alphabet:Bioseq.Alphabet.t ->
  Vfs.t ->
  (health, string) result
(** Read-only health report (never mutates the directory): per-segment
    and journal state against the newest catalog. [Error] when there is
    no usable catalog at all. *)
