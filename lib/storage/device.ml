type memory = { mutable data : bytes; mutable mlen : int }

type file_state = {
  ic : in_channel;
  oc : out_channel option;
  mutable dirty : bool;
  mutable flen : int;
}

type backend = Memory of memory | File of file_state

type t = { mutable backend : backend }

let in_memory () = { backend = Memory { data = Bytes.create 4096; mlen = 0 } }

let file path =
  let oc = open_out_bin path in
  let ic = open_in_bin path in
  { backend = File { ic; oc = Some oc; dirty = false; flen = 0 } }

let open_file path =
  let ic = open_in_bin path in
  { backend = File { ic; oc = None; dirty = false; flen = in_channel_length ic } }

let length t =
  match t.backend with
  | Memory m -> m.mlen
  | File f -> f.flen

let ensure_capacity m extra =
  let needed = m.mlen + extra in
  if needed > Bytes.length m.data then begin
    let ncap = max needed (2 * Bytes.length m.data) in
    let ndata = Bytes.create ncap in
    Bytes.blit m.data 0 ndata 0 m.mlen;
    m.data <- ndata
  end

let append t data =
  match t.backend with
  | Memory m ->
    ensure_capacity m (Bytes.length data);
    Bytes.blit data 0 m.data m.mlen (Bytes.length data);
    m.mlen <- m.mlen + Bytes.length data
  | File f ->
    (match f.oc with
    | None -> invalid_arg "Device.append: device opened read-only"
    | Some oc ->
      seek_out oc f.flen;
      output_bytes oc data;
      f.flen <- f.flen + Bytes.length data;
      f.dirty <- true)

let pwrite t ~off data =
  let len = Bytes.length data in
  if off < 0 || off + len > length t then
    invalid_arg "Device.pwrite: range outside the written region";
  match t.backend with
  | Memory m -> Bytes.blit data 0 m.data off len
  | File f ->
    (match f.oc with
    | None -> invalid_arg "Device.pwrite: device opened read-only"
    | Some oc ->
      seek_out oc off;
      output_bytes oc data;
      f.dirty <- true)

let pread t ~off ~buf =
  let want = Bytes.length buf in
  match t.backend with
  | Memory m ->
    let avail = max 0 (min want (m.mlen - off)) in
    if avail > 0 then Bytes.blit m.data off buf 0 avail;
    if avail < want then Bytes.fill buf avail (want - avail) '\000'
  | File f ->
    (match f.oc with
    | Some oc when f.dirty ->
      flush oc;
      f.dirty <- false
    | _ -> ());
    let avail = max 0 (min want (f.flen - off)) in
    if avail > 0 then begin
      seek_in f.ic off;
      really_input f.ic buf 0 avail
    end;
    if avail < want then Bytes.fill buf avail (want - avail) '\000'

let close t =
  match t.backend with
  | Memory _ -> ()
  | File f ->
    (match f.oc with Some oc -> close_out_noerr oc | None -> ());
    close_in_noerr f.ic
