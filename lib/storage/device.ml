(* A device is a record of operations, so backends and combinators
   (e.g. Faulty) compose freely: the rest of the storage layer only ever
   goes through this record. *)

type t = {
  length : unit -> int;
  append : bytes -> unit;
  pwrite : off:int -> bytes -> unit;
  pread : off:int -> buf:bytes -> unit;
  sync : unit -> unit;
  close : unit -> unit;
}

let length t = t.length ()
let append t data = t.append data
let pwrite t ~off data = t.pwrite ~off data
let pread t ~off ~buf = t.pread ~off ~buf
let sync t = t.sync ()
let close t = t.close ()

let make ~length ~append ~pwrite ~pread ~sync ~close =
  { length; append; pwrite; pread; sync; close }

(* --- In-memory backend --- *)

type memory = { mutable data : bytes; mutable mlen : int }

let ensure_capacity m extra =
  let needed = m.mlen + extra in
  if needed > Bytes.length m.data then begin
    let ncap = max needed (2 * Bytes.length m.data) in
    let ndata = Bytes.create ncap in
    Bytes.blit m.data 0 ndata 0 m.mlen;
    m.data <- ndata
  end

let in_memory () =
  let m = { data = Bytes.create 4096; mlen = 0 } in
  {
    length = (fun () -> m.mlen);
    append =
      (fun data ->
        ensure_capacity m (Bytes.length data);
        Bytes.blit data 0 m.data m.mlen (Bytes.length data);
        m.mlen <- m.mlen + Bytes.length data);
    pwrite =
      (fun ~off data ->
        let len = Bytes.length data in
        if off < 0 || off + len > m.mlen then
          invalid_arg "Device.pwrite: range outside the written region";
        Bytes.blit data 0 m.data off len);
    pread =
      (fun ~off ~buf ->
        let want = Bytes.length buf in
        let avail = max 0 (min want (m.mlen - off)) in
        if avail > 0 then Bytes.blit m.data off buf 0 avail;
        if avail < want then Bytes.fill buf avail (want - avail) '\000');
    sync = (fun () -> ());
    close = (fun () -> ());
  }

(* --- File backend --- *)

type file_state = {
  path : string;
  ic : in_channel;
  oc : out_channel option;
  mutable dirty : bool;
  mutable flen : int;
}

(* Map Sys_error onto the typed Io_error so callers never see a raw
   OCaml runtime message without the path and operation. *)
let io ~path op f =
  try f () with Sys_error msg -> Io_error.error ~path op msg

let of_file_state f =
  {
    length = (fun () -> f.flen);
    append =
      (fun data ->
        match f.oc with
        | None -> invalid_arg "Device.append: device opened read-only"
        | Some oc ->
          io ~path:f.path Io_error.Write (fun () ->
              seek_out oc f.flen;
              output_bytes oc data);
          f.flen <- f.flen + Bytes.length data;
          f.dirty <- true);
    pwrite =
      (fun ~off data ->
        let len = Bytes.length data in
        if off < 0 || off + len > f.flen then
          invalid_arg "Device.pwrite: range outside the written region";
        match f.oc with
        | None -> invalid_arg "Device.pwrite: device opened read-only"
        | Some oc ->
          io ~path:f.path Io_error.Write (fun () ->
              seek_out oc off;
              output_bytes oc data);
          f.dirty <- true);
    pread =
      (fun ~off ~buf ->
        (match f.oc with
        | Some oc when f.dirty ->
          io ~path:f.path Io_error.Flush (fun () -> flush oc);
          f.dirty <- false
        | _ -> ());
        let want = Bytes.length buf in
        let avail = max 0 (min want (f.flen - off)) in
        if avail > 0 then
          io ~path:f.path Io_error.Read (fun () ->
              seek_in f.ic off;
              really_input f.ic buf 0 avail);
        if avail < want then Bytes.fill buf avail (want - avail) '\000');
    sync =
      (fun () ->
        (* A write barrier: nothing appended before this point may be
           reported durable until the channel has been flushed. (True
           fsync durability is beyond stdlib channels; the flush still
           surfaces deferred failures such as ENOSPC at the barrier.) *)
        match f.oc with
        | None -> ()
        | Some oc ->
          io ~path:f.path Io_error.Flush (fun () -> flush oc);
          f.dirty <- false);
    close =
      (fun () ->
        (* Flush explicitly before closing so a full disk (ENOSPC) or
           any other deferred write failure surfaces as an error instead
           of being swallowed by close_out_noerr — a partially written
           index must not look successfully built. *)
        let flush_failure =
          match f.oc with
          | None -> None
          | Some oc -> (
            match flush oc with
            | () -> None
            | exception Sys_error msg -> Some msg)
        in
        (match f.oc with Some oc -> close_out_noerr oc | None -> ());
        close_in_noerr f.ic;
        match flush_failure with
        | None -> ()
        | Some msg -> Io_error.error ~path:f.path Io_error.Flush msg);
  }

let file path =
  let oc = io ~path Io_error.Open (fun () -> open_out_bin path) in
  let ic =
    try io ~path Io_error.Open (fun () -> open_in_bin path)
    with e ->
      close_out_noerr oc;
      raise e
  in
  of_file_state { path; ic; oc = Some oc; dirty = false; flen = 0 }

let open_file path =
  let ic = io ~path Io_error.Open (fun () -> open_in_bin path) in
  let flen = io ~path Io_error.Open (fun () -> in_channel_length ic) in
  of_file_state { path; ic; oc = None; dirty = false; flen }

let open_append path =
  (* Like [file] but keeps any existing contents: the journal reopens
     for appending after recovery. *)
  let oc =
    io ~path Io_error.Open (fun () ->
        open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 path)
  in
  let ic =
    try io ~path Io_error.Open (fun () -> open_in_bin path)
    with e ->
      close_out_noerr oc;
      raise e
  in
  let flen = io ~path Io_error.Open (fun () -> in_channel_length ic) in
  of_file_state { path; ic; oc = Some oc; dirty = false; flen }
